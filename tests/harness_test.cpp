// Tests for the sweep/orchestration subsystem: spec parsing & expansion,
// the work-stealing pool, parallel-vs-serial output determinism, recorder
// merging, aggregation, and the baseline regression gate.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/aggregate.h"
#include "harness/baseline.h"
#include "harness/job.h"
#include "harness/pool.h"
#include "harness/run_context.h"
#include "harness/sweep_spec.h"
#include "sim/json_reader.h"

namespace dresar::harness {
namespace {

// ---------------------------------------------------------------- JobSpec --

TEST(JobSpec, ConfigTagsMatchBenchConvention) {
  JobSpec j;
  EXPECT_EQ(j.configTag(), "base");
  j.sdEntries = 512;
  EXPECT_EQ(j.configTag(), "sd-512");
  j.assoc = 2;
  EXPECT_EQ(j.configTag(), "sd-512-a2");
  j.pendingBuffer = 4;
  EXPECT_EQ(j.configTag(), "sd-512-a2-pb4");
  j.tagOverride = "custom";
  EXPECT_EQ(j.configTag(), "custom");
}

TEST(JobSpec, FaultSuffixesApplyToBaseAndSwitchDirTags) {
  JobSpec j;
  j.fault.msgDropRate = 0.02;
  EXPECT_EQ(j.configTag(), "base-fd0.02");
  j.sdEntries = 512;
  j.fault.msgDelayRate = 0.1;
  j.fault.sdEntryLossRate = 0.5;
  EXPECT_EQ(j.configTag(), "sd-512-fd0.02-fy0.1-fl0.5");
}

TEST(JobSpec, PolicySuffixesApplyOnlyWhenNonDefault) {
  JobSpec j;
  j.sdEntries = 1024;
  EXPECT_EQ(j.configTag(), "sd-1024");  // lru/fifo defaults stay silent
  j.sdReplacement = "random";
  EXPECT_EQ(j.configTag(), "sd-1024-random");
  j.sdArbitration = "phase";
  EXPECT_EQ(j.configTag(), "sd-1024-random-phase");
  j.sdReplacement = "lru";
  EXPECT_EQ(j.configTag(), "sd-1024-phase");
}

TEST(JobSpec, SimThreadsSuffixOnlyWhenSharded) {
  JobSpec j;
  j.sdEntries = 512;
  EXPECT_EQ(j.configTag(), "sd-512");  // st1 default stays silent (byte-identity)
  j.simThreads = 4;
  EXPECT_EQ(j.configTag(), "sd-512-st4");
  j.fault.msgDropRate = 0.02;
  EXPECT_EQ(j.configTag(), "sd-512-fd0.02-st4");
}

TEST(JobSpec, DisplayApp) {
  JobSpec j;
  j.app = "fft";
  EXPECT_EQ(j.displayApp(), "FFT");
  j.kind = JobKind::Trace;
  j.app = "tpcd";
  EXPECT_EQ(j.displayApp(), "TPC-D");
  j.app = "tpcc";
  EXPECT_EQ(j.displayApp(), "TPC-C");
}

// -------------------------------------------------------------- SweepSpec --

TEST(SweepSpec, ParsesFullSpec) {
  std::istringstream in(
      "# comment\n"
      "name = demo\n"
      "workloads = fft, tpcc\n"
      "entries = 0, 512\n"
      "assoc = 2, 4\n"
      "pending_buffer = 8\n"
      "seeds = 3\n"
      "scale = tiny\n"
      "trace_refs = 50000\n");
  const SweepSpec s = SweepSpec::parse(in, "demo.spec");
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.workloads, (std::vector<std::string>{"fft", "tpcc"}));
  EXPECT_EQ(s.entries, (std::vector<std::uint32_t>{0, 512}));
  EXPECT_EQ(s.assoc, (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(s.pendingBuffer, (std::vector<std::uint32_t>{8}));
  EXPECT_EQ(s.seeds, 3u);
  EXPECT_EQ(s.scale, "tiny");
  EXPECT_EQ(s.traceRefs, 50000u);
  EXPECT_EQ(s.jobCount(), 2u * 2u * 2u * 1u * 3u);
}

TEST(SweepSpec, RejectsMalformedInput) {
  const auto parseText = [](const std::string& text) {
    std::istringstream in(text);
    return SweepSpec::parse(in, "bad.spec");
  };
  EXPECT_THROW(parseText("bogus_key = 1\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = fft, quake\n"), std::runtime_error);
  EXPECT_THROW(parseText("entries = -1\n"), std::runtime_error);
  EXPECT_THROW(parseText("seeds = 0\n"), std::runtime_error);
  EXPECT_THROW(parseText("scale = huge\n"), std::runtime_error);
  EXPECT_THROW(parseText("name = a\nname = b\n"), std::runtime_error);
  EXPECT_THROW(parseText("just some text\n"), std::runtime_error);
}

TEST(SweepSpec, ErrorsNameSourceAndLine) {
  std::istringstream in("name = ok\nbogus = 1\n");
  try {
    (void)SweepSpec::parse(in, "demo.spec");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("demo.spec:2"), std::string::npos) << e.what();
  }
}

TEST(SweepSpec, ExpandIsWorkloadMajorCrossProduct) {
  SweepSpec s;
  s.workloads = {"fft", "tpcc"};
  s.entries = {0, 512};
  s.seeds = 2;
  const std::vector<JobSpec> jobs = s.expand();
  ASSERT_EQ(jobs.size(), s.jobCount());
  // workload-major: all fft cells first, then tpcc.
  EXPECT_EQ(jobs[0].app, "fft");
  EXPECT_EQ(jobs[0].sdEntries, 0u);
  EXPECT_EQ(jobs[0].seed, 1u);
  EXPECT_EQ(jobs[1].seed, 2u);
  EXPECT_EQ(jobs[2].sdEntries, 512u);
  EXPECT_EQ(jobs[4].app, "tpcc");
  EXPECT_EQ(jobs[4].kind, JobKind::Trace);
  EXPECT_EQ(jobs[0].kind, JobKind::Scientific);
}

TEST(SweepSpec, ParsesSdPolicyAxis) {
  std::istringstream in(
      "workloads = sor\n"
      "entries = 1024\n"
      "sd_policy = lru, fifo-phase, random-phase\n");
  const SweepSpec s = SweepSpec::parse(in, "policy.spec");
  ASSERT_EQ(s.sdPolicy.size(), 3u);
  EXPECT_EQ(s.sdPolicy[0], (SdPolicyChoice{"lru", "fifo"}));  // bare name: default arb
  EXPECT_EQ(s.sdPolicy[1], (SdPolicyChoice{"fifo", "phase"}));
  EXPECT_EQ(s.sdPolicy[2], (SdPolicyChoice{"random", "phase"}));
  EXPECT_EQ(s.jobCount(), 3u);
  const std::vector<JobSpec> jobs = s.expand();
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].sdReplacement, "lru");
  EXPECT_EQ(jobs[0].sdArbitration, "fifo");
  EXPECT_EQ(jobs[2].sdReplacement, "random");
  EXPECT_EQ(jobs[2].sdArbitration, "phase");
  EXPECT_EQ(jobs[2].configTag(), "sd-1024-random-phase");
}

TEST(SweepSpec, SdPolicyAxisRejectsUnknownAndDuplicateCells) {
  const auto parseText = [](const std::string& text) {
    std::istringstream in(text);
    return SweepSpec::parse(in, "bad.spec");
  };
  EXPECT_THROW(parseText("sd_policy = plru\n"), std::runtime_error);
  EXPECT_THROW(parseText("sd_policy = lru-lottery\n"), std::runtime_error);
  EXPECT_THROW(parseText("sd_policy = lru, lru-fifo\n"), std::runtime_error);  // same cell
  try {
    (void)parseText("sd_policy = lru-lottery\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.spec:1"), std::string::npos) << what;
    EXPECT_NE(what.find("fifo, phase"), std::string::npos) << what;  // valid list named
  }
}

TEST(SweepSpec, ParsesFaultAxes) {
  std::istringstream in(
      "workloads = sor, fft\n"
      "entries = 0, 512\n"
      "fault_drop_rate = 0, 0.02\n"
      "fault_delay_rate = 0.1\n"
      "fault_sd_loss_rate = 0.5\n"
      "fault_seed = 7\n"
      "fault_link_stall = 0,1,1000,500\n");
  const SweepSpec s = SweepSpec::parse(in, "fault.spec");
  EXPECT_TRUE(s.hasFaultAxes());
  EXPECT_EQ(s.faultDropRate, (std::vector<double>{0.0, 0.02}));
  EXPECT_EQ(s.faultDelayRate, (std::vector<double>{0.1}));
  EXPECT_EQ(s.faultSdLossRate, (std::vector<double>{0.5}));
  EXPECT_EQ(s.faultSeed, 7u);
  EXPECT_EQ(s.faultLinkStall.index, 1u);
  EXPECT_EQ(s.faultLinkStall.lengthCycles, 500u);
  EXPECT_EQ(s.jobCount(), 2u * 2u * 2u);  // workloads x entries x drop rates
}

TEST(SweepSpec, FaultAxesRejectTraceWorkloadsAndBadRates) {
  const auto parseText = [](const std::string& text) {
    std::istringstream in(text);
    return SweepSpec::parse(in, "bad.spec");
  };
  // Default workload list includes tpcc/tpcd — incompatible with faults.
  EXPECT_THROW(parseText("fault_drop_rate = 0.02\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = sor, tpcc\nfault_drop_rate = 0.02\n"),
               std::runtime_error);
  EXPECT_THROW(parseText("workloads = sor\nfault_drop_rate = 1.5\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = sor\nfault_drop_rate = nope\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = sor\nfault_link_stall = 1,2,3\n"), std::runtime_error);
  // Geometry probe: stall port index beyond the stage's switch count.
  EXPECT_THROW(parseText("workloads = sor\nfault_link_stall = 0,99,0,100\n"),
               std::runtime_error);
  // All-zero axes stay fault-free and compatible with trace workloads.
  EXPECT_NO_THROW(parseText("fault_drop_rate = 0\n"));
}

TEST(SweepSpec, ExpandThreadsFaultPlanAndDerivesReplicaSeeds) {
  SweepSpec s;
  s.workloads = {"sor"};
  s.entries = {512};
  s.faultDropRate = {0.0, 0.02};
  s.faultSeed = 7;
  s.seeds = 2;
  const std::vector<JobSpec> jobs = s.expand();
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].fault.msgDropRate, 0.0);
  EXPECT_FALSE(jobs[0].fault.enabled());
  EXPECT_EQ(jobs[2].fault.msgDropRate, 0.02);
  EXPECT_TRUE(jobs[2].fault.enabled());
  EXPECT_EQ(jobs[2].fault.seed, 7u);   // replica 1 keeps the base seed
  EXPECT_EQ(jobs[3].fault.seed, 8u);   // replica 2 draws an independent stream
  EXPECT_EQ(jobs[2].configTag(), "sd-512-fd0.02");
}

TEST(SweepSpec, ParsesSimThreadsAxis) {
  std::istringstream in(
      "workloads = sor\n"
      "entries = 512\n"
      "sim_threads = 1, 4\n");
  const SweepSpec s = SweepSpec::parse(in, "st.spec");
  EXPECT_EQ(s.simThreads, (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(s.jobCount(), 2u);
  const std::vector<JobSpec> jobs = s.expand();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].simThreads, 1u);
  EXPECT_EQ(jobs[0].configTag(), "sd-512");
  EXPECT_EQ(jobs[1].simThreads, 4u);
  EXPECT_EQ(jobs[1].configTag(), "sd-512-st4");
}

TEST(SweepSpec, SimThreadsAxisRejectsBadValuesAndIncompatibleWorkloads) {
  const auto parseText = [](const std::string& text) {
    std::istringstream in(text);
    return SweepSpec::parse(in, "bad.spec");
  };
  EXPECT_THROW(parseText("workloads = sor\nsim_threads = 0\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = sor\nsim_threads = nope\n"), std::runtime_error);
  // Trace-driven and traffic workloads keep process-global state the sharded
  // kernel cannot partition.
  EXPECT_THROW(parseText("workloads = sor, tpcc\nsim_threads = 2\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = oltp\nsim_threads = 2\n"), std::runtime_error);
  // A sharded axis on top of fault injection must also die at parse time.
  EXPECT_THROW(parseText("workloads = sor\nsim_threads = 2\nfault_drop_rate = 0.02\n"),
               std::runtime_error);
  // The degenerate single cell stays compatible with everything.
  EXPECT_NO_THROW(parseText("sim_threads = 1\n"));
}

TEST(JobSpec, CongestionSuffixesApplyOnlyWhenNonDefault) {
  JobSpec j;
  j.sdEntries = 512;
  EXPECT_EQ(j.configTag(), "sd-512");  // lca / nominal load / message-level stay silent
  j.routing = "adaptive";
  EXPECT_EQ(j.configTag(), "sd-512-adaptive");
  j.offeredLoad = 2.0;
  EXPECT_EQ(j.configTag(), "sd-512-adaptive-ol2");
  j.offeredLoad = 0.5;
  j.flitLevel = true;
  EXPECT_EQ(j.configTag(), "sd-512-adaptive-ol0.5-flit");
  j.routing = "lca";
  EXPECT_EQ(j.configTag(), "sd-512-ol0.5-flit");
}

TEST(SweepSpec, ParsesCongestionAxes) {
  std::istringstream in(
      "workloads = hotspot, incast\n"
      "entries = 512\n"
      "routing = lca, adaptive\n"
      "offered_load = 0.5, 2\n"
      "flit_level = 0, 1\n");
  const SweepSpec s = SweepSpec::parse(in, "cong.spec");
  EXPECT_EQ(s.routing, (std::vector<std::string>{"lca", "adaptive"}));
  EXPECT_EQ(s.offeredLoad, (std::vector<double>{0.5, 2.0}));
  EXPECT_EQ(s.flitLevel, (std::vector<std::uint32_t>{0, 1}));
  // 2 workloads x 2 routing x 2 load x 2 flit.
  EXPECT_EQ(s.jobCount(), 16u);
  const std::vector<JobSpec> jobs = s.expand();
  ASSERT_EQ(jobs.size(), 16u);
  EXPECT_EQ(jobs[0].app, "hotspot");
  EXPECT_EQ(jobs[0].routing, "lca");
  EXPECT_EQ(jobs[0].offeredLoad, 0.5);
  EXPECT_FALSE(jobs[0].flitLevel);
  EXPECT_EQ(jobs[0].configTag(), "sd-512-ol0.5");
  const JobSpec& last = jobs.back();
  EXPECT_EQ(last.app, "incast");
  EXPECT_EQ(last.routing, "adaptive");
  EXPECT_EQ(last.offeredLoad, 2.0);
  EXPECT_TRUE(last.flitLevel);
  EXPECT_EQ(last.configTag(), "sd-512-adaptive-ol2-flit");
}

TEST(SweepSpec, CongestionAxesRejectIncompatibleCombinations) {
  const auto parseText = [](const std::string& text) {
    std::istringstream in(text);
    return SweepSpec::parse(in, "bad.spec");
  };
  EXPECT_THROW(parseText("workloads = hotspot\nrouting = valiant\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = hotspot\nrouting = lca, lca\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = hotspot\nflit_level = 2\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = hotspot\noffered_load = 0\n"), std::runtime_error);
  // offered_load scales the congestion profiles' arrival clocks only.
  EXPECT_THROW(parseText("workloads = sor\noffered_load = 2\n"), std::runtime_error);
  // Routing/flit axes need a network: trace and traffic simulators have none.
  EXPECT_THROW(parseText("workloads = tpcc\nrouting = adaptive\n"), std::runtime_error);
  EXPECT_THROW(parseText("workloads = oltp\nflit_level = 1\n"), std::runtime_error);
  // The sharded kernel gate composes with the congestion axes at parse time.
  EXPECT_THROW(parseText("workloads = sor\nrouting = adaptive\nsim_threads = 2\n"),
               std::runtime_error);
  // Execution-driven non-congestion workloads may still pick a routing policy.
  EXPECT_NO_THROW(parseText("workloads = sor\nrouting = adaptive\n"));
}

// ------------------------------------------------------- WorkStealingPool --

TEST(WorkStealingPool, RunsEveryJobExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr std::size_t kJobs = 500;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.forEach(kJobs, [&](std::size_t i, unsigned w) {
    ASSERT_LT(w, pool.threads());
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkStealingPool, SingleThreadRunsInline) {
  WorkStealingPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.forEach(3, [&](std::size_t, unsigned w) {
    EXPECT_EQ(w, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(WorkStealingPool, PropagatesFailureAsRuntimeError) {
  // PoolError derives from std::runtime_error, so callers that only catch
  // the base still see the failure.
  WorkStealingPool pool(4);
  EXPECT_THROW(pool.forEach(64,
                            [&](std::size_t i, unsigned) {
                              if (i == 13) throw std::runtime_error("job 13 failed");
                            }),
               std::runtime_error);
}

TEST(WorkStealingPool, AggregatesAllFailuresAndFinishesSiblings) {
  WorkStealingPool pool(4);
  constexpr std::size_t kJobs = 64;
  std::vector<std::atomic<int>> hits(kJobs);
  try {
    pool.forEach(kJobs, [&](std::size_t i, unsigned) {
      hits[i].fetch_add(1);
      if (i == 13 || i == 40) throw std::runtime_error("job " + std::to_string(i) + " died");
    });
    FAIL() << "expected PoolError";
  } catch (const PoolError& e) {
    // Every failure preserved, ordered by job index, all named in what().
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].job, 13u);
    EXPECT_EQ(e.failures()[1].job, 40u);
    EXPECT_EQ(e.failures()[1].what, "job 40 died");
    const std::string what = e.what();
    EXPECT_NE(what.find("2 job(s) failed"), std::string::npos) << what;
    EXPECT_NE(what.find("job 13 died"), std::string::npos) << what;
  }
  // A failing job never cancels siblings: every job still ran exactly once.
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkStealingPool, SingleThreadAlsoFinishesSiblingsAfterFailure) {
  WorkStealingPool pool(1);
  std::vector<int> hits(8, 0);
  try {
    pool.forEach(8, [&](std::size_t i, unsigned) {
      ++hits[i];
      if (i == 2) throw std::runtime_error("boom");
    });
    FAIL() << "expected PoolError";
  } catch (const PoolError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].job, 2u);
  }
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(hits[i], 1) << i;
}

// --------------------------------------------- parallel determinism (E2E) --

SweepSpec tinySpec() {
  SweepSpec s;
  s.name = "test";
  s.workloads = {"fft", "tpcc"};
  s.entries = {0, 512};
  s.scale = "tiny";
  s.traceRefs = 20'000;
  return s;
}

std::string runSweepJson(unsigned threads) {
  SweepSpec s = tinySpec();
  s.overrideScale(s.scale);
  RunContext ctx;
  ctx.recorder.setBench("harness_test");
  (void)runJobs(ctx, s.expand(), threads);
  SweepJsonOptions jo;
  jo.specName = s.name;
  jo.jobs = threads;
  jo.deterministic = true;
  return sweepToJson(ctx.recorder, aggregate(ctx.recorder.runs()), jo);
}

TEST(HarnessDeterminism, SerialAndParallelSweepsAreByteIdentical) {
  const std::string serial = runSweepJson(1);
  const std::string parallel = runSweepJson(4);
  EXPECT_EQ(serial, parallel);
  // And the document is valid v3 JSON with every run present.
  const JsonValue v = JsonValue::parse(serial);
  EXPECT_EQ(v.at("schema").asString(), kSweepSchema);
  EXPECT_EQ(v.at("runs").asArray().size(), 4u);
  EXPECT_EQ(v.at("configs").asArray().size(), 4u);
}

// ------------------------------------------------- recorder merge & sort --

RunRecord rec(const char* app, const char* config, std::uint64_t seed, double execTime) {
  RunRecord r;
  r.app = app;
  r.config = config;
  r.kind = "scientific";
  r.seed = seed;
  r.metric("exec_time", execTime);
  return r;
}

TEST(RunRecorderMerge, MergesAndCanonicalizes) {
  RunRecorder a;
  a.setBench("merged");
  a.add(rec("SOR", "sd-512", 0, 10));
  RunRecorder b;
  b.add(rec("FFT", "base", 2, 20));
  b.add(rec("FFT", "base", 1, 30));
  a.merge(std::move(b));
  a.sortCanonical();
  const auto& runs = a.runs();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].app, "FFT");
  EXPECT_EQ(runs[0].seed, 1u);  // seeds ordered within a cell
  EXPECT_EQ(runs[1].seed, 2u);
  EXPECT_EQ(runs[2].app, "SOR");
}

// ------------------------------------------------ aggregate & comparison --

TEST(Aggregate, SummarizesReplicas) {
  std::vector<RunRecord> runs;
  runs.push_back(rec("FFT", "base", 1, 10));
  runs.push_back(rec("FFT", "base", 2, 14));
  runs.push_back(rec("FFT", "sd-512", 1, 6));
  const std::vector<ConfigAggregate> aggs = aggregate(runs);
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].replicas, 2u);
  ASSERT_FALSE(aggs[0].metrics.empty());
  EXPECT_EQ(aggs[0].metrics[0].first, "exec_time");
  EXPECT_DOUBLE_EQ(aggs[0].metrics[0].second.mean, 12.0);
  EXPECT_DOUBLE_EQ(aggs[0].metrics[0].second.stddev, 2.0);
  EXPECT_DOUBLE_EQ(aggs[0].metrics[0].second.min, 10.0);
  EXPECT_DOUBLE_EQ(aggs[0].metrics[0].second.max, 14.0);
  EXPECT_DOUBLE_EQ(aggs[1].metrics[0].second.mean, 6.0);
}

TEST(Aggregate, CompareMetricsComputesSignedPct) {
  const std::vector<std::pair<std::string, double>> base = {{"exec_time", 100.0}};
  const std::vector<std::pair<std::string, double>> cur = {{"exec_time", 110.0},
                                                           {"new_metric", 1.0}};
  const std::vector<MetricDelta> deltas = compareMetrics(base, cur);
  ASSERT_EQ(deltas.size(), 1u);  // only metrics present in both
  EXPECT_DOUBLE_EQ(deltas[0].pct, 10.0);
}

// --------------------------------------------------------- baseline gate --

std::vector<ConfigAggregate> oneCell(double execTime, double latency) {
  std::vector<RunRecord> runs;
  RunRecord r = rec("FFT", "base", 0, execTime);
  r.metric("avg_read_latency", latency);
  r.metric("reads", 1000);  // unwatched: must never gate
  runs.push_back(std::move(r));
  return aggregate(runs);
}

TEST(BaselineGate, PassesWhenUnchanged) {
  const auto base = oneCell(100, 50);
  const RegressionReport rep = compareAgainstBaseline(base, oneCell(100, 50), 0.1);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.regressions(), 0u);
}

TEST(BaselineGate, FlagsWatchedMetricBeyondThreshold) {
  const auto base = oneCell(100, 50);
  const RegressionReport rep = compareAgainstBaseline(base, oneCell(110, 50), 5.0);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.regressions(), 1u);
  bool found = false;
  for (const RegressionItem& i : rep.items) {
    if (i.metric == "exec_time" && i.regression) {
      EXPECT_DOUBLE_EQ(i.pct, 10.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BaselineGate, ImprovementAndSmallDriftPass) {
  const auto base = oneCell(100, 50);
  EXPECT_TRUE(compareAgainstBaseline(base, oneCell(90, 50), 5.0).ok());   // faster
  EXPECT_TRUE(compareAgainstBaseline(base, oneCell(104, 50), 5.0).ok());  // within 5%
}

TEST(BaselineGate, ReportsMissingConfigs) {
  std::vector<RunRecord> runs;
  runs.push_back(rec("FFT", "base", 0, 100));
  runs.push_back(rec("SOR", "base", 0, 100));
  const auto base = aggregate(runs);
  const RegressionReport rep = compareAgainstBaseline(base, oneCell(100, 50), 5.0);
  ASSERT_EQ(rep.missingInCurrent.size(), 1u);
  EXPECT_NE(rep.missingInCurrent[0].find("SOR"), std::string::npos);
  // Reverse direction: current has a config the baseline lacks.
  const RegressionReport rep2 = compareAgainstBaseline(oneCell(100, 50), base, 5.0);
  EXPECT_EQ(rep2.missingInBaseline.size(), 1u);
}

TEST(BaselineGate, LoadsV3AndV2Documents) {
  // v3 round trip through the real writer.
  std::vector<RunRecord> runs;
  runs.push_back(rec("FFT", "base", 0, 100));
  RunRecorder r;
  r.setBench("x");
  r.add(runs[0]);
  SweepJsonOptions jo;
  jo.deterministic = true;
  const std::string v3 = sweepToJson(r, aggregate(r.runs()), jo);
  const auto fromV3 = loadBaseline(v3);
  ASSERT_EQ(fromV3.size(), 1u);
  EXPECT_EQ(fromV3[0].app, "FFT");

  // v2 bench document (runs only, no configs).
  const std::string v2 = r.toJson();
  const auto fromV2 = loadBaseline(v2);
  ASSERT_EQ(fromV2.size(), 1u);
  EXPECT_EQ(fromV2[0].config, "base");

  EXPECT_THROW((void)loadBaseline("{\"schema\": \"x\"}"), std::runtime_error);
  EXPECT_THROW((void)loadBaseline("not json"), std::runtime_error);
}

}  // namespace
}  // namespace dresar::harness
