#include "interconnect/message.h"

#include <gtest/gtest.h>

namespace dresar {
namespace {

TEST(Message, DataCarriersMatchProtocol) {
  // Exactly the replies and write-back family carry a cache line.
  EXPECT_TRUE(carriesData(MsgType::WriteReply));
  EXPECT_TRUE(carriesData(MsgType::CopyBack));
  EXPECT_TRUE(carriesData(MsgType::WriteBack));
  EXPECT_TRUE(carriesData(MsgType::ReadReply));
  EXPECT_TRUE(carriesData(MsgType::CtoCReply));
  EXPECT_FALSE(carriesData(MsgType::ReadRequest));
  EXPECT_FALSE(carriesData(MsgType::WriteRequest));
  EXPECT_FALSE(carriesData(MsgType::CtoCRequest));
  EXPECT_FALSE(carriesData(MsgType::Retry));
  EXPECT_FALSE(carriesData(MsgType::Invalidation));
  EXPECT_FALSE(carriesData(MsgType::InvalAck));
  EXPECT_FALSE(carriesData(MsgType::SharerNotify));
}

TEST(Message, SizeIncludesHeaderAndLine) {
  Message req;
  req.type = MsgType::ReadRequest;
  EXPECT_EQ(req.sizeBytes(8, 32), 8u);
  Message data;
  data.type = MsgType::ReadReply;
  EXPECT_EQ(data.sizeBytes(8, 32), 40u);
  EXPECT_EQ(data.sizeBytes(8, 128), 136u);
}

TEST(Message, DescribeIsInformative) {
  Message m;
  m.type = MsgType::CtoCRequest;
  m.src = memEp(3);
  m.dst = procEp(7);
  m.addr = 0xabc0;
  m.requester = 5;
  m.marked = true;
  m.id = 42;
  const std::string d = m.describe();
  EXPECT_NE(d.find("CtoCRequest"), std::string::npos);
  EXPECT_NE(d.find("M3->P7"), std::string::npos);
  EXPECT_NE(d.find("abc0"), std::string::npos);
  EXPECT_NE(d.find("req=5"), std::string::npos);
  EXPECT_NE(d.find("[marked]"), std::string::npos);
}

TEST(Message, EveryTypeHasAName) {
  for (int t = 0; t <= static_cast<int>(MsgType::SharerNotify); ++t) {
    EXPECT_STRNE(toString(static_cast<MsgType>(t)), "?");
  }
}

TEST(Endpoint, Helpers) {
  EXPECT_EQ(procEp(3).kind, EndpointKind::Proc);
  EXPECT_EQ(memEp(3).kind, EndpointKind::Mem);
  EXPECT_EQ(toString(procEp(3)), "P3");
  EXPECT_EQ(toString(memEp(14)), "M14");
  EXPECT_TRUE(procEp(1) == procEp(1));
  EXPECT_FALSE(procEp(1) == memEp(1));
}

}  // namespace
}  // namespace dresar
