#include "common/stats.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dresar {
namespace {

TEST(Sampler, Accumulates) {
  Sampler s;
  s.add(10);
  s.add(20);
  s.add(30);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(Sampler, EmptyIsZero) {
  Sampler s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Sampler, Merge) {
  Sampler a, b;
  a.add(1);
  b.add(3);
  b.add(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10.0, 4);
  h.add(5);    // bucket 0
  h.add(15);   // bucket 1
  h.add(35);   // bucket 3
  h.add(999);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(Histogram, Percentile) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
}

TEST(StatRegistry, CountersCreateOnDemand) {
  StatRegistry r;
  r.counter("a.b") += 3;
  r.counter("a.b") += 4;
  EXPECT_EQ(r.counterValue("a.b"), 7u);
  EXPECT_EQ(r.counterValue("missing"), 0u);
}

TEST(StatRegistry, SumByPrefix) {
  StatRegistry r;
  r.counter("sd.0.hits") = 2;
  r.counter("sd.1.hits") = 5;
  r.counter("sdx.other") = 100;
  EXPECT_EQ(r.sumByPrefix("sd."), 7u);
}

TEST(StatRegistry, DumpIsStable) {
  StatRegistry r;
  r.counter("z") = 1;
  r.counter("a") = 2;
  std::ostringstream os;
  r.dump(os);
  const std::string out = os.str();
  EXPECT_LT(out.find('a'), out.find('z'));
}

TEST(StatRegistry, ResetClears) {
  StatRegistry r;
  r.counter("x") = 9;
  r.sampler("s").add(1.0);
  r.reset();
  EXPECT_EQ(r.counterValue("x"), 0u);
  EXPECT_EQ(r.findSampler("s"), nullptr);
}

}  // namespace
}  // namespace dresar
