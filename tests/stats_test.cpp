#include "common/stats.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace dresar {
namespace {

TEST(Sampler, Accumulates) {
  Sampler s;
  s.add(10);
  s.add(20);
  s.add(30);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(Sampler, EmptyIsZero) {
  Sampler s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Sampler, Merge) {
  Sampler a, b;
  a.add(1);
  b.add(3);
  b.add(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10.0, 4);
  h.add(5);    // bucket 0
  h.add(15);   // bucket 1
  h.add(35);   // bucket 3
  h.add(999);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(Histogram, NegativeSamplesClampToBucketZero) {
  // Regression: a negative sample used to wrap through the size_t cast and
  // land in the overflow bucket (or index memory far past it).
  Histogram h(10.0, 4);
  h.add(-1.0);
  h.add(-1e18);
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.buckets()[0], 3u);      // negatives clamp into the first bucket
  EXPECT_EQ(h.buckets()[4], 0u);      // and never masquerade as overflow
  EXPECT_EQ(h.underflowCount(), 2u);  // but the clamping is observable
}

TEST(Histogram, Percentile) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
}

TEST(Histogram, PercentileZeroIsZero) {
  Histogram h(1.0, 10);
  h.add(3.0);
  h.add(7.0);
  // p=0 must not round up into the first occupied bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Histogram h(1.0, 10);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, PercentileOverflowClampsAndFlags) {
  Histogram h(10.0, 4);  // covers [0, 40); overflow beyond
  for (int i = 0; i < 9; ++i) h.add(5.0);
  h.add(1000.0);  // one overflow sample
  // The 99th percentile lives in the overflow bucket: the reported value
  // clamps to the tracked range instead of inventing 1000, and the
  // out-of-range condition is observable.
  EXPECT_DOUBLE_EQ(h.percentile(0.99), h.overflowBound());
  EXPECT_TRUE(h.percentileOverflowed(0.99));
  EXPECT_FALSE(h.percentileOverflowed(0.5));
}

TEST(HistogramLog, BucketBoundsDouble) {
  // Log2 geometry: bucket 0 = [0, fb), bucket i = [fb*2^(i-1), fb*2^i).
  Histogram h(Histogram::LogSpaced{4.0, 8});
  EXPECT_TRUE(h.isLogSpaced());
  EXPECT_DOUBLE_EQ(h.bucketBound(0), 4.0);
  EXPECT_DOUBLE_EQ(h.bucketBound(1), 8.0);
  EXPECT_DOUBLE_EQ(h.bucketBound(7), 512.0);
  EXPECT_DOUBLE_EQ(h.overflowBound(), 512.0);
}

TEST(HistogramLog, AddRoutesByLog2) {
  Histogram h(Histogram::LogSpaced{1.0, 6});
  h.add(0.5);   // bucket 0: [0, 1)
  h.add(1.0);   // bucket 1: [1, 2)
  h.add(1.99);  // bucket 1
  h.add(2.0);   // bucket 2: [2, 4)
  h.add(31.9);  // bucket 5: [16, 32) — last bounded bucket
  h.add(32.0);  // overflow: beyond overflowBound()
  EXPECT_DOUBLE_EQ(h.overflowBound(), 32.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.overflowCount(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(HistogramLog, WideRangeInFewBuckets) {
  // The motivating case: latencies spanning 8..100k cycles fit in 40 log
  // buckets with a non-clamped p99.9, where an equal-width histogram of the
  // same bucket count would clamp.
  Histogram log2h(Histogram::LogSpaced{1.0, 40});
  Histogram lin(1.0, 40);
  for (int i = 0; i < 1000; ++i) log2h.add(8.0), lin.add(8.0);
  for (int i = 0; i < 5; ++i) log2h.add(100'000.0), lin.add(100'000.0);
  EXPECT_FALSE(log2h.percentileOverflowed(0.999));
  EXPECT_GE(log2h.percentile(0.999), 100'000.0);   // bucket upper bound
  EXPECT_LE(log2h.percentile(0.999), 200'000.0);   // bounded relative error
  EXPECT_TRUE(lin.percentileOverflowed(0.999));
}

TEST(HistogramLog, PercentileOverflowSemanticsMatchLinear) {
  Histogram h(Histogram::LogSpaced{1.0, 4});  // bounded range [0, 8)
  for (int i = 0; i < 9; ++i) h.add(3.0);
  h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), h.overflowBound());
  EXPECT_TRUE(h.percentileOverflowed(0.99));
  EXPECT_FALSE(h.percentileOverflowed(0.5));
}

TEST(HistogramLog, NegativeSamplesClampToBucketZero) {
  Histogram h(Histogram::LogSpaced{1.0, 4});
  h.add(-2.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.underflowCount(), 1u);
  EXPECT_EQ(h.overflowCount(), 0u);
}

TEST(HistogramMerge, FoldsCounts) {
  Histogram a(Histogram::LogSpaced{1.0, 6});
  Histogram b(Histogram::LogSpaced{1.0, 6});
  a.add(1.0);
  b.add(1.0);
  b.add(100.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.buckets()[1], 2u);
  EXPECT_EQ(a.overflowCount(), 1u);
}

TEST(HistogramMerge, GeometryMismatchThrows) {
  Histogram logA(Histogram::LogSpaced{1.0, 6});
  Histogram logB(Histogram::LogSpaced{2.0, 6});   // different firstBound
  Histogram logC(Histogram::LogSpaced{1.0, 8});   // different bucket count
  Histogram lin(1.0, 6);                          // different spacing mode
  EXPECT_THROW(logA.merge(logB), std::invalid_argument);
  EXPECT_THROW(logA.merge(logC), std::invalid_argument);
  EXPECT_THROW(logA.merge(lin), std::invalid_argument);
  EXPECT_THROW(lin.merge(logA), std::invalid_argument);
}

TEST(StatRegistry, CountersCreateOnDemand) {
  StatRegistry r;
  r.counter("a.b") += 3;
  r.counter("a.b") += 4;
  EXPECT_EQ(r.counterValue("a.b"), 7u);
  EXPECT_EQ(r.counterValue("missing"), 0u);
}

TEST(StatRegistry, SumByPrefix) {
  StatRegistry r;
  r.counter("sd.0.hits") = 2;
  r.counter("sd.1.hits") = 5;
  r.counter("sdx.other") = 100;
  EXPECT_EQ(r.sumByPrefix("sd."), 7u);
}

TEST(StatRegistry, DumpIsStable) {
  StatRegistry r;
  r.counter("z") = 1;
  r.counter("a") = 2;
  std::ostringstream os;
  r.dump(os);
  const std::string out = os.str();
  EXPECT_LT(out.find('a'), out.find('z'));
}

TEST(StatRegistry, ResetZeroesInPlace) {
  StatRegistry r;
  r.counter("x") = 9;
  r.sampler("s").add(1.0);
  r.reset();
  EXPECT_EQ(r.counterValue("x"), 0u);
  // Names survive a reset (only values are zeroed) so resolved handles stay
  // valid across it.
  ASSERT_NE(r.findSampler("s"), nullptr);
  EXPECT_EQ(r.findSampler("s")->count(), 0u);
}

TEST(StatRegistry, CounterHandleBumpsRegistry) {
  StatRegistry r;
  CounterHandle h = r.counterHandle("hot.counter");
  EXPECT_TRUE(h.valid());
  ++h;
  h += 5;
  EXPECT_EQ(h.value(), 6u);
  EXPECT_EQ(r.counterValue("hot.counter"), 6u);
  // The handle and the string path address the same storage.
  r.counter("hot.counter") += 4;
  EXPECT_EQ(h.value(), 10u);
}

TEST(StatRegistry, CounterHandleSurvivesRehash) {
  StatRegistry r;
  CounterHandle h = r.counterHandle("first");
  // Creating many more counters must not invalidate the handle (node-based
  // map storage).
  for (int i = 0; i < 1000; ++i) r.counter("filler." + std::to_string(i)) = 1;
  ++h;
  EXPECT_EQ(r.counterValue("first"), 1u);
}

TEST(StatRegistry, CounterHandleSurvivesReset) {
  StatRegistry r;
  CounterHandle h = r.counterHandle("c");
  h += 3;
  r.reset();
  EXPECT_EQ(h.value(), 0u);
  ++h;
  EXPECT_EQ(r.counterValue("c"), 1u);
}

TEST(StatRegistry, SamplerHandleFeedsRegistry) {
  StatRegistry r;
  SamplerHandle h = r.samplerHandle("lat");
  EXPECT_TRUE(h.valid());
  h.add(10.0);
  h.add(30.0);
  ASSERT_NE(r.findSampler("lat"), nullptr);
  EXPECT_EQ(r.findSampler("lat")->count(), 2u);
  EXPECT_DOUBLE_EQ(r.findSampler("lat")->mean(), 20.0);
}

TEST(StatRegistry, DefaultHandlesAreInvalid) {
  CounterHandle c;
  SamplerHandle s;
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(c.value(), 0u);
}

TEST(StatRegistry, HandleRegistersNameForDump) {
  StatRegistry r;
  (void)r.counterHandle("pre.registered");
  std::ostringstream os;
  r.dump(os);
  EXPECT_NE(os.str().find("pre.registered"), std::string::npos);
}

}  // namespace
}  // namespace dresar
