// Unit tests for the trace-driven simulator: service classification and
// latencies (Table 3), directory bookkeeping, and switch-directory capture.
#include "trace/tpc_gen.h"
#include "trace/trace_sim.h"

#include <gtest/gtest.h>

namespace dresar {
namespace {

TraceConfig cfgWith(std::uint32_t sdEntries) {
  TraceConfig c;
  c.switchDir.entries = sdEntries;
  return c;
}

// An address homed at node `h` (page-interleaved round robin).
Addr addrHomedAt(const TraceConfig& c, NodeId h, std::uint32_t blockInPage = 0) {
  return static_cast<Addr>(h) * c.pageBytes + blockInPage * c.lineBytes;
}

TEST(TraceSim, ReadHitCostsCacheAccess) {
  TraceConfig c = cfgWith(0);
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 3);
  sim.access(0, a, false);  // cold miss
  sim.access(0, a, false);  // hit
  EXPECT_EQ(sim.metrics().readHits, 1u);
  EXPECT_EQ(sim.metrics().readMisses, 1u);
}

TEST(TraceSim, LocalVsRemoteCleanLatency) {
  TraceConfig c = cfgWith(0);
  TraceSimulator sim(c);
  sim.access(3, addrHomedAt(c, 3), false);  // local home
  EXPECT_EQ(sim.metrics().svcCleanLocal, 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().totalReadLatency,
                   static_cast<double>(c.cacheAccess + c.localMemory));
  sim.access(4, addrHomedAt(c, 3, 1), false);  // remote home
  EXPECT_EQ(sim.metrics().svcCleanRemote, 1u);
}

TEST(TraceSim, DirtyReadIsHomeCtoC) {
  TraceConfig c = cfgWith(0);
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 2);
  sim.access(0, a, true);   // P0 writes: dirty at P0
  sim.access(1, a, false);  // P1 reads: c2c via home (remote home for P1)
  EXPECT_EQ(sim.metrics().svcCtoCRemote, 1u);
  EXPECT_EQ(sim.metrics().homeCtoC, 1u);
  // Reader whose home is local.
  sim.access(0, a, true);
  sim.access(2, a, false);
  EXPECT_EQ(sim.metrics().svcCtoCLocal, 1u);
}

TEST(TraceSim, CtoCDowngradesOwnerAndSharesDir) {
  TraceConfig c = cfgWith(0);
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 2);
  sim.access(0, a, true);
  sim.access(1, a, false);
  // Second read by a third processor must now be clean (block was copied
  // back to memory).
  sim.access(3, a, false);
  EXPECT_EQ(sim.metrics().svcCtoCRemote + sim.metrics().svcCtoCLocal, 1u);
  EXPECT_EQ(sim.metrics().svcCleanRemote, 1u);
}

TEST(TraceSim, WriteInvalidatesSharers) {
  TraceConfig c = cfgWith(0);
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 2);
  sim.access(0, a, false);
  sim.access(1, a, false);
  sim.access(5, a, true);   // invalidates P0, P1
  sim.access(0, a, false);  // misses again, c2c from P5
  EXPECT_EQ(sim.metrics().ctoc(), 1u);
}

TEST(TraceSim, SwitchDirCapturesOwnershipAndServesReads) {
  TraceConfig c = cfgWith(1024);
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 2);
  sim.access(0, a, true);   // WriteReply deposits entries
  EXPECT_GT(sim.metrics().sdDeposits, 0u);
  sim.access(1, a, false);  // read re-routed by the switch directory
  EXPECT_EQ(sim.metrics().svcSwitchDir, 1u);
  EXPECT_EQ(sim.metrics().homeCtoC, 0u);
  EXPECT_DOUBLE_EQ(sim.metrics().totalReadLatency,
                   static_cast<double>(c.cacheAccess + c.switchDirHit));
}

TEST(TraceSim, SwitchDirEntryClearedAfterService) {
  TraceConfig c = cfgWith(1024);
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 2);
  sim.access(0, a, true);
  sim.access(1, a, false);  // switch-dir c2c; copyback clears entries
  sim.access(3, a, false);  // must be served clean by the home
  EXPECT_EQ(sim.metrics().svcSwitchDir, 1u);
  EXPECT_EQ(sim.metrics().svcCleanLocal + sim.metrics().svcCleanRemote, 1u);
  EXPECT_EQ(sim.switchEntries(SDState::Modified), 0u);
}

TEST(TraceSim, WritebackClearsEntriesAndDirectory) {
  TraceConfig c = cfgWith(1024);
  // Tiny cache: 2 sets * 1 way * 32B, forces conflict evictions.
  c.cacheBytes = 64;
  c.cacheAssoc = 1;
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 2);
  const Addr conflict = a + 64;  // same set (2 sets of 32B)
  sim.access(0, a, true);
  sim.access(0, conflict, true);  // evicts a (dirty) -> writeback
  sim.access(1, a, false);        // must be clean from memory, not c2c
  EXPECT_EQ(sim.metrics().ctoc(), 0u);
}

TEST(TraceSim, RecallOnWriteToDirtyBlock) {
  TraceConfig c = cfgWith(1024);
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 2);
  sim.access(0, a, true);
  sim.access(1, a, true);   // recall from P0, ownership to P1
  sim.access(2, a, false);  // c2c (or switch-dir) from P1
  EXPECT_EQ(sim.metrics().ctoc(), 1u);
  // P0 must have lost the line.
  sim.access(0, a, false);
  EXPECT_EQ(sim.metrics().readMisses, 2u);
}

TEST(TraceSim, OwnerReadsOwnDirtyLineIsAHit) {
  TraceConfig c = cfgWith(1024);
  TraceSimulator sim(c);
  const Addr a = addrHomedAt(c, 2);
  sim.access(0, a, true);
  sim.access(0, a, false);
  EXPECT_EQ(sim.metrics().readHits, 1u);
  EXPECT_EQ(sim.metrics().ctoc(), 0u);
}

TEST(TraceSim, ExecTimeIsMaxPerProcessor) {
  TraceConfig c = cfgWith(0);
  TraceSimulator sim(c);
  // P0 performs two expensive misses; P1 one.
  sim.access(0, addrHomedAt(c, 1), false);
  sim.access(0, addrHomedAt(c, 2), false);
  sim.access(1, addrHomedAt(c, 3), false);
  TpcGenerator gen(TpcParams::tpcc(0));  // empty: just finalizes metrics
  sim.run(gen);
  EXPECT_EQ(sim.metrics().execTime, 2u * (c.cacheAccess + c.remoteMemory));
}

TEST(TraceSim, SmallDirectoryCapturesLessThanLarge) {
  TraceMetrics small, large;
  for (const std::uint32_t entries : {64u, 4096u}) {
    TraceConfig c = cfgWith(entries);
    TraceSimulator sim(c);
    TpcGenerator gen(TpcParams::tpcc(200'000));
    sim.run(gen);
    (entries == 64 ? small : large) = sim.metrics();
  }
  EXPECT_LT(small.svcSwitchDir, large.svcSwitchDir);
  EXPECT_GT(small.homeCtoC, large.homeCtoC);
}

}  // namespace
}  // namespace dresar
