#include "sim/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

TEST(RunReport, ContainsAllSections) {
  SystemConfig cfg;
  cfg.switchDir.entries = 512;
  System sys(cfg);
  auto w = makeWorkload("tc", WorkloadScale::tiny());
  runWorkload(sys, *w);
  std::ostringstream os;
  printRunReport(sys, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("per-processor"), std::string::npos);
  EXPECT_NE(out.find("per-home directory"), std::string::npos);
  EXPECT_NE(out.find("per-switch directory"), std::string::npos);
  EXPECT_NE(out.find("network"), std::string::npos);
  EXPECT_NE(out.find("ReadRequest"), std::string::npos);
}

TEST(RunReport, BaseSystemOmitsSwitchSection) {
  SystemConfig cfg;
  cfg.switchDir.entries = 0;
  System sys(cfg);
  auto w = makeWorkload("tc", WorkloadScale::tiny());
  runWorkload(sys, *w);
  std::ostringstream os;
  printRunReport(sys, os);
  EXPECT_EQ(os.str().find("per-switch directory"), std::string::npos);
}

}  // namespace
}  // namespace dresar
