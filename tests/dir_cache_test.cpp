#include "switchdir/dir_cache.h"

#include <gtest/gtest.h>

#include "switchdir/port_schedule.h"

namespace dresar {
namespace {

TEST(SwitchDirCache, MissThenAllocateThenHit) {
  SwitchDirCache c(64, 4, 32);
  EXPECT_EQ(c.find(0x100), nullptr);
  SDEntry* e = c.allocate(0x100);
  ASSERT_NE(e, nullptr);
  e->state = SDState::Modified;
  e->owner = 3;
  SDEntry* f = c.find(0x100);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->owner, 3u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(SwitchDirCache, LruEvictsOldestModified) {
  // 1 set of 2 ways: entries=2, assoc=2 -> numSets=1.
  SwitchDirCache c(2, 2, 32);
  auto* a = c.allocate(0x20);
  a->state = SDState::Modified;
  auto* b = c.allocate(0x40);
  b->state = SDState::Modified;
  c.find(0x20);  // touch A, making B the LRU
  auto* d = c.allocate(0x60);
  d->state = SDState::Modified;
  EXPECT_NE(c.find(0x20), nullptr);
  EXPECT_EQ(c.find(0x40), nullptr);  // evicted
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(SwitchDirCache, TransientEntriesArePinned) {
  SwitchDirCache c(2, 2, 32);
  auto* a = c.allocate(0x20);
  a->state = SDState::Transient;
  a->requester = 5;
  auto* b = c.allocate(0x40);
  b->state = SDState::Transient;
  b->requester = 6;
  // Both ways pinned: allocation must fail, not displace a transient entry.
  EXPECT_EQ(c.allocate(0x60), nullptr);
  EXPECT_EQ(c.stats().allocFailures, 1u);
  EXPECT_NE(c.find(0x20), nullptr);
  EXPECT_NE(c.find(0x40), nullptr);
}

TEST(SwitchDirCache, AllocateIsFindOrAllocate) {
  SwitchDirCache c(64, 4, 32);
  SDEntry* e = c.allocate(0x80);
  e->state = SDState::Modified;
  e->owner = 7;
  SDEntry* again = c.allocate(0x80);
  EXPECT_EQ(again, e);
  EXPECT_EQ(again->owner, 7u);
  EXPECT_EQ(c.stats().allocations, 1u);
}

TEST(SwitchDirCache, InvalidateFreesWay) {
  SwitchDirCache c(2, 2, 32);
  auto* a = c.allocate(0x20);
  a->state = SDState::Modified;
  c.invalidate(*a);
  EXPECT_EQ(c.find(0x20), nullptr);
  EXPECT_EQ(c.countState(SDState::Modified), 0u);
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(SwitchDirCache, SetIndexingSeparatesConflicts) {
  // 8 entries, 2-way => 4 sets; blocks 0x0 and 0x80 map to different sets
  // with 32B lines (block>>5 mod 4).
  SwitchDirCache c(8, 2, 32);
  auto* a = c.allocate(0x0);
  a->state = SDState::Modified;
  auto* b = c.allocate(0x80);
  b->state = SDState::Modified;
  EXPECT_NE(c.find(0x0), nullptr);
  EXPECT_NE(c.find(0x80), nullptr);
}

TEST(SwitchDirCache, CountState) {
  SwitchDirCache c(16, 4, 32);
  c.allocate(0x20)->state = SDState::Modified;
  c.allocate(0x40)->state = SDState::Transient;
  c.allocate(0x60)->state = SDState::Modified;
  EXPECT_EQ(c.countState(SDState::Modified), 2u);
  EXPECT_EQ(c.countState(SDState::Transient), 1u);
}

TEST(SwitchDirCache, RejectsBadGeometry) {
  EXPECT_THROW(SwitchDirCache(10, 4, 32), std::invalid_argument);
  EXPECT_THROW(SwitchDirCache(16, 4, 48), std::invalid_argument);
  EXPECT_THROW(SwitchDirCache(0, 4, 32), std::invalid_argument);
}

TEST(PortSchedule, TwoPortsPerCycle) {
  PortSchedule p(2);
  EXPECT_EQ(p.reserve(10), 0u);
  EXPECT_EQ(p.reserve(10), 0u);
  EXPECT_EQ(p.reserve(10), 1u);  // third access waits a cycle
  EXPECT_EQ(p.reserve(10), 1u);
  EXPECT_EQ(p.reserve(10), 2u);
}

TEST(PortSchedule, IdleCyclesResetBudget) {
  PortSchedule p(2);
  p.reserve(5);
  p.reserve(5);
  p.reserve(5);
  EXPECT_EQ(p.reserve(100), 0u);
}

TEST(PortSchedule, SinglePortSerializes) {
  PortSchedule p(1);
  EXPECT_EQ(p.reserve(0), 0u);
  EXPECT_EQ(p.reserve(0), 1u);
  EXPECT_EQ(p.reserve(0), 2u);
  EXPECT_EQ(p.reserve(1), 2u);  // still behind the backlog
}

TEST(PortSchedule, RejectsZeroPorts) { EXPECT_THROW(PortSchedule(0), std::invalid_argument); }

}  // namespace
}  // namespace dresar
