#include "switchdir/dir_cache.h"

#include <gtest/gtest.h>

#include "switchdir/port_schedule.h"

namespace dresar {
namespace {

TEST(SwitchDirCache, MissThenAllocateThenHit) {
  SwitchDirCache c(64, 4, 32);
  EXPECT_EQ(c.find(0x100), nullptr);
  SDEntry* e = c.allocate(0x100);
  ASSERT_NE(e, nullptr);
  e->state = SDState::Modified;
  e->owner = 3;
  SDEntry* f = c.find(0x100);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->owner, 3u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(SwitchDirCache, LruEvictsOldestModified) {
  // 1 set of 2 ways: entries=2, assoc=2 -> numSets=1.
  SwitchDirCache c(2, 2, 32);
  auto* a = c.allocate(0x20);
  a->state = SDState::Modified;
  auto* b = c.allocate(0x40);
  b->state = SDState::Modified;
  c.find(0x20);  // touch A, making B the LRU
  auto* d = c.allocate(0x60);
  d->state = SDState::Modified;
  EXPECT_NE(c.find(0x20), nullptr);
  EXPECT_EQ(c.find(0x40), nullptr);  // evicted
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(SwitchDirCache, TransientEntriesArePinned) {
  SwitchDirCache c(2, 2, 32);
  auto* a = c.allocate(0x20);
  a->state = SDState::Transient;
  a->requester = 5;
  auto* b = c.allocate(0x40);
  b->state = SDState::Transient;
  b->requester = 6;
  // Both ways pinned: allocation must fail, not displace a transient entry.
  EXPECT_EQ(c.allocate(0x60), nullptr);
  EXPECT_EQ(c.stats().allocFailures, 1u);
  EXPECT_NE(c.find(0x20), nullptr);
  EXPECT_NE(c.find(0x40), nullptr);
}

TEST(SwitchDirCache, AllocateIsFindOrAllocate) {
  SwitchDirCache c(64, 4, 32);
  SDEntry* e = c.allocate(0x80);
  e->state = SDState::Modified;
  e->owner = 7;
  SDEntry* again = c.allocate(0x80);
  EXPECT_EQ(again, e);
  EXPECT_EQ(again->owner, 7u);
  EXPECT_EQ(c.stats().allocations, 1u);
}

TEST(SwitchDirCache, InvalidateFreesWay) {
  SwitchDirCache c(2, 2, 32);
  auto* a = c.allocate(0x20);
  a->state = SDState::Modified;
  c.invalidate(*a);
  EXPECT_EQ(c.find(0x20), nullptr);
  EXPECT_EQ(c.countState(SDState::Modified), 0u);
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(SwitchDirCache, SetIndexingSeparatesConflicts) {
  // 8 entries, 2-way => 4 sets; blocks 0x0 and 0x80 map to different sets
  // with 32B lines (block>>5 mod 4).
  SwitchDirCache c(8, 2, 32);
  auto* a = c.allocate(0x0);
  a->state = SDState::Modified;
  auto* b = c.allocate(0x80);
  b->state = SDState::Modified;
  EXPECT_NE(c.find(0x0), nullptr);
  EXPECT_NE(c.find(0x80), nullptr);
}

TEST(SwitchDirCache, CountState) {
  SwitchDirCache c(16, 4, 32);
  c.allocate(0x20)->state = SDState::Modified;
  c.allocate(0x40)->state = SDState::Transient;
  c.allocate(0x60)->state = SDState::Modified;
  EXPECT_EQ(c.countState(SDState::Modified), 2u);
  EXPECT_EQ(c.countState(SDState::Transient), 1u);
}

TEST(SwitchDirCache, RejectsBadGeometry) {
  EXPECT_THROW(SwitchDirCache(10, 4, 32), std::invalid_argument);
  EXPECT_THROW(SwitchDirCache(16, 4, 48), std::invalid_argument);
  EXPECT_THROW(SwitchDirCache(0, 4, 32), std::invalid_argument);
}

TEST(SwitchDirCache, RejectsUnknownReplacementPolicy) {
  EXPECT_THROW(SwitchDirCache(16, 4, 32, "plru"), std::invalid_argument);
  EXPECT_THROW(SwitchDirCache(16, 4, 32, ""), std::invalid_argument);
}

// Regression: a set full of valid SHARED (switch-cache clean-data) entries
// must still be allocatable — SHARED ways are ordinary LRU victims. The
// pre-fix victim filter only offered MODIFIED ways, so this allocation
// returned nullptr and the set was permanently wedged for new deposits.
TEST(SwitchDirCache, SharedEntriesAreLruEvictable) {
  SwitchDirCache c(4, 4, 32);  // one 4-way set
  for (const Addr a : {0x20, 0x40, 0x60, 0x80}) {
    SDEntry* e = c.allocate(a);
    ASSERT_NE(e, nullptr);
    e->state = SDState::Shared;
  }
  SDEntry* e = c.allocate(0xa0);
  ASSERT_NE(e, nullptr);  // fails on the pre-fix filter
  e->state = SDState::Shared;
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().allocFailures, 0u);
  EXPECT_EQ(c.find(0x20), nullptr);  // the LRU way was the victim
  EXPECT_NE(c.find(0xa0), nullptr);
  EXPECT_EQ(c.countState(SDState::Shared), 4u);
}

TEST(SwitchDirCache, MixedSharedAndModifiedEvictByRecencyAlone) {
  SwitchDirCache c(2, 2, 32);
  c.allocate(0x20)->state = SDState::Shared;
  c.allocate(0x40)->state = SDState::Modified;
  c.find(0x20);  // the SHARED entry is now more recent than the MODIFIED one
  auto* d = c.allocate(0x60);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(c.find(0x20), nullptr);
  EXPECT_EQ(c.find(0x40), nullptr);  // recency decides, not state
}

TEST(SwitchDirCache, FifoIgnoresLookupHits) {
  SwitchDirCache c(2, 2, 32, "fifo");
  c.allocate(0x20)->state = SDState::Modified;
  c.allocate(0x40)->state = SDState::Modified;
  c.find(0x20);  // under LRU this would save 0x20; FIFO keeps insertion order
  c.allocate(0x60)->state = SDState::Modified;
  EXPECT_EQ(c.find(0x20), nullptr);  // first in, first out
  EXPECT_NE(c.find(0x40), nullptr);
}

TEST(SwitchDirCache, RandomPolicyIsDeterministicPerInstance) {
  // Two caches fed the identical access sequence make identical decisions:
  // the xorshift stream is seeded per instance, not from global state.
  const auto runSequence = [] {
    SwitchDirCache c(4, 4, 32, "random");
    for (Addr a = 0x20; a <= 0x200; a += 0x20) {
      if (SDEntry* e = c.allocate(a); e != nullptr) e->state = SDState::Modified;
    }
    std::vector<Addr> live;
    c.forEachValid([&](const SDEntry& e) { live.push_back(e.tag); });
    return live;
  };
  EXPECT_EQ(runSequence(), runSequence());
}

// Satellite fix: the recency tick is explicitly aged. With a tiny threshold
// the renumbering must fire and must preserve the eviction order exactly.
TEST(SwitchDirCache, StampAgingPreservesLruOrder) {
  SwitchDirCache c(4, 4, 32, "lru", /*stampAgingThreshold=*/8);
  for (const Addr a : {0x20, 0x40, 0x60, 0x80}) c.allocate(a)->state = SDState::Modified;
  // Touch in reverse so 0x80 becomes LRU, then burn ticks past the threshold.
  c.find(0x60);
  c.find(0x40);
  c.find(0x20);
  for (int i = 0; i < 8; ++i) c.find(0x20);
  EXPECT_GE(c.stats().stampAgings, 1u);
  // Eviction order must still be 0x80 (LRU) first.
  SDEntry* e = c.allocate(0xa0);
  ASSERT_NE(e, nullptr);
  e->state = SDState::Modified;
  EXPECT_EQ(c.find(0x80), nullptr);
  EXPECT_NE(c.find(0x20), nullptr);
  EXPECT_NE(c.find(0x40), nullptr);
  EXPECT_NE(c.find(0x60), nullptr);
}

TEST(SwitchDirCache, StampAgingRejectsZeroThreshold) {
  EXPECT_THROW(SwitchDirCache(16, 4, 32, "lru", 0), std::invalid_argument);
}

TEST(SwitchDirCache, ReportsPolicyName) {
  EXPECT_STREQ(SwitchDirCache(16, 4, 32).replacementPolicyName(), "lru");
  EXPECT_STREQ(SwitchDirCache(16, 4, 32, "random").replacementPolicyName(), "random");
}

TEST(PortSchedule, TwoPortsPerCycle) {
  PortSchedule p(2);
  EXPECT_EQ(p.reserve(10), 0u);
  EXPECT_EQ(p.reserve(10), 0u);
  EXPECT_EQ(p.reserve(10), 1u);  // third access waits a cycle
  EXPECT_EQ(p.reserve(10), 1u);
  EXPECT_EQ(p.reserve(10), 2u);
}

TEST(PortSchedule, IdleCyclesResetBudget) {
  PortSchedule p(2);
  p.reserve(5);
  p.reserve(5);
  p.reserve(5);
  EXPECT_EQ(p.reserve(100), 0u);
}

TEST(PortSchedule, SinglePortSerializes) {
  PortSchedule p(1);
  EXPECT_EQ(p.reserve(0), 0u);
  EXPECT_EQ(p.reserve(0), 1u);
  EXPECT_EQ(p.reserve(0), 2u);
  EXPECT_EQ(p.reserve(1), 2u);  // still behind the backlog
}

TEST(PortSchedule, RejectsZeroPorts) { EXPECT_THROW(PortSchedule(0), std::invalid_argument); }

TEST(PortSchedule, BudgetedReserveThrottlesBelowFullWidth) {
  // 2-of-2 ports but a budget of 1: the second access in a cycle spills over
  // even though a physical port is free (phase-priority holds it back).
  PortSchedule p(2);
  EXPECT_EQ(p.reserve(10, 1), 0u);
  EXPECT_EQ(p.reserve(10, 1), 1u);
  EXPECT_EQ(p.reserve(10, 1), 2u);
}

TEST(PortSchedule, BudgetIsClampedToPhysicalPorts) {
  PortSchedule p(2);
  EXPECT_EQ(p.reserve(10, 100), 0u);  // budget can't exceed the ports
  EXPECT_EQ(p.reserve(10, 100), 0u);
  EXPECT_EQ(p.reserve(10, 100), 1u);
  EXPECT_EQ(p.reserve(20, 0), 0u);  // and can't starve entirely (min 1)
  EXPECT_EQ(p.reserve(20, 0), 1u);
}

}  // namespace
}  // namespace dresar
