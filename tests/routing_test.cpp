// RoutingPolicy registry and policy behaviour: the LCA baseline is a pure
// pass-through, adaptive-minimal picks the cheapest turnaround digit with
// baseline-preferring ties, and its tie-break RNG advances only on genuine
// multi-way ties so idle networks replay deterministically.
#include "interconnect/routing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/config.h"
#include "interconnect/topology.h"

namespace dresar {
namespace {

constexpr std::uint64_t kSeed = 0x5EEDull;

TEST(RoutingRegistry, NamesAndFactory) {
  const std::vector<std::string>& names = routingPolicyNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "lca");
  EXPECT_EQ(names[1], "adaptive");
  for (const std::string& n : names) {
    EXPECT_TRUE(isRoutingPolicy(n));
    auto p = makeRoutingPolicy(n, kSeed);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), n);
  }
  EXPECT_FALSE(isRoutingPolicy("dimension-order"));
  EXPECT_THROW(makeRoutingPolicy("dimension-order", kSeed), std::invalid_argument);
  EXPECT_NE(routingPolicyList().find("lca"), std::string::npos);
  EXPECT_NE(routingPolicyList().find("adaptive"), std::string::npos);
}

TEST(RoutingRegistry, ConfigValidatesPolicyNames) {
  NetworkConfig cfg;
  EXPECT_TRUE(cfg.validationErrors().empty());
  cfg.routing = "adaptive";
  EXPECT_TRUE(cfg.validationErrors().empty());
  cfg.routing = "bogus";
  const std::vector<std::string> errs = cfg.validationErrors();
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs.front().find("bogus"), std::string::npos);
}

TEST(RoutingLca, AlwaysReturnsBaselineWithoutEvaluatingCosts) {
  auto lca = makeRoutingPolicy("lca", kSeed);
  EXPECT_FALSE(lca->adaptive());
  int evals = 0;
  const RouteCostFn counting = [&](std::uint32_t) -> std::uint64_t {
    ++evals;
    return 0;
  };
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_EQ(lca->choose(4, b, counting), b);
  }
  EXPECT_EQ(evals, 0);
}

TEST(RoutingAdaptive, PicksCheapestDigit) {
  auto pol = makeRoutingPolicy("adaptive", kSeed);
  EXPECT_TRUE(pol->adaptive());
  const std::vector<std::uint64_t> costs = {7, 3, 9, 5};
  const RouteCostFn cost = [&](std::uint32_t f) { return costs[f]; };
  EXPECT_EQ(pol->choose(4, 0, cost), 1u);
}

TEST(RoutingAdaptive, TiePrefersBaseline) {
  auto pol = makeRoutingPolicy("adaptive", kSeed);
  const RouteCostFn flat = [](std::uint32_t) -> std::uint64_t { return 5; };
  // All digits tie: the baseline must win every time (idle network routes
  // exactly like lca).
  for (std::uint32_t b = 0; b < 4; ++b) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(pol->choose(4, b, flat), b);
    }
  }
}

TEST(RoutingAdaptive, BaselineLessTieIsDeterministicPerSeed) {
  // Baseline digit is strictly more expensive than a two-way tie of others:
  // the pick must come from the tied minima, and the same seed must replay
  // the same sequence.
  const RouteCostFn cost = [](std::uint32_t f) -> std::uint64_t {
    return f == 0 ? 9 : 2;  // digits 1..3 tie below the baseline 0
  };
  std::vector<std::uint32_t> first, second;
  for (int run = 0; run < 2; ++run) {
    auto pol = makeRoutingPolicy("adaptive", kSeed);
    std::vector<std::uint32_t>& out = run == 0 ? first : second;
    for (int i = 0; i < 16; ++i) {
      const std::uint32_t f = pol->choose(4, 0, cost);
      EXPECT_NE(f, 0u);
      out.push_back(f);
    }
  }
  EXPECT_EQ(first, second);
}

TEST(RoutingAdaptive, WidthOneShortCircuits) {
  auto pol = makeRoutingPolicy("adaptive", kSeed);
  int evals = 0;
  const RouteCostFn counting = [&](std::uint32_t) -> std::uint64_t {
    ++evals;
    return 0;
  };
  EXPECT_EQ(pol->choose(1, 0, counting), 0u);
  EXPECT_EQ(evals, 0);
}

bool sameHop(const Hop& a, const Hop& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == Hop::Kind::Switch) return a.sw == b.sw;
  return a.ep.kind == b.ep.kind && a.ep.node == b.ep.node;
}

TEST(RoutingTopology, TurnaroundChoicesMatchBaselineRoute) {
  // Every candidate digit must yield a legal route of the same length as the
  // baseline, and routeChoice(baseline) must be byte-identical to route().
  const Butterfly topo(16, 4);
  for (NodeId src = 0; src < 16; ++src) {
    for (NodeId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      const TurnaroundChoices tc = topo.turnaround(procEp(src), procEp(dst));
      ASSERT_GE(tc.width, 1u);
      ASSERT_LT(tc.baseline, tc.width);
      const Route base = topo.route(procEp(src), procEp(dst));
      const Route viaBaseline = topo.routeChoice(procEp(src), procEp(dst), tc.baseline);
      ASSERT_EQ(base.size(), viaBaseline.size());
      for (std::size_t h = 0; h < base.size(); ++h) {
        EXPECT_TRUE(sameHop(base[h], viaBaseline[h]));
      }
      for (std::uint32_t f = 0; f < tc.width; ++f) {
        const Route alt = topo.routeChoice(procEp(src), procEp(dst), f);
        EXPECT_EQ(alt.size(), base.size());
      }
    }
  }
}

}  // namespace
}  // namespace dresar
