// Tests for the streaming JSON writer and the bench run recorder: document
// shape, string escaping, non-finite handling, misuse detection, and the
// "dresar-bench-results/v2" schema emitted behind --json=FILE.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "sim/json_writer.h"
#include "sim/run_recorder.h"

namespace dresar {
namespace {

std::string emit(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter w(os);
  body(w);
  EXPECT_TRUE(w.done());
  return os.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(emit([](JsonWriter& w) {
              w.beginObject();
              w.endObject();
            }),
            "{}");
  EXPECT_EQ(emit([](JsonWriter& w) {
              w.beginArray();
              w.endArray();
            }),
            "[]");
}

TEST(JsonWriter, ObjectFieldsAndCommas) {
  const std::string out = emit([](JsonWriter& w) {
    w.beginObject();
    w.field("a", 1);
    w.field("b", std::string_view("x"));
    w.field("c", true);
    w.endObject();
  });
  EXPECT_EQ(out, "{\"a\":1,\"b\":\"x\",\"c\":true}");
}

TEST(JsonWriter, NestedStructures) {
  const std::string out = emit([](JsonWriter& w) {
    w.beginObject();
    w.key("runs");
    w.beginArray();
    w.beginObject();
    w.field("n", std::uint64_t{7});
    w.endObject();
    w.value(2);
    w.endArray();
    w.endObject();
  });
  EXPECT_EQ(out, "{\"runs\":[{\"n\":7},2]}");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const std::string out = emit([](JsonWriter& w) {
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(1.5);
    w.endArray();
  });
  EXPECT_EQ(out, "[null,null,1.5]");
}

TEST(JsonWriter, MisuseThrows) {
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key outside object
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("k");
    EXPECT_THROW(w.endObject(), std::logic_error);  // dangling key
  }
}

TEST(RunRecorder, EmitsV2Schema) {
  RunRecorder rec;
  rec.setBench("fig8_ctoc_reduction");
  rec.setOption("mode", "paper");
  RunRecord r;
  r.app = "FFT";
  r.config = "sd-512";
  r.kind = "scientific";
  r.sdEntries = 512;
  r.wallSeconds = 0.25;
  r.events = 1000;
  r.metric("exec_time", 4242.0);
  rec.add(r);

  const std::string json = rec.toJson();
  EXPECT_NE(json.find("\"schema\":\"dresar-bench-results/v2\""), std::string::npos);
  // No tracer ran, so the optional v2 latency_stages block must be absent.
  EXPECT_EQ(json.find("\"latency_stages\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"fig8_ctoc_reduction\""), std::string::npos);
  EXPECT_NE(json.find("\"options\":{\"mode\":\"paper\"}"), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"FFT\""), std::string::npos);
  EXPECT_NE(json.find("\"config\":\"sd-512\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"scientific\""), std::string::npos);
  EXPECT_NE(json.find("\"sd_entries\":512"), std::string::npos);
  EXPECT_NE(json.find("\"events\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"exec_time\":4242"), std::string::npos);
  // events/sec = 1000 / 0.25
  EXPECT_NE(json.find("\"events_per_sec\":4000"), std::string::npos);
  EXPECT_NE(json.find("\"sim_events_total\":1000"), std::string::npos);
}

TEST(RunRecorder, EmitsLatencyStagesWhenTraced) {
  RunRecorder rec;
  rec.setBench("fig9_read_latency");
  RunRecord r;
  r.app = "SOR";
  r.config = "sd-512";
  r.kind = "scientific";
  r.hasTrace = true;
  r.traceReadTxns = 10;
  r.traceReadEndToEnd = 1500.0;
  r.traceReadStage[static_cast<std::size_t>(TxnStage::RequestNet)] = 600.0;
  r.traceReadStage[static_cast<std::size_t>(TxnStage::HomeDir)] = 900.0;
  rec.add(r);

  const std::string json = rec.toJson();
  EXPECT_NE(json.find("\"latency_stages\":{\"read\":{"), std::string::npos);
  EXPECT_NE(json.find("\"txns\":10"), std::string::npos);
  EXPECT_NE(json.find("\"end_to_end_cycles\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"request_net\":600"), std::string::npos);
  EXPECT_NE(json.find("\"home_dir\":900"), std::string::npos);
  EXPECT_NE(json.find("\"write\":{"), std::string::npos);
  EXPECT_NE(json.find("\"backoff\":0"), std::string::npos);
}

TEST(RunRecorder, TotalsAggregateAcrossRuns) {
  RunRecorder rec;
  rec.setBench("x");
  for (int i = 0; i < 3; ++i) {
    RunRecord r;
    r.app = "app" + std::to_string(i);
    r.config = "base";
    r.kind = "trace";
    r.wallSeconds = 0.5;
    r.events = 100;
    rec.add(r);
  }
  const std::string json = rec.toJson();
  EXPECT_NE(json.find("\"sim_events_total\":300"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds_total\":1.5"), std::string::npos);
  EXPECT_EQ(rec.runs().size(), 3u);
}

TEST(RunRecorder, BalancedDocument) {
  // Structural sanity without a parser: every brace/bracket closes, and the
  // document never dips below depth zero.
  RunRecorder rec;
  rec.setBench("b");
  RunRecord r;
  r.app = "a \"quoted\" name";  // must be escaped, not break the document
  r.config = "base";
  r.kind = "trace";
  rec.add(r);
  const std::string json = rec.toJson();

  int depth = 0;
  bool inString = false;
  bool escaped = false;
  for (const char ch : json) {
    if (inString) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        inString = false;
      }
      continue;
    }
    if (ch == '"') {
      inString = true;
    } else if (ch == '{' || ch == '[') {
      ++depth;
    } else if (ch == '}' || ch == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(inString);
  EXPECT_NE(json.find("a \\\"quoted\\\" name"), std::string::npos);
}

}  // namespace
}  // namespace dresar
