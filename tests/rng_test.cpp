#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dresar {
namespace {

/// Pearson chi-squared statistic for observed counts vs expected counts.
double chiSquared(const std::vector<std::uint64_t>& obs, const std::vector<double>& exp) {
  double chi2 = 0.0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const double d = static_cast<double>(obs[i]) - exp[i];
    chi2 += d * d / exp[i];
  }
  return chi2;
}

/// Loose upper bound on the chi-squared critical value: mean + 5 sigma
/// (df + 5*sqrt(2*df)), far beyond the p=0.001 quantile for the df used here.
/// With fixed seeds the draws are deterministic, so this cannot flake — it
/// regresses only if below()/sample() become genuinely non-uniform (e.g. the
/// old `next() % bound` bias at adversarial bounds).
double chi2Bound(std::size_t df) {
  return static_cast<double>(df) + 5.0 * std::sqrt(2.0 * static_cast<double>(df));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(r.below(10), 10u);
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng r(123);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BelowPassesChiSquaredUniformity) {
  for (const std::uint64_t bound : {3ull, 7ull, 10ull, 97ull, 1000ull}) {
    Rng r(0xDEADBEEFull + bound);
    const int n = 200'000;
    std::vector<std::uint64_t> counts(bound, 0);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = r.below(bound);
      ASSERT_LT(v, bound);
      ++counts[v];
    }
    const std::vector<double> expected(bound, static_cast<double>(n) / static_cast<double>(bound));
    EXPECT_LT(chiSquared(counts, expected), chi2Bound(bound - 1)) << "bound=" << bound;
  }
}

TEST(Rng, BelowCoversFullRangeNearPowerOfTwo) {
  // Bounds adjacent to 2^k exercise the rejection path's threshold math.
  for (const std::uint64_t bound : {(1ull << 32) - 1, (1ull << 32) + 1}) {
    Rng r(11);
    std::uint64_t mx = 0;
    for (int i = 0; i < 10'000; ++i) {
      const std::uint64_t v = r.below(bound);
      ASSERT_LT(v, bound);
      mx = std::max(mx, v);
    }
    EXPECT_GT(mx, bound / 2);  // draws reach the upper half
  }
}

TEST(Zipf, HeadIsHotterThanTail) {
  ZipfSampler z(1000, 1.0);
  EXPECT_GT(z.pmf(0), z.pmf(10));
  EXPECT_GT(z.pmf(10), z.pmf(500));
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(100, 0.8);
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfSampler z(50, 1.0);
  Rng r(99);
  std::vector<int> counts(50, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.pmf(0), 0.02);
  // Monotone-ish head.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[30]);
}

TEST(Zipf, SamplingPassesChiSquaredAgainstPmf) {
  ZipfSampler z(50, 1.0);
  Rng r(4242);
  const int n = 200'000;
  std::vector<std::uint64_t> counts(z.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  std::vector<double> expected(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) expected[i] = n * z.pmf(i);
  EXPECT_LT(chiSquared(counts, expected), chi2Bound(z.size() - 1));
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument); }

}  // namespace
}  // namespace dresar
