#include "common/rng.h"

#include <gtest/gtest.h>

namespace dresar {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(r.below(10), 10u);
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng r(123);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Zipf, HeadIsHotterThanTail) {
  ZipfSampler z(1000, 1.0);
  EXPECT_GT(z.pmf(0), z.pmf(10));
  EXPECT_GT(z.pmf(10), z.pmf(500));
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(100, 0.8);
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfSampler z(50, 1.0);
  Rng r(99);
  std::vector<int> counts(50, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.pmf(0), 0.02);
  // Monotone-ish head.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[30]);
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument); }

}  // namespace
}  // namespace dresar
