// Scaling smoke tests: the k-stage BMIN generalization must produce valid
// butterfly routes at 32/64/128 nodes, the message- and flit-level models
// must agree on what the workload did at scale, and repeated runs must stay
// byte-identical. Also pins the RunRequest API redesign: the deprecated
// 3-argument Simulation::run shim is bit-identical to the struct form.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>

#include "interconnect/topology.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

namespace dresar {
namespace {

// ---------------------------------------------------------------------------
// Route validity properties, checked independently of the implementation's
// digit helpers.

std::uint32_t ipow(std::uint32_t b, std::uint32_t e) {
  std::uint32_t v = 1;
  while (e--) v *= b;
  return v;
}

// Low digits of switch coordinate c shared between stage-j neighbours and
// below: c mod half^(k-1-j).
std::uint32_t loDigits(const Butterfly& t, std::uint32_t j, std::uint32_t c) {
  return c % ipow(t.half(), t.numStages() - 1 - j);
}

// Wiring rule: a stage-j switch a and stage-(j+1) switch b are linked iff
// they differ at most in the digit at position k-2-j (weight w): the digits
// below w and the digits above that position must match.
bool linked(const Butterfly& t, std::uint32_t j, std::uint32_t a, std::uint32_t b) {
  const std::uint32_t w = ipow(t.half(), t.numStages() - 2 - j);
  return a % w == b % w && a / (w * t.half()) == b / (w * t.half());
}

TEST(Scaling, ForwardRoutesAreValidButterflyPaths) {
  for (const std::uint32_t n : {32u, 64u, 128u}) {
    const Butterfly t(n, 8);
    const std::uint32_t k = t.numStages();
    for (NodeId p = 0; p < n; ++p) {
      for (NodeId m = 0; m < n; ++m) {
        const Route r = t.route(procEp(p), memEp(m));
        ASSERT_EQ(r.size(), k + 1) << n << " " << p << "->" << m;
        ASSERT_EQ(r[0].sw, t.procSwitch(p));
        ASSERT_EQ(r[k - 1].sw, t.memSwitch(m));
        ASSERT_EQ(r[k].kind, Hop::Kind::Deliver);
        ASSERT_EQ(r[k].ep, memEp(m));
        for (std::uint32_t j = 0; j + 1 < k; ++j) {
          ASSERT_EQ(r[j].sw.stage, j);
          ASSERT_TRUE(linked(t, j, r[j].sw.index, r[j + 1].sw.index))
              << n << " nodes, " << p << "->" << m << " hop " << j;
        }
      }
    }
  }
}

TEST(Scaling, BackwardRoutesMirrorForward) {
  for (const std::uint32_t n : {32u, 128u}) {
    const Butterfly t(n, 8);
    const std::uint32_t k = t.numStages();
    for (NodeId p = 0; p < n; p += 3) {
      for (NodeId m = 0; m < n; m += 5) {
        const Route fwd = t.route(procEp(p), memEp(m));
        const Route bwd = t.route(memEp(m), procEp(p));
        ASSERT_EQ(bwd.size(), k + 1);
        for (std::uint32_t j = 0; j < k; ++j) {
          ASSERT_EQ(bwd[j].sw, fwd[k - 1 - j].sw)
              << n << " nodes, " << p << "<->" << m << " hop " << j;
        }
      }
    }
  }
}

TEST(Scaling, TurnaroundStopsAtLowestCommonAncestor) {
  for (const std::uint32_t n : {32u, 64u, 128u}) {
    const Butterfly t(n, 8);
    for (NodeId p = 0; p < n; ++p) {
      for (NodeId q = 0; q < n; ++q) {
        if (p == q) continue;
        const std::uint32_t cs = t.procSwitch(p).index;
        const std::uint32_t cq = t.procSwitch(q).index;
        // Lowest common ancestor stage: the smallest j whose shared low
        // digits already agree (same leaf turns at stage 0).
        std::uint32_t lca = 0;
        while (loDigits(t, lca, cs) != loDigits(t, lca, cq)) ++lca;
        const Route r = t.route(procEp(p), procEp(q));
        ASSERT_EQ(r.size(), 2u * lca + 2) << n << " " << p << "->" << q;
        ASSERT_EQ(r[0].sw, t.procSwitch(p));
        ASSERT_EQ(r[2 * lca].sw, t.procSwitch(q));
        ASSERT_EQ(r.back().ep, procEp(q));
        std::uint32_t maxStage = 0;
        for (std::uint32_t i = 0; i + 1 < r.size(); ++i) {
          maxStage = std::max(maxStage, r[i].sw.stage);
          const std::uint32_t lowerStage = std::min(r[i].sw.stage, r[i + 1].sw.stage);
          if (i + 2 < r.size()) {
            // Every up and every down hop uses a real butterfly link.
            const bool up = r[i + 1].sw.stage == r[i].sw.stage + 1;
            const std::uint32_t a = up ? r[i].sw.index : r[i + 1].sw.index;
            const std::uint32_t b = up ? r[i + 1].sw.index : r[i].sw.index;
            ASSERT_TRUE(linked(t, lowerStage, a, b))
                << n << " nodes, " << p << "->" << q << " hop " << i;
          }
        }
        // Minimality: the route never climbs above the lowest stage where
        // the two leaves share a subtree.
        ASSERT_EQ(maxStage, lca) << n << " " << p << "->" << q;
      }
    }
  }
}

TEST(Scaling, MemReachabilityMatchesSubtreeRule) {
  const Butterfly t(128, 8);
  // A leaf switch rewrites every digit above it on the climb, so stage 0
  // reaches all memories.
  EXPECT_TRUE(t.canReachMem(SwitchId{0, 0}, 0));
  EXPECT_TRUE(t.canReachMem(SwitchId{0, 0}, 127));
  // An intermediate switch is confined to its subtree: stage-2 switch 0
  // (k = 4) covers memories 0..15 only.
  EXPECT_TRUE(t.canReachMem(SwitchId{2, 0}, 15));
  EXPECT_FALSE(t.canReachMem(SwitchId{2, 0}, 16));
  // Top-stage switches reach exactly their own memories.
  EXPECT_TRUE(t.canReachMem(t.memSwitch(9), 9));
  EXPECT_FALSE(t.canReachMem(t.memSwitch(9), 13));
}

// ---------------------------------------------------------------------------
// Execution smoke at scale.

RunMetrics runSor(std::uint32_t numNodes, bool flitLevel) {
  SystemConfig cfg = SystemConfig::paperTable2();
  cfg.numNodes = numNodes;
  cfg.net.flitLevel = flitLevel;
  Simulation sim(cfg);
  RunMetrics m = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  EXPECT_TRUE(sim.system().quiescent());
  return m;
}

TEST(Scaling, MessageAndFlitModelsAgreeAtScale) {
  for (const std::uint32_t n : {32u, 64u}) {
    const RunMetrics msg = runSor(n, false);
    const RunMetrics flit = runSor(n, true);
    // The demand access stream is workload-determined, so it must match
    // exactly between the two network models.
    EXPECT_EQ(msg.reads, flit.reads) << n;
    EXPECT_EQ(msg.stores, flit.stores) << n;
    EXPECT_GT(msg.readMisses, 0u) << n;
    // Delivered message counts may differ slightly: flit-level timing shifts
    // which requests race and retry. They must still agree closely.
    const auto close = [](std::uint64_t a, std::uint64_t b) {
      const double lo = static_cast<double>(std::min(a, b));
      const double hi = static_cast<double>(std::max(a, b));
      return hi <= lo * 1.05;
    };
    EXPECT_TRUE(close(msg.netMessages, flit.netMessages))
        << n << ": " << msg.netMessages << " vs " << flit.netMessages;
    EXPECT_TRUE(close(msg.readMisses, flit.readMisses))
        << n << ": " << msg.readMisses << " vs " << flit.readMisses;
  }
}

std::string statsDumpAtScale(std::uint32_t numNodes, std::uint64_t faultSeed) {
  SystemConfig cfg = SystemConfig::paperTable2();
  cfg.numNodes = numNodes;
  if (faultSeed != 0) {
    cfg.fault.msgDropRate = 0.01;
    cfg.fault.seed = faultSeed;
  }
  Simulation sim(cfg);
  (void)sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  std::ostringstream os;
  sim.system().stats().dump(os);
  os << "exec_time=" << sim.system().now()
     << " events=" << sim.system().kernel().executedEvents();
  return os.str();
}

TEST(Scaling, RunsAreDeterministicAcrossSeedsAtScale) {
  for (const std::uint32_t n : {32u, 64u}) {
    for (const std::uint64_t seed : {0ull, 7ull, 8ull}) {
      const std::string first = statsDumpAtScale(n, seed);
      const std::string second = statsDumpAtScale(n, seed);
      EXPECT_EQ(first, second) << n << " nodes, seed " << seed;
      EXPECT_FALSE(first.empty());
    }
    // Distinct fault seeds perturb the run; the baseline differs from both.
    EXPECT_NE(statsDumpAtScale(n, 7), statsDumpAtScale(n, 8)) << n;
  }
}

// ---------------------------------------------------------------------------
// RunRequest API redesign: the deprecated positional shim is gone for good.

/// True when S::run accepts the old positional (workload, scale, verify)
/// form. Guards against the shim creeping back in a refactor.
template <typename S>
concept HasPositionalRun = requires(S s) {
  s.run(std::string("sor"), WorkloadScale::tiny(), true);
};

static_assert(!HasPositionalRun<Simulation>,
              "the deprecated 3-arg Simulation::run shim must stay removed; "
              "callers use the RunRequest struct form");

TEST(RunRequest, StructFormIsTheOnlyRunOverload) {
  SystemConfig cfg = SystemConfig::paperTable2();
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  EXPECT_GT(m.execTime, 0u);
  EXPECT_GT(m.reads, 0u);
}

TEST(RunRequest, RequireVerifyDefaultsOnInBothForms) {
  RunRequest req;
  EXPECT_TRUE(req.requireVerify);
  EXPECT_TRUE(req.workload.empty());
}

}  // namespace
}  // namespace dresar
