// Transaction tracing & latency attribution: interval bookkeeping, the
// stage-sums-equal-end-to-end invariant (unit and whole-system), ring
// eviction, Chrome export shape, and the guarantee that tracing never
// perturbs simulation results.
#include "common/txn_trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/metrics.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

TEST(TxnTracer, DisabledTracerIsInert) {
  TxnTracer t(false);
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.begin(0x100, 0, false, 5), 0u);
  t.record(0, TxnEvent::Issue, TxnLeg::Request, txnAtProc(0), 10);  // no-op
  t.complete(0);
  EXPECT_EQ(t.completedTxns(), 0u);
  EXPECT_EQ(t.liveTxns(), 0u);
}

TEST(TxnTracer, IntervalPartitionTilesEndToEnd) {
  TxnTracer t(true);
  const std::uint64_t id = t.begin(0x1000, 3, /*write=*/false, 10);
  ASSERT_NE(id, 0u);
  t.record(id, TxnEvent::Issue, TxnLeg::Request, txnAtProc(3), 15);
  t.record(id, TxnEvent::SwitchHop, TxnLeg::Request, txnAtSwitch(0), 20);
  t.record(id, TxnEvent::HomeArrive, TxnLeg::Request, txnAtMem(7), 25);
  t.record(id, TxnEvent::HomeService, TxnLeg::Request, txnAtMem(7), 60);
  t.record(id, TxnEvent::HomeInject, TxnLeg::Return, txnAtMem(7), 100);
  t.record(id, TxnEvent::SwitchHop, TxnLeg::Return, txnAtSwitch(1), 110);
  t.record(id, TxnEvent::Fill, TxnLeg::Return, txnAtProc(3), 120);
  t.complete(id);

  const TxnTracer::Totals& r = t.readTotals();
  EXPECT_EQ(r.txns, 1u);
  EXPECT_DOUBLE_EQ(r.endToEnd, 110.0);
  EXPECT_DOUBLE_EQ(r.stage[static_cast<std::size_t>(TxnStage::CacheAccess)], 5.0);
  EXPECT_DOUBLE_EQ(r.stage[static_cast<std::size_t>(TxnStage::RequestNet)], 10.0);
  EXPECT_DOUBLE_EQ(r.stage[static_cast<std::size_t>(TxnStage::HomeDir)], 35.0);
  EXPECT_DOUBLE_EQ(r.stage[static_cast<std::size_t>(TxnStage::HomeService)], 40.0);
  EXPECT_DOUBLE_EQ(r.stage[static_cast<std::size_t>(TxnStage::DataReturn)], 20.0);
  double sum = 0.0;
  for (const double s : r.stage) sum += s;
  EXPECT_DOUBLE_EQ(sum, r.endToEnd);

  std::size_t seen = 0;
  t.forEachCompleted([&](const TxnTracer::Txn& txn) {
    ++seen;
    EXPECT_EQ(txn.id, id);
    EXPECT_EQ(txn.start, 10u);
    EXPECT_EQ(txn.end, 120u);
    ASSERT_EQ(txn.events.size(), 8u);  // Begin + 7 recorded
    for (std::size_t i = 1; i < txn.events.size(); ++i) {
      EXPECT_GE(txn.events[i].at, txn.events[i - 1].at);
    }
  });
  EXPECT_EQ(seen, 1u);
}

TEST(TxnTracer, EventCapStillChargesStages) {
  TxnTracer t(true, TxnTracer::Config{1ull << 20, /*maxEventsPerTxn=*/3});
  const std::uint64_t id = t.begin(0x40, 1, /*write=*/true, 0);
  t.record(id, TxnEvent::Issue, TxnLeg::Request, txnAtProc(1), 4);
  t.record(id, TxnEvent::SwitchHop, TxnLeg::Request, txnAtSwitch(0), 8);  // at the cap
  t.record(id, TxnEvent::HomeArrive, TxnLeg::Request, txnAtMem(0), 12);  // dropped
  t.record(id, TxnEvent::Fill, TxnLeg::Return, txnAtProc(1), 30);        // dropped
  t.complete(id);
  EXPECT_EQ(t.droppedEvents(), 2u);
  const TxnTracer::Totals& w = t.writeTotals();
  EXPECT_EQ(w.txns, 1u);
  EXPECT_DOUBLE_EQ(w.endToEnd, 30.0);  // attribution unaffected by the cap
  double sum = 0.0;
  for (const double s : w.stage) sum += s;
  EXPECT_DOUBLE_EQ(sum, 30.0);
}

TEST(TxnTracer, RingEvictionPreservesAggregates) {
  // Each txn retains 3 events (Begin + 2); a 6-event ring holds two txns.
  TxnTracer t(true, TxnTracer::Config{6, 16});
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t id = t.begin(0x40u * static_cast<Addr>(i + 1), 0, false, 0);
    t.record(id, TxnEvent::Issue, TxnLeg::Request, txnAtProc(0), 2);
    t.record(id, TxnEvent::Fill, TxnLeg::Return, txnAtProc(0), 10);
    t.complete(id);
  }
  EXPECT_EQ(t.completedTxns(), 5u);
  EXPECT_EQ(t.evictedTxns(), 3u);
  std::size_t retained = 0;
  t.forEachCompleted([&](const TxnTracer::Txn&) { ++retained; });
  EXPECT_EQ(retained, 2u);
  EXPECT_DOUBLE_EQ(t.readTotals().endToEnd, 50.0);  // all five still counted
}

TEST(TxnTracer, RecordAfterCompleteIsIgnored) {
  TxnTracer t(true);
  const std::uint64_t id = t.begin(0x80, 2, false, 0);
  t.record(id, TxnEvent::Fill, TxnLeg::Return, txnAtProc(2), 40);
  t.complete(id);
  t.record(id, TxnEvent::Fill, TxnLeg::Return, txnAtProc(2), 90);  // duplicate fill
  EXPECT_DOUBLE_EQ(t.readTotals().endToEnd, 40.0);
}

TEST(TxnTracer, ChromeExportShape) {
  TxnTracer t(true);
  const std::uint64_t id = t.begin(0x1000, 3, false, 10);
  t.record(id, TxnEvent::Issue, TxnLeg::Request, txnAtProc(3), 15);
  t.record(id, TxnEvent::Fill, TxnLeg::Return, txnAtProc(3), 95);
  t.complete(id);

  std::ostringstream os;
  t.exportChrome(os, "unit test");
  const std::string doc = os.str();
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u) << doc;
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"cache_access\""), std::string::npos);
  EXPECT_NE(doc.find("\"data_return\""), std::string::npos);
  EXPECT_NE(doc.find("]}"), std::string::npos);
  // Balanced object braces — cheap well-formedness proxy (no strings in the
  // emitted events contain braces).
  std::size_t open = 0, close = 0;
  for (const char c : doc) {
    open += c == '{';
    close += c == '}';
  }
  EXPECT_EQ(open, close);
}

// ---------------------------------------------------------------------------
// Whole-system properties.
// ---------------------------------------------------------------------------

TEST(TxnTraceSystem, PerTxnStageSumsEqualEndToEnd) {
  for (const std::uint32_t sd : {0u, 512u}) {
    SystemConfig cfg;
    cfg.switchDir.entries = sd;
    cfg.txnTrace.enabled = true;
    System sys(cfg);
    auto w = makeWorkload("sor", WorkloadScale::tiny());
    runWorkload(sys, *w);

    const TxnTracer& t = sys.txnTracer();
    EXPECT_GT(t.completedTxns(), 0u) << "sd=" << sd;
    EXPECT_EQ(t.liveTxns(), 0u) << "sd=" << sd;  // quiescent at workload end
    std::uint64_t checked = 0;
    t.forEachCompleted([&](const TxnTracer::Txn& txn) {
      ++checked;
      Cycle sum = 0;
      for (const Cycle s : txn.stage) sum += s;
      EXPECT_EQ(sum, txn.end - txn.start) << "txn " << txn.id << " sd=" << sd;
      for (std::size_t i = 1; i < txn.events.size(); ++i) {
        EXPECT_GE(txn.events[i].at, txn.events[i - 1].at) << "txn " << txn.id;
      }
      EXPECT_EQ(txn.events.front().kind, TxnEvent::Begin);
      EXPECT_EQ(txn.events.back().kind, TxnEvent::Fill);
    });
    EXPECT_GT(checked, 0u);

    // Aggregates fold exactly the same intervals.
    const TxnTracer::Totals& r = t.readTotals();
    const TxnTracer::Totals& wr = t.writeTotals();
    EXPECT_GT(r.txns, 0u);
    EXPECT_GT(wr.txns, 0u) << "write transactions must be traced too";
    for (const TxnTracer::Totals* tot : {&r, &wr}) {
      double sum = 0.0;
      for (const double s : tot->stage) sum += s;
      EXPECT_DOUBLE_EQ(sum, tot->endToEnd);
    }
  }
}

TEST(TxnTraceSystem, FlitLevelNetworkTracesToo) {
  SystemConfig cfg;
  cfg.switchDir.entries = 512;
  cfg.net.flitLevel = true;
  cfg.txnTrace.enabled = true;
  System sys(cfg);
  auto w = makeWorkload("fft", WorkloadScale::tiny());
  runWorkload(sys, *w);
  const TxnTracer& t = sys.txnTracer();
  EXPECT_GT(t.completedTxns(), 0u);
  bool sawHop = false;
  t.forEachCompleted([&](const TxnTracer::Txn& txn) {
    Cycle sum = 0;
    for (const Cycle s : txn.stage) sum += s;
    EXPECT_EQ(sum, txn.end - txn.start) << "txn " << txn.id;
    for (const auto& e : txn.events) sawHop |= e.kind == TxnEvent::SwitchHop;
  });
  EXPECT_TRUE(sawHop) << "flit network should record per-switch hops";
}

std::string statsDump(const std::string& app, bool traced) {
  SystemConfig cfg;
  cfg.switchDir.entries = 512;
  cfg.txnTrace.enabled = traced;
  System sys(cfg);
  auto w = makeWorkload(app, WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  std::ostringstream os;
  sys.stats().dump(os);
  os << "exec=" << m.execTime << " events=" << sys.kernel().executedEvents();
  return os.str();
}

TEST(TxnTraceSystem, TracingDoesNotPerturbResults) {
  for (const char* app : {"sor", "fft"}) {
    EXPECT_EQ(statsDump(app, false), statsDump(app, true)) << app;
  }
}

TEST(TxnTraceSystem, MetricsCarryStageBreakdown) {
  SystemConfig cfg;
  cfg.switchDir.entries = 512;
  cfg.txnTrace.enabled = true;
  System sys(cfg);
  auto w = makeWorkload("sor", WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  EXPECT_GT(m.traceReadTxns, 0u);
  double readSum = 0.0;
  for (const double s : m.traceReadStage) readSum += s;
  EXPECT_DOUBLE_EQ(readSum, m.traceReadEndToEnd);
  EXPECT_GT(m.traceReadEndToEnd, 0.0);
}

}  // namespace
}  // namespace dresar
