// Flit-level wormhole network tests: pipelined latency, per-VC ordering,
// credit backpressure, snoop sink/spawn at head flits, and end-to-end
// equivalence with the message-level model on a full workload.
#include "interconnect/flit_network.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/scheduler.h"
#include "common/stats.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

// Observer wiring is immutable (NetworkHooks at construction): snoops come
// in through the fixture constructor, delivery handlers register on FnSink.
struct Fixture {
  SimKernel kernel{1};
  NetworkConfig cfg;
  FnSink sink;
  FlitNetwork net;
  StatRegistry& stats = kernel.registry(0);

  explicit Fixture(ISwitchSnoop* snoop = nullptr)
      : net(cfg, 16, 32, kernel, NetworkHooks{&sink, snoop, nullptr, nullptr}) {}

  void run() { kernel.run(); }
  [[nodiscard]] Cycle now() const { return kernel.now(); }
};

Message mkMsg(MsgType t, Endpoint src, Endpoint dst, Addr a = 0x100) {
  Message m;
  m.type = t;
  m.src = src;
  m.dst = dst;
  m.addr = a;
  m.requester = src.kind == EndpointKind::Proc ? src.node : kInvalidNode;
  return m;
}

TEST(FlitNetwork, DeliversHeaderMessage) {
  Fixture f;
  Cycle arrival = kNoCycle;
  f.sink.on(memEp(9), [&](const Message& m) {
    EXPECT_EQ(m.addr, 0x100u);
    arrival = f.now();
  });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_NE(arrival, kNoCycle);
  // 3 link traversals of 4 cycles + 2 core delays of 4, plus pipeline slack.
  EXPECT_GE(arrival, 20u);
  EXPECT_LE(arrival, 32u);
  EXPECT_EQ(f.net.inFlight(), 0u);
}

TEST(FlitNetwork, DataMessagePipelinesFlits) {
  Fixture f;
  Cycle headerArrival = 0, dataArrival = 0;
  f.sink.on(memEp(9), [&](const Message& m) {
    (carriesData(m.type) ? dataArrival : headerArrival) = f.now();
  });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9)));
  f.run();
  // Wormhole pipelining: 5 flits cost 4 extra link cycles per flit on the
  // last link only (cut-through), far less than store-and-forward.
  const Cycle dataLatency = dataArrival - headerArrival;
  EXPECT_GT(dataLatency, 12u);   // strictly longer than the 1-flit message
  EXPECT_LT(dataLatency, 3 * 20u);  // but not 3 full serializations
}

TEST(FlitNetwork, PerPathOrderingHolds) {
  Fixture f;
  std::vector<Addr> order;
  f.sink.on(memEp(9), [&](const Message& m) { order.push_back(m.addr); });
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9), 0xA));
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9), 0xB));
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9), 0xC));
  f.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0xAu);
  EXPECT_EQ(order[1], 0xBu);
  EXPECT_EQ(order[2], 0xCu);
}

TEST(FlitNetwork, ManyToOneContentionDeliversEverything) {
  Fixture f;
  int delivered = 0;
  f.sink.on(memEp(0), [&](const Message&) { ++delivered; });
  for (NodeId p = 0; p < 16; ++p) {
    f.net.send(mkMsg(MsgType::WriteBack, procEp(p), memEp(0), 0x100 + 0x40ull * p));
  }
  f.run();
  EXPECT_EQ(delivered, 16);
  EXPECT_EQ(f.net.inFlight(), 0u);
}

TEST(FlitNetwork, TinyBuffersStillDrainViaCredits) {
  SimKernel kernel{1};
  NetworkConfig cfg;
  cfg.bufferFlits = 1;  // most aggressive backpressure
  FnSink sink;
  FlitNetwork net(cfg, 16, 32, kernel, NetworkHooks{&sink, nullptr, nullptr, nullptr});
  int delivered = 0;
  sink.on(memEp(3), [&](const Message&) { ++delivered; });
  for (int i = 0; i < 8; ++i) {
    Message m = mkMsg(MsgType::WriteBack, procEp(1), memEp(3), 0x40ull * i);
    net.send(m);
  }
  kernel.run();
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(net.inFlight(), 0u);
}

class HeadSnoop : public ISwitchSnoop {
 public:
  SnoopOutcome onMessage(SwitchId sw, Cycle, Message& m, std::vector<Message>& spawn) override {
    ++seen;
    if (sink && sw.stage == 1) {
      if (reply) {
        Message r;
        r.type = MsgType::Retry;
        r.src = procEp(m.requester);
        r.dst = procEp(m.requester);
        r.addr = m.addr;
        r.requester = m.requester;
        r.marked = true;
        spawn.push_back(r);
      }
      return {false, 0};
    }
    return {};
  }
  int seen = 0;
  bool sink = false;
  bool reply = false;
};

TEST(FlitNetwork, SnoopRunsOncePerSwitch) {
  HeadSnoop snoop;
  Fixture f(&snoop);
  f.sink.on(memEp(9), [](const Message&) {});
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9)));  // 5 flits
  f.run();
  EXPECT_EQ(snoop.seen, 2);  // once per switch despite 5 flits
}

TEST(FlitNetwork, SunkMessageIsDrainedCompletely) {
  HeadSnoop snoop;
  snoop.sink = true;
  Fixture f(&snoop);
  bool delivered = false;
  f.sink.on(memEp(9), [&](const Message&) { delivered = true; });
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9)));
  f.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(f.net.messagesSunk(), 1u);
  EXPECT_EQ(f.net.inFlight(), 0u);  // every flit drained, credits restored
}

TEST(FlitNetwork, SpawnedMessageUsesInjectionPort) {
  HeadSnoop snoop;
  snoop.sink = true;
  snoop.reply = true;
  Fixture f(&snoop);
  bool retryArrived = false;
  f.sink.on(memEp(9), [](const Message&) {});
  f.sink.on(procEp(5), [&](const Message& m) {
    retryArrived = m.type == MsgType::Retry;
  });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_TRUE(retryArrived);
  EXPECT_GT(f.stats.counterValue("net.switch_injected"), 0u);
}

// The headline check: the full system produces the same protocol behaviour
// on both network models; only timing differs (and not wildly).
TEST(FlitNetwork, FullSystemMatchesMessageLevelProtocol) {
  RunMetrics msg, flit;
  for (const bool flitLevel : {false, true}) {
    SystemConfig cfg;
    cfg.net.flitLevel = flitLevel;
    cfg.switchDir.entries = 1024;
    System sys(cfg);
    auto w = makeWorkload("sor", WorkloadScale::tiny());
    (flitLevel ? flit : msg) = runWorkload(sys, *w);
  }
  // Deterministic kernels: identical read/miss structure.
  EXPECT_EQ(flit.reads, msg.reads);
  // Protocol shape agrees: switch directories capture transfers under both.
  EXPECT_GT(flit.svcCtoCSwitch + flit.svcSwitchWB, 0u);
  const double c2cRatio =
      static_cast<double>(flit.ctocServiced()) / std::max<std::uint64_t>(1, msg.ctocServiced());
  EXPECT_GT(c2cRatio, 0.7);
  EXPECT_LT(c2cRatio, 1.4);
  // Timing within a sane band of each other (wormhole is usually faster for
  // data messages; queueing detail differs).
  const double execRatio = static_cast<double>(flit.execTime) / static_cast<double>(msg.execTime);
  EXPECT_GT(execRatio, 0.5);
  EXPECT_LT(execRatio, 2.0);
}

}  // namespace
}  // namespace dresar
