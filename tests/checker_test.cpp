#include "sim/checker.h"

#include <gtest/gtest.h>

#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

TEST(ProtocolChecker, CleanRunPasses) {
  SystemConfig cfg;
  cfg.switchDir.entries = 1024;
  System sys(cfg);
  auto w = makeWorkload("sor", WorkloadScale::tiny());
  runWorkload(sys, *w);
  const CheckReport r = ProtocolChecker::check(sys);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.summary(), "protocol invariants hold");
}

TEST(ProtocolChecker, FreshSystemPasses) {
  SystemConfig cfg;
  System sys(cfg);
  const CheckReport r = ProtocolChecker::check(sys);
  EXPECT_TRUE(r.ok());
}

TEST(ProtocolChecker, AllKernelsBothConfigs) {
  for (const auto& name : workloadNames()) {
    for (const std::uint32_t sd : {0u, 512u}) {
      SystemConfig cfg;
      cfg.switchDir.entries = sd;
      System sys(cfg);
      auto w = makeWorkload(name, WorkloadScale::tiny());
      runWorkload(sys, *w);
      const CheckReport r = ProtocolChecker::check(sys);
      EXPECT_TRUE(r.ok()) << name << " sd=" << sd << ": " << r.summary();
    }
  }
}

TEST(ProtocolChecker, NonQuiescentSystemStillRunsSafeChecks) {
  SystemConfig cfg;
  cfg.switchDir.entries = 512;
  System sys(cfg);
  // Kick off one read miss and stop the simulation the moment the MSHR makes
  // the system non-quiescent (mid-transaction).
  sys.cache(0).cpuRead(0x4000, [](const ReadResult&) {});
  sys.kernel().runWhile([&] { return sys.quiescent(); });
  ASSERT_FALSE(sys.quiescent());

  const CheckReport r = ProtocolChecker::check(sys);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].find("not quiescent"), std::string::npos) << r.violations[0];
  // The transient-sensitive checks are skipped — and say so — while the
  // always-valid ones (double-M, home-contradicts-owner) still ran.
  EXPECT_FALSE(r.skipped.empty());
  EXPECT_NE(r.summary().find("skipped check(s)"), std::string::npos) << r.summary();
}

TEST(ProtocolChecker, SummaryListsViolations) {
  CheckReport r;
  r.violations.push_back("first");
  r.violations.push_back("second");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.summary().find("2 violation(s)"), std::string::npos);
  EXPECT_NE(r.summary().find("first"), std::string::npos);
}

}  // namespace
}  // namespace dresar
