// Parameterized property sweeps: the protocol must stay correct across cache
// geometries, line sizes, buffer depths and network models — each run ends
// with the full invariant check and a verified workload result.
#include <gtest/gtest.h>

#include "sim/checker.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

struct GeomParam {
  std::uint32_t lineBytes;
  std::uint32_t l2Bytes;
  std::uint32_t l2Assoc;
  std::uint32_t sdEntries;
  bool flitLevel;
};

class GeometrySweep : public ::testing::TestWithParam<GeomParam> {};

TEST_P(GeometrySweep, TcVerifiesAndInvariantsHold) {
  const GeomParam p = GetParam();
  SystemConfig cfg;
  cfg.lineBytes = p.lineBytes;
  cfg.l2Bytes = p.l2Bytes;
  cfg.l2Assoc = p.l2Assoc;
  cfg.l1Bytes = std::min(cfg.l1Bytes, p.l2Bytes / 2);
  cfg.switchDir.entries = p.sdEntries;
  cfg.net.flitLevel = p.flitLevel;
  System sys(cfg);
  auto w = makeWorkload("tc", WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  EXPECT_GT(m.reads, 0u);
  const CheckReport r = ProtocolChecker::check(sys);
  EXPECT_TRUE(r.ok()) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(
        GeomParam{32, 128 * 1024, 4, 1024, false},   // paper reference
        GeomParam{64, 128 * 1024, 4, 1024, false},   // wider lines
        GeomParam{128, 256 * 1024, 8, 1024, false},  // big lines, wide assoc
        GeomParam{32, 8 * 1024, 1, 1024, false},     // tiny direct-mapped L2
        GeomParam{32, 16 * 1024, 2, 256, false},     // small everything
        GeomParam{32, 128 * 1024, 4, 64, false},     // starved switch dir
        GeomParam{32, 32 * 1024, 4, 512, true},      // flit-level wormhole
        GeomParam{64, 64 * 1024, 2, 512, true}),     // flit-level, wide lines
    [](const auto& info) {
      const GeomParam& p = info.param;
      return "line" + std::to_string(p.lineBytes) + "_l2x" + std::to_string(p.l2Bytes / 1024) +
             "w" + std::to_string(p.l2Assoc) + "_sd" + std::to_string(p.sdEntries) +
             (p.flitLevel ? "_flit" : "");
    });

class BackoffSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BackoffSweep, RetryBackoffDoesNotAffectCorrectness) {
  SystemConfig cfg;
  cfg.retryBackoffCycles = GetParam();
  cfg.switchDir.entries = 256;  // small: more evictions, more stale retries
  System sys(cfg);
  auto w = makeWorkload("sor", WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  EXPECT_GT(m.reads, 0u);
  EXPECT_TRUE(ProtocolChecker::check(sys).ok());
}

INSTANTIATE_TEST_SUITE_P(Backoffs, BackoffSweep, ::testing::Values(4u, 24u, 100u),
                         [](const auto& info) { return "backoff" + std::to_string(info.param); });

class OccupancySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OccupancySweep, ControllerOccupancyScalesLatencyMonotonically) {
  // More controller occupancy can only slow things down, never break them.
  SystemConfig cfg;
  cfg.dirOccupancyCycles = GetParam();
  System sys(cfg);
  auto w = makeWorkload("fwa", WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  EXPECT_GT(m.execTime, 0u);
  EXPECT_TRUE(ProtocolChecker::check(sys).ok());
}

INSTANTIATE_TEST_SUITE_P(Occupancies, OccupancySweep, ::testing::Values(1u, 12u, 60u),
                         [](const auto& info) { return "occ" + std::to_string(info.param); });

TEST(OccupancyOrdering, HigherOccupancySlowsExecution) {
  Cycle fast = 0, slow = 0;
  for (const std::uint32_t occ : {1u, 60u}) {
    SystemConfig cfg;
    cfg.dirOccupancyCycles = occ;
    System sys(cfg);
    auto w = makeWorkload("fwa", WorkloadScale::tiny());
    const RunMetrics m = runWorkload(sys, *w);
    (occ == 1 ? fast : slow) = m.execTime;
  }
  EXPECT_LT(fast, slow);
}

}  // namespace
}  // namespace dresar
