// The synthetic TPC generators must reproduce the sharing statistics the
// paper reports for the IBM COMPASS traces (see DESIGN.md substitution #2).
#include "trace/tpc_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "trace/trace_sim.h"

namespace dresar {
namespace {

TEST(TpcGenerator, EmitsExactlyRefs) {
  TpcGenerator gen(TpcParams::tpcc(10000));
  TraceRecord r;
  std::uint64_t n = 0;
  while (gen.next(r)) ++n;
  EXPECT_EQ(n, 10000u);
  EXPECT_FALSE(gen.next(r));
}

TEST(TpcGenerator, Deterministic) {
  TpcGenerator a(TpcParams::tpcc(5000)), b(TpcParams::tpcc(5000));
  TraceRecord ra, rb;
  while (a.next(ra)) {
    ASSERT_TRUE(b.next(rb));
    EXPECT_EQ(ra.pid, rb.pid);
    EXPECT_EQ(ra.addr, rb.addr);
    EXPECT_EQ(ra.write, rb.write);
  }
}

TEST(TpcGenerator, PidsInRange) {
  TpcGenerator gen(TpcParams::tpcc(20000));
  TraceRecord r;
  while (gen.next(r)) ASSERT_LT(r.pid, 16u);
}

TEST(TpcGenerator, RegionsAreDisjoint) {
  TpcGenerator gen(TpcParams::tpcc(1));
  EXPECT_NE(gen.privateAddr(0, 0), gen.hotAddr(0));
  EXPECT_NE(gen.hotAddr(0), gen.warmAddr(0));
  EXPECT_NE(gen.privateAddr(0, 0), gen.privateAddr(1, 0));
}

struct TraceProfile {
  double dirtyFraction;
  double top10CtocShare;
  double missRate;
  std::size_t blocks;
};

TraceProfile profile(const TpcParams& p) {
  TraceConfig cfg;
  cfg.switchDir.entries = 0;
  TraceSimulator sim(cfg);
  sim.enableBlockStats();
  TpcGenerator gen(p);
  sim.run(gen);
  const TraceMetrics& m = sim.metrics();

  std::vector<BlockStat> v;
  std::uint64_t totalCtoc = 0;
  v.reserve(sim.blockStats().size());
  for (const auto& [addr, b] : sim.blockStats()) {
    v.push_back(b);
    totalCtoc += b.ctocs;
  }
  std::sort(v.begin(), v.end(),
            [](const BlockStat& a, const BlockStat& b) { return a.misses > b.misses; });
  std::uint64_t topCtoc = 0;
  for (std::size_t i = 0; i < v.size() / 10; ++i) topCtoc += v[i].ctocs;
  return {m.dirtyFraction(),
          totalCtoc != 0 ? static_cast<double>(topCtoc) / static_cast<double>(totalCtoc) : 0.0,
          static_cast<double>(m.readMisses) / static_cast<double>(m.reads), v.size()};
}

TEST(TpcCalibration, TpccMatchesPaperFigure1And2) {
  const TraceProfile p = profile(TpcParams::tpcc(1'000'000));
  // Paper: ~38% of TPC-C read misses are c2c (Figure 1).
  EXPECT_GT(p.dirtyFraction, 0.32);
  EXPECT_LT(p.dirtyFraction, 0.48);
  // Paper: top 10% of blocks account for ~88% of c2c (Figure 2).
  EXPECT_GT(p.top10CtocShare, 0.80);
  EXPECT_LT(p.top10CtocShare, 0.95);
  EXPECT_GT(p.blocks, 10'000u);  // tens of thousands of distinct blocks
}

TEST(TpcCalibration, TpcdMatchesPaperFigure1) {
  const TraceProfile p = profile(TpcParams::tpcd(1'000'000));
  // Paper: ~62% of TPC-D read misses are c2c.
  EXPECT_GT(p.dirtyFraction, 0.52);
  EXPECT_LT(p.dirtyFraction, 0.72);
}

TEST(TpcCalibration, TpcdIsDirtierThanTpcc) {
  const TraceProfile c = profile(TpcParams::tpcc(500'000));
  const TraceProfile d = profile(TpcParams::tpcd(500'000));
  EXPECT_GT(d.dirtyFraction, c.dirtyFraction);
}

}  // namespace
}  // namespace dresar
