// End-to-end: every scientific kernel runs to completion on the full
// 16-node system, verifies numerically, and satisfies the protocol
// invariants — with switch directories off (Base) and on.
#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/simulation.h"

namespace dresar {
namespace {

SystemConfig baseConfig(bool switchDir) {
  SystemConfig cfg;
  cfg.switchDir.entries = switchDir ? 1024 : 0;
  return cfg;
}

void checkInvariants(System& sys) {
  EXPECT_TRUE(sys.quiescent());
  // No orphaned TRANSIENT entries in any switch directory.
  if (sys.dresar().enabled()) {
    EXPECT_EQ(sys.dresar().transientEntries(), 0u);
  }
  // Exactly-one-owner: every M line in a cache is MODIFIED at its home with
  // the right owner; no two caches hold the same block in M.
  const auto& cfg = sys.config();
  std::map<Addr, NodeId> owners;
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    sys.cache(n).l2().forEachValid([&](const CacheLine& l) {
      if (l.state == CacheState::M) {
        EXPECT_EQ(owners.count(l.tag), 0u) << "two owners for block " << std::hex << l.tag;
        owners[l.tag] = n;
        const auto* d = sys.dir(cfg.homeOf(l.tag)).peek(l.tag);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->state, DirState::Modified);
        EXPECT_EQ(d->owner, n);
      }
    });
  }
}

class WorkloadIntegration : public ::testing::TestWithParam<std::tuple<std::string, bool>> {};

TEST_P(WorkloadIntegration, RunsVerifiesAndHoldsInvariants) {
  const auto& [name, sd] = GetParam();
  Simulation sim(baseConfig(sd));
  const RunMetrics m = sim.run({.workload = name, .scale = WorkloadScale::tiny()});
  EXPECT_GT(m.execTime, 0u);
  EXPECT_GT(m.reads, 0u);
  checkInvariants(sim.system());
  if (sd) {
    // Switch directories must actually capture ownership information.
    EXPECT_GT(m.sdDeposits, 0u);
  } else {
    EXPECT_EQ(m.svcCtoCSwitch, 0u);
    EXPECT_EQ(m.svcSwitchWB, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, WorkloadIntegration,
    ::testing::Combine(::testing::Values("fft", "sor", "tc", "fwa", "gauss"),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::get<0>(info.param) + (std::get<1>(info.param) ? "_switchdir" : "_base");
    });

TEST(Integration, SwitchDirReducesHomeCtoC) {
  RunMetrics base, with;
  {
    Simulation sim(baseConfig(false));
    base = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  }
  {
    Simulation sim(baseConfig(true));
    with = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  }
  EXPECT_GT(base.homeCtoC, 0u);
  EXPECT_LT(with.homeCtoC, base.homeCtoC) << "switch directories must offload the home node";
  EXPECT_GT(with.svcCtoCSwitch + with.svcSwitchWB, 0u);
}

TEST(Integration, BaseAndSwitchDirComputeSameResults) {
  // Verification inside runWorkload already checks numerics; this asserts
  // the workload is deterministic across configurations.
  Simulation a(baseConfig(false)), b(baseConfig(true));
  const RunMetrics ma = a.run({.workload = "fwa", .scale = WorkloadScale::tiny()});
  const RunMetrics mb = b.run({.workload = "fwa", .scale = WorkloadScale::tiny()});
  EXPECT_GT(ma.reads, 0u);
  EXPECT_GT(mb.reads, 0u);
}

TEST(Integration, ExecutionTimeImprovesOrHolds) {
  // The paper reports up to ~9% execution-time reduction; at minimum the
  // switch-directory system must not be pathologically slower.
  Simulation a(baseConfig(false)), b(baseConfig(true));
  const RunMetrics ma = a.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  const RunMetrics mb = b.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  EXPECT_LT(static_cast<double>(mb.execTime), static_cast<double>(ma.execTime) * 1.05);
}

}  // namespace
}  // namespace dresar
