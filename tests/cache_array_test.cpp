#include "coherence/cache_array.h"

#include <gtest/gtest.h>

namespace dresar {
namespace {

TEST(CacheArray, MissAllocateHit) {
  CacheArray c(1024, 2, 32);
  EXPECT_EQ(c.find(0x100), nullptr);
  Victim v;
  CacheLine* l = c.allocate(0x100, v);
  ASSERT_NE(l, nullptr);
  EXPECT_FALSE(v.evicted);
  l->state = CacheState::S;
  EXPECT_NE(c.find(0x100), nullptr);
}

TEST(CacheArray, EvictionReportsDirtyVictim) {
  // One set, two ways: 2*32 bytes.
  CacheArray c(64, 2, 32);
  Victim v;
  c.allocate(0x0, v)->state = CacheState::M;
  c.allocate(0x40, v)->state = CacheState::S;
  c.find(0x40);  // make 0x0 LRU
  CacheLine* l = c.allocate(0x80, v);
  ASSERT_NE(l, nullptr);
  EXPECT_TRUE(v.evicted);
  EXPECT_TRUE(v.dirty);
  EXPECT_EQ(v.block, 0x0u);
}

TEST(CacheArray, CleanVictimNeedsNoWriteBack) {
  CacheArray c(64, 2, 32);
  Victim v;
  c.allocate(0x0, v)->state = CacheState::S;
  c.allocate(0x40, v)->state = CacheState::S;
  c.find(0x40);
  c.allocate(0x80, v);
  EXPECT_TRUE(v.evicted);
  EXPECT_FALSE(v.dirty);
}

TEST(CacheArray, AllocateExistingDoesNotEvict) {
  CacheArray c(64, 2, 32);
  Victim v;
  c.allocate(0x0, v)->state = CacheState::M;
  c.allocate(0x40, v)->state = CacheState::M;
  CacheLine* l = c.allocate(0x0, v);
  EXPECT_FALSE(v.evicted);
  EXPECT_EQ(l->state, CacheState::M);
}

TEST(CacheArray, CountState) {
  CacheArray c(1024, 4, 32);
  Victim v;
  c.allocate(0x20, v)->state = CacheState::M;
  c.allocate(0x40, v)->state = CacheState::S;
  c.allocate(0x60, v)->state = CacheState::S;
  EXPECT_EQ(c.countState(CacheState::M), 1u);
  EXPECT_EQ(c.countState(CacheState::S), 2u);
}

TEST(CacheArray, GeometryValidation) {
  EXPECT_THROW(CacheArray(100, 2, 32), std::invalid_argument);
  EXPECT_THROW(CacheArray(1024, 2, 24), std::invalid_argument);
  EXPECT_THROW(CacheArray(1024, 0, 32), std::invalid_argument);
}

TEST(L1Filter, InsertContainsRemove) {
  L1Filter f(256, 2, 32);
  EXPECT_FALSE(f.contains(0x100));
  f.insert(0x100);
  EXPECT_TRUE(f.contains(0x100));
  f.remove(0x100);
  EXPECT_FALSE(f.contains(0x100));
}

TEST(L1Filter, LruReplacement) {
  // One set with 2 ways: 2*32B.
  L1Filter f(64, 2, 32);
  f.insert(0x0);
  f.insert(0x40);
  f.insert(0x0);   // refresh
  f.insert(0x80);  // displaces 0x40
  EXPECT_TRUE(f.contains(0x0));
  EXPECT_FALSE(f.contains(0x40));
  EXPECT_TRUE(f.contains(0x80));
}

}  // namespace
}  // namespace dresar
