// Golden determinism: two fresh simulations of the same configuration must
// produce byte-identical statistics. This is the property the bench harness
// relies on when it claims performance work (event queue, route tables, stat
// handles) changed wall-clock time but not results.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/metrics.h"
#include "sim/simulation.h"
#include "trace/tpc_gen.h"
#include "trace/trace_sim.h"

namespace dresar {
namespace {

std::string scientificStatsDump(const std::string& app, std::uint32_t sdEntries,
                                const FaultPlan& fault = {}) {
  SystemConfig cfg;
  cfg.switchDir.entries = sdEntries;
  cfg.fault = fault;
  Simulation sim(cfg);
  (void)sim.run({.workload = app, .scale = WorkloadScale::tiny()});
  std::ostringstream os;
  sim.system().stats().dump(os);
  os << "exec_time=" << sim.system().now()
     << " events=" << sim.system().kernel().executedEvents();
  return os.str();
}

TEST(Determinism, ScientificRunsAreReproducible) {
  for (const char* app : {"sor", "fft"}) {
    for (const std::uint32_t sd : {0u, 512u}) {
      const std::string first = scientificStatsDump(app, sd);
      const std::string second = scientificStatsDump(app, sd);
      EXPECT_EQ(first, second) << app << " sd=" << sd;
      EXPECT_FALSE(first.empty());
    }
  }
}

TEST(Determinism, ZeroFaultRatesAreByteIdenticalToFaultFree) {
  // A FaultPlan with every rate zero is disabled: no injector is built, no
  // fault.* counters registered, and the whole run — stats dump included —
  // must match a run with no plan at all byte for byte.
  FaultPlan zero;
  zero.seed = 99;  // a seed alone must not enable anything
  const std::string without = scientificStatsDump("sor", 512);
  const std::string with = scientificStatsDump("sor", 512, zero);
  EXPECT_EQ(without, with);
}

TEST(Determinism, FaultCampaignsAreReproducible) {
  FaultPlan plan;
  plan.msgDropRate = 0.01;
  plan.msgDelayRate = 0.02;
  plan.sdEntryLossRate = 0.05;
  plan.seed = 7;
  const std::string first = scientificStatsDump("sor", 512, plan);
  const std::string second = scientificStatsDump("sor", 512, plan);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, FaultCampaignDiffersFromFaultFreeRun) {
  FaultPlan plan;
  plan.msgDropRate = 0.02;
  plan.seed = 7;
  const std::string faultFree = scientificStatsDump("sor", 512);
  const std::string faulted = scientificStatsDump("sor", 512, plan);
  EXPECT_NE(faultFree, faulted) << "injection at a 2% drop rate must perturb the run";
}

std::string traceStatsDump(bool tpcd, std::uint32_t sdEntries) {
  TraceConfig cfg;
  cfg.switchDir.entries = sdEntries;
  TraceSimulator sim(cfg);
  TpcGenerator gen(tpcd ? TpcParams::tpcd(50'000) : TpcParams::tpcc(50'000));
  sim.run(gen);
  const TraceMetrics& m = sim.metrics();
  std::ostringstream os;
  os << m.refs << ' ' << m.reads << ' ' << m.writes << ' ' << m.readHits << ' ' << m.readMisses
     << ' ' << m.svcCleanLocal << ' ' << m.svcCleanRemote << ' ' << m.svcCtoCLocal << ' '
     << m.svcCtoCRemote << ' ' << m.svcSwitchDir << ' ' << m.homeCtoC << ' ' << m.sdDeposits
     << ' ' << m.totalReadLatency << ' ' << m.execTime;
  return os.str();
}

TEST(Determinism, TraceRunsAreReproducible) {
  for (const bool tpcd : {false, true}) {
    for (const std::uint32_t sd : {0u, 1024u}) {
      const std::string first = traceStatsDump(tpcd, sd);
      const std::string second = traceStatsDump(tpcd, sd);
      EXPECT_EQ(first, second) << (tpcd ? "TPC-D" : "TPC-C") << " sd=" << sd;
    }
  }
}

}  // namespace
}  // namespace dresar
