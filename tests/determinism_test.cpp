// Golden determinism: two fresh simulations of the same configuration must
// produce byte-identical statistics. This is the property the bench harness
// relies on when it claims performance work (event queue, route tables, stat
// handles) changed wall-clock time but not results.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/metrics.h"
#include "sim/system.h"
#include "trace/tpc_gen.h"
#include "trace/trace_sim.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

std::string scientificStatsDump(const std::string& app, std::uint32_t sdEntries) {
  SystemConfig cfg;
  cfg.switchDir.entries = sdEntries;
  System sys(cfg);
  auto w = makeWorkload(app, WorkloadScale::tiny());
  (void)runWorkload(sys, *w);
  std::ostringstream os;
  sys.stats().dump(os);
  os << "exec_time=" << sys.eq().now() << " events=" << sys.eq().executed();
  return os.str();
}

TEST(Determinism, ScientificRunsAreReproducible) {
  for (const char* app : {"sor", "fft"}) {
    for (const std::uint32_t sd : {0u, 512u}) {
      const std::string first = scientificStatsDump(app, sd);
      const std::string second = scientificStatsDump(app, sd);
      EXPECT_EQ(first, second) << app << " sd=" << sd;
      EXPECT_FALSE(first.empty());
    }
  }
}

std::string traceStatsDump(bool tpcd, std::uint32_t sdEntries) {
  TraceConfig cfg;
  cfg.switchDir.entries = sdEntries;
  TraceSimulator sim(cfg);
  TpcGenerator gen(tpcd ? TpcParams::tpcd(50'000) : TpcParams::tpcc(50'000));
  sim.run(gen);
  const TraceMetrics& m = sim.metrics();
  std::ostringstream os;
  os << m.refs << ' ' << m.reads << ' ' << m.writes << ' ' << m.readHits << ' ' << m.readMisses
     << ' ' << m.svcCleanLocal << ' ' << m.svcCleanRemote << ' ' << m.svcCtoCLocal << ' '
     << m.svcCtoCRemote << ' ' << m.svcSwitchDir << ' ' << m.homeCtoC << ' ' << m.sdDeposits
     << ' ' << m.totalReadLatency << ' ' << m.execTime;
  return os.str();
}

TEST(Determinism, TraceRunsAreReproducible) {
  for (const bool tpcd : {false, true}) {
    for (const std::uint32_t sd : {0u, 1024u}) {
      const std::string first = traceStatsDump(tpcd, sd);
      const std::string second = traceStatsDump(tpcd, sd);
      EXPECT_EQ(first, second) << (tpcd ? "TPC-D" : "TPC-C") << " sd=" << sd;
    }
  }
}

}  // namespace
}  // namespace dresar
