// End-to-end tests for resumable, shardable campaigns: a campaign killed
// mid-run and resumed must re-emit the deterministic result document
// byte-identically; shards merged across stores must equal the
// single-machine document; failures must be isolated, reported, and
// retryable on resume.
#include "harness/campaign.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/aggregate.h"
#include "harness/job_store.h"
#include "harness/run_context.h"
#include "harness/sweep_spec.h"

namespace dresar::harness {
namespace {

std::filesystem::path tempPath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

/// Small but real matrix: 2 workloads x 2 configs x 2 seeds = 8 jobs, mixing
/// execution-driven and trace-driven kinds.
std::vector<JobSpec> tinyMatrix() {
  SweepSpec s;
  s.name = "campaign-test";
  s.workloads = {"fft", "tpcc"};
  s.entries = {0, 512};
  s.seeds = 2;
  s.scale = "tiny";
  s.traceRefs = 20'000;
  s.overrideScale(s.scale);
  return s.expand();
}

/// The deterministic v3 document for whatever `ctx` holds — the bytes the
/// sweep driver would write with --deterministic.
std::string docOf(RunContext& ctx) {
  SweepJsonOptions jo;
  jo.specName = "campaign-test";
  jo.deterministic = true;
  return sweepToJson(ctx.recorder, aggregate(ctx.recorder.runs()), jo);
}

TEST(Campaign, ResumeFromTornStoreIsByteIdentical) {
  const auto store = tempPath("dresar_campaign_resume.jobs");
  std::filesystem::remove(store);

  // Uninterrupted reference run, persisting as it goes.
  RunContext full;
  CampaignOptions opts;
  opts.threads = 2;
  opts.storePath = store.string();
  const std::vector<JobSpec> jobs = tinyMatrix();
  const CampaignResult ref = runCampaign(full, jobs, opts);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref.executed, jobs.size());
  const std::string refDoc = docOf(full);

  // Simulate a kill: keep 3 whole store lines plus a torn prefix of line 4.
  std::vector<std::string> lines;
  {
    std::ifstream in(store);
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }
  ASSERT_EQ(lines.size(), jobs.size());
  {
    std::ofstream out(store, std::ios::trunc);
    for (int i = 0; i < 3; ++i) out << lines[i] << "\n";
    out << lines[3].substr(0, lines[3].size() / 2);  // torn mid-write
  }

  RunContext resumed;
  opts.resume = true;
  const CampaignResult res = runCampaign(resumed, jobs, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.resumed, 3u);
  EXPECT_EQ(res.executed, jobs.size() - 3u);
  EXPECT_EQ(docOf(resumed), refDoc);

  // The store is now complete again: resuming once more runs nothing.
  RunContext again;
  const CampaignResult res2 = runCampaign(again, jobs, opts);
  EXPECT_EQ(res2.resumed, jobs.size());
  EXPECT_EQ(res2.executed, 0u);
  EXPECT_EQ(docOf(again), refDoc);
  std::filesystem::remove(store);
}

TEST(Campaign, ShardsMergeToTheSingleMachineDocument) {
  const auto s0 = tempPath("dresar_campaign_shard0.jobs");
  const auto s1 = tempPath("dresar_campaign_shard1.jobs");
  const std::vector<JobSpec> jobs = tinyMatrix();

  RunContext whole;
  const CampaignResult ref = runCampaign(whole, jobs, {});
  ASSERT_TRUE(ref.ok());
  const std::string refDoc = docOf(whole);

  CampaignOptions opts;
  opts.shardCount = 2;
  opts.storePath = s0.string();
  RunContext ctx0;
  const CampaignResult r0 = runCampaign(ctx0, jobs, opts);
  opts.shardIndex = 1;
  opts.storePath = s1.string();
  RunContext ctx1;
  const CampaignResult r1 = runCampaign(ctx1, jobs, opts);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r0.executed + r1.executed, jobs.size());
  EXPECT_EQ(r0.shardSkipped, r1.executed);

  RunContext merged;
  const CampaignResult m = mergeCampaignStores(merged, jobs, {s0.string(), s1.string()});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.resumed, jobs.size());
  EXPECT_EQ(docOf(merged), refDoc);
  std::filesystem::remove(s0);
  std::filesystem::remove(s1);
}

TEST(Campaign, MergeNamesJobsMissingFromEveryStore) {
  const auto s0 = tempPath("dresar_campaign_missing.jobs");
  const std::vector<JobSpec> jobs = tinyMatrix();

  CampaignOptions opts;
  opts.shardCount = 2;  // only half the matrix lands in the store
  opts.storePath = s0.string();
  RunContext ctx0;
  ASSERT_TRUE(runCampaign(ctx0, jobs, opts).ok());

  RunContext merged;
  const CampaignResult m = mergeCampaignStores(merged, jobs, {s0.string()});
  EXPECT_EQ(m.resumed + m.failures.size(), jobs.size());
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.failures.size(), jobs.size() / 2);
  EXPECT_EQ(m.failures[0].error, "not found in any store");
  std::filesystem::remove(s0);
}

TEST(Campaign, ResumeRetriesStoredFailuresAndKeepsStoredSuccesses) {
  const auto store = tempPath("dresar_campaign_retry.jobs");
  const std::vector<JobSpec> jobs = tinyMatrix();

  // Seed the store with a full run, then rewrite one job as a failure and
  // append a duplicate error entry for another (ok must win over error).
  RunContext full;
  CampaignOptions opts;
  opts.storePath = store.string();
  ASSERT_TRUE(runCampaign(full, jobs, opts).ok());
  const std::string refDoc = docOf(full);

  std::vector<StoredJob> entries = JobStore::loadFile(store.string());
  ASSERT_EQ(entries.size(), jobs.size());
  {
    std::ofstream out(store, std::ios::trunc);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i == 2) {
        StoredJob fail;
        fail.key = entries[i].key;
        fail.ok = false;
        fail.error = "machine fell over";
        out << JobStore::serializeLine(fail) << "\n";  // replaces the success
      } else {
        out << JobStore::serializeLine(entries[i]) << "\n";
      }
    }
    StoredJob lateError;  // stale duplicate AFTER a success: must not displace it
    lateError.key = entries[4].key;
    lateError.ok = false;
    lateError.error = "stale failure from an older shard";
    out << JobStore::serializeLine(lateError) << "\n";
  }

  RunContext resumed;
  opts.resume = true;
  const CampaignResult res = runCampaign(resumed, jobs, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.executed, 1u);  // only the failed cell re-ran
  EXPECT_EQ(res.resumed, jobs.size() - 1u);
  EXPECT_EQ(docOf(resumed), refDoc);
  std::filesystem::remove(store);
}

TEST(Campaign, RejectsOutOfRangeShard) {
  RunContext ctx;
  CampaignOptions opts;
  opts.shardIndex = 2;
  opts.shardCount = 2;
  EXPECT_THROW((void)runCampaign(ctx, tinyMatrix(), opts), std::runtime_error);
}

}  // namespace
}  // namespace dresar::harness
