#include "trace/tpc_gen.h"
#include "trace/trace_file.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dresar {
namespace {

std::vector<TraceRecord> sample() {
  return {{0, 0x1000, false}, {5, 0xdeadbe0, true}, {15, 0x7fffffffff8ull, false}};
}

TEST(TraceFile, TextRoundTrip) {
  std::stringstream ss;
  {
    TraceWriter w(ss, /*binary=*/false);
    for (const auto& r : sample()) w.write(r);
    EXPECT_EQ(w.written(), 3u);
  }
  const auto back = loadTrace(ss);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].pid, sample()[i].pid);
    EXPECT_EQ(back[i].addr, sample()[i].addr);
    EXPECT_EQ(back[i].write, sample()[i].write);
  }
}

TEST(TraceFile, BinaryRoundTrip) {
  std::stringstream ss;
  {
    TraceWriter w(ss, /*binary=*/true);
    for (const auto& r : sample()) w.write(r);
  }
  const auto back = loadTrace(ss);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].pid, sample()[i].pid);
    EXPECT_EQ(back[i].addr, sample()[i].addr);
    EXPECT_EQ(back[i].write, sample()[i].write);
  }
}

TEST(TraceFile, TextFormatIsHumanReadable) {
  std::stringstream ss;
  TraceWriter w(ss, false);
  w.write({3, 0xabc0, true});
  EXPECT_NE(ss.str().find("3 w abc0"), std::string::npos);
}

TEST(TraceFile, CommentsAndBlankLinesAreSkipped) {
  std::stringstream ss("# header\n\n2 r 40\n# trailing\n7 w 80\n");
  const auto back = loadTrace(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].pid, 2u);
  EXPECT_EQ(back[1].addr, 0x80u);
}

TEST(TraceFile, MalformedLineThrowsWithLineNumber) {
  std::stringstream ss("1 r 40\nbogus line\n");
  TraceReader rd(ss);
  TraceRecord r;
  EXPECT_TRUE(rd.next(r));
  try {
    rd.next(r);
    FAIL() << "expected malformed-line error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceFile, TruncatedBinaryThrows) {
  std::stringstream ss;
  {
    TraceWriter w(ss, true);
    w.write({1, 0x40, false});
  }
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 3);  // chop the address
  std::stringstream cut(bytes);
  TraceReader rd(cut);
  TraceRecord r;
  EXPECT_THROW(rd.next(r), std::runtime_error);
}

TEST(TraceFile, GeneratorDumpMatchesDirectStream) {
  std::stringstream ss;
  TpcGenerator g1(TpcParams::tpcc(500));
  dumpTrace(g1, ss, /*binary=*/true);
  const auto fromFile = loadTrace(ss);
  TpcGenerator g2(TpcParams::tpcc(500));
  TraceRecord r;
  std::size_t i = 0;
  while (g2.next(r)) {
    ASSERT_LT(i, fromFile.size());
    EXPECT_EQ(fromFile[i].addr, r.addr);
    EXPECT_EQ(fromFile[i].pid, r.pid);
    EXPECT_EQ(fromFile[i].write, r.write);
    ++i;
  }
  EXPECT_EQ(i, fromFile.size());
}

TEST(TraceFile, BadMagicRejected) {
  std::stringstream ss("CXXX____garbage");
  EXPECT_THROW(TraceReader rd(ss), std::runtime_error);
}

}  // namespace
}  // namespace dresar
