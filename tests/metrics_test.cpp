#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

TEST(Metrics, ReductionPct) {
  EXPECT_DOUBLE_EQ(reductionPct(100.0, 40.0), 60.0);
  EXPECT_DOUBLE_EQ(reductionPct(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(reductionPct(0.0, 10.0), 0.0);  // guarded
  EXPECT_DOUBLE_EQ(reductionPct(50.0, 75.0), -50.0);
}

TEST(Metrics, CollectConsistency) {
  SystemConfig cfg;
  cfg.switchDir.entries = 1024;
  System sys(cfg);
  auto w = makeWorkload("tc", WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  // Misses partition into the four service classes.
  EXPECT_EQ(m.readMisses, m.svcClean + m.svcCtoCHome + m.svcCtoCSwitch + m.svcSwitchWB);
  EXPECT_LE(m.readMisses, m.reads);
  EXPECT_GE(m.dirtyFraction(), 0.0);
  EXPECT_LE(m.dirtyFraction(), 1.0);
  // Blocking loads: total stall equals the latency mass.
  EXPECT_GT(m.totalReadStall, 0.0);
  EXPECT_GT(m.avgReadLatency, 0.0);
  EXPECT_EQ(m.workload, "TC");
  EXPECT_GT(m.netMessages, 0u);
}

TEST(Metrics, BaseSystemHasNoSwitchActivity) {
  SystemConfig cfg;
  cfg.switchDir.entries = 0;
  System sys(cfg);
  auto w = makeWorkload("fwa", WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  EXPECT_EQ(m.sdDeposits, 0u);
  EXPECT_EQ(m.sdCtoCInitiated, 0u);
  EXPECT_EQ(m.svcCtoCSwitch, 0u);
  EXPECT_EQ(m.svcSwitchWB, 0u);
}

TEST(Metrics, LatencyShareDecomposes) {
  SystemConfig cfg;
  System sys(cfg);
  auto w = makeWorkload("sor", WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  // clean + ctoc latency masses cover the total sampled latency.
  const Sampler* total = sys.stats().findSampler("cpu.read_latency");
  ASSERT_NE(total, nullptr);
  EXPECT_NEAR(m.totalReadLatClean + m.totalReadLatCtoC, total->sum(), 1e-6);
  EXPECT_LE(m.totalReadLatCleanMiss, m.totalReadLatClean);
}

}  // namespace
}  // namespace dresar
