// The sharded simulation kernel: deterministic cross-shard mailbox ordering,
// bounded-lag clamping, window planning, exception propagation, and the
// system-level contracts — simThreads=1 reproducibility, parallel-run
// determinism, and aggregate-stat equivalence against the sequential kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/scheduler.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

namespace dresar {
namespace {

// ------------------------------------------------------------ kernel unit --

// Both source shards post to shard 2 at the same cycle; the drain must order
// them (cycle, src-shard, seq) no matter how the worker threads interleave.
TEST(SimKernelMailbox, CrossShardPostsDrainInDeterministicOrder) {
  auto runOnce = [] {
    SimKernel kernel(3, /*windowCycles=*/64);
    std::vector<std::pair<int, int>> order;  // (src, seq) in execution order
    // Post from inside shard events so the posts go through live outboxes.
    kernel.scheduler(0).scheduleAt(0, [&kernel, &order] {
      for (int i = 0; i < 3; ++i) {
        kernel.scheduler(0).post(2, 200, [&order, i] { order.emplace_back(0, i); });
      }
    });
    kernel.scheduler(1).scheduleAt(0, [&kernel, &order] {
      for (int i = 0; i < 3; ++i) {
        kernel.scheduler(1).post(2, 200, [&order, i] { order.emplace_back(1, i); });
      }
    });
    EXPECT_TRUE(kernel.run());
    return order;
  };
  const std::vector<std::pair<int, int>> expected = {{0, 0}, {0, 1}, {0, 2},
                                                     {1, 0}, {1, 1}, {1, 2}};
  EXPECT_EQ(runOnce(), expected);
  EXPECT_EQ(runOnce(), expected);  // and stable across fresh kernels
}

TEST(SimKernelMailbox, EarlierCycleWinsOverSourcePriority) {
  SimKernel kernel(3, 64);
  std::vector<int> order;
  kernel.scheduler(0).scheduleAt(0, [&kernel, &order] {
    kernel.scheduler(0).post(2, 300, [&order] { order.push_back(0); });
  });
  kernel.scheduler(1).scheduleAt(0, [&kernel, &order] {
    kernel.scheduler(1).post(2, 200, [&order] { order.push_back(1); });
  });
  EXPECT_TRUE(kernel.run());
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

// A cross-shard event stamped before the destination clock is clamped
// forward (bounded lag), never scheduled into the destination's past.
TEST(SimKernelMailbox, StaleStampIsClampedToDestinationClock) {
  SimKernel kernel(2, 64);
  Cycle firedAt = 0;
  // Shard 1 runs its own event at cycle 50, so its clock is 50 when the
  // barrier drains shard 0's post stamped 11.
  kernel.scheduler(1).scheduleAt(50, [] {});
  kernel.scheduler(0).scheduleAt(10, [&kernel, &firedAt] {
    kernel.scheduler(0).post(1, 11, [&kernel, &firedAt] { firedAt = kernel.scheduler(1).now(); });
  });
  EXPECT_TRUE(kernel.run());
  EXPECT_GE(firedAt, 11u);
  EXPECT_EQ(kernel.executedEvents(), 3u);
}

TEST(SimKernelWindow, JumpsAcrossIdleGapsAndHonorsLimit) {
  SimKernel kernel(2, 8);
  int fired = 0;
  // Events many windows apart: window jumping must cross the gap in one
  // barrier round each rather than spinning 8-cycle quanta.
  kernel.scheduler(0).scheduleAt(10'000, [&fired] { ++fired; });
  kernel.scheduler(1).scheduleAt(90'000, [&fired] { ++fired; });
  EXPECT_TRUE(kernel.run());
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(kernel.now(), 90'000u);

  SimKernel capped(2, 8);
  capped.scheduler(0).scheduleAt(10, [] {});
  capped.scheduler(1).scheduleAt(500, [] {});
  EXPECT_FALSE(capped.run(/*limit=*/100));  // second event still pending
  EXPECT_EQ(capped.executedEvents(), 1u);
}

TEST(SimKernelWindow, HandlerExceptionRethrownOnCallingThread) {
  SimKernel kernel(2, 64);
  kernel.scheduler(1).scheduleAt(5, [] { throw std::runtime_error("shard boom"); });
  EXPECT_THROW(kernel.run(), std::runtime_error);
}

TEST(SimKernelWindow, RunWhileRequiresSingleShard) {
  SimKernel kernel(2, 64);
  EXPECT_THROW(kernel.runWhile([] { return true; }), std::logic_error);
}

TEST(SimKernelStats, FoldMergesShardRegistriesIntoRootAndResets) {
  SimKernel kernel(2, 64);
  CounterHandle a = kernel.registry(0).counterHandle("x.count");
  CounterHandle b = kernel.registry(1).counterHandle("x.count");
  a += 3;
  b += 4;
  kernel.foldStats();
  EXPECT_EQ(kernel.registry(0).sumByPrefix("x.count"), 7u);
  EXPECT_EQ(kernel.registry(1).sumByPrefix("x.count"), 0u);
}

// ------------------------------------------------------ config validation --

TEST(SimThreadsConfig, RejectsZeroThreadsAndZeroWindow) {
  SystemConfig c;
  c.simThreads = 0;
  c.simWindowCycles = 0;
  const std::vector<std::string> errs = c.validationErrors();
  ASSERT_GE(errs.size(), 2u);
}

TEST(SimThreadsConfig, RejectsOversubscriptionUnlessOptedIn) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) GTEST_SKIP() << "hardware_concurrency unknown on this platform";
  SystemConfig c;
  c.simThreads = hw + 1;
  EXPECT_FALSE(c.validationErrors().empty());
  c.simAllowOversubscription = true;
  EXPECT_TRUE(c.validationErrors().empty());
}

TEST(SimThreadsConfig, CollectsEveryShardingConflict) {
  SystemConfig c;
  c.simAllowOversubscription = true;
  c.simThreads = 2;
  c.net.flitLevel = true;
  c.txnTrace.enabled = true;
  c.fault.msgDropRate = 0.1;
  const std::vector<std::string> errs = c.validationErrors();
  // flit-level + tracing + fault injection must all be reported, not just
  // the first conflict hit.
  EXPECT_GE(errs.size(), 3u);
}

// ----------------------------------------------------------- system level --

std::string statsDump(Simulation& sim) {
  std::ostringstream os;
  sim.system().stats().dump(os);
  os << " exec=" << sim.system().now() << " events=" << sim.system().kernel().executedEvents();
  return os.str();
}

SystemConfig smallConfig() {
  SystemConfig cfg;
  cfg.numNodes = 32;
  cfg.switchDir.entries = 512;
  cfg.simAllowOversubscription = true;  // CI boxes may have fewer cores
  return cfg;
}

RunMetrics runOnce(const std::string& app, std::uint32_t threads, std::string* dump = nullptr) {
  SystemConfig cfg = smallConfig();
  cfg.simThreads = threads;
  Simulation sim(cfg);
  RunMetrics m = sim.run({.workload = app, .scale = WorkloadScale::tiny(), .simThreads = threads});
  if (dump != nullptr) *dump = statsDump(sim);
  return m;
}

TEST(ParallelEquivalence, SimThreadsOneIsReproducible) {
  std::string first;
  std::string second;
  (void)runOnce("fft", 1, &first);
  (void)runOnce("fft", 1, &second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ParallelEquivalence, ParallelRunsAreDeterministic) {
  // The (cycle, src-shard, seq) mailbox order makes the sharded kernel fully
  // deterministic: two 4-thread runs must agree byte for byte, regardless of
  // how the OS interleaved the workers.
  std::string first;
  std::string second;
  (void)runOnce("fft", 4, &first);
  (void)runOnce("fft", 4, &second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

void expectAggregatesMatch(const RunMetrics& seq, const RunMetrics& par, const char* label) {
  // Work counts are exact: sharding changes timing, never protocol work.
  EXPECT_EQ(par.reads, seq.reads) << label;
  EXPECT_EQ(par.stores, seq.stores) << label;
  // Timing-adjacent aggregates may skew by at most the bounded-lag window;
  // gate them within tight relative tolerance.
  const auto near = [&](std::uint64_t a, std::uint64_t b, double tol, const char* what) {
    const double hi = static_cast<double>(std::max(a, b));
    const double lo = static_cast<double>(std::min(a, b));
    if (hi == 0.0) return;
    EXPECT_LE((hi - lo) / hi, tol) << label << " " << what << " seq=" << b << " par=" << a;
  };
  near(par.readMisses, seq.readMisses, 0.10, "readMisses");
  // Which cache services a miss is timing-sensitive (c2c vs clean splits
  // shift with window clamping on tiny runs), so the c2c gate is looser
  // than the work counts but still catches protocol-level divergence.
  near(par.svcCtoCHome + par.svcCtoCSwitch, seq.svcCtoCHome + seq.svcCtoCSwitch, 0.10,
       "cache-to-cache transfers");
  near(par.execTime, seq.execTime, 0.10, "execTime");
  ASSERT_GT(seq.avgReadLatency, 0.0) << label;
  EXPECT_LE(std::abs(par.avgReadLatency - seq.avgReadLatency) / seq.avgReadLatency, 0.15)
      << label;
}

TEST(ParallelEquivalence, AggregateStatsMatchSequential) {
  for (const char* app : {"fft", "sor"}) {
    const RunMetrics seq = runOnce(app, 1);
    for (const std::uint32_t threads : {2u, 4u}) {
      const RunMetrics par = runOnce(app, threads);
      expectAggregatesMatch(seq, par, (std::string(app) + " st" + std::to_string(threads)).c_str());
    }
  }
}

TEST(ParallelEquivalence, RunRequestRebuildsSystemOnThreadMismatch) {
  Simulation sim(smallConfig());
  EXPECT_EQ(sim.system().kernel().shardCount(), 1u);
  (void)sim.run({.workload = "fft", .scale = WorkloadScale::tiny(), .simThreads = 2});
  EXPECT_EQ(sim.system().kernel().shardCount(), 2u);
  EXPECT_EQ(sim.system().config().simThreads, 2u);
  (void)sim.run({.workload = "fft", .scale = WorkloadScale::tiny()});
  EXPECT_EQ(sim.system().kernel().shardCount(), 1u);
}

TEST(ParallelEquivalence, ShardCountIsCappedByNodeCount) {
  SystemConfig cfg = smallConfig();
  cfg.numNodes = 4;
  cfg.simThreads = 8;
  System sys(cfg);
  EXPECT_EQ(sys.kernel().shardCount(), 4u);
}

TEST(ParallelEquivalence, ExecutedEventsAttributedPerShard) {
  SystemConfig cfg = smallConfig();
  cfg.simThreads = 4;
  Simulation sim(cfg);
  (void)sim.run({.workload = "fft", .scale = WorkloadScale::tiny(), .simThreads = 4});
  const SimKernel& kernel = sim.system().kernel();
  std::uint64_t sum = 0;
  std::uint32_t active = 0;
  for (ShardId s = 0; s < kernel.shardCount(); ++s) {
    sum += kernel.executedEvents(s);
    if (kernel.executedEvents(s) > 0) ++active;
  }
  EXPECT_EQ(sum, kernel.executedEvents());
  // Every shard must have actually executed work — the whole point of the
  // partition (and the events_per_sec attribution fix).
  EXPECT_EQ(active, kernel.shardCount());
}

}  // namespace
}  // namespace dresar
