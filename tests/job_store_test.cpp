// Tests for the JSONL campaign job store: the job-key scheme, the
// serialize/parse round trip (which must be bit-exact for doubles — resume
// byte-identity depends on it), append/load file I/O, and the torn-line
// tolerance that a mid-write kill relies on.
#include "harness/job_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace dresar::harness {
namespace {

std::filesystem::path tempStorePath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

StoredJob sampleOk() {
  StoredJob s;
  s.key = "scientific|FFT|sd-512|2";
  s.ok = true;
  s.wallSeconds = 0.1 + 0.2;  // 0.30000000000000004 — needs all 17 digits
  s.record.app = "FFT";
  s.record.config = "sd-512";
  s.record.kind = "scientific";
  s.record.sdEntries = 512;
  s.record.seed = 2;
  s.record.wallSeconds = s.wallSeconds;
  s.record.events = 26880;
  s.record.metric("exec_time", 20325.0);
  s.record.metric("avg_read_latency", 100.0 / 3.0);  // non-terminating binary
  return s;
}

TEST(JobKey, EncodesKindAppConfigAndSeed) {
  JobSpec j;
  j.app = "fft";
  j.sdEntries = 512;
  j.seed = 3;
  EXPECT_EQ(jobKeyOf(j), "scientific|FFT|sd-512|3");
  j.kind = JobKind::Trace;
  j.app = "tpcc";
  j.sdEntries = 0;
  j.seed = 1;
  EXPECT_EQ(jobKeyOf(j), "trace|TPC-C|base|1");
}

TEST(JobStore, SerializeParseRoundTripIsBitExact) {
  const StoredJob s = sampleOk();
  const std::string line = JobStore::serializeLine(s);
  const StoredJob back = JobStore::parseLine(line);
  EXPECT_EQ(back.key, s.key);
  EXPECT_TRUE(back.ok);
  // Bit-exact doubles: re-serializing the parsed entry reproduces the line.
  EXPECT_EQ(JobStore::serializeLine(back), line);
  EXPECT_EQ(back.wallSeconds, s.wallSeconds);
  ASSERT_EQ(back.record.metrics.size(), s.record.metrics.size());
  EXPECT_EQ(back.record.metrics[1].second, 100.0 / 3.0);
}

TEST(JobStore, SerializeParseRoundTripErrorEntry) {
  StoredJob s;
  s.key = "trace|TPC-C|base|1";
  s.ok = false;
  s.error = "pending buffer \"wedged\" at cycle 42";
  const std::string line = JobStore::serializeLine(s);
  const StoredJob back = JobStore::parseLine(line);
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.key, s.key);
  EXPECT_EQ(back.error, s.error);
  EXPECT_EQ(JobStore::serializeLine(back), line);
}

TEST(JobStore, ParseLineRejectsGarbage) {
  EXPECT_THROW((void)JobStore::parseLine("not json"), std::runtime_error);
  EXPECT_THROW((void)JobStore::parseLine("{\"ok\":true}"), std::runtime_error);
}

TEST(JobStore, AppendThenLoadPreservesOrder) {
  const auto path = tempStorePath("dresar_job_store_test.jobs");
  std::filesystem::remove(path);
  {
    JobStore store;
    ASSERT_TRUE(store.open(path.string(), /*append=*/false));
    ASSERT_TRUE(store.isOpen());
    StoredJob a = sampleOk();
    StoredJob b = sampleOk();
    b.key = "scientific|FFT|sd-512|3";
    store.append(a);
    store.append(b);
  }
  const std::vector<StoredJob> loaded = JobStore::loadFile(path.string());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].key, "scientific|FFT|sd-512|2");
  EXPECT_EQ(loaded[1].key, "scientific|FFT|sd-512|3");
  std::filesystem::remove(path);
}

TEST(JobStore, LoadToleratesTornFinalLine) {
  const auto path = tempStorePath("dresar_job_store_torn.jobs");
  {
    std::ofstream out(path);
    out << JobStore::serializeLine(sampleOk()) << "\n";
    // A mid-write kill leaves a prefix of the next line, no newline.
    out << JobStore::serializeLine(sampleOk()).substr(0, 40);
  }
  const std::vector<StoredJob> loaded = JobStore::loadFile(path.string());
  ASSERT_EQ(loaded.size(), 1u);  // torn tail ignored
  EXPECT_EQ(loaded[0].key, "scientific|FFT|sd-512|2");
  std::filesystem::remove(path);
}

TEST(JobStore, LoadThrowsOnCorruptMiddleLine) {
  const auto path = tempStorePath("dresar_job_store_corrupt.jobs");
  {
    std::ofstream out(path);
    out << JobStore::serializeLine(sampleOk()) << "\n";
    out << "garbage in the middle\n";
    out << JobStore::serializeLine(sampleOk()) << "\n";
  }
  EXPECT_THROW((void)JobStore::loadFile(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(JobStore, LoadThrowsOnMissingFile) {
  EXPECT_THROW((void)JobStore::loadFile("/nonexistent/dresar.jobs"), std::runtime_error);
}

}  // namespace
}  // namespace dresar::harness
