// DirController unit tests with scripted caches: every directory transition,
// the BUSY pending queue, marked copyback/writeback handling, and the
// per-destination FIFO property of the home's output port.
#include "coherence/dir_controller.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/scheduler.h"
#include "common/stats.h"
#include "interconnect/network.h"

namespace dresar {
namespace {

class DirCtrlTest : public ::testing::Test {
 protected:
  DirCtrlTest()
      : net_(cfg_.net, cfg_.numNodes, cfg_.lineBytes, kernel_,
             NetworkHooks{&sink_, nullptr, nullptr, nullptr}),
        home_(0, cfg_, kernel_.scheduler(0), net_, kernel_.registry(0)) {
    sink_.on(memEp(0), [this](const Message& m) { home_.onMessage(m); });
    for (NodeId n = 1; n < cfg_.numNodes; ++n) {
      sink_.on(memEp(n), [](const Message&) {});
    }
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
      sink_.on(procEp(n), [this, n](const Message& m) {
        toProc_[n].push_back(m);
      });
    }
  }

  // Block homed at node 0.
  static constexpr Addr kBlock = 0x40;

  void send(MsgType t, NodeId from, Addr a = kBlock, NodeId requester = kInvalidNode,
            std::uint64_t carried = 0, bool marked = false, bool recall = false) {
    Message m;
    m.type = t;
    m.src = procEp(from);
    m.dst = memEp(0);
    m.addr = a;
    m.requester = requester == kInvalidNode ? from : requester;
    m.carriedSharers = carried;
    m.marked = marked;
    m.recall = recall;
    net_.send(m);
  }

  std::optional<Message> lastTo(NodeId n, MsgType t) {
    for (auto it = toProc_[n].rbegin(); it != toProc_[n].rend(); ++it) {
      if (it->type == t) return *it;
    }
    return std::nullopt;
  }

  SystemConfig cfg_;
  SimKernel kernel_{1};
  FnSink sink_;
  Network net_;
  DirController home_;
  StatRegistry& stats_ = kernel_.registry(0);
  std::vector<Message> toProc_[16];
};

TEST_F(DirCtrlTest, ReadOfUncachedBlockRepliesAndShares) {
  send(MsgType::ReadRequest, 2);
  kernel_.run();
  ASSERT_TRUE(lastTo(2, MsgType::ReadReply).has_value());
  const auto* e = home_.peek(kBlock);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::Shared);
  EXPECT_EQ(e->sharers, 1ull << 2);
}

TEST_F(DirCtrlTest, WriteOfUncachedBlockGrantsOwnership) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  ASSERT_TRUE(lastTo(3, MsgType::WriteReply).has_value());
  EXPECT_EQ(home_.peek(kBlock)->state, DirState::Modified);
  EXPECT_EQ(home_.peek(kBlock)->owner, 3u);
}

TEST_F(DirCtrlTest, SoleSharerUpgradesWithoutInvalidations) {
  send(MsgType::ReadRequest, 3);
  kernel_.run();
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  EXPECT_TRUE(lastTo(3, MsgType::WriteReply).has_value());
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_FALSE(lastTo(n, MsgType::Invalidation).has_value());
  }
  EXPECT_EQ(home_.peek(kBlock)->owner, 3u);
}

TEST_F(DirCtrlTest, WriteToSharedInvalidatesOthersThenGrants) {
  send(MsgType::ReadRequest, 2);
  send(MsgType::ReadRequest, 4);
  kernel_.run();
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  // Invalidations went to 2 and 4; grant withheld until both ack.
  ASSERT_TRUE(lastTo(2, MsgType::Invalidation).has_value());
  ASSERT_TRUE(lastTo(4, MsgType::Invalidation).has_value());
  EXPECT_FALSE(lastTo(3, MsgType::WriteReply).has_value());
  send(MsgType::InvalAck, 2);
  kernel_.run();
  EXPECT_FALSE(lastTo(3, MsgType::WriteReply).has_value());
  send(MsgType::InvalAck, 4);
  kernel_.run();
  EXPECT_TRUE(lastTo(3, MsgType::WriteReply).has_value());
  EXPECT_EQ(home_.peek(kBlock)->state, DirState::Modified);
  EXPECT_TRUE(home_.quiescent());
}

TEST_F(DirCtrlTest, ReadOfModifiedBlockForwardsCtoC) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  send(MsgType::ReadRequest, 5);
  kernel_.run();
  const auto fwd = lastTo(3, MsgType::CtoCRequest);
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(fwd->requester, 5u);
  EXPECT_FALSE(fwd->marked);
  EXPECT_EQ(home_.homeCtoCForwards(), 1u);
  EXPECT_EQ(home_.peek(kBlock)->state, DirState::BusyRead);
  // The owner's copyback (carrying the served requester) completes it.
  send(MsgType::CopyBack, 3, kBlock, 5, /*carried=*/1ull << 5);
  kernel_.run();
  EXPECT_EQ(home_.peek(kBlock)->state, DirState::Shared);
  EXPECT_EQ(home_.peek(kBlock)->sharers, (1ull << 3) | (1ull << 5));
  // Requester got its data from the owner, not the home.
  EXPECT_FALSE(lastTo(5, MsgType::ReadReply).has_value());
}

TEST_F(DirCtrlTest, CopyBackServingSomeoneElseMakesHomeServeRequester) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  send(MsgType::ReadRequest, 5);
  kernel_.run();
  // A switch-initiated transfer served proc 7 instead; its marked copyback
  // arrives at the busy home.
  send(MsgType::CopyBack, 3, kBlock, 7, /*carried=*/1ull << 7, /*marked=*/true);
  kernel_.run();
  EXPECT_TRUE(lastTo(5, MsgType::ReadReply).has_value());  // home serves 5 itself
  EXPECT_EQ(home_.peek(kBlock)->sharers, (1ull << 3) | (1ull << 5) | (1ull << 7));
  EXPECT_TRUE(home_.quiescent());
}

TEST_F(DirCtrlTest, QueuedRequestsDrainAfterBusy) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  send(MsgType::ReadRequest, 5);
  kernel_.run();
  send(MsgType::ReadRequest, 6);  // queued behind BusyRead
  send(MsgType::ReadRequest, 7);
  kernel_.run();
  EXPECT_GT(stats_.counterValue("dir.0.queued"), 0u);
  send(MsgType::CopyBack, 3, kBlock, 5, 1ull << 5);
  kernel_.run();
  // Queue drained: 6 and 7 served clean from the now-shared block.
  EXPECT_TRUE(lastTo(6, MsgType::ReadReply).has_value());
  EXPECT_TRUE(lastTo(7, MsgType::ReadReply).has_value());
  EXPECT_TRUE(home_.quiescent());
}

TEST_F(DirCtrlTest, WriteToModifiedRecallsOwner) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  send(MsgType::WriteRequest, 4);
  kernel_.run();
  const auto inv = lastTo(3, MsgType::Invalidation);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(inv->recall);
  send(MsgType::CopyBack, 3, kBlock, kInvalidNode, 0, false, /*recall=*/true);
  kernel_.run();
  EXPECT_TRUE(lastTo(4, MsgType::WriteReply).has_value());
  EXPECT_EQ(home_.peek(kBlock)->owner, 4u);
}

TEST_F(DirCtrlTest, WriteBackFromOwnerUncachesBlock) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  send(MsgType::WriteBack, 3);
  kernel_.run();
  EXPECT_EQ(home_.peek(kBlock)->state, DirState::Uncached);
}

TEST_F(DirCtrlTest, MarkedWriteBackLeavesSwitchServedSharers) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  // The victim writeback was annotated at a switch: proc 9 was served.
  send(MsgType::WriteBack, 3, kBlock, kInvalidNode, 1ull << 9, /*marked=*/true);
  kernel_.run();
  EXPECT_EQ(home_.peek(kBlock)->state, DirState::Shared);
  EXPECT_EQ(home_.peek(kBlock)->sharers, 1ull << 9);
}

TEST_F(DirCtrlTest, WriteBackResolvesBusyRead) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  send(MsgType::ReadRequest, 5);
  kernel_.run();
  // Owner evicted the block before the forwarded request arrived.
  send(MsgType::WriteBack, 3);
  kernel_.run();
  EXPECT_TRUE(lastTo(5, MsgType::ReadReply).has_value());
  EXPECT_EQ(home_.peek(kBlock)->state, DirState::Shared);
  EXPECT_TRUE(home_.quiescent());
}

TEST_F(DirCtrlTest, MarkedCopyBackInModifiedTransitionsToShared) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  // A switch-initiated transfer completed with no home involvement: the
  // "minor modification" of paper 3.2.
  send(MsgType::CopyBack, 3, kBlock, 6, 1ull << 6, /*marked=*/true);
  kernel_.run();
  EXPECT_EQ(home_.peek(kBlock)->state, DirState::Shared);
  EXPECT_EQ(home_.peek(kBlock)->sharers, (1ull << 3) | (1ull << 6));
}

TEST_F(DirCtrlTest, CarriedSharersDuringWriteGetInvalidated) {
  send(MsgType::WriteRequest, 3);
  kernel_.run();
  send(MsgType::WriteRequest, 4);  // recall in flight to 3
  kernel_.run();
  // Before acking, the owner served a switch transfer for proc 8; its marked
  // copyback reaches the busy home, so 8 must now be invalidated too.
  send(MsgType::CopyBack, 3, kBlock, 8, 1ull << 8, /*marked=*/true);
  kernel_.run();
  ASSERT_TRUE(lastTo(8, MsgType::Invalidation).has_value());
  EXPECT_FALSE(lastTo(4, MsgType::WriteReply).has_value());
  send(MsgType::InvalAck, 8);
  kernel_.run();
  EXPECT_FALSE(lastTo(4, MsgType::WriteReply).has_value());  // still awaiting 3
  send(MsgType::InvalAck, 3);  // owner had downgraded to S, acks plain
  kernel_.run();
  EXPECT_TRUE(lastTo(4, MsgType::WriteReply).has_value());
  EXPECT_EQ(home_.peek(kBlock)->owner, 4u);
  EXPECT_TRUE(home_.quiescent());
}

TEST_F(DirCtrlTest, MarkedRetryIsDropped) {
  send(MsgType::Retry, 3, kBlock, 5, 0, /*marked=*/true);
  kernel_.run();
  EXPECT_EQ(stats_.counterValue("dir.0.retry_dropped"), 1u);
}

TEST_F(DirCtrlTest, PerDestinationFifo) {
  // A grant (delayed by the memory access) followed by a recall to the same
  // node must arrive in order: WriteReply first.
  send(MsgType::ReadRequest, 3);
  kernel_.run();
  toProc_[3].clear();
  send(MsgType::WriteRequest, 3);  // upgrade: grant scheduled +memAccess
  send(MsgType::WriteRequest, 4);  // queued; recall to 3 follows the grant
  kernel_.run();
  ASSERT_GE(toProc_[3].size(), 2u);
  EXPECT_EQ(toProc_[3][0].type, MsgType::WriteReply);
  EXPECT_EQ(toProc_[3][1].type, MsgType::Invalidation);
  EXPECT_TRUE(toProc_[3][1].recall);
}

TEST_F(DirCtrlTest, DistinctBlocksAreIndependent) {
  send(MsgType::WriteRequest, 3, kBlock);
  send(MsgType::WriteRequest, 4, kBlock + cfg_.lineBytes);
  kernel_.run();
  EXPECT_EQ(home_.peek(kBlock)->owner, 3u);
  EXPECT_EQ(home_.peek(kBlock + cfg_.lineBytes)->owner, 4u);
}

TEST_F(DirCtrlTest, AnomaliesAreCountedNotFatal) {
  send(MsgType::CopyBack, 3, kBlock, kInvalidNode, 0, false, /*recall=*/true);
  kernel_.run();
  EXPECT_EQ(stats_.counterValue("dir.0.anomaly.recall_copyback"), 1u);
  send(MsgType::InvalAck, 5);
  kernel_.run();
  EXPECT_EQ(stats_.counterValue("dir.0.anomaly.spurious_inval_ack"), 1u);
}

}  // namespace
}  // namespace dresar
