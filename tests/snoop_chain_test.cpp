#include "switchdir/switch_cache.h"

#include <gtest/gtest.h>

namespace dresar {
namespace {

class FakeSnoop : public ISwitchSnoop {
 public:
  SnoopOutcome onMessage(SwitchId, Cycle, Message& m, std::vector<Message>& spawn) override {
    ++calls;
    if (annotate) m.carriedSharers |= 0x8;
    if (spawnOne) {
      Message r;
      r.type = MsgType::Retry;
      r.dst = procEp(1);
      spawn.push_back(r);
    }
    return {pass, delay};
  }
  int calls = 0;
  bool pass = true;
  bool annotate = false;
  bool spawnOne = false;
  Cycle delay = 0;
};

TEST(SnoopChain, BothRunWhenFirstPasses) {
  FakeSnoop a, b;
  SnoopChain chain(&a, &b);
  Message m;
  std::vector<Message> spawn;
  const SnoopOutcome out = chain.onMessage(SwitchId{0, 0}, 0, m, spawn);
  EXPECT_TRUE(out.pass);
  EXPECT_EQ(a.calls, 1);
  EXPECT_EQ(b.calls, 1);
}

TEST(SnoopChain, SecondSkippedWhenFirstSinks) {
  FakeSnoop a, b;
  a.pass = false;
  SnoopChain chain(&a, &b);
  Message m;
  std::vector<Message> spawn;
  const SnoopOutcome out = chain.onMessage(SwitchId{0, 0}, 0, m, spawn);
  EXPECT_FALSE(out.pass);
  EXPECT_EQ(b.calls, 0);
}

TEST(SnoopChain, DelaysAccumulate) {
  FakeSnoop a, b;
  a.delay = 3;
  b.delay = 4;
  SnoopChain chain(&a, &b);
  Message m;
  std::vector<Message> spawn;
  EXPECT_EQ(chain.onMessage(SwitchId{0, 0}, 0, m, spawn).extraDelay, 7u);
}

TEST(SnoopChain, AnnotationsVisibleDownstream) {
  FakeSnoop a, b;
  a.annotate = true;
  SnoopChain chain(&a, &b);
  Message m;
  std::vector<Message> spawn;
  chain.onMessage(SwitchId{0, 0}, 0, m, spawn);
  EXPECT_EQ(m.carriedSharers, 0x8u);
}

TEST(SnoopChain, SpawnsCollectFromBoth) {
  FakeSnoop a, b;
  a.spawnOne = true;
  b.spawnOne = true;
  SnoopChain chain(&a, &b);
  Message m;
  std::vector<Message> spawn;
  chain.onMessage(SwitchId{0, 0}, 0, m, spawn);
  EXPECT_EQ(spawn.size(), 2u);
}

TEST(SnoopChain, NullMembersAreSkipped) {
  FakeSnoop b;
  SnoopChain chain(nullptr, &b);
  Message m;
  std::vector<Message> spawn;
  EXPECT_TRUE(chain.onMessage(SwitchId{0, 0}, 0, m, spawn).pass);
  EXPECT_EQ(b.calls, 1);
  SnoopChain empty(nullptr, nullptr);
  EXPECT_TRUE(empty.onMessage(SwitchId{0, 0}, 0, m, spawn).pass);
}

}  // namespace
}  // namespace dresar
