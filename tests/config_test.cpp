#include "common/config.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dresar {
namespace {

TEST(SystemConfig, DefaultsMatchPaperTable2) {
  SystemConfig c;
  EXPECT_EQ(c.numNodes, 16u);
  EXPECT_EQ(c.issueWidth, 4u);
  EXPECT_EQ(c.l1Bytes, 16u * 1024);
  EXPECT_EQ(c.l1Assoc, 2u);
  EXPECT_EQ(c.l1AccessCycles, 1u);
  EXPECT_EQ(c.l2Bytes, 128u * 1024);
  EXPECT_EQ(c.l2Assoc, 4u);
  EXPECT_EQ(c.l2AccessCycles, 8u);
  EXPECT_EQ(c.lineBytes, 32u);
  EXPECT_EQ(c.memAccessCycles, 40u);
  EXPECT_EQ(c.memInterleave, 4u);
  EXPECT_EQ(c.net.switchRadix, 8u);
  EXPECT_EQ(c.net.coreDelay, 4u);
  EXPECT_EQ(c.net.linkCyclesPerFlit, 4u);
  EXPECT_EQ(c.net.flitBytes, 8u);
  EXPECT_EQ(c.net.virtualChannels, 2u);
  EXPECT_EQ(c.net.bufferFlits, 4u);
  EXPECT_EQ(c.switchDir.entries, 1024u);
  EXPECT_EQ(c.switchDir.associativity, 4u);
  EXPECT_NO_THROW(c.validate());
}

TEST(SystemConfig, HomeAndBlockMapping) {
  SystemConfig c;
  EXPECT_EQ(c.blockOf(0x1234), 0x1220u);  // 32B lines
  EXPECT_EQ(c.homeOf(0), 0u);
  EXPECT_EQ(c.homeOf(4096), 1u);
  EXPECT_EQ(c.homeOf(4096ull * 16), 0u);  // wraps at numNodes pages
}

TEST(SystemConfig, ValidationCatchesBadGeometry) {
  SystemConfig c;
  c.lineBytes = 48;  // not a power of two
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig{};
  c.numNodes = 12;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig{};
  c.switchDir.entries = 1000;  // not divisible by assoc=4? 1000/4=250 ok; use assoc 3
  c.switchDir.associativity = 3;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig{};
  c.writeBufferEntries = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SystemConfig, ValidationErrorsCollectsEveryViolation) {
  SystemConfig c;
  c.lineBytes = 48;          // not a power of two
  c.writeBufferEntries = 0;  // independent violation
  c.mshrEntries = 1;         // and a third
  const std::vector<std::string> errs = c.validationErrors();
  EXPECT_GE(errs.size(), 3u);
  // validate() reports them all in one exception, not just the first.
  try {
    c.validate();
    FAIL() << "validate() must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lineBytes"), std::string::npos) << what;
    EXPECT_NE(what.find("writeBufferEntries"), std::string::npos) << what;
    EXPECT_NE(what.find("mshrEntries"), std::string::npos) << what;
  }
}

TEST(SystemConfig, ValidationCatchesRadixCapacity) {
  SystemConfig c;
  c.numNodes = 256;  // beyond the 128-node NodeMask cap
  c.net.switchRadix = 8;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  // Larger power-of-two sizes now derive deeper networks instead of failing.
  c = SystemConfig{};
  c.net.switchRadix = 8;
  for (const std::uint32_t n : {32u, 64u, 128u}) {
    c.numNodes = n;
    EXPECT_NO_THROW(c.validate()) << n;
  }

  // A non-tiling combination names the supported sizes.
  c = SystemConfig{};
  c.numNodes = 8;
  c.net.switchRadix = 32;  // 8/16 = half a switch per stage
  try {
    c.validate();
    FAIL() << "validate() must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("multiple of switchRadix/2"), std::string::npos)
        << e.what();
  }
}

TEST(SystemConfig, ValidationCatchesCacheSmallerThanOneSet) {
  SystemConfig c;
  c.l1Bytes = 0;  // divisible by anything, but holds no set
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SystemConfig{};
  c.l2Bytes = c.lineBytes;  // one line, but assoc 4 needs 4
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SystemConfig, ValidationCatchesBadFaultRates) {
  SystemConfig c;
  c.fault.msgDropRate = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SystemConfig{};
  c.fault.sdEntryLossRate = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SystemConfig{};
  c.fault.msgDelayRate = 0.1;
  c.fault.msgDelayCycles = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SystemConfig{};
  c.fault.linkStall = {5, 0, 0, 100};  // stage out of range
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = SystemConfig{};
  c.fault.msgDropRate = 0.02;  // a sane plan passes
  EXPECT_NO_THROW(c.validate());
}

TEST(SystemConfig, ValidationCatchesUnknownSdPolicies) {
  SystemConfig c;
  c.switchDir.replacementPolicy = "plru";
  c.switchDir.arbitrationPolicy = "lottery";
  c.switchCache.entries = 1024;  // enable, with its own bad pair
  c.switchCache.replacementPolicy = "mru";
  c.switchCache.arbitrationPolicy = "priority";
  const std::vector<std::string> errs = c.validationErrors();
  EXPECT_GE(errs.size(), 4u);  // every violation collected, not just the first
  const auto mentioned = [&](const std::string& name) {
    for (const std::string& e : errs) {
      if (e.find("'" + name + "'") != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(mentioned("plru"));
  EXPECT_TRUE(mentioned("lottery"));
  EXPECT_TRUE(mentioned("mru"));
  EXPECT_TRUE(mentioned("priority"));
  // Each error names the valid alternatives.
  EXPECT_NE(errs.front().find("valid:"), std::string::npos) << errs.front();

  // A disabled structure's policy strings are never validated (entries=0
  // means the knobs are inert).
  c = SystemConfig{};
  c.switchDir.entries = 0;
  c.switchDir.replacementPolicy = "plru";
  EXPECT_TRUE(c.validationErrors().empty());
}

TEST(SystemConfig, ValidationCatchesNetworkCongestionKnobs) {
  // The flit model packs the VC id into 8 bits of the wormhole lock key.
  SystemConfig c;
  c.net.virtualChannels = 257;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.net.virtualChannels = 256;
  EXPECT_NO_THROW(c.validate());

  // Routing policy names come from the interconnect registry and the error
  // lists the valid alternatives.
  c = SystemConfig{};
  c.net.routing = "valiant";
  const std::vector<std::string> errs = c.validationErrors();
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs.front().find("'valiant'"), std::string::npos) << errs.front();
  EXPECT_NE(errs.front().find("lca"), std::string::npos) << errs.front();
  EXPECT_NE(errs.front().find("adaptive"), std::string::npos) << errs.front();
  c.net.routing = "adaptive";
  EXPECT_NO_THROW(c.validate());
}

TEST(SystemConfig, ShardedKernelRejectsCongestionLabFeatures) {
  // Adaptive routing reads switch occupancy mid-cycle and the flit model is
  // single-kernel; both are gated to simThreads=1 rather than silently
  // diverging under the sharded scheduler.
  SystemConfig c;
  c.simThreads = 2;
  c.net.routing = "adaptive";
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig{};
  c.simThreads = 2;
  c.net.flitLevel = true;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SystemConfig{};
  c.simThreads = 1;
  c.net.routing = "adaptive";
  c.net.flitLevel = true;
  EXPECT_NO_THROW(c.validate());
}

TEST(SystemConfig, DumpNamesNonDefaultRoutingOnly) {
  SystemConfig c;
  std::ostringstream os;
  c.dump(os);
  EXPECT_EQ(os.str().find("routing"), std::string::npos);  // default stays silent

  c.net.routing = "adaptive";
  std::ostringstream os2;
  c.dump(os2);
  EXPECT_NE(os2.str().find("routing adaptive"), std::string::npos) << os2.str();
}

TEST(SystemConfig, DumpNamesNonDefaultPoliciesOnly) {
  SystemConfig c;
  std::ostringstream os;
  c.dump(os);
  EXPECT_EQ(os.str().find("policy"), std::string::npos);  // default stays silent

  c.switchDir.replacementPolicy = "random";
  c.switchDir.arbitrationPolicy = "phase";
  std::ostringstream os2;
  c.dump(os2);
  EXPECT_NE(os2.str().find("random/phase"), std::string::npos) << os2.str();
}

TEST(SystemConfig, DisabledSwitchDirIsBaseSystem) {
  SystemConfig c;
  c.switchDir.entries = 0;
  EXPECT_FALSE(c.switchDir.enabled());
  EXPECT_NO_THROW(c.validate());
  std::ostringstream os;
  c.dump(os);
  EXPECT_NE(os.str().find("Base system"), std::string::npos);
}

TEST(TraceConfig, DefaultsMatchPaperTable3) {
  TraceConfig t;
  EXPECT_EQ(t.cacheBytes, 2u * 1024 * 1024);
  EXPECT_EQ(t.cacheAssoc, 4u);
  EXPECT_EQ(t.cacheAccess, 8u);
  EXPECT_EQ(t.localMemory, 100u);
  EXPECT_EQ(t.ctocLocalHome, 220u);
  EXPECT_EQ(t.remoteMemory, 260u);
  EXPECT_EQ(t.ctocRemoteHome, 320u);
  EXPECT_EQ(t.switchDirHit, 200u);
  EXPECT_NO_THROW(t.validate());
}

TEST(TraceConfig, Dump) {
  TraceConfig t;
  std::ostringstream os;
  t.dump(os);
  EXPECT_NE(os.str().find("220"), std::string::npos);
  EXPECT_NE(os.str().find("320"), std::string::npos);
}

}  // namespace
}  // namespace dresar
