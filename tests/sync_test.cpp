// Synchronization primitives over the simulated protocol: hardware barrier
// semantics, spin-lock mutual exclusion under real contention, and the
// sense-reversing barrier built on protocol-visible operations.
#include "cpu/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/system.h"

namespace dresar {
namespace {

TEST(HwBarrier, ReleasesAllAtLastArrivalPlusLatency) {
  SystemConfig cfg;
  System sys(cfg);
  HwBarrier barrier(sys.sched(), 3, 10);
  std::vector<Cycle> released;
  auto body = [&](ThreadContext& ctx, Cycle arriveAt) -> SimTask {
    co_await ctx.delay(arriveAt);
    co_await barrier.arrive(ctx);
    released.push_back(ctx.now());
  };
  sys.spawn(body(sys.ctx(0), 5));
  sys.spawn(body(sys.ctx(1), 20));
  sys.spawn(body(sys.ctx(2), 11));
  sys.run();
  ASSERT_EQ(released.size(), 3u);
  for (const Cycle c : released) EXPECT_EQ(c, 30u);  // last arrival 20 + 10
  EXPECT_EQ(barrier.episodes(), 1u);
}

TEST(HwBarrier, MultipleEpisodes) {
  SystemConfig cfg;
  System sys(cfg);
  HwBarrier barrier(sys.sched(), 2, 4);
  int rounds = 0;
  auto body = [&](ThreadContext& ctx) -> SimTask {
    for (int i = 0; i < 5; ++i) {
      co_await ctx.delay(1 + ctx.id());
      co_await barrier.arrive(ctx);
    }
    if (ctx.id() == 0) rounds = 5;
  };
  sys.spawn(body(sys.ctx(0)));
  sys.spawn(body(sys.ctx(1)));
  sys.run();
  EXPECT_EQ(rounds, 5);
  EXPECT_EQ(barrier.episodes(), 5u);
}

TEST(SpinLock, MutualExclusionUnderContention) {
  SystemConfig cfg;
  System sys(cfg);
  SpinLock lock(sys.mem().allocAt(0, cfg.lineBytes));
  int inside = 0;
  int maxInside = 0;
  std::uint64_t counter = 0;
  constexpr int kIters = 20;
  auto body = [&](ThreadContext& ctx) -> SimTask {
    for (int i = 0; i < kIters; ++i) {
      co_await lock.acquire(ctx);
      ++inside;
      maxInside = std::max(maxInside, inside);
      co_await ctx.delay(7);  // hold the lock across simulated time
      ++counter;
      --inside;
      co_await lock.release(ctx);
      co_await ctx.compute(12);
    }
  };
  for (NodeId n = 0; n < cfg.numNodes; ++n) sys.spawn(body(sys.ctx(n)));
  sys.run();
  EXPECT_EQ(maxInside, 1) << "two holders inside the critical section";
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kIters) * cfg.numNodes);
  EXPECT_FALSE(lock.held());
}

TEST(SpinLock, GeneratesCoherenceTraffic) {
  SystemConfig cfg;
  System sys(cfg);
  SpinLock lock(sys.mem().allocAt(3, cfg.lineBytes));
  auto body = [&](ThreadContext& ctx) -> SimTask {
    for (int i = 0; i < 4; ++i) {
      co_await lock.acquire(ctx);
      co_await lock.release(ctx);
    }
  };
  for (NodeId n = 0; n < 4; ++n) sys.spawn(body(sys.ctx(n)));
  sys.run();
  // The lock line must have migrated between caches via the protocol.
  EXPECT_GT(sys.stats().sumByPrefix("net.msgs.WriteRequest"), 0u);
  EXPECT_GT(sys.ctx(0).rmws(), 0u);
}

TEST(SenseBarrier, SynchronizesViaProtocolOps) {
  SystemConfig cfg;
  System sys(cfg);
  SenseBarrier barrier(sys.mem().allocAt(0, cfg.lineBytes), sys.mem().allocAt(1, cfg.lineBytes),
                       4);
  std::vector<int> phaseAt(4, 0);
  bool ordered = true;
  auto body = [&](ThreadContext& ctx) -> SimTask {
    for (int phase = 0; phase < 3; ++phase) {
      co_await ctx.delay(1 + 13 * ctx.id());  // stagger arrivals
      phaseAt[ctx.id()] = phase;
      co_await barrier.arrive(ctx);
      // After the barrier no one may still be in an older phase.
      for (const int p : phaseAt) {
        if (p < phase) ordered = false;
      }
    }
  };
  for (NodeId n = 0; n < 4; ++n) sys.spawn(body(sys.ctx(n)));
  sys.run();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace dresar
