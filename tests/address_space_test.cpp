#include "sim/address_space.h"

#include <gtest/gtest.h>

#include "common/config.h"

namespace dresar {
namespace {

TEST(AddressSpace, InterleavedAllocSpansHomes) {
  SystemConfig cfg;
  AddressSpace as(cfg);
  const Addr base = as.alloc(cfg.pageBytes * cfg.numNodes);
  // Consecutive pages land on consecutive homes.
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    EXPECT_EQ(as.homeOf(base + n * cfg.pageBytes), (as.homeOf(base) + n) % cfg.numNodes);
  }
}

TEST(AddressSpace, AllocationsAreLineAlignedAndDisjoint) {
  SystemConfig cfg;
  AddressSpace as(cfg);
  const Addr a = as.alloc(10);
  const Addr b = as.alloc(10);
  EXPECT_EQ(a % cfg.lineBytes, 0u);
  EXPECT_EQ(b % cfg.lineBytes, 0u);
  EXPECT_GE(b, a + 10);
}

TEST(AddressSpace, AllocAtPlacesOnRequestedHome) {
  SystemConfig cfg;
  AddressSpace as(cfg);
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    const Addr a = as.allocAt(n, cfg.lineBytes);
    EXPECT_EQ(as.homeOf(a), n) << "allocation for node " << n;
  }
}

TEST(AddressSpace, AllocAtStaysOnHomeAcrossManyAllocations) {
  SystemConfig cfg;
  AddressSpace as(cfg);
  for (int i = 0; i < 500; ++i) {
    const Addr a = as.allocAt(5, 96);
    EXPECT_EQ(as.homeOf(a), 5u);
    EXPECT_EQ(as.homeOf(a + 95), 5u);  // whole object on one home
  }
}

TEST(AddressSpace, AllocAtRejectsOverPageAllocations) {
  SystemConfig cfg;
  AddressSpace as(cfg);
  EXPECT_THROW(as.allocAt(0, cfg.pageBytes + 1), std::invalid_argument);
  EXPECT_THROW(as.allocAt(cfg.numNodes, 8), std::out_of_range);
}

TEST(SharedArray, ElementAddressing) {
  SystemConfig cfg;
  AddressSpace as(cfg);
  SharedArray<double> arr(as, 100);
  EXPECT_EQ(arr.size(), 100u);
  EXPECT_EQ(arr.addr(1) - arr.addr(0), sizeof(double));
  arr[7] = 3.5;
  EXPECT_DOUBLE_EQ(arr[7], 3.5);
}

TEST(SharedArray, DistinctArraysDoNotOverlap) {
  SystemConfig cfg;
  AddressSpace as(cfg);
  SharedArray<int> a(as, 64);
  SharedArray<int> b(as, 64);
  EXPECT_GE(b.addr(0), a.addr(63) + sizeof(int));
}

}  // namespace
}  // namespace dresar
