// Policy-lab tests: the pluggable replacement/arbitration seams themselves,
// and a conformance sweep proving every registered policy combination drives
// the full protocol to a clean, quiescent finish (the policies steer victim
// choice and port sharing; they must never be able to break coherence).
#include "switchdir/sd_policy.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "switchdir/port_schedule.h"

namespace dresar {
namespace {

TEST(SdPolicyRegistry, ShipsTheDocumentedPolicies) {
  EXPECT_EQ(sdReplacementPolicyNames(), (std::vector<std::string>{"lru", "fifo", "random"}));
  EXPECT_EQ(sdArbitrationPolicyNames(), (std::vector<std::string>{"fifo", "phase"}));
  EXPECT_EQ(sdReplacementPolicyList(), "lru, fifo, random");
  EXPECT_EQ(sdArbitrationPolicyList(), "fifo, phase");
  for (const std::string& n : sdReplacementPolicyNames()) {
    EXPECT_TRUE(isSdReplacementPolicy(n)) << n;
    const auto p = makeSdReplacementPolicy(n);
    EXPECT_EQ(p->name(), n);
  }
  for (const std::string& n : sdArbitrationPolicyNames()) {
    EXPECT_TRUE(isSdArbitrationPolicy(n)) << n;
    const auto p = makeSdArbitrationPolicy(n);
    EXPECT_EQ(p->name(), n);
  }
  EXPECT_FALSE(isSdReplacementPolicy("plru"));
  EXPECT_FALSE(isSdArbitrationPolicy("lottery"));
}

TEST(SdPolicyRegistry, FactoriesRejectUnknownNames) {
  EXPECT_THROW((void)makeSdReplacementPolicy("plru"), std::invalid_argument);
  EXPECT_THROW((void)makeSdArbitrationPolicy("lottery"), std::invalid_argument);
  try {
    (void)makeSdReplacementPolicy("mru");
    FAIL() << "must throw";
  } catch (const std::invalid_argument& e) {
    // The message names the valid alternatives.
    EXPECT_NE(std::string(e.what()).find("lru, fifo, random"), std::string::npos) << e.what();
  }
}

TEST(SdPolicy, LruTouchesOnHitFifoAndRandomDoNot) {
  EXPECT_TRUE(makeSdReplacementPolicy("lru")->touchOnHit());
  EXPECT_FALSE(makeSdReplacementPolicy("fifo")->touchOnHit());
  EXPECT_FALSE(makeSdReplacementPolicy("random")->touchOnHit());
}

TEST(SdPolicy, OldestStampWinsForLruAndFifo) {
  SDEntry a, b, c;
  a.lastUse = 30;
  b.lastUse = 10;
  c.lastUse = 20;
  SDEntry* cands[] = {&a, &b, &c};
  EXPECT_EQ(makeSdReplacementPolicy("lru")->pickVictim(cands, 3), &b);
  EXPECT_EQ(makeSdReplacementPolicy("fifo")->pickVictim(cands, 3), &b);
}

TEST(SdPolicy, RandomStreamsAreIdenticalAcrossInstances) {
  SDEntry e[4];
  SDEntry* cands[] = {&e[0], &e[1], &e[2], &e[3]};
  const auto draw = [&](SDReplacementPolicy& p, int n) {
    std::vector<SDEntry*> out;
    for (int i = 0; i < n; ++i) out.push_back(p.pickVictim(cands, 4));
    return out;
  };
  const auto p1 = makeSdReplacementPolicy("random");
  const auto p2 = makeSdReplacementPolicy("random");
  EXPECT_EQ(draw(*p1, 64), draw(*p2, 64));
}

TEST(SdArbitration, FifoIsArrivalOrderRegardlessOfPhase) {
  PortSchedule ports(2);
  const auto arb = makeSdArbitrationPolicy("fifo");
  EXPECT_EQ(arb->reserve(ports, 10, SDAccessPhase::Request), 0u);
  EXPECT_EQ(arb->reserve(ports, 10, SDAccessPhase::Request), 0u);
  EXPECT_EQ(arb->reserve(ports, 10, SDAccessPhase::Completion), 1u);
}

TEST(SdArbitration, PhasePriorityThrottlesFreshRequests) {
  // 2 ports: a fresh request may claim only one per cycle; completion
  // traffic fills the width.
  PortSchedule ports(2);
  const auto arb = makeSdArbitrationPolicy("phase");
  EXPECT_EQ(arb->reserve(ports, 10, SDAccessPhase::Request), 0u);
  EXPECT_EQ(arb->reserve(ports, 10, SDAccessPhase::Request), 1u);  // held back
  PortSchedule ports2(2);
  EXPECT_EQ(arb->reserve(ports2, 10, SDAccessPhase::Completion), 0u);
  EXPECT_EQ(arb->reserve(ports2, 10, SDAccessPhase::Completion), 0u);
}

TEST(SdArbitration, PhasePriorityDegeneratesToFifoOnOnePort) {
  PortSchedule ports(1);
  const auto arb = makeSdArbitrationPolicy("phase");
  // Reserving ports-1 = 0 would starve requests; a single port serves both
  // phases in arrival order instead.
  EXPECT_EQ(arb->reserve(ports, 10, SDAccessPhase::Request), 0u);
  EXPECT_EQ(arb->reserve(ports, 10, SDAccessPhase::Request), 1u);
}

// ---------------------------------------------------------------------------
// Conformance: every registered replacement x arbitration combination runs a
// real workload on a small system — switch directory AND switch cache both
// enabled, sized down hard (64 entries) so evictions actually fire — and must
// end verified, protocol-clean and quiescent with no leaked TRANSIENT entry.

std::string statsDump(Simulation& sim) {
  std::ostringstream os;
  sim.system().stats().dump(os);
  os << "exec_time=" << sim.system().now();
  return os.str();
}

SystemConfig policyConfig(const std::string& repl, const std::string& arb) {
  SystemConfig cfg;
  cfg.switchDir.entries = 64;  // tiny: force replacement traffic
  cfg.switchDir.replacementPolicy = repl;
  cfg.switchDir.arbitrationPolicy = arb;
  cfg.switchCache.entries = 64;
  cfg.switchCache.replacementPolicy = repl;
  cfg.switchCache.arbitrationPolicy = arb;
  return cfg;
}

TEST(SdPolicyConformance, EveryComboFinishesCleanAndQuiescent) {
  for (const std::string& repl : sdReplacementPolicyNames()) {
    for (const std::string& arb : sdArbitrationPolicyNames()) {
      const std::string combo = repl + "-" + arb;
      Simulation sim(policyConfig(repl, arb));
      // run() numerically verifies the kernel result.
      const RunMetrics m = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
      EXPECT_GT(m.execTime, 0u) << combo;
      const CheckReport r = sim.check();
      EXPECT_TRUE(r.ok()) << combo << ": " << (r.violations.empty() ? "" : r.violations[0]);
      EXPECT_TRUE(sim.system().quiescent()) << combo;
      EXPECT_EQ(sim.system().dresar().transientEntries(), 0u) << combo;
    }
  }
}

TEST(SdPolicyConformance, ExplicitDefaultNamesMatchImplicitDefaults) {
  // Naming lru/fifo explicitly is the same system as naming nothing.
  SystemConfig implicit;
  implicit.switchDir.entries = 64;
  implicit.switchCache.entries = 64;
  Simulation a(implicit);
  (void)a.run({.workload = "sor", .scale = WorkloadScale::tiny()});

  Simulation b(policyConfig("lru", "fifo"));
  (void)b.run({.workload = "sor", .scale = WorkloadScale::tiny()});

  EXPECT_EQ(statsDump(a), statsDump(b));
}

}  // namespace
}  // namespace dresar
