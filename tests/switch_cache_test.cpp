// Switch-cache extension tests (paper conclusion / HPCA-5 combination):
// clean-data capture and in-network service, coherence cleanup on writes,
// and the combined switch-directory + switch-cache configuration.
#include "switchdir/switch_cache.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "cpu/sync.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

SystemConfig configWith(std::uint32_t dirEntries, std::uint32_t cacheEntries) {
  SystemConfig cfg;
  cfg.switchDir.entries = dirEntries;
  cfg.switchCache.entries = cacheEntries;
  return cfg;
}

SimTask broadcastReaders(System& sys, ThreadContext& ctx, Addr a, HwBarrier& barrier) {
  // Proc 0 writes once; everyone then reads the (clean, after c2c) block
  // repeatedly with re-reads from different processors — switch-cache food.
  if (ctx.id() == 0) {
    co_await ctx.store(a);
    co_await ctx.fence();
  }
  co_await barrier.arrive(ctx);
  for (int round = 0; round < 3; ++round) {
    co_await ctx.load(a);
    co_await barrier.arrive(ctx);
    // Evict-free re-read pattern: drop via a conflicting read? Keep simple:
    // the first read per proc misses, later ones hit locally.
  }
}

TEST(SwitchCache, ServesRepeatedRemoteReads) {
  // Force repeated misses: each proc reads a *different* line in the same
  // home page that proc 0 has freshly read (deposited). Simpler: proc i>0
  // reads the same block after invalidating... Use distinct readers: each
  // reader misses once; the first miss deposits, later readers hit at the
  // home-root switch.
  System sys(configWith(0, 1024));
  HwBarrier barrier(sys.sched(), 16, 32);
  const Addr a = sys.mem().alloc(32);
  auto body = [&](ThreadContext& ctx) -> SimTask {
    // Stagger so reader 1 misses first (deposits), then 2..15 hit the
    // switch cache at the shared root switch.
    co_await ctx.delay(1 + 200ull * ctx.id());
    co_await ctx.load(a);
    co_await barrier.arrive(ctx);
  };
  for (NodeId n = 0; n < 16; ++n) sys.spawn(body(sys.ctx(n)));
  sys.run();
  EXPECT_GT(sys.switchCache().deposits(), 0u);
  EXPECT_GT(sys.switchCache().serves(), 0u);
  EXPECT_GT(sys.stats().counterValue("svc.SwitchCache"), 0u);
  EXPECT_TRUE(sys.quiescent());
}

TEST(SwitchCache, HomeDirectoryTracksSwitchServedSharers) {
  System sys(configWith(0, 1024));
  const Addr a = sys.mem().alloc(32);
  HwBarrier barrier(sys.sched(), 3, 16);
  auto body = [&](ThreadContext& ctx) -> SimTask {
    co_await ctx.delay(1 + 300ull * ctx.id());
    co_await ctx.load(a);
    co_await barrier.arrive(ctx);
  };
  for (NodeId n = 0; n < 3; ++n) sys.spawn(body(sys.ctx(n)));
  sys.run();
  const auto* d = sys.dir(sys.config().homeOf(a)).peek(a);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->state, DirState::Shared);
  // Every reader is in the sharer vector even if served in-network.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_NE(d->sharers & (1ull << n), 0u) << "reader " << n << " missing from full map";
  }
}

TEST(SwitchCache, WritesInvalidateCachedCopiesEverywhere) {
  System sys(configWith(0, 1024));
  const Addr a = sys.mem().alloc(32);
  HwBarrier barrier(sys.sched(), 16, 32);
  auto body = [&](ThreadContext& ctx) -> SimTask {
    co_await ctx.delay(1 + 100ull * ctx.id());
    co_await ctx.load(a);
    co_await barrier.arrive(ctx);
    if (ctx.id() == 7) {
      co_await ctx.store(a);
      co_await ctx.fence();
    }
    co_await barrier.arrive(ctx);
    co_await ctx.load(a);  // must see the protocol, not a stale switch copy
    co_await barrier.arrive(ctx);
  };
  for (NodeId n = 0; n < 16; ++n) sys.spawn(body(sys.ctx(n)));
  sys.run();
  EXPECT_TRUE(sys.quiescent());
  // After the run the writer's line is properly tracked.
  const auto* d = sys.dir(sys.config().homeOf(a)).peek(a);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->state, DirState::BusyRead);
  EXPECT_NE(d->state, DirState::BusyWrite);
}

TEST(SwitchCache, CombinedWithSwitchDirectory) {
  for (const auto& name : {"sor", "tc"}) {
    System sys(configWith(1024, 1024));
    auto w = makeWorkload(name, WorkloadScale::tiny());
    const RunMetrics m = runWorkload(sys, *w);
    EXPECT_GT(m.reads, 0u);
    EXPECT_EQ(sys.dresar().transientEntries(), 0u);
    EXPECT_TRUE(sys.quiescent());
  }
}

TEST(SwitchCache, StressWithRandomTraffic) {
  SystemConfig cfg = configWith(512, 512);
  System sys(cfg);
  const Addr pool = sys.mem().alloc(32 * cfg.lineBytes);
  auto body = [&](ThreadContext& ctx, std::uint64_t seed) -> SimTask {
    Rng rng(seed);
    for (int i = 0; i < 250; ++i) {
      const Addr a = pool + rng.below(32) * cfg.lineBytes;
      if (rng.below(4) == 0) {
        co_await ctx.store(a);
      } else {
        co_await ctx.load(a);
      }
      co_await ctx.compute(rng.below(8) + 1);
    }
    co_await ctx.fence();
  };
  for (NodeId n = 0; n < cfg.numNodes; ++n) sys.spawn(body(sys.ctx(n), 31 + n));
  sys.run();
  EXPECT_TRUE(sys.quiescent());
  EXPECT_EQ(sys.dresar().transientEntries(), 0u);
  // Single-owner invariant still holds with both structures active.
  std::uint64_t mCopies = 0;
  std::map<Addr, int> owners;
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    sys.cache(n).l2().forEachValid([&](const CacheLine& l) {
      if (l.state == CacheState::M) {
        ++mCopies;
        EXPECT_EQ(++owners[l.tag], 1);
      }
    });
  }
  (void)mCopies;
}

TEST(SwitchCache, DisabledByDefault) {
  SystemConfig cfg;
  EXPECT_FALSE(cfg.switchCache.enabled());
  System sys(cfg);
  auto w = makeWorkload("fwa", WorkloadScale::tiny());
  const RunMetrics m = runWorkload(sys, *w);
  EXPECT_EQ(m.svcSwitchCache, 0u);
}

}  // namespace
}  // namespace dresar
