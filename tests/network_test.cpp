#include "interconnect/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/scheduler.h"
#include "common/stats.h"

namespace dresar {
namespace {

struct Fixture {
  SimKernel kernel{1};
  NetworkConfig cfg;
  Network net;
  StatRegistry& stats = kernel.registry(0);

  Fixture() : net(cfg, 16, 32, kernel) {}

  // Single-shard drivers the old raw-EventQueue fixture exposed.
  void run() { kernel.run(); }
  [[nodiscard]] Cycle now() const { return kernel.now(); }
};

Message mkMsg(MsgType t, Endpoint src, Endpoint dst, Addr a = 0x100) {
  Message m;
  m.type = t;
  m.src = src;
  m.dst = dst;
  m.addr = a;
  m.requester = src.kind == EndpointKind::Proc ? src.node : kInvalidNode;
  return m;
}

TEST(Network, DeliversWithExpectedLatency) {
  Fixture f;
  Cycle arrival = kNoCycle;
  f.net.setDeliveryHandler(memEp(9), [&](const Message&) { arrival = f.now(); });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  // Header-only message: 1 flit = 4 link cycles per hop, 3 link traversals
  // (inject, stage0->stage1, stage1->mem) + 2 switch core delays of 4.
  EXPECT_EQ(arrival, 3u * 4 + 2u * 4);
}

TEST(Network, DataMessagesSerializeLonger) {
  Fixture f;
  Cycle headerArrival = 0, dataArrival = 0;
  f.net.setDeliveryHandler(memEp(9), [&](const Message& m) {
    (carriesData(m.type) ? dataArrival : headerArrival) = f.now();
  });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9)));
  f.run();
  // 8B header + 32B line = 5 flits = 20 link cycles per hop.
  EXPECT_EQ(dataArrival - headerArrival, (3u * 20 + 2u * 4));
}

TEST(Network, ContentionQueuesOnSharedLink) {
  Fixture f;
  std::vector<Cycle> arrivals;
  f.net.setDeliveryHandler(memEp(9), [&](const Message&) { arrivals.push_back(f.now()); });
  // Two messages from the same source serialize on the injection link.
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9), 0x100));
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9), 0x200));
  f.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 4u);  // pipelined one flit apart
}

TEST(Network, PerPathFifoOrdering) {
  Fixture f;
  std::vector<Addr> order;
  f.net.setDeliveryHandler(memEp(9), [&](const Message& m) { order.push_back(m.addr); });
  // A long data message followed by a short one on the same path must not
  // be overtaken (store-and-forward per-link reservation).
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9), 0xA));
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9), 0xB));
  f.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0xAu);
  EXPECT_EQ(order[1], 0xBu);
}

class SinkSnoop : public ISwitchSnoop {
 public:
  SnoopOutcome onMessage(SwitchId sw, Cycle, Message& m, std::vector<Message>& spawn) override {
    ++seen;
    lastSwitch = sw;
    if (sinkAtRoot && sw.stage == 1) {
      if (spawnReply) {
        Message r;
        r.type = MsgType::Retry;
        r.src = procEp(m.requester);
        r.dst = procEp(m.requester);
        r.addr = m.addr;
        r.requester = m.requester;
        r.marked = true;
        spawn.push_back(r);
      }
      return {false, 0};
    }
    return {true, extraDelay};
  }
  int seen = 0;
  SwitchId lastSwitch;
  bool sinkAtRoot = false;
  bool spawnReply = false;
  Cycle extraDelay = 0;
};

TEST(Network, SnoopSeesEverySwitchOnPath) {
  Fixture f;
  SinkSnoop snoop;
  f.net.setSnoop(&snoop);
  f.net.setDeliveryHandler(memEp(9), [](const Message&) {});
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_EQ(snoop.seen, 2);  // leaf + root
}

TEST(Network, SnoopCanSinkMessages) {
  Fixture f;
  SinkSnoop snoop;
  snoop.sinkAtRoot = true;
  f.net.setSnoop(&snoop);
  bool delivered = false;
  f.net.setDeliveryHandler(memEp(9), [&](const Message&) { delivered = true; });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(f.net.messagesSunk(), 1u);
}

TEST(Network, SnoopSpawnedMessageIsRoutedFromSwitch) {
  Fixture f;
  SinkSnoop snoop;
  snoop.sinkAtRoot = true;
  snoop.spawnReply = true;
  f.net.setSnoop(&snoop);
  bool retryArrived = false;
  f.net.setDeliveryHandler(memEp(9), [](const Message&) {});
  f.net.setDeliveryHandler(procEp(5), [&](const Message& m) {
    retryArrived = m.type == MsgType::Retry && m.marked;
  });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_TRUE(retryArrived);
}

TEST(Network, SnoopExtraDelaySlowsDelivery) {
  Fixture f;
  Cycle base = 0, delayed = 0;
  f.net.setDeliveryHandler(memEp(9), [&](const Message&) {
    if (base == 0) base = f.now();
    else delayed = f.now() - base;
  });
  SinkSnoop snoop;
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  base = f.now();
  Cycle t0 = f.now();
  snoop.extraDelay = 10;
  f.net.setSnoop(&snoop);
  Cycle arrive2 = 0;
  f.net.setDeliveryHandler(memEp(9), [&](const Message&) { arrive2 = f.now(); });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_EQ(arrive2 - t0, 3u * 4 + 2u * 4 + 2u * 10);
}

TEST(Network, CountsMessagesByType) {
  Fixture f;
  f.net.setDeliveryHandler(memEp(0), [](const Message&) {});
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(1), memEp(0)));
  f.net.send(mkMsg(MsgType::WriteRequest, procEp(2), memEp(0)));
  f.run();
  EXPECT_EQ(f.stats.counterValue("net.msgs.ReadRequest"), 1u);
  EXPECT_EQ(f.stats.counterValue("net.msgs.WriteRequest"), 1u);
  EXPECT_EQ(f.net.messagesSent(), 2u);
}

TEST(Network, MissingHandlerThrows) {
  Fixture f;
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(1), memEp(0)));
  EXPECT_THROW(f.run(), std::logic_error);
}

TEST(Network, ProcToProcSameClusterTurnaround) {
  Fixture f;
  Cycle arrival = kNoCycle;
  f.net.setDeliveryHandler(procEp(6), [&](const Message& m) {
    EXPECT_EQ(m.type, MsgType::CtoCReply);
    arrival = f.now();
  });
  f.net.send(mkMsg(MsgType::CtoCReply, procEp(4), procEp(6)));
  f.run();
  // One switch (turnaround at the shared leaf): 2 link traversals of a
  // 5-flit data message + 1 core delay.
  EXPECT_EQ(arrival, 2u * 20 + 4);
}

TEST(Network, ProcToProcCrossClusterTraversesThreeSwitches) {
  Fixture f;
  SinkSnoop snoop;
  f.net.setSnoop(&snoop);
  bool arrived = false;
  f.net.setDeliveryHandler(procEp(14), [&](const Message&) { arrived = true; });
  f.net.send(mkMsg(MsgType::CtoCReply, procEp(1), procEp(14)));
  f.run();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(snoop.seen, 3);  // leaf, root, leaf
}

TEST(Network, AllPairsDeliver) {
  Fixture f;
  int count = 0;
  for (NodeId m = 0; m < 16; ++m) {
    f.net.setDeliveryHandler(memEp(m), [&](const Message&) { ++count; });
  }
  for (NodeId p = 0; p < 16; ++p) {
    for (NodeId m = 0; m < 16; ++m) {
      f.net.send(mkMsg(MsgType::ReadRequest, procEp(p), memEp(m), 0x40ull * (p * 16 + m)));
    }
  }
  f.run();
  EXPECT_EQ(count, 256);
}

}  // namespace
}  // namespace dresar
