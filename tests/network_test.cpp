#include "interconnect/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/scheduler.h"
#include "common/stats.h"

namespace dresar {
namespace {

// Observer wiring is immutable (NetworkHooks at construction), so fixtures
// that want a snoop pass it to the constructor; delivery handlers register
// on the FnSink adapter, whose address is what the network captures.
struct Fixture {
  SimKernel kernel{1};
  NetworkConfig cfg;
  FnSink sink;
  Network net;
  StatRegistry& stats = kernel.registry(0);

  explicit Fixture(ISwitchSnoop* snoop = nullptr)
      : net(cfg, 16, 32, kernel, NetworkHooks{&sink, snoop, nullptr, nullptr}) {}

  // Single-shard drivers the old raw-EventQueue fixture exposed.
  void run() { kernel.run(); }
  [[nodiscard]] Cycle now() const { return kernel.now(); }
};

Message mkMsg(MsgType t, Endpoint src, Endpoint dst, Addr a = 0x100) {
  Message m;
  m.type = t;
  m.src = src;
  m.dst = dst;
  m.addr = a;
  m.requester = src.kind == EndpointKind::Proc ? src.node : kInvalidNode;
  return m;
}

TEST(Network, DeliversWithExpectedLatency) {
  Fixture f;
  Cycle arrival = kNoCycle;
  f.sink.on(memEp(9), [&](const Message&) { arrival = f.now(); });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  // Header-only message: 1 flit = 4 link cycles per hop, 3 link traversals
  // (inject, stage0->stage1, stage1->mem) + 2 switch core delays of 4.
  EXPECT_EQ(arrival, 3u * 4 + 2u * 4);
}

TEST(Network, DataMessagesSerializeLonger) {
  Fixture f;
  Cycle headerArrival = 0, dataArrival = 0;
  f.sink.on(memEp(9), [&](const Message& m) {
    (carriesData(m.type) ? dataArrival : headerArrival) = f.now();
  });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9)));
  f.run();
  // 8B header + 32B line = 5 flits = 20 link cycles per hop.
  EXPECT_EQ(dataArrival - headerArrival, (3u * 20 + 2u * 4));
}

TEST(Network, ContentionQueuesOnSharedLink) {
  Fixture f;
  std::vector<Cycle> arrivals;
  f.sink.on(memEp(9), [&](const Message&) { arrivals.push_back(f.now()); });
  // Two messages from the same source serialize on the injection link.
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9), 0x100));
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9), 0x200));
  f.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 4u);  // pipelined one flit apart
}

TEST(Network, PerPathFifoOrdering) {
  Fixture f;
  std::vector<Addr> order;
  f.sink.on(memEp(9), [&](const Message& m) { order.push_back(m.addr); });
  // A long data message followed by a short one on the same path must not
  // be overtaken (store-and-forward per-link reservation).
  f.net.send(mkMsg(MsgType::WriteBack, procEp(5), memEp(9), 0xA));
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9), 0xB));
  f.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0xAu);
  EXPECT_EQ(order[1], 0xBu);
}

class SinkSnoop : public ISwitchSnoop {
 public:
  SnoopOutcome onMessage(SwitchId sw, Cycle, Message& m, std::vector<Message>& spawn) override {
    ++seen;
    lastSwitch = sw;
    if (sinkAtRoot && sw.stage == 1) {
      if (spawnReply) {
        Message r;
        r.type = MsgType::Retry;
        r.src = procEp(m.requester);
        r.dst = procEp(m.requester);
        r.addr = m.addr;
        r.requester = m.requester;
        r.marked = true;
        spawn.push_back(r);
      }
      return {false, 0};
    }
    return {true, extraDelay};
  }
  int seen = 0;
  SwitchId lastSwitch;
  bool sinkAtRoot = false;
  bool spawnReply = false;
  Cycle extraDelay = 0;
};

TEST(Network, SnoopSeesEverySwitchOnPath) {
  SinkSnoop snoop;
  Fixture f(&snoop);
  f.sink.on(memEp(9), [](const Message&) {});
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_EQ(snoop.seen, 2);  // leaf + root
}

TEST(Network, SnoopCanSinkMessages) {
  SinkSnoop snoop;
  snoop.sinkAtRoot = true;
  Fixture f(&snoop);
  bool delivered = false;
  f.sink.on(memEp(9), [&](const Message&) { delivered = true; });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(f.net.messagesSunk(), 1u);
}

TEST(Network, SnoopSpawnedMessageIsRoutedFromSwitch) {
  SinkSnoop snoop;
  snoop.sinkAtRoot = true;
  snoop.spawnReply = true;
  Fixture f(&snoop);
  bool retryArrived = false;
  f.sink.on(memEp(9), [](const Message&) {});
  f.sink.on(procEp(5), [&](const Message& m) {
    retryArrived = m.type == MsgType::Retry && m.marked;
  });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_TRUE(retryArrived);
}

TEST(Network, SnoopExtraDelaySlowsDelivery) {
  // Identical sends through a plain network and one whose snoop charges 10
  // extra cycles at each of the two switches on the path.
  Fixture plain;
  Cycle base = kNoCycle;
  plain.sink.on(memEp(9), [&](const Message&) { base = plain.now(); });
  plain.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  plain.run();

  SinkSnoop snoop;
  snoop.extraDelay = 10;
  Fixture f(&snoop);
  Cycle delayed = kNoCycle;
  f.sink.on(memEp(9), [&](const Message&) { delayed = f.now(); });
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(5), memEp(9)));
  f.run();
  EXPECT_EQ(delayed - base, 2u * 10);
}

TEST(Network, CountsMessagesByType) {
  Fixture f;
  f.sink.on(memEp(0), [](const Message&) {});
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(1), memEp(0)));
  f.net.send(mkMsg(MsgType::WriteRequest, procEp(2), memEp(0)));
  f.run();
  EXPECT_EQ(f.stats.counterValue("net.msgs.ReadRequest"), 1u);
  EXPECT_EQ(f.stats.counterValue("net.msgs.WriteRequest"), 1u);
  EXPECT_EQ(f.net.messagesSent(), 2u);
}

TEST(Network, MissingHandlerThrows) {
  Fixture f;
  f.net.send(mkMsg(MsgType::ReadRequest, procEp(1), memEp(0)));
  EXPECT_THROW(f.run(), std::logic_error);
}

TEST(Network, ProcToProcSameClusterTurnaround) {
  Fixture f;
  Cycle arrival = kNoCycle;
  f.sink.on(procEp(6), [&](const Message& m) {
    EXPECT_EQ(m.type, MsgType::CtoCReply);
    arrival = f.now();
  });
  f.net.send(mkMsg(MsgType::CtoCReply, procEp(4), procEp(6)));
  f.run();
  // One switch (turnaround at the shared leaf): 2 link traversals of a
  // 5-flit data message + 1 core delay.
  EXPECT_EQ(arrival, 2u * 20 + 4);
}

TEST(Network, ProcToProcCrossClusterTraversesThreeSwitches) {
  SinkSnoop snoop;
  Fixture f(&snoop);
  bool arrived = false;
  f.sink.on(procEp(14), [&](const Message&) { arrived = true; });
  f.net.send(mkMsg(MsgType::CtoCReply, procEp(1), procEp(14)));
  f.run();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(snoop.seen, 3);  // leaf, root, leaf
}

TEST(Network, AllPairsDeliver) {
  Fixture f;
  int count = 0;
  for (NodeId m = 0; m < 16; ++m) {
    f.sink.on(memEp(m), [&](const Message&) { ++count; });
  }
  for (NodeId p = 0; p < 16; ++p) {
    for (NodeId m = 0; m < 16; ++m) {
      f.net.send(mkMsg(MsgType::ReadRequest, procEp(p), memEp(m), 0x40ull * (p * 16 + m)));
    }
  }
  f.run();
  EXPECT_EQ(count, 256);
}

TEST(Network, AdaptiveRoutingDeliversAllPairsIdenticallyRouted) {
  // With zero load every candidate route costs the same, so the adaptive
  // policy's min-cost choice falls back to the LCA baseline digit and the
  // two policies deliver with identical latency.
  NetworkConfig base;
  Fixture lca;
  Cycle lcaArrival = kNoCycle;
  lca.sink.on(procEp(14), [&](const Message&) { lcaArrival = lca.now(); });
  lca.net.send(mkMsg(MsgType::CtoCReply, procEp(1), procEp(14)));
  lca.run();

  SimKernel kernel{1};
  NetworkConfig cfg;
  cfg.routing = "adaptive";
  FnSink sink;
  Network net(cfg, 16, 32, kernel, NetworkHooks{&sink, nullptr, nullptr, nullptr});
  Cycle adaptiveArrival = kNoCycle;
  sink.on(procEp(14), [&](const Message&) { adaptiveArrival = kernel.now(); });
  net.send(mkMsg(MsgType::CtoCReply, procEp(1), procEp(14)));
  kernel.run();
  EXPECT_EQ(adaptiveArrival, lcaArrival);
}

}  // namespace
}  // namespace dresar
