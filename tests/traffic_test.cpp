// Multi-tenant traffic subsystem: model statistics (per-tenant Zipf shape,
// burstiness, hot-key drift), stream determinism, the trace-driven harness
// path (spec expansion, v5 serialization, j1-vs-j4 byte identity, job-store
// round trip) and the event-driven oltp/kv workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/aggregate.h"
#include "harness/job_store.h"
#include "harness/run_context.h"
#include "harness/sweep_spec.h"
#include "sim/json_reader.h"
#include "sim/simulation.h"
#include "trace/trace_sim.h"
#include "traffic/traffic_model.h"
#include "traffic/traffic_stats.h"

namespace dresar {
namespace {

/// A pure plain-access config: no sharing, no locality re-references, no
/// drift, reads only — so every emitted reference is one (tenant, key) draw
/// and distribution tests see the Zipf samplers directly.
TrafficConfig plainConfig(std::uint64_t refs) {
  TrafficConfig c;
  c.refs = refs;
  c.sharedFrac = 0.0;
  c.localityFrac = 0.0;
  c.writeFrac = 0.0;
  c.migrationPeriodRefs = 0;
  return c;
}

// ------------------------------------------------------------ determinism --

TEST(TrafficModel, SameConfigSameStream) {
  const TrafficConfig c = TrafficConfig::oltp(5'000);
  TrafficModel a(c);
  TrafficModel b(c);
  TrafficRef ra, rb;
  while (a.nextRef(ra)) {
    ASSERT_TRUE(b.nextRef(rb));
    EXPECT_EQ(ra.rec.pid, rb.rec.pid);
    EXPECT_EQ(ra.rec.addr, rb.rec.addr);
    EXPECT_EQ(ra.rec.write, rb.rec.write);
    EXPECT_EQ(ra.tenant, rb.tenant);
    EXPECT_EQ(ra.arrivalCycle, rb.arrivalCycle);
    EXPECT_EQ(ra.burst, rb.burst);
  }
  EXPECT_FALSE(b.nextRef(rb));
  EXPECT_EQ(a.emitted(), 5'000u);
}

TEST(TrafficModel, RefStreamViewMatchesFullFidelityView) {
  const TrafficConfig c = TrafficConfig::kv(2'000);
  TrafficModel full(c);
  TrafficModel plain(c);
  TrafficRef rf;
  TraceRecord rp;
  while (full.nextRef(rf)) {
    ASSERT_TRUE(plain.next(rp));
    EXPECT_EQ(rf.rec.addr, rp.addr);
    EXPECT_EQ(rf.rec.pid, rp.pid);
    EXPECT_EQ(rf.rec.write, rp.write);
  }
  EXPECT_FALSE(plain.next(rp));
}

TEST(TrafficModel, StreamsAreIndependentPerStreamId) {
  TrafficConfig c = TrafficConfig::oltp(1'000);
  TrafficModel s0(c);
  c.streamId = 1;
  TrafficModel s1(c);
  TrafficRef a, b;
  std::uint64_t same = 0;
  while (s0.nextRef(a) && s1.nextRef(b)) same += a.rec.addr == b.rec.addr;
  EXPECT_LT(same, 50u);  // distinct streams, not a shifted copy
}

TEST(TrafficModel, PinnedPidEmitsOnlyThatNode) {
  TrafficConfig c = TrafficConfig::oltp(3'000);
  c.pinnedPid = 5;
  TrafficModel m(c);
  TrafficRef r;
  while (m.nextRef(r)) EXPECT_EQ(r.rec.pid, 5u);
}

TEST(TrafficModel, MultiplexedStreamCoversAllNodes) {
  TrafficConfig c = plainConfig(10'000);
  TrafficModel m(c);
  std::vector<std::uint64_t> perNode(c.numProcs, 0);
  TrafficRef r;
  while (m.nextRef(r)) ++perNode[r.rec.pid];
  for (std::uint32_t p = 0; p < c.numProcs; ++p) EXPECT_GT(perNode[p], 0u) << p;
}

// --------------------------------------------------- distribution shape ----

TEST(TrafficModel, PerTenantKeysFollowZipf) {
  // Chi-squared goodness of fit on the hottest tenant's key counts against
  // the configured Zipf pmf (rank ladder rotated by tenant * 7919, the
  // per-tenant offset the model applies).
  TrafficConfig c = plainConfig(400'000);
  c.tenants = 2;
  c.keysPerTenant = 50;
  c.skew = 0.9;
  TrafficModel m(c);

  std::map<std::uint32_t, std::vector<std::uint64_t>> keyCounts;  // tenant -> per-key
  TrafficRef r;
  while (m.nextRef(r)) {
    auto& counts = keyCounts[r.tenant];
    counts.resize(c.keysPerTenant, 0);
    const auto key = static_cast<std::uint32_t>((r.rec.addr - m.tenantAddr(r.tenant, 0)) /
                                                c.lineBytes);
    ASSERT_LT(key, c.keysPerTenant);
    ++counts[key];
  }

  const ZipfSampler ref(c.keysPerTenant, c.skew);
  for (const auto& [tenant, counts] : keyCounts) {
    std::uint64_t total = 0;
    for (const std::uint64_t n : counts) total += n;
    ASSERT_GT(total, 50'000u) << "tenant " << tenant;
    double chi2 = 0.0;
    for (std::uint32_t key = 0; key < c.keysPerTenant; ++key) {
      // key = (rank + tenant*7919) mod keys  =>  rank = key - offset mod keys.
      const std::uint32_t offset = tenant * 7919u % c.keysPerTenant;
      const std::uint32_t rank = (key + c.keysPerTenant - offset) % c.keysPerTenant;
      const double expect = ref.pmf(rank) * static_cast<double>(total);
      ASSERT_GT(expect, 5.0);  // chi-squared validity
      const double diff = static_cast<double>(counts[key]) - expect;
      chi2 += diff * diff / expect;
    }
    // df = 49; the p=0.001 critical value is ~85. A broken ladder or a wrong
    // exponent lands in the thousands.
    EXPECT_LT(chi2, 90.0) << "tenant " << tenant;
  }
}

TEST(TrafficModel, TenantLoadFollowsTenantSkew) {
  TrafficConfig c = plainConfig(200'000);
  c.tenants = 8;
  c.tenantSkew = 0.8;
  TrafficModel m(c);
  std::vector<std::uint64_t> perTenant(c.tenants, 0);
  TrafficRef r;
  while (m.nextRef(r)) ++perTenant[r.tenant];

  const ZipfSampler ref(c.tenants, c.tenantSkew);
  double chi2 = 0.0;
  for (std::uint32_t t = 0; t < c.tenants; ++t) {
    const double expect = ref.pmf(t) * static_cast<double>(c.refs);
    const double diff = static_cast<double>(perTenant[t]) - expect;
    chi2 += diff * diff / expect;
  }
  EXPECT_LT(chi2, 30.0);  // df = 7, p=0.001 critical ~24.3 with headroom
  // And the ordering is the Zipf ladder: tenant 0 is the hottest.
  EXPECT_EQ(std::max_element(perTenant.begin(), perTenant.end()) - perTenant.begin(), 0);
}

TEST(TrafficModel, BurstWindowsRaiseArrivalRateAndInterarrivalCV) {
  TrafficConfig flat = plainConfig(200'000);
  TrafficConfig bursty = flat;
  bursty.burstMultiplier = 8.0;

  const auto gapStats = [](const TrafficConfig& c) {
    TrafficModel m(c);
    TrafficRef r;
    std::uint64_t last = 0;
    double burstGapSum = 0.0, steadyGapSum = 0.0;
    std::uint64_t burstGaps = 0, steadyGaps = 0;
    double sum = 0.0, sq = 0.0;
    std::uint64_t n = 0;
    while (m.nextRef(r)) {
      if (r.arrivalCycle == last) continue;  // paired refs share an arrival
      const auto gap = static_cast<double>(r.arrivalCycle - last);
      last = r.arrivalCycle;
      (r.burst ? burstGapSum : steadyGapSum) += gap;
      ++(r.burst ? burstGaps : steadyGaps);
      sum += gap;
      sq += gap * gap;
      ++n;
    }
    const double mean = sum / static_cast<double>(n);
    const double var = sq / static_cast<double>(n) - mean * mean;
    struct Out {
      double burstMean, steadyMean, cv;
    };
    return Out{burstGapSum / static_cast<double>(burstGaps),
               steadyGapSum / static_cast<double>(steadyGaps), std::sqrt(var) / mean};
  };

  const auto f = gapStats(flat);
  const auto b = gapStats(bursty);
  // Flat: both phases draw from the same exponential.
  EXPECT_NEAR(f.burstMean / f.steadyMean, 1.0, 0.1);
  // Bursty: arrivals inside burst windows are ~8x denser.
  EXPECT_LT(b.burstMean, f.burstMean / 4.0);
  EXPECT_NEAR(b.steadyMean, f.steadyMean, f.steadyMean * 0.1);
  // The on/off rate mixture is visibly burstier than a plain Poisson stream.
  EXPECT_GT(b.cv, f.cv + 0.15);
}

TEST(TrafficModel, PhaseElapsedCyclesPartitionTheClock) {
  TrafficConfig c = TrafficConfig::oltp(50'000);
  c.burstMultiplier = 6.0;
  TrafficModel m(c);
  TrafficRef r;
  std::uint64_t lastArrival = 0;
  while (m.nextRef(r)) lastArrival = r.arrivalCycle;
  EXPECT_GT(m.burstCyclesElapsed(), 0u);
  EXPECT_GT(m.steadyCyclesElapsed(), 0u);
  // Every arrival-clock cycle lands in exactly one phase bucket.
  EXPECT_EQ(m.burstCyclesElapsed() + m.steadyCyclesElapsed(), lastArrival);
}

TEST(TrafficModel, HotKeysMigrateAcrossEpochs) {
  TrafficConfig c = plainConfig(200'000);
  c.tenants = 2;
  c.keysPerTenant = 1'000;
  c.skew = 1.1;
  c.migrationPeriodRefs = 100'000;  // exactly two epochs in the run
  TrafficModel m(c);

  std::map<Addr, std::uint64_t> epoch0, epoch1;
  TrafficRef r;
  while (m.nextRef(r)) {
    (m.emitted() <= 100'000 ? epoch0 : epoch1)[r.rec.addr]++;
  }
  const auto hottest = [](const std::map<Addr, std::uint64_t>& counts) {
    Addr best = 0;
    std::uint64_t n = 0;
    for (const auto& [a, cnt] : counts) {
      if (cnt > n) best = a, n = cnt;
    }
    return best;
  };
  // The rank ladder rotated between epochs: yesterday's hottest block is not
  // today's.
  EXPECT_NE(hottest(epoch0), hottest(epoch1));
}

TEST(TrafficModel, SharedSegmentHandsOwnershipBetweenNodes) {
  TrafficConfig c = TrafficConfig::oltp(50'000);
  TrafficModel m(c);
  const Addr sharedBase = m.sharedAddr(0);
  const Addr sharedEnd = m.sharedAddr(c.sharedBlocks);
  std::map<Addr, NodeId> lastWriter;
  std::uint64_t handoffs = 0;
  TrafficRef r;
  while (m.nextRef(r)) {
    if (r.rec.addr < sharedBase || r.rec.addr >= sharedEnd || !r.rec.write) continue;
    const auto it = lastWriter.find(r.rec.addr);
    if (it != lastWriter.end() && it->second != r.rec.pid) ++handoffs;
    lastWriter[r.rec.addr] = r.rec.pid;
  }
  // Migratory pairs keep dirty ownership moving — that is the c2c traffic
  // switch directories exist for.
  EXPECT_GT(handoffs, 100u);
}

TEST(TrafficModel, HotspotProfileConcentratesOnTheHotPage) {
  TrafficConfig c = TrafficConfig::hotspot(20'000);
  TrafficModel m(c);
  const Addr pageMask = ~static_cast<Addr>(c.pageBytes - 1);
  const Addr hotPage = m.hotAddr(0) & pageMask;
  std::uint64_t total = 0, hotRefs = 0, hotWrites = 0;
  TraceRecord r;
  while (m.next(r)) {
    ++total;
    if ((r.addr & pageMask) != hotPage) continue;
    ++hotRefs;
    if (r.write) ++hotWrites;
  }
  EXPECT_EQ(total, 20'000u);
  // hotFrac = 0.5 of *steps* land on the hot page; other step kinds emit
  // one-to-two refs too, so the ref share is near but not exactly half.
  const double frac = static_cast<double>(hotRefs) / static_cast<double>(total);
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.75);
  // Every hot step is a migratory read+update pair on one block (the refs
  // budget may truncate the final pair after its read).
  EXPECT_LE(hotRefs - hotWrites * 2, 1u);
}

TEST(TrafficModel, IncastBatchesFireSynchronizedRotatingFanIn) {
  TrafficConfig c = TrafficConfig::incast(4'000);
  TrafficModel m(c);
  const Addr pageMask = ~static_cast<Addr>(c.pageBytes - 1);
  std::vector<Addr> victimPages;
  victimPages.reserve(c.numProcs);
  for (std::uint32_t v = 0; v < c.numProcs; ++v) {
    victimPages.push_back(m.victimAddr(v, 0) & pageMask);
  }
  // Batch k fires at arrival deadline (k+1) * period, entirely at victim
  // k % numProcs, as reads.
  std::map<std::uint64_t, std::vector<TrafficRef>> byArrival;
  TrafficRef ref;
  while (m.nextRef(ref)) {
    const Addr page = ref.rec.addr & pageMask;
    if (std::find(victimPages.begin(), victimPages.end(), page) == victimPages.end()) continue;
    byArrival[ref.arrivalCycle].push_back(ref);
  }
  ASSERT_GE(byArrival.size(), 3u);
  std::uint64_t k = 0;
  for (const auto& [arrival, batch] : byArrival) {
    EXPECT_EQ(arrival, (k + 1) * c.incastPeriodCycles);
    EXPECT_EQ(batch.size(), c.incastBatchRefs);
    const Addr wantPage = victimPages[k % c.numProcs];
    for (const TrafficRef& b : batch) {
      EXPECT_EQ(b.rec.addr & pageMask, wantPage);
      EXPECT_FALSE(b.rec.write);
    }
    ++k;
  }
}

TEST(TrafficModel, OfferedLoadScalesTheArrivalClock) {
  TrafficConfig base = TrafficConfig::hotspot(10'000);
  TrafficModel nominal(base);
  TrafficConfig scaled = base;
  scaled.offeredLoad = 4.0;
  TrafficModel hot(scaled);
  TraceRecord r;
  while (nominal.next(r)) {
  }
  while (hot.next(r)) {
  }
  const auto elapsed = [](const TrafficModel& m) {
    return m.burstCyclesElapsed() + m.steadyCyclesElapsed();
  };
  ASSERT_GT(elapsed(hot), 0u);
  // 4x the arrival rate compresses the same reference count into about a
  // quarter of the clock (integer gap rounding keeps it from being exact).
  const double ratio =
      static_cast<double>(elapsed(nominal)) / static_cast<double>(elapsed(hot));
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

// ------------------------------------------------------------- validation --

TEST(TrafficConfig, ValidationCollectsAllErrors) {
  TrafficConfig c;
  c.refs = 0;
  c.tenants = 0;
  c.writeFrac = 1.5;
  c.burstMultiplier = 0.0;
  const std::vector<std::string> errs = c.validationErrors();
  EXPECT_GE(errs.size(), 4u);
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(TrafficConfig, ProfileRegistry) {
  EXPECT_TRUE(isTrafficWorkload("oltp"));
  EXPECT_TRUE(isTrafficWorkload("kv"));
  EXPECT_FALSE(isTrafficWorkload("tpcc"));
  EXPECT_EQ(TrafficConfig::byName("kv", 10).tenants, 8u);
  EXPECT_THROW(TrafficConfig::byName("redis", 10), std::invalid_argument);
  TrafficConfig c = TrafficConfig::oltp(10);
  c.applyMix("writeheavy");
  EXPECT_DOUBLE_EQ(c.writeFrac, 0.4);
  EXPECT_THROW(c.applyMix("mixed"), std::invalid_argument);
}

TEST(TrafficConfig, PinnedPidMustBeInRange) {
  TrafficConfig c = TrafficConfig::oltp(10);
  c.pinnedPid = 16;  // == numProcs
  EXPECT_FALSE(c.validationErrors().empty());
}

// ------------------------------------------------------- harness plumbing --

harness::SweepSpec trafficSpec() {
  std::istringstream in(
      "name = tt\n"
      "workloads = oltp, kv\n"
      "entries = 0, 512\n"
      "trace_refs = 8000\n"
      "tenants = 2\n"
      "burst = 6\n"
      "mix = readmostly, writeheavy\n");
  return harness::SweepSpec::parse(in, "traffic.spec");
}

TEST(TrafficSweep, ExpandsWithTagsAndKind) {
  const harness::SweepSpec s = trafficSpec();
  EXPECT_TRUE(s.hasTrafficAxes());
  const std::vector<harness::JobSpec> jobs = s.expand();
  ASSERT_EQ(jobs.size(), 8u);  // 2 workloads x 2 entries x 2 mixes
  for (const auto& j : jobs) {
    EXPECT_EQ(j.kind, harness::JobKind::Traffic);
    EXPECT_EQ(j.trafficTenants, 2u);
    EXPECT_DOUBLE_EQ(j.trafficBurst, 6.0);
  }
  EXPECT_EQ(jobs[0].configTag(), "base-t2-b6");
  EXPECT_EQ(jobs[1].configTag(), "base-t2-b6-wh");
  EXPECT_EQ(jobs[2].configTag(), "sd-512-t2-b6");
  EXPECT_EQ(jobs[0].displayApp(), "OLTP");
  EXPECT_EQ(jobs[4].displayApp(), "KV");
}

TEST(TrafficSweep, TrafficAxesRejectNonTrafficWorkloads) {
  std::istringstream in(
      "name = bad\n"
      "workloads = fft, oltp\n"
      "tenants = 2\n");
  EXPECT_THROW((void)harness::SweepSpec::parse(in, "bad.spec"), std::runtime_error);
}

TEST(TrafficSweep, InvalidAxisCellRejectedAtParseTime) {
  std::istringstream in(
      "name = bad\n"
      "workloads = oltp\n"
      "mix = sideways\n");
  EXPECT_THROW((void)harness::SweepSpec::parse(in, "bad.spec"), std::runtime_error);
}

std::string runTrafficSweepJson(unsigned threads) {
  harness::SweepSpec s = trafficSpec();
  harness::RunContext ctx;
  ctx.recorder.setBench("traffic_test");
  (void)harness::runJobs(ctx, s.expand(), threads);
  harness::SweepJsonOptions jo;
  jo.specName = s.name;
  jo.jobs = threads;
  jo.deterministic = true;
  return harness::sweepToJson(ctx.recorder, harness::aggregate(ctx.recorder.runs()), jo);
}

TEST(TrafficSweep, SerialAndParallelRunsAreByteIdentical) {
  const std::string serial = runTrafficSweepJson(1);
  const std::string parallel = runTrafficSweepJson(4);
  EXPECT_EQ(serial, parallel);

  const JsonValue v = JsonValue::parse(serial);
  EXPECT_EQ(v.at("schema").asString(), harness::kSweepSchemaTraffic);
  const auto& runs = v.at("runs").asArray();
  ASSERT_EQ(runs.size(), 8u);
  for (const JsonValue& run : runs) {
    const JsonValue& t = run.at("traffic");
    EXPECT_EQ(t.at("tenants").asNumber(), 2.0);
    EXPECT_FALSE(t.at("p99_overflowed").asBool());
    EXPECT_FALSE(t.at("p999_overflowed").asBool());
    EXPECT_GT(t.at("p99_read_latency").asNumber(), 0.0);
    EXPECT_GE(t.at("p999_read_latency").asNumber(), t.at("p99_read_latency").asNumber());
    // burst=6 must overdrive the controllers relative to the steady phase.
    EXPECT_GT(t.at("burst_occupancy").asNumber(), t.at("steady_occupancy").asNumber());
    ASSERT_EQ(t.at("per_tenant").asArray().size(), 2u);
    std::uint64_t reads = 0;
    for (const JsonValue& row : t.at("per_tenant").asArray()) {
      reads += static_cast<std::uint64_t>(row.at("reads").asNumber());
      EXPECT_GT(row.at("mean_read_latency").asNumber(), 0.0);
    }
    EXPECT_GT(reads, 0u);
  }
}

TEST(TrafficSweep, SeedReplicasPerturbTheStream) {
  harness::SweepSpec s = trafficSpec();
  s.seeds = 2;
  harness::RunContext ctx;
  const std::vector<harness::JobResult> results =
      harness::runJobs(ctx, s.expand(), 2);
  ASSERT_EQ(results.size(), 16u);
  // Replicas of one cell land adjacent in expansion order (seed innermost).
  const auto& r1 = results[0];
  const auto& r2 = results[1];
  ASSERT_EQ(r1.job.configKey(), r2.job.configKey());
  EXPECT_NE(r1.job.seed, r2.job.seed);
  EXPECT_NE(r1.record.metrics, r2.record.metrics);  // different stream
}

TEST(TrafficJobStore, RoundTripsTrafficBlock) {
  harness::SweepSpec s = trafficSpec();
  const std::vector<harness::JobSpec> jobs = s.expand();
  harness::RunContext ctx;
  const harness::JobResult res = harness::runJobs(ctx, {jobs[0]}, 1)[0];
  ASSERT_TRUE(res.ok);
  ASSERT_TRUE(res.record.hasTraffic);

  harness::StoredJob stored;
  stored.key = harness::jobKeyOf(res.job);
  stored.ok = true;
  stored.wallSeconds = res.wallSeconds;
  stored.record = res.record;
  const std::string line = harness::JobStore::serializeLine(stored);
  EXPECT_NE(stored.key.find("traffic|OLTP|"), std::string::npos);

  const harness::StoredJob back = harness::JobStore::parseLine(line);
  EXPECT_TRUE(back.record.hasTraffic);
  EXPECT_EQ(back.record.trafficTenantCount, res.record.trafficTenantCount);
  EXPECT_DOUBLE_EQ(back.record.trafficP99Read, res.record.trafficP99Read);
  EXPECT_EQ(back.record.trafficP99Overflowed, res.record.trafficP99Overflowed);
  EXPECT_DOUBLE_EQ(back.record.trafficBurstOccupancy, res.record.trafficBurstOccupancy);
  EXPECT_EQ(back.record.trafficBurstCycles, res.record.trafficBurstCycles);
  ASSERT_EQ(back.record.trafficPerTenant.size(), res.record.trafficPerTenant.size());
  EXPECT_EQ(back.record.trafficPerTenant[0].reads, res.record.trafficPerTenant[0].reads);
  EXPECT_DOUBLE_EQ(back.record.trafficPerTenant[0].meanReadLatency,
                   res.record.trafficPerTenant[0].meanReadLatency);
  // Byte-stable re-serialization (resume determinism relies on it).
  EXPECT_EQ(harness::JobStore::serializeLine(back), line);
}

// ------------------------------------------------------- traffic stats ----

TEST(TrafficStats, MergesShardsAndSplitsPhases) {
  TrafficStats a(2), b(2);
  TrafficRef r;
  r.tenant = 0;
  r.burst = false;
  a.record(r, 100);
  r.tenant = 1;
  r.burst = true;
  b.record(r, 300);
  r.rec.write = true;
  b.record(r, 1);
  a.merge(b);
  EXPECT_EQ(a.reads(), 2u);
  EXPECT_EQ(a.writes(), 1u);
  EXPECT_EQ(a.tenants()[0].reads, 1u);
  EXPECT_EQ(a.tenants()[1].reads, 1u);
  EXPECT_EQ(a.tenants()[1].writes, 1u);
  EXPECT_DOUBLE_EQ(a.tenants()[1].readLatency.max(), 300.0);
  // Occupancy: only read service time counts, split by arrival phase.
  EXPECT_DOUBLE_EQ(a.burstOccupancy(300, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.steadyOccupancy(200, 1), 0.5);
  EXPECT_DOUBLE_EQ(a.burstOccupancy(0, 1), 0.0);  // no elapsed time, no signal
}

// -------------------------------------------------- event-driven workload --

class TrafficWorkloadRun : public ::testing::TestWithParam<std::string> {};

TEST_P(TrafficWorkloadRun, RunsOnTheEventDrivenSystem) {
  SystemConfig cfg;
  cfg.switchDir.entries = 1024;
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = GetParam(), .scale = WorkloadScale::tiny()});
  EXPECT_GT(m.execTime, 0u);
  EXPECT_GT(m.reads, 0u);
  EXPECT_GT(m.sdDeposits, 0u);  // shared-segment handoffs feed the switch dirs
  EXPECT_TRUE(sim.system().quiescent());
}

INSTANTIATE_TEST_SUITE_P(Profiles, TrafficWorkloadRun, ::testing::Values("oltp", "kv"));

TEST(TrafficWorkloadRun, EventDrivenRunsAreDeterministic) {
  const auto run = [] {
    SystemConfig cfg;
    cfg.switchDir.entries = 512;
    Simulation sim(cfg);
    return sim.run({.workload = "oltp", .scale = WorkloadScale::tiny()});
  };
  const RunMetrics a = run();
  const RunMetrics b = run();
  EXPECT_EQ(a.execTime, b.execTime);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.readMisses, b.readMisses);
}

}  // namespace
}  // namespace dresar
