#include "sim/json_reader.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/json_writer.h"

namespace dresar {
namespace {

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").isNull());
  EXPECT_TRUE(JsonValue::parse("true").asBool());
  EXPECT_FALSE(JsonValue::parse("false").asBool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").asNumber(), -350.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(JsonReader, ParsesStringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d\n\t")").asString(), "a\"b\\c/d\n\t");
  // A = 'A'; two-byte and three-byte UTF-8 encodings.
  EXPECT_EQ(JsonValue::parse(R"("A")").asString(), "A");
  EXPECT_EQ(JsonValue::parse(R"("é")").asString(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse(R"("€")").asString(), "\xe2\x82\xac");
}

TEST(JsonReader, ParsesNestedStructure) {
  const JsonValue v = JsonValue::parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(v.isObject());
  const auto& a = v.at("a").asArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].asNumber(), 2.0);
  EXPECT_TRUE(a[2].at("b").asBool());
  EXPECT_TRUE(v.at("c").at("d").isNull());
}

TEST(JsonReader, ObjectOrderPreservedAndFind) {
  const JsonValue v = JsonValue::parse(R"({"z": 1, "a": 2})");
  EXPECT_EQ(v.asObject()[0].first, "z");
  EXPECT_EQ(v.asObject()[1].first, "a");
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
}

TEST(JsonReader, KindMismatchThrows) {
  const JsonValue v = JsonValue::parse("[1]");
  EXPECT_THROW((void)v.asObject(), std::runtime_error);
  EXPECT_THROW((void)v.asNumber(), std::runtime_error);
  EXPECT_THROW((void)v.asString(), std::runtime_error);
  EXPECT_THROW((void)v.asBool(), std::runtime_error);
  EXPECT_EQ(v.find("x"), nullptr);  // non-object find is a safe nullptr
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("nul"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("1 2"), std::runtime_error);  // trailing garbage
  EXPECT_THROW((void)JsonValue::parse(R"("\q")"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"("\u12g4")"), std::runtime_error);
}

TEST(JsonReader, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)JsonValue::parse(deep), std::runtime_error);
}

TEST(JsonReader, ErrorsCarryByteOffset) {
  try {
    (void)JsonValue::parse("[1, x]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonReader, RoundTripsWriterOutput) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.field("name", "bench \"quoted\" \\ path");
  w.field("count", std::uint64_t{123456789});
  w.field("ratio", 0.125);
  w.key("values");
  w.beginArray();
  for (int i = 0; i < 3; ++i) w.value(static_cast<double>(i) * 1.5);
  w.endArray();
  w.endObject();

  const JsonValue v = JsonValue::parse(os.str());
  EXPECT_EQ(v.at("name").asString(), "bench \"quoted\" \\ path");
  EXPECT_DOUBLE_EQ(v.at("count").asNumber(), 123456789.0);
  EXPECT_DOUBLE_EQ(v.at("ratio").asNumber(), 0.125);
  EXPECT_DOUBLE_EQ(v.at("values").asArray()[2].asNumber(), 3.0);
}

TEST(JsonReader, ParseFileMissingThrows) {
  EXPECT_THROW((void)JsonValue::parseFile("/nonexistent/dresar.json"), std::runtime_error);
}

}  // namespace
}  // namespace dresar
