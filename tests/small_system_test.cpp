// Geometry generality: the library is not hard-wired to the 16-node
// reference machine. A 4-node system over 4x4 switches (one cluster per
// switch, 2 switches per stage) must behave identically in kind.
#include <gtest/gtest.h>

#include "cpu/sync.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

namespace dresar {
namespace {

SystemConfig smallConfig(std::uint32_t sdEntries) {
  SystemConfig cfg;
  cfg.numNodes = 4;
  cfg.net.switchRadix = 4;
  cfg.switchDir.entries = sdEntries;
  return cfg;
}

SimTask pingPong(System& sys, ThreadContext& ctx, Addr a, int rounds, HwBarrier& barrier) {
  for (int r = 0; r < rounds; ++r) {
    if (ctx.id() == static_cast<NodeId>(r % sys.config().numNodes)) {
      co_await ctx.store(a);
      co_await ctx.fence();
    }
    co_await barrier.arrive(ctx);
    co_await ctx.load(a);
    co_await barrier.arrive(ctx);
  }
}

TEST(SmallSystem, FourNodeProtocolWorks) {
  System sys(smallConfig(256));
  HwBarrier barrier(sys.sched(), 4, 16);
  const Addr a = sys.mem().alloc(32);
  for (NodeId n = 0; n < 4; ++n) {
    sys.spawn(pingPong(sys, sys.ctx(n), a, 12, barrier));
  }
  sys.run();
  EXPECT_TRUE(sys.quiescent());
  EXPECT_EQ(sys.dresar().transientEntries(), 0u);
  // Dirty reads happened and some were served by switch directories.
  EXPECT_GT(sys.stats().counterValue("svc.CtoCSwitchDir") +
                sys.stats().counterValue("svc.CtoCHome"),
            0u);
}

TEST(SmallSystem, WorkloadsRunAtFourNodes) {
  for (const std::uint32_t sd : {0u, 256u}) {
    Simulation sim(smallConfig(sd));
    const RunMetrics m = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
    EXPECT_GT(m.reads, 0u);
  }
}

TEST(SmallSystem, EightNodeGeometry) {
  SystemConfig cfg;
  cfg.numNodes = 8;
  cfg.net.switchRadix = 8;
  cfg.switchDir.entries = 512;
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = "tc", .scale = WorkloadScale::tiny()});
  EXPECT_GT(m.reads, 0u);
  EXPECT_TRUE(sim.system().quiescent());
}

TEST(SmallSystem, RejectsImpossibleGeometry) {
  SystemConfig cfg;
  cfg.numNodes = 256;       // beyond the 128-node NodeMask cap
  cfg.net.switchRadix = 8;
  EXPECT_THROW(System{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace dresar
