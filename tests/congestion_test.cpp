// Congestion-lab tests: the flit network's saturation telemetry (credit
// stalls, stage occupancy, wormhole-lock hold times), the fault link-stall
// interaction with credit backpressure (a stalled switch starves its
// upstream stage, then the tree drains to quiescence), and the hotspot /
// incast profiles' offered-vs-accepted load annotation at system level.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/scheduler.h"
#include "common/stats.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "interconnect/flit_network.h"
#include "interconnect/network.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {
namespace {

Message wb(NodeId src, NodeId dstMem, Addr a) {
  Message m;
  m.type = MsgType::WriteBack;  // carries data: 5 flits at default geometry
  m.src = procEp(src);
  m.dst = memEp(dstMem);
  m.addr = a;
  m.requester = src;
  return m;
}

TEST(FlitCongestion, FanInPopulatesSaturationTelemetry) {
  SimKernel kernel{1};
  NetworkConfig cfg;
  cfg.bufferFlits = 1;  // most aggressive backpressure
  FnSink sink;
  FlitNetwork net(cfg, 16, 32, kernel, NetworkHooks{&sink, nullptr, nullptr, nullptr});
  int delivered = 0;
  sink.on(memEp(0), [&](const Message&) { ++delivered; });
  for (NodeId p = 0; p < 16; ++p) net.send(wb(p, 0, 0x100 + 0x40ull * p));
  kernel.run();
  EXPECT_EQ(delivered, 16);
  EXPECT_EQ(net.inFlight(), 0u);

  const CongestionTelemetry* ct = net.congestion();
  ASSERT_NE(ct, nullptr);
  // 16 five-flit messages funneling into one memory port with one-flit
  // buffers must stall on credits and busy links somewhere.
  EXPECT_GT(ct->creditStallCycles + ct->sourceCreditStalls, 0u);
  EXPECT_GT(ct->linkBusySkips, 0u);
  // Per-switch attribution sums to the machine-wide count.
  ASSERT_EQ(ct->perSwitchCreditStalls.size(), net.topology().totalSwitches());
  const std::uint64_t perSwitchSum = std::accumulate(
      ct->perSwitchCreditStalls.begin(), ct->perSwitchCreditStalls.end(), std::uint64_t{0});
  EXPECT_EQ(perSwitchSum, ct->creditStallCycles);
  // Every stage sampled occupancy while the network was live, and the log2
  // histograms mirror the samplers sample for sample.
  ASSERT_EQ(ct->stageOccupancy.size(), net.topology().numStages());
  ASSERT_EQ(ct->stageOccupancyHist.size(), net.topology().numStages());
  for (std::size_t s = 0; s < ct->stageOccupancy.size(); ++s) {
    EXPECT_GT(ct->stageOccupancy[s].count(), 0u);
    EXPECT_EQ(ct->stageOccupancyHist[s].total(), ct->stageOccupancy[s].count());
    EXPECT_TRUE(ct->stageOccupancyHist[s].isLogSpaced());
  }
}

TEST(FlitCongestion, LockHoldTracksWormholeChains) {
  SimKernel kernel{1};
  NetworkConfig cfg;
  FnSink sink;
  FlitNetwork net(cfg, 16, 32, kernel, NetworkHooks{&sink, nullptr, nullptr, nullptr});
  sink.on(memEp(9), [](const Message&) {});
  net.send(wb(5, 9, 0x100));
  kernel.run();
  const CongestionTelemetry* ct = net.congestion();
  ASSERT_NE(ct, nullptr);
  // A data message streams 5 flits through each switch under one wormhole
  // lock; the hold must span the serialization of the chain.
  ASSERT_GT(ct->lockHold.count(), 0u);
  EXPECT_GE(ct->lockHold.max(), static_cast<double>(cfg.linkCyclesPerFlit));
  EXPECT_EQ(ct->lockHoldHist.total(), ct->lockHold.count());
  EXPECT_TRUE(ct->lockHoldHist.isLogSpaced());
}

TEST(FlitCongestion, MessageLevelNetworkExposesNoTelemetry) {
  // The message-level model's unbounded queues have no credit state to
  // observe; congestion() must stay null so schema emission is flit-gated.
  SimKernel kernel{1};
  NetworkConfig cfg;
  FnSink sink;
  Network net(cfg, 16, 32, kernel, NetworkHooks{&sink, nullptr, nullptr, nullptr});
  EXPECT_EQ(net.congestion(), nullptr);
}

TEST(FlitCongestion, LinkStallTreeFormsUpstreamAndDrains) {
  // Freeze the top-stage switch over memories 0..3 for a long window while
  // every processor writes back to memory 0. Credit backpressure must
  // propagate the starvation into stage 0 (the stall tree), the frozen
  // switch itself attempts no grants, and once the window passes the whole
  // tree drains to quiescence with nothing stranded.
  SimKernel kernel{1};
  NetworkConfig cfg;
  cfg.bufferFlits = 2;
  FaultPlan plan;
  plan.linkStall = LinkStallSpec{/*stage=*/1, /*index=*/0, /*startCycle=*/0,
                                 /*lengthCycles=*/400};
  FaultInjector inj(plan, kernel.registry(0));
  FnSink sink;
  FlitNetwork net(cfg, 16, 32, kernel, NetworkHooks{&sink, nullptr, nullptr, &inj});
  int delivered = 0;
  Cycle lastDelivery = 0;
  sink.on(memEp(0), [&](const Message&) {
    ++delivered;
    lastDelivery = kernel.now();
  });
  for (NodeId p = 0; p < 16; ++p) net.send(wb(p, 0, 0x100 + 0x40ull * p));
  kernel.run();

  // The tree drains: everything delivered, no live flits, stalls balanced
  // (link stalls perturb timing only, so nothing needs recovery).
  EXPECT_EQ(delivered, 16);
  EXPECT_EQ(net.inFlight(), 0u);
  EXPECT_NO_THROW(inj.requireBalanced());
  // Delivery cannot complete inside the frozen window.
  EXPECT_GT(lastDelivery, Cycle{400});
  EXPECT_GT(kernel.registry(0).counterValue("fault.injected_stall_cycles"), 0u);

  const CongestionTelemetry* ct = net.congestion();
  ASSERT_NE(ct, nullptr);
  const Butterfly& topo = net.topology();
  // Stage-0 switches choke on exhausted credits toward the frozen switch.
  std::uint64_t stage0Stalls = 0;
  for (std::uint32_t i = 0; i < topo.switchesPerStage(); ++i) {
    stage0Stalls += ct->perSwitchCreditStalls[topo.flat(SwitchId{0, i})];
  }
  EXPECT_GT(stage0Stalls, 0u);
  // The frozen switch skips its grant pass entirely during the window and
  // feeds only credit-less memory ports afterwards: no stalls charged to it.
  EXPECT_EQ(ct->perSwitchCreditStalls[topo.flat(SwitchId{1, 0})], 0u);
  // Its input buffers visibly filled while frozen.
  ASSERT_EQ(ct->stageOccupancy.size(), 2u);
  EXPECT_GT(ct->stageOccupancy[1].max(), 0.0);
}

TEST(SystemCongestion, HotspotAndIncastAnnotateOfferedAndAcceptedLoad) {
  for (const char* profile : {"hotspot", "incast"}) {
    SystemConfig cfg;
    System sys(cfg);
    WorkloadScale s = WorkloadScale::tiny();
    s.trafficRefsPerNode = 400;
    auto w = makeWorkload(profile, s);
    const RunMetrics m = runWorkload(sys, *w);
    EXPECT_TRUE(m.congestionEnabled) << profile;
    EXPECT_EQ(m.congRuns, 1u) << profile;
    EXPECT_GT(m.congOfferedRate, 0.0) << profile;
    EXPECT_GT(m.congAcceptedRate, 0.0) << profile;
  }
}

TEST(SystemCongestion, NonCongestionWorkloadsStayCongestionFree) {
  // sor (scientific) and oltp (v5 traffic) must not grow a congestion block
  // on the message-level network — their output is byte-identity-gated.
  for (const char* name : {"sor", "oltp"}) {
    SystemConfig cfg;
    System sys(cfg);
    WorkloadScale s = WorkloadScale::tiny();
    s.trafficRefsPerNode = 400;
    auto w = makeWorkload(name, s);
    const RunMetrics m = runWorkload(sys, *w);
    EXPECT_FALSE(m.congestionEnabled) << name;
    EXPECT_EQ(m.congOfferedRate, 0.0) << name;
    EXPECT_EQ(m.congRuns, 0u) << name;
  }
}

RunMetrics runFlitHotspot(const std::string& routing, double offeredLoad) {
  SystemConfig cfg;
  cfg.net.flitLevel = true;
  cfg.net.routing = routing;
  System sys(cfg);
  WorkloadScale s = WorkloadScale::tiny();
  s.trafficRefsPerNode = 250;
  s.offeredLoad = offeredLoad;
  auto w = makeWorkload("hotspot", s);
  return runWorkload(sys, *w);
}

TEST(SystemCongestion, FlitHotspotPopulatesTelemetryDeterministically) {
  const RunMetrics a = runFlitHotspot("lca", 1.0);
  const RunMetrics b = runFlitHotspot("lca", 1.0);
  EXPECT_TRUE(a.congestionEnabled);
  EXPECT_GT(a.congOfferedRate, 0.0);
  EXPECT_GT(a.congAcceptedRate, 0.0);
  ASSERT_FALSE(a.congestion.stageOccupancy.empty());
  EXPECT_GT(a.congestion.stageOccupancy[0].count(), 0u);
  // Bit-reproducible: same config, same seed path, same telemetry.
  EXPECT_EQ(a.execTime, b.execTime);
  EXPECT_EQ(a.congestion.creditStallCycles, b.congestion.creditStallCycles);
  EXPECT_EQ(a.congestion.sourceCreditStalls, b.congestion.sourceCreditStalls);
  EXPECT_EQ(a.congAcceptedRate, b.congAcceptedRate);
}

TEST(SystemCongestion, AdaptiveRoutingRunsHotspotToCompletion) {
  const RunMetrics lca = runFlitHotspot("lca", 1.0);
  const RunMetrics ada = runFlitHotspot("adaptive", 1.0);
  // Routing changes timing, never the reference stream or the protocol's
  // ability to finish.
  EXPECT_TRUE(ada.congestionEnabled);
  EXPECT_EQ(ada.reads, lca.reads);
  EXPECT_GT(ada.congAcceptedRate, 0.0);
}

TEST(SystemCongestion, AcceptedRateFallsBehindOfferedUnderPressure) {
  // Cranking the offered-load axis must raise what the streams ask for
  // faster than what the machine completes: the saturation-curve shape.
  SystemConfig cfg;
  double ratioLow = 0.0, ratioHigh = 0.0;
  for (const double ol : {0.5, 4.0}) {
    System sys(cfg);
    WorkloadScale s = WorkloadScale::tiny();
    s.trafficRefsPerNode = 600;
    s.offeredLoad = ol;
    auto w = makeWorkload("hotspot", s);
    const RunMetrics m = runWorkload(sys, *w);
    ASSERT_GT(m.congOfferedRate, 0.0);
    (ol < 1.0 ? ratioLow : ratioHigh) = m.congAcceptedRate / m.congOfferedRate;
  }
  // Higher pressure, lower fraction of offered work accepted.
  EXPECT_LT(ratioHigh, ratioLow);
  EXPECT_LT(ratioHigh, 1.0);
}

}  // namespace
}  // namespace dresar
