#include "common/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dresar {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.scheduleAt(10, [&] { order.push_back(1); });
  eq.scheduleAt(5, [&] { order.push_back(0); });
  eq.scheduleAt(20, [&] { order.push_back(2); });
  EXPECT_TRUE(eq.run());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, FifoTieBreakAtSameCycle) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eq.scheduleAt(7, [&order, i] { order.push_back(i); });
  }
  eq.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedSchedulingAdvancesTime) {
  EventQueue eq;
  Cycle seen = 0;
  eq.scheduleAt(3, [&] {
    eq.scheduleAfter(4, [&] { seen = eq.now(); });
  });
  eq.run();
  EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue eq;
  eq.scheduleAt(10, [&] {
    EXPECT_THROW(eq.scheduleAt(5, [] {}), std::logic_error);
  });
  eq.run();
}

TEST(EventQueue, RunWithLimitStopsEarly) {
  EventQueue eq;
  bool late = false;
  eq.scheduleAt(100, [&] { late = true; });
  EXPECT_FALSE(eq.run(50));
  EXPECT_FALSE(late);
  EXPECT_EQ(eq.pending(), 1u);
  EXPECT_TRUE(eq.run());
  EXPECT_TRUE(late);
}

TEST(EventQueue, RunWhilePredicate) {
  EventQueue eq;
  int count = 0;
  for (int i = 1; i <= 10; ++i) eq.scheduleAt(static_cast<Cycle>(i), [&] { ++count; });
  const bool stopped = eq.runWhile([&] { return count < 4; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 4);
}

TEST(EventQueue, ExecutedCounter) {
  EventQueue eq;
  for (int i = 0; i < 5; ++i) eq.scheduleAt(1, [] {});
  eq.run();
  EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue eq;
  bool ran = false;
  eq.scheduleAt(1, [&] { ran = true; });
  eq.clear();
  EXPECT_TRUE(eq.empty());
  eq.run();
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace dresar
