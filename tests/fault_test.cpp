// Fault-injection subsystem: plan parsing/validation, the drop / delay /
// entry-loss / link-stall injectors, and the recovery contract — every
// injected-effective fault is recovered, the run ends quiescent, and the
// protocol invariants hold (Simulation::run enforces all three).
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "sim/simulation.h"

namespace dresar {
namespace {

// ---- FaultPlan parsing / validation ---------------------------------------

TEST(FaultPlan, DefaultIsDisabled) {
  FaultPlan p;
  EXPECT_FALSE(p.enabled());
  p.seed = 42;  // a seed alone enables nothing
  EXPECT_FALSE(p.enabled());
  p.msgDropRate = 0.01;
  EXPECT_TRUE(p.enabled());
}

TEST(FaultPlan, ParseLinkStall) {
  const LinkStallSpec s = FaultPlan::parseLinkStall("1,3,1000,500");
  EXPECT_EQ(s.stage, 1u);
  EXPECT_EQ(s.index, 3u);
  EXPECT_EQ(s.startCycle, 1000u);
  EXPECT_EQ(s.lengthCycles, 500u);
  EXPECT_TRUE(s.active());

  const LinkStallSpec spaced = FaultPlan::parseLinkStall(" 0 , 1 , 2 , 3 ");
  EXPECT_EQ(spaced.stage, 0u);
  EXPECT_EQ(spaced.index, 1u);
  EXPECT_EQ(spaced.startCycle, 2u);
  EXPECT_EQ(spaced.lengthCycles, 3u);
}

TEST(FaultPlan, ParseLinkStallRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parseLinkStall(""), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parseLinkStall("1,2,3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parseLinkStall("1,x,3,4"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parseLinkStall("1,2,3,4,5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parseLinkStall("1,2,3,4x"), std::invalid_argument);
}

TEST(FaultPlan, AppendValidationErrorsCollectsEveryViolation) {
  FaultPlan p;
  p.msgDropRate = 2.0;
  p.msgDelayRate = -1.0;
  p.sdEntryLossRate = 1.5;
  p.requestTimeoutCycles = 0;
  std::vector<std::string> errs;
  p.appendValidationErrors(errs);
  EXPECT_EQ(errs.size(), 4u);
}

// ---- campaigns on a real system -------------------------------------------

SystemConfig smallConfig(std::uint32_t sdEntries) {
  SystemConfig cfg;
  cfg.numNodes = 4;
  cfg.net.switchRadix = 4;
  cfg.switchDir.entries = sdEntries;
  return cfg;
}

TEST(FaultCampaign, DropsAreRecoveredAndRunStaysCoherent) {
  SystemConfig cfg = smallConfig(256);
  cfg.fault.msgDropRate = 0.02;
  cfg.fault.seed = 7;
  Simulation sim(cfg);
  // run() itself enforces requireBalanced() + a clean protocol check.
  const RunMetrics m = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  ASSERT_TRUE(m.faultEnabled);
  EXPECT_GT(m.faultInjectedDrops, 0u) << "a 2% drop rate must actually drop";
  EXPECT_EQ(m.faultRecovered, m.faultInjectedEffective());
  EXPECT_GT(m.faultTimeoutReissues, 0u);
  EXPECT_TRUE(sim.system().quiescent());
  EXPECT_TRUE(sim.check().ok()) << sim.check().summary();
}

TEST(FaultCampaign, DelaysPerturbTimingWithoutRecoveryDebt) {
  SystemConfig cfg = smallConfig(256);
  cfg.fault.msgDelayRate = 0.2;
  cfg.fault.msgDelayCycles = 32;
  cfg.fault.seed = 7;
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  EXPECT_GT(m.faultInjectedDelays, 0u);
  EXPECT_GT(m.faultInjectedDelayCycles, m.faultInjectedDelays);
  EXPECT_EQ(m.faultInjectedEffective(), 0u);  // delays never strand anything
  EXPECT_EQ(m.faultRecovered, 0u);
}

TEST(FaultCampaign, TotalSdEntryLossKillsSwitchServesButNotCoherence) {
  SystemConfig cfg = smallConfig(256);
  cfg.fault.sdEntryLossRate = 1.0;  // every would-be switch serve is lost
  cfg.fault.seed = 7;
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  EXPECT_EQ(m.svcCtoCSwitch, 0u);
  EXPECT_GT(m.faultInjectedSdLosses, 0u);
  EXPECT_EQ(m.faultFallbackHomeLookups, m.faultInjectedSdLosses);
  // Losses fall back to the home; the reads still complete correctly.
  EXPECT_GT(m.svcCtoCHome + m.svcClean, 0u);
}

TEST(FaultCampaign, LinkStallCountsStallCyclesOnMessageNetwork) {
  SystemConfig cfg;  // 16-node default, message-level network
  cfg.switchDir.entries = 512;
  cfg.fault.linkStall = {0, 1, 0, 5000};
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = "fft", .scale = WorkloadScale::tiny()});
  EXPECT_GT(m.faultInjectedStallCycles, 0u);
  EXPECT_GT(m.reads, 0u);
}

TEST(FaultCampaign, LinkStallCountsStallCyclesOnFlitNetwork) {
  SystemConfig cfg;
  cfg.net.flitLevel = true;
  cfg.switchDir.entries = 512;
  cfg.fault.linkStall = {0, 1, 0, 2000};
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = "fft", .scale = WorkloadScale::tiny()});
  EXPECT_GT(m.faultInjectedStallCycles, 0u);
  EXPECT_GT(m.reads, 0u);
}

TEST(FaultCampaign, CombinedCampaignOnFlitNetworkRecovers) {
  SystemConfig cfg = smallConfig(256);
  cfg.net.flitLevel = true;
  cfg.fault.msgDropRate = 0.01;
  cfg.fault.msgDelayRate = 0.05;
  cfg.fault.sdEntryLossRate = 0.1;
  cfg.fault.seed = 11;
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = "fft", .scale = WorkloadScale::tiny()});
  EXPECT_EQ(m.faultRecovered, m.faultInjectedEffective());
  EXPECT_TRUE(sim.system().quiescent());
}

TEST(FaultCampaign, BaseSystemWithoutSwitchDirAlsoRecovers) {
  SystemConfig cfg = smallConfig(0);
  cfg.fault.msgDropRate = 0.03;
  cfg.fault.seed = 3;
  Simulation sim(cfg);
  const RunMetrics m = sim.run({.workload = "sor", .scale = WorkloadScale::tiny()});
  EXPECT_GT(m.faultInjectedDrops, 0u);
  EXPECT_EQ(m.faultRecovered, m.faultInjectedEffective());
}

// ---- injector unit behavior -----------------------------------------------

TEST(FaultInjector, EligibilityIsRequestLegOnly) {
  Message m;
  m.type = MsgType::ReadRequest;
  m.dst = memEp(2);
  EXPECT_TRUE(FaultInjector::eligible(m));
  m.type = MsgType::WriteRequest;
  EXPECT_TRUE(FaultInjector::eligible(m));
  m.marked = true;
  EXPECT_FALSE(FaultInjector::eligible(m)) << "marked requests carry switch state";
  m.marked = false;
  m.type = MsgType::ReadReply;
  EXPECT_FALSE(FaultInjector::eligible(m)) << "replies ride FIFO ordering guarantees";
  m.type = MsgType::Invalidation;
  m.dst = procEp(1);
  EXPECT_FALSE(FaultInjector::eligible(m));
  m.type = MsgType::Retry;
  EXPECT_TRUE(FaultInjector::eligible(m)) << "a lost NAK is recovered by the timeout";
}

TEST(FaultInjector, StallWindowArithmetic) {
  FaultPlan p;
  p.linkStall = {0, 0, 100, 50};
  StatRegistry stats;
  FaultInjector inj(p, stats);
  EXPECT_EQ(inj.stallAdjustedStart(99), 99u);    // before the window
  EXPECT_EQ(inj.stallAdjustedStart(100), 150u);  // pushed to the end
  EXPECT_EQ(inj.stallAdjustedStart(149), 150u);
  EXPECT_EQ(inj.stallAdjustedStart(150), 150u);  // window is half-open
  EXPECT_FALSE(inj.stallTickSkipped(99));
  EXPECT_TRUE(inj.stallTickSkipped(100));
  EXPECT_TRUE(inj.stallTickSkipped(149));
  EXPECT_FALSE(inj.stallTickSkipped(150));
}

TEST(FaultInjector, RequireBalancedThrowsOnStrandedWork) {
  FaultPlan p;
  p.msgDropRate = 1.0;  // every eligible message drops
  StatRegistry stats;
  FaultInjector inj(p, stats);
  Message m;
  m.type = MsgType::ReadRequest;
  m.dst = memEp(0);
  m.requester = 1;
  m.addr = 0x40;
  ASSERT_TRUE(inj.shouldDrop(m));
  EXPECT_EQ(inj.injectedEffective(), 1u);
  EXPECT_EQ(inj.outstandingStranded(), 1u);
  EXPECT_THROW(inj.requireBalanced(), std::runtime_error);
  inj.consumeStranded(1, 0x40);
  EXPECT_EQ(inj.recovered(), 1u);
  EXPECT_NO_THROW(inj.requireBalanced());
  // A second consume for the same pair is a no-op, not a double count.
  inj.consumeStranded(1, 0x40);
  EXPECT_EQ(inj.recovered(), 1u);
}

}  // namespace
}  // namespace dresar
