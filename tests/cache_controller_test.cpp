// CacheController unit tests with a scripted home: the directory side is
// replaced by capture-and-reply handlers so each protocol case is exercised
// in isolation.
#include "coherence/cache_controller.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/config.h"
#include "common/scheduler.h"
#include "common/stats.h"
#include "interconnect/network.h"

namespace dresar {
namespace {

class CacheCtrlTest : public ::testing::Test {
 protected:
  CacheCtrlTest()
      : net_(cfg_.net, cfg_.numNodes, cfg_.lineBytes, kernel_,
             NetworkHooks{&sink_, nullptr, nullptr, nullptr}),
        ctrl_(0, cfg_, kernel_.scheduler(0), net_, kernel_.registry(0)) {
    sink_.on(procEp(0), [this](const Message& m) { ctrl_.onMessage(m); });
    for (NodeId n = 1; n < cfg_.numNodes; ++n) {
      sink_.on(procEp(n), [this](const Message& m) { toProcs_.push_back(m); });
    }
    for (NodeId n = 0; n < cfg_.numNodes; ++n) {
      sink_.on(memEp(n), [this](const Message& m) { toHome_.push_back(m); });
    }
  }

  /// Address homed at node 1 (remote for our controller at node 0).
  Addr remoteAddr(std::uint32_t i = 0) const { return cfg_.pageBytes + i * cfg_.lineBytes; }

  void reply(MsgType t, Addr block, bool marked = false, bool viaSwitchDir = false) {
    Message m;
    m.type = t;
    m.src = t == MsgType::CtoCReply ? procEp(5) : memEp(cfg_.homeOf(block));
    m.dst = procEp(0);
    m.addr = block;
    m.requester = 0;
    m.marked = marked;
    m.viaSwitchDir = viaSwitchDir;
    net_.send(m);
  }

  std::optional<Message> lastHomeMsg(MsgType t) {
    for (auto it = toHome_.rbegin(); it != toHome_.rend(); ++it) {
      if (it->type == t) return *it;
    }
    return std::nullopt;
  }

  SystemConfig cfg_;
  SimKernel kernel_{1};
  FnSink sink_;
  Network net_;
  CacheController ctrl_;
  StatRegistry& stats_ = kernel_.registry(0);
  std::vector<Message> toHome_;
  std::vector<Message> toProcs_;
};

TEST_F(CacheCtrlTest, ReadMissSendsReadRequestAndFillsShared) {
  const Addr a = remoteAddr();
  std::optional<ReadResult> result;
  ctrl_.cpuRead(a, [&](const ReadResult& r) { result = r; });
  kernel_.run();
  ASSERT_TRUE(lastHomeMsg(MsgType::ReadRequest).has_value());
  EXPECT_FALSE(result.has_value());  // blocked until the reply
  reply(MsgType::ReadReply, a);
  kernel_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->service, ReadService::CleanMemory);
  EXPECT_GT(result->latency, 0u);
  EXPECT_EQ(ctrl_.l2().peek(a)->state, CacheState::S);
  EXPECT_TRUE(ctrl_.quiescent());
}

TEST_F(CacheCtrlTest, SecondReadIsAHit) {
  const Addr a = remoteAddr();
  ctrl_.cpuRead(a, [](const ReadResult&) {});
  kernel_.run();
  reply(MsgType::ReadReply, a);
  kernel_.run();
  std::optional<ReadResult> r2;
  ctrl_.cpuRead(a, [&](const ReadResult& r) { r2 = r; });
  kernel_.run();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->service, ReadService::L1Hit);
  EXPECT_EQ(r2->latency, cfg_.l1AccessCycles);
}

TEST_F(CacheCtrlTest, CtoCReplyClassifiesByOrigin) {
  const Addr a = remoteAddr();
  std::optional<ReadResult> result;
  ctrl_.cpuRead(a, [&](const ReadResult& r) { result = r; });
  kernel_.run();
  reply(MsgType::CtoCReply, a, /*marked=*/false, /*viaSwitchDir=*/true);
  kernel_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->service, ReadService::CtoCSwitchDir);
}

TEST_F(CacheCtrlTest, MarkedReadReplyIsSwitchWriteBackService) {
  const Addr a = remoteAddr();
  std::optional<ReadResult> result;
  ctrl_.cpuRead(a, [&](const ReadResult& r) { result = r; });
  kernel_.run();
  reply(MsgType::ReadReply, a, /*marked=*/true);
  kernel_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->service, ReadService::SwitchWriteBack);
}

TEST_F(CacheCtrlTest, StoreRetiresImmediatelyOwnershipInBackground) {
  const Addr a = remoteAddr();
  bool retired = false;
  ctrl_.cpuWrite(a, [&] { retired = true; });
  kernel_.run();
  EXPECT_TRUE(retired);  // release consistency: the core never waited
  ASSERT_TRUE(lastHomeMsg(MsgType::WriteRequest).has_value());
  EXPECT_FALSE(ctrl_.quiescent());
  reply(MsgType::WriteReply, a);
  kernel_.run();
  EXPECT_EQ(ctrl_.l2().peek(a)->state, CacheState::M);
  EXPECT_TRUE(ctrl_.quiescent());
}

TEST_F(CacheCtrlTest, DrainWaitsForOutstandingStores) {
  const Addr a = remoteAddr();
  ctrl_.cpuWrite(a, [] {});
  bool drained = false;
  kernel_.run();
  ctrl_.drainWrites([&] { drained = true; });
  EXPECT_FALSE(drained);
  reply(MsgType::WriteReply, a);
  kernel_.run();
  EXPECT_TRUE(drained);
}

TEST_F(CacheCtrlTest, WriteBufferFullStallsExtraStores) {
  // Fill the write buffer with distinct-miss stores, then one more.
  std::uint32_t accepted = 0;
  for (std::uint32_t i = 0; i <= cfg_.writeBufferEntries; ++i) {
    ctrl_.cpuWrite(remoteAddr(i), [&] { ++accepted; });
  }
  kernel_.run();
  EXPECT_EQ(accepted, cfg_.writeBufferEntries);
  EXPECT_GT(stats_.counterValue("cache.0.wb_full_stalls"), 0u);
  // Completing one store releases the stalled one.
  reply(MsgType::WriteReply, remoteAddr(0));
  kernel_.run();
  EXPECT_EQ(accepted, cfg_.writeBufferEntries + 1);
}

TEST_F(CacheCtrlTest, LoadMergesIntoPendingStoreMshr) {
  const Addr a = remoteAddr();
  ctrl_.cpuWrite(a, [] {});
  kernel_.run();
  std::optional<ReadResult> result;
  ctrl_.cpuRead(a, [&](const ReadResult& r) { result = r; });
  kernel_.run();
  // Only one request went to the home.
  std::size_t requests = 0;
  for (const auto& m : toHome_) {
    if (m.type == MsgType::WriteRequest || m.type == MsgType::ReadRequest) ++requests;
  }
  EXPECT_EQ(requests, 1u);
  reply(MsgType::WriteReply, a);
  kernel_.run();
  ASSERT_TRUE(result.has_value());
}

TEST_F(CacheCtrlTest, StoreAfterReadUpgradesViaSecondRequest) {
  const Addr a = remoteAddr();
  ctrl_.cpuRead(a, [](const ReadResult&) {});
  kernel_.run();
  reply(MsgType::ReadReply, a);
  kernel_.run();
  ctrl_.cpuWrite(a, [] {});
  kernel_.run();
  ASSERT_TRUE(lastHomeMsg(MsgType::WriteRequest).has_value());
  reply(MsgType::WriteReply, a);
  kernel_.run();
  EXPECT_EQ(ctrl_.l2().peek(a)->state, CacheState::M);
}

TEST_F(CacheCtrlTest, InvalidationOfSharedLineAcks) {
  const Addr a = remoteAddr();
  ctrl_.cpuRead(a, [](const ReadResult&) {});
  kernel_.run();
  reply(MsgType::ReadReply, a);
  kernel_.run();
  Message inv;
  inv.type = MsgType::Invalidation;
  inv.src = memEp(1);
  inv.dst = procEp(0);
  inv.addr = a;
  net_.send(inv);
  kernel_.run();
  EXPECT_TRUE(lastHomeMsg(MsgType::InvalAck).has_value());
  EXPECT_EQ(ctrl_.l2().peek(a), nullptr);
}

TEST_F(CacheCtrlTest, RecallOfDirtyLineCopiesBack) {
  const Addr a = remoteAddr();
  ctrl_.cpuWrite(a, [] {});
  kernel_.run();
  reply(MsgType::WriteReply, a);
  kernel_.run();
  Message inv;
  inv.type = MsgType::Invalidation;
  inv.src = memEp(1);
  inv.dst = procEp(0);
  inv.addr = a;
  inv.recall = true;
  net_.send(inv);
  kernel_.run();
  const auto cb = lastHomeMsg(MsgType::CopyBack);
  ASSERT_TRUE(cb.has_value());
  EXPECT_TRUE(cb->recall);
  EXPECT_EQ(ctrl_.l2().peek(a), nullptr);
}

TEST_F(CacheCtrlTest, RecallWithUngratedWriteAcksImmediately) {
  // The home's per-destination FIFO guarantees a recall can never overtake
  // the WriteReply that granted ownership, so a recall that finds the line
  // gone — even with our own (re-)request outstanding — is from an epoch we
  // already left and must be acked at once (deferring would deadlock the
  // home, whose queue holds our request).
  const Addr a = remoteAddr();
  ctrl_.cpuWrite(a, [] {});
  kernel_.run();  // WriteRequest out, MSHR waiting
  Message inv;
  inv.type = MsgType::Invalidation;
  inv.src = memEp(1);
  inv.dst = procEp(0);
  inv.addr = a;
  inv.recall = true;
  net_.send(inv);
  kernel_.run();
  EXPECT_TRUE(lastHomeMsg(MsgType::InvalAck).has_value());
  reply(MsgType::WriteReply, a);
  kernel_.run();
  EXPECT_EQ(ctrl_.l2().peek(a)->state, CacheState::M);
  EXPECT_TRUE(ctrl_.quiescent());
}

TEST_F(CacheCtrlTest, CtoCRequestSuppliesDataAndCopiesBack) {
  const Addr a = remoteAddr();
  ctrl_.cpuWrite(a, [] {});
  kernel_.run();
  reply(MsgType::WriteReply, a);
  kernel_.run();
  Message req;
  req.type = MsgType::CtoCRequest;
  req.src = memEp(1);
  req.dst = procEp(0);
  req.addr = a;
  req.requester = 5;
  net_.send(req);
  kernel_.run();
  ASSERT_FALSE(toProcs_.empty());
  EXPECT_EQ(toProcs_.back().type, MsgType::CtoCReply);
  EXPECT_EQ(toProcs_.back().dst, procEp(5));
  const auto cb = lastHomeMsg(MsgType::CopyBack);
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(cb->carriedSharers, 1ull << 5);
  EXPECT_EQ(ctrl_.l2().peek(a)->state, CacheState::S);
}

TEST_F(CacheCtrlTest, MarkedCtoCOnMissingLineRetriesTowardHome) {
  Message req;
  req.type = MsgType::CtoCRequest;
  req.src = procEp(5);
  req.dst = procEp(0);
  req.addr = remoteAddr();
  req.requester = 5;
  req.marked = true;
  net_.send(req);
  kernel_.run();
  const auto rt = lastHomeMsg(MsgType::Retry);
  ASSERT_TRUE(rt.has_value());
  EXPECT_TRUE(rt->marked);
  EXPECT_EQ(rt->requester, 5u);
  EXPECT_EQ(rt->dst, memEp(1));
}

TEST_F(CacheCtrlTest, UnmarkedCtoCOnMissingLineIsDropped) {
  Message req;
  req.type = MsgType::CtoCRequest;
  req.src = memEp(1);
  req.dst = procEp(0);
  req.addr = remoteAddr();
  req.requester = 5;
  net_.send(req);
  kernel_.run();
  EXPECT_FALSE(lastHomeMsg(MsgType::Retry).has_value());
  EXPECT_GT(stats_.counterValue("cache.0.ctoc_dropped_wb_race"), 0u);
}

TEST_F(CacheCtrlTest, RetryReissuesAfterBackoff) {
  const Addr a = remoteAddr();
  ctrl_.cpuRead(a, [](const ReadResult&) {});
  kernel_.run();
  const std::size_t before = toHome_.size();
  Message rt;
  rt.type = MsgType::Retry;
  rt.src = procEp(0);
  rt.dst = procEp(0);
  rt.addr = a;
  rt.requester = 0;
  rt.marked = true;
  net_.send(rt);
  kernel_.run();
  EXPECT_GT(toHome_.size(), before);  // re-issued ReadRequest
  EXPECT_EQ(toHome_.back().type, MsgType::ReadRequest);
  EXPECT_EQ(stats_.counterValue("cache.0.retries"), 1u);
  reply(MsgType::ReadReply, a);
  kernel_.run();
  EXPECT_TRUE(ctrl_.quiescent());
}

TEST_F(CacheCtrlTest, SpuriousRetryAndFillAreCounted) {
  Message rt;
  rt.type = MsgType::Retry;
  rt.src = procEp(0);
  rt.dst = procEp(0);
  rt.addr = remoteAddr();
  rt.requester = 0;
  net_.send(rt);
  kernel_.run();
  EXPECT_EQ(stats_.counterValue("cache.0.spurious_retries"), 1u);
  reply(MsgType::ReadReply, remoteAddr());
  kernel_.run();
  EXPECT_EQ(stats_.counterValue("cache.0.spurious_fills"), 1u);
}

TEST_F(CacheCtrlTest, FillThenInvalidateDeliversDataButKillsLine) {
  const Addr a = remoteAddr();
  std::optional<ReadResult> result;
  ctrl_.cpuRead(a, [&](const ReadResult& r) { result = r; });
  kernel_.run();
  // Invalidation for the in-flight fill (write serialized after our read).
  Message inv;
  inv.type = MsgType::Invalidation;
  inv.src = memEp(1);
  inv.dst = procEp(0);
  inv.addr = a;
  net_.send(inv);
  kernel_.run();
  EXPECT_TRUE(lastHomeMsg(MsgType::InvalAck).has_value());
  reply(MsgType::ReadReply, a);
  kernel_.run();
  ASSERT_TRUE(result.has_value());        // the load completed...
  EXPECT_EQ(ctrl_.l2().peek(a), nullptr); // ...but the line is dead
}

TEST_F(CacheCtrlTest, DirtyEvictionEmitsWriteBack) {
  // Fill one set (4 ways at 128KB/4-way/32B => set stride 32KB * ... use
  // addresses that map to the same set: stride = numSets*line = 32KB).
  const Addr stride = cfg_.l2Bytes / cfg_.l2Assoc;
  for (std::uint32_t i = 0; i <= cfg_.l2Assoc; ++i) {
    const Addr a = cfg_.pageBytes + i * stride;
    ctrl_.cpuWrite(a, [] {});
    kernel_.run();
    reply(MsgType::WriteReply, a);
    kernel_.run();
  }
  EXPECT_TRUE(lastHomeMsg(MsgType::WriteBack).has_value());
  EXPECT_GT(stats_.counterValue("cache.0.writebacks"), 0u);
}

TEST_F(CacheCtrlTest, RmwCompletesHoldingOwnership) {
  const Addr a = remoteAddr();
  bool done = false;
  ctrl_.cpuRmw(a, [&] { done = true; });
  kernel_.run();
  EXPECT_FALSE(done);
  reply(MsgType::WriteReply, a);
  kernel_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(ctrl_.l2().peek(a)->state, CacheState::M);
}

}  // namespace
}  // namespace dresar
