// SimTask coroutine machinery: start/suspend/resume, nesting via symmetric
// transfer, exception propagation, and interaction with the event queue
// through a ThreadContext.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cpu/sync.h"
#include "cpu/task.h"
#include "sim/system.h"

namespace dresar {
namespace {

SimTask immediate(int& out) {
  out = 42;
  co_return;
}

TEST(SimTask, RunsOnStart) {
  int out = 0;
  SimTask t = immediate(out);
  EXPECT_FALSE(t.done());  // initial_suspend
  EXPECT_EQ(out, 0);
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(out, 42);
}

SimTask child(int& v) {
  v += 1;
  co_return;
}

SimTask parent(int& v) {
  co_await child(v);
  co_await child(v);
  v *= 10;
}

TEST(SimTask, NestedTasksRunToCompletion) {
  int v = 0;
  SimTask t = parent(v);
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(v, 20);
}

SimTask throwing() {
  throw std::runtime_error("boom");
  co_return;
}

TEST(SimTask, ExceptionIsCapturedAndRethrown) {
  SimTask t = throwing();
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrowIfFailed(), std::runtime_error);
}

SimTask throwingParent() {
  co_await throwing();
  ADD_FAILURE() << "must not resume past a throwing child";
}

TEST(SimTask, ChildExceptionPropagatesToParent) {
  SimTask t = throwingParent();
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrowIfFailed(), std::runtime_error);
}

SimTask delayer(ThreadContext& ctx, Cycle d, Cycle& when) {
  co_await ctx.delay(d);
  when = ctx.now();
}

TEST(ThreadContext, DelayResumesAtSimulatedTime) {
  SystemConfig cfg;
  System sys(cfg);
  Cycle when = 0;
  sys.spawn(delayer(sys.ctx(0), 25, when));
  sys.run();
  EXPECT_EQ(when, 25u);
}

SimTask computeTask(ThreadContext& ctx, Cycle& when) {
  co_await ctx.compute(8);  // 8 instructions at 4-issue = 2 cycles
  when = ctx.now();
}

TEST(ThreadContext, ComputeScalesWithIssueWidth) {
  SystemConfig cfg;
  System sys(cfg);
  Cycle when = 0;
  sys.spawn(computeTask(sys.ctx(0), when));
  sys.run();
  EXPECT_EQ(when, 2u);
}

SimTask loadStore(System& sys, ThreadContext& ctx) {
  AddressSpace& mem = sys.mem();
  const Addr a = mem.alloc(64);
  const ReadResult r = co_await ctx.load(a);
  EXPECT_NE(r.service, ReadService::L1Hit);  // cold miss
  co_await ctx.store(a);
  co_await ctx.fence();
  const ReadResult r2 = co_await ctx.load(a);
  EXPECT_EQ(r2.service, ReadService::L1Hit);
  ctx.markDone(ctx.now());
}

TEST(ThreadContext, LoadStoreFenceRoundTrip) {
  SystemConfig cfg;
  System sys(cfg);
  sys.spawn(loadStore(sys, sys.ctx(0)));
  sys.run();
  EXPECT_TRUE(sys.ctx(0).isDone());
  EXPECT_EQ(sys.ctx(0).loads(), 2u);
  EXPECT_EQ(sys.ctx(0).stores(), 1u);
  EXPECT_GT(sys.ctx(0).readStallCycles(), 0u);
}

TEST(System, DeadlockIsDetected) {
  SystemConfig cfg;
  System sys(cfg);
  HwBarrier barrier(sys.sched(), 2, 10);  // 2 participants, only 1 arrives
  auto waiter = [](HwBarrier& b, ThreadContext& ctx) -> SimTask { co_await b.arrive(ctx); };
  sys.spawn(waiter(barrier, sys.ctx(0)));
  EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(System, TaskExceptionSurfacesFromRun) {
  SystemConfig cfg;
  System sys(cfg);
  sys.spawn(throwing());
  EXPECT_THROW(sys.run(), std::runtime_error);
}

}  // namespace
}  // namespace dresar
