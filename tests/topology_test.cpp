#include "interconnect/topology.h"

#include <gtest/gtest.h>

namespace dresar {
namespace {

TEST(Butterfly, ReferenceGeometry16Nodes) {
  Butterfly t(16, 8);
  EXPECT_EQ(t.switchesPerStage(), 4u);
  EXPECT_EQ(t.totalSwitches(), 8u);
  EXPECT_EQ(t.half(), 4u);
  EXPECT_EQ(t.procSwitch(0), (SwitchId{0, 0}));
  EXPECT_EQ(t.procSwitch(15), (SwitchId{0, 3}));
  EXPECT_EQ(t.memSwitch(5), (SwitchId{1, 1}));
}

TEST(Butterfly, RejectsNonTilingGeometry) {
  EXPECT_THROW(Butterfly(16, 7), std::invalid_argument);  // odd radix
  EXPECT_THROW(Butterfly(15, 8), std::invalid_argument);  // not multiple of 4
  // 24 nodes over 8x8 switches: 6 switches per stage needs a 3-stage ladder
  // whose top digit base 6/4 is not integral.
  EXPECT_THROW(Butterfly(24, 8), std::invalid_argument);
  EXPECT_EQ(Butterfly::stagesFor(24, 8), 0u);
  EXPECT_NO_THROW(Butterfly(4, 4));
  EXPECT_NO_THROW(Butterfly(8, 8));
}

TEST(Butterfly, DerivesStageCountFromNodeCount) {
  EXPECT_EQ(Butterfly::stagesFor(16, 8), 2u);
  EXPECT_EQ(Butterfly::stagesFor(32, 8), 3u);
  EXPECT_EQ(Butterfly::stagesFor(64, 8), 3u);
  EXPECT_EQ(Butterfly::stagesFor(128, 8), 4u);
  EXPECT_EQ(Butterfly(32, 8).numStages(), 3u);
  EXPECT_EQ(Butterfly(32, 8).totalSwitches(), 24u);    // 3 stages x 8
  EXPECT_EQ(Butterfly(128, 8).totalSwitches(), 128u);  // 4 stages x 32
}

TEST(Butterfly, ForwardRouteProcToMem) {
  Butterfly t(16, 8);
  const Route r = t.route(procEp(5), memEp(9));
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].sw, (SwitchId{0, 1}));  // proc 5 leaf
  EXPECT_EQ(r[1].sw, (SwitchId{1, 2}));  // mem 9 root
  EXPECT_EQ(r[2].kind, Hop::Kind::Deliver);
  EXPECT_EQ(r[2].ep, memEp(9));
}

TEST(Butterfly, BackwardRouteIsMirror) {
  Butterfly t(16, 8);
  const Route fwd = t.route(procEp(5), memEp(9));
  const Route bwd = t.route(memEp(9), procEp(5));
  ASSERT_EQ(bwd.size(), 3u);
  EXPECT_EQ(bwd[0].sw, fwd[1].sw);
  EXPECT_EQ(bwd[1].sw, fwd[0].sw);
}

TEST(Butterfly, PathOverlapProperty) {
  // Every request to memory j crosses j's root switch; writer-leaf overlap
  // happens for same-cluster readers. This is the property switch
  // directories rely on (paper 3.1).
  Butterfly t(16, 8);
  for (NodeId p = 0; p < 16; ++p) {
    for (NodeId m = 0; m < 16; ++m) {
      const Route r = t.route(procEp(p), memEp(m));
      ASSERT_EQ(r.size(), 3u);
      EXPECT_EQ(r[1].sw, t.memSwitch(m));
      EXPECT_EQ(r[0].sw, t.procSwitch(p));
    }
  }
}

TEST(Butterfly, ProcToProcSameClusterTurnsAtLeaf) {
  Butterfly t(16, 8);
  const Route r = t.route(procEp(4), procEp(6));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].sw, (SwitchId{0, 1}));
  EXPECT_EQ(r[1].ep, procEp(6));
}

TEST(Butterfly, ProcToProcCrossClusterIsSymmetricViaRoot) {
  Butterfly t(16, 8);
  const Route ab = t.route(procEp(1), procEp(14));
  const Route ba = t.route(procEp(14), procEp(1));
  ASSERT_EQ(ab.size(), 4u);
  EXPECT_EQ(ab[1].sw.stage, 1u);
  EXPECT_EQ(ab[1].sw, ba[1].sw);  // both directions meet at the same root
}

TEST(Butterfly, RouteFromSwitchToProc) {
  Butterfly t(16, 8);
  // Root switch injecting toward a processor passes that proc's leaf.
  const Route r1 = t.routeFromSwitch(SwitchId{1, 2}, procEp(13));
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_EQ(r1[0].sw, (SwitchId{0, 3}));
  // Leaf switch injecting to its own cluster delivers directly.
  const Route r2 = t.routeFromSwitch(SwitchId{0, 3}, procEp(13));
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].ep, procEp(13));
  // Leaf switch to a foreign cluster goes up then down.
  const Route r3 = t.routeFromSwitch(SwitchId{0, 0}, procEp(13));
  ASSERT_EQ(r3.size(), 3u);
  EXPECT_EQ(r3[0].sw.stage, 1u);
  EXPECT_EQ(r3[1].sw, (SwitchId{0, 3}));
}

TEST(Butterfly, RouteFromSwitchToMem) {
  Butterfly t(16, 8);
  const Route r = t.routeFromSwitch(SwitchId{0, 1}, memEp(9));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].sw, (SwitchId{1, 2}));
  // A root switch can reach its own memories directly.
  const Route r2 = t.routeFromSwitch(SwitchId{1, 2}, memEp(9));
  ASSERT_EQ(r2.size(), 1u);
}

TEST(Butterfly, ForwardPathMembership) {
  Butterfly t(16, 8);
  const auto path = t.forwardPath(3, 12);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], (SwitchId{0, 0}));
  EXPECT_EQ(path[1], (SwitchId{1, 3}));
}

TEST(Butterfly, SmallRadix4System) {
  Butterfly t(4, 4);
  EXPECT_EQ(t.switchesPerStage(), 2u);
  const Route r = t.route(procEp(0), memEp(3));
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].sw, (SwitchId{0, 0}));
  EXPECT_EQ(r[1].sw, (SwitchId{1, 1}));
}

}  // namespace
}  // namespace dresar
