#include "workloads/common.h"

#include <gtest/gtest.h>

#include "workloads/workload.h"

namespace dresar::workloads {
namespace {

TEST(BlockPartition, CoversRangeExactlyOnce) {
  for (const std::size_t n : {1ul, 7ul, 16ul, 100ul, 4096ul}) {
    for (const std::uint32_t parts : {1u, 3u, 16u}) {
      std::size_t covered = 0;
      std::size_t prevEnd = 0;
      for (std::uint32_t p = 0; p < parts; ++p) {
        const Range r = blockPartition(n, parts, p);
        EXPECT_EQ(r.begin, prevEnd) << "gap at part " << p;
        EXPECT_LE(r.begin, r.end);
        covered += r.size();
        prevEnd = r.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prevEnd, n);
    }
  }
}

TEST(BlockPartition, BalancedWithinOne) {
  const std::size_t n = 100;
  const std::uint32_t parts = 16;
  std::size_t mn = n, mx = 0;
  for (std::uint32_t p = 0; p < parts; ++p) {
    const Range r = blockPartition(n, parts, p);
    mn = std::min(mn, r.size());
    mx = std::max(mx, r.size());
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(BlockPartition, MorePartsThanItems) {
  std::size_t covered = 0;
  for (std::uint32_t p = 0; p < 16; ++p) covered += blockPartition(3, 16, p).size();
  EXPECT_EQ(covered, 3u);
}

TEST(WorkloadScale, PaperSizesMatchTable2) {
  const WorkloadScale p = WorkloadScale::paper();
  EXPECT_EQ(p.fftPoints, 16384u);  // "16K pts"
  EXPECT_EQ(p.sorN, 512u);
  EXPECT_EQ(p.tcN, 128u);
  EXPECT_EQ(p.fwaN, 128u);
  EXPECT_EQ(p.gaussN, 128u);
}

TEST(WorkloadRegistry, AllNamesConstruct) {
  for (const auto& name : workloadNames()) {
    EXPECT_NE(makeWorkload(name, WorkloadScale::tiny()), nullptr);
  }
  EXPECT_THROW(makeWorkload("bogus", WorkloadScale::tiny()), std::invalid_argument);
}

TEST(WorkloadRegistry, FftRejectsNonPowerOfTwo) {
  WorkloadScale s = WorkloadScale::tiny();
  s.fftPoints = 1000;
  EXPECT_THROW(makeWorkload("fft", s), std::invalid_argument);
}

}  // namespace
}  // namespace dresar::workloads
