// Exhaustive unit tests of the DRESAR snoop FSM (paper Figure 4 / Table 1):
// every message type against every entry state, plus the marked-message
// annotations and the port-occupancy model.
#include <gtest/gtest.h>

#include "common/scheduler.h"
#include "switchdir/dresar.h"

namespace dresar {
namespace {

class DresarFsm : public ::testing::Test {
 protected:
  DresarFsm() : topo_(16, 8), mgr_(cfg(), topo_, 32, 16, kernel_, map_) {}

  static SwitchDirConfig cfg() {
    SwitchDirConfig c;
    c.entries = 64;
    c.associativity = 4;
    return c;
  }

  Message msg(MsgType t, Endpoint src, Endpoint dst, Addr a, NodeId req = kInvalidNode,
              bool marked = false) {
    Message m;
    m.type = t;
    m.src = src;
    m.dst = dst;
    m.addr = a;
    m.requester = req;
    m.marked = marked;
    return m;
  }

  /// Run a snoop at switch (1,0) — the root switch of memories 0..3.
  SnoopOutcome snoop(Message& m, std::vector<Message>& spawn, Cycle now = 0) {
    return mgr_.onMessage(sw_, now, m, spawn);
  }

  /// Deposit a MODIFIED entry for `a` owned by `owner` (WriteReply snoop).
  void deposit(Addr a, NodeId owner) {
    Message wr = msg(MsgType::WriteReply, memEp(0), procEp(owner), a, owner);
    std::vector<Message> spawn;
    ASSERT_TRUE(snoop(wr, spawn).pass);
    ASSERT_TRUE(spawn.empty());
  }

  /// Move an entry to TRANSIENT by snooping a read from `req`.
  void makeTransient(Addr a, NodeId owner, NodeId req) {
    deposit(a, owner);
    Message rd = msg(MsgType::ReadRequest, procEp(req), memEp(0), a, req);
    std::vector<Message> spawn;
    ASSERT_FALSE(snoop(rd, spawn).pass);
    ASSERT_EQ(spawn.size(), 1u);
  }

  const SDEntry* entry(Addr a) { return mgr_.cacheAt(sw_).peek(a); }

  SimKernel kernel_{1};
  ShardMap map_;
  Butterfly topo_;
  DresarManager mgr_;
  SwitchId sw_{1, 0};
};

TEST_F(DresarFsm, WriteReplyDepositsModifiedEntry) {
  deposit(0x100, 7);
  const SDEntry* e = entry(0x100);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, SDState::Modified);
  EXPECT_EQ(e->owner, 7u);
  EXPECT_EQ(mgr_.deposits(), 1u);
}

TEST_F(DresarFsm, WriteReplyUpdatesOwnerInPlace) {
  deposit(0x100, 7);
  deposit(0x100, 9);
  EXPECT_EQ(entry(0x100)->owner, 9u);
}

TEST_F(DresarFsm, ReadRequestMissPassesUntouched) {
  Message rd = msg(MsgType::ReadRequest, procEp(2), memEp(0), 0x200, 2);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(rd, spawn).pass);
  EXPECT_TRUE(spawn.empty());
  EXPECT_EQ(entry(0x200), nullptr);
}

TEST_F(DresarFsm, ReadHitOnModifiedSinksAndRoutesToOwner) {
  deposit(0x100, 7);
  Message rd = msg(MsgType::ReadRequest, procEp(2), memEp(0), 0x100, 2);
  std::vector<Message> spawn;
  EXPECT_FALSE(snoop(rd, spawn).pass);  // sunk
  ASSERT_EQ(spawn.size(), 1u);
  EXPECT_EQ(spawn[0].type, MsgType::CtoCRequest);
  EXPECT_EQ(spawn[0].dst, procEp(7));
  EXPECT_EQ(spawn[0].requester, 2u);
  EXPECT_TRUE(spawn[0].marked);
  EXPECT_TRUE(spawn[0].viaSwitchDir);
  // Entry records the transaction.
  const SDEntry* e = entry(0x100);
  EXPECT_EQ(e->state, SDState::Transient);
  EXPECT_EQ(e->requester, 2u);
  EXPECT_EQ(mgr_.ctocInitiated(), 1u);
}

TEST_F(DresarFsm, ReadHitOnTransientRetriesRequester) {
  makeTransient(0x100, 7, 2);
  Message rd = msg(MsgType::ReadRequest, procEp(3), memEp(0), 0x100, 3);
  std::vector<Message> spawn;
  EXPECT_FALSE(snoop(rd, spawn).pass);
  ASSERT_EQ(spawn.size(), 1u);
  EXPECT_EQ(spawn[0].type, MsgType::Retry);
  EXPECT_EQ(spawn[0].dst, procEp(3));
  EXPECT_TRUE(spawn[0].marked);
  // The original transaction is untouched.
  EXPECT_EQ(entry(0x100)->requester, 2u);
  EXPECT_EQ(mgr_.readRetries(), 1u);
}

TEST_F(DresarFsm, StaleSelfReadDropsEntryAndPasses) {
  deposit(0x100, 7);
  Message rd = msg(MsgType::ReadRequest, procEp(7), memEp(0), 0x100, 7);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(rd, spawn).pass);
  EXPECT_TRUE(spawn.empty());
  EXPECT_EQ(entry(0x100), nullptr);
  EXPECT_EQ(mgr_.staleSelfHits(), 1u);
}

TEST_F(DresarFsm, WriteRequestInvalidatesModifiedAndPasses) {
  deposit(0x100, 7);
  Message wr = msg(MsgType::WriteRequest, procEp(3), memEp(0), 0x100, 3);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(wr, spawn).pass);
  EXPECT_EQ(entry(0x100), nullptr);
}

TEST_F(DresarFsm, WriteRequestOnTransientIsSunkWithRetry) {
  makeTransient(0x100, 7, 2);
  Message wr = msg(MsgType::WriteRequest, procEp(3), memEp(0), 0x100, 3);
  std::vector<Message> spawn;
  EXPECT_FALSE(snoop(wr, spawn).pass);
  ASSERT_EQ(spawn.size(), 1u);
  EXPECT_EQ(spawn[0].type, MsgType::Retry);
  EXPECT_EQ(spawn[0].dst, procEp(3));
  EXPECT_EQ(mgr_.writeRetries(), 1u);
  EXPECT_EQ(entry(0x100)->state, SDState::Transient);
}

TEST_F(DresarFsm, HomeCtoCRequestInvalidatesModified) {
  deposit(0x100, 7);
  Message fwd = msg(MsgType::CtoCRequest, memEp(0), procEp(7), 0x100, 3);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(fwd, spawn).pass);
  EXPECT_EQ(entry(0x100), nullptr);
}

TEST_F(DresarFsm, CtoCRequestPassesThroughTransient) {
  // Deliberate deviation from the paper's Table (which sinks here): a sunk
  // home request deadlocks when this switch's own transfer fails on a stale
  // owner; passing is always safe (see dresar.cpp).
  makeTransient(0x100, 7, 2);
  Message fwd = msg(MsgType::CtoCRequest, memEp(0), procEp(7), 0x100, 3);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(fwd, spawn).pass);
  EXPECT_TRUE(spawn.empty());
  EXPECT_EQ(entry(0x100)->state, SDState::Transient);
}

TEST_F(DresarFsm, CopyBackClearsModifiedEntry) {
  deposit(0x100, 7);
  Message cb = msg(MsgType::CopyBack, procEp(7), memEp(0), 0x100, 3);
  cb.carriedSharers = 1u << 3;
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(cb, spawn).pass);
  EXPECT_EQ(entry(0x100), nullptr);
}

TEST_F(DresarFsm, CopyBackMatchingTransientJustClears) {
  makeTransient(0x100, 7, 2);
  Message cb = msg(MsgType::CopyBack, procEp(7), memEp(0), 0x100, 2, /*marked=*/true);
  cb.carriedSharers = 1u << 2;  // it serves our requester
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(cb, spawn).pass);
  EXPECT_TRUE(spawn.empty());
  EXPECT_EQ(entry(0x100), nullptr);
}

TEST_F(DresarFsm, CopyBackForOtherRequesterServesOursFromData) {
  makeTransient(0x100, 7, 2);
  // A copyback produced by a different transaction (serving proc 5) passes.
  Message cb = msg(MsgType::CopyBack, procEp(7), memEp(0), 0x100, 5, /*marked=*/true);
  cb.carriedSharers = 1u << 5;
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(cb, spawn).pass);
  ASSERT_EQ(spawn.size(), 1u);
  EXPECT_EQ(spawn[0].type, MsgType::ReadReply);
  EXPECT_EQ(spawn[0].dst, procEp(2));
  EXPECT_TRUE(spawn[0].marked);
  // The pass-through message now carries our requester to the home too.
  EXPECT_NE(cb.carriedSharers & (1u << 2), 0u);
  EXPECT_EQ(entry(0x100), nullptr);
  EXPECT_EQ(mgr_.copyBackServes(), 1u);
}

TEST_F(DresarFsm, WriteBackServesTransientRequesterAndAnnotates) {
  makeTransient(0x100, 7, 2);
  Message wb = msg(MsgType::WriteBack, procEp(7), memEp(0), 0x100);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(wb, spawn).pass);
  ASSERT_EQ(spawn.size(), 1u);
  EXPECT_EQ(spawn[0].type, MsgType::ReadReply);
  EXPECT_EQ(spawn[0].dst, procEp(2));
  EXPECT_TRUE(wb.marked);
  EXPECT_NE(wb.carriedSharers & (1u << 2), 0u);
  EXPECT_EQ(entry(0x100), nullptr);
  EXPECT_EQ(mgr_.writeBackServes(), 1u);
}

TEST_F(DresarFsm, WriteBackClearsModifiedSilently) {
  deposit(0x100, 7);
  Message wb = msg(MsgType::WriteBack, procEp(7), memEp(0), 0x100);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(wb, spawn).pass);
  EXPECT_TRUE(spawn.empty());
  EXPECT_FALSE(wb.marked);
  EXPECT_EQ(entry(0x100), nullptr);
}

TEST_F(DresarFsm, MarkedOwnerRetryClearsTransientAndBouncesRequester) {
  makeTransient(0x100, 7, 2);
  Message rt = msg(MsgType::Retry, procEp(7), memEp(0), 0x100, 2, /*marked=*/true);
  std::vector<Message> spawn;
  // Passes onward so any other TRANSIENT switch on the path is cleared too.
  EXPECT_TRUE(snoop(rt, spawn).pass);
  ASSERT_EQ(spawn.size(), 1u);
  EXPECT_EQ(spawn[0].type, MsgType::Retry);
  EXPECT_EQ(spawn[0].dst, procEp(2));
  EXPECT_EQ(entry(0x100), nullptr);
}

TEST_F(DresarFsm, MarkedOwnerRetryPassesWhenEntryGone) {
  Message rt = msg(MsgType::Retry, procEp(7), memEp(0), 0x100, 2, /*marked=*/true);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(rt, spawn).pass);  // home will drop it
  EXPECT_TRUE(spawn.empty());
}

TEST_F(DresarFsm, RetryTowardProcessorIsIgnored) {
  makeTransient(0x100, 7, 2);
  Message rt = msg(MsgType::Retry, procEp(3), procEp(3), 0x100, 3, /*marked=*/true);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(rt, spawn).pass);
  EXPECT_EQ(entry(0x100)->state, SDState::Transient);  // untouched
}

TEST_F(DresarFsm, InvalidationIgnoredByDefault) {
  deposit(0x100, 7);
  Message inv = msg(MsgType::Invalidation, memEp(0), procEp(7), 0x100);
  std::vector<Message> spawn;
  EXPECT_TRUE(snoop(inv, spawn).pass);
  EXPECT_NE(entry(0x100), nullptr);
}

TEST_F(DresarFsm, DataRepliesNeedNoProcessing) {
  deposit(0x100, 7);
  for (const MsgType t : {MsgType::ReadReply, MsgType::CtoCReply, MsgType::InvalAck}) {
    Message m = msg(t, memEp(0), procEp(1), 0x100, 1);
    std::vector<Message> spawn;
    EXPECT_TRUE(snoop(m, spawn).pass);
    EXPECT_TRUE(spawn.empty());
    EXPECT_NE(entry(0x100), nullptr);
  }
}

TEST_F(DresarFsm, TransientCountTracksPendingBufferOccupancy) {
  makeTransient(0x100, 7, 2);
  makeTransient(0x200, 8, 3);
  EXPECT_EQ(mgr_.transientEntries(), 2u);
  Message cb = msg(MsgType::CopyBack, procEp(7), memEp(0), 0x100, 2, true);
  cb.carriedSharers = 1u << 2;
  std::vector<Message> spawn;
  snoop(cb, spawn);
  EXPECT_EQ(mgr_.transientEntries(), 1u);
}

TEST_F(DresarFsm, PortContentionDelaysBurstOfRequests) {
  // 2 snoop ports per cycle: the third request in one cycle waits.
  deposit(0x100, 7);
  std::vector<Message> spawn;
  Cycle totalDelay = 0;
  for (int i = 0; i < 4; ++i) {
    Message rd = msg(MsgType::ReadRequest, procEp(2), memEp(0), 0x200 + i * 0x1000ull, 2);
    totalDelay += snoop(rd, spawn, /*now=*/100).extraDelay;
  }
  EXPECT_GT(totalDelay, 0u);
}

class DresarInvalSnoop : public DresarFsm {};

TEST_F(DresarFsm, DisabledManagerPassesEverything) {
  SwitchDirConfig off;
  off.entries = 0;
  DresarManager mgr(off, topo_, 32, 16, kernel_, map_);
  Message rd = msg(MsgType::ReadRequest, procEp(2), memEp(0), 0x100, 2);
  std::vector<Message> spawn;
  EXPECT_TRUE(mgr.onMessage(sw_, 0, rd, spawn).pass);
  EXPECT_FALSE(mgr.enabled());
}

TEST(DresarInvalSnoopOpt, InvalidationSnoopClearsModified) {
  SimKernel kernel{1};
  ShardMap map;
  Butterfly topo(16, 8);
  SwitchDirConfig c;
  c.entries = 64;
  c.associativity = 4;
  c.snoopInvalidations = true;
  DresarManager mgr(c, topo, 32, 16, kernel, map);
  const SwitchId sw{1, 0};
  Message wr;
  wr.type = MsgType::WriteReply;
  wr.src = memEp(0);
  wr.dst = procEp(7);
  wr.addr = 0x100;
  std::vector<Message> spawn;
  mgr.onMessage(sw, 0, wr, spawn);
  ASSERT_NE(mgr.cacheAt(sw).peek(0x100), nullptr);
  Message inv;
  inv.type = MsgType::Invalidation;
  inv.src = memEp(0);
  inv.dst = procEp(7);
  inv.addr = 0x100;
  EXPECT_TRUE(mgr.onMessage(sw, 0, inv, spawn).pass);
  EXPECT_EQ(mgr.cacheAt(sw).peek(0x100), nullptr);
}

TEST(DresarPendingBuffer, FullBufferFallsBackToMainPorts) {
  // Regression for the capacity comparison in reservePorts: with N pending
  // buffer entries, transientCount == N means the buffer is full and
  // pending-eligible snoops must fall back to the 2-wide main directory
  // ports. The old `<=` admitted that boundary case to the 4-wide
  // pending-buffer ports, under-reporting contention.
  SimKernel kernel{1};
  ShardMap map;
  Butterfly topo(16, 8);
  SwitchDirConfig c;
  c.entries = 64;
  c.associativity = 4;
  c.pendingBufferEntries = 1;
  DresarManager mgr(c, topo, 32, 16, kernel, map);
  const SwitchId sw{1, 0};

  // A CtoCRequest that misses the directory is pass-through but still pays
  // for its snoop; its port-contention delay exposes which port pool served
  // it (pending buffer: 4/cycle, main directory: 2/cycle).
  const auto ctocMiss = [&](Addr a, Cycle now) {
    Message m;
    m.type = MsgType::CtoCRequest;
    m.src = procEp(2);
    m.dst = procEp(7);
    m.addr = a;
    m.requester = 2;
    std::vector<Message> spawn;
    const SnoopOutcome out = mgr.onMessage(sw, now, m, spawn);
    EXPECT_TRUE(out.pass);
    EXPECT_TRUE(spawn.empty());
    return out.extraDelay;
  };

  // Buffer has a free slot: a 5-snoop burst on the 4-wide pending ports pays
  // exactly one cycle of contention (delays 0,0,0,0,1).
  Cycle burst = 0;
  for (int i = 0; i < 5; ++i) burst += ctocMiss(0x10000 + i * 0x1000ull, /*now=*/100);
  EXPECT_EQ(burst, 1u);

  // Occupy the single pending-buffer slot: deposit MODIFIED, then a foreign
  // read moves the entry to TRANSIENT.
  {
    Message wr;
    wr.type = MsgType::WriteReply;
    wr.src = memEp(0);
    wr.dst = procEp(7);
    wr.addr = 0x100;
    wr.requester = 7;
    std::vector<Message> spawn;
    ASSERT_TRUE(mgr.onMessage(sw, 110, wr, spawn).pass);
    Message rd;
    rd.type = MsgType::ReadRequest;
    rd.src = procEp(2);
    rd.dst = memEp(0);
    rd.addr = 0x100;
    rd.requester = 2;
    ASSERT_FALSE(mgr.onMessage(sw, 120, rd, spawn).pass);
  }
  ASSERT_EQ(mgr.transientEntries(), 1u);

  // transientCount == pendingBufferEntries: the buffer is full, so the same
  // burst now runs on the 2-wide main ports (delays 0,0,1,1,2).
  burst = 0;
  for (int i = 0; i < 5; ++i) burst += ctocMiss(0x20000 + i * 0x1000ull, /*now=*/200);
  EXPECT_EQ(burst, 4u);
}

}  // namespace
}  // namespace dresar
