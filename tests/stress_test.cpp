// Property/stress tests: random concurrent access storms over a small,
// heavily contended block pool, parameterized over switch-directory
// configurations and seeds. After every run the system must quiesce with the
// protocol invariants intact, and lock-protected counters must be exact —
// the end-to-end coherence-ordering check.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "cpu/sync.h"
#include "sim/checker.h"
#include "sim/system.h"

namespace dresar {
namespace {

struct StressParam {
  std::uint32_t sdEntries;
  bool snoopInval;
  bool pendingBuffer;
  std::uint64_t seed;
};

class ProtocolStress : public ::testing::TestWithParam<StressParam> {};

void checkInvariants(System& sys) {
  // The library's own checker is the primary oracle...
  const CheckReport report = ProtocolChecker::check(sys);
  EXPECT_TRUE(report.ok()) << report.summary();
  // ...and the explicit re-derivation below cross-validates it.
  ASSERT_TRUE(sys.quiescent());
  if (sys.dresar().enabled()) {
    EXPECT_EQ(sys.dresar().transientEntries(), 0u)
        << "orphaned TRANSIENT switch-directory entries";
  }
  const auto& cfg = sys.config();
  std::map<Addr, NodeId> owners;
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    sys.cache(n).l2().forEachValid([&](const CacheLine& l) {
      if (l.state != CacheState::M) return;
      EXPECT_EQ(owners.count(l.tag), 0u) << "two M copies of block " << std::hex << l.tag;
      owners[l.tag] = n;
      const auto* d = sys.dir(cfg.homeOf(l.tag)).peek(l.tag);
      ASSERT_NE(d, nullptr);
      EXPECT_EQ(d->state, DirState::Modified) << "home disagrees for block " << std::hex << l.tag;
      EXPECT_EQ(d->owner, n);
    });
  }
  // Conversely: every Modified directory entry has exactly its owner caching
  // the block in M.
  for (NodeId h = 0; h < cfg.numNodes; ++h) {
    // peek() is per-block; walk the owners we found instead, plus spot-check
    // that no directory is left BUSY (covered by quiescent()).
  }
}

SimTask storm(System& sys, ThreadContext& ctx, std::uint64_t seed, Addr poolBase,
              std::uint32_t poolBlocks, int ops) {
  Rng rng(seed ^ (0x9E37ull * (ctx.id() + 1)));
  const std::uint32_t line = sys.config().lineBytes;
  for (int i = 0; i < ops; ++i) {
    const Addr a = poolBase + rng.below(poolBlocks) * line;
    const std::uint64_t kind = rng.below(10);
    if (kind < 5) {
      co_await ctx.load(a);
    } else if (kind < 9) {
      co_await ctx.store(a);
    } else {
      co_await ctx.rmw(a);
    }
    if (rng.below(16) == 0) co_await ctx.fence();
    co_await ctx.compute(rng.below(12) + 1);
  }
  co_await ctx.fence();
}

TEST_P(ProtocolStress, RandomStormQuiescesWithInvariantsIntact) {
  const StressParam p = GetParam();
  SystemConfig cfg;
  cfg.switchDir.entries = p.sdEntries;
  cfg.switchDir.snoopInvalidations = p.snoopInval;
  cfg.switchDir.usePendingBuffer = p.pendingBuffer;
  System sys(cfg);
  const std::uint32_t poolBlocks = 24;  // heavy contention
  const Addr pool = sys.mem().alloc(poolBlocks * cfg.lineBytes);
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    sys.spawn(storm(sys, sys.ctx(n), p.seed, pool, poolBlocks, 300));
  }
  sys.run();
  checkInvariants(sys);
  EXPECT_GT(sys.stats().sumByPrefix("net.msgs."), 0u);
}

TEST_P(ProtocolStress, LockedCountersAreExact) {
  const StressParam p = GetParam();
  SystemConfig cfg;
  cfg.switchDir.entries = p.sdEntries;
  cfg.switchDir.snoopInvalidations = p.snoopInval;
  cfg.switchDir.usePendingBuffer = p.pendingBuffer;
  System sys(cfg);
  constexpr int kCounters = 3;
  constexpr int kIncrements = 12;
  std::vector<std::unique_ptr<SpinLock>> locks;
  std::vector<std::uint64_t> counters(kCounters, 0);
  for (int c = 0; c < kCounters; ++c) {
    locks.push_back(std::make_unique<SpinLock>(
        sys.mem().allocAt(static_cast<NodeId>(c * 5 % cfg.numNodes), cfg.lineBytes)));
  }
  auto body = [&](ThreadContext& ctx, std::uint64_t seed) -> SimTask {
    Rng rng(seed);
    for (int i = 0; i < kIncrements; ++i) {
      const int c = static_cast<int>(rng.below(kCounters));
      co_await locks[static_cast<std::size_t>(c)]->acquire(ctx);
      const std::uint64_t v = counters[static_cast<std::size_t>(c)];
      co_await ctx.delay(1 + rng.below(9));  // widen the race window
      counters[static_cast<std::size_t>(c)] = v + 1;
      co_await locks[static_cast<std::size_t>(c)]->release(ctx);
    }
  };
  for (NodeId n = 0; n < cfg.numNodes; ++n) sys.spawn(body(sys.ctx(n), p.seed + n));
  sys.run();
  std::uint64_t total = 0;
  for (const auto v : counters) total += v;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kIncrements) * cfg.numNodes);
  checkInvariants(sys);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ProtocolStress,
    ::testing::Values(StressParam{0, false, true, 1}, StressParam{0, false, true, 2},
                      StressParam{0, false, true, 3}, StressParam{256, false, true, 1},
                      StressParam{256, false, true, 2}, StressParam{1024, false, true, 1},
                      StressParam{1024, false, true, 2}, StressParam{1024, false, true, 3},
                      StressParam{1024, true, true, 1}, StressParam{1024, true, true, 2},
                      StressParam{1024, false, false, 1}, StressParam{2048, false, true, 1},
                      StressParam{64, false, true, 1}, StressParam{64, true, false, 2}),
    [](const auto& info) {
      const StressParam& p = info.param;
      return "sd" + std::to_string(p.sdEntries) + (p.snoopInval ? "_snoop" : "") +
             (p.pendingBuffer ? "" : "_nopb") + "_seed" + std::to_string(p.seed);
    });

// A tiny-directory configuration forces constant eviction and exercises the
// stale-entry retry machinery hard.
TEST(ProtocolStressExtra, TinyDirectoriesStillCorrect) {
  SystemConfig cfg;
  cfg.switchDir.entries = 8;
  cfg.switchDir.associativity = 2;
  System sys(cfg);
  const Addr pool = sys.mem().alloc(64 * cfg.lineBytes);
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    sys.spawn(storm(sys, sys.ctx(n), 99 + n, pool, 64, 200));
  }
  sys.run();
  checkInvariants(sys);
}

// Single-block thrash: every processor hammers one line. Maximum protocol
// pressure on one home directory entry and one switch-directory set.
TEST(ProtocolStressExtra, SingleBlockThrash) {
  SystemConfig cfg;
  cfg.switchDir.entries = 1024;
  System sys(cfg);
  const Addr a = sys.mem().alloc(cfg.lineBytes);
  auto body = [&](ThreadContext& ctx) -> SimTask {
    for (int i = 0; i < 120; ++i) {
      if ((i + ctx.id()) % 3 == 0) {
        co_await ctx.store(a);
      } else {
        co_await ctx.load(a);
      }
    }
    co_await ctx.fence();
  };
  for (NodeId n = 0; n < cfg.numNodes; ++n) sys.spawn(body(sys.ctx(n)));
  sys.run();
  checkInvariants(sys);
}

}  // namespace
}  // namespace dresar
