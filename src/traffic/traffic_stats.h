// Per-tenant counters and tail-latency accounting for traffic runs.
//
// The scalar mean hides exactly what consolidation hurts: a cold tenant's
// p99.9 blowing up while the hot tenant's mass keeps the average flat. So
// read service latencies stream into log2-spaced histograms (Histogram
// LogSpaced mode — bounded relative error out to the deep tail) split by
// arrival phase, and each tenant keeps its own counters, so schema consumers
// can see both "which tenant" and "how bad the tail" without a trace dump.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "traffic/traffic_model.h"

namespace dresar {

struct TenantCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  Sampler readLatency;  ///< cycles per read, this tenant
};

class TrafficStats {
 public:
  explicit TrafficStats(std::uint32_t tenants);

  /// Account one completed reference: `latency` is what the simulator
  /// charged the issuing processor for it.
  void record(const TrafficRef& ref, Cycle latency);
  /// Merge another shard (same tenant count) — used by the event-driven
  /// workload, which keeps one TrafficStats per node stream.
  void merge(const TrafficStats& o);

  [[nodiscard]] const std::vector<TenantCounters>& tenants() const { return tenants_; }
  [[nodiscard]] const Histogram& readLatency() const { return readLat_; }
  [[nodiscard]] const Histogram& burstReadLatency() const { return burstLat_; }
  [[nodiscard]] const Histogram& steadyReadLatency() const { return steadyLat_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

  /// Mean fraction of each controller busy serving reads that arrived in
  /// burst (resp. steady) windows: sum of read service latency over the
  /// phase's elapsed cycles times the controller count. Can exceed 1 when
  /// the offered load outruns the controllers — that is the signal.
  [[nodiscard]] double burstOccupancy(std::uint64_t burstElapsed, std::uint32_t numProcs) const;
  [[nodiscard]] double steadyOccupancy(std::uint64_t steadyElapsed, std::uint32_t numProcs) const;

 private:
  std::vector<TenantCounters> tenants_;
  Histogram readLat_;
  Histogram burstLat_;
  Histogram steadyLat_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  double burstLatSum_ = 0.0;
  double steadyLatSum_ = 0.0;
};

}  // namespace dresar
