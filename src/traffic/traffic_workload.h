// Event-driven front end for the traffic models: registry names "oltp" and
// "kv". Each node runs one pinned TrafficModel stream (streamId = pid + 1,
// see traffic_model.h) as an open-loop client: it sleeps out the model's
// interarrival gaps with ctx.delay() and issues the reference against the
// real coherence protocol, so burst windows genuinely pile requests onto the
// controllers instead of being a latency bookkeeping trick. Tenant arenas
// and the shared segment come from the run's AddressSpace (page-interleaved
// across homes); per-node TrafficStats shards merge into stats().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "traffic/traffic_model.h"
#include "traffic/traffic_stats.h"
#include "workloads/workload.h"

namespace dresar {

class TrafficWorkload final : public Workload {
 public:
  /// `profile` is a traffic registry name ("oltp" / "kv" / "hotspot" /
  /// "incast"); each node issues `refsPerNode` references at `offeredLoad`
  /// times the profile's nominal arrival rate.
  TrafficWorkload(std::string profile, std::uint64_t refsPerNode, double offeredLoad = 1.0);

  [[nodiscard]] std::string name() const override;
  void setup(System& sys) override;
  SimTask body(System& sys, ThreadContext& ctx) override;
  [[nodiscard]] WorkloadResult verify(System& sys) override;
  /// Congestion-lab annotation (hotspot/incast only): machine-wide offered
  /// vs accepted reference rate, the saturation-curve y-axes.
  void annotate(RunMetrics& m) override;

  /// All node shards merged; valid after the run.
  [[nodiscard]] TrafficStats stats() const;
  /// Arrival-clock cycles spent in burst (resp. steady) windows, summed over
  /// node streams — the occupancy denominators.
  [[nodiscard]] std::uint64_t burstCyclesElapsed() const;
  [[nodiscard]] std::uint64_t steadyCyclesElapsed() const;

 private:
  std::string profile_;
  std::uint64_t refsPerNode_;
  double offeredLoad_ = 1.0;
  std::uint32_t tenants_ = 0;
  std::vector<std::unique_ptr<TrafficModel>> models_;  // one per node
  std::vector<TrafficStats> stats_;                    // one shard per node
};

namespace workloads {
std::unique_ptr<Workload> makeTraffic(const std::string& profile, std::uint64_t refsPerNode,
                                      double offeredLoad = 1.0);
}  // namespace workloads

}  // namespace dresar
