#include "traffic/traffic_workload.h"

#include <sstream>

#include "sim/address_space.h"

namespace dresar {

TrafficWorkload::TrafficWorkload(std::string profile, std::uint64_t refsPerNode)
    : profile_(std::move(profile)), refsPerNode_(refsPerNode) {
  TrafficConfig::byName(profile_, 1);  // fail fast on unknown profiles
}

std::string TrafficWorkload::name() const { return profile_ == "kv" ? "KV" : "OLTP"; }

void TrafficWorkload::setup(System& sys) {
  const SystemConfig& cfg = sys.config();
  TrafficConfig base = TrafficConfig::byName(profile_, refsPerNode_);
  base.numProcs = cfg.numNodes;
  base.lineBytes = cfg.lineBytes;
  tenants_ = base.tenants;

  // Tenant arenas and the shared segment live in the run's page-interleaved
  // arena, so homes spread across all memories like any other workload's data.
  TrafficLayout layout;
  layout.tenantBases.reserve(base.tenants);
  for (std::uint32_t t = 0; t < base.tenants; ++t) {
    layout.tenantBases.push_back(
        sys.mem().alloc(static_cast<std::size_t>(base.keysPerTenant) * base.lineBytes));
  }
  layout.sharedBase =
      sys.mem().alloc(static_cast<std::size_t>(base.sharedBlocks) * base.lineBytes);

  models_.clear();
  stats_.clear();
  for (NodeId p = 0; p < cfg.numNodes; ++p) {
    TrafficConfig c = base;
    c.streamId = p + 1;  // per-node stream (traffic_model.h discipline)
    c.pinnedPid = static_cast<std::int32_t>(p);
    models_.push_back(std::make_unique<TrafficModel>(c, layout));
    stats_.emplace_back(base.tenants);
  }
}

SimTask TrafficWorkload::body(System&, ThreadContext& ctx) {
  TrafficModel& model = *models_[ctx.id()];
  TrafficStats& shard = stats_[ctx.id()];
  std::uint64_t lastArrival = 0;
  TrafficRef ref;
  while (model.nextRef(ref)) {
    if (ref.arrivalCycle > lastArrival) {
      co_await ctx.delay(ref.arrivalCycle - lastArrival);
      lastArrival = ref.arrivalCycle;
    }
    if (ref.rec.write) {
      co_await ctx.store(ref.rec.addr);
      shard.record(ref, 1);  // release consistency: retire latency only
    } else {
      const ReadResult r = co_await ctx.load(ref.rec.addr);
      shard.record(ref, r.latency);
    }
  }
  co_await ctx.fence();
}

WorkloadResult TrafficWorkload::verify(System& sys) {
  const std::uint64_t want = refsPerNode_ * sys.config().numNodes;
  std::uint64_t emitted = 0;
  for (const auto& m : models_) emitted += m->emitted();
  const TrafficStats merged = stats();
  if (emitted != want) {
    return {false, "traffic stream under-ran: emitted " + std::to_string(emitted) + " of " +
                       std::to_string(want)};
  }
  if (merged.reads() + merged.writes() != want) {
    return {false, "traffic accounting mismatch: recorded " +
                       std::to_string(merged.reads() + merged.writes()) + " of " +
                       std::to_string(want)};
  }
  std::ostringstream os;
  os << want << " refs, read p99 " << merged.readLatency().percentile(0.99) << " cycles";
  return {true, os.str()};
}

TrafficStats TrafficWorkload::stats() const {
  TrafficStats merged(tenants_);
  for (const TrafficStats& s : stats_) merged.merge(s);
  return merged;
}

std::uint64_t TrafficWorkload::burstCyclesElapsed() const {
  std::uint64_t c = 0;
  for (const auto& m : models_) c += m->burstCyclesElapsed();
  return c;
}

std::uint64_t TrafficWorkload::steadyCyclesElapsed() const {
  std::uint64_t c = 0;
  for (const auto& m : models_) c += m->steadyCyclesElapsed();
  return c;
}

namespace workloads {
std::unique_ptr<Workload> makeTraffic(const std::string& profile, std::uint64_t refsPerNode) {
  return std::make_unique<TrafficWorkload>(profile, refsPerNode);
}
}  // namespace workloads

}  // namespace dresar
