#include "traffic/traffic_workload.h"

#include <cctype>
#include <sstream>

#include "sim/address_space.h"

namespace dresar {

TrafficWorkload::TrafficWorkload(std::string profile, std::uint64_t refsPerNode,
                                 double offeredLoad)
    : profile_(std::move(profile)), refsPerNode_(refsPerNode), offeredLoad_(offeredLoad) {
  TrafficConfig::byName(profile_, 1);  // fail fast on unknown profiles
}

std::string TrafficWorkload::name() const {
  std::string up = profile_;
  for (char& c : up) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return up;
}

void TrafficWorkload::setup(System& sys) {
  const SystemConfig& cfg = sys.config();
  TrafficConfig base = TrafficConfig::byName(profile_, refsPerNode_);
  base.numProcs = cfg.numNodes;
  base.lineBytes = cfg.lineBytes;
  base.pageBytes = cfg.pageBytes;
  base.offeredLoad = offeredLoad_;
  if (base.hotNode >= cfg.numNodes) base.hotNode = 0;
  tenants_ = base.tenants;

  // Tenant arenas and the shared segment live in the run's page-interleaved
  // arena, so homes spread across all memories like any other workload's data.
  TrafficLayout layout;
  layout.tenantBases.reserve(base.tenants);
  for (std::uint32_t t = 0; t < base.tenants; ++t) {
    layout.tenantBases.push_back(
        sys.mem().alloc(static_cast<std::size_t>(base.keysPerTenant) * base.lineBytes));
  }
  layout.sharedBase =
      sys.mem().alloc(static_cast<std::size_t>(base.sharedBlocks) * base.lineBytes);
  // Congestion-lab segments need real homes: the hot page lives at hotNode,
  // one victim page at each node (allocAt keeps each within one page).
  if (base.hotFrac > 0.0) {
    layout.hotBase = sys.mem().allocAt(base.hotNode, cfg.pageBytes);
  }
  if (base.incastPeriodCycles > 0) {
    layout.victimBases.reserve(cfg.numNodes);
    for (NodeId v = 0; v < cfg.numNodes; ++v) {
      layout.victimBases.push_back(sys.mem().allocAt(v, cfg.pageBytes));
    }
  }

  models_.clear();
  stats_.clear();
  for (NodeId p = 0; p < cfg.numNodes; ++p) {
    TrafficConfig c = base;
    c.streamId = p + 1;  // per-node stream (traffic_model.h discipline)
    c.pinnedPid = static_cast<std::int32_t>(p);
    models_.push_back(std::make_unique<TrafficModel>(c, layout));
    stats_.emplace_back(base.tenants);
  }
}

SimTask TrafficWorkload::body(System&, ThreadContext& ctx) {
  TrafficModel& model = *models_[ctx.id()];
  TrafficStats& shard = stats_[ctx.id()];
  std::uint64_t lastArrival = 0;
  TrafficRef ref;
  while (model.nextRef(ref)) {
    if (ref.arrivalCycle > lastArrival) {
      co_await ctx.delay(ref.arrivalCycle - lastArrival);
      lastArrival = ref.arrivalCycle;
    }
    if (ref.rec.write) {
      co_await ctx.store(ref.rec.addr);
      shard.record(ref, 1);  // release consistency: retire latency only
    } else {
      const ReadResult r = co_await ctx.load(ref.rec.addr);
      shard.record(ref, r.latency);
    }
  }
  co_await ctx.fence();
}

WorkloadResult TrafficWorkload::verify(System& sys) {
  const std::uint64_t want = refsPerNode_ * sys.config().numNodes;
  std::uint64_t emitted = 0;
  for (const auto& m : models_) emitted += m->emitted();
  const TrafficStats merged = stats();
  if (emitted != want) {
    return {false, "traffic stream under-ran: emitted " + std::to_string(emitted) + " of " +
                       std::to_string(want)};
  }
  if (merged.reads() + merged.writes() != want) {
    return {false, "traffic accounting mismatch: recorded " +
                       std::to_string(merged.reads() + merged.writes()) + " of " +
                       std::to_string(want)};
  }
  std::ostringstream os;
  os << want << " refs, read p99 " << merged.readLatency().percentile(0.99) << " cycles";
  return {true, os.str()};
}

TrafficStats TrafficWorkload::stats() const {
  TrafficStats merged(tenants_);
  for (const TrafficStats& s : stats_) merged.merge(s);
  return merged;
}

std::uint64_t TrafficWorkload::burstCyclesElapsed() const {
  std::uint64_t c = 0;
  for (const auto& m : models_) c += m->burstCyclesElapsed();
  return c;
}

std::uint64_t TrafficWorkload::steadyCyclesElapsed() const {
  std::uint64_t c = 0;
  for (const auto& m : models_) c += m->steadyCyclesElapsed();
  return c;
}

void TrafficWorkload::annotate(RunMetrics& m) {
  // Only the congestion profiles drive saturation curves; oltp/kv keep their
  // v5 tail-latency schema byte-identical.
  if (profile_ != "hotspot" && profile_ != "incast") return;
  std::uint64_t refs = 0;
  for (const auto& model : models_) refs += model->emitted();
  // Offered rate: what the open-loop streams asked for, machine-wide —
  // references per arrival-clock cycle, summed across node streams (the
  // per-stream clocks advance independently, so scale by stream count).
  const std::uint64_t clockSum = burstCyclesElapsed() + steadyCyclesElapsed();
  if (clockSum > 0) {
    m.congOfferedRate =
        static_cast<double>(refs) * static_cast<double>(models_.size()) /
        static_cast<double>(clockSum);
  }
  // Accepted rate: what the machine actually completed per simulated cycle.
  // Under saturation execTime stretches past the arrival clock and this
  // plateaus below the offered rate.
  if (m.execTime > 0) {
    m.congAcceptedRate = static_cast<double>(refs) / static_cast<double>(m.execTime);
  }
  m.congestionEnabled = true;
  if (m.congRuns == 0) m.congRuns = 1;
}

namespace workloads {
std::unique_ptr<Workload> makeTraffic(const std::string& profile, std::uint64_t refsPerNode,
                                      double offeredLoad) {
  return std::make_unique<TrafficWorkload>(profile, refsPerNode, offeredLoad);
}
}  // namespace workloads

}  // namespace dresar
