#include "traffic/traffic_stats.h"

namespace dresar {

namespace {
// Read latencies span ~1 cycle (cache hit) to ~1e5+ (stale-retry chains under
// burst); firstBound 1 with 40 log2 buckets bounds the top at 2^39 cycles —
// far beyond any reachable service time, so p99/p99.9 never clamp.
Histogram makeLatencyHist() { return Histogram(Histogram::LogSpaced{1.0, 40}); }
}  // namespace

TrafficStats::TrafficStats(std::uint32_t tenants)
    : tenants_(tenants),
      readLat_(makeLatencyHist()),
      burstLat_(makeLatencyHist()),
      steadyLat_(makeLatencyHist()) {}

void TrafficStats::record(const TrafficRef& ref, Cycle latency) {
  TenantCounters& t = tenants_[ref.tenant];
  if (ref.rec.write) {
    ++t.writes;
    ++writes_;
    return;  // release consistency hides write latency; tails are read tails
  }
  ++t.reads;
  ++reads_;
  const auto lat = static_cast<double>(latency);
  t.readLatency.add(lat);
  readLat_.add(lat);
  if (ref.burst) {
    burstLat_.add(lat);
    burstLatSum_ += lat;
  } else {
    steadyLat_.add(lat);
    steadyLatSum_ += lat;
  }
}

void TrafficStats::merge(const TrafficStats& o) {
  for (std::size_t t = 0; t < tenants_.size() && t < o.tenants_.size(); ++t) {
    tenants_[t].reads += o.tenants_[t].reads;
    tenants_[t].writes += o.tenants_[t].writes;
    tenants_[t].readLatency.merge(o.tenants_[t].readLatency);
  }
  readLat_.merge(o.readLat_);
  burstLat_.merge(o.burstLat_);
  steadyLat_.merge(o.steadyLat_);
  reads_ += o.reads_;
  writes_ += o.writes_;
  burstLatSum_ += o.burstLatSum_;
  steadyLatSum_ += o.steadyLatSum_;
}

double TrafficStats::burstOccupancy(std::uint64_t burstElapsed, std::uint32_t numProcs) const {
  if (burstElapsed == 0 || numProcs == 0) return 0.0;
  return burstLatSum_ / (static_cast<double>(burstElapsed) * numProcs);
}

double TrafficStats::steadyOccupancy(std::uint64_t steadyElapsed, std::uint32_t numProcs) const {
  if (steadyElapsed == 0 || numProcs == 0) return 0.0;
  return steadyLatSum_ / (static_cast<double>(steadyElapsed) * numProcs);
}

}  // namespace dresar
