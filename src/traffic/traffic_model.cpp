#include "traffic/traffic_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dresar {

namespace {
// Region bases sit above the TPC generators' arenas (tpc_gen.cpp tops out at
// 1<<35 + strides) so mixed traces could never alias.
constexpr Addr kTenantBase = Addr{1} << 36;
constexpr Addr kTenantStride = Addr{1} << 28;  // per-tenant arena
constexpr Addr kSharedBase = Addr{1} << 38;

/// Seed material for stream `streamId` of run seed `seed`: one SplitMix64
/// draw from a state that mixes the id in with an odd constant, so streams
/// 0..N are mutually independent and stream 0 != Rng(seed) (the harness uses
/// raw Rng(seed) for its own perturbations).
std::uint64_t streamSeed(std::uint64_t seed, std::uint32_t streamId) {
  Rng mix(seed + 0x632BE59BD9B4E019ull * (std::uint64_t{streamId} + 1));
  return mix.next();
}
}  // namespace

TrafficLayout TrafficLayout::fixed(std::uint32_t tenants) {
  TrafficLayout l;
  l.tenantBases.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) l.tenantBases.push_back(kTenantBase + t * kTenantStride);
  l.sharedBase = kSharedBase;
  return l;
}

TrafficLayout TrafficLayout::fixedFor(const TrafficConfig& cfg) {
  TrafficLayout l = fixed(cfg.tenants);
  // Homes are round-robin by page (addr/pageBytes mod numProcs), so the
  // first page at/above a base whose index is congruent to the target node
  // is homed there. Regions sit above kSharedBase; victims stride far apart.
  const Addr page = cfg.pageBytes;
  auto pageHomedAt = [&](Addr base, std::uint32_t node) {
    const Addr basePage = base / page;
    const Addr p =
        basePage + (node + cfg.numProcs - static_cast<std::uint32_t>(basePage % cfg.numProcs)) %
                       cfg.numProcs;
    return p * page;
  };
  if (cfg.hotFrac > 0.0) l.hotBase = pageHomedAt(Addr{1} << 39, cfg.hotNode);
  if (cfg.incastPeriodCycles > 0) {
    l.victimBases.reserve(cfg.numProcs);
    const Addr victimRegion = (Addr{1} << 39) + (Addr{1} << 30);
    for (std::uint32_t v = 0; v < cfg.numProcs; ++v) {
      l.victimBases.push_back(pageHomedAt(victimRegion + v * (Addr{1} << 20), v));
    }
  }
  return l;
}

TrafficConfig TrafficConfig::oltp(std::uint64_t refs) {
  TrafficConfig c;  // the member defaults ARE the OLTP profile
  c.refs = refs;
  // Hot rows drift a few times per run regardless of length, so short smoke
  // runs and billion-reference campaigns both exercise migration.
  c.migrationPeriodRefs = std::max<std::uint64_t>(refs / 4, 1);
  return c;
}

TrafficConfig TrafficConfig::kv(std::uint64_t refs) {
  TrafficConfig c;
  c.name = "kv";
  c.refs = refs;
  c.tenants = 8;
  c.keysPerTenant = 60'000;
  c.skew = 1.1;       // KV caches see stronger key skew than row stores
  c.tenantSkew = 0.8;
  c.writeFrac = 0.02;
  c.sharedFrac = 0.01;
  c.sharedBlocks = 1'000;
  c.localityFrac = 0.1;
  c.localityWindow = 32;
  c.meanGapCycles = 25;
  c.migrationPeriodRefs = std::max<std::uint64_t>(refs / 2, 1);
  return c;
}

TrafficConfig TrafficConfig::hotspot(std::uint64_t refs) {
  TrafficConfig c = oltp(refs);
  c.name = "hotspot";
  // Half the steps are migratory pairs on one hot page: the request legs all
  // converge on hotNode's home memory and the c2c data replies concentrate
  // in the switch column above it — where turnaround routing has freedom.
  c.hotFrac = 0.5;
  c.hotNode = 0;
  c.hotBlocks = 64;
  c.meanGapCycles = 30;  // run hotter than plain OLTP so saturation is reachable
  return c;
}

TrafficConfig TrafficConfig::incast(std::uint64_t refs) {
  TrafficConfig c = oltp(refs);
  c.name = "incast";
  // Synchronized fan-in: all nodes fire a read burst at the same victim page
  // every period, barrier-style; the victim rotates batch to batch.
  c.incastPeriodCycles = 2'000;
  c.incastBatchRefs = 16;
  return c;
}

TrafficConfig TrafficConfig::byName(const std::string& name, std::uint64_t refs) {
  if (name == "oltp") return oltp(refs);
  if (name == "kv") return kv(refs);
  if (name == "hotspot") return hotspot(refs);
  if (name == "incast") return incast(refs);
  throw std::invalid_argument("traffic: unknown profile '" + name +
                              "' (want oltp, kv, hotspot, or incast)");
}

void TrafficConfig::applyMix(const std::string& mix) {
  if (mix == "readmostly") return;  // every profile is read-mostly out of the box
  if (mix == "writeheavy") {
    writeFrac = 0.4;
    return;
  }
  throw std::invalid_argument("traffic: unknown mix '" + mix + "' (want readmostly or writeheavy)");
}

bool isTrafficWorkload(const std::string& name) { return name == "oltp" || name == "kv"; }

bool isTrafficMix(const std::string& mix) { return mix == "readmostly" || mix == "writeheavy"; }

std::vector<std::string> TrafficConfig::validationErrors() const {
  std::vector<std::string> errs;
  auto frac = [&errs](double v, const char* what) {
    if (v < 0.0 || v > 1.0) {
      std::ostringstream os;
      os << what << " must be in [0,1], got " << v;
      errs.push_back(os.str());
    }
  };
  if (refs == 0) errs.emplace_back("refs must be > 0");
  if (numProcs == 0 || numProcs > 128) errs.emplace_back("numProcs must be in [1,128]");
  if (lineBytes == 0) errs.emplace_back("lineBytes must be > 0");
  if (tenants == 0) errs.emplace_back("tenants must be > 0");
  if (keysPerTenant == 0) errs.emplace_back("keysPerTenant must be > 0");
  if (skew < 0.0) errs.emplace_back("skew must be >= 0");
  if (tenantSkew < 0.0) errs.emplace_back("tenantSkew must be >= 0");
  frac(writeFrac, "writeFrac");
  frac(sharedFrac, "sharedFrac");
  frac(localityFrac, "localityFrac");
  if (sharedFrac > 0.0 && sharedBlocks == 0) errs.emplace_back("sharedBlocks must be > 0 when sharedFrac > 0");
  if (localityFrac > 0.0 && localityWindow == 0) errs.emplace_back("localityWindow must be > 0 when localityFrac > 0");
  if (meanGapCycles == 0) errs.emplace_back("meanGapCycles must be > 0");
  if (pinnedPid >= 0 && static_cast<std::uint32_t>(pinnedPid) >= numProcs) {
    errs.emplace_back("pinnedPid must be < numProcs");
  }
  if (burstMultiplier <= 0.0) errs.emplace_back("burstMultiplier must be > 0");
  if (steadyCycles == 0) errs.emplace_back("steadyCycles must be > 0");
  frac(hotFrac, "hotFrac");
  if (pageBytes < lineBytes) errs.emplace_back("pageBytes must be >= lineBytes");
  if (hotFrac > 0.0) {
    if (hotNode >= numProcs) errs.emplace_back("hotNode must be < numProcs");
    if (hotBlocks == 0 || hotBlocks > pageBytes / std::max(lineBytes, 1u)) {
      errs.emplace_back("hotBlocks must be in [1, pageBytes/lineBytes] (the hot set is one page)");
    }
  }
  if (incastPeriodCycles > 0 && incastBatchRefs == 0) {
    errs.emplace_back("incastBatchRefs must be > 0 when incastPeriodCycles > 0");
  }
  if (offeredLoad <= 0.0) errs.emplace_back("offeredLoad must be > 0");
  return errs;
}

void TrafficConfig::validate() const {
  const std::vector<std::string> errs = validationErrors();
  if (errs.empty()) return;
  std::string msg = "invalid TrafficConfig:";
  for (const std::string& e : errs) msg += "\n  - " + e;
  throw std::invalid_argument(msg);
}

TrafficModel::TrafficModel(const TrafficConfig& cfg)
    : TrafficModel(cfg, TrafficLayout::fixedFor(cfg)) {}

TrafficModel::TrafficModel(const TrafficConfig& cfg, TrafficLayout layout)
    : cfg_(cfg),
      layout_(std::move(layout)),
      rng_(streamSeed(cfg.seed, cfg.streamId)),
      tenantZipf_(cfg.tenants, cfg.tenantSkew),
      keyZipf_(cfg.keysPerTenant, cfg.skew),
      sharedZipf_(std::max<std::uint32_t>(cfg.sharedBlocks, 1), cfg.sharedSkew),
      sharedOwner_(std::max<std::uint32_t>(cfg.sharedBlocks, 1), kInvalidNode),
      hotOwner_(std::max<std::uint32_t>(cfg.hotBlocks, 1), kInvalidNode),
      recent_(cfg.numProcs),
      recentHead_(cfg.numProcs, 0) {
  cfg_.validate();
  if (layout_.tenantBases.size() < cfg_.tenants) {
    throw std::invalid_argument("traffic: layout has fewer tenant bases than tenants");
  }
  if (cfg_.hotFrac > 0.0 && layout_.hotBase == 0) {
    throw std::invalid_argument("traffic: hotFrac > 0 but layout has no hot page");
  }
  if (cfg_.incastPeriodCycles > 0) {
    if (layout_.victimBases.size() < cfg_.numProcs) {
      throw std::invalid_argument("traffic: incast enabled but layout lacks victim pages");
    }
    incastNext_ = cfg_.incastPeriodCycles;
  }
  pending_.reserve(4);
}

Addr TrafficModel::tenantAddr(std::uint32_t tenant, std::uint32_t key) const {
  return layout_.tenantBases[tenant] + static_cast<Addr>(key) * cfg_.lineBytes;
}

Addr TrafficModel::sharedAddr(std::uint32_t block) const {
  return layout_.sharedBase + static_cast<Addr>(block) * cfg_.lineBytes;
}

Addr TrafficModel::hotAddr(std::uint32_t block) const {
  return layout_.hotBase + static_cast<Addr>(block) * cfg_.lineBytes;
}

Addr TrafficModel::victimAddr(std::uint32_t victim, std::uint32_t block) const {
  return layout_.victimBases[victim] + static_cast<Addr>(block) * cfg_.lineBytes;
}

bool TrafficModel::inBurst(std::uint64_t cycle) const {
  if (cfg_.burstCycles == 0) return false;
  const std::uint64_t period = cfg_.steadyCycles + cfg_.burstCycles;
  return cycle % period >= cfg_.steadyCycles;
}

std::uint64_t TrafficModel::advanceClock() {
  // Exponential interarrival with the phase's mean (burst windows run at
  // burstMultiplier x the steady arrival rate, i.e. 1/mult the gap).
  // offeredLoad scales the whole process: the saturation-curve x-axis.
  double mean = cfg_.meanGapCycles / cfg_.offeredLoad;
  if (inBurst(clock_)) mean /= cfg_.burstMultiplier;
  const std::uint64_t gap =
      static_cast<std::uint64_t>(-mean * std::log1p(-rng_.uniform())) + 1;
  // Charge the gap to the phases it actually spans: occupancy denominators
  // need exact per-phase elapsed time, and a gap can straddle a boundary.
  const std::uint64_t period = cfg_.steadyCycles + cfg_.burstCycles;
  std::uint64_t pos = clock_ % period;
  for (std::uint64_t remaining = gap; remaining > 0;) {
    const bool burst = pos >= cfg_.steadyCycles;
    const std::uint64_t phaseEnd = burst ? period : cfg_.steadyCycles;
    const std::uint64_t step = std::min(remaining, phaseEnd - pos);
    (burst ? burstElapsed_ : steadyElapsed_) += step;
    pos = (pos + step) % period;
    remaining -= step;
  }
  clock_ += gap;
  return clock_;
}

std::uint64_t TrafficModel::driftEpoch() const {
  return cfg_.migrationPeriodRefs == 0 ? 0 : emitted_ / cfg_.migrationPeriodRefs;
}

std::uint32_t TrafficModel::pickTenant() {
  // The Zipf rank ladder rotates across tenants each drift epoch: the hot
  // tenant moves, modeling load shifting between customers over the day.
  const auto rank = static_cast<std::uint32_t>(tenantZipf_.sample(rng_));
  return static_cast<std::uint32_t>((rank + driftEpoch()) % cfg_.tenants);
}

std::uint32_t TrafficModel::pickKey(std::uint32_t tenant) {
  // Rotate the rank ladder by a large co-primish slice per epoch (hot keys
  // migrate within the tenant) and by a per-tenant offset (tenants do not
  // share a hot-rank layout even when their arenas are symmetric).
  const auto rank = static_cast<std::uint64_t>(keyZipf_.sample(rng_));
  const std::uint64_t slice = cfg_.keysPerTenant / 5 + 1;
  return static_cast<std::uint32_t>(
      (rank + driftEpoch() * slice + std::uint64_t{tenant} * 7919) % cfg_.keysPerTenant);
}

void TrafficModel::rememberKey(NodeId pid, Addr addr, std::uint32_t tenant) {
  std::vector<RecentEntry>& ring = recent_[pid];
  if (ring.size() < cfg_.localityWindow) {
    ring.push_back({addr, tenant});
    recentHead_[pid] = static_cast<std::uint32_t>(ring.size() % cfg_.localityWindow);
    return;
  }
  ring[recentHead_[pid]] = {addr, tenant};
  recentHead_[pid] = (recentHead_[pid] + 1) % cfg_.localityWindow;
}

void TrafficModel::synthesizeStep() {
  pending_.clear();
  pendingIdx_ = 0;
  const auto pid = cfg_.pinnedPid >= 0 ? static_cast<NodeId>(cfg_.pinnedPid)
                                       : static_cast<NodeId>(rng_.below(cfg_.numProcs));

  // Incast batches fire on absolute deadlines of the arrival clock, so every
  // node's stream (same period, clocks advancing at the same nominal rate)
  // bursts at the same victim near-simultaneously — a barrier-style fan-in.
  if (incastNext_ != 0 && clock_ >= incastNext_) {
    const auto victim = static_cast<std::uint32_t>(incastBatch_ % cfg_.numProcs);
    const std::uint32_t span =
        std::max(1u, std::min(cfg_.incastBatchRefs, cfg_.pageBytes / cfg_.lineBytes));
    const bool burst = inBurst(incastNext_);
    const std::uint32_t tenant = pickTenant();
    for (std::uint32_t i = 0; i < cfg_.incastBatchRefs; ++i) {
      pending_.push_back(
          {{pid, victimAddr(victim, i % span), false}, tenant, incastNext_, burst});
    }
    incastNext_ += cfg_.incastPeriodCycles;
    ++incastBatch_;
    return;
  }

  const std::uint64_t arrival = advanceClock();
  const bool burst = inBurst(arrival);

  // Hotspot steps behave like sharing-intensive steps but on the single hot
  // page: read the block from its previous writer (c2c), then update it.
  if (cfg_.hotFrac > 0.0 && rng_.chance(cfg_.hotFrac)) {
    const auto block = static_cast<std::uint32_t>(rng_.below(cfg_.hotBlocks));
    NodeId actor = pid;
    if (cfg_.pinnedPid < 0 && hotOwner_[block] == actor) actor = (actor + 1) % cfg_.numProcs;
    const std::uint32_t tenant = pickTenant();
    pending_.push_back({{actor, hotAddr(block), false}, tenant, arrival, burst});
    pending_.push_back({{actor, hotAddr(block), true}, tenant, arrival, burst});
    hotOwner_[block] = actor;
    return;
  }

  if (rng_.chance(cfg_.sharedFrac)) {
    // Sharing-intensive step (Durbhakula): read the shared block — a c2c
    // transfer from its previous writer — then update it, handing dirty
    // ownership to this node. Prefer a non-owner so the block keeps moving
    // (on a pinned stream the handoff happens across node streams instead:
    // every node's model touches the same shared segment).
    auto block = static_cast<std::uint32_t>(sharedZipf_.sample(rng_));
    NodeId actor = pid;
    if (cfg_.pinnedPid < 0 && sharedOwner_[block] == actor) actor = (actor + 1) % cfg_.numProcs;
    // Shared traffic is attributed to the tenant that issued it.
    const std::uint32_t tenant = pickTenant();
    pending_.push_back({{actor, sharedAddr(block), false}, tenant, arrival, burst});
    pending_.push_back({{actor, sharedAddr(block), true}, tenant, arrival, burst});
    sharedOwner_[block] = actor;
    return;
  }

  // Jain-style temporal locality: with localityFrac, re-reference a block
  // from this node's recent window at a geometrically distributed stack
  // distance (distance 0 = most recent, halving mass per step back).
  if (!recent_[pid].empty() && rng_.chance(cfg_.localityFrac)) {
    const std::vector<RecentEntry>& ring = recent_[pid];
    std::uint32_t dist = 0;
    while (dist + 1 < ring.size() && rng_.chance(0.5)) ++dist;
    const std::uint32_t head = recentHead_[pid];
    const auto size = static_cast<std::uint32_t>(ring.size());
    const RecentEntry& e = ring[(head + size - 1 - dist) % size];
    pending_.push_back({{pid, e.addr, rng_.chance(cfg_.writeFrac)}, e.tenant, arrival, burst});
    return;
  }

  const std::uint32_t tenant = pickTenant();
  const std::uint32_t key = pickKey(tenant);
  const Addr addr = tenantAddr(tenant, key);
  rememberKey(pid, addr, tenant);
  pending_.push_back({{pid, addr, rng_.chance(cfg_.writeFrac)}, tenant, arrival, burst});
}

bool TrafficModel::nextRef(TrafficRef& out) {
  if (emitted_ >= cfg_.refs) return false;
  while (pendingIdx_ >= pending_.size()) synthesizeStep();
  out = pending_[pendingIdx_++];
  ++emitted_;
  return true;
}

bool TrafficModel::next(TraceRecord& out) {
  TrafficRef r;
  if (!nextRef(r)) return false;
  out = r.rec;
  return true;
}

}  // namespace dresar
