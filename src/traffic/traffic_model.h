// Multi-tenant OLTP/KV traffic models (ROADMAP "production-scale traffic
// scenarios"). A TrafficModel is a RefStream that synthesizes the reference
// stream of a consolidated commercial machine — many tenants, each with its
// own Zipf-skewed key space, served by stateless frontends on every node —
// without materializing a single record, so "millions of users" (billions of
// references) costs O(tenant footprint) memory.
//
// Ingredients, each behind a TrafficConfig knob:
//   * Per-tenant key popularity: Zipf(skew) over keysPerTenant blocks, with
//     tenant load itself Zipf(tenantSkew)-distributed (a few hot tenants).
//   * Arrival process: an exponential-interarrival clock modulated by a
//     diurnal square wave (steadyCycles of 1x load, then burstCycles at
//     burstMultiplier x) — the MMPP-style on/off process whose burst windows
//     the tail metrics report on.
//   * Mix: writeFrac (read-mostly vs write-heavy; see TrafficConfig::applyMix).
//   * Hot-key migration: every migrationPeriodRefs references the Zipf rank
//     ladder rotates to a different slice of each tenant's key space AND the
//     hot-tenant ranking rotates across tenants, so yesterday's hot set goes
//     cold (cache/switch-directory churn the fixed TPC streams never show).
//   * Sharing-intensive accesses per Durbhakula (PAPERS.md): sharedFrac of
//     steps are migratory read+update pairs on a cross-tenant shared segment,
//     handing dirty ownership between nodes — the c2c traffic that makes
//     switch directories pay off.
//   * Jain-style address locality (DEC-TR-592, PAPERS.md): localityFrac of
//     key picks re-reference a recently-touched block, drawn from a per-node
//     LRU window with geometrically decaying stack distance.
//
// RNG stream discipline (see DESIGN.md): one SplitMix64 stream per model
// instance, seeded from (cfg.seed, cfg.streamId). The global stream
// (streamId = 0) drives trace-driven runs; the event-driven workload gives
// node p the per-node stream (streamId = p + 1), so per-node streams are
// mutually independent and every run is reproducible from cfg alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/ref_stream.h"

namespace dresar {

struct TrafficConfig;

/// Where the synthesized blocks live. The default places tenant arenas and
/// the shared segment in fixed, disjoint high regions (trace-driven runs);
/// the event-driven workload substitutes AddressSpace allocations.
struct TrafficLayout {
  std::vector<Addr> tenantBases;  ///< one arena base per tenant
  Addr sharedBase = 0;
  /// One page homed at cfg.hotNode (hotspot profile); 0 = absent.
  Addr hotBase = 0;
  /// One page homed at each node (incast victims); empty = absent.
  std::vector<Addr> victimBases;

  /// Disjoint fixed regions, page-interleaved across homes like the TPC
  /// generators' arenas (tpc_gen.cpp region bases).
  static TrafficLayout fixed(std::uint32_t tenants);
  /// fixed() plus hot/victim pages placed by cfg.pageBytes/numProcs
  /// arithmetic so their round-robin homes land where the profile wants.
  static TrafficLayout fixedFor(const TrafficConfig& cfg);
};

struct TrafficConfig {
  std::string name = "oltp";      ///< profile label ("oltp" / "kv")
  std::uint64_t refs = 1'000'000;
  std::uint32_t numProcs = 16;
  std::uint32_t lineBytes = 32;
  // Tenancy.
  std::uint32_t tenants = 4;
  std::uint32_t keysPerTenant = 20'000;  ///< footprint, in blocks
  double skew = 0.9;        ///< Zipf exponent over each tenant's keys
  double tenantSkew = 0.6;  ///< Zipf exponent over tenant load
  // Mix.
  double writeFrac = 0.1;   ///< probability a plain access is a write
  // Sharing (Durbhakula) — migratory read+update pairs on a shared segment.
  double sharedFrac = 0.05;
  std::uint32_t sharedBlocks = 4'000;
  double sharedSkew = 0.5;
  // Locality (Jain) — re-reference a recently-touched block.
  double localityFrac = 0.2;
  std::uint32_t localityWindow = 16;  ///< per-node LRU window, in blocks
  // Arrival process (cycles of the model's arrival clock).
  std::uint32_t meanGapCycles = 40;   ///< mean interarrival, steady phase
  double burstMultiplier = 1.0;       ///< burst-phase load boost (1 = none)
  std::uint64_t steadyCycles = 80'000;  ///< steady window per diurnal period
  std::uint64_t burstCycles = 20'000;   ///< burst window per diurnal period
  // Hot-key migration; 0 disables drift.
  std::uint64_t migrationPeriodRefs = 0;
  // Hotspot (congestion lab): hotFrac of steps are migratory read+update
  // pairs on a single page homed at hotNode, so every request leg converges
  // on one home memory and the c2c replies concentrate above it — the
  // traffic pattern adaptive turnaround routing exists for. 0 disables.
  double hotFrac = 0.0;
  std::uint32_t hotNode = 0;
  std::uint32_t hotBlocks = 64;  ///< hot-set size; must fit one page
  // Incast (congestion lab): every incastPeriodCycles of the arrival clock,
  // each node's stream issues a synchronized batch of incastBatchRefs reads
  // into one rotating victim's page — fan-in barrier bursts. 0 disables.
  std::uint32_t incastPeriodCycles = 0;
  std::uint32_t incastBatchRefs = 0;
  /// Offered-load scale: arrival rate multiplier (interarrival gaps divide
  /// by this), the x-axis of saturation-throughput curves. 1.0 = profile
  /// nominal and byte-identical to pre-knob output.
  double offeredLoad = 1.0;
  /// Round-robin interleaving grain, used to place hot/victim pages. Must
  /// match the run's SystemConfig::pageBytes for homing to be real.
  std::uint32_t pageBytes = 4096;
  // Seeding (see RNG stream discipline above).
  std::uint64_t seed = 0x7ea'7a991c;
  std::uint32_t streamId = 0;  ///< 0 = global stream; p+1 = node p's stream
  /// -1 multiplexes all processors onto one stream (trace-driven global
  /// stream); >= 0 pins every emitted reference to that node (event-driven
  /// per-node streams, where each node pulls its own model).
  std::int32_t pinnedPid = -1;

  /// OLTP profile: row reads/updates, moderate write fraction, hot rows
  /// migrating between frontends, daily burst windows.
  static TrafficConfig oltp(std::uint64_t refs);
  /// KV-cache profile: larger, colder key space, read-dominated, stronger
  /// key skew, less cross-tenant sharing.
  static TrafficConfig kv(std::uint64_t refs);
  /// Hotspot congestion profile: OLTP base with half the steps hammering
  /// one hot page homed at node 0 (see hotFrac above).
  static TrafficConfig hotspot(std::uint64_t refs);
  /// Incast congestion profile: OLTP base plus periodic synchronized
  /// fan-in bursts at a rotating victim (see incastPeriodCycles above).
  static TrafficConfig incast(std::uint64_t refs);
  /// Profile by registry name ("oltp" / "kv" / "hotspot" / "incast");
  /// throws on unknown names.
  static TrafficConfig byName(const std::string& name, std::uint64_t refs);

  /// Apply a mix cell: "readmostly" keeps the profile's write fraction,
  /// "writeheavy" raises it to 0.4. Throws on unknown names.
  void applyMix(const std::string& mix);

  /// Collect a description of every violated invariant; empty = valid.
  [[nodiscard]] std::vector<std::string> validationErrors() const;
  /// Throws std::invalid_argument listing ALL violations at once.
  void validate() const;
};

/// True for names the traffic registry knows ("oltp", "kv").
[[nodiscard]] bool isTrafficWorkload(const std::string& name);
/// True for valid mix cells ("readmostly", "writeheavy").
[[nodiscard]] bool isTrafficMix(const std::string& mix);

/// One synthesized reference plus the metadata the tail metrics key on.
struct TrafficRef {
  TraceRecord rec;
  std::uint32_t tenant = 0;
  std::uint64_t arrivalCycle = 0;
  bool burst = false;  ///< arrival fell inside a burst window
};

class TrafficModel final : public RefStream {
 public:
  explicit TrafficModel(const TrafficConfig& cfg);
  TrafficModel(const TrafficConfig& cfg, TrafficLayout layout);

  /// Full-fidelity pull: record + tenant/arrival/phase metadata.
  bool nextRef(TrafficRef& out);
  /// RefStream: the record alone.
  bool next(TraceRecord& out) override;

  [[nodiscard]] const TrafficConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  /// Arrival-clock cycles elapsed so far, split by phase (burst-window
  /// occupancy denominators).
  [[nodiscard]] std::uint64_t burstCyclesElapsed() const { return burstElapsed_; }
  [[nodiscard]] std::uint64_t steadyCyclesElapsed() const { return steadyElapsed_; }

  /// Address helpers (tests reason about regions through these).
  [[nodiscard]] Addr tenantAddr(std::uint32_t tenant, std::uint32_t key) const;
  [[nodiscard]] Addr sharedAddr(std::uint32_t block) const;
  [[nodiscard]] Addr hotAddr(std::uint32_t block) const;
  [[nodiscard]] Addr victimAddr(std::uint32_t victim, std::uint32_t block) const;

 private:
  void synthesizeStep();
  [[nodiscard]] bool inBurst(std::uint64_t cycle) const;
  /// Advance the arrival clock by one interarrival gap and return the new
  /// arrival instant, accumulating per-phase elapsed cycles.
  std::uint64_t advanceClock();
  /// Drift epoch at the current emission count (0 when migration disabled).
  [[nodiscard]] std::uint64_t driftEpoch() const;
  std::uint32_t pickTenant();
  std::uint32_t pickKey(std::uint32_t tenant);
  void rememberKey(NodeId pid, Addr addr, std::uint32_t tenant);

  /// One slot of a per-node locality window (tenant kept so re-references
  /// stay attributed to the right tenant's counters).
  struct RecentEntry {
    Addr addr = 0;
    std::uint32_t tenant = 0;
  };

  TrafficConfig cfg_;
  TrafficLayout layout_;
  Rng rng_;
  ZipfSampler tenantZipf_;
  ZipfSampler keyZipf_;
  ZipfSampler sharedZipf_;
  std::vector<NodeId> sharedOwner_;  ///< last writer per shared block
  std::vector<NodeId> hotOwner_;     ///< last writer per hot block
  std::vector<std::vector<RecentEntry>> recent_;  ///< per-node LRU rings
  std::vector<std::uint32_t> recentHead_;
  std::uint64_t emitted_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t incastNext_ = 0;   ///< next batch deadline (0 = disabled)
  std::uint64_t incastBatch_ = 0;  ///< batches emitted so far (victim rotor)
  std::uint64_t burstElapsed_ = 0;
  std::uint64_t steadyElapsed_ = 0;
  std::vector<TrafficRef> pending_;  ///< refs queued by the current step
  std::size_t pendingIdx_ = 0;
};

}  // namespace dresar
