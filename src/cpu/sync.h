// Synchronization primitives for workload kernels.
//
// HwBarrier is a constant-cost simulator-level barrier (default for the
// scientific kernels, see DESIGN.md substitution #4). SpinLock and
// SenseBarrier are built on protocol-visible memory operations and generate
// real coherence traffic; tests use them to stress migratory c2c sharing.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/event_queue.h"
#include "common/types.h"
#include "cpu/context.h"
#include "cpu/task.h"

namespace dresar {

/// Hardware barrier: all participants resume `latency` cycles after the last
/// arrival. No memory traffic.
class HwBarrier {
 public:
  HwBarrier(EventQueue& eq, std::uint32_t participants, Cycle latency)
      : eq_(eq), participants_(participants), latency_(latency) {}

  auto arrive() {
    struct Awaiter {
      HwBarrier& b;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        b.waiting_.push_back(h);
        if (b.waiting_.size() == b.participants_) {
          auto batch = std::move(b.waiting_);
          b.waiting_.clear();
          ++b.episodes_;
          for (auto w : batch) {
            b.eq_.scheduleAfter(b.latency_, [w] { w.resume(); });
          }
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  [[nodiscard]] std::uint64_t episodes() const { return episodes_; }

 private:
  EventQueue& eq_;
  std::uint32_t participants_;
  Cycle latency_;
  std::vector<std::coroutine_handle<>> waiting_;
  std::uint64_t episodes_ = 0;
};

/// Test-and-test-and-set spin lock over a simulated cache line. The value
/// lives in this object; mutual exclusion is enforced by M-state ownership —
/// the code after an rmw completes runs atomically at simulated time.
class SpinLock {
 public:
  SpinLock(Addr lockAddr, Cycle backoff = 32) : addr_(lockAddr), backoff_(backoff) {}

  SimTask acquire(ThreadContext& ctx) {
    for (;;) {
      co_await ctx.rmw(addr_);  // obtain M state (atomic test&set window)
      if (!held_) {
        held_ = true;
        co_return;
      }
      ++contended_;
      co_await ctx.delay(backoff_);
    }
  }

  SimTask release(ThreadContext& ctx) {
    co_await ctx.rmw(addr_);
    held_ = false;
  }

  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] std::uint64_t contentionEvents() const { return contended_; }
  [[nodiscard]] Addr addr() const { return addr_; }

 private:
  Addr addr_;
  Cycle backoff_;
  bool held_ = false;
  std::uint64_t contended_ = 0;
};

/// Sense-reversing barrier over protocol-visible memory: an rmw-updated
/// arrival counter and a flag line that waiters poll with backoff. Generates
/// the c2c traffic a software barrier would.
class SenseBarrier {
 public:
  SenseBarrier(Addr counterAddr, Addr flagAddr, std::uint32_t participants, Cycle pollDelay = 64)
      : counterAddr_(counterAddr), flagAddr_(flagAddr), participants_(participants),
        pollDelay_(pollDelay) {}

  SimTask arrive(ThreadContext& ctx) {
    const std::uint64_t mySense = sense_ ^ 1u;
    co_await ctx.rmw(counterAddr_);
    ++count_;
    if (count_ == participants_) {
      count_ = 0;
      co_await ctx.rmw(flagAddr_);
      sense_ = mySense;  // release all waiters
      co_return;
    }
    while (sense_ != mySense) {
      co_await ctx.delay(pollDelay_);
      co_await ctx.load(flagAddr_);
    }
  }

 private:
  Addr counterAddr_;
  Addr flagAddr_;
  std::uint32_t participants_;
  Cycle pollDelay_;
  std::uint32_t count_ = 0;
  std::uint64_t sense_ = 0;
};

}  // namespace dresar
