// Synchronization primitives for workload kernels.
//
// HwBarrier is a constant-cost simulator-level barrier (default for the
// scientific kernels, see DESIGN.md substitution #4). SpinLock and
// SenseBarrier are built on protocol-visible memory operations and generate
// real coherence traffic; tests use them to stress migratory c2c sharing.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/scheduler.h"
#include "common/types.h"
#include "cpu/context.h"
#include "cpu/task.h"

namespace dresar {

/// Hardware barrier: all participants resume `latency` cycles after the last
/// arrival. No memory traffic.
///
/// Arrival bookkeeping lives on the owner scheduler's shard. A participant
/// arriving from that shard records inline (the only path at simThreads=1,
/// byte-identical to the pre-shard barrier); one arriving from another shard
/// posts its arrival through the kernel mailbox, and its resume is posted
/// back to its own shard — a coroutine only ever runs on the shard that owns
/// its node.
class HwBarrier {
 public:
  HwBarrier(Scheduler& owner, std::uint32_t participants, Cycle latency)
      : owner_(owner), participants_(participants), latency_(latency) {}

  auto arrive(ThreadContext& ctx) {
    struct Awaiter {
      HwBarrier& b;
      ThreadContext& ctx;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        Scheduler& from = ctx.sched();
        if (from.shard() == b.owner_.shard()) {
          b.record(h, from.shard());
        } else {
          b.ctxArrive(from, h);
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, ctx};
  }

  [[nodiscard]] std::uint64_t episodes() const { return episodes_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    ShardId shard;
  };

  void ctxArrive(Scheduler& from, std::coroutine_handle<> h) {
    from.post(owner_.shard(), from.now(),
              [this, h, s = from.shard()] { record(h, s); });
  }

  /// Runs on the owner shard only.
  void record(std::coroutine_handle<> h, ShardId shard) {
    waiting_.push_back(Waiter{h, shard});
    if (waiting_.size() == participants_) {
      auto batch = std::move(waiting_);
      waiting_.clear();
      ++episodes_;
      const Cycle when = owner_.now() + latency_;
      for (const Waiter& w : batch) {
        owner_.post(w.shard, when, [h = w.h] { h.resume(); });
      }
    }
  }

  Scheduler& owner_;
  std::uint32_t participants_;
  Cycle latency_;
  std::vector<Waiter> waiting_;
  std::uint64_t episodes_ = 0;
};

/// Test-and-test-and-set spin lock over a simulated cache line. The value
/// lives in this object; mutual exclusion is enforced by M-state ownership —
/// the code after an rmw completes runs atomically at simulated time.
class SpinLock {
 public:
  SpinLock(Addr lockAddr, Cycle backoff = 32) : addr_(lockAddr), backoff_(backoff) {}

  SimTask acquire(ThreadContext& ctx) {
    for (;;) {
      co_await ctx.rmw(addr_);  // obtain M state (atomic test&set window)
      if (!held_) {
        held_ = true;
        co_return;
      }
      ++contended_;
      co_await ctx.delay(backoff_);
    }
  }

  SimTask release(ThreadContext& ctx) {
    co_await ctx.rmw(addr_);
    held_ = false;
  }

  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] std::uint64_t contentionEvents() const { return contended_; }
  [[nodiscard]] Addr addr() const { return addr_; }

 private:
  Addr addr_;
  Cycle backoff_;
  bool held_ = false;
  std::uint64_t contended_ = 0;
};

/// Sense-reversing barrier over protocol-visible memory: an rmw-updated
/// arrival counter and a flag line that waiters poll with backoff. Generates
/// the c2c traffic a software barrier would.
class SenseBarrier {
 public:
  SenseBarrier(Addr counterAddr, Addr flagAddr, std::uint32_t participants, Cycle pollDelay = 64)
      : counterAddr_(counterAddr), flagAddr_(flagAddr), participants_(participants),
        pollDelay_(pollDelay) {}

  SimTask arrive(ThreadContext& ctx) {
    const std::uint64_t mySense = sense_.load(std::memory_order_relaxed) ^ 1u;
    co_await ctx.rmw(counterAddr_);
    ++count_;
    if (count_ == participants_) {
      count_ = 0;
      co_await ctx.rmw(flagAddr_);
      sense_.store(mySense, std::memory_order_relaxed);  // release all waiters
      co_return;
    }
    while (sense_.load(std::memory_order_relaxed) != mySense) {
      co_await ctx.delay(pollDelay_);
      co_await ctx.load(flagAddr_);
    }
  }

 private:
  Addr counterAddr_;
  Addr flagAddr_;
  std::uint32_t participants_;
  Cycle pollDelay_;
  std::uint32_t count_ = 0;
  /// Relaxed atomic: waiters on other shards poll it between simulated
  /// loads; the protocol's fill messages provide the actual ordering, the
  /// atomic just keeps the host-level poll race TSan-clean.
  std::atomic<std::uint64_t> sense_{0};
};

}  // namespace dresar
