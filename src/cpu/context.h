// Per-processor execution context: the bridge between workload coroutines
// and the cache controller. Models a 4-issue in-order core under release
// consistency: loads block (co_await returns when data arrives), stores
// retire into the write buffer without stalling, fences drain the buffer.
#pragma once

#include <coroutine>
#include <cstdint>

#include "common/config.h"
#include "common/scheduler.h"
#include "common/types.h"
#include "coherence/cache_controller.h"

namespace dresar {

class ThreadContext {
 public:
  ThreadContext(NodeId pid, const SystemConfig& cfg, Scheduler& sched, CacheController& cache)
      : pid_(pid), cfg_(cfg), sched_(sched), cache_(cache) {}

  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  [[nodiscard]] NodeId id() const { return pid_; }
  [[nodiscard]] Scheduler& sched() { return sched_; }
  [[nodiscard]] Cycle now() const { return sched_.now(); }
  [[nodiscard]] CacheController& cache() { return cache_; }

  // ---- Awaitable operations -------------------------------------------

  /// Blocking load; await_resume yields the ReadResult.
  auto load(Addr a) {
    struct Awaiter {
      ThreadContext& ctx;
      Addr a;
      ReadResult result;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        ctx.cache_.cpuRead(a, [this, h](const ReadResult& r) {
          result = r;
          ctx.noteLoad(r);
          h.resume();
        });
      }
      ReadResult await_resume() const noexcept { return result; }
    };
    return Awaiter{*this, a, {}};
  }

  /// Store under release consistency; resumes when retired into the write
  /// buffer (usually after one L1 cycle).
  auto store(Addr a) {
    struct Awaiter {
      ThreadContext& ctx;
      Addr a;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        ctx.stores_++;
        ctx.cache_.cpuWrite(a, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, a};
  }

  /// Atomic read-modify-write; resumes holding the line in M state. The
  /// code immediately after the co_await runs atomically with respect to
  /// every other simulated processor: M-state ownership is exclusive under
  /// the protocol, and cross-shard ownership transfer flows through kernel
  /// mailboxes, so the next owner's resume happens-after this update.
  auto rmw(Addr a) {
    struct Awaiter {
      ThreadContext& ctx;
      Addr a;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        ctx.rmws_++;
        ctx.cache_.cpuRmw(a, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, a};
  }

  /// Raw cycle delay.
  auto delay(Cycle cycles) {
    struct Awaiter {
      ThreadContext& ctx;
      Cycle cycles;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        ctx.sched_.scheduleIn(cycles, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, cycles};
  }

  /// Non-memory work: `instructions` retire at the configured issue width.
  auto compute(std::uint64_t instructions) {
    const Cycle cycles = (instructions + cfg_.issueWidth - 1) / cfg_.issueWidth;
    return delay(cycles == 0 ? 1 : cycles);
  }

  /// Release fence: resumes when the write buffer has drained.
  auto fence() {
    struct Awaiter {
      ThreadContext& ctx;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        ctx.cache_.drainWrites([h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  // ---- Accounting --------------------------------------------------------
  [[nodiscard]] std::uint64_t loads() const { return loads_; }
  [[nodiscard]] std::uint64_t stores() const { return stores_; }
  [[nodiscard]] std::uint64_t rmws() const { return rmws_; }
  [[nodiscard]] std::uint64_t readStallCycles() const { return readStall_; }

  void markDone(Cycle c) {
    done_ = true;
    finish_ = c;
  }
  [[nodiscard]] bool isDone() const { return done_; }
  [[nodiscard]] Cycle finishTime() const { return finish_; }

 private:
  void noteLoad(const ReadResult& r) {
    ++loads_;
    readStall_ += r.latency;
  }

  NodeId pid_;
  const SystemConfig& cfg_;
  Scheduler& sched_;
  CacheController& cache_;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t rmws_ = 0;
  std::uint64_t readStall_ = 0;
  bool done_ = false;
  Cycle finish_ = 0;
};

}  // namespace dresar
