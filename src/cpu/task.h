// Minimal coroutine task for execution-driven simulation. Workload kernels
// are C++20 coroutines that co_await simulated memory operations; the event
// queue resumes them when the operation completes at simulated time, so the
// instruction interleaving is timing-driven exactly as in an execution-driven
// simulator like RSIM.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace dresar {

class SimTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    SimTask get_return_object() {
      return SimTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  SimTask(SimTask&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  SimTask& operator=(SimTask&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  /// Begin executing a top-level task (runs until its first suspension).
  void start() { h_.resume(); }

  [[nodiscard]] bool done() const { return !h_ || h_.done(); }
  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }

  /// Rethrows any exception that escaped the coroutine body.
  void rethrowIfFailed() const {
    if (h_ && h_.done() && h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

  // Awaitable: `co_await subtask()` runs the child to completion, then
  // resumes the parent (symmetric transfer, no event-queue round trip).
  bool await_ready() const noexcept { return done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() const { rethrowIfFailed(); }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace dresar
