#include "interconnect/topology.h"

#include <stdexcept>
#include <string>

namespace dresar {

std::uint32_t Butterfly::stagesFor(std::uint32_t numNodes, std::uint32_t switchRadix) {
  return butterflyStages(numNodes, switchRadix);
}

Butterfly::Butterfly(std::uint32_t numNodes, std::uint32_t switchRadix)
    : numNodes_(numNodes), half_(switchRadix / 2) {
  if (switchRadix < 2 || switchRadix % 2 != 0)
    throw std::invalid_argument("Butterfly: radix must be even and >= 2");
  if (half_ == 0 || numNodes == 0 || numNodes % half_ != 0)
    throw std::invalid_argument("Butterfly: numNodes must be a multiple of radix/2");
  perStage_ = numNodes / half_;
  stages_ = stagesFor(numNodes, switchRadix);
  if (stages_ == 0)
    throw std::invalid_argument(
        "Butterfly: numNodes=" + std::to_string(numNodes) + " with radix " +
        std::to_string(switchRadix) +
        " does not tile a k-stage BMIN; supported sizes are m*(radix/2)^(k-1) for k >= 2 and"
        " 1 <= m <= radix/2 (radix 8: 4, 8, 12, 16, 32, 48, 64, 128, ...)");
  halfPow_.resize(stages_);
  halfPow_[0] = 1;
  for (std::uint32_t e = 1; e < stages_; ++e) halfPow_[e] = halfPow_[e - 1] * half_;
}

bool Butterfly::canReachMem(SwitchId from, NodeId m) const {
  return hi(from.stage, from.index) == hi(from.stage, m / half_);
}

Butterfly::TurnSpan Butterfly::turnSpan(std::uint32_t s, std::uint32_t cs,
                                        std::uint32_t cq) const {
  // Lowest stage whose preserved low digits already agree: climbing from
  // stage s rewrites only positions >= k-1-t, so the pair must share
  // everything below. lo(k-1, .) == 0, so t always exists.
  std::uint32_t t = s;
  while (lo(t, cs) != lo(t, cq)) ++t;
  // Free digits between the fixed high part and the shared low part select
  // the turnaround switch; the symmetric (cs+cq) spread keeps the default
  // choice deterministic and identical for both directions of a pair.
  const std::uint32_t w = valuesAbove(t) / valuesAbove(s);
  return TurnSpan{t, w, (cs + cq) % w};
}

void Butterfly::appendTurnaround(Route& r, std::uint32_t s, std::uint32_t cs,
                                 std::uint32_t cq, std::uint32_t f) const {
  const TurnSpan span = turnSpan(s, cs, cq);
  const std::uint32_t t = span.t;
  if (f == kAutoDigit) f = span.baseline;
  if (f >= span.width)
    throw std::out_of_range("Butterfly: turnaround digit out of window");
  const std::uint32_t y =
      hi(s, cs) * pow(stages_ - 1 - s) + f * pow(stages_ - 1 - t) + lo(t, cs);
  for (std::uint32_t j = s; j <= t; ++j) {
    const std::uint32_t up = hi(j, y) * pow(stages_ - 1 - j) + lo(j, cs);
    r.push_back(Hop::atSwitch(SwitchId{j, up}));
  }
  for (std::uint32_t j = t; j-- > 0;) {
    const std::uint32_t down = hi(j, y) * pow(stages_ - 1 - j) + lo(j, cq);
    r.push_back(Hop::atSwitch(SwitchId{j, down}));
  }
}

Route Butterfly::route(Endpoint src, Endpoint dst) const {
  if (src.node >= numNodes_ || dst.node >= numNodes_)
    throw std::out_of_range("Butterfly::route: node out of range");
  Route r;
  if (src.kind == EndpointKind::Proc && dst.kind == EndpointKind::Mem) {
    // Forward: each stage-j switch takes its high digits from the
    // destination root and its low digits from the source leaf.
    const std::uint32_t cs = src.node / half_;
    const std::uint32_t cd = dst.node / half_;
    for (std::uint32_t j = 0; j < stages_; ++j) {
      r.push_back(Hop::atSwitch(
          SwitchId{j, hi(j, cd) * pow(stages_ - 1 - j) + lo(j, cs)}));
    }
  } else if (src.kind == EndpointKind::Mem && dst.kind == EndpointKind::Proc) {
    // Backward: mirror of the forward path.
    const std::uint32_t cs = dst.node / half_;
    const std::uint32_t cd = src.node / half_;
    for (std::uint32_t j = stages_; j-- > 0;) {
      r.push_back(Hop::atSwitch(
          SwitchId{j, hi(j, cd) * pow(stages_ - 1 - j) + lo(j, cs)}));
    }
  } else if (src.kind == EndpointKind::Proc && dst.kind == EndpointKind::Proc) {
    // Up to the lowest common ancestor stage, back down (same cluster:
    // turnaround at the shared leaf switch).
    appendTurnaround(r, 0, src.node / half_, dst.node / half_);
  } else {
    throw std::invalid_argument("Butterfly::route: mem->mem traffic is not defined");
  }
  r.push_back(Hop::deliver(dst));
  return r;
}

Route Butterfly::routeFromSwitch(SwitchId from, Endpoint dst) const {
  if (dst.node >= numNodes_) throw std::out_of_range("Butterfly::routeFromSwitch: node range");
  Route r;
  if (dst.kind == EndpointKind::Proc) {
    appendTurnaround(r, from.stage, from.index, dst.node / half_);
    // appendTurnaround includes `from` itself as the first hop; the message
    // is already there.
    r.erase(r.begin());
  } else {
    if (!canReachMem(from, dst.node))
      throw std::invalid_argument("Butterfly: switch cannot reach a foreign memory subtree");
    const std::uint32_t cd = dst.node / half_;
    for (std::uint32_t j = from.stage + 1; j < stages_; ++j) {
      r.push_back(Hop::atSwitch(
          SwitchId{j, hi(j, cd) * pow(stages_ - 1 - j) + lo(j, from.index)}));
    }
  }
  r.push_back(Hop::deliver(dst));
  return r;
}

TurnaroundChoices Butterfly::turnaround(Endpoint src, Endpoint dst) const {
  if (src.kind == EndpointKind::Proc && dst.kind == EndpointKind::Proc &&
      src.node < numNodes_ && dst.node < numNodes_) {
    const TurnSpan span = turnSpan(0, src.node / half_, dst.node / half_);
    return TurnaroundChoices{span.width, span.baseline};
  }
  return TurnaroundChoices{};
}

TurnaroundChoices Butterfly::turnaroundFromSwitch(SwitchId from, Endpoint dst) const {
  if (dst.kind == EndpointKind::Proc && dst.node < numNodes_) {
    const TurnSpan span = turnSpan(from.stage, from.index, dst.node / half_);
    return TurnaroundChoices{span.width, span.baseline};
  }
  return TurnaroundChoices{};
}

Route Butterfly::routeChoice(Endpoint src, Endpoint dst, std::uint32_t f) const {
  if (src.kind == EndpointKind::Proc && dst.kind == EndpointKind::Proc) {
    if (src.node >= numNodes_ || dst.node >= numNodes_)
      throw std::out_of_range("Butterfly::route: node out of range");
    Route r;
    appendTurnaround(r, 0, src.node / half_, dst.node / half_, f);
    r.push_back(Hop::deliver(dst));
    return r;
  }
  // Unique-route pairs: only the degenerate choice exists.
  if (f != 0) throw std::out_of_range("Butterfly::routeChoice: route is unique");
  return route(src, dst);
}

Route Butterfly::routeFromSwitchChoice(SwitchId from, Endpoint dst, std::uint32_t f) const {
  if (dst.kind == EndpointKind::Proc) {
    if (dst.node >= numNodes_)
      throw std::out_of_range("Butterfly::routeFromSwitch: node range");
    Route r;
    appendTurnaround(r, from.stage, from.index, dst.node / half_, f);
    // appendTurnaround includes `from` itself as the first hop; the message
    // is already there.
    r.erase(r.begin());
    r.push_back(Hop::deliver(dst));
    return r;
  }
  if (f != 0) throw std::out_of_range("Butterfly::routeFromSwitchChoice: route is unique");
  return routeFromSwitch(from, dst);
}

std::vector<SwitchId> Butterfly::forwardPath(NodeId proc, NodeId mem) const {
  const std::uint32_t cs = proc / half_;
  const std::uint32_t cd = mem / half_;
  std::vector<SwitchId> path;
  path.reserve(stages_);
  for (std::uint32_t j = 0; j < stages_; ++j) {
    path.push_back(SwitchId{j, hi(j, cd) * pow(stages_ - 1 - j) + lo(j, cs)});
  }
  return path;
}

}  // namespace dresar
