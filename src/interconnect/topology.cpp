#include "interconnect/topology.h"

#include <stdexcept>

namespace dresar {

Butterfly::Butterfly(std::uint32_t numNodes, std::uint32_t switchRadix)
    : numNodes_(numNodes), half_(switchRadix / 2) {
  if (switchRadix < 2 || switchRadix % 2 != 0)
    throw std::invalid_argument("Butterfly: radix must be even and >= 2");
  if (half_ == 0 || numNodes % half_ != 0)
    throw std::invalid_argument("Butterfly: numNodes must be a multiple of radix/2");
  perStage_ = numNodes / half_;
  if (perStage_ > half_)
    throw std::invalid_argument(
        "Butterfly: numNodes exceeds (radix/2)^2; a 2-stage BMIN cannot connect it");
}

Route Butterfly::route(Endpoint src, Endpoint dst) const {
  if (src.node >= numNodes_ || dst.node >= numNodes_)
    throw std::out_of_range("Butterfly::route: node out of range");
  Route r;
  if (src.kind == EndpointKind::Proc && dst.kind == EndpointKind::Mem) {
    // Forward: leaf switch, then the destination memory's root switch.
    r.push_back(Hop::atSwitch(procSwitch(src.node)));
    r.push_back(Hop::atSwitch(memSwitch(dst.node)));
  } else if (src.kind == EndpointKind::Mem && dst.kind == EndpointKind::Proc) {
    // Backward: mirror of the forward path.
    r.push_back(Hop::atSwitch(memSwitch(src.node)));
    r.push_back(Hop::atSwitch(procSwitch(dst.node)));
  } else if (src.kind == EndpointKind::Proc && dst.kind == EndpointKind::Proc) {
    const SwitchId s0 = procSwitch(src.node);
    const SwitchId d0 = procSwitch(dst.node);
    if (s0 == d0) {
      // Same cluster: turnaround at the shared leaf switch.
      r.push_back(Hop::atSwitch(s0));
    } else {
      // Up to a root switch, back down. Deterministic and symmetric root
      // choice so the pair always meets at the same switch.
      const std::uint32_t root = (s0.index + d0.index) % perStage_;
      r.push_back(Hop::atSwitch(s0));
      r.push_back(Hop::atSwitch(SwitchId{1, root}));
      r.push_back(Hop::atSwitch(d0));
    }
  } else {
    throw std::invalid_argument("Butterfly::route: mem->mem traffic is not defined");
  }
  r.push_back(Hop::deliver(dst));
  return r;
}

Route Butterfly::routeFromSwitch(SwitchId from, Endpoint dst) const {
  if (dst.node >= numNodes_) throw std::out_of_range("Butterfly::routeFromSwitch: node range");
  Route r;
  if (dst.kind == EndpointKind::Proc) {
    const SwitchId leaf = procSwitch(dst.node);
    if (from.stage == 1) {
      // Root switch: go down through the destination's leaf switch.
      r.push_back(Hop::atSwitch(leaf));
    } else if (!(from == leaf)) {
      // Leaf switch of a different cluster: up to a root, then down.
      const std::uint32_t root = (from.index + leaf.index) % perStage_;
      r.push_back(Hop::atSwitch(SwitchId{1, root}));
      r.push_back(Hop::atSwitch(leaf));
    }
    // from == leaf: deliver directly downward.
  } else {
    const SwitchId rootSw = memSwitch(dst.node);
    if (from.stage == 0) {
      r.push_back(Hop::atSwitch(rootSw));
    } else if (!(from == rootSw)) {
      throw std::invalid_argument("Butterfly: root switch cannot reach a foreign memory");
    }
  }
  r.push_back(Hop::deliver(dst));
  return r;
}

std::vector<SwitchId> Butterfly::forwardPath(NodeId proc, NodeId mem) const {
  return {procSwitch(proc), memSwitch(mem)};
}

}  // namespace dresar
