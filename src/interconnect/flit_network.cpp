#include "interconnect/flit_network.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "fault/injector.h"
#include "interconnect/routing.h"

namespace dresar {

namespace {
/// Pseudo-upstream id for a switch's own injection port (the paper's extra
/// input block that grows the crossbar to 10x4).
constexpr std::uint32_t kInjectUpstream = 0xFFFFFFu;
/// Same fixed routing-policy seed as the message-level Network.
constexpr std::uint64_t kRoutingSeed = 0xC0A9E5710B15ull;
}  // namespace

FlitNetwork::FlitNetwork(const NetworkConfig& cfg, std::uint32_t numNodes,
                         std::uint32_t lineBytes, SimKernel& kernel,
                         const NetworkHooks& hooks)
    : cfg_(cfg),
      numNodes_(numNodes),
      lineBytes_(lineBytes),
      sched_(kernel.scheduler(0)),
      topo_(numNodes, cfg.switchRadix),
      hooks_(hooks),
      routing_(makeRoutingPolicy(cfg.routing, kRoutingSeed)) {
  // The flit model steps a global per-cycle tick, so it cannot shard;
  // SystemConfig::validate rejects flitLevel with simThreads > 1.
  if (kernel.parallel())
    throw std::invalid_argument("FlitNetwork: flit-level model requires simThreads=1");
  if (hooks_.fault != nullptr && hooks_.fault->linkStall().active()) {
    const LinkStallSpec& s = hooks_.fault->linkStall();
    faultStallFlat_ = topo_.flat(SwitchId{s.stage, s.index});
  }
  StatRegistry& stats = kernel.registry(0);
  switches_.resize(topo_.totalSwitches());
  endpoints_.resize(2ull * numNodes_);
  for (std::size_t t = 0; t < kMsgTypeCount; ++t) {
    msgCounters_[t] =
        stats.counterHandle(std::string("net.msgs.") + toString(static_cast<MsgType>(t)));
  }
  flitsTransmitted_ = stats.counterHandle("flit.transmitted");
  flitGrants_ = stats.counterHandle("flit.grants");
  switchInjected_ = stats.counterHandle("net.switch_injected");
  sunkCounter_ = stats.counterHandle("net.sunk");
  latency_ = stats.samplerHandle("net.latency");
  // Telemetry geometry: occupancy tops out around radix * VCs * bufferFlits
  // per switch; lock holds can span a long wormhole chain under saturation.
  cong_.perSwitchCreditStalls.assign(topo_.totalSwitches(), 0);
  cong_.stageOccupancy.assign(topo_.numStages(), Sampler{});
  cong_.stageOccupancyHist.assign(topo_.numStages(),
                                  Histogram(Histogram::LogSpaced{1.0, 16}));
  cong_.lockHoldHist = Histogram(Histogram::LogSpaced{1.0, 24});
}

FlitNetwork::~FlitNetwork() = default;

FlitNetwork::Link& FlitNetwork::link(std::uint32_t from, std::uint32_t to) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  Link& l = links_[key];
  if (l.credits.empty()) {
    const std::uint32_t vcs = std::max(1u, cfg_.virtualChannels);
    // Credits only matter toward switch input buffers; endpoints sink freely.
    l.credits.assign(vcs, isSwitchVertex(to) ? cfg_.bufferFlits : 0xFFFFFFu);
  }
  return l;
}

void FlitNetwork::send(Message m) {
  if (m.id == 0) m.id = nextMsgId_++;
  m.birth = sched_.now();
  auto ms = std::allocate_shared<MsgState>(SharedArenaAllocator<MsgState>(msgArena_));
  ms->route = routeOf(m);
  ms->totalFlits = flitsOf(m);
  ms->birth = sched_.now();
  const std::uint32_t srcVertex = vertexOf(m.src);
  ms->msg = std::move(m);
  ++sent_;
  ++live_;
  ++msgCounters_[static_cast<std::size_t>(ms->msg.type)];
  endpoints_.at(srcVertex).sendQueue.push_back(std::move(ms));
  ensureTicking();
}

void FlitNetwork::ensureTicking() {
  if (ticking_) return;
  ticking_ = true;
  sched_.scheduleIn(1, [this] { tick(); });
}

void FlitNetwork::tick() {
  // Deterministic order: source NIs first, then switches by flat id.
  for (std::uint32_t v = 0; v < endpoints_.size(); ++v) tickSourceNi(v);
  for (std::uint32_t s = 0; s < switches_.size(); ++s) tickSwitch(2 * numNodes_ + s);
  if (live_ > 0) {
    sched_.scheduleIn(1, [this] { tick(); });
  } else {
    ticking_ = false;
  }
}

void FlitNetwork::tickSourceNi(std::uint32_t ev) {
  EndpointNi& ni = endpoints_[ev];
  if (ni.sendQueue.empty()) return;
  MsgPtr& ms = ni.sendQueue.front();
  const std::uint32_t to = [&] {
    const Hop& h = ms->route.front();
    return h.kind == Hop::Kind::Switch ? vertexOf(h.sw) : vertexOf(h.ep);
  }();
  Link& l = link(ev, to);
  const std::uint32_t vc = vcOf(ms->msg);
  if (l.nextFree > sched_.now() || l.credits[vc] == 0) {
    ++cong_.sourceCreditStalls;
    return;
  }
  Flit f{ms, ni.flitsSent};
  transmit(ev, to, f, /*extraDelay=*/0);
  ++ni.flitsSent;
  if (ni.flitsSent == ms->totalFlits) {
    ni.sendQueue.pop_front();
    ni.flitsSent = 0;
  }
}

void FlitNetwork::transmit(std::uint32_t from, std::uint32_t to, const Flit& f,
                           Cycle extraDelay) {
  Link& l = link(from, to);
  l.nextFree = sched_.now() + cfg_.linkCyclesPerFlit;
  const std::uint32_t vc = vcOf(f.ms->msg);
  if (isSwitchVertex(to)) {
    if (l.credits[vc] == 0) throw std::logic_error("FlitNetwork: transmit without credit");
    --l.credits[vc];
  }
  ++flitsTransmitted_;
  sched_.scheduleIn(cfg_.linkCyclesPerFlit + extraDelay,
                    [this, to, from, f] { arrive(to, from, f); });
}

void FlitNetwork::arrive(std::uint32_t atVertex, std::uint32_t fromVertex, Flit f) {
  if (!isSwitchVertex(atVertex)) {
    deliver(atVertex, f);
    return;
  }
  SwitchState& s = switches_[atVertex - 2 * numNodes_];
  // The head flit reaches each switch exactly once; that is the hop event.
  if (hooks_.tracer != nullptr && f.head() && f.ms->msg.txn != 0) {
    hooks_.tracer->record(f.ms->msg.txn, TxnEvent::SwitchHop, txnLegOf(f.ms->msg.type),
                          txnAtSwitch(atVertex - 2 * numNodes_), sched_.now());
  }
  const std::uint32_t vc = vcOf(f.ms->msg);
  s.inputs[inKey(fromVertex, vc)].fifo.push_back(std::move(f));
}

void FlitNetwork::deliver(std::uint32_t epVertex, const Flit& f) {
  if (!f.tail()) return;  // wormhole per-VC ordering: tail implies complete
  --live_;
  if (hooks_.fault != nullptr && FaultInjector::eligible(f.ms->msg)) {
    if (hooks_.fault->shouldDrop(f.ms->msg)) {
      DRESAR_LOG_TRACE("flit: fault drop %s", f.ms->msg.describe().c_str());
      return;
    }
    if (const Cycle d = hooks_.fault->deliveryDelay(f.ms->msg); d > 0) {
      sched_.scheduleIn(d, [this, epVertex, m = f.ms->msg] { deliverMsg(epVertex, m); });
      return;
    }
  }
  deliverMsg(epVertex, f.ms->msg);
}

void FlitNetwork::deliverMsg(std::uint32_t epVertex, const Message& m) {
  latency_.add(static_cast<double>(sched_.now() - m.birth));
  if (hooks_.sink == nullptr)
    throw std::logic_error("FlitNetwork: no delivery sink");
  const Endpoint ep =
      epVertex < numNodes_ ? procEp(epVertex) : memEp(epVertex - numNodes_);
  hooks_.sink->deliver(ep, m);
}

Route FlitNetwork::routeOf(const Message& m) {
  if (!routing_->adaptive()) return topo_.route(m.src, m.dst);
  const TurnaroundChoices tc = topo_.turnaround(m.src, m.dst);
  if (tc.width <= 1) return topo_.route(m.src, m.dst);
  const std::uint32_t srcVertex = vertexOf(m.src);
  const std::uint32_t vc = vcOf(m);
  const std::uint32_t f = routing_->choose(tc.width, tc.baseline, [&](std::uint32_t d) {
    return routeCongestion(topo_.routeChoice(m.src, m.dst, d), srcVertex, vc);
  });
  return topo_.routeChoice(m.src, m.dst, f);
}

Route FlitNetwork::spawnRouteOf(SwitchId from, const Message& m) {
  if (!routing_->adaptive()) return topo_.routeFromSwitch(from, m.dst);
  const TurnaroundChoices tc = topo_.turnaroundFromSwitch(from, m.dst);
  if (tc.width <= 1) return topo_.routeFromSwitch(from, m.dst);
  const std::uint32_t srcVertex = vertexOf(from);
  const std::uint32_t vc = vcOf(m);
  const std::uint32_t f = routing_->choose(tc.width, tc.baseline, [&](std::uint32_t d) {
    return routeCongestion(topo_.routeFromSwitchChoice(from, m.dst, d), srcVertex, vc);
  });
  return topo_.routeFromSwitchChoice(from, m.dst, f);
}

std::uint64_t FlitNetwork::routeCongestion(const Route& r, std::uint32_t srcVertex,
                                           std::uint32_t vc) {
  // Credit debt (flits parked in the downstream buffer) plus residual link
  // serialization along the candidate — the queueing an injected head flit
  // would stream into right now. Reads existing link state only; probing a
  // candidate must not materialize Link entries.
  std::uint64_t cost = 0;
  const Cycle now = sched_.now();
  std::uint32_t from = srcVertex;
  for (const Hop& h : r) {
    const std::uint32_t to =
        h.kind == Hop::Kind::Switch ? vertexOf(h.sw) : vertexOf(h.ep);
    const auto it = links_.find((static_cast<std::uint64_t>(from) << 32) | to);
    if (it != links_.end()) {
      const Link& l = it->second;
      if (l.nextFree > now) cost += l.nextFree - now;
      if (isSwitchVertex(to) && !l.credits.empty())
        cost += cfg_.bufferFlits - std::min(cfg_.bufferFlits, l.credits[vc]);
    }
    from = to;
  }
  return cost;
}

void FlitNetwork::grabLock(SwitchState& s, std::uint32_t output, std::uint64_t key) {
  s.outputLock[output] = key;
  s.lockSince.emplace(output, sched_.now());
}

void FlitNetwork::releaseLock(SwitchState& s, std::uint32_t output) {
  const auto it = s.lockSince.find(output);
  if (it != s.lockSince.end()) {
    const auto held = static_cast<double>(sched_.now() - it->second);
    cong_.lockHold.add(held);
    cong_.lockHoldHist.add(held);
    s.lockSince.erase(it);
  }
  s.outputLock.erase(output);
}

bool FlitNetwork::maybeSnoop(std::uint32_t sv, InputVc& in) {
  Flit& f = in.fifo.front();
  if (!f.head() || hooks_.snoop == nullptr) return !f.ms->sunk;
  const std::uint32_t flat = sv - 2 * numNodes_;
  // Key the mask by this switch's hop index on the route (a route never
  // revisits a switch), so 64 bits cover any geometry's switch count.
  std::size_t hopIdx = f.ms->route.size();
  for (std::size_t i = 0; i < f.ms->route.size(); ++i) {
    const Hop& h = f.ms->route[i];
    if (h.kind == Hop::Kind::Switch && vertexOf(h.sw) == sv) {
      hopIdx = i;
      break;
    }
  }
  if (hopIdx == f.ms->route.size())
    throw std::logic_error("FlitNetwork: snooping switch is not on the route");
  if (f.ms->snoopedMask & (1ull << hopIdx)) return !f.ms->sunk;
  f.ms->snoopedMask |= 1ull << hopIdx;
  std::vector<Message> spawn;
  const SnoopOutcome out =
      hooks_.snoop->onMessage(switchOf(sv), sched_.now(), f.ms->msg, spawn);
  for (auto& m : spawn) {
    if (m.id == 0) m.id = nextMsgId_++;
    m.birth = sched_.now();
    auto ms = std::allocate_shared<MsgState>(SharedArenaAllocator<MsgState>(msgArena_));
    ms->route = spawnRouteOf(switchOf(sv), m);
    ms->totalFlits = flitsOf(m);
    ms->birth = sched_.now();
    ms->msg = std::move(m);
    ++sent_;
    ++live_;
    ++msgCounters_[static_cast<std::size_t>(ms->msg.type)];
    ++switchInjected_;
    switches_[flat].injectQueue.push_back(std::move(ms));
  }
  if (!out.pass) {
    f.ms->sunk = true;
    ++sunk_;
    ++sunkCounter_;
    return false;
  }
  return true;
}

void FlitNetwork::tickSwitch(std::uint32_t sv) {
  const std::uint32_t flat = sv - 2 * numNodes_;
  SwitchState& s = switches_[flat];

  // Occupancy sample first, even on stalled ticks: a frozen switch's filling
  // buffers are exactly what the saturation telemetry should show.
  {
    std::uint64_t buffered = 0;
    for (const auto& [key, in] : s.inputs) buffered += in.fifo.size();
    const std::uint32_t stage = switchOf(sv).stage;
    cong_.stageOccupancy[stage].add(static_cast<double>(buffered));
    cong_.stageOccupancyHist[stage].add(static_cast<double>(buffered));
  }

  // A stalled switch freezes entirely for the window: no snoops, no grants.
  // Input buffers fill and credit backpressure propagates upstream, exactly
  // the transient a misbehaving physical switch would cause.
  if (flat == faultStallFlat_ && hooks_.fault->stallTickSkipped(sched_.now())) return;

  // Pass 1: drain flits of sunk messages and run pending head snoops; then
  // collect, per requested output, the oldest eligible candidate.
  struct Candidate {
    std::uint64_t inputKey = 0;
    bool fromInject = false;
    Cycle age = kNoCycle;
  };
  std::map<std::uint32_t, Candidate> wants;  // output vertex -> best candidate

  auto consider = [&](std::uint32_t output, std::uint64_t key, bool inject, Cycle age) {
    // Wormhole: a locked output only accepts its owner.
    auto lockIt = s.outputLock.find(output);
    if (lockIt != s.outputLock.end() && lockIt->second != key) return;
    auto [it, inserted] = wants.try_emplace(output, Candidate{key, inject, age});
    if (!inserted && (age < it->second.age ||
                      (age == it->second.age && key < it->second.inputKey))) {
      it->second = Candidate{key, inject, age};
    }
  };

  for (auto& [key, in] : s.inputs) {
    // Drain everything a sink consumed (credits flow back upstream).
    while (!in.fifo.empty() && in.fifo.front().ms->sunk) {
      const Flit f = in.fifo.front();
      in.fifo.pop_front();
      const auto upstream = static_cast<std::uint32_t>(key >> 8);
      ++link(upstream, sv).credits[vcOf(f.ms->msg)];
      if (f.tail()) --live_;  // the whole message has now been consumed
    }
    if (in.fifo.empty()) continue;
    if (!maybeSnoop(sv, in)) continue;  // sunk this cycle; drained next
    const Flit& f = in.fifo.front();
    std::uint32_t output;
    if (f.head()) {
      // Resolve the hop that follows this switch on the message's route.
      output = 0xFFFFFFFFu;
      const Route& r = f.ms->route;
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (r[i].kind == Hop::Kind::Switch && vertexOf(r[i].sw) == sv) {
          const Hop& nh = r[i + 1];
          output = nh.kind == Hop::Kind::Switch ? vertexOf(nh.sw) : vertexOf(nh.ep);
          break;
        }
      }
      if (output == 0xFFFFFFFFu) throw std::logic_error("FlitNetwork: switch not on route");
    } else {
      output = in.lockedOutput;
    }
    consider(output, key, false, f.ms->birth);
  }

  // The injection port competes like any other input.
  if (!s.injectQueue.empty()) {
    const MsgPtr& ms = s.injectQueue.front();
    const Hop& h = ms->route.front();
    const std::uint32_t output =
        h.kind == Hop::Kind::Switch ? vertexOf(h.sw) : vertexOf(h.ep);
    consider(output, inKey(kInjectUpstream, vcOf(ms->msg)), true, ms->birth);
  }

  // Pass 2: grant up to four outputs this cycle, oldest first (paper 4.1).
  std::vector<std::pair<std::uint32_t, Candidate>> grants(wants.begin(), wants.end());
  std::sort(grants.begin(), grants.end(), [](const auto& a, const auto& b) {
    if (a.second.age != b.second.age) return a.second.age < b.second.age;
    return a.first < b.first;
  });
  std::uint32_t granted = 0;
  for (const auto& [output, cand] : grants) {
    if (granted >= 4) break;
    // Link and credit availability.
    Link& l = link(sv, output);
    if (l.nextFree > sched_.now()) {
      ++cong_.linkBusySkips;
      continue;
    }

    if (cand.fromInject) {
      MsgPtr ms = s.injectQueue.front();
      const std::uint32_t vc = vcOf(ms->msg);
      if (isSwitchVertex(output) && l.credits[vc] == 0) {
        ++cong_.creditStallCycles;
        ++cong_.perSwitchCreditStalls[flat];
        continue;
      }
      Flit f{ms, s.injectFlitsSent};
      // Lock while the message streams out.
      if (f.head()) grabLock(s, output, cand.inputKey);
      transmit(sv, output, f, cfg_.coreDelay);
      ++s.injectFlitsSent;
      ++granted;
      if (f.tail()) {
        releaseLock(s, output);
        s.injectQueue.pop_front();
        s.injectFlitsSent = 0;
      }
      continue;
    }

    InputVc& in = s.inputs[cand.inputKey];
    if (in.fifo.empty()) continue;
    Flit f = in.fifo.front();
    const std::uint32_t vc = vcOf(f.ms->msg);
    if (isSwitchVertex(output) && l.credits[vc] == 0) {
      ++cong_.creditStallCycles;
      ++cong_.perSwitchCreditStalls[flat];
      continue;
    }
    in.fifo.pop_front();
    // Credit back to the upstream sender.
    const auto upstream = static_cast<std::uint32_t>(cand.inputKey >> 8);
    ++link(upstream, sv).credits[vcOf(f.ms->msg)];
    if (f.head()) {
      grabLock(s, output, cand.inputKey);
      in.lockedOutput = output;
    }
    const bool tail = f.tail();
    transmit(sv, output, f, cfg_.coreDelay);
    ++granted;
    ++flitGrants_;
    if (tail) {
      releaseLock(s, output);
      in.lockedOutput = InputVc::kNoOutput;
    }
  }
}

}  // namespace dresar
