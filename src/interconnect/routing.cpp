#include "interconnect/routing.h"

#include <algorithm>
#include <stdexcept>

namespace dresar {

namespace {

class LcaRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "lca"; }
  [[nodiscard]] bool adaptive() const override { return false; }
  [[nodiscard]] std::uint32_t choose(std::uint32_t /*width*/, std::uint32_t baseline,
                                     const RouteCostFn& /*cost*/) override {
    return baseline;
  }
};

/// Adaptive-minimal over the turnaround window: cheapest candidate wins,
/// ties prefer the LCA baseline (idle network == lca byte for byte), and
/// baseline-less ties break by a private xorshift64* stream. The stream
/// only advances on a genuine multi-way tie, so decisions depend on the
/// congestion the message actually saw, not on how often choose() ran.
class AdaptiveMinimalRouting final : public RoutingPolicy {
 public:
  explicit AdaptiveMinimalRouting(std::uint64_t seed)
      : state_(seed | 1ull) {}

  [[nodiscard]] const char* name() const override { return "adaptive"; }
  [[nodiscard]] bool adaptive() const override { return true; }

  [[nodiscard]] std::uint32_t choose(std::uint32_t width, std::uint32_t baseline,
                                     const RouteCostFn& cost) override {
    if (width <= 1) return baseline;
    std::uint64_t best = cost(0);
    ties_.clear();
    ties_.push_back(0);
    for (std::uint32_t f = 1; f < width; ++f) {
      const std::uint64_t c = cost(f);
      if (c < best) {
        best = c;
        ties_.clear();
        ties_.push_back(f);
      } else if (c == best) {
        ties_.push_back(f);
      }
    }
    if (ties_.size() == 1) return ties_.front();
    if (std::find(ties_.begin(), ties_.end(), baseline) != ties_.end()) return baseline;
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t draw = state_ * 0x2545F4914F6CDD1Dull;
    return ties_[draw % ties_.size()];
  }

 private:
  std::uint64_t state_;
  std::vector<std::uint32_t> ties_;  ///< scratch, reused across calls
};

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

std::unique_ptr<RoutingPolicy> makeRoutingPolicy(const std::string& name, std::uint64_t seed) {
  if (name == "lca") return std::make_unique<LcaRouting>();
  if (name == "adaptive") return std::make_unique<AdaptiveMinimalRouting>(seed);
  throw std::invalid_argument("unknown routing policy '" + name +
                              "' (valid: " + routingPolicyList() + ")");
}

const std::vector<std::string>& routingPolicyNames() {
  static const std::vector<std::string> names = {"lca", "adaptive"};
  return names;
}

bool isRoutingPolicy(const std::string& name) {
  return contains(routingPolicyNames(), name);
}

std::string routingPolicyList() {
  std::string out;
  for (const std::string& s : routingPolicyNames()) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

}  // namespace dresar
