// Dance-hall butterfly BMIN topology (paper Figure 3): processors attach
// below stage 0, memory/directory modules above stage 1. Every (processor,
// memory) pair has a unique minimal path that is identical for forward
// (proc->mem) and backward (mem->proc) traffic — the path-overlap property
// switch directories rely on (paper 3.1). Processor-to-processor messages
// (c2c data, switch-generated requests) use turnaround routing at the lowest
// common stage.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace dresar {

/// Identifies a switch: stage 0 is adjacent to processors, stage 1 to memory.
struct SwitchId {
  std::uint32_t stage = 0;
  std::uint32_t index = 0;

  friend bool operator==(const SwitchId&, const SwitchId&) = default;
};

/// A routing step: either a switch traversal or the final endpoint delivery.
struct Hop {
  enum class Kind : std::uint8_t { Switch, Deliver } kind = Kind::Switch;
  SwitchId sw;        ///< valid when kind == Switch
  Endpoint ep;        ///< valid when kind == Deliver

  static Hop atSwitch(SwitchId s) { return Hop{Kind::Switch, s, {}}; }
  static Hop deliver(Endpoint e) { return Hop{Kind::Deliver, {}, e}; }
};

using Route = std::vector<Hop>;

/// Two-stage butterfly of radix-R switches (R/2 down ports, R/2 up ports)
/// for up to (R/2)^2 nodes. For the paper's reference system: R=8, 16 nodes,
/// 4 switches per stage.
class Butterfly {
 public:
  Butterfly(std::uint32_t numNodes, std::uint32_t switchRadix);

  [[nodiscard]] std::uint32_t numNodes() const { return numNodes_; }
  [[nodiscard]] std::uint32_t switchesPerStage() const { return perStage_; }
  [[nodiscard]] std::uint32_t numStages() const { return 2; }
  [[nodiscard]] std::uint32_t totalSwitches() const { return perStage_ * 2; }
  [[nodiscard]] std::uint32_t half() const { return half_; }

  /// Flattened switch index in [0, totalSwitches()).
  [[nodiscard]] std::uint32_t flat(SwitchId s) const { return s.stage * perStage_ + s.index; }
  [[nodiscard]] SwitchId unflat(std::uint32_t f) const {
    return SwitchId{f / perStage_, f % perStage_};
  }

  /// Leaf (stage-0) switch of processor p; root (stage-1) switch of memory m.
  [[nodiscard]] SwitchId procSwitch(NodeId p) const { return SwitchId{0, p / half_}; }
  [[nodiscard]] SwitchId memSwitch(NodeId m) const { return SwitchId{1, m / half_}; }

  /// Unique route between two endpoints. Supported pairs: proc->mem (forward),
  /// mem->proc (backward), proc->proc (turnaround).
  [[nodiscard]] Route route(Endpoint src, Endpoint dst) const;

  /// Route for a message injected by switch `from` (switch-directory
  /// generated traffic: CtoCRequest/ReadReply/Retry toward a processor, or
  /// nothing toward memory — those annotate passing messages instead).
  [[nodiscard]] Route routeFromSwitch(SwitchId from, Endpoint dst) const;

  /// The switches a proc->mem request traverses, in order. Used by the
  /// trace-driven simulator, which needs path membership but not timing.
  [[nodiscard]] std::vector<SwitchId> forwardPath(NodeId proc, NodeId mem) const;

 private:
  std::uint32_t numNodes_;
  std::uint32_t half_;
  std::uint32_t perStage_;
};

}  // namespace dresar
