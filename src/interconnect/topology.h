// Dance-hall butterfly BMIN topology (paper Figure 3), generalized to k
// stages: processors attach below stage 0, memory/directory modules above
// stage k-1. Every (processor, memory) pair has a unique minimal path that
// is identical for forward (proc->mem) and backward (mem->proc) traffic —
// the path-overlap property switch directories rely on (paper 3.1).
// Processor-to-processor messages (c2c data, switch-generated requests) use
// turnaround routing at the lowest common ancestor stage.
//
// Switch indices are read as mixed-radix numbers in base half = radix/2:
// the digit at weight half^j is "position j". The link between stage j and
// stage j+1 replaces exactly the digit at position k-2-j, so a message
// climbing from a leaf fixes the destination's digits from the top position
// down, and descending fixes them bottom-up — the classic butterfly wiring.
// With P = numNodes/half switches per stage the top digit has base
// m = P / half^(k-2) (1 <= m <= half), which lets node counts that are not
// pure powers of half (e.g. 8 or 32 nodes with radix-8 switches) tile
// exactly. k = 2 reproduces the paper's reference machine bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace dresar {

/// Identifies a switch: stage 0 is adjacent to processors, stage
/// numStages()-1 to memory.
struct SwitchId {
  std::uint32_t stage = 0;
  std::uint32_t index = 0;

  friend bool operator==(const SwitchId&, const SwitchId&) = default;
};

/// A routing step: either a switch traversal or the final endpoint delivery.
struct Hop {
  enum class Kind : std::uint8_t { Switch, Deliver } kind = Kind::Switch;
  SwitchId sw;        ///< valid when kind == Switch
  Endpoint ep;        ///< valid when kind == Deliver

  static Hop atSwitch(SwitchId s) { return Hop{Kind::Switch, s, {}}; }
  static Hop deliver(Endpoint e) { return Hop{Kind::Deliver, {}, e}; }
};

using Route = std::vector<Hop>;

/// The equal-length turnaround routes available to one message. Turnaround
/// paths (proc->proc, switch->proc) have free digits between the fixed high
/// part and the shared low part; each value of the free-digit window selects
/// a different — but equally long — turnaround switch. `width == 1` means
/// the route is unique (all proc<->mem traffic, same-cluster pairs).
/// `baseline` is the digit the deterministic LCA default picks.
struct TurnaroundChoices {
  std::uint32_t width = 1;     ///< candidate digits f in [0, width)
  std::uint32_t baseline = 0;  ///< the (cs + cq) % width default
};

/// k-stage butterfly of radix-R switches (R/2 down ports, R/2 up ports).
/// The stage count is derived: the smallest k >= 2 whose (R/2)-ary digit
/// ladder covers numNodes/(R/2) switches per stage. For the paper's
/// reference system: R=8, 16 nodes, k=2, 4 switches per stage.
class Butterfly {
 public:
  Butterfly(std::uint32_t numNodes, std::uint32_t switchRadix);

  /// Stage count for a (numNodes, radix) pair without constructing: 0 when
  /// the combination does not tile into a butterfly (used by config
  /// validation to report every violation instead of throwing on the first).
  [[nodiscard]] static std::uint32_t stagesFor(std::uint32_t numNodes,
                                              std::uint32_t switchRadix);

  [[nodiscard]] std::uint32_t numNodes() const { return numNodes_; }
  [[nodiscard]] std::uint32_t switchesPerStage() const { return perStage_; }
  [[nodiscard]] std::uint32_t numStages() const { return stages_; }
  [[nodiscard]] std::uint32_t totalSwitches() const { return perStage_ * stages_; }
  [[nodiscard]] std::uint32_t half() const { return half_; }

  /// Flattened switch index in [0, totalSwitches()).
  [[nodiscard]] std::uint32_t flat(SwitchId s) const { return s.stage * perStage_ + s.index; }
  [[nodiscard]] SwitchId unflat(std::uint32_t f) const {
    return SwitchId{f / perStage_, f % perStage_};
  }

  /// Leaf (stage-0) switch of processor p; root (top-stage) switch of
  /// memory m.
  [[nodiscard]] SwitchId procSwitch(NodeId p) const { return SwitchId{0, p / half_}; }
  [[nodiscard]] SwitchId memSwitch(NodeId m) const {
    return SwitchId{stages_ - 1, m / half_};
  }

  /// True when a message injected at `from` can reach memory m going up:
  /// climbing from stage s only rewrites digit positions < k-1-s, so the
  /// high digits of the switch index must already match the memory's root.
  [[nodiscard]] bool canReachMem(SwitchId from, NodeId m) const;

  /// Unique route between two endpoints. Supported pairs: proc->mem (forward),
  /// mem->proc (backward), proc->proc (turnaround).
  [[nodiscard]] Route route(Endpoint src, Endpoint dst) const;

  /// Route for a message injected by switch `from` (switch-directory
  /// generated traffic: CtoCRequest/ReadReply/Retry toward a processor, or
  /// nothing toward memory — those annotate passing messages instead).
  [[nodiscard]] Route routeFromSwitch(SwitchId from, Endpoint dst) const;

  /// Free-digit window for the src->dst pair. route() always returns
  /// routeChoice(src, dst, turnaround(src, dst).baseline).
  [[nodiscard]] TurnaroundChoices turnaround(Endpoint src, Endpoint dst) const;
  [[nodiscard]] TurnaroundChoices turnaroundFromSwitch(SwitchId from, Endpoint dst) const;

  /// Route with an explicit free-digit choice f in [0, turnaround().width).
  /// Pairs with a unique route accept only f == 0. All choices for a pair
  /// have identical hop counts; only the turnaround switches differ.
  [[nodiscard]] Route routeChoice(Endpoint src, Endpoint dst, std::uint32_t f) const;
  [[nodiscard]] Route routeFromSwitchChoice(SwitchId from, Endpoint dst,
                                            std::uint32_t f) const;

  /// The switches a proc->mem request traverses, in order. Used by the
  /// trace-driven simulator, which needs path membership but not timing.
  [[nodiscard]] std::vector<SwitchId> forwardPath(NodeId proc, NodeId mem) const;

 private:
  /// half^e (e <= stages_-1; precomputed in halfPow_).
  [[nodiscard]] std::uint32_t pow(std::uint32_t e) const { return halfPow_[e]; }
  /// Low digits of switch coordinate c below position k-1-j (stage-j view).
  [[nodiscard]] std::uint32_t lo(std::uint32_t j, std::uint32_t c) const {
    return c % pow(stages_ - 1 - j);
  }
  /// High digits of c at positions >= k-1-j.
  [[nodiscard]] std::uint32_t hi(std::uint32_t j, std::uint32_t c) const {
    return c / pow(stages_ - 1 - j);
  }
  /// Number of distinct values the digits at positions >= k-1-j can take
  /// (accounts for the reduced top-digit base).
  [[nodiscard]] std::uint32_t valuesAbove(std::uint32_t j) const {
    const std::uint32_t v = perStage_ / pow(stages_ - 1 - j);
    return v == 0 ? 1 : v;
  }
  /// Sentinel for appendTurnaround: pick the deterministic LCA baseline.
  static constexpr std::uint32_t kAutoDigit = 0xFFFFFFFFu;
  /// Turnaround stage and free-digit window for a stage-`s` climb from
  /// switch coordinate `cs` to the leaf of coordinate `cq`.
  struct TurnSpan {
    std::uint32_t t = 0;         ///< turnaround stage
    std::uint32_t width = 1;     ///< free-digit window
    std::uint32_t baseline = 0;  ///< (cs + cq) % width
  };
  [[nodiscard]] TurnSpan turnSpan(std::uint32_t s, std::uint32_t cs, std::uint32_t cq) const;
  /// Append the turnaround path from stage-`s` switch index `cs` up to stage
  /// `t` and back down to the leaf of coordinate `cq`. The turnaround index
  /// keeps `cs`'s fixed high digits, takes free digit `f` (kAutoDigit = the
  /// deterministic symmetric (cs+cq) spread, identical for both directions
  /// of a pair), and shares its low digits with both endpoints
  /// (lo(t, cs) == lo(t, cq) is the caller's contract).
  void appendTurnaround(Route& r, std::uint32_t s, std::uint32_t cs, std::uint32_t cq,
                        std::uint32_t f = kAutoDigit) const;

  std::uint32_t numNodes_;
  std::uint32_t half_;
  std::uint32_t perStage_;
  std::uint32_t stages_;
  std::vector<std::uint32_t> halfPow_;  ///< halfPow_[e] = half^e, e in [0, stages_)
};

}  // namespace dresar
