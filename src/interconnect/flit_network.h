// Flit-level wormhole interconnect (paper Section 4.1): 8-byte flits over
// 16-bit links (4 link cycles per flit), 4-cycle switch core, input-buffered
// virtual channels with credit-based backpressure, and age-based arbitration
// granting at most four flits per switch per cycle — the SGI SPIDER scheme
// the paper adopts. Virtual channels are partitioned by destination node so
// messages between one source/destination pair can never be reordered.
//
// The switch-directory snoop fires when a message's head flit first reaches
// the front of an input buffer at a switch, in parallel with arbitration,
// exactly as DRESAR is specified to operate; a sunk message's remaining
// flits are drained at that switch, and switch-generated messages enter the
// crossbar through the extra injection port (the paper's 10x4 crossbar).
//
// This model is cycle-driven and slower than the message-level Network; the
// full system can run on either (SystemConfig::net.flitLevel), and
// bench/validation_flit_vs_message quantifies how close the two are.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/config.h"
#include "common/scheduler.h"
#include "common/stats.h"
#include "interconnect/inetwork.h"

namespace dresar {

class RoutingPolicy;

class FlitNetwork final : public INetwork {
 public:
  /// `hooks` is the complete observer wiring (see NetworkHooks). The fault
  /// injector applies request-leg drop/delay at delivery; a link stall
  /// freezes the chosen switch's whole grant pass for the window (credits
  /// provide the backpressure upstream).
  FlitNetwork(const NetworkConfig& cfg, std::uint32_t numNodes, std::uint32_t lineBytes,
              SimKernel& kernel, const NetworkHooks& hooks);

  ~FlitNetwork() override;  // out-of-line: RoutingPolicy is forward-declared

  FlitNetwork(const FlitNetwork&) = delete;
  FlitNetwork& operator=(const FlitNetwork&) = delete;

  [[nodiscard]] const Butterfly& topology() const override { return topo_; }
  [[nodiscard]] const ShardMap& shardMap() const override { return map_; }
  void send(Message m) override;
  [[nodiscard]] std::uint64_t messagesSent() const override { return sent_; }
  [[nodiscard]] std::uint64_t messagesSunk() const override { return sunk_; }
  /// The flit model always collects saturation telemetry: credit state and
  /// buffer occupancy exist as first-class simulation state here, unlike
  /// the message-level model's unbounded queues.
  [[nodiscard]] const CongestionTelemetry* congestion() const override { return &cong_; }

  /// Live flits + undelivered messages; zero when the network is idle.
  [[nodiscard]] std::uint64_t inFlight() const { return live_; }

 private:
  // Vertices: procs [0,N), mems [N,2N), switches [2N, 2N+S).
  [[nodiscard]] std::uint32_t vertexOf(Endpoint ep) const {
    return ep.kind == EndpointKind::Proc ? ep.node : numNodes_ + ep.node;
  }
  [[nodiscard]] std::uint32_t vertexOf(SwitchId sw) const {
    return 2 * numNodes_ + topo_.flat(sw);
  }
  [[nodiscard]] bool isSwitchVertex(std::uint32_t v) const { return v >= 2 * numNodes_; }
  [[nodiscard]] SwitchId switchOf(std::uint32_t v) const {
    return topo_.unflat(v - 2 * numNodes_);
  }

  /// One in-flight message, shared by all of its flits.
  struct MsgState {
    Message msg;
    Route route;
    std::uint32_t totalFlits = 1;
    std::uint64_t snoopedMask = 0; ///< route hop indices whose snoop has run
                                   ///< (a route never revisits a switch, so
                                   ///< this fits any geometry in 64 bits)
    bool sunk = false;
    Cycle birth = 0;               ///< age for arbitration
  };
  using MsgPtr = std::shared_ptr<MsgState>;

  struct Flit {
    MsgPtr ms;
    std::uint32_t seq = 0;  ///< 0 = head; totalFlits-1 = tail
    [[nodiscard]] bool head() const { return seq == 0; }
    [[nodiscard]] bool tail() const { return seq + 1 == ms->totalFlits; }
  };

  /// Input buffer at a switch for one (upstream vertex, virtual channel).
  struct InputVc {
    std::deque<Flit> fifo;
    std::uint32_t lockedOutput = kNoOutput;  ///< wormhole: output held by current msg
    static constexpr std::uint32_t kNoOutput = 0xffffffffu;
  };

  /// Per-directed-link transmitter state (held at the sender side).
  struct Link {
    Cycle nextFree = 0;                 ///< one flit per linkCyclesPerFlit
    std::vector<std::uint32_t> credits; ///< per VC, space in the downstream buffer
  };

  struct SwitchState {
    // Keyed by (upstream vertex, vc); ordered for deterministic arbitration.
    std::map<std::uint64_t, InputVc> inputs;
    std::deque<MsgPtr> injectQueue;     ///< switch-directory generated messages
    std::uint32_t injectFlitsSent = 0;  ///< progress within injectQueue.front()
    // Wormhole lock per output vertex: which (upstream,vc) owns it.
    std::map<std::uint32_t, std::uint64_t> outputLock;
    // Cycle each held output lock was taken, for hold-time telemetry.
    std::map<std::uint32_t, Cycle> lockSince;
  };

  struct EndpointNi {
    std::deque<MsgPtr> sendQueue;
    std::uint32_t flitsSent = 0;
  };

  [[nodiscard]] std::uint32_t vcOf(const Message& m) const {
    return cfg_.virtualChannels == 0 ? 0 : m.dst.node % cfg_.virtualChannels;
  }
  [[nodiscard]] static std::uint64_t inKey(std::uint32_t upstream, std::uint32_t vc) {
    return (static_cast<std::uint64_t>(upstream) << 8) | vc;
  }

  [[nodiscard]] std::uint32_t flitsOf(const Message& m) const {
    const std::uint32_t bytes = m.sizeBytes(cfg_.headerBytes, lineBytes_);
    return (bytes + cfg_.flitBytes - 1) / cfg_.flitBytes;
  }

  Link& link(std::uint32_t from, std::uint32_t to);

  void ensureTicking();
  void tick();
  void tickSwitch(std::uint32_t sv);
  void tickSourceNi(std::uint32_t ev);
  /// Emit one flit from `from` onto the link toward `to`; schedules its
  /// arrival (buffer insert or delivery).
  void transmit(std::uint32_t from, std::uint32_t to, const Flit& f, Cycle extraDelay);
  void arrive(std::uint32_t atVertex, std::uint32_t fromVertex, Flit f);
  void deliver(std::uint32_t epVertex, const Flit& f);
  /// Hand a completed message to the endpoint (post fault filtering).
  void deliverMsg(std::uint32_t epVertex, const Message& m);

  /// Run the snoop for the head flit of `in`'s front message at switch `sv`
  /// if it has not run there yet. Returns false if the message was sunk.
  bool maybeSnoop(std::uint32_t sv, InputVc& in);

  /// Route for an endpoint-injected message: the unique LCA route, or the
  /// policy's pick among the turnaround candidates (adaptive).
  [[nodiscard]] Route routeOf(const Message& m);
  /// Same for a switch-injected (snoop-spawned) message.
  [[nodiscard]] Route spawnRouteOf(SwitchId from, const Message& m);
  /// Credit debt + link backlog along `r` from `srcVertex`: the congestion
  /// an injected message would stream into right now.
  [[nodiscard]] std::uint64_t routeCongestion(const Route& r, std::uint32_t srcVertex,
                                              std::uint32_t vc);

  /// Lock bookkeeping wrappers so every grab/release feeds hold-time
  /// telemetry exactly once.
  void grabLock(SwitchState& s, std::uint32_t output, std::uint64_t key);
  void releaseLock(SwitchState& s, std::uint32_t output);

  NetworkConfig cfg_;
  std::uint32_t numNodes_;
  std::uint32_t lineBytes_;
  Scheduler& sched_;
  ShardMap map_;  ///< default map: the flit model is single-shard (cfg-gated)
  Butterfly topo_;
  /// Hot-path counters, resolved once at construction.
  std::array<CounterHandle, kMsgTypeCount> msgCounters_;  ///< "net.msgs.<type>"
  CounterHandle flitsTransmitted_, flitGrants_, switchInjected_, sunkCounter_;
  SamplerHandle latency_;
  NetworkHooks hooks_;
  std::unique_ptr<RoutingPolicy> routing_;
  CongestionTelemetry cong_;
  /// Flat id of the switch the fault plan stalls; UINT32_MAX = none.
  std::uint32_t faultStallFlat_ = 0xFFFFFFFFu;

  std::vector<SwitchState> switches_;   // by flat switch id
  std::vector<EndpointNi> endpoints_;   // by vertex (procs + mems)
  std::unordered_map<std::uint64_t, Link> links_;

  /// Arena for MsgState control blocks. shared_ptr-owned because in-flight
  /// messages can be captured in event-queue closures that drain after the
  /// network is destroyed (System declares the queue before the network);
  /// the last surviving MsgPtr keeps the arena alive.
  std::shared_ptr<Arena> msgArena_ = std::make_shared<Arena>();

  bool ticking_ = false;
  std::uint64_t live_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t sunk_ = 0;
  std::uint64_t nextMsgId_ = 1;
};

}  // namespace dresar
