// Static ownership partition of simulation entities onto kernel shards.
//
// Nodes are split into contiguous blocks (node n -> shard n*T/N), and a
// switch is owned by the shard of the first processor under its leaf-stage
// column (switch index i serves procs [i*half, (i+1)*half)), so a node, its
// cache/directory controllers, its network endpoints, and its ingress switch
// usually land on the same shard — most coherence hops stay shard-local.
// The map is pure arithmetic on construction-time constants, so every
// component derives identical ownership without coordination.
#pragma once

#include <cstdint>

#include "common/scheduler.h"
#include "common/types.h"

namespace dresar {

class ShardMap {
 public:
  /// Single-shard map (everything on shard 0).
  ShardMap() = default;

  /// `nodesPerLeafSwitch` is Butterfly::half(): the processors under one
  /// leaf-stage switch column. `shards` must be in [1, numNodes].
  ShardMap(std::uint32_t numNodes, std::uint32_t switchesPerStage,
           std::uint32_t nodesPerLeafSwitch, ShardId shards)
      : numNodes_(numNodes),
        perStage_(switchesPerStage),
        half_(nodesPerLeafSwitch),
        shards_(shards) {}

  [[nodiscard]] ShardId count() const { return shards_; }

  [[nodiscard]] ShardId ofNode(NodeId n) const {
    // Single-shard maps (including the default one, whose numNodes_ may not
    // match the caller's node count) own everything on shard 0.
    if (shards_ == 1) return 0;
    return static_cast<ShardId>(static_cast<std::uint64_t>(n) * shards_ / numNodes_);
  }

  /// Shard of flattened switch `flat` (all stages of one column co-locate
  /// with the column's leaf processors).
  [[nodiscard]] ShardId ofSwitch(std::uint32_t flat) const {
    return ofNode((flat % perStage_) * half_);
  }

  /// Shard of a network vertex (procs [0,N), mems [N,2N), switches beyond).
  [[nodiscard]] ShardId ofVertex(std::uint32_t v) const {
    if (v < numNodes_) return ofNode(v);
    if (v < 2 * numNodes_) return ofNode(v - numNodes_);
    return ofSwitch(v - 2 * numNodes_);
  }

 private:
  std::uint32_t numNodes_ = 1;
  std::uint32_t perStage_ = 1;
  std::uint32_t half_ = 1;
  ShardId shards_ = 1;
};

}  // namespace dresar
