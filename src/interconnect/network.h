// Message-level network model over the butterfly BMIN. Timing is derived
// from the paper's flit parameters (8-byte flits, 16-bit links, 4 link
// cycles per flit, 4-cycle switch core at 200 MHz): each hop charges the
// switch core delay plus link serialization, and messages queue on busy
// output links, so contention and message-length effects are modeled.
// Every switch exposes a snoop hook; the DRESAR switch-directory module
// observes (and may sink, annotate, or respond to) every traversing message.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/stats.h"
#include "common/types.h"
#include "interconnect/inetwork.h"
#include "interconnect/message.h"
#include "interconnect/topology.h"

namespace dresar {

class Network final : public INetwork {
 public:
  Network(const NetworkConfig& cfg, std::uint32_t numNodes, std::uint32_t lineBytes,
          EventQueue& eq, StatRegistry& stats);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Butterfly& topology() const override { return topo_; }

  /// Install the snoop observer (typically the DresarManager). May be null.
  void setSnoop(ISwitchSnoop* snoop) override { snoop_ = snoop; }

  /// Install the transaction tracer; records a SwitchHop per traversal.
  void setTracer(TxnTracer* tracer) override { tracer_ = tracer; }

  /// Install the fault injector: request-leg drop/delay at delivery, plus the
  /// deterministic link-stall window on one switch's outgoing links.
  void setFaultInjector(FaultInjector* fault) override;

  /// Register the receiver for messages delivered to `ep`.
  void setDeliveryHandler(Endpoint ep, std::function<void(const Message&)> handler) override;

  /// Inject a message from its `src` endpoint at the current cycle.
  void send(Message m) override;

  /// Inject a message from inside switch `from` (switch-directory traffic).
  void sendFromSwitch(SwitchId from, Message m);

  [[nodiscard]] std::uint64_t messagesSent() const override { return sent_; }
  [[nodiscard]] std::uint64_t messagesSunk() const override { return sunk_; }

 private:
  // Vertex ids: procs [0,N), mems [N,2N), switches [2N, 2N + totalSwitches).
  [[nodiscard]] std::uint32_t vertexOf(Endpoint ep) const;
  [[nodiscard]] std::uint32_t vertexOf(SwitchId sw) const;

  [[nodiscard]] Cycle serializationCycles(const Message& m) const;

  /// Advance `m` along `route` starting at `hopIdx`; `fromVertex` is where the
  /// message currently sits, `when` the cycle it becomes ready to move. The
  /// route must point into routeTable_ (stable for the network's lifetime).
  void advance(Message m, const Route* route, std::size_t hopIdx, std::uint32_t fromVertex,
               Cycle when);

  /// Precomputed route from any source vertex (endpoint or switch) to any
  /// endpoint vertex; topology routing runs once at construction, not per
  /// message.
  [[nodiscard]] const Route& routeFor(std::uint32_t fromVertex, std::uint32_t dstVertex) const {
    return routeTable_[static_cast<std::size_t>(fromVertex) * 2 * numNodes_ + dstVertex];
  }

  /// Reserve the (from,to) link starting no earlier than `ready`; returns the
  /// cycle the last flit lands at `to`.
  Cycle traverseLink(std::uint32_t from, std::uint32_t to, Cycle ready, const Message& m);

  /// Hand `m` to the endpoint's registered handler (post fault filtering).
  void deliverNow(const Message& m, Endpoint ep);

  NetworkConfig cfg_;
  std::uint32_t numNodes_;
  std::uint32_t lineBytes_;
  EventQueue& eq_;
  Butterfly topo_;
  /// Hot-path counters, resolved once at construction.
  std::array<CounterHandle, kMsgTypeCount> msgCounters_;  ///< "net.msgs.<type>"
  std::vector<CounterHandle> traversals_;                 ///< "switch.<flat>.traversals"
  CounterHandle linkBusy_, switchInjected_, sunkCounter_;
  SamplerHandle latency_;
  ISwitchSnoop* snoop_ = nullptr;
  TxnTracer* tracer_ = nullptr;
  FaultInjector* fault_ = nullptr;
  /// Vertex id of the switch whose outgoing links the fault plan stalls;
  /// UINT32_MAX when no stall is configured.
  std::uint32_t faultStallVertex_ = UINT32_MAX;
  /// Scratch buffer for snoop-spawned messages; only live inside one hop's
  /// snoop block (the snoop itself never re-enters advance), so it is safe to
  /// reuse across hops instead of allocating per traversal.
  std::vector<Message> snoopScratch_;
  std::vector<Route> routeTable_;  ///< by fromVertex * 2N + dstVertex; see routeFor()
  std::vector<std::function<void(const Message&)>> handlers_;  // indexed by vertex
  std::unordered_map<std::uint64_t, Cycle> linkFree_;          // (from<<32|to) -> next free cycle
  std::uint64_t nextMsgId_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t sunk_ = 0;
};

}  // namespace dresar
