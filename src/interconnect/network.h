// Message-level network model over the butterfly BMIN. Timing is derived
// from the paper's flit parameters (8-byte flits, 16-bit links, 4 link
// cycles per flit, 4-cycle switch core at 200 MHz): each hop charges the
// switch core delay plus link serialization, and messages queue on busy
// output links, so contention and message-length effects are modeled.
// Every switch exposes a snoop hook; the DRESAR switch-directory module
// observes (and may sink, annotate, or respond to) every traversing message.
//
// Sharded execution: every vertex (endpoint or switch) is owned by one
// kernel shard (ShardMap), each hop executes on the shard owning the vertex
// where the message sits, and the handoff to the next vertex goes through
// Scheduler::post — a plain local schedule when both vertices share a shard
// (always true at simThreads=1, which keeps that path byte-identical), a
// mailbox crossing otherwise. All mutable per-hop state (link reservations,
// message-id stamps, stat handles, snoop scratch) is per-shard: links belong
// to the shard of their source vertex, ids embed the allocating shard in the
// top byte, and counters register in the owning shard's registry.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/scheduler.h"
#include "common/stats.h"
#include "common/types.h"
#include "interconnect/inetwork.h"
#include "interconnect/message.h"
#include "interconnect/shard_map.h"
#include "interconnect/topology.h"

namespace dresar {

class RoutingPolicy;

class Network final : public INetwork {
 public:
  /// `hooks` is the complete observer wiring (see NetworkHooks): the sink
  /// receives every delivered message, the snoop (typically the
  /// DresarManager) observes every switch traversal, the tracer records
  /// SwitchHop events, and the fault injector applies request-leg drop/delay
  /// at delivery plus the deterministic link-stall window on one switch's
  /// outgoing links. All four pointers are captured once, here.
  Network(const NetworkConfig& cfg, std::uint32_t numNodes, std::uint32_t lineBytes,
          SimKernel& kernel, const NetworkHooks& hooks);

  ~Network() override;  // out-of-line: RoutingPolicy is forward-declared

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Butterfly& topology() const override { return topo_; }
  [[nodiscard]] const ShardMap& shardMap() const override { return map_; }

  /// Inject a message from its `src` endpoint at the current cycle. Must be
  /// called on the shard owning `src`.
  void send(Message m) override;

  /// Inject a message from inside switch `from` (switch-directory traffic).
  /// Must be called on the shard owning `from`.
  void sendFromSwitch(SwitchId from, Message m);

  [[nodiscard]] std::uint64_t messagesSent() const override;
  [[nodiscard]] std::uint64_t messagesSunk() const override;

 private:
  /// Mutable hot state owned by one kernel shard: only events executing on
  /// that shard touch it, so parallel windows never race. The stat handles
  /// resolve the same dotted names in every shard's registry; the post-run
  /// fold adds them back together.
  struct Shard {
    Scheduler* sched = nullptr;
    std::array<CounterHandle, kMsgTypeCount> msgCounters;  ///< "net.msgs.<type>"
    CounterHandle linkBusy, switchInjected, sunkCounter;
    SamplerHandle latency;
    /// Scratch buffer for snoop-spawned messages; only live inside one hop's
    /// snoop block (the snoop itself never re-enters advance), so it is safe
    /// to reuse across hops instead of allocating per traversal.
    std::vector<Message> snoopScratch;
    std::unordered_map<std::uint64_t, Cycle> linkFree;  ///< (from<<32|to) -> next free cycle
    std::uint64_t nextMsgId = 1;  ///< (shard << 56) | seq; shard 0 matches the unsharded ids
    std::uint64_t sent = 0;
    std::uint64_t sunk = 0;
  };

  // Vertex ids: procs [0,N), mems [N,2N), switches [2N, 2N + totalSwitches).
  [[nodiscard]] std::uint32_t vertexOf(Endpoint ep) const;
  [[nodiscard]] std::uint32_t vertexOf(SwitchId sw) const;

  [[nodiscard]] Cycle serializationCycles(const Message& m) const;

  /// Stamp + count an injected message on its injecting shard.
  void onInject(Shard& sh, Message& m);

  /// Advance `m` along `route` starting at `hopIdx`; `fromVertex` is where the
  /// message currently sits (its owning shard must be executing), `when` the
  /// cycle it becomes ready to move. The route must point into routeTable_
  /// (stable for the network's lifetime).
  void advance(Message m, const Route* route, std::size_t hopIdx, std::uint32_t fromVertex,
               Cycle when);

  /// Precomputed route from any source vertex (endpoint or switch) to any
  /// endpoint vertex; topology routing runs once at construction, not per
  /// message.
  [[nodiscard]] const Route& routeFor(std::uint32_t fromVertex, std::uint32_t dstVertex) const {
    return routeTable_[static_cast<std::size_t>(fromVertex) * 2 * numNodes_ + dstVertex];
  }

  /// Route selection at injection: the precomputed LCA route for "lca", or
  /// the policy's pick among the pair's precomputed candidates (stable
  /// storage — advance() holds the pointer for the message's lifetime).
  [[nodiscard]] const Route* pickRoute(std::uint32_t fromVertex, std::uint32_t dstVertex);

  /// Sum over `r`'s links of how far each reservation extends past `now` —
  /// the queueing backlog an injected message would see. Adaptive routing is
  /// single-shard (validated), so shard 0 owns every reservation.
  [[nodiscard]] std::uint64_t routeBacklog(const Route& r, std::uint32_t srcVertex,
                                           Cycle now) const;

  /// Reserve the (from,to) link starting no earlier than `ready`; returns the
  /// cycle the last flit lands at `to`. The reservation lives on `from`'s
  /// owning shard.
  Cycle traverseLink(std::uint32_t from, std::uint32_t to, Cycle ready, const Message& m);

  /// Hand `m` to the endpoint's registered handler (post fault filtering).
  void deliverNow(const Message& m, Endpoint ep);

  /// Candidate routes for one (fromVertex, dst) pair with routing freedom.
  struct ChoiceSet {
    std::vector<Route> routes;   ///< by free digit f; routes[baseline] == the LCA route
    std::uint32_t baseline = 0;
  };

  NetworkConfig cfg_;
  std::uint32_t numNodes_;
  std::uint32_t lineBytes_;
  Butterfly topo_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<CounterHandle> traversals_;  ///< "switch.<flat>.traversals", in the owner's registry
  NetworkHooks hooks_;
  std::unique_ptr<RoutingPolicy> routing_;
  /// Vertex id of the switch whose outgoing links the fault plan stalls;
  /// UINT32_MAX when no stall is configured.
  std::uint32_t faultStallVertex_ = UINT32_MAX;
  std::vector<Route> routeTable_;  ///< by fromVertex * 2N + dstVertex; see routeFor()
  /// Only populated for adaptive policies: (fromVertex<<32|dstVertex) ->
  /// candidate routes. Element storage is stable after construction.
  std::unordered_map<std::uint64_t, ChoiceSet> choiceTable_;
};

}  // namespace dresar
