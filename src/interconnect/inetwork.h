// Abstract interconnect interface. Two implementations exist:
//   * Network      — message-level timing (default; fast): per-hop core +
//                    serialization delay with queueing on busy output links,
//   * FlitNetwork  — flit-level wormhole switching with input-buffered
//                    virtual channels, credits and age-based arbitration,
//                    faithful to paper Section 4.1.
// Both run over the same Butterfly topology and feed the same snoop hook,
// so the switch-directory protocol is identical; only timing fidelity
// differs (see bench/validation_flit_vs_message).
//
// Observer wiring is immutable: every observer (delivery sink, snoop,
// tracer, fault injector) arrives in one NetworkHooks struct at
// construction and never changes. There is no setter to call in the wrong
// order, no window where a message can race an observer installation, and
// a null hook simply disables that observer for the network's lifetime.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "interconnect/message.h"
#include "interconnect/shard_map.h"
#include "interconnect/topology.h"

namespace dresar {

class TxnTracer;
class FaultInjector;

struct SnoopOutcome {
  bool pass = true;      ///< false => message is sunk at this switch
  Cycle extraDelay = 0;  ///< directory port contention beyond the core delay
};

/// Implemented by the switch-directory module (or test doubles). The snoop
/// may modify the message in place (annotations such as the carried sharer
/// pids) and append switch-generated messages to `spawn`; the network routes
/// spawned messages from this switch.
class ISwitchSnoop {
 public:
  virtual ~ISwitchSnoop() = default;
  virtual SnoopOutcome onMessage(SwitchId sw, Cycle now, Message& m,
                                 std::vector<Message>& spawn) = 0;
};

/// Receives every message the network completes. One sink serves all
/// endpoints (System dispatches on `ep` to the right controller), replacing
/// the old per-endpoint std::function table: the sink's address is fixed at
/// network construction, so delivery can never observe a half-wired system.
class IMessageSink {
 public:
  virtual ~IMessageSink() = default;
  virtual void deliver(Endpoint ep, const Message& m) = 0;
};

/// The complete observer wiring of a network, fixed at construction.
/// `sink` must outlive the network and be non-null by the first send();
/// the observers may each be null to disable that aspect (fault-free runs
/// never even construct an injector, keeping their output byte-identical).
struct NetworkHooks {
  IMessageSink* sink = nullptr;
  ISwitchSnoop* snoop = nullptr;
  TxnTracer* tracer = nullptr;
  FaultInjector* fault = nullptr;
};

/// Test/bench adapter: a per-endpoint std::function table behind the
/// immutable sink pointer. Handlers are registered on the adapter (whose
/// address never changes) rather than on the network, so fixtures keep the
/// old register-then-send flow without reintroducing mutable network state.
class FnSink final : public IMessageSink {
 public:
  void on(Endpoint ep, std::function<void(const Message&)> fn) {
    handlers_[key(ep)] = std::move(fn);
  }
  void deliver(Endpoint ep, const Message& m) override {
    auto it = handlers_.find(key(ep));
    if (it == handlers_.end() || !it->second)
      throw std::logic_error("FnSink: no delivery handler for " + toString(ep));
    it->second(m);
  }

 private:
  [[nodiscard]] static std::uint64_t key(Endpoint ep) {
    return (static_cast<std::uint64_t>(ep.kind == EndpointKind::Mem) << 32) | ep.node;
  }
  std::unordered_map<std::uint64_t, std::function<void(const Message&)>> handlers_;
};

/// Saturation/congestion telemetry a network may expose (the flit model
/// does; the message-level model's unbounded queues have no credit state to
/// observe). All members are cumulative over the run.
struct CongestionTelemetry {
  /// Switch grant passes skipped because the downstream VC had no credit —
  /// one count is one cycle a granted-ready flit sat blocked on credit.
  std::uint64_t creditStallCycles = 0;
  /// Grant passes skipped because the output link was still serializing.
  std::uint64_t linkBusySkips = 0;
  /// Source-NI cycles a head-of-queue message sat blocked on link/credit.
  std::uint64_t sourceCreditStalls = 0;
  /// creditStallCycles attributed per flat switch id (stall-tree shape).
  std::vector<std::uint64_t> perSwitchCreditStalls;
  /// Buffered flits across a switch's input VCs, sampled once per switch
  /// tick while the network is live; indexed by stage.
  std::vector<Sampler> stageOccupancy;
  std::vector<Histogram> stageOccupancyHist;  ///< log2 geometry of the same samples
  /// Wormhole output-lock hold times (lock grant -> tail departure), cycles.
  Sampler lockHold;
  Histogram lockHoldHist;
};

class INetwork {
 public:
  virtual ~INetwork() = default;

  [[nodiscard]] virtual const Butterfly& topology() const = 0;
  /// Vertex -> kernel-shard ownership map. Single-shard implementations
  /// (FlitNetwork, test doubles) return the default everything-on-0 map.
  [[nodiscard]] virtual const ShardMap& shardMap() const = 0;
  virtual void send(Message m) = 0;
  [[nodiscard]] virtual std::uint64_t messagesSent() const = 0;
  [[nodiscard]] virtual std::uint64_t messagesSunk() const = 0;
  /// Congestion telemetry, or nullptr when this model does not collect any.
  [[nodiscard]] virtual const CongestionTelemetry* congestion() const { return nullptr; }
};

}  // namespace dresar
