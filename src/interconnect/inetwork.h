// Abstract interconnect interface. Two implementations exist:
//   * Network      — message-level timing (default; fast),
//   * FlitNetwork  — flit-level wormhole switching with input-buffered
//                    virtual channels, credits and age-based arbitration,
//                    faithful to paper Section 4.1.
// Both run over the same Butterfly topology and feed the same snoop hook,
// so the switch-directory protocol is identical; only timing fidelity
// differs (see bench/validation_flit_vs_message).
#pragma once

#include <functional>

#include "common/types.h"
#include "interconnect/message.h"
#include "interconnect/shard_map.h"
#include "interconnect/topology.h"

namespace dresar {

class TxnTracer;
class FaultInjector;

struct SnoopOutcome {
  bool pass = true;      ///< false => message is sunk at this switch
  Cycle extraDelay = 0;  ///< directory port contention beyond the core delay
};

/// Implemented by the switch-directory module (or test doubles). The snoop
/// may modify the message in place (annotations such as the carried sharer
/// pids) and append switch-generated messages to `spawn`; the network routes
/// spawned messages from this switch.
class ISwitchSnoop {
 public:
  virtual ~ISwitchSnoop() = default;
  virtual SnoopOutcome onMessage(SwitchId sw, Cycle now, Message& m,
                                 std::vector<Message>& spawn) = 0;
};

class INetwork {
 public:
  virtual ~INetwork() = default;

  [[nodiscard]] virtual const Butterfly& topology() const = 0;
  /// Vertex -> kernel-shard ownership map. Single-shard implementations
  /// (FlitNetwork, test doubles) return the default everything-on-0 map.
  [[nodiscard]] virtual const ShardMap& shardMap() const = 0;
  virtual void setSnoop(ISwitchSnoop* snoop) = 0;
  /// Install the transaction tracer (switch-hop events). May be null; the
  /// default ignores it so test doubles need not care.
  virtual void setTracer(TxnTracer*) {}
  /// Install the fault injector (message drop/delay, link stalls). May be
  /// null — fault-free runs never construct one — and the default ignores it.
  virtual void setFaultInjector(FaultInjector*) {}
  virtual void setDeliveryHandler(Endpoint ep, std::function<void(const Message&)> handler) = 0;
  virtual void send(Message m) = 0;
  [[nodiscard]] virtual std::uint64_t messagesSent() const = 0;
  [[nodiscard]] virtual std::uint64_t messagesSunk() const = 0;
};

}  // namespace dresar
