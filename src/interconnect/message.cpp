#include "interconnect/message.h"

#include <sstream>

namespace dresar {

const char* toString(MsgType t) {
  switch (t) {
    case MsgType::ReadRequest: return "ReadRequest";
    case MsgType::WriteRequest: return "WriteRequest";
    case MsgType::WriteReply: return "WriteReply";
    case MsgType::CtoCRequest: return "CtoCRequest";
    case MsgType::CopyBack: return "CopyBack";
    case MsgType::WriteBack: return "WriteBack";
    case MsgType::Retry: return "Retry";
    case MsgType::ReadReply: return "ReadReply";
    case MsgType::CtoCReply: return "CtoCReply";
    case MsgType::Invalidation: return "Invalidation";
    case MsgType::InvalAck: return "InvalAck";
    case MsgType::SharerNotify: return "SharerNotify";
  }
  return "?";
}

bool carriesData(MsgType t) {
  switch (t) {
    case MsgType::WriteReply:
    case MsgType::CopyBack:
    case MsgType::WriteBack:
    case MsgType::ReadReply:
    case MsgType::CtoCReply:
      return true;
    default:
      return false;
  }
}

std::string Message::describe() const {
  std::ostringstream os;
  os << toString(type) << " #" << id << ' ' << toString(src) << "->" << toString(dst) << " addr=0x"
     << std::hex << addr << std::dec;
  if (requester != kInvalidNode) os << " req=" << requester;
  if (marked) os << " [marked]";
  if (carriedSharers != 0) os << " sharers=" << toHex(carriedSharers);
  return os.str();
}

}  // namespace dresar
