#include "interconnect/network.h"

#include <stdexcept>

#include "common/log.h"
#include "fault/injector.h"

namespace dresar {

Network::Network(const NetworkConfig& cfg, std::uint32_t numNodes, std::uint32_t lineBytes,
                 EventQueue& eq, StatRegistry& stats)
    : cfg_(cfg),
      numNodes_(numNodes),
      lineBytes_(lineBytes),
      eq_(eq),
      topo_(numNodes, cfg.switchRadix) {
  handlers_.resize(2ull * numNodes_ + topo_.totalSwitches());
  for (std::size_t t = 0; t < kMsgTypeCount; ++t) {
    msgCounters_[t] =
        stats.counterHandle(std::string("net.msgs.") + toString(static_cast<MsgType>(t)));
  }
  traversals_.reserve(topo_.totalSwitches());
  for (std::uint32_t i = 0; i < topo_.totalSwitches(); ++i) {
    traversals_.push_back(stats.counterHandle("switch." + std::to_string(i) + ".traversals"));
  }
  linkBusy_ = stats.counterHandle("net.link.busy_cycles");
  switchInjected_ = stats.counterHandle("net.switch_injected");
  sunkCounter_ = stats.counterHandle("net.sunk");
  latency_ = stats.samplerHandle("net.latency");

  // Precompute every legal route. Undefined pairs (mem->mem, switch -> a
  // memory outside its subtree) stay empty; nothing on the hot path asks
  // for them.
  const std::uint32_t epCount = 2 * numNodes_;
  routeTable_.resize(static_cast<std::size_t>(epCount + topo_.totalSwitches()) * epCount);
  for (std::uint32_t d = 0; d < epCount; ++d) {
    const Endpoint dst = d < numNodes_ ? procEp(d) : memEp(d - numNodes_);
    for (std::uint32_t s = 0; s < epCount; ++s) {
      const Endpoint src = s < numNodes_ ? procEp(s) : memEp(s - numNodes_);
      if (src.kind == EndpointKind::Mem && dst.kind == EndpointKind::Mem) continue;
      routeTable_[static_cast<std::size_t>(s) * epCount + d] = topo_.route(src, dst);
    }
    for (std::uint32_t f = 0; f < topo_.totalSwitches(); ++f) {
      const SwitchId sw{f / topo_.switchesPerStage(), f % topo_.switchesPerStage()};
      if (dst.kind == EndpointKind::Mem && !topo_.canReachMem(sw, dst.node)) {
        continue;
      }
      routeTable_[static_cast<std::size_t>(epCount + f) * epCount + d] =
          topo_.routeFromSwitch(sw, dst);
    }
  }
}

std::uint32_t Network::vertexOf(Endpoint ep) const {
  return ep.kind == EndpointKind::Proc ? ep.node : numNodes_ + ep.node;
}

std::uint32_t Network::vertexOf(SwitchId sw) const { return 2 * numNodes_ + topo_.flat(sw); }

void Network::setDeliveryHandler(Endpoint ep, std::function<void(const Message&)> handler) {
  handlers_.at(vertexOf(ep)) = std::move(handler);
}

void Network::setFaultInjector(FaultInjector* fault) {
  fault_ = fault;
  faultStallVertex_ = UINT32_MAX;
  if (fault_ != nullptr && fault_->linkStall().active()) {
    const LinkStallSpec& s = fault_->linkStall();
    faultStallVertex_ = vertexOf(SwitchId{s.stage, s.index});
  }
}

Cycle Network::serializationCycles(const Message& m) const {
  const std::uint32_t bytes = m.sizeBytes(cfg_.headerBytes, lineBytes_);
  const std::uint32_t flits = (bytes + cfg_.flitBytes - 1) / cfg_.flitBytes;
  return static_cast<Cycle>(flits) * cfg_.linkCyclesPerFlit;
}

Cycle Network::traverseLink(std::uint32_t from, std::uint32_t to, Cycle ready, const Message& m) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  Cycle& free = linkFree_[key];
  Cycle start = std::max(ready, free);
  if (from == faultStallVertex_) start = fault_->stallAdjustedStart(start);
  const Cycle ser = serializationCycles(m);
  free = start + ser;
  linkBusy_ += ser;
  return start + ser;
}

void Network::send(Message m) {
  if (m.id == 0) m.id = nextMsgId_++;
  m.birth = eq_.now();
  ++sent_;
  ++msgCounters_[static_cast<std::size_t>(m.type)];
  const std::uint32_t srcVertex = vertexOf(m.src);
  const Route& route = routeFor(srcVertex, vertexOf(m.dst));
  DRESAR_LOG_TRACE("net: @%llu inject %s", static_cast<unsigned long long>(eq_.now()),
                   m.describe().c_str());
  advance(std::move(m), &route, 0, srcVertex, eq_.now());
}

void Network::sendFromSwitch(SwitchId from, Message m) {
  if (m.id == 0) m.id = nextMsgId_++;
  m.birth = eq_.now();
  ++sent_;
  ++msgCounters_[static_cast<std::size_t>(m.type)];
  ++switchInjected_;
  const std::uint32_t srcVertex = vertexOf(from);
  const Route& route = routeFor(srcVertex, vertexOf(m.dst));
  DRESAR_LOG_TRACE("net: switch(%u,%u) inject %s", from.stage, from.index, m.describe().c_str());
  advance(std::move(m), &route, 0, srcVertex, eq_.now());
}

void Network::advance(Message m, const Route* route, std::size_t hopIdx, std::uint32_t fromVertex,
                      Cycle when) {
  if (hopIdx >= route->size()) throw std::logic_error("Network::advance: route exhausted");
  const Hop hop = (*route)[hopIdx];
  const std::uint32_t toVertex =
      hop.kind == Hop::Kind::Switch ? vertexOf(hop.sw) : vertexOf(hop.ep);
  const Cycle arrive = traverseLink(fromVertex, toVertex, when, m);

  if (hop.kind == Hop::Kind::Deliver) {
    eq_.scheduleAt(arrive, [this, m = std::move(m), ep = hop.ep] {
      if (fault_ != nullptr && FaultInjector::eligible(m)) {
        if (fault_->shouldDrop(m)) {
          DRESAR_LOG_TRACE("net: fault drop %s", m.describe().c_str());
          return;
        }
        if (const Cycle d = fault_->deliveryDelay(m); d > 0) {
          eq_.scheduleAfter(d, [this, m, ep] { deliverNow(m, ep); });
          return;
        }
      }
      deliverNow(m, ep);
    });
    return;
  }

  eq_.scheduleAt(arrive, [this, m = std::move(m), route, hopIdx, sw = hop.sw]() mutable {
    ++traversals_[topo_.flat(sw)];
    if (tracer_ != nullptr && m.txn != 0) {
      tracer_->record(m.txn, TxnEvent::SwitchHop, txnLegOf(m.type),
                      txnAtSwitch(topo_.flat(sw)), eq_.now());
    }
    Cycle delay = cfg_.coreDelay;
    if (snoop_ != nullptr) {
      std::vector<Message>& spawn = snoopScratch_;
      spawn.clear();
      const SnoopOutcome out = snoop_->onMessage(sw, eq_.now(), m, spawn);
      delay += out.extraDelay;
      for (auto& s : spawn) {
        // Switch-generated messages leave after the directory decision.
        eq_.scheduleAfter(delay, [this, sw, s = std::move(s)]() mutable {
          sendFromSwitch(sw, std::move(s));
        });
      }
      if (!out.pass) {
        ++sunk_;
        ++sunkCounter_;
        DRESAR_LOG_TRACE("net: %s sunk at switch(%u,%u)", m.describe().c_str(), sw.stage,
                         sw.index);
        return;
      }
    }
    advance(std::move(m), route, hopIdx + 1, vertexOf(sw), eq_.now() + delay);
  });
}

void Network::deliverNow(const Message& m, Endpoint ep) {
  latency_.add(static_cast<double>(eq_.now() - m.birth));
  auto& h = handlers_.at(vertexOf(ep));
  if (!h) throw std::logic_error("Network: no delivery handler for " + toString(ep));
  h(m);
}

}  // namespace dresar
