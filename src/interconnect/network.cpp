#include "interconnect/network.h"

#include <stdexcept>

#include "common/log.h"

namespace dresar {

Network::Network(const NetworkConfig& cfg, std::uint32_t numNodes, std::uint32_t lineBytes,
                 EventQueue& eq, StatRegistry& stats)
    : cfg_(cfg),
      numNodes_(numNodes),
      lineBytes_(lineBytes),
      eq_(eq),
      stats_(stats),
      topo_(numNodes, cfg.switchRadix) {
  handlers_.resize(2ull * numNodes_ + topo_.totalSwitches());
}

std::uint32_t Network::vertexOf(Endpoint ep) const {
  return ep.kind == EndpointKind::Proc ? ep.node : numNodes_ + ep.node;
}

std::uint32_t Network::vertexOf(SwitchId sw) const { return 2 * numNodes_ + topo_.flat(sw); }

void Network::setDeliveryHandler(Endpoint ep, std::function<void(const Message&)> handler) {
  handlers_.at(vertexOf(ep)) = std::move(handler);
}

Cycle Network::serializationCycles(const Message& m) const {
  const std::uint32_t bytes = m.sizeBytes(cfg_.headerBytes, lineBytes_);
  const std::uint32_t flits = (bytes + cfg_.flitBytes - 1) / cfg_.flitBytes;
  return static_cast<Cycle>(flits) * cfg_.linkCyclesPerFlit;
}

Cycle Network::traverseLink(std::uint32_t from, std::uint32_t to, Cycle ready, const Message& m) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  Cycle& free = linkFree_[key];
  const Cycle start = std::max(ready, free);
  const Cycle ser = serializationCycles(m);
  free = start + ser;
  stats_.counter("net.link.busy_cycles") += ser;
  return start + ser;
}

void Network::send(Message m) {
  if (m.id == 0) m.id = nextMsgId_++;
  m.birth = eq_.now();
  ++sent_;
  ++stats_.counter(std::string("net.msgs.") + toString(m.type));
  Route route = topo_.route(m.src, m.dst);
  const std::uint32_t srcVertex = vertexOf(m.src);
  DRESAR_LOG_TRACE("net: @%llu inject %s", static_cast<unsigned long long>(eq_.now()),
                   m.describe().c_str());
  advance(std::move(m), std::move(route), 0, srcVertex, eq_.now());
}

void Network::sendFromSwitch(SwitchId from, Message m) {
  if (m.id == 0) m.id = nextMsgId_++;
  m.birth = eq_.now();
  ++sent_;
  ++stats_.counter(std::string("net.msgs.") + toString(m.type));
  ++stats_.counter("net.switch_injected");
  Route route = topo_.routeFromSwitch(from, m.dst);
  const std::uint32_t srcVertex = vertexOf(from);
  DRESAR_LOG_TRACE("net: switch(%u,%u) inject %s", from.stage, from.index, m.describe().c_str());
  advance(std::move(m), std::move(route), 0, srcVertex, eq_.now());
}

void Network::advance(Message m, Route route, std::size_t hopIdx, std::uint32_t fromVertex,
                      Cycle when) {
  if (hopIdx >= route.size()) throw std::logic_error("Network::advance: route exhausted");
  const Hop hop = route[hopIdx];
  const std::uint32_t toVertex =
      hop.kind == Hop::Kind::Switch ? vertexOf(hop.sw) : vertexOf(hop.ep);
  const Cycle arrive = traverseLink(fromVertex, toVertex, when, m);

  if (hop.kind == Hop::Kind::Deliver) {
    eq_.scheduleAt(arrive, [this, m = std::move(m), ep = hop.ep] {
      stats_.sampler("net.latency").add(static_cast<double>(eq_.now() - m.birth));
      auto& h = handlers_.at(vertexOf(ep));
      if (!h) throw std::logic_error("Network: no delivery handler for " + toString(ep));
      h(m);
    });
    return;
  }

  eq_.scheduleAt(arrive, [this, m = std::move(m), route = std::move(route), hopIdx,
                          sw = hop.sw]() mutable {
    ++stats_.counter("switch." + std::to_string(topo_.flat(sw)) + ".traversals");
    Cycle delay = cfg_.coreDelay;
    if (snoop_ != nullptr) {
      std::vector<Message> spawn;
      const SnoopOutcome out = snoop_->onMessage(sw, eq_.now(), m, spawn);
      delay += out.extraDelay;
      for (auto& s : spawn) {
        // Switch-generated messages leave after the directory decision.
        eq_.scheduleAfter(delay, [this, sw, s = std::move(s)]() mutable {
          sendFromSwitch(sw, std::move(s));
        });
      }
      if (!out.pass) {
        ++sunk_;
        ++stats_.counter("net.sunk");
        DRESAR_LOG_TRACE("net: %s sunk at switch(%u,%u)", m.describe().c_str(), sw.stage,
                         sw.index);
        return;
      }
    }
    advance(std::move(m), std::move(route), hopIdx + 1, vertexOf(sw), eq_.now() + delay);
  });
}

}  // namespace dresar
