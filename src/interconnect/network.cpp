#include "interconnect/network.h"

#include <stdexcept>

#include "common/log.h"
#include "fault/injector.h"
#include "interconnect/routing.h"

namespace dresar {

namespace {
/// Seed for stateful routing policies' private RNG streams. Fixed (not
/// configurable): routing decisions must replay identically for a given
/// config, like every other internal stream.
constexpr std::uint64_t kRoutingSeed = 0xC0A9E5710B15ull;
}  // namespace

Network::Network(const NetworkConfig& cfg, std::uint32_t numNodes, std::uint32_t lineBytes,
                 SimKernel& kernel, const NetworkHooks& hooks)
    : cfg_(cfg),
      numNodes_(numNodes),
      lineBytes_(lineBytes),
      topo_(numNodes, cfg.switchRadix),
      map_(numNodes, topo_.switchesPerStage(), topo_.half(), kernel.shardCount()),
      hooks_(hooks),
      routing_(makeRoutingPolicy(cfg.routing, kRoutingSeed)) {
  // Adaptive costs read link reservations across the whole machine; the
  // sharded kernel keeps those per-shard (SystemConfig::validate rejects
  // the combination — this guards direct construction in tests).
  if (routing_->adaptive() && kernel.shardCount() > 1)
    throw std::invalid_argument("Network: adaptive routing requires simThreads=1");
  if (hooks_.fault != nullptr && hooks_.fault->linkStall().active()) {
    const LinkStallSpec& s = hooks_.fault->linkStall();
    faultStallVertex_ = vertexOf(SwitchId{s.stage, s.index});
  }
  shards_.reserve(kernel.shardCount());
  for (ShardId s = 0; s < kernel.shardCount(); ++s) {
    auto sh = std::make_unique<Shard>();
    sh->sched = &kernel.scheduler(s);
    StatRegistry& reg = kernel.registry(s);
    for (std::size_t t = 0; t < kMsgTypeCount; ++t) {
      sh->msgCounters[t] =
          reg.counterHandle(std::string("net.msgs.") + toString(static_cast<MsgType>(t)));
    }
    sh->linkBusy = reg.counterHandle("net.link.busy_cycles");
    sh->switchInjected = reg.counterHandle("net.switch_injected");
    sh->sunkCounter = reg.counterHandle("net.sunk");
    sh->latency = reg.samplerHandle("net.latency");
    sh->nextMsgId = (static_cast<std::uint64_t>(s) << 56) | 1;
    shards_.push_back(std::move(sh));
  }
  // Each switch's traversal counter registers in its owning shard's registry
  // so the bump in the hop closure (which executes there) is race-free.
  traversals_.reserve(topo_.totalSwitches());
  for (std::uint32_t i = 0; i < topo_.totalSwitches(); ++i) {
    traversals_.push_back(
        kernel.registry(map_.ofSwitch(i)).counterHandle("switch." + std::to_string(i) + ".traversals"));
  }

  // Precompute every legal route. Undefined pairs (mem->mem, switch -> a
  // memory outside its subtree) stay empty; nothing on the hot path asks
  // for them.
  const std::uint32_t epCount = 2 * numNodes_;
  routeTable_.resize(static_cast<std::size_t>(epCount + topo_.totalSwitches()) * epCount);
  for (std::uint32_t d = 0; d < epCount; ++d) {
    const Endpoint dst = d < numNodes_ ? procEp(d) : memEp(d - numNodes_);
    for (std::uint32_t s = 0; s < epCount; ++s) {
      const Endpoint src = s < numNodes_ ? procEp(s) : memEp(s - numNodes_);
      if (src.kind == EndpointKind::Mem && dst.kind == EndpointKind::Mem) continue;
      routeTable_[static_cast<std::size_t>(s) * epCount + d] = topo_.route(src, dst);
    }
    for (std::uint32_t f = 0; f < topo_.totalSwitches(); ++f) {
      const SwitchId sw{f / topo_.switchesPerStage(), f % topo_.switchesPerStage()};
      if (dst.kind == EndpointKind::Mem && !topo_.canReachMem(sw, dst.node)) {
        continue;
      }
      routeTable_[static_cast<std::size_t>(epCount + f) * epCount + d] =
          topo_.routeFromSwitch(sw, dst);
    }
  }

  // Adaptive policies additionally precompute every pair's candidate set
  // (the LCA-only default skips this entirely). Only turnaround paths have
  // freedom: proc->proc pairs and switch->proc injections.
  if (routing_->adaptive()) {
    for (std::uint32_t d = 0; d < numNodes_; ++d) {
      const Endpoint dst = procEp(d);
      for (std::uint32_t s = 0; s < numNodes_; ++s) {
        const TurnaroundChoices tc = topo_.turnaround(procEp(s), dst);
        if (tc.width <= 1) continue;
        ChoiceSet& cs = choiceTable_[(static_cast<std::uint64_t>(s) << 32) | d];
        cs.baseline = tc.baseline;
        cs.routes.reserve(tc.width);
        for (std::uint32_t f = 0; f < tc.width; ++f)
          cs.routes.push_back(topo_.routeChoice(procEp(s), dst, f));
      }
      for (std::uint32_t f = 0; f < topo_.totalSwitches(); ++f) {
        const SwitchId sw = topo_.unflat(f);
        const TurnaroundChoices tc = topo_.turnaroundFromSwitch(sw, dst);
        if (tc.width <= 1) continue;
        ChoiceSet& cs = choiceTable_[(static_cast<std::uint64_t>(epCount + f) << 32) | d];
        cs.baseline = tc.baseline;
        cs.routes.reserve(tc.width);
        for (std::uint32_t g = 0; g < tc.width; ++g)
          cs.routes.push_back(topo_.routeFromSwitchChoice(sw, dst, g));
      }
    }
  }
}

Network::~Network() = default;

std::uint32_t Network::vertexOf(Endpoint ep) const {
  return ep.kind == EndpointKind::Proc ? ep.node : numNodes_ + ep.node;
}

std::uint32_t Network::vertexOf(SwitchId sw) const { return 2 * numNodes_ + topo_.flat(sw); }

std::uint64_t Network::routeBacklog(const Route& r, std::uint32_t srcVertex, Cycle now) const {
  const Shard& sh = *shards_[0];
  std::uint64_t total = 0;
  std::uint32_t from = srcVertex;
  for (const Hop& h : r) {
    const std::uint32_t to =
        h.kind == Hop::Kind::Switch ? vertexOf(h.sw) : vertexOf(h.ep);
    const auto it = sh.linkFree.find((static_cast<std::uint64_t>(from) << 32) | to);
    if (it != sh.linkFree.end() && it->second > now) total += it->second - now;
    from = to;
  }
  return total;
}

const Route* Network::pickRoute(std::uint32_t fromVertex, std::uint32_t dstVertex) {
  if (!choiceTable_.empty()) {
    const auto it =
        choiceTable_.find((static_cast<std::uint64_t>(fromVertex) << 32) | dstVertex);
    if (it != choiceTable_.end()) {
      ChoiceSet& cs = it->second;
      const Cycle now = shards_[0]->sched->now();
      const std::uint32_t f = routing_->choose(
          static_cast<std::uint32_t>(cs.routes.size()), cs.baseline,
          [&](std::uint32_t g) { return routeBacklog(cs.routes[g], fromVertex, now); });
      return &cs.routes[f];
    }
  }
  return &routeFor(fromVertex, dstVertex);
}

std::uint64_t Network::messagesSent() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->sent;
  return n;
}

std::uint64_t Network::messagesSunk() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->sunk;
  return n;
}

Cycle Network::serializationCycles(const Message& m) const {
  const std::uint32_t bytes = m.sizeBytes(cfg_.headerBytes, lineBytes_);
  const std::uint32_t flits = (bytes + cfg_.flitBytes - 1) / cfg_.flitBytes;
  return static_cast<Cycle>(flits) * cfg_.linkCyclesPerFlit;
}

Cycle Network::traverseLink(std::uint32_t from, std::uint32_t to, Cycle ready, const Message& m) {
  Shard& sh = *shards_[map_.ofVertex(from)];
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  Cycle& free = sh.linkFree[key];
  Cycle start = std::max(ready, free);
  if (from == faultStallVertex_) start = hooks_.fault->stallAdjustedStart(start);
  const Cycle ser = serializationCycles(m);
  free = start + ser;
  sh.linkBusy += ser;
  return start + ser;
}

void Network::onInject(Shard& sh, Message& m) {
  if (m.id == 0) m.id = sh.nextMsgId++;
  m.birth = sh.sched->now();
  ++sh.sent;
  ++sh.msgCounters[static_cast<std::size_t>(m.type)];
}

void Network::send(Message m) {
  const std::uint32_t srcVertex = vertexOf(m.src);
  Shard& sh = *shards_[map_.ofVertex(srcVertex)];
  onInject(sh, m);
  const Route* route = pickRoute(srcVertex, vertexOf(m.dst));
  DRESAR_LOG_TRACE("net: @%llu inject %s", static_cast<unsigned long long>(sh.sched->now()),
                   m.describe().c_str());
  advance(std::move(m), route, 0, srcVertex, sh.sched->now());
}

void Network::sendFromSwitch(SwitchId from, Message m) {
  const std::uint32_t srcVertex = vertexOf(from);
  Shard& sh = *shards_[map_.ofVertex(srcVertex)];
  onInject(sh, m);
  ++sh.switchInjected;
  const Route* route = pickRoute(srcVertex, vertexOf(m.dst));
  DRESAR_LOG_TRACE("net: switch(%u,%u) inject %s", from.stage, from.index, m.describe().c_str());
  advance(std::move(m), route, 0, srcVertex, sh.sched->now());
}

void Network::advance(Message m, const Route* route, std::size_t hopIdx, std::uint32_t fromVertex,
                      Cycle when) {
  if (hopIdx >= route->size()) throw std::logic_error("Network::advance: route exhausted");
  const Hop hop = (*route)[hopIdx];
  const std::uint32_t toVertex =
      hop.kind == Hop::Kind::Switch ? vertexOf(hop.sw) : vertexOf(hop.ep);
  const Cycle arrive = traverseLink(fromVertex, toVertex, when, m);
  Scheduler& from = *shards_[map_.ofVertex(fromVertex)]->sched;
  const ShardId dstShard = map_.ofVertex(toVertex);

  if (hop.kind == Hop::Kind::Deliver) {
    from.post(dstShard, arrive, [this, m = std::move(m), ep = hop.ep] {
      if (hooks_.fault != nullptr && FaultInjector::eligible(m)) {
        if (hooks_.fault->shouldDrop(m)) {
          DRESAR_LOG_TRACE("net: fault drop %s", m.describe().c_str());
          return;
        }
        if (const Cycle d = hooks_.fault->deliveryDelay(m); d > 0) {
          Shard& at = *shards_[map_.ofVertex(vertexOf(ep))];
          at.sched->scheduleIn(d, [this, m, ep] { deliverNow(m, ep); });
          return;
        }
      }
      deliverNow(m, ep);
    });
    return;
  }

  from.post(dstShard, arrive, [this, m = std::move(m), route, hopIdx, sw = hop.sw]() mutable {
    Shard& at = *shards_[map_.ofSwitch(topo_.flat(sw))];
    ++traversals_[topo_.flat(sw)];
    if (hooks_.tracer != nullptr && m.txn != 0) {
      hooks_.tracer->record(m.txn, TxnEvent::SwitchHop, txnLegOf(m.type),
                            txnAtSwitch(topo_.flat(sw)), at.sched->now());
    }
    Cycle delay = cfg_.coreDelay;
    if (hooks_.snoop != nullptr) {
      std::vector<Message>& spawn = at.snoopScratch;
      spawn.clear();
      const SnoopOutcome out = hooks_.snoop->onMessage(sw, at.sched->now(), m, spawn);
      delay += out.extraDelay;
      for (auto& s : spawn) {
        // Switch-generated messages leave after the directory decision.
        at.sched->scheduleIn(delay, [this, sw, s = std::move(s)]() mutable {
          sendFromSwitch(sw, std::move(s));
        });
      }
      if (!out.pass) {
        ++at.sunk;
        ++at.sunkCounter;
        DRESAR_LOG_TRACE("net: %s sunk at switch(%u,%u)", m.describe().c_str(), sw.stage,
                         sw.index);
        return;
      }
    }
    advance(std::move(m), route, hopIdx + 1, vertexOf(sw), at.sched->now() + delay);
  });
}

void Network::deliverNow(const Message& m, Endpoint ep) {
  Shard& at = *shards_[map_.ofVertex(vertexOf(ep))];
  at.latency.add(static_cast<double>(at.sched->now() - m.birth));
  if (hooks_.sink == nullptr)
    throw std::logic_error("Network: no delivery sink for " + toString(ep));
  hooks_.sink->deliver(ep, m);
}

}  // namespace dresar
