// Pluggable turnaround routing policies (ROADMAP "congestion scenarios").
// The butterfly gives every proc<->mem pair a unique minimal path, so the
// only routing freedom in the machine is the turnaround free digit of
// proc->proc (c2c data, switch-generated) traffic: each digit in the
// window selects a different — but equally long — turnaround switch
// (Butterfly::turnaround). A RoutingPolicy picks that digit.
//
// Shipped policies:
//
//   * "lca" — the deterministic baseline: always the symmetric
//     (cs + cq) % width digit the paper's fixed LCA route uses. Networks
//     skip cost evaluation entirely for this policy (adaptive() == false),
//     so default-config output stays byte-identical.
//
//   * "adaptive" — adaptive-minimal: scores every candidate digit by the
//     downstream congestion the network reports (credit debt and link
//     backlog along the candidate route) and picks the cheapest. Ties
//     prefer the LCA baseline when it is among the minima — an idle network
//     routes exactly like "lca" — and otherwise break by a per-instance
//     xorshift64* stream so runs stay deterministic and replayable.
//
// The factory throws std::invalid_argument on unknown names;
// NetworkConfig::validationErrors() reports the same names earlier with the
// full valid list so misconfigured sweeps fail before burning simulation
// hours.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dresar {

/// Scores candidate turnaround digit f in [0, width); higher = more
/// congested. Networks supply this from their own queue/credit state.
using RouteCostFn = std::function<std::uint64_t(std::uint32_t f)>;

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// False: choose() always returns `baseline` and the network may skip
  /// building candidate routes and cost functions (the LCA fast path).
  [[nodiscard]] virtual bool adaptive() const = 0;

  /// Pick a digit in [0, width). `baseline` is the deterministic LCA digit;
  /// `cost` scores a candidate. Stateful policies advance internal state
  /// only when a decision actually requires it, so idle-network runs are
  /// reproducible regardless of call count.
  [[nodiscard]] virtual std::uint32_t choose(std::uint32_t width, std::uint32_t baseline,
                                             const RouteCostFn& cost) = 0;
};

/// Factory + registry. Names are stable spec/config tokens. `seed` feeds
/// stateful policies' private RNG streams (ignored by "lca").
[[nodiscard]] std::unique_ptr<RoutingPolicy> makeRoutingPolicy(const std::string& name,
                                                               std::uint64_t seed);

/// Registered policy names, in deterministic registration order.
[[nodiscard]] const std::vector<std::string>& routingPolicyNames();

[[nodiscard]] bool isRoutingPolicy(const std::string& name);

/// "lca, adaptive" — for validation/usage messages.
[[nodiscard]] std::string routingPolicyList();

}  // namespace dresar
