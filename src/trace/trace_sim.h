// Trace-driven simulator for the commercial workloads (paper Section 5.1,
// Table 3): a single-issue processor per node, one 2MB 4-way set-associative
// cache, the MSI cache protocol, a full-map home directory, constant service
// latencies, and the switch-directory interconnect modeled structurally over
// the same butterfly BMIN (which switches a request path crosses, which
// entries a reply deposits, which a copyback clears).
//
// Transactions complete atomically between records — the sequential
// abstraction the paper adopted "for simplicity and limiting simulation
// execution time". TRANSIENT states therefore never persist; the one
// protocol artifact that survives is the *stale* switch entry (the owner
// lost the line via a path that missed the switch), which costs a retry trip
// before the home services the request, exactly as in the event-driven
// model.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "coherence/cache_array.h"
#include "interconnect/topology.h"
#include "switchdir/dir_cache.h"
#include "trace/ref_stream.h"

namespace dresar {

struct TraceMetrics {
  std::uint64_t refs = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t readHits = 0;
  std::uint64_t readMisses = 0;
  std::uint64_t svcCleanLocal = 0;
  std::uint64_t svcCleanRemote = 0;
  std::uint64_t svcCtoCLocal = 0;   ///< home-serviced c2c, local home
  std::uint64_t svcCtoCRemote = 0;  ///< home-serviced c2c, remote home
  std::uint64_t svcSwitchDir = 0;   ///< re-routed by a switch directory
  std::uint64_t homeCtoC = 0;       ///< c2c transfers the home had to forward
  std::uint64_t sdDeposits = 0;
  std::uint64_t sdStaleRetries = 0;
  double totalReadLatency = 0.0;  ///< Figure 10 numerator (read stall)
  Cycle execTime = 0;             ///< max per-processor accumulated cycles

  [[nodiscard]] std::uint64_t ctoc() const {
    return svcCtoCLocal + svcCtoCRemote + svcSwitchDir;
  }
  [[nodiscard]] double dirtyFraction() const {
    return readMisses == 0 ? 0.0 : static_cast<double>(ctoc()) / readMisses;
  }
  [[nodiscard]] double avgReadLatency() const {
    return reads == 0 ? 0.0 : totalReadLatency / static_cast<double>(reads);
  }
};

/// Per-block miss accounting for Figure 2.
struct BlockStat {
  std::uint32_t misses = 0;
  std::uint32_t ctocs = 0;
};

class TraceSimulator {
 public:
  explicit TraceSimulator(const TraceConfig& cfg);

  /// Process one trace record; returns the cycles charged to `pid` for it
  /// (the read service latency, or 1 for a release-consistency write), so
  /// streaming drivers can sample per-reference tail latency.
  Cycle access(NodeId pid, Addr addr, bool write);
  Cycle access(const TraceRecord& r) { return access(r.pid, r.addr, r.write); }

  /// Drive an entire reference stream through the simulator (calls
  /// finalize()). Works for TPC generators, trace files and traffic models.
  void run(RefStream& gen);

  /// Recompute execTime from the per-processor cycle totals; call after
  /// feeding records via access() directly.
  void finalize();

  [[nodiscard]] const TraceMetrics& metrics() const { return m_; }
  [[nodiscard]] const TraceConfig& config() const { return cfg_; }

  void enableBlockStats() { collectBlocks_ = true; }
  [[nodiscard]] const std::unordered_map<Addr, BlockStat>& blockStats() const { return blocks_; }

  /// Invariant support for tests.
  [[nodiscard]] std::uint64_t switchEntries(SDState s) const;

 private:
  enum class TDir : std::uint8_t { Uncached, Shared, Modified };
  struct DirEntry {
    TDir state = TDir::Uncached;
    NodeId owner = kInvalidNode;
    NodeMask sharers = 0;
  };

  [[nodiscard]] NodeId homeOf(Addr block) const { return cfg_.homeOf(block); }
  DirEntry& dir(Addr block) { return dir_[block]; }

  /// forwardPath(p, m) flattened to flat switch ids, precomputed per
  /// (processor, memory) pair — the hot path walks it on every access.
  [[nodiscard]] const std::vector<std::uint32_t>& pathOf(NodeId who, NodeId mem) const {
    return pathTable_[who * cfg_.numNodes + mem];
  }

  /// Clear this block's entries along `who`'s forward path to the home
  /// (models the copyback/writeback snoop).
  void clearPathEntries(NodeId who, Addr block);
  /// Deposit {MODIFIED, owner} along the home->owner backward path (models
  /// the WriteReply snoop).
  void depositEntries(NodeId owner, Addr block);

  Cycle doRead(NodeId pid, Addr block);
  Cycle doWrite(NodeId pid, Addr block);
  /// Install `block` in pid's cache with `state`, handling dirty victims.
  void fill(NodeId pid, Addr block, CacheState state);

  void noteMiss(Addr block, bool ctoc);

  TraceConfig cfg_;
  Butterfly topo_;
  std::vector<std::vector<std::uint32_t>> pathTable_;  // by (proc * numNodes + mem)
  std::vector<CacheArray> caches_;              // one per processor
  std::vector<SwitchDirCache> switchDirs_;      // one per switch (may be empty)
  std::unordered_map<Addr, DirEntry> dir_;
  std::vector<Cycle> procCycles_;
  TraceMetrics m_;
  bool collectBlocks_ = false;
  std::unordered_map<Addr, BlockStat> blocks_;
};

}  // namespace dresar
