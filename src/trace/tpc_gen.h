// Synthetic TPC-C / TPC-D memory-reference generators.
//
// The paper evaluated commercial workloads from proprietary IBM COMPASS
// traces; these generators replace them (DESIGN.md substitution #2) with
// streams calibrated to the sharing statistics the paper publishes:
//
//   * TPC-C: ~38% of read misses are cache-to-cache; at 16M references,
//     ~440K read misses over ~130K distinct blocks with ~170K c2c; the top
//     10% of blocks account for ~88% of the c2c transfers (Figure 2).
//   * TPC-D: ~62% of read misses are cache-to-cache.
//
// Structure: each processor mixes (a) private data (cold misses, then cache
// resident), (b) a migratory hot set — a Zipf-ranked pool of blocks that a
// processor reads and then updates, handing dirty ownership around (OLTP
// rows / DSS shared intermediates), and (c) a read-mostly warm set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/ref_stream.h"

namespace dresar {

struct TpcParams {
  const char* name = "TPC-C";
  std::uint64_t refs = 2'000'000;
  std::uint32_t numProcs = 16;
  std::uint32_t lineBytes = 32;
  // Region sizes, in blocks.
  std::uint32_t privatePerProc = 6000;
  std::uint32_t hotBlocks = 12000;
  std::uint32_t warmBlocks = 8000;
  // Reference mix.
  double pHot = 0.047;   ///< probability a step is a migratory read+write pair
  double pWarm = 0.015;  ///< probability a step is a warm-set access
  double privateWriteFrac = 0.25;
  double warmWriteFrac = 0.01;
  double zipfHot = 0.5;
  double zipfPrivate = 0.35;
  std::uint64_t seed = 0x7357'c0de;

  /// OLTP profile (Figure 1: ~38% dirty reads).
  static TpcParams tpcc(std::uint64_t refs);
  /// DSS profile (Figure 1: ~62% dirty reads).
  static TpcParams tpcd(std::uint64_t refs);
};

/// Deterministic pull-based generator: call next() until it returns false.
/// Implements RefStream, so it plugs into every trace-driven consumer
/// without materializing a single record.
class TpcGenerator final : public RefStream {
 public:
  explicit TpcGenerator(const TpcParams& p);

  /// Produces the next record; false when `refs` records have been emitted.
  bool next(TraceRecord& out) override;

  [[nodiscard]] const TpcParams& params() const { return p_; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

  /// Address helpers (used by tests to reason about regions).
  [[nodiscard]] Addr privateAddr(NodeId pid, std::uint32_t block) const;
  [[nodiscard]] Addr hotAddr(std::uint32_t block) const;
  [[nodiscard]] Addr warmAddr(std::uint32_t block) const;

 private:
  void synthesizeStep();

  TpcParams p_;
  Rng rng_;
  ZipfSampler hotZipf_;
  ZipfSampler privZipf_;
  std::uint64_t emitted_ = 0;
  std::vector<TraceRecord> pending_;  ///< records queued by the current step
  std::size_t pendingIdx_ = 0;
  std::vector<NodeId> hotOwner_;      ///< last writer per hot block
};

}  // namespace dresar
