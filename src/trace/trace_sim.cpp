#include "trace/trace_sim.h"

namespace dresar {

namespace {
NodeMask bit(NodeId n) { return nodeBit(n); }
}  // namespace

TraceSimulator::TraceSimulator(const TraceConfig& cfg)
    : cfg_(cfg), topo_(cfg.numNodes, 8), procCycles_(cfg.numNodes, 0) {
  cfg_.validate();
  caches_.reserve(cfg_.numNodes);
  for (NodeId n = 0; n < cfg_.numNodes; ++n) {
    caches_.emplace_back(cfg_.cacheBytes, cfg_.cacheAssoc, cfg_.lineBytes);
  }
  if (cfg_.switchDir.enabled()) {
    switchDirs_.reserve(topo_.totalSwitches());
    for (std::uint32_t i = 0; i < topo_.totalSwitches(); ++i) {
      switchDirs_.emplace_back(cfg_.switchDir.entries, cfg_.switchDir.associativity,
                               cfg_.lineBytes, cfg_.switchDir.replacementPolicy);
    }
  }
  pathTable_.reserve(static_cast<std::size_t>(cfg_.numNodes) * cfg_.numNodes);
  for (NodeId p = 0; p < cfg_.numNodes; ++p) {
    for (NodeId m = 0; m < cfg_.numNodes; ++m) {
      std::vector<std::uint32_t> flats;
      for (const SwitchId sw : topo_.forwardPath(p, m)) flats.push_back(topo_.flat(sw));
      pathTable_.push_back(std::move(flats));
    }
  }
}

void TraceSimulator::clearPathEntries(NodeId who, Addr block) {
  if (switchDirs_.empty()) return;
  for (const std::uint32_t f : pathOf(who, homeOf(block))) {
    SwitchDirCache& c = switchDirs_[f];
    if (SDEntry* e = c.find(block); e != nullptr) c.invalidate(*e);
  }
}

void TraceSimulator::depositEntries(NodeId owner, Addr block) {
  if (switchDirs_.empty()) return;
  for (const std::uint32_t f : pathOf(owner, homeOf(block))) {
    SwitchDirCache& c = switchDirs_[f];
    if (SDEntry* e = c.allocate(block); e != nullptr) {
      e->state = SDState::Modified;
      e->owner = owner;
      ++m_.sdDeposits;
    }
  }
}

void TraceSimulator::noteMiss(Addr block, bool ctoc) {
  if (!collectBlocks_) return;
  BlockStat& b = blocks_[block];
  ++b.misses;
  if (ctoc) ++b.ctocs;
}

void TraceSimulator::fill(NodeId pid, Addr block, CacheState state) {
  Victim v;
  CacheLine* line = caches_[pid].allocate(block, v);
  if (v.evicted && v.dirty) {
    // WriteBack: memory is made consistent, the directory entry drops to
    // UNCACHED, and the victim's entries on the write-back path are cleared.
    DirEntry& d = dir(v.block);
    if (d.state == TDir::Modified && d.owner == pid) {
      d.state = TDir::Uncached;
      d.owner = kInvalidNode;
      d.sharers = 0;
    }
    clearPathEntries(pid, v.block);
  }
  line->state = state;
}

Cycle TraceSimulator::doRead(NodeId pid, Addr block) {
  ++m_.reads;
  Cycle lat = cfg_.cacheAccess;
  if (caches_[pid].find(block) != nullptr) {
    ++m_.readHits;
  } else {
    ++m_.readMisses;
    DirEntry& d = dir(block);
    const bool localHome = homeOf(block) == pid;
    bool served = false;
    bool wasCtoC = false;

    if (!switchDirs_.empty()) {
      // Snoop the switch directories along the forward path, nearest first.
      for (const std::uint32_t f : pathOf(pid, homeOf(block))) {
        SwitchDirCache& c = switchDirs_[f];
        SDEntry* e = c.find(block);
        if (e == nullptr || e->state != SDState::Modified) continue;
        const bool fresh = d.state == TDir::Modified && d.owner == e->owner && e->owner != pid;
        if (!fresh) {
          // Stale entry: in the event-driven protocol the owner bounces the
          // request with a marked Retry; charge the round trip and fall
          // through to the home.
          c.invalidate(*e);
          ++m_.sdStaleRetries;
          lat += cfg_.staleRetryPenalty;
          continue;
        }
        // Switch-directory hit: the request is sunk and re-routed straight
        // to the owner cache; home DRAM lookup and controller are bypassed.
        const NodeId owner = e->owner;
        if (CacheLine* ol = caches_[owner].find(block); ol != nullptr) ol->state = CacheState::S;
        d.state = TDir::Shared;
        d.sharers = bit(owner) | bit(pid);
        d.owner = kInvalidNode;
        clearPathEntries(owner, block);  // the marked copyback clears entries
        lat += cfg_.switchDirHit;
        ++m_.svcSwitchDir;
        served = true;
        wasCtoC = true;
        break;
      }
    }

    if (!served) {
      switch (d.state) {
        case TDir::Uncached:
        case TDir::Shared:
          d.state = TDir::Shared;
          d.sharers |= bit(pid);
          lat += localHome ? cfg_.localMemory : cfg_.remoteMemory;
          ++(localHome ? m_.svcCleanLocal : m_.svcCleanRemote);
          break;
        case TDir::Modified: {
          // Home-serviced cache-to-cache transfer.
          const NodeId owner = d.owner;
          if (CacheLine* ol = caches_[owner].find(block); ol != nullptr)
            ol->state = CacheState::S;
          d.state = TDir::Shared;
          d.sharers = bit(owner) | bit(pid);
          d.owner = kInvalidNode;
          clearPathEntries(owner, block);  // the copyback clears entries
          lat += localHome ? cfg_.ctocLocalHome : cfg_.ctocRemoteHome;
          ++m_.homeCtoC;
          ++(localHome ? m_.svcCtoCLocal : m_.svcCtoCRemote);
          wasCtoC = true;
          break;
        }
      }
    }
    fill(pid, block, CacheState::S);
    noteMiss(block, wasCtoC);
  }
  m_.totalReadLatency += static_cast<double>(lat);
  procCycles_[pid] += lat;
  return lat;
}

Cycle TraceSimulator::doWrite(NodeId pid, Addr block) {
  ++m_.writes;
  // Release consistency: write latency is hidden (paper: "all write requests
  // are cache hits"), but the coherence actions still happen.
  procCycles_[pid] += 1;
  CacheLine* line = caches_[pid].find(block);
  if (line != nullptr && line->state == CacheState::M) return 1;

  DirEntry& d = dir(block);
  switch (d.state) {
    case TDir::Modified:
      if (d.owner != pid) {
        // Recall the dirty line from its owner.
        if (CacheLine* ol = caches_[d.owner].find(block); ol != nullptr)
          caches_[d.owner].invalidate(*ol);
        clearPathEntries(d.owner, block);  // recall copyback clears entries
      }
      break;
    case TDir::Shared:
      for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        if (n == pid || (d.sharers & bit(n)) == 0) continue;
        if (CacheLine* sl = caches_[n].find(block); sl != nullptr) caches_[n].invalidate(*sl);
      }
      break;
    case TDir::Uncached:
      break;
  }
  // A WriteRequest traversing the forward path invalidates matching entries.
  clearPathEntries(pid, block);
  d.state = TDir::Modified;
  d.owner = pid;
  d.sharers = 0;
  if (line != nullptr) {
    line->state = CacheState::M;
  } else {
    fill(pid, block, CacheState::M);
  }
  // The WriteReply deposits fresh ownership info on its backward path.
  depositEntries(pid, block);
  return 1;
}

Cycle TraceSimulator::access(NodeId pid, Addr addr, bool write) {
  const Addr block = cfg_.blockOf(addr);
  ++m_.refs;
  return write ? doWrite(pid, block) : doRead(pid, block);
}

void TraceSimulator::run(RefStream& gen) {
  TraceRecord r;
  while (gen.next(r)) access(r);
  finalize();
}

void TraceSimulator::finalize() {
  Cycle maxc = 0;
  for (const Cycle c : procCycles_) maxc = std::max(maxc, c);
  m_.execTime = maxc;
}

std::uint64_t TraceSimulator::switchEntries(SDState s) const {
  std::uint64_t n = 0;
  for (const auto& c : switchDirs_) n += c.countState(s);
  return n;
}

}  // namespace dresar
