#include "trace/trace_file.h"

#include <array>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dresar {

namespace {

void putU32(std::ostream& os, std::uint32_t v) {
  std::array<char, 4> b{static_cast<char>(v), static_cast<char>(v >> 8),
                        static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  os.write(b.data(), b.size());
}

std::uint32_t getU32(std::istream& is) {
  std::array<unsigned char, 4> b{};
  is.read(reinterpret_cast<char*>(b.data()), b.size());
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
}

void putU64(std::ostream& os, std::uint64_t v) {
  putU32(os, static_cast<std::uint32_t>(v));
  putU32(os, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t getU64(std::istream& is) {
  const std::uint64_t lo = getU32(is);
  const std::uint64_t hi = getU32(is);
  return lo | (hi << 32);
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& os, bool binary) : os_(os), binary_(binary) {
  if (binary_) {
    putU32(os_, kTraceMagic);
    putU32(os_, kTraceVersion);
  } else {
    os_ << "# dresar trace v" << kTraceVersion << "\n# <pid> <r|w> <hex-address>\n";
  }
}

void TraceWriter::write(const TraceRecord& r) {
  if (binary_) {
    // pid:2 | flags:2 | addr:8
    std::array<char, 4> head{static_cast<char>(r.pid), static_cast<char>(r.pid >> 8),
                             static_cast<char>(r.write ? 1 : 0), 0};
    os_.write(head.data(), head.size());
    putU64(os_, r.addr);
  } else {
    os_ << r.pid << ' ' << (r.write ? 'w' : 'r') << ' ' << std::hex << r.addr << std::dec
        << '\n';
  }
  ++count_;
}

TraceReader::TraceReader(std::istream& is) : is_(is) {
  const int c = is_.peek();
  if (c == 'C') {  // first byte of little-endian kTraceMagic ("CRTD" on disk)
    const std::uint32_t magic = getU32(is_);
    if (magic != kTraceMagic) throw std::runtime_error("trace: bad magic");
    const std::uint32_t version = getU32(is_);
    if (version != kTraceVersion) {
      throw std::runtime_error("trace: unsupported version " + std::to_string(version));
    }
    binary_ = true;
  }
}

bool TraceReader::next(TraceRecord& out) {
  if (binary_) {
    std::array<unsigned char, 4> head{};
    is_.read(reinterpret_cast<char*>(head.data()), head.size());
    if (is_.gcount() == 0) return false;
    if (is_.gcount() != static_cast<std::streamsize>(head.size())) {
      throw std::runtime_error("trace: truncated binary record");
    }
    out.pid = static_cast<NodeId>(head[0] | (head[1] << 8));
    out.write = head[2] != 0;
    out.addr = getU64(is_);
    if (!is_) throw std::runtime_error("trace: truncated binary record");
    ++count_;
    return true;
  }
  std::string line;
  while (std::getline(is_, line)) {
    ++line_;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint32_t pid = 0;
    std::string rw;
    std::string hex;
    if (!(ls >> pid >> rw >> hex) || (rw != "r" && rw != "w")) {
      throw std::runtime_error("trace: malformed line " + std::to_string(line_) + ": " + line);
    }
    out.pid = pid;
    out.write = rw == "w";
    out.addr = std::stoull(hex, nullptr, 16);
    ++count_;
    return true;
  }
  return false;
}

void dumpTrace(RefStream& gen, std::ostream& os, bool binary) {
  TraceWriter w(os, binary);
  TraceRecord r;
  while (gen.next(r)) w.write(r);
}

std::vector<TraceRecord> loadTrace(std::istream& is) {
  TraceReader rd(is);
  std::vector<TraceRecord> out;
  TraceRecord r;
  while (rd.next(r)) out.push_back(r);
  return out;
}

}  // namespace dresar
