// Trace file I/O. The paper consumed COMPASS traces; downstream users will
// have their own. The format is a simple line-oriented text format,
//
//     # comment
//     <pid> <r|w> <hex-address>
//
// plus a compact binary variant (12 bytes/record, little-endian) for large
// traces. Readers auto-detect the format from the magic header.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/tpc_gen.h"

namespace dresar {

/// Binary format magic ("DTRC" + version 1).
inline constexpr std::uint32_t kTraceMagic = 0x44545243u;
inline constexpr std::uint32_t kTraceVersion = 1;

class TraceWriter {
 public:
  /// `binary` selects the compact format.
  explicit TraceWriter(std::ostream& os, bool binary = false);
  void write(const TraceRecord& r);
  [[nodiscard]] std::uint64_t written() const { return count_; }

 private:
  std::ostream& os_;
  bool binary_;
  std::uint64_t count_ = 0;
};

/// Implements RefStream: a trace file replays through TraceSimulator::run
/// (or any other stream consumer) without loading it into memory.
class TraceReader final : public RefStream {
 public:
  /// Auto-detects text vs. binary from the stream head.
  explicit TraceReader(std::istream& is);
  /// Returns false at end of trace. Throws std::runtime_error on malformed
  /// input (with the offending line number for the text format).
  bool next(TraceRecord& out) override;
  [[nodiscard]] std::uint64_t consumed() const { return count_; }

 private:
  std::istream& is_;
  bool binary_ = false;
  std::uint64_t count_ = 0;
  std::uint64_t line_ = 0;
};

/// Convenience: stream a generator into a file and read a file back into a
/// vector (tests / small traces only — large traces should stay streams).
void dumpTrace(RefStream& gen, std::ostream& os, bool binary = false);
std::vector<TraceRecord> loadTrace(std::istream& is);

}  // namespace dresar
