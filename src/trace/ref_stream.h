// The one pull-based interface every trace-driven consumer reads from.
//
// A reference stream produces (processor, address, read/write) records one at
// a time; nothing is ever materialized, so a stream of billions of references
// (millions of simulated users) costs O(1) memory. Producers: the synthetic
// TPC generators (trace/tpc_gen.h), trace files (trace/trace_file.h) and the
// multi-tenant traffic models (traffic/traffic_model.h). Consumers: the
// trace-driven simulator (TraceSimulator::run) and anything else that wants
// to walk a reference stream.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace dresar {

struct TraceRecord {
  NodeId pid = 0;
  Addr addr = 0;
  bool write = false;
};

/// Deterministic pull iterator: call next() until it returns false. A stream
/// is single-pass; construct a fresh one (same parameters, same seed) to
/// replay the identical sequence.
class RefStream {
 public:
  virtual ~RefStream() = default;

  /// Produces the next record; false when the stream is exhausted.
  virtual bool next(TraceRecord& out) = 0;
};

}  // namespace dresar
