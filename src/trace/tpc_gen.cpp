#include "trace/tpc_gen.h"

namespace dresar {

namespace {
// Region bases, far apart so regions never overlap and page-interleave
// across all homes.
constexpr Addr kPrivateBase = Addr{1} << 33;
constexpr Addr kHotBase = Addr{1} << 34;
constexpr Addr kWarmBase = Addr{1} << 35;
constexpr Addr kPrivateStride = Addr{1} << 28;  // per-processor private arena
}  // namespace

namespace {
// Region sizes are calibrated at 2M references; scaling them with the trace
// length keeps the Figure 1/2 ratios (dirty fraction, block-count
// concentration) length-invariant — cold misses stay proportional to reuse
// misses.
std::uint32_t scaled(std::uint32_t at2M, std::uint64_t refs, std::uint32_t floor) {
  const double f = static_cast<double>(refs) / 2'000'000.0;
  const auto v = static_cast<std::uint32_t>(static_cast<double>(at2M) * f);
  return std::max(v, floor);
}
}  // namespace

TpcParams TpcParams::tpcc(std::uint64_t refs) {
  TpcParams p;
  p.name = "TPC-C";
  p.refs = refs;
  p.privatePerProc = scaled(p.privatePerProc, refs, 200);
  p.hotBlocks = scaled(p.hotBlocks, refs, 400);
  p.warmBlocks = scaled(p.warmBlocks, refs, 200);
  return p;
}

TpcParams TpcParams::tpcd(std::uint64_t refs) {
  // DSS: most read misses touch shared, recently produced data (scan results
  // and intermediates migrating between producers and consumers), so the
  // dirty fraction is much higher and the private cold-miss mass smaller.
  TpcParams p;
  p.name = "TPC-D";
  p.refs = refs;
  p.privatePerProc = scaled(1200, refs, 100);
  p.hotBlocks = scaled(48000, refs, 1000);
  p.warmBlocks = scaled(2500, refs, 200);
  p.pHot = 0.09;
  p.pWarm = 0.012;
  p.privateWriteFrac = 0.2;
  p.warmWriteFrac = 0.005;
  p.zipfHot = 0.25;
  p.seed = 0xd55'7ab1e;
  return p;
}

TpcGenerator::TpcGenerator(const TpcParams& p)
    : p_(p),
      rng_(p.seed),
      hotZipf_(p.hotBlocks, p.zipfHot),
      privZipf_(p.privatePerProc, p.zipfPrivate),
      hotOwner_(p.hotBlocks, kInvalidNode) {
  pending_.reserve(4);
}

Addr TpcGenerator::privateAddr(NodeId pid, std::uint32_t block) const {
  return kPrivateBase + pid * kPrivateStride + static_cast<Addr>(block) * p_.lineBytes;
}

Addr TpcGenerator::hotAddr(std::uint32_t block) const {
  return kHotBase + static_cast<Addr>(block) * p_.lineBytes;
}

Addr TpcGenerator::warmAddr(std::uint32_t block) const {
  return kWarmBase + static_cast<Addr>(block) * p_.lineBytes;
}

void TpcGenerator::synthesizeStep() {
  pending_.clear();
  pendingIdx_ = 0;
  const auto pid = static_cast<NodeId>(rng_.below(p_.numProcs));
  const double dice = rng_.uniform();
  if (dice < p_.pHot) {
    // Migratory access: read the row (c2c from the previous writer), then
    // update it. Prefer a processor other than the current owner so the
    // block keeps migrating.
    auto block = static_cast<std::uint32_t>(hotZipf_.sample(rng_));
    NodeId actor = pid;
    if (hotOwner_[block] == actor) actor = (actor + 1) % p_.numProcs;
    pending_.push_back({actor, hotAddr(block), false});
    pending_.push_back({actor, hotAddr(block), true});
    hotOwner_[block] = actor;
    return;
  }
  if (dice < p_.pHot + p_.pWarm) {
    auto block = static_cast<std::uint32_t>(rng_.below(p_.warmBlocks));
    pending_.push_back({pid, warmAddr(block), rng_.chance(p_.warmWriteFrac)});
    return;
  }
  auto block = static_cast<std::uint32_t>(privZipf_.sample(rng_));
  pending_.push_back({pid, privateAddr(pid, block), rng_.chance(p_.privateWriteFrac)});
}

bool TpcGenerator::next(TraceRecord& out) {
  if (emitted_ >= p_.refs) return false;
  while (pendingIdx_ >= pending_.size()) synthesizeStep();
  out = pending_[pendingIdx_++];
  ++emitted_;
  return true;
}

}  // namespace dresar
