#include "fault/injector.h"

#include <sstream>
#include <stdexcept>

namespace dresar {

namespace {
// Stream separation: decorrelate the per-class Rng states so e.g. raising the
// drop rate never changes which deliveries get delayed.
constexpr std::uint64_t kStreamStride = 0x9E3779B97F4A7C15ull;
}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, StatRegistry& stats)
    : plan_(plan),
      dropRng_(plan.seed + 1 * kStreamStride),
      delayRng_(plan.seed + 2 * kStreamStride),
      sdLossRng_(plan.seed + 3 * kStreamStride),
      injectedDrops_(stats.counterHandle("fault.injected_drops")),
      injectedDelays_(stats.counterHandle("fault.injected_delays")),
      injectedDelayCycles_(stats.counterHandle("fault.injected_delay_cycles")),
      injectedSdLosses_(stats.counterHandle("fault.injected_sd_losses")),
      injectedStallCycles_(stats.counterHandle("fault.injected_stall_cycles")),
      injectedEffective_(stats.counterHandle("fault.injected_effective")),
      timeoutReissues_(stats.counterHandle("fault.timeout_reissues")),
      recovered_(stats.counterHandle("fault.recovered")),
      fallbackHomeLookups_(stats.counterHandle("fault.fallback_home_lookups")) {}

bool FaultInjector::shouldDrop(const Message& m) {
  if (plan_.msgDropRate <= 0.0 || !dropRng_.chance(plan_.msgDropRate)) return false;
  ++injectedDrops_;
  ++injectedEffective_;
  ++stranded_[{m.requester, m.addr}];
  return true;
}

Cycle FaultInjector::deliveryDelay(const Message&) {
  if (plan_.msgDelayRate <= 0.0 || !delayRng_.chance(plan_.msgDelayRate)) return 0;
  const Cycle d = 1 + delayRng_.below(plan_.msgDelayCycles);
  ++injectedDelays_;
  injectedDelayCycles_ += d;
  return d;
}

bool FaultInjector::loseSdEntry() {
  if (plan_.sdEntryLossRate <= 0.0 || !sdLossRng_.chance(plan_.sdEntryLossRate)) return false;
  ++injectedSdLosses_;
  ++fallbackHomeLookups_;
  return true;
}

Cycle FaultInjector::stallAdjustedStart(Cycle start) {
  const LinkStallSpec& s = plan_.linkStall;
  const Cycle end = s.startCycle + s.lengthCycles;
  if (start < s.startCycle || start >= end) return start;
  injectedStallCycles_ += end - start;
  return end;
}

bool FaultInjector::stallTickSkipped(Cycle now) {
  const LinkStallSpec& s = plan_.linkStall;
  if (now < s.startCycle || now >= s.startCycle + s.lengthCycles) return false;
  ++injectedStallCycles_;
  return true;
}

void FaultInjector::consumeStranded(NodeId requester, Addr block) {
  const auto it = stranded_.find({requester, block});
  if (it == stranded_.end()) return;
  if (--it->second == 0) stranded_.erase(it);
  ++recovered_;
}

void FaultInjector::requireBalanced() const {
  if (recovered() == injectedEffective() && stranded_.empty()) return;
  std::ostringstream os;
  os << "fault accounting imbalance: injected_effective=" << injectedEffective()
     << " recovered=" << recovered() << " stranded=" << stranded_.size();
  for (const auto& [key, n] : stranded_) {
    os << "\n  node " << key.first << " block 0x" << std::hex << key.second << std::dec << " x"
       << n;
  }
  throw std::runtime_error(os.str());
}

}  // namespace dresar
