#include "fault/fault_plan.h"

#include <charconv>
#include <stdexcept>

namespace dresar {

namespace {

bool inUnitInterval(double r) { return r >= 0.0 && r <= 1.0; }

std::uint64_t parseField(const std::string& spec, const std::string& field, std::size_t& pos) {
  while (pos < spec.size() && spec[pos] == ' ') ++pos;
  std::size_t end = pos;
  while (end < spec.size() && spec[end] != ',') ++end;
  std::size_t stop = end;
  while (stop > pos && spec[stop - 1] == ' ') --stop;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(spec.data() + pos, spec.data() + stop, v, 10);
  if (ec != std::errc() || ptr != spec.data() + stop || pos == stop) {
    throw std::invalid_argument("fault.linkStall: bad " + field + " in '" + spec +
                                "' (want stage,port,start,len)");
  }
  pos = end < spec.size() ? end + 1 : end;
  return v;
}

}  // namespace

void FaultPlan::appendValidationErrors(std::vector<std::string>& out) const {
  if (!inUnitInterval(msgDropRate)) {
    out.push_back("fault.msgDropRate must be in [0,1], got " + std::to_string(msgDropRate));
  }
  if (!inUnitInterval(msgDelayRate)) {
    out.push_back("fault.msgDelayRate must be in [0,1], got " + std::to_string(msgDelayRate));
  }
  if (!inUnitInterval(sdEntryLossRate)) {
    out.push_back("fault.sdEntryLossRate must be in [0,1], got " +
                  std::to_string(sdEntryLossRate));
  }
  if (msgDelayRate > 0.0 && msgDelayCycles == 0) {
    out.push_back("fault.msgDelayCycles must be >= 1 when fault.msgDelayRate > 0");
  }
  if (enabled() && requestTimeoutCycles == 0) {
    out.push_back("fault.requestTimeoutCycles must be >= 1 when faults are enabled");
  }
}

LinkStallSpec FaultPlan::parseLinkStall(const std::string& spec) {
  LinkStallSpec s;
  std::size_t pos = 0;
  s.stage = static_cast<std::uint32_t>(parseField(spec, "stage", pos));
  s.index = static_cast<std::uint32_t>(parseField(spec, "port", pos));
  s.startCycle = parseField(spec, "start", pos);
  s.lengthCycles = parseField(spec, "len", pos);
  if (pos < spec.size()) {
    throw std::invalid_argument("fault.linkStall: trailing garbage in '" + spec +
                                "' (want stage,port,start,len)");
  }
  return s;
}

}  // namespace dresar
