// Seeded fault injector driven by a FaultPlan.
//
// One injector per System, constructed ONLY when the plan is enabled: it
// registers `fault.*` counters, and StatRegistry::dump() prints every
// registered name, so an always-on injector would change stat dumps (and the
// JSON documents derived from them) even at zero rates. Components hold a
// plain pointer that is null in fault-free runs — the same pattern the
// transaction tracer uses — keeping the fault-free hot path to one branch.
//
// Each fault class draws from its own SplitMix64 stream so enabling one kind
// of fault never perturbs the draw sequence of another, and a given
// (plan, seed) is bit-reproducible regardless of wall-clock or thread count.
//
// Accounting contract (checked by requireBalanced() at end of run):
// every drop strands exactly one (requester, block) pair; the requester's
// request-timeout reissue — or a fill that races it — consumes the strand and
// counts `fault.recovered`. Delays, entry losses and link stalls perturb
// timing only and need no recovery, so `fault.injected_effective` counts
// drops alone and must equal `fault.recovered` in any quiescent run.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "interconnect/message.h"

namespace dresar {

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, StatRegistry& stats);

  /// Messages the network may drop or delay without violating the protocol's
  /// point-to-point ordering assumptions: the request leg only. Home-to-node
  /// traffic rides DirController::sendOrdered FIFO horizons (an Invalidation
  /// must never overtake the WriteReply that granted ownership), so replies
  /// and recalls are off-limits. Marked switch-originated Retries to the home
  /// are also excluded — nothing recovers them, they are pure notifications.
  [[nodiscard]] static bool eligible(const Message& m) {
    return ((m.type == MsgType::ReadRequest || m.type == MsgType::WriteRequest) &&
            m.dst.kind == EndpointKind::Mem && !m.marked) ||
           (m.type == MsgType::Retry && m.dst.kind == EndpointKind::Proc);
  }

  /// Draw the drop decision for an eligible delivery. On a drop, records the
  /// stranded (requester, block) pair for the recovery accounting.
  bool shouldDrop(const Message& m);

  /// Extra delivery delay for an eligible, non-dropped message: 0 most of the
  /// time, else a uniform draw in [1, msgDelayCycles].
  Cycle deliveryDelay(const Message& m);

  /// Draw the entry-loss decision for a switch-directory/switch-cache hit
  /// that is about to serve a request. True = the caller must invalidate the
  /// entry and pass the request through to the home (counted as a fallback).
  bool loseSdEntry();

  // -- link stall (deterministic, no RNG) ------------------------------------

  [[nodiscard]] const LinkStallSpec& linkStall() const { return plan_.linkStall; }

  /// Message-level networks: push a transfer start time past the stall
  /// window, counting the stalled cycles.
  Cycle stallAdjustedStart(Cycle start);

  /// Flit-level networks: true when the stalled switch must skip its grant
  /// pass this cycle (counts one stalled cycle per skip).
  bool stallTickSkipped(Cycle now);

  // -- recovery accounting ---------------------------------------------------

  /// A request timeout fired and the MSHR is being reissued.
  void noteTimeoutReissue() { ++timeoutReissues_; }

  /// Consume the stranded record for (requester, block) if one exists,
  /// counting the recovery. Called from the timeout-reissue path and from
  /// handleFill (a duplicate reply can rescue a dropped reissue).
  void consumeStranded(NodeId requester, Addr block);

  [[nodiscard]] Cycle requestTimeoutCycles() const { return plan_.requestTimeoutCycles; }
  [[nodiscard]] std::uint64_t injectedEffective() const { return injectedEffective_.value(); }
  [[nodiscard]] std::uint64_t recovered() const { return recovered_.value(); }
  [[nodiscard]] std::uint64_t outstandingStranded() const { return stranded_.size(); }

  /// Throw std::runtime_error unless every injected-effective fault has been
  /// recovered and no stranded records remain. Call after the run quiesces.
  void requireBalanced() const;

 private:
  FaultPlan plan_;
  Rng dropRng_;
  Rng delayRng_;
  Rng sdLossRng_;
  /// Outstanding dropped-message records, keyed (requester, block) with a
  /// multiplicity (a reissue of an already-dropped request can drop again
  /// before the first strand is consumed). std::map for deterministic
  /// iteration in diagnostics.
  std::map<std::pair<NodeId, Addr>, std::uint32_t> stranded_;

  CounterHandle injectedDrops_;
  CounterHandle injectedDelays_;
  CounterHandle injectedDelayCycles_;
  CounterHandle injectedSdLosses_;
  CounterHandle injectedStallCycles_;
  CounterHandle injectedEffective_;
  CounterHandle timeoutReissues_;
  CounterHandle recovered_;
  CounterHandle fallbackHomeLookups_;
};

}  // namespace dresar
