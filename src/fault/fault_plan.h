// Declarative description of a fault-injection campaign.
//
// DRESAR's correctness story is that switch-directory state is a *hint*:
// losing an entry, a message, or a link for a while must only cost cycles —
// the request falls back to the home node's full-map directory and the
// timeout/NAK/backoff machinery re-drives it — never coherence. A FaultPlan
// says which adversities to inject and how often; the FaultInjector
// (fault/injector.h) turns it into seeded, bit-reproducible draws.
//
// A default-constructed plan injects nothing and costs nothing: System only
// builds an injector when enabled() is true, so fault-free runs remain
// byte-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace dresar {

/// Freeze one switch's outgoing links for a fixed window of cycles.
/// Deterministic (no RNG): transfers that would start inside
/// [startCycle, startCycle + lengthCycles) are pushed past the window.
struct LinkStallSpec {
  std::uint32_t stage = 0;   ///< butterfly stage of the stalled switch
  std::uint32_t index = 0;   ///< switch index within the stage
  Cycle startCycle = 0;      ///< first stalled cycle
  Cycle lengthCycles = 0;    ///< window length; 0 = no stall configured

  [[nodiscard]] bool active() const { return lengthCycles > 0; }
};

struct FaultPlan {
  /// Probability that an eligible request-leg delivery (ReadRequest /
  /// WriteRequest at the home, Retry NAK at the requester) is silently
  /// dropped. Recovery: the requester's per-MSHR request timeout reissues.
  double msgDropRate = 0.0;

  /// Probability that an eligible delivery (same set as drops) is delayed by
  /// a uniform draw in [1, msgDelayCycles] extra cycles.
  double msgDelayRate = 0.0;
  Cycle msgDelayCycles = 64;

  /// Probability that a switch-directory (or switch-cache) entry which is
  /// about to serve a request is spontaneously invalidated instead; the
  /// request passes through to the home's full-map directory.
  double sdEntryLossRate = 0.0;

  /// Optional deterministic link-stall window on one switch.
  LinkStallSpec linkStall;

  /// Seeds the injector's dedicated Rng streams (one per fault class), kept
  /// separate from workload seeds so fault draws never perturb the workload.
  std::uint64_t seed = 1;

  /// Cycles an MSHR's request may stay outstanding before the cache
  /// controller reissues it (bounded by SwitchDirConfig::maxRetries). Must
  /// exceed the worst-case fault-free service time or healthy requests get
  /// duplicated; the default clears the deepest NAK/backoff chains seen in
  /// the paper configurations with a wide margin.
  Cycle requestTimeoutCycles = 8192;

  /// True when the plan injects anything at all. Gates injector construction
  /// so a zero-rate plan leaves the simulation byte-identical to today.
  [[nodiscard]] bool enabled() const {
    return msgDropRate > 0.0 || msgDelayRate > 0.0 || sdEntryLossRate > 0.0 ||
           linkStall.active();
  }

  /// Append human-readable descriptions of every violated invariant (rates
  /// outside [0,1], zero timeout, ...) to `out`. Used by
  /// SystemConfig::validationErrors() so facade, CLI and sweep-spec
  /// misconfigurations all fail with the same report format.
  void appendValidationErrors(std::vector<std::string>& out) const;

  /// Parse "stage,port,start,len" (the sweep-spec / CLI syntax for
  /// fault.linkStall). Throws std::invalid_argument on malformed input.
  static LinkStallSpec parseLinkStall(const std::string& spec);
};

}  // namespace dresar
