#include "sim/json_writer.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dresar {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::beforeValue() {
  if (rootDone_) throw std::logic_error("JsonWriter: value after document end");
  if (stack_.empty()) return;  // root value
  Level& top = stack_.back();
  if (top.scope == Scope::Object) {
    if (!top.keyOpen) throw std::logic_error("JsonWriter: value in object without key");
    top.keyOpen = false;
  } else {
    if (!top.first) out_ << ',';
    top.first = false;
  }
}

void JsonWriter::afterValue() {
  if (stack_.empty()) rootDone_ = true;
}

void JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back().scope != Scope::Object) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  Level& top = stack_.back();
  if (top.keyOpen) throw std::logic_error("JsonWriter: key after key");
  if (!top.first) out_ << ',';
  top.first = false;
  top.keyOpen = true;
  out_ << '"' << escape(k) << "\":";
}

void JsonWriter::beginObject() {
  beforeValue();
  stack_.push_back({Scope::Object});
  out_ << '{';
}

void JsonWriter::endObject() {
  if (stack_.empty() || stack_.back().scope != Scope::Object || stack_.back().keyOpen) {
    throw std::logic_error("JsonWriter: endObject mismatch");
  }
  stack_.pop_back();
  out_ << '}';
  afterValue();
}

void JsonWriter::beginArray() {
  beforeValue();
  stack_.push_back({Scope::Array});
  out_ << '[';
}

void JsonWriter::endArray() {
  if (stack_.empty() || stack_.back().scope != Scope::Array) {
    throw std::logic_error("JsonWriter: endArray mismatch");
  }
  stack_.pop_back();
  out_ << ']';
  afterValue();
}

void JsonWriter::value(std::string_view s) {
  beforeValue();
  out_ << '"' << escape(s) << '"';
  afterValue();
}

void JsonWriter::value(bool b) {
  beforeValue();
  out_ << (b ? "true" : "false");
  afterValue();
}

void JsonWriter::value(double d) {
  beforeValue();
  if (!std::isfinite(d)) {
    out_ << "null";  // JSON cannot express NaN/inf
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", d);
    out_ << buf;
  }
  afterValue();
}

void JsonWriter::valuePrecise(double d) {
  beforeValue();
  if (!std::isfinite(d)) {
    out_ << "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out_ << buf;
  }
  afterValue();
}

void JsonWriter::value(std::uint64_t u) {
  beforeValue();
  out_ << u;
  afterValue();
}

void JsonWriter::value(std::int64_t i) {
  beforeValue();
  out_ << i;
  afterValue();
}

}  // namespace dresar
