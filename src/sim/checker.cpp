#include "sim/checker.h"

#include <map>
#include <sstream>

#include "sim/system.h"

namespace dresar {

namespace {
std::string hex(Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}
}  // namespace

std::string CheckReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "protocol invariants hold";
  } else {
    os << violations.size() << " violation(s):";
    for (const auto& v : violations) os << "\n  - " << v;
  }
  if (!skipped.empty()) {
    os << "\nskipped check(s):";
    for (const auto& s : skipped) os << "\n  - " << s;
  }
  return os.str();
}

CheckReport ProtocolChecker::check(const System& sys) {
  CheckReport r;
  const SystemConfig& cfg = sys.config();

  // 1. Quiescence. In-flight transactions legitimately leave sharer vectors,
  // extra copies and switch entries mid-update, so the checks that assume
  // stability are skipped — but two M copies, or a home that firmly records
  // a different owner, are violations at any instant, and those checks still
  // run (previously an early return here masked them entirely).
  const bool quiet = sys.quiescent();
  if (!quiet) {
    r.violations.push_back("system not quiescent (in-flight transactions remain)");
    r.skipped.push_back("M/S exclusivity (fills and demotions may be in flight)");
    r.skipped.push_back("sharer soundness (invalidations may be in flight)");
    r.skipped.push_back("switch-directory consistency (TRANSIENT entries legal mid-transaction)");
  }

  // Gather cache state.
  struct Copy {
    NodeId node;
    CacheState state;
  };
  std::map<Addr, std::vector<Copy>> copies;
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    sys.cache(n).l2().forEachValid(
        [&](const CacheLine& l) { copies[l.tag].push_back({n, l.state}); });
  }

  // 2 & 3 & 4: per-block agreement with the home directory.
  for (const auto& [block, holders] : copies) {
    const auto* d = sys.dir(cfg.homeOf(block)).peek(block);
    NodeId mOwner = kInvalidNode;
    for (const Copy& c : holders) {
      if (c.state != CacheState::M) continue;
      if (mOwner != kInvalidNode) {
        r.violations.push_back("two M copies of " + hex(block) + " (nodes " +
                               std::to_string(mOwner) + " and " + std::to_string(c.node) + ")");
      }
      mOwner = c.node;
    }
    if (mOwner != kInvalidNode) {
      // On a quiescent system the home must record exactly this owner. Mid-
      // run a BUSY state or a not-yet-installed entry is legal, but a home
      // that firmly records a *different* owner never is.
      const bool homeAgrees =
          d != nullptr && d->state == DirState::Modified && d->owner == mOwner;
      const bool homeContradicts =
          d != nullptr && d->state == DirState::Modified && d->owner != mOwner;
      if (quiet ? !homeAgrees : homeContradicts) {
        r.violations.push_back("home disagrees about owner of " + hex(block) + " (cache says " +
                               std::to_string(mOwner) + ")");
      }
      if (quiet && holders.size() > 1) {
        r.violations.push_back("M copy of " + hex(block) + " coexists with other copies");
      }
    }
    for (const Copy& c : holders) {
      if (!quiet) break;
      if (c.state == CacheState::S) {
        if (d == nullptr ||
            (d->state == DirState::Shared && (d->sharers & nodeBit(c.node)) == 0) ||
            d->state == DirState::Modified || d->state == DirState::Uncached) {
          r.violations.push_back("node " + std::to_string(c.node) + " holds " + hex(block) +
                                 " in S but the home does not record it");
        }
      }
    }
  }

  // 3 (converse): every MODIFIED directory entry has its owner caching in M.
  for (NodeId h = 0; h < cfg.numNodes; ++h) {
    // Directory entries are only reachable per-block; use the copies map to
    // bound the scan and additionally verify owners found above. A MODIFIED
    // home entry whose owner dropped the line would have produced a
    // WriteBack (home -> UNCACHED) before quiescence, so a missing copy is
    // a real violation when we can see the entry through a cached block.
    (void)h;
  }

  // 5. Switch-directory consistency.
  if (quiet && sys.dresar().enabled()) {
    const std::uint64_t transients = sys.dresar().transientEntries();
    if (transients != 0) {
      r.violations.push_back(std::to_string(transients) +
                             " TRANSIENT switch-directory entries at quiesce");
    }
    const Butterfly& topo = sys.net().topology();
    for (std::uint32_t f = 0; f < topo.totalSwitches(); ++f) {
      sys.dresar().cacheAt(topo.unflat(f)).forEachValid([&](const SDEntry& e) {
        if (e.state != SDState::Modified) return;
        // Either fresh (home agrees) or stale-but-detectable (owner no
        // longer holds the block in M; a read would bounce via Retry).
        const auto* d = sys.dir(cfg.homeOf(e.tag)).peek(e.tag);
        const bool fresh = d != nullptr && d->state == DirState::Modified && d->owner == e.owner;
        if (fresh) return;
        const auto it = copies.find(e.tag);
        if (it != copies.end()) {
          for (const auto& c : it->second) {
            if (c.node == e.owner && c.state == CacheState::M) {
              r.violations.push_back("switch " + std::to_string(f) + " entry for " + hex(e.tag) +
                                     " claims owner " + std::to_string(e.owner) +
                                     " which holds M, but the home disagrees");
            }
          }
        }
      });
    }
  }
  return r;
}

}  // namespace dresar
