// Human-readable run report: per-processor, per-home and per-switch tables
// assembled from the stat registry — the RSIM-style post-run dump.
#pragma once

#include <ostream>

namespace dresar {

class System;

/// Print a full breakdown of a finished run. Safe on any quiescent system.
void printRunReport(const System& sys, std::ostream& os);

}  // namespace dresar
