// Minimal streaming JSON writer for bench result files. No external
// dependencies; emits a compact, valid document (RFC 8259) with string
// escaping and finite-number handling (NaN/inf become null, since JSON has
// no encoding for them).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dresar {

/// Streaming JSON emitter. The caller drives structure with beginObject /
/// beginArray / end*; the writer tracks nesting and inserts commas. Keys are
/// only legal inside objects, bare values only inside arrays (or as the
/// root). Misuse throws std::logic_error, so tests can assert on shape.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emit `"key":` — must be inside an object and followed by a value.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(std::uint64_t u);
  void value(std::int64_t i);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(unsigned u) { value(static_cast<std::uint64_t>(u)); }

  /// Emit a double with full round-trip precision (%.17g): strtod() of the
  /// emitted text recovers the exact bit pattern. The default value(double)
  /// stays at %.12g — the documented result-document format — so this is for
  /// internal persistence (the sweep job store) where a re-serialized value
  /// must be byte-identical to the original document's.
  void valuePrecise(double d);

  /// key(k) + value(v) in one call.
  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// key(k) + valuePrecise(v).
  void fieldPrecise(std::string_view k, double v) {
    key(k);
    valuePrecise(v);
  }

  /// True once the root value is complete and all scopes are closed.
  [[nodiscard]] bool done() const { return rootDone_ && stack_.empty(); }

  static std::string escape(std::string_view s);

 private:
  enum class Scope : std::uint8_t { Object, Array };
  struct Level {
    Scope scope;
    bool first = true;     ///< no element written yet at this level
    bool keyOpen = false;  ///< a key was written, value pending (objects)
  };

  void beforeValue();  ///< comma/placement bookkeeping shared by all values
  void afterValue();

  std::ostream& out_;
  std::vector<Level> stack_;
  bool rootDone_ = false;
};

}  // namespace dresar
