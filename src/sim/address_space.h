// Simulated shared physical address space. Pages map to home nodes
// round-robin (addr/page mod N), so a plain allocation is page-interleaved
// across all memories; allocAt places small structures on a chosen home.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace dresar {

class AddressSpace {
 public:
  explicit AddressSpace(const SystemConfig& cfg) : cfg_(cfg) {
    placedNext_.resize(cfg.numNodes);
    const Addr placedBase = Addr{1} << 40;  // far above the interleaved arena
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
      // First page at or above placedBase whose home is n.
      const Addr basePage = placedBase / cfg_.pageBytes;
      const Addr page = basePage + (n + cfg.numNodes - static_cast<NodeId>(basePage % cfg.numNodes)) % cfg.numNodes;
      placedNext_[n] = page * cfg_.pageBytes;
    }
  }

  /// Allocate `bytes` from the page-interleaved arena, line-aligned.
  Addr alloc(std::size_t bytes) {
    const Addr a = alignUp(next_, cfg_.lineBytes);
    next_ = a + bytes;
    return a;
  }

  /// Allocate `bytes` homed entirely at `node` (must fit in one page).
  Addr allocAt(NodeId node, std::size_t bytes) {
    if (node >= cfg_.numNodes) throw std::out_of_range("AddressSpace::allocAt: bad node");
    if (bytes > cfg_.pageBytes) throw std::invalid_argument("allocAt: larger than a page");
    Addr& cursor = placedNext_[node];
    Addr a = alignUp(cursor, cfg_.lineBytes);
    // Keep the allocation inside a page homed at `node`.
    if (a / cfg_.pageBytes != (a + bytes - 1) / cfg_.pageBytes ||
        cfg_.homeOf(a) != node) {
      // Advance to this node's next page (pages for node n recur every N).
      const Addr page = a / cfg_.pageBytes;
      Addr nextPage = page + 1;
      while (cfg_.homeOf(nextPage * cfg_.pageBytes) != node) ++nextPage;
      a = nextPage * cfg_.pageBytes;
    }
    cursor = a + bytes;
    return a;
  }

  [[nodiscard]] NodeId homeOf(Addr a) const { return cfg_.homeOf(a); }

 private:
  static Addr alignUp(Addr a, Addr align) { return (a + align - 1) & ~(align - 1); }

  const SystemConfig& cfg_;
  Addr next_ = 0;
  std::vector<Addr> placedNext_;
};

/// A typed shared array: a real backing store for genuine execution-driven
/// computation plus the simulated addresses its elements live at.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(AddressSpace& as, std::size_t count)
      : base_(as.alloc(count * sizeof(T))), data_(count) {}

  [[nodiscard]] Addr addr(std::size_t i) const { return base_ + i * sizeof(T); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  Addr base_ = kInvalidAddr;
  std::vector<T> data_;
};

}  // namespace dresar
