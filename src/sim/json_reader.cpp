#include "sim/json_reader.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dresar {

namespace {
[[noreturn]] void kindError(const char* want, JsonValue::Kind got) {
  static const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", got " +
                           names[static_cast<int>(got)]);
}
}  // namespace

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) kindError("bool", kind_);
  return bool_;
}
double JsonValue::asNumber() const {
  if (kind_ != Kind::Number) kindError("number", kind_);
  return num_;
}
const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) kindError("string", kind_);
  return str_;
}
const std::vector<JsonValue>& JsonValue::asArray() const {
  if (kind_ != Kind::Array) kindError("array", kind_);
  return arr_;
}
const std::vector<std::pair<std::string, JsonValue>>& JsonValue::asObject() const {
  if (kind_ != Kind::Object) kindError("object", kind_);
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  return *v;
}

/// Recursive-descent parser over a string_view. Depth-limited so a hostile
/// document cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parseValue(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skipWs();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"':
        v.kind_ = JsonValue::Kind::String;
        v.str_ = parseString();
        return v;
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        v.kind_ = JsonValue::Kind::Bool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        v.kind_ = JsonValue::Kind::Bool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return v;
      default: return parseNumber();
    }
  }

  JsonValue parseObject(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::Object;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.obj_.emplace_back(std::move(key), parseValue(depth + 1));
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::Array;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr_.push_back(parseValue(depth + 1));
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (our writer only escapes
          // control characters, so surrogate pairs do not occur).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("malformed number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::Number;
    v.num_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) { return JsonParser(text).run(); }

JsonValue JsonValue::parseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) throw std::runtime_error("json: read error on '" + path + "'");
  return parse(ss.str());
}

}  // namespace dresar
