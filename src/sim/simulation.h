// Unified simulation facade: config in, metrics out. Wraps the System +
// workload-runner + checker plumbing that benches, harness runners and tests
// previously wired by hand, and is the one place fault-injection campaigns
// are closed out (every injected fault must have been recovered, and the
// protocol invariants must hold, before metrics are handed back).
//
//   SystemConfig cfg;             // validated up front, ALL violations listed
//   Simulation sim(cfg);
//   RunMetrics m = sim.run({.workload = "fft", .scale = WorkloadScale::tiny()});
//
// The underlying System stays reachable via system() for tests that poke
// controllers directly or spawn custom tasks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.h"
#include "sim/checker.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "workloads/workload.h"

namespace dresar {

/// Everything a single simulation run needs. New run parameters are added
/// here (with behavior-preserving defaults) instead of growing positional
/// arguments on Simulation::run.
struct RunRequest {
  std::string workload;           ///< kernel key ("fft", "sor", "tc", ...)
  WorkloadScale scale{};          ///< problem size
  bool requireVerify = true;      ///< numeric verify after the run
  /// Simulation worker threads for this run. 1 (default) is the classic
  /// sequential kernel; >1 shards the event loop (see SystemConfig::
  /// simThreads). When this disagrees with the live System's configuration
  /// the facade rebuilds the System before running.
  std::uint32_t simThreads = 1;
};

class Simulation {
 public:
  /// Builds the System. Throws std::invalid_argument listing EVERY config
  /// violation (not just the first) when `cfg` is invalid.
  explicit Simulation(const SystemConfig& cfg);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Run one scientific kernel to completion: setup -> one coroutine per
  /// processor -> fence -> numeric verify (unless `req.requireVerify` is
  /// false). On a fault-injection run this additionally requires the
  /// campaign to have closed (every injected fault recovered — see
  /// FaultInjector::requireBalanced) and the protocol checker to come back
  /// clean; either failing throws. Returns the collected metrics, with the
  /// fault.* counters folded in when injection was enabled.
  RunMetrics run(const RunRequest& req);

  /// Protocol invariant check on the (quiescent) system.
  [[nodiscard]] CheckReport check() const;

  /// Chrome trace_event fragment for the last traced run (requires
  /// cfg.txnTrace.enabled; throws otherwise). `pid` becomes the trace
  /// process id, `label` its display name.
  [[nodiscard]] std::string chromeTraceFragment(std::uint32_t pid,
                                                const std::string& label) const;

  [[nodiscard]] System& system() { return *sys_; }
  [[nodiscard]] const System& system() const { return *sys_; }

 private:
  std::unique_ptr<System> sys_;
};

}  // namespace dresar
