// Assembles a complete CC-NUMA multiprocessor: sharded event kernel, BMIN
// network with DRESAR switch directories, one cache controller + thread
// context per processor, one directory controller per memory module, and a
// shared address space. Runs workload coroutines to completion with a
// deadlock watchdog and exposes everything the metrics layer and tests need.
//
// Scheduling API: components receive a Scheduler bound to their owning
// kernel shard (ShardMap); the raw EventQueue is a kernel implementation
// detail and is no longer reachable from here — see the retired eq() guard.
//
// Network wiring: System builds its own Butterfly/ShardMap (pure arithmetic,
// identical to the network's), constructs every observer first — snoop
// chain, tracer, fault injector — and hands the network one immutable
// NetworkHooks struct at construction. Deliveries dispatch through a single
// System-owned sink to the per-node controllers; there is no mutable
// observer state on the network to wire up in the right order.
#pragma once

#include <memory>
#include <type_traits>
#include <vector>

#include "common/config.h"
#include "common/scheduler.h"
#include "common/stats.h"
#include "coherence/cache_controller.h"
#include "coherence/dir_controller.h"
#include "cpu/context.h"
#include "cpu/task.h"
#include "fault/injector.h"
#include "interconnect/flit_network.h"
#include "interconnect/network.h"
#include "sim/address_space.h"
#include "switchdir/dresar.h"
#include "switchdir/switch_cache.h"

namespace dresar {

class System {
 public:
  explicit System(const SystemConfig& cfg);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }

  /// The simulation kernel (shard clocks, executed-event counts, runWhile
  /// for single-shard test drivers).
  [[nodiscard]] SimKernel& kernel() { return *kernel_; }
  [[nodiscard]] const SimKernel& kernel() const { return *kernel_; }
  /// Root-shard scheduler: what System-level code (workload setup, benches,
  /// examples) schedules through. Per-node components use their own shard's
  /// scheduler, reachable via ctx(n).sched().
  [[nodiscard]] Scheduler& sched() { return kernel_->scheduler(0); }

  /// Retired accessor: the EventQueue is a kernel implementation detail now
  /// that events are sharded. Schedule through sched()/ctx(n).sched(), drive
  /// with kernel().runWhile, read clocks via now()/kernel().executedEvents().
  template <typename T = void>
  void eq() {
    static_assert(!std::is_same_v<T, T>,
                  "System::eq() was removed by the Scheduler API redesign; use sched(), "
                  "kernel(), or ctx(n).sched() instead");
  }

  /// Post-run stats live in the root shard's registry (SimKernel::foldStats
  /// merges the other shards after run()).
  [[nodiscard]] StatRegistry& stats() { return kernel_->registry(0); }
  [[nodiscard]] const StatRegistry& stats() const { return kernel_->registry(0); }
  [[nodiscard]] INetwork& net() { return *net_; }
  [[nodiscard]] const INetwork& net() const { return *net_; }
  [[nodiscard]] AddressSpace& mem() { return *mem_; }
  [[nodiscard]] DresarManager& dresar() { return *dresar_; }
  [[nodiscard]] const DresarManager& dresar() const { return *dresar_; }
  [[nodiscard]] SwitchCacheManager& switchCache() { return *scache_; }
  [[nodiscard]] const SwitchCacheManager& switchCache() const { return *scache_; }
  /// Transaction tracer; records only when cfg.txnTrace.enabled.
  [[nodiscard]] TxnTracer& txnTracer() { return *tracer_; }
  [[nodiscard]] const TxnTracer& txnTracer() const { return *tracer_; }
  /// Fault injector; nullptr unless cfg.fault.enabled() (fault-free runs
  /// never construct one, keeping their stats output byte-identical).
  [[nodiscard]] FaultInjector* faultInjector() { return fault_.get(); }
  [[nodiscard]] const FaultInjector* faultInjector() const { return fault_.get(); }

  [[nodiscard]] CacheController& cache(NodeId n) { return *caches_.at(n); }
  [[nodiscard]] const CacheController& cache(NodeId n) const { return *caches_.at(n); }
  [[nodiscard]] DirController& dir(NodeId n) { return *dirs_.at(n); }
  [[nodiscard]] const DirController& dir(NodeId n) const { return *dirs_.at(n); }
  [[nodiscard]] ThreadContext& ctx(NodeId n) { return *ctxs_.at(n); }
  [[nodiscard]] const ThreadContext& ctx(NodeId n) const { return *ctxs_.at(n); }

  /// Register a top-level task owned by processor `owner`: it starts (and
  /// all its resumes execute) on that node's shard.
  void spawn(NodeId owner, SimTask task);
  /// Register a task on processor 0's shard (single-task tests/examples).
  void spawn(SimTask task) { spawn(0, std::move(task)); }

  /// Start every spawned task and run the kernel until it drains.
  /// Returns the final cycle. Throws on deadlock (events exhausted while a
  /// task is still suspended) or if a task failed with an exception.
  /// With simThreads>1 this runs the window-barrier worker loop and folds
  /// per-shard stats into stats() before returning.
  Cycle run(Cycle limit = kNoCycle);

  /// Simulated clock after (or during single-shard) run.
  [[nodiscard]] Cycle now() const { return kernel_->now(); }

  /// True when every controller has no in-flight transaction — the state in
  /// which the protocol invariant checker may run.
  [[nodiscard]] bool quiescent() const;

 private:
  /// In-flight state dump (suspended tasks, live MSHRs, busy directory
  /// entries) appended to livelock/deadlock exception messages.
  [[nodiscard]] std::string inFlightReport() const;

  struct Spawned {
    SimTask task;
    NodeId owner = 0;
  };

  /// The one delivery sink behind NetworkHooks: dispatches on the endpoint
  /// kind to the owning cache or directory controller. Its address is fixed
  /// before the network exists, so wiring can never race construction.
  class Sink final : public IMessageSink {
   public:
    explicit Sink(System& sys) : sys_(sys) {}
    void deliver(Endpoint ep, const Message& m) override;

   private:
    System& sys_;
  };

  SystemConfig cfg_;
  std::unique_ptr<SimKernel> kernel_;
  std::unique_ptr<TxnTracer> tracer_;
  std::unique_ptr<FaultInjector> fault_;
  /// System's own copy of the topology/ownership arithmetic (identical to
  /// the network's): lets the managers construct before the network so the
  /// snoop pointer is ready for NetworkHooks.
  std::unique_ptr<Butterfly> topo_;
  ShardMap map_;
  std::unique_ptr<DresarManager> dresar_;
  std::unique_ptr<SwitchCacheManager> scache_;
  std::unique_ptr<SnoopChain> snoopChain_;
  Sink sink_{*this};
  std::unique_ptr<INetwork> net_;
  std::unique_ptr<AddressSpace> mem_;
  std::vector<std::unique_ptr<CacheController>> caches_;
  std::vector<std::unique_ptr<DirController>> dirs_;
  std::vector<std::unique_ptr<ThreadContext>> ctxs_;
  std::vector<Spawned> tasks_;
};

}  // namespace dresar
