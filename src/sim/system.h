// Assembles a complete CC-NUMA multiprocessor: event queue, BMIN network
// with DRESAR switch directories, one cache controller + thread context per
// processor, one directory controller per memory module, and a shared
// address space. Runs workload coroutines to completion with a deadlock
// watchdog and exposes everything the metrics layer and tests need.
#pragma once

#include <memory>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/stats.h"
#include "coherence/cache_controller.h"
#include "coherence/dir_controller.h"
#include "cpu/context.h"
#include "cpu/task.h"
#include "fault/injector.h"
#include "interconnect/flit_network.h"
#include "interconnect/network.h"
#include "sim/address_space.h"
#include "switchdir/dresar.h"
#include "switchdir/switch_cache.h"

namespace dresar {

class System {
 public:
  explicit System(const SystemConfig& cfg);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] EventQueue& eq() { return eq_; }
  [[nodiscard]] StatRegistry& stats() { return stats_; }
  [[nodiscard]] const StatRegistry& stats() const { return stats_; }
  [[nodiscard]] INetwork& net() { return *net_; }
  [[nodiscard]] const INetwork& net() const { return *net_; }
  [[nodiscard]] AddressSpace& mem() { return *mem_; }
  [[nodiscard]] DresarManager& dresar() { return *dresar_; }
  [[nodiscard]] const DresarManager& dresar() const { return *dresar_; }
  [[nodiscard]] SwitchCacheManager& switchCache() { return *scache_; }
  [[nodiscard]] const SwitchCacheManager& switchCache() const { return *scache_; }
  /// Transaction tracer; records only when cfg.txnTrace.enabled.
  [[nodiscard]] TxnTracer& txnTracer() { return *tracer_; }
  [[nodiscard]] const TxnTracer& txnTracer() const { return *tracer_; }
  /// Fault injector; nullptr unless cfg.fault.enabled() (fault-free runs
  /// never construct one, keeping their stats output byte-identical).
  [[nodiscard]] FaultInjector* faultInjector() { return fault_.get(); }
  [[nodiscard]] const FaultInjector* faultInjector() const { return fault_.get(); }

  [[nodiscard]] CacheController& cache(NodeId n) { return *caches_.at(n); }
  [[nodiscard]] const CacheController& cache(NodeId n) const { return *caches_.at(n); }
  [[nodiscard]] DirController& dir(NodeId n) { return *dirs_.at(n); }
  [[nodiscard]] const DirController& dir(NodeId n) const { return *dirs_.at(n); }
  [[nodiscard]] ThreadContext& ctx(NodeId n) { return *ctxs_.at(n); }
  [[nodiscard]] const ThreadContext& ctx(NodeId n) const { return *ctxs_.at(n); }

  /// Register a top-level task (one per processor, typically).
  void spawn(SimTask task);

  /// Start every spawned task and run the event loop until it drains.
  /// Returns the final cycle. Throws on deadlock (events exhausted while a
  /// task is still suspended) or if a task failed with an exception.
  Cycle run(Cycle limit = kNoCycle);

  /// True when every controller has no in-flight transaction — the state in
  /// which the protocol invariant checker may run.
  [[nodiscard]] bool quiescent() const;

 private:
  /// In-flight state dump (suspended tasks, live MSHRs, busy directory
  /// entries) appended to livelock/deadlock exception messages.
  [[nodiscard]] std::string inFlightReport() const;

  SystemConfig cfg_;
  EventQueue eq_;
  StatRegistry stats_;
  std::unique_ptr<TxnTracer> tracer_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<INetwork> net_;
  std::unique_ptr<DresarManager> dresar_;
  std::unique_ptr<SwitchCacheManager> scache_;
  std::unique_ptr<SnoopChain> snoopChain_;
  std::unique_ptr<AddressSpace> mem_;
  std::vector<std::unique_ptr<CacheController>> caches_;
  std::vector<std::unique_ptr<DirController>> dirs_;
  std::vector<std::unique_ptr<ThreadContext>> ctxs_;
  std::vector<SimTask> tasks_;
};

}  // namespace dresar
