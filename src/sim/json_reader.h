// Minimal JSON parser — the read-side counterpart of json_writer.h. Parses
// the bench/sweep result documents this repo writes (RFC 8259 subset: no
// surrogate-pair decoding beyond verbatim \uXXXX copy-through) into an
// immutable value tree. Numbers are held as double, which is exact for the
// integer counters we serialize (they stay below 2^53). No external
// dependencies, same as the writer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dresar {

/// Immutable parsed JSON value. Object members preserve document order and
/// are looked up linearly — documents here are small (tens of keys).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::String; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw std::runtime_error on kind mismatch so malformed
  /// baseline files fail with a message instead of UB.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<JsonValue>& asArray() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& asObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// find() that throws with the key name when the member is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Parse one complete document (trailing whitespace allowed, trailing
  /// garbage rejected). Throws std::runtime_error with a byte offset on
  /// malformed input.
  static JsonValue parse(std::string_view text);
  /// Read and parse a file; throws std::runtime_error on I/O failure.
  static JsonValue parseFile(const std::string& path);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace dresar
