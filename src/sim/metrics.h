// Aggregated run metrics — exactly the quantities the paper's figures plot.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/txn_trace.h"
#include "common/types.h"
#include "interconnect/inetwork.h"

namespace dresar {

class System;

struct RunMetrics {
  std::string workload;
  Cycle execTime = 0;  ///< Figure 11 numerator

  // Read classification (Figure 1).
  std::uint64_t reads = 0;       ///< all CPU loads
  std::uint64_t stores = 0;      ///< all CPU stores (events/sec accounting)
  std::uint64_t readMisses = 0;  ///< serviced beyond L2 / write buffer
  std::uint64_t svcClean = 0;    ///< clean memory replies
  std::uint64_t svcCtoCHome = 0; ///< home-forwarded cache-to-cache
  std::uint64_t svcCtoCSwitch = 0;  ///< switch-directory re-routed c2c
  std::uint64_t svcSwitchWB = 0;    ///< served from write-back data at a switch
  std::uint64_t svcSwitchCache = 0; ///< clean data served by a switch cache (ext.)

  // Latency (Figures 9/10).
  double avgReadLatency = 0.0;
  double totalReadStall = 0.0;
  double totalReadLatCtoC = 0.0;   ///< latency mass from c2c-serviced reads
  double totalReadLatClean = 0.0;  ///< latency mass from clean-serviced reads (incl. hits)
  double totalReadLatCleanMiss = 0.0;  ///< latency mass from clean *misses* only

  // Home directory activity (Figure 8).
  std::uint64_t homeCtoC = 0;  ///< c2c transfers forwarded by home nodes

  // Switch directory activity.
  std::uint64_t sdDeposits = 0;
  std::uint64_t sdCtoCInitiated = 0;
  std::uint64_t sdWriteBackServes = 0;
  std::uint64_t sdCopyBackServes = 0;
  std::uint64_t sdRetries = 0;

  std::uint64_t netMessages = 0;
  std::uint64_t retriesObserved = 0;
  std::uint64_t backoffCycles = 0;  ///< cycles NAKed requesters spent backing off

  // Fault injection (filled only when the run injected faults).
  bool faultEnabled = false;
  std::uint64_t faultInjectedDrops = 0;
  std::uint64_t faultInjectedDelays = 0;
  std::uint64_t faultInjectedDelayCycles = 0;
  std::uint64_t faultInjectedSdLosses = 0;
  std::uint64_t faultInjectedStallCycles = 0;
  std::uint64_t faultTimeoutReissues = 0;
  std::uint64_t faultRecovered = 0;
  std::uint64_t faultFallbackHomeLookups = 0;
  /// Faults that strand a transaction and require recovery (drops).
  [[nodiscard]] std::uint64_t faultInjectedEffective() const { return faultInjectedDrops; }

  // Congestion lab (schema v6). Telemetry is copied from the network when it
  // collects any (flit-level runs); offered/accepted load is annotated by
  // the hotspot/incast traffic workloads (Workload::annotate). Either source
  // flips congestionEnabled.
  bool congestionEnabled = false;
  double congOfferedRate = 0.0;   ///< refs/cycle the node streams offered
  double congAcceptedRate = 0.0;  ///< refs/cycle the machine completed
  std::uint64_t congRuns = 0;     ///< enabled runs folded in (merge weight)
  CongestionTelemetry congestion;

  // Latency attribution (filled only when the run traced transactions).
  std::uint64_t traceReadTxns = 0;
  std::uint64_t traceWriteTxns = 0;
  double traceReadEndToEnd = 0.0;   ///< summed issue->fill cycles, reads
  double traceWriteEndToEnd = 0.0;  ///< summed issue->fill cycles, writes
  std::array<double, kTxnStageCount> traceReadStage{};
  std::array<double, kTxnStageCount> traceWriteStage{};

  [[nodiscard]] std::uint64_t ctocServiced() const {
    return svcCtoCHome + svcCtoCSwitch + svcSwitchWB;
  }
  /// Fraction of read misses serviced dirty (Figure 1 right bar).
  [[nodiscard]] double dirtyFraction() const {
    return readMisses == 0 ? 0.0 : static_cast<double>(ctocServiced()) / readMisses;
  }

  static RunMetrics collect(const System& sys, const std::string& workload);

  /// Fold another run's metrics into this one: counters and latency masses
  /// add, execTime accumulates (total simulated cycles across the merged
  /// runs), and avgReadLatency becomes the read-count-weighted mean. Used by
  /// the sweep harness to report whole-sweep totals over many jobs.
  void merge(const RunMetrics& other);

  void print(std::ostream& os) const;
};

/// Normalized reduction helpers used by every figure bench:
/// reduction = 1 - with/base, reported as a percentage.
double reductionPct(double base, double with);

}  // namespace dresar
