// Machine-readable bench results: every figure/ablation binary can record the
// runs it performed and dump them as one JSON document (--json=FILE). The
// schema is versioned so downstream tooling can detect incompatible changes.
//
// Schema "dresar-bench-results/v1":
//   {
//     "schema": "dresar-bench-results/v1",
//     "bench": "<binary name>",
//     "options": { "<key>": "<value>", ... },
//     "wall_seconds_total": <double>,
//     "sim_events_total": <uint>,
//     "events_per_sec": <double>,
//     "runs": [
//       {
//         "app": "FFT", "config": "sd-512", "kind": "scientific"|"trace",
//         "sd_entries": <uint>,             // 0 when no switch directory
//         "wall_seconds": <double>,
//         "events": <uint>,                 // executed sim events (or trace refs)
//         "events_per_sec": <double>,
//         "metrics": { "<name>": <number>, ... }
//       }, ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dresar {

struct RunRecord {
  std::string app;     ///< workload name (FFT, TPC-D, ...)
  std::string config;  ///< short config tag, e.g. "base" or "sd-512"
  std::string kind;    ///< "scientific" (event-driven) or "trace"
  std::uint64_t sdEntries = 0;
  double wallSeconds = 0.0;
  std::uint64_t events = 0;  ///< executed events (scientific) / refs (trace)
  std::vector<std::pair<std::string, double>> metrics;

  void metric(std::string name, double v) { metrics.emplace_back(std::move(name), v); }
};

/// Accumulates RunRecords across a bench binary's runs and serializes them.
class RunRecorder {
 public:
  void setBench(std::string name) { bench_ = std::move(name); }
  void setOption(std::string key, std::string value) {
    options_.emplace_back(std::move(key), std::move(value));
  }

  void add(RunRecord r) { runs_.push_back(std::move(r)); }

  [[nodiscard]] const std::vector<RunRecord>& runs() const { return runs_; }

  /// Serialize to the v1 schema. Returns the document as a string.
  [[nodiscard]] std::string toJson() const;

  /// Write toJson() to `path` (trailing newline included). Returns false and
  /// reports to stderr if the file cannot be written.
  bool writeFile(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> options_;
  std::vector<RunRecord> runs_;
};

}  // namespace dresar
