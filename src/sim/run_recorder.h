// Machine-readable bench results: every figure/ablation binary can record the
// runs it performed and dump them as one JSON document (--json=FILE). The
// schema is versioned so downstream tooling can detect incompatible changes.
//
// Schema "dresar-bench-results/v2":
//   {
//     "schema": "dresar-bench-results/v2",
//     "bench": "<binary name>",
//     "options": { "<key>": "<value>", ... },
//     "wall_seconds_total": <double>,
//     "sim_events_total": <uint>,
//     "events_per_sec": <double>,
//     "runs": [
//       {
//         "app": "FFT", "config": "sd-512", "kind": "scientific"|"trace",
//         "sd_entries": <uint>,             // 0 when no switch directory
//         "wall_seconds": <double>,
//         "events": <uint>,                 // executed sim events (or trace refs)
//         "events_per_sec": <double>,
//         "metrics": { "<name>": <number>, ... },
//         "latency_stages": {               // v2; only when the run traced txns
//           "read": {
//             "txns": <uint>,
//             "end_to_end_cycles": <double>,
//             "stages": { "cache_access": <double>, ..., "backoff": <double> }
//           },
//           "write": { ... same shape ... }
//         }
//       }, ...
//     ]
//   }
//
// v1 -> v2: added the optional per-run "latency_stages" breakdown (the
// transaction tracer's per-stage cycle attribution). v1 consumers that
// ignore unknown keys keep working; the schema string changed because the
// version is the documented compatibility contract.
//
// v2 -> v4: documents with at least one fault-injection run carry schema
// "dresar-bench-results/v4" and each such run an extra "fault" object:
//   "fault": {
//     "injected_drops": <uint>, "injected_delays": <uint>,
//     "injected_delay_cycles": <uint>, "injected_sd_losses": <uint>,
//     "injected_stall_cycles": <uint>, "injected_effective": <uint>,
//     "timeout_reissues": <uint>, "recovered": <uint>,
//     "fallback_home_lookups": <uint>
//   }
// Fault-free documents keep emitting v2 byte-for-byte (v3 is the sweep
// aggregate schema, see harness/aggregate.h — the version numbers are shared
// across both document families so "fault" means >= v4 everywhere).
//
// v4 -> v5: documents with at least one multi-tenant traffic run (workloads
// "oltp"/"kv") carry schema "dresar-bench-results/v5" and each such run an
// extra "traffic" object:
//   "traffic": {
//     "tenants": <uint>,
//     "p99_read_latency": <double>, "p999_read_latency": <double>,
//     "p99_overflowed": <bool>, "p999_overflowed": <bool>,   // clamp flags
//     "burst_occupancy": <double>, "steady_occupancy": <double>,
//     "burst_cycles": <uint>, "steady_cycles": <uint>,
//     "per_tenant": [
//       { "reads": <uint>, "writes": <uint>,
//         "mean_read_latency": <double>, "max_read_latency": <double> }, ...
//     ]
//   }
// Percentiles come from log2-spaced histograms (common/stats.h), so a true
// tail value is reported up to the histogram bound; the *_overflowed flags
// record when the value was clamped instead. Traffic-free documents keep
// their previous schema byte-for-byte; precedence is traffic > fault > v2.
//
// v5 -> v6: documents with at least one congestion-lab run (the "hotspot"/
// "incast" traffic profiles, or any run on the flit-level network) carry
// schema "dresar-bench-results/v6" and each such run an extra "congestion"
// object:
//   "congestion": {
//     "offered_rate": <double>,   // refs per arrival-clock cycle, machine-wide
//     "accepted_rate": <double>,  // refs per simulated cycle actually retired
//     "runs": <uint>,             // merge weight (seed replicas folded in)
//     "credit_stall_cycles": <uint>, "link_busy_skips": <uint>,
//     "source_credit_stalls": <uint>,
//     "per_switch_credit_stalls": [ <uint>, ... ],   // flat switch order
//     "stage_occupancy": [                           // one row per BMIN stage
//       { "mean": <double>, "max": <double>, "samples": <uint>,
//         "hist": [ <uint>, ... ] },  // log2 buckets, last = overflow
//       ...
//     ],
//     "lock_hold": { "mean": <double>, "max": <double>, "count": <uint>,
//                    "hist": [ <uint>, ... ] }   // wormhole output-lock holds
//   }
// Message-level congestion runs carry the rates with empty telemetry arrays
// (only the flit network samples per-switch state). Congestion-free
// documents keep their previous schema byte-for-byte; precedence is
// congestion > traffic > fault > v2.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/txn_trace.h"

namespace dresar {

struct RunRecord {
  std::string app;     ///< workload name (FFT, TPC-D, ...)
  std::string config;  ///< short config tag, e.g. "base" or "sd-512"
  std::string kind;    ///< "scientific" (event-driven) or "trace"
  std::uint64_t sdEntries = 0;
  std::uint64_t seed = 0;  ///< replica seed (harness sweeps); 0 = unset, not serialized
  double wallSeconds = 0.0;
  std::uint64_t events = 0;  ///< executed events (scientific) / refs (trace)
  std::vector<std::pair<std::string, double>> metrics;

  /// Fault-injection counters (only serialized when hasFault is set; any
  /// faulted run upgrades the document schema to v4).
  bool hasFault = false;
  std::uint64_t faultInjectedDrops = 0;
  std::uint64_t faultInjectedDelays = 0;
  std::uint64_t faultInjectedDelayCycles = 0;
  std::uint64_t faultInjectedSdLosses = 0;
  std::uint64_t faultInjectedStallCycles = 0;
  std::uint64_t faultInjectedEffective = 0;
  std::uint64_t faultTimeoutReissues = 0;
  std::uint64_t faultRecovered = 0;
  std::uint64_t faultFallbackHomeLookups = 0;

  /// Per-tenant row of a traffic run's "traffic" block.
  struct TrafficTenant {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double meanReadLatency = 0.0;
    double maxReadLatency = 0.0;
  };

  /// Multi-tenant traffic metrics (only serialized when hasTraffic is set;
  /// any traffic run upgrades the document schema to v5).
  bool hasTraffic = false;
  std::uint64_t trafficTenantCount = 0;
  double trafficP99Read = 0.0;
  double trafficP999Read = 0.0;
  bool trafficP99Overflowed = false;
  bool trafficP999Overflowed = false;
  double trafficBurstOccupancy = 0.0;
  double trafficSteadyOccupancy = 0.0;
  std::uint64_t trafficBurstCycles = 0;
  std::uint64_t trafficSteadyCycles = 0;
  std::vector<TrafficTenant> trafficPerTenant;

  /// One BMIN stage's input-buffer occupancy summary in the "congestion"
  /// block: per-switch-tick samples of total buffered flits.
  struct CongestionStage {
    double mean = 0.0;
    double max = 0.0;
    std::uint64_t samples = 0;
    std::vector<std::uint64_t> hist;  ///< log2 buckets, last = overflow
  };

  /// Congestion-lab saturation telemetry (only serialized when hasCongestion
  /// is set; any such run upgrades the document schema to v6). Flattened
  /// from interconnect CongestionTelemetry so this header stays plain data.
  bool hasCongestion = false;
  double congOfferedRate = 0.0;
  double congAcceptedRate = 0.0;
  std::uint64_t congRuns = 0;
  std::uint64_t congCreditStallCycles = 0;
  std::uint64_t congLinkBusySkips = 0;
  std::uint64_t congSourceCreditStalls = 0;
  std::vector<std::uint64_t> congPerSwitchCreditStalls;
  std::vector<CongestionStage> congStageOccupancy;
  double congLockHoldMean = 0.0;
  double congLockHoldMax = 0.0;
  std::uint64_t congLockHoldCount = 0;
  std::vector<std::uint64_t> congLockHoldHist;

  /// Latency attribution (only serialized when hasTrace is set).
  bool hasTrace = false;
  std::uint64_t traceReadTxns = 0;
  std::uint64_t traceWriteTxns = 0;
  double traceReadEndToEnd = 0.0;
  double traceWriteEndToEnd = 0.0;
  std::array<double, kTxnStageCount> traceReadStage{};
  std::array<double, kTxnStageCount> traceWriteStage{};

  void metric(std::string name, double v) { metrics.emplace_back(std::move(name), v); }
};

class JsonWriter;

/// Emit `r`'s "traffic" key + object. Caller must be inside the run's object
/// scope and have checked r.hasTraffic. Shared by the bench serializer and
/// the sweep serializer (harness/aggregate.cpp) so the block cannot drift.
void writeTrafficJson(JsonWriter& w, const RunRecord& r);

/// Emit `r`'s "congestion" key + object (schema v6). Same contract and
/// sharing discipline as writeTrafficJson.
void writeCongestionJson(JsonWriter& w, const RunRecord& r);

/// Accumulates RunRecords across a bench binary's runs and serializes them.
///
/// Not internally synchronized. Concurrent producers (the sweep harness's
/// worker threads) each own a private RunRecorder and the coordinator folds
/// them together with merge() once the workers have joined — cheaper than a
/// mutex on every add() and it keeps single-threaded benches overhead-free.
class RunRecorder {
 public:
  void setBench(std::string name) { bench_ = std::move(name); }
  void setOption(std::string key, std::string value) {
    options_.emplace_back(std::move(key), std::move(value));
  }

  void add(RunRecord r) { runs_.push_back(std::move(r)); }

  /// Steal every run (and any options) from `other`, leaving it empty.
  /// Bench name is kept from *this unless unset.
  void merge(RunRecorder&& other);

  /// Sort runs by (app, config, seed, kind) so a parallel sweep serializes
  /// identically regardless of worker scheduling. Stable, so records that
  /// compare equal keep their insertion order.
  void sortCanonical();

  [[nodiscard]] const std::vector<RunRecord>& runs() const { return runs_; }

  /// Serialize to the v1 schema. Returns the document as a string.
  [[nodiscard]] std::string toJson() const;

  /// Write toJson() to `path` (trailing newline included). Returns false and
  /// reports to stderr if the file cannot be written.
  bool writeFile(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> options_;
  std::vector<RunRecord> runs_;
};

}  // namespace dresar
