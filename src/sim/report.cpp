#include "sim/report.h"

#include <iomanip>

#include "sim/system.h"

namespace dresar {

namespace {
std::uint64_t cnt(const StatRegistry& st, const std::string& name) {
  return st.counterValue(name);
}
}  // namespace

void printRunReport(const System& sys, std::ostream& os) {
  const SystemConfig& cfg = sys.config();
  const StatRegistry& st = sys.stats();

  os << "==== per-processor ====\n";
  os << std::left << std::setw(6) << "proc" << std::right << std::setw(10) << "loads"
     << std::setw(10) << "stores" << std::setw(8) << "rmws" << std::setw(10) << "l1hit%"
     << std::setw(10) << "misses" << std::setw(12) << "stall" << std::setw(10) << "retries"
     << '\n';
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    const ThreadContext& ctx = sys.ctx(n);
    const std::string p = "cache." + std::to_string(n) + ".";
    const std::uint64_t reads = cnt(st, p + "reads");
    const std::uint64_t l1 = cnt(st, p + "l1_hits");
    os << std::left << std::setw(6) << n << std::right << std::setw(10) << ctx.loads()
       << std::setw(10) << ctx.stores() << std::setw(8) << ctx.rmws() << std::setw(9)
       << std::fixed << std::setprecision(1)
       << (reads ? 100.0 * static_cast<double>(l1) / static_cast<double>(reads) : 0.0) << '%'
       << std::setw(10) << cnt(st, p + "read_misses") << std::setw(12) << ctx.readStallCycles()
       << std::setw(10) << cnt(st, p + "retries") << '\n';
  }

  os << "==== per-home directory ====\n";
  os << std::left << std::setw(6) << "home" << std::right << std::setw(10) << "requests"
     << std::setw(10) << "cleanRd" << std::setw(10) << "homeC2C" << std::setw(10) << "recalls"
     << std::setw(12) << "markedCB" << std::setw(10) << "queued" << '\n';
  for (NodeId n = 0; n < cfg.numNodes; ++n) {
    const std::string p = "dir." + std::to_string(n) + ".";
    os << std::left << std::setw(6) << n << std::right << std::setw(10) << cnt(st, p + "requests")
       << std::setw(10) << cnt(st, p + "reads_clean") << std::setw(10)
       << sys.dir(n).homeCtoCForwards() << std::setw(10) << cnt(st, p + "write_recalls")
       << std::setw(12) << cnt(st, p + "marked_copybacks") << std::setw(10)
       << cnt(st, p + "queued") << '\n';
  }

  if (sys.dresar().enabled()) {
    os << "==== per-switch directory (DRESAR) ====\n";
    os << std::left << std::setw(8) << "switch" << std::right << std::setw(10) << "deposits"
       << std::setw(10) << "c2cInit" << std::setw(10) << "retries" << std::setw(10) << "wbServe"
       << std::setw(10) << "cbServe" << '\n';
    const Butterfly& topo = sys.net().topology();
    for (std::uint32_t f = 0; f < topo.totalSwitches(); ++f) {
      const std::string p = "sd." + std::to_string(f) + ".";
      const SwitchId id = topo.unflat(f);
      os << std::left << "  S(" << id.stage << ',' << id.index << ')' << std::right
         << std::setw(9) << cnt(st, p + "deposits") << std::setw(10)
         << cnt(st, p + "ctoc_initiated") << std::setw(10)
         << cnt(st, p + "read_retries") + cnt(st, p + "write_retries") << std::setw(10)
         << cnt(st, p + "writeback_serves") << std::setw(10) << cnt(st, p + "copyback_serves")
         << '\n';
    }
  }

  os << "==== network ====\n";
  os << "  messages sent " << sys.net().messagesSent() << ", sunk at switches "
     << sys.net().messagesSunk() << "\n";
  for (const auto& [name, value] : st.counters()) {
    if (name.rfind("net.msgs.", 0) == 0) {
      os << "  " << std::left << std::setw(28) << name.substr(9) << value << '\n';
    }
  }
  if (const Sampler* s = st.findSampler("net.latency"); s != nullptr && s->count() > 0) {
    os << "  latency mean " << std::fixed << std::setprecision(1) << s->mean() << " cycles (max "
       << s->max() << ")\n";
  }

  const TxnTracer& tr = sys.txnTracer();
  if (tr.enabled() && tr.completedTxns() > 0) {
    os << "==== latency attribution (traced transactions) ====\n";
    const auto emit = [&os](const char* label, const TxnTracer::Totals& t) {
      if (t.txns == 0) return;
      const double n = static_cast<double>(t.txns);
      os << "  " << label << ": " << t.txns << " txns, mean end-to-end " << std::fixed
         << std::setprecision(1) << t.endToEnd / n << " cycles\n";
      for (std::size_t s = 0; s < kTxnStageCount; ++s) {
        if (t.stage[s] == 0.0) continue;
        os << "    " << std::left << std::setw(14) << toString(static_cast<TxnStage>(s))
           << std::right << std::setw(10) << std::setprecision(1) << t.stage[s] / n << "  ("
           << std::setprecision(1) << 100.0 * t.stage[s] / t.endToEnd << "%)\n";
      }
    };
    emit("reads", tr.readTotals());
    emit("writes", tr.writeTotals());
  }
}

}  // namespace dresar
