#include "sim/metrics.h"

#include <iomanip>

#include "sim/system.h"

namespace dresar {

RunMetrics RunMetrics::collect(const System& sys, const std::string& workload) {
  RunMetrics m;
  m.workload = workload;
  const StatRegistry& st = sys.stats();

  Cycle finish = 0;
  for (NodeId n = 0; n < sys.config().numNodes; ++n) {
    const ThreadContext& ctx = sys.ctx(n);
    m.reads += ctx.loads();
    m.stores += ctx.stores();
    m.totalReadStall += static_cast<double>(ctx.readStallCycles());
    if (ctx.finishTime() > finish) finish = ctx.finishTime();
    m.homeCtoC += sys.dir(n).homeCtoCForwards();
  }
  m.execTime = finish;

  m.svcClean = st.counterValue("svc.CleanMemory");
  m.svcCtoCHome = st.counterValue("svc.CtoCHome");
  m.svcCtoCSwitch = st.counterValue("svc.CtoCSwitchDir");
  m.svcSwitchWB = st.counterValue("svc.SwitchWriteBack");
  m.svcSwitchCache = st.counterValue("svc.SwitchCache");
  m.readMisses = m.svcClean + m.svcCtoCHome + m.svcCtoCSwitch + m.svcSwitchWB + m.svcSwitchCache;

  if (const Sampler* s = st.findSampler("cpu.read_latency"); s != nullptr) {
    m.avgReadLatency = s->mean();
  }
  if (const Sampler* s = st.findSampler("cpu.read_latency.ctoc"); s != nullptr) {
    m.totalReadLatCtoC = s->sum();
  }
  if (const Sampler* s = st.findSampler("cpu.read_latency.clean"); s != nullptr) {
    m.totalReadLatClean = s->sum();
  }
  if (const Sampler* s = st.findSampler("cpu.read_latency.clean_miss"); s != nullptr) {
    m.totalReadLatCleanMiss = s->sum();
  }

  const DresarManager& sd = sys.dresar();
  if (sd.enabled()) {
    m.sdDeposits = sd.deposits();
    m.sdCtoCInitiated = sd.ctocInitiated();
    m.sdWriteBackServes = sd.writeBackServes();
    m.sdCopyBackServes = sd.copyBackServes();
    m.sdRetries = sd.readRetries() + sd.writeRetries();
  }
  m.netMessages = st.sumByPrefix("net.msgs.");
  std::uint64_t retries = 0;
  for (NodeId n = 0; n < sys.config().numNodes; ++n) {
    retries += st.counterValue("cache." + std::to_string(n) + ".retries");
  }
  m.retriesObserved = retries;
  for (NodeId n = 0; n < sys.config().numNodes; ++n) {
    m.backoffCycles += st.counterValue("cache." + std::to_string(n) + ".backoff_cycles");
  }

  if (sys.faultInjector() != nullptr) {
    m.faultEnabled = true;
    m.faultInjectedDrops = st.counterValue("fault.injected_drops");
    m.faultInjectedDelays = st.counterValue("fault.injected_delays");
    m.faultInjectedDelayCycles = st.counterValue("fault.injected_delay_cycles");
    m.faultInjectedSdLosses = st.counterValue("fault.injected_sd_losses");
    m.faultInjectedStallCycles = st.counterValue("fault.injected_stall_cycles");
    m.faultTimeoutReissues = st.counterValue("fault.timeout_reissues");
    m.faultRecovered = st.counterValue("fault.recovered");
    m.faultFallbackHomeLookups = st.counterValue("fault.fallback_home_lookups");
  }

  if (const CongestionTelemetry* ct = sys.net().congestion(); ct != nullptr) {
    m.congestionEnabled = true;
    m.congRuns = 1;
    m.congestion = *ct;
  }

  const TxnTracer& tr = sys.txnTracer();
  if (tr.enabled()) {
    const TxnTracer::Totals& rt = tr.readTotals();
    const TxnTracer::Totals& wt = tr.writeTotals();
    m.traceReadTxns = rt.txns;
    m.traceWriteTxns = wt.txns;
    m.traceReadEndToEnd = rt.endToEnd;
    m.traceWriteEndToEnd = wt.endToEnd;
    m.traceReadStage = rt.stage;
    m.traceWriteStage = wt.stage;
  }
  return m;
}

void RunMetrics::merge(const RunMetrics& other) {
  if (workload.empty()) workload = other.workload;
  const std::uint64_t totalReads = reads + other.reads;
  if (totalReads > 0) {
    avgReadLatency = (avgReadLatency * static_cast<double>(reads) +
                      other.avgReadLatency * static_cast<double>(other.reads)) /
                     static_cast<double>(totalReads);
  }
  execTime += other.execTime;
  reads = totalReads;
  stores += other.stores;
  readMisses += other.readMisses;
  svcClean += other.svcClean;
  svcCtoCHome += other.svcCtoCHome;
  svcCtoCSwitch += other.svcCtoCSwitch;
  svcSwitchWB += other.svcSwitchWB;
  svcSwitchCache += other.svcSwitchCache;
  totalReadStall += other.totalReadStall;
  totalReadLatCtoC += other.totalReadLatCtoC;
  totalReadLatClean += other.totalReadLatClean;
  totalReadLatCleanMiss += other.totalReadLatCleanMiss;
  homeCtoC += other.homeCtoC;
  sdDeposits += other.sdDeposits;
  sdCtoCInitiated += other.sdCtoCInitiated;
  sdWriteBackServes += other.sdWriteBackServes;
  sdCopyBackServes += other.sdCopyBackServes;
  sdRetries += other.sdRetries;
  netMessages += other.netMessages;
  retriesObserved += other.retriesObserved;
  backoffCycles += other.backoffCycles;
  faultEnabled = faultEnabled || other.faultEnabled;
  faultInjectedDrops += other.faultInjectedDrops;
  faultInjectedDelays += other.faultInjectedDelays;
  faultInjectedDelayCycles += other.faultInjectedDelayCycles;
  faultInjectedSdLosses += other.faultInjectedSdLosses;
  faultInjectedStallCycles += other.faultInjectedStallCycles;
  faultTimeoutReissues += other.faultTimeoutReissues;
  faultRecovered += other.faultRecovered;
  faultFallbackHomeLookups += other.faultFallbackHomeLookups;
  if (other.congestionEnabled) {
    if (!congestionEnabled) {
      congestionEnabled = true;
      congOfferedRate = other.congOfferedRate;
      congAcceptedRate = other.congAcceptedRate;
      congRuns = other.congRuns;
      congestion = other.congestion;
    } else {
      // Rates average weighted by run count; counters add. Distributions
      // only fold when both sides carry the same geometry (message-level
      // runs annotate rates but have no telemetry to merge).
      const auto w1 = static_cast<double>(congRuns);
      const auto w2 = static_cast<double>(other.congRuns);
      if (w1 + w2 > 0) {
        congOfferedRate = (congOfferedRate * w1 + other.congOfferedRate * w2) / (w1 + w2);
        congAcceptedRate = (congAcceptedRate * w1 + other.congAcceptedRate * w2) / (w1 + w2);
      }
      congRuns += other.congRuns;
      congestion.creditStallCycles += other.congestion.creditStallCycles;
      congestion.linkBusySkips += other.congestion.linkBusySkips;
      congestion.sourceCreditStalls += other.congestion.sourceCreditStalls;
      auto sameHist = [](const Histogram& a, const Histogram& b) {
        return a.isLogSpaced() == b.isLogSpaced() && a.buckets().size() == b.buckets().size();
      };
      if (congestion.perSwitchCreditStalls.size() ==
          other.congestion.perSwitchCreditStalls.size()) {
        for (std::size_t i = 0; i < congestion.perSwitchCreditStalls.size(); ++i) {
          congestion.perSwitchCreditStalls[i] += other.congestion.perSwitchCreditStalls[i];
        }
      }
      if (congestion.stageOccupancy.size() == other.congestion.stageOccupancy.size() &&
          congestion.stageOccupancyHist.size() == other.congestion.stageOccupancyHist.size()) {
        for (std::size_t s = 0; s < congestion.stageOccupancy.size(); ++s) {
          congestion.stageOccupancy[s].merge(other.congestion.stageOccupancy[s]);
          if (sameHist(congestion.stageOccupancyHist[s], other.congestion.stageOccupancyHist[s])) {
            congestion.stageOccupancyHist[s].merge(other.congestion.stageOccupancyHist[s]);
          }
        }
      }
      congestion.lockHold.merge(other.congestion.lockHold);
      if (sameHist(congestion.lockHoldHist, other.congestion.lockHoldHist)) {
        congestion.lockHoldHist.merge(other.congestion.lockHoldHist);
      }
    }
  }
  traceReadTxns += other.traceReadTxns;
  traceWriteTxns += other.traceWriteTxns;
  traceReadEndToEnd += other.traceReadEndToEnd;
  traceWriteEndToEnd += other.traceWriteEndToEnd;
  for (std::size_t s = 0; s < kTxnStageCount; ++s) {
    traceReadStage[s] += other.traceReadStage[s];
    traceWriteStage[s] += other.traceWriteStage[s];
  }
}

void RunMetrics::print(std::ostream& os) const {
  os << "workload=" << workload << " exec=" << execTime << " reads=" << reads
     << " misses=" << readMisses << " clean=" << svcClean << " ctocHome=" << svcCtoCHome
     << " ctocSwitch=" << svcCtoCSwitch << " switchWB=" << svcSwitchWB
     << " dirty%=" << std::fixed << std::setprecision(1) << dirtyFraction() * 100.0
     << " avgReadLat=" << std::setprecision(2) << avgReadLatency
     << " readStall=" << std::setprecision(0) << totalReadStall << " homeCtoC=" << homeCtoC
     << " sdCtoC=" << sdCtoCInitiated << " retries=" << retriesObserved;
  if (faultEnabled) {
    os << " faultDrops=" << faultInjectedDrops << " faultDelays=" << faultInjectedDelays
       << " faultSdLosses=" << faultInjectedSdLosses
       << " faultReissues=" << faultTimeoutReissues << " faultRecovered=" << faultRecovered;
  }
  os << "\n";
}

double reductionPct(double base, double with) {
  if (base <= 0.0) return 0.0;
  return (1.0 - with / base) * 100.0;
}

}  // namespace dresar
