#include "sim/simulation.h"

#include <sstream>
#include <stdexcept>

#include "fault/injector.h"

namespace dresar {

Simulation::Simulation(const SystemConfig& cfg) : sys_(std::make_unique<System>(cfg)) {}

RunMetrics Simulation::run(const RunRequest& req) {
  if (req.simThreads != sys_->config().simThreads) {
    // The kernel shard count is baked into every component at construction
    // (per-shard schedulers, registries, mailboxes), so honoring a different
    // simThreads means a fresh System. validate() re-runs and reports any
    // conflict (flit-level model, tracing, faults) before anything executes.
    SystemConfig cfg = sys_->config();
    cfg.simThreads = req.simThreads;
    sys_ = std::make_unique<System>(cfg);
  }
  auto w = makeWorkload(req.workload, req.scale);
  RunMetrics m = runWorkload(*sys_, *w, req.requireVerify);
  if (const FaultInjector* fault = sys_->faultInjector(); fault != nullptr) {
    // Close out the campaign: every dropped message must have been recovered
    // (throws otherwise), and the faults must not have corrupted coherence.
    fault->requireBalanced();
    const CheckReport report = ProtocolChecker::check(*sys_);
    if (!report.ok()) {
      throw std::runtime_error(req.workload +
                               ": protocol check failed after fault campaign: " +
                               report.summary());
    }
  }
  return m;
}

CheckReport Simulation::check() const { return ProtocolChecker::check(*sys_); }

std::string Simulation::chromeTraceFragment(std::uint32_t pid,
                                            const std::string& label) const {
  if (!sys_->config().txnTrace.enabled) {
    throw std::logic_error("Simulation::chromeTraceFragment: txnTrace not enabled");
  }
  std::ostringstream os;
  bool first = true;
  TxnTracer::writeChromeProcessName(os, pid, label, first);
  sys_->txnTracer().appendChromeEvents(os, pid, first);
  return os.str();
}

}  // namespace dresar
