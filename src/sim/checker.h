// Protocol invariant checker. Runs on a quiescent System (no in-flight
// transactions) and verifies the global coherence invariants; tests,
// examples and long stress runs use it. Violations are reported as strings,
// never thrown, so a harness can decide how to fail.
#pragma once

#include <string>
#include <vector>

namespace dresar {

class System;

struct CheckReport {
  std::vector<std::string> violations;
  /// Checks that could not run (with the reason), e.g. the transient-state
  /// checks on a non-quiescent system. Empty on a clean quiescent run.
  std::vector<std::string> skipped;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

class ProtocolChecker {
 public:
  /// Checks, on a quiescent system:
  ///  1. quiescence itself (no MSHRs, empty write buffers, no BUSY directory
  ///     entries, no pending queues),
  ///  2. single-owner: at most one cache holds any block in M,
  ///  3. home/owner agreement: every M line is MODIFIED at its home with the
  ///     correct owner, and every MODIFIED home entry has exactly that owner
  ///     caching the block in M,
  ///  4. sharer soundness: a cache holding a block in S is recorded in the
  ///     home's sharer vector (silent eviction makes the converse legal),
  ///  5. no orphaned TRANSIENT switch-directory entries, and every MODIFIED
  ///     switch entry's owner is consistent with the home or detectably
  ///     stale (its owner no longer holds the block in M).
  static CheckReport check(const System& sys);
};

}  // namespace dresar
