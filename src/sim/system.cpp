#include "sim/system.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dresar {

System::System(const SystemConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  // A shard needs at least one node to own; more threads than nodes would
  // only spin on barriers.
  const ShardId shards = static_cast<ShardId>(std::min(cfg_.simThreads, cfg_.numNodes));
  kernel_ = std::make_unique<SimKernel>(shards, cfg_.simWindowCycles);
  tracer_ = std::make_unique<TxnTracer>(
      cfg_.txnTrace.enabled,
      TxnTracer::Config{cfg_.txnTrace.ringEvents, cfg_.txnTrace.maxEventsPerTxn});
  // Components only get the tracer when tracing is on, so a disabled run
  // pays nothing but a null check and stays bit-identical.
  TxnTracer* tracer = cfg_.txnTrace.enabled ? tracer_.get() : nullptr;
  // Same conditional-construction pattern as the tracer: the injector
  // registers fault.* counters, so building one only when a fault is
  // configured keeps fault-free stats output byte-identical. Fault plans
  // are single-shard (validation-gated), so registry 0 is the only one.
  if (cfg_.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(cfg_.fault, kernel_->registry(0));
  }
  // Every network observer exists before the network does: the hooks struct
  // is complete at network construction and never changes afterwards.
  topo_ = std::make_unique<Butterfly>(cfg_.numNodes, cfg_.net.switchRadix);
  map_ = ShardMap(cfg_.numNodes, topo_->switchesPerStage(), topo_->half(),
                  kernel_->shardCount());
  dresar_ = std::make_unique<DresarManager>(cfg_.switchDir, *topo_, cfg_.lineBytes,
                                            cfg_.numNodes, *kernel_, map_);
  scache_ = std::make_unique<SwitchCacheManager>(cfg_.switchCache, *topo_, cfg_.lineBytes,
                                                 *kernel_, map_);
  ISwitchSnoop* snoop = nullptr;
  if (dresar_->enabled() && scache_->enabled()) {
    snoopChain_ = std::make_unique<SnoopChain>(dresar_.get(), scache_.get());
    snoop = snoopChain_.get();
  } else if (dresar_->enabled()) {
    snoop = dresar_.get();
  } else if (scache_->enabled()) {
    snoop = scache_.get();
  }
  if (tracer != nullptr) dresar_->setTracer(tracer);
  if (fault_ != nullptr) {
    dresar_->setFaultInjector(fault_.get());
    scache_->setFaultInjector(fault_.get());
  }
  const NetworkHooks hooks{&sink_, snoop, tracer, fault_.get()};
  if (cfg_.net.flitLevel) {
    net_ = std::make_unique<FlitNetwork>(cfg_.net, cfg_.numNodes, cfg_.lineBytes, *kernel_,
                                         hooks);
  } else {
    net_ = std::make_unique<Network>(cfg_.net, cfg_.numNodes, cfg_.lineBytes, *kernel_,
                                     hooks);
  }
  mem_ = std::make_unique<AddressSpace>(cfg_);

  caches_.reserve(cfg_.numNodes);
  dirs_.reserve(cfg_.numNodes);
  ctxs_.reserve(cfg_.numNodes);
  for (NodeId n = 0; n < cfg_.numNodes; ++n) {
    // Everything belonging to node n — cache, directory, context, both
    // network endpoints — schedules and counts on n's shard. Deliveries
    // reach these controllers through sink_ (no per-endpoint registration).
    Scheduler& sched = kernel_->scheduler(map_.ofNode(n));
    StatRegistry& reg = kernel_->registry(map_.ofNode(n));
    caches_.push_back(std::make_unique<CacheController>(n, cfg_, sched, *net_, reg));
    dirs_.push_back(std::make_unique<DirController>(n, cfg_, sched, *net_, reg));
    if (tracer != nullptr) {
      caches_.back()->setTracer(tracer);
      dirs_.back()->setTracer(tracer);
    }
    if (fault_ != nullptr) caches_.back()->setFaultInjector(fault_.get());
    ctxs_.push_back(std::make_unique<ThreadContext>(n, cfg_, sched, *caches_.back()));
  }
}

void System::Sink::deliver(Endpoint ep, const Message& m) {
  if (ep.kind == EndpointKind::Proc) {
    sys_.caches_.at(ep.node)->onMessage(m);
  } else {
    sys_.dirs_.at(ep.node)->onMessage(m);
  }
}

void System::spawn(NodeId owner, SimTask task) {
  tasks_.push_back(Spawned{std::move(task), owner});
}

Cycle System::run(Cycle limit) {
  if (!kernel_->parallel()) {
    // Root-shard path, identical to the pre-shard kernel: start tasks
    // synchronously at cycle 0 in spawn order, then drain the queue.
    for (auto& t : tasks_) t.task.start();
  } else {
    // Each task's first step must already execute on its owner's shard (its
    // coroutine resumes wherever its cache controller schedules them), so
    // starts are cycle-0 events on the owning shards.
    for (auto& t : tasks_) {
      kernel_->scheduler(0).post(net_->shardMap().ofNode(t.owner), 0,
                                 [task = &t.task] { task->start(); });
    }
  }
  const bool drained = kernel_->run(limit);
  kernel_->foldStats();
  for (auto& t : tasks_) t.task.rethrowIfFailed();
  if (!drained) {
    throw std::runtime_error("System::run: cycle limit " + std::to_string(limit) +
                             " exceeded with events pending (livelock?)" + inFlightReport());
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!tasks_[i].task.done()) {
      throw std::runtime_error("System::run: deadlock — task " + std::to_string(i) +
                               " suspended with no pending events at cycle " +
                               std::to_string(kernel_->now()) + inFlightReport());
    }
  }
  return kernel_->now();
}

std::string System::inFlightReport() const {
  std::ostringstream os;
  std::size_t suspended = 0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!tasks_[i].task.done()) ++suspended;
  }
  os << "\nin-flight state: " << suspended << " task(s) suspended";
  if (suspended > 0) {
    os << " (";
    bool first = true;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].task.done()) continue;
      if (!first) os << ", ";
      os << i;
      first = false;
    }
    os << ")";
  }
  for (const auto& c : caches_) c->describeInFlight(os);
  for (const auto& d : dirs_) d->describeInFlight(os);
  return os.str();
}

bool System::quiescent() const {
  for (const auto& c : caches_) {
    if (!c->quiescent()) return false;
  }
  for (const auto& d : dirs_) {
    if (!d->quiescent()) return false;
  }
  return true;
}

}  // namespace dresar
