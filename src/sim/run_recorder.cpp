#include "sim/run_recorder.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <tuple>

#include "sim/json_writer.h"

namespace dresar {

void RunRecorder::merge(RunRecorder&& other) {
  if (bench_.empty()) bench_ = std::move(other.bench_);
  for (auto& opt : other.options_) options_.push_back(std::move(opt));
  runs_.reserve(runs_.size() + other.runs_.size());
  for (auto& r : other.runs_) runs_.push_back(std::move(r));
  other.options_.clear();
  other.runs_.clear();
}

void RunRecorder::sortCanonical() {
  std::stable_sort(runs_.begin(), runs_.end(), [](const RunRecord& a, const RunRecord& b) {
    return std::tie(a.app, a.config, a.seed, a.kind) < std::tie(b.app, b.config, b.seed, b.kind);
  });
}

void writeTrafficJson(JsonWriter& w, const RunRecord& r) {
  w.key("traffic");
  w.beginObject();
  w.field("tenants", r.trafficTenantCount);
  w.field("p99_read_latency", r.trafficP99Read);
  w.field("p999_read_latency", r.trafficP999Read);
  w.field("p99_overflowed", r.trafficP99Overflowed);
  w.field("p999_overflowed", r.trafficP999Overflowed);
  w.field("burst_occupancy", r.trafficBurstOccupancy);
  w.field("steady_occupancy", r.trafficSteadyOccupancy);
  w.field("burst_cycles", r.trafficBurstCycles);
  w.field("steady_cycles", r.trafficSteadyCycles);
  w.key("per_tenant");
  w.beginArray();
  for (const RunRecord::TrafficTenant& t : r.trafficPerTenant) {
    w.beginObject();
    w.field("reads", t.reads);
    w.field("writes", t.writes);
    w.field("mean_read_latency", t.meanReadLatency);
    w.field("max_read_latency", t.maxReadLatency);
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

void writeCongestionJson(JsonWriter& w, const RunRecord& r) {
  w.key("congestion");
  w.beginObject();
  w.field("offered_rate", r.congOfferedRate);
  w.field("accepted_rate", r.congAcceptedRate);
  w.field("runs", r.congRuns);
  w.field("credit_stall_cycles", r.congCreditStallCycles);
  w.field("link_busy_skips", r.congLinkBusySkips);
  w.field("source_credit_stalls", r.congSourceCreditStalls);
  w.key("per_switch_credit_stalls");
  w.beginArray();
  for (std::uint64_t v : r.congPerSwitchCreditStalls) w.value(v);
  w.endArray();
  w.key("stage_occupancy");
  w.beginArray();
  for (const RunRecord::CongestionStage& s : r.congStageOccupancy) {
    w.beginObject();
    w.field("mean", s.mean);
    w.field("max", s.max);
    w.field("samples", s.samples);
    w.key("hist");
    w.beginArray();
    for (std::uint64_t v : s.hist) w.value(v);
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("lock_hold");
  w.beginObject();
  w.field("mean", r.congLockHoldMean);
  w.field("max", r.congLockHoldMax);
  w.field("count", r.congLockHoldCount);
  w.key("hist");
  w.beginArray();
  for (std::uint64_t v : r.congLockHoldHist) w.value(v);
  w.endArray();
  w.endObject();
  w.endObject();
}

std::string RunRecorder::toJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  // Traffic-free, fault-free documents stay byte-identical to the historical
  // v2 output; only a run that actually carries the new blocks upgrades the
  // schema (congestion > traffic > fault > v2).
  const bool anyFault =
      std::any_of(runs_.begin(), runs_.end(), [](const RunRecord& r) { return r.hasFault; });
  const bool anyTraffic =
      std::any_of(runs_.begin(), runs_.end(), [](const RunRecord& r) { return r.hasTraffic; });
  const bool anyCongestion = std::any_of(
      runs_.begin(), runs_.end(), [](const RunRecord& r) { return r.hasCongestion; });
  w.beginObject();
  w.field("schema", anyCongestion ? "dresar-bench-results/v6"
                  : anyTraffic    ? "dresar-bench-results/v5"
                  : anyFault      ? "dresar-bench-results/v4"
                                  : "dresar-bench-results/v2");
  w.field("bench", bench_);
  w.key("options");
  w.beginObject();
  for (const auto& [k, v] : options_) w.field(k, v);
  w.endObject();

  double wallTotal = 0.0;
  std::uint64_t eventsTotal = 0;
  for (const RunRecord& r : runs_) {
    wallTotal += r.wallSeconds;
    eventsTotal += r.events;
  }
  w.field("wall_seconds_total", wallTotal);
  w.field("sim_events_total", eventsTotal);
  w.field("events_per_sec", wallTotal > 0.0 ? static_cast<double>(eventsTotal) / wallTotal : 0.0);

  w.key("runs");
  w.beginArray();
  for (const RunRecord& r : runs_) {
    w.beginObject();
    w.field("app", r.app);
    w.field("config", r.config);
    w.field("kind", r.kind);
    w.field("sd_entries", r.sdEntries);
    if (r.seed != 0) w.field("seed", r.seed);
    w.field("wall_seconds", r.wallSeconds);
    w.field("events", r.events);
    w.field("events_per_sec",
            r.wallSeconds > 0.0 ? static_cast<double>(r.events) / r.wallSeconds : 0.0);
    w.key("metrics");
    w.beginObject();
    for (const auto& [k, v] : r.metrics) w.field(k, v);
    w.endObject();
    if (r.hasFault) {
      w.key("fault");
      w.beginObject();
      w.field("injected_drops", r.faultInjectedDrops);
      w.field("injected_delays", r.faultInjectedDelays);
      w.field("injected_delay_cycles", r.faultInjectedDelayCycles);
      w.field("injected_sd_losses", r.faultInjectedSdLosses);
      w.field("injected_stall_cycles", r.faultInjectedStallCycles);
      w.field("injected_effective", r.faultInjectedEffective);
      w.field("timeout_reissues", r.faultTimeoutReissues);
      w.field("recovered", r.faultRecovered);
      w.field("fallback_home_lookups", r.faultFallbackHomeLookups);
      w.endObject();
    }
    if (r.hasTraffic) writeTrafficJson(w, r);
    if (r.hasCongestion) writeCongestionJson(w, r);
    if (r.hasTrace) {
      const auto emitClass = [&w](const char* name, std::uint64_t txns, double endToEnd,
                                  const std::array<double, kTxnStageCount>& stage) {
        w.key(name);
        w.beginObject();
        w.field("txns", txns);
        w.field("end_to_end_cycles", endToEnd);
        w.key("stages");
        w.beginObject();
        for (std::size_t s = 0; s < kTxnStageCount; ++s) {
          w.field(toString(static_cast<TxnStage>(s)), stage[s]);
        }
        w.endObject();
        w.endObject();
      };
      w.key("latency_stages");
      w.beginObject();
      emitClass("read", r.traceReadTxns, r.traceReadEndToEnd, r.traceReadStage);
      emitClass("write", r.traceWriteTxns, r.traceWriteEndToEnd, r.traceWriteStage);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << '\n';
  return os.str();
}

bool RunRecorder::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open --json file '" << path << "' for writing\n";
    return false;
  }
  out << toJson();
  return static_cast<bool>(out);
}

}  // namespace dresar
