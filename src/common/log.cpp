#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/types.h"

namespace dresar {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Error};
// Serializes logLine(): concurrent harness workers must not interleave
// characters of different lines on stderr.
std::mutex g_logMutex;
}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }
void setLogLevel(LogLevel lvl) { g_level.store(lvl, std::memory_order_relaxed); }

namespace detail {
void logLine(LogLevel lvl, const std::string& msg) {
  const char* tag = lvl == LogLevel::Error ? "E" : (lvl == LogLevel::Info ? "I" : "T");
  const std::lock_guard<std::mutex> lock(g_logMutex);
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}
}  // namespace detail

std::string toString(Endpoint ep) {
  return (ep.kind == EndpointKind::Proc ? "P" : "M") + std::to_string(ep.node);
}

std::string toHex(NodeMask mask) {
  if (mask == 0) return "0x0";
  char digits[33];
  int n = 0;
  while (mask != 0) {
    digits[n++] = "0123456789abcdef"[static_cast<unsigned>(mask & 0xF)];
    mask >>= 4;
  }
  std::string out = "0x";
  while (n > 0) out.push_back(digits[--n]);
  return out;
}

const char* toString(ReadService s) {
  switch (s) {
    case ReadService::L1Hit: return "L1Hit";
    case ReadService::L2Hit: return "L2Hit";
    case ReadService::WriteBufferHit: return "WriteBufferHit";
    case ReadService::CleanMemory: return "CleanMemory";
    case ReadService::CtoCHome: return "CtoCHome";
    case ReadService::CtoCSwitchDir: return "CtoCSwitchDir";
    case ReadService::SwitchWriteBack: return "SwitchWriteBack";
    case ReadService::SwitchCache: return "SwitchCache";
  }
  return "?";
}

}  // namespace dresar
