// Minimal leveled logging. Protocol traces are invaluable when debugging
// coherence races, but must compile away to nothing in benchmark builds.
#pragma once

#include <cstdio>
#include <string>

namespace dresar {

enum class LogLevel : int { None = 0, Error = 1, Info = 2, Trace = 3 };

/// Per-process log level; defaults to Error. Tests raise it locally.
/// Thread-safe: backed by a std::atomic<LogLevel>, so concurrent harness
/// workers may read it while another thread adjusts it.
LogLevel logLevel();
void setLogLevel(LogLevel lvl);

namespace detail {
/// Emits one line to stderr; serialized by an internal mutex so lines from
/// concurrent simulation jobs never interleave mid-line.
void logLine(LogLevel lvl, const std::string& msg);
}

}  // namespace dresar

#define DRESAR_LOG_TRACE(...)                                             \
  do {                                                                    \
    if (::dresar::logLevel() >= ::dresar::LogLevel::Trace) {              \
      char buf_[512];                                                     \
      std::snprintf(buf_, sizeof buf_, __VA_ARGS__);                      \
      ::dresar::detail::logLine(::dresar::LogLevel::Trace, buf_);         \
    }                                                                     \
  } while (0)

#define DRESAR_LOG_INFO(...)                                              \
  do {                                                                    \
    if (::dresar::logLevel() >= ::dresar::LogLevel::Info) {               \
      char buf_[512];                                                     \
      std::snprintf(buf_, sizeof buf_, __VA_ARGS__);                      \
      ::dresar::detail::logLine(::dresar::LogLevel::Info, buf_);          \
    }                                                                     \
  } while (0)
