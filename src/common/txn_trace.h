// Transaction-level tracing and latency attribution. Every read/write miss
// transaction can be tagged with an id (Message::txn) and accumulate
// timestamped lifecycle events — issue, per-hop switch traversal, snoop
// outcome, home directory enqueue/service/inject, forward, fill — as it moves
// through the CacheController, Network, DresarManager and DirController.
//
// Attribution works by interval partition: each recorded event closes the
// interval since the transaction's previous event and charges it to a stage
// derived from the event kind (and, for network hops, the message leg being
// traversed). Because the intervals tile [issue, fill] exactly, the per-stage
// sums equal the end-to-end latency by construction — the property the
// paper's Figure 3/9/10 decompositions rely on.
//
// Completed transactions are kept in a ring buffer (bounded by total event
// count) for the Chrome trace_event JSON exporter (--trace=FILE, loadable in
// Perfetto / chrome://tracing). Aggregate per-stage totals survive ring
// eviction. When tracing is disabled no component holds a tracer pointer, so
// runs are bit-identical and pay nothing on the hot path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace dresar {

/// Pipeline stages a transaction's cycles are attributed to.
enum class TxnStage : std::uint8_t {
  CacheAccess,  ///< L1/L2 lookup + MSHR allocation before the request leaves
  RequestNet,   ///< request message travelling requester -> home
  HomeDir,      ///< home controller occupancy, queueing and directory lookup
  HomeService,  ///< home protocol action + memory access before injection
  Forward,      ///< forwarded CtoCRequest travelling toward the owner
  OwnerAccess,  ///< owner cache controller + L2 access supplying the line
  DataReturn,   ///< reply travelling back to the requester + fill
  Retry,        ///< NAK'd attempts: bounce travel until the retry arrives
  Backoff,      ///< cycles spent backed off before re-issuing
};

inline constexpr std::size_t kTxnStageCount =
    static_cast<std::size_t>(TxnStage::Backoff) + 1;

const char* toString(TxnStage s);

/// Lifecycle events components record against a transaction.
enum class TxnEvent : std::uint8_t {
  Begin,            ///< transaction created (miss detected), zero-length
  Issue,            ///< request injected into the network
  Reissue,          ///< request re-injected after backoff
  SwitchHop,        ///< message traversed a switch (any leg)
  SwitchIntercept,  ///< switch directory sank the request, spawned a c2c
  SwitchRetry,      ///< switch directory NAK'd the request (TRANSIENT)
  SwitchServe,      ///< switch served the requester from passing wb/cb data
  HomeArrive,       ///< request delivered at the home controller
  HomeService,      ///< home directory entry handled (post lookup/occupancy)
  HomeInject,       ///< home injected the response/forward into the network
  OwnerArrive,      ///< CtoCRequest delivered at the owning cache
  OwnerInject,      ///< owner injected its reply (or bounce) after L2 access
  RetryArrive,      ///< Retry NAK delivered back at the requester
  Fill,             ///< data fill delivered; transaction complete
};

const char* toString(TxnEvent e);

/// Which protocol leg a message in flight belongs to; picks the stage for
/// generic network events (SwitchHop and friends).
enum class TxnLeg : std::uint8_t { None, Request, Forward, Return, Retry };

const char* toString(TxnLeg l);

/// Stage an interval ending at (event, leg) is charged to.
TxnStage stageOf(TxnEvent e, TxnLeg leg);

// Location encoding for Event::where: processors, memory/directory modules
// and switches (by flat id) share one 32-bit namespace.
inline constexpr std::uint32_t txnAtProc(NodeId n) { return n; }
inline constexpr std::uint32_t txnAtMem(NodeId n) { return 0x40000000u | n; }
inline constexpr std::uint32_t txnAtSwitch(std::uint32_t flat) {
  return 0x80000000u | flat;
}
std::string txnWhereName(std::uint32_t where);

class TxnTracer {
 public:
  struct Config {
    /// Total events retained across completed transactions (ring buffer);
    /// oldest transactions are evicted beyond this. Aggregates are unaffected.
    std::uint64_t ringEvents = 1ull << 22;
    /// Per-transaction event cap (bounds retry storms); excess events still
    /// close their stage interval but are not kept for export.
    std::uint32_t maxEventsPerTxn = 512;
  };

  struct Event {
    TxnEvent kind = TxnEvent::Begin;
    TxnLeg leg = TxnLeg::None;
    std::uint32_t where = 0;
    Cycle at = 0;
  };

  struct Txn {
    std::uint64_t id = 0;
    Addr addr = kInvalidAddr;
    NodeId requester = kInvalidNode;
    bool write = false;
    Cycle start = 0;
    Cycle end = 0;   ///< valid once completed
    Cycle last = 0;  ///< previous event cycle (interval bookkeeping)
    std::uint32_t dropped = 0;  ///< events over maxEventsPerTxn
    std::array<Cycle, kTxnStageCount> stage{};
    std::vector<Event> events;
  };

  /// Per-class (read/write) aggregate stage totals, in cycles.
  struct Totals {
    std::uint64_t txns = 0;
    double endToEnd = 0.0;
    std::array<double, kTxnStageCount> stage{};
  };

  explicit TxnTracer(bool enabled);
  TxnTracer(bool enabled, Config cfg);

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Open a transaction; returns its id (0 when tracing is disabled).
  /// `start` may predate the current cycle (cache lookup already underway).
  std::uint64_t begin(Addr addr, NodeId requester, bool write, Cycle start);

  /// Record an event against a live transaction. Charges [last, now) to
  /// stageOf(e, leg). No-op for id 0 or already-completed transactions (a
  /// duplicate fill or late bounce simply stops mattering).
  void record(std::uint64_t txn, TxnEvent e, TxnLeg leg, std::uint32_t where,
              Cycle now);

  /// Close a transaction (its Fill must have been recorded): fold its stage
  /// cycles into the aggregates and move it to the ring buffer.
  void complete(std::uint64_t txn);

  [[nodiscard]] const Totals& readTotals() const { return reads_; }
  [[nodiscard]] const Totals& writeTotals() const { return writes_; }
  [[nodiscard]] std::size_t liveTxns() const { return live_.size(); }
  [[nodiscard]] std::uint64_t completedTxns() const {
    return reads_.txns + writes_.txns;
  }
  [[nodiscard]] std::uint64_t evictedTxns() const { return evicted_; }
  [[nodiscard]] std::uint64_t droppedEvents() const { return droppedEvents_; }

  /// Visit the retained completed transactions, oldest first.
  template <typename Fn>
  void forEachCompleted(Fn&& fn) const {
    for (const Txn& t : ring_) fn(t);
  }

  // ---- Chrome trace_event ("Trace Event Format") JSON export ------------
  /// Write one self-contained document: {"traceEvents":[...]}.
  void exportChrome(std::ostream& os, std::string_view processLabel,
                    std::uint32_t pid = 1) const;

  // Streaming variants used by the bench harness to combine several runs
  // (one pid per run) into a single document.
  static void writeChromeHeader(std::ostream& os);
  static void writeChromeFooter(std::ostream& os);
  /// Emit the "M" process_name metadata record for `pid`.
  static void writeChromeProcessName(std::ostream& os, std::uint32_t pid,
                                     std::string_view name, bool& first);
  /// Emit every retained transaction's stage slices as "X" complete events.
  void appendChromeEvents(std::ostream& os, std::uint32_t pid,
                          bool& first) const;

 private:
  void evictToCapacity();

  bool enabled_;
  Config cfg_;
  std::uint64_t nextId_ = 1;
  std::unordered_map<std::uint64_t, Txn> live_;
  std::deque<Txn> ring_;           ///< completed, oldest first
  std::uint64_t ringEventCount_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t droppedEvents_ = 0;
  Totals reads_;
  Totals writes_;
};

}  // namespace dresar
