#include "common/txn_trace.h"

#include <algorithm>

namespace dresar {

const char* toString(TxnStage s) {
  switch (s) {
    case TxnStage::CacheAccess: return "cache_access";
    case TxnStage::RequestNet: return "request_net";
    case TxnStage::HomeDir: return "home_dir";
    case TxnStage::HomeService: return "home_service";
    case TxnStage::Forward: return "forward";
    case TxnStage::OwnerAccess: return "owner_access";
    case TxnStage::DataReturn: return "data_return";
    case TxnStage::Retry: return "retry";
    case TxnStage::Backoff: return "backoff";
  }
  return "?";
}

const char* toString(TxnEvent e) {
  switch (e) {
    case TxnEvent::Begin: return "begin";
    case TxnEvent::Issue: return "issue";
    case TxnEvent::Reissue: return "reissue";
    case TxnEvent::SwitchHop: return "switch_hop";
    case TxnEvent::SwitchIntercept: return "switch_intercept";
    case TxnEvent::SwitchRetry: return "switch_retry";
    case TxnEvent::SwitchServe: return "switch_serve";
    case TxnEvent::HomeArrive: return "home_arrive";
    case TxnEvent::HomeService: return "home_service";
    case TxnEvent::HomeInject: return "home_inject";
    case TxnEvent::OwnerArrive: return "owner_arrive";
    case TxnEvent::OwnerInject: return "owner_inject";
    case TxnEvent::RetryArrive: return "retry_arrive";
    case TxnEvent::Fill: return "fill";
  }
  return "?";
}

const char* toString(TxnLeg l) {
  switch (l) {
    case TxnLeg::None: return "none";
    case TxnLeg::Request: return "request";
    case TxnLeg::Forward: return "forward";
    case TxnLeg::Return: return "return";
    case TxnLeg::Retry: return "retry";
  }
  return "?";
}

TxnStage stageOf(TxnEvent e, TxnLeg leg) {
  switch (e) {
    case TxnEvent::Begin:
    case TxnEvent::Issue:
      return TxnStage::CacheAccess;
    case TxnEvent::Reissue:
      return TxnStage::Backoff;
    case TxnEvent::HomeArrive:
      return TxnStage::RequestNet;
    case TxnEvent::HomeService:
      return TxnStage::HomeDir;
    case TxnEvent::HomeInject:
      return TxnStage::HomeService;
    case TxnEvent::SwitchServe:
    case TxnEvent::OwnerArrive:
      return TxnStage::Forward;
    case TxnEvent::OwnerInject:
      return TxnStage::OwnerAccess;
    case TxnEvent::RetryArrive:
      return TxnStage::Retry;
    case TxnEvent::Fill:
      return TxnStage::DataReturn;
    case TxnEvent::SwitchHop:
    case TxnEvent::SwitchIntercept:
    case TxnEvent::SwitchRetry:
      break;  // leg decides below
  }
  switch (leg) {
    case TxnLeg::Forward: return TxnStage::Forward;
    case TxnLeg::Return: return TxnStage::DataReturn;
    case TxnLeg::Retry: return TxnStage::Retry;
    case TxnLeg::Request:
    case TxnLeg::None:
      break;
  }
  return TxnStage::RequestNet;
}

std::string txnWhereName(std::uint32_t where) {
  if (where & 0x80000000u) return "switch" + std::to_string(where & ~0x80000000u);
  if (where & 0x40000000u) return "mem" + std::to_string(where & ~0x40000000u);
  return "proc" + std::to_string(where);
}

TxnTracer::TxnTracer(bool enabled) : TxnTracer(enabled, Config{}) {}

TxnTracer::TxnTracer(bool enabled, Config cfg) : enabled_(enabled), cfg_(cfg) {}

std::uint64_t TxnTracer::begin(Addr addr, NodeId requester, bool write,
                               Cycle start) {
  if (!enabled_) return 0;
  const std::uint64_t id = nextId_++;
  Txn& t = live_[id];
  t.id = id;
  t.addr = addr;
  t.requester = requester;
  t.write = write;
  t.start = start;
  t.last = start;
  t.events.push_back({TxnEvent::Begin, TxnLeg::None, txnAtProc(requester), start});
  return id;
}

void TxnTracer::record(std::uint64_t txn, TxnEvent e, TxnLeg leg,
                       std::uint32_t where, Cycle now) {
  if (txn == 0) return;
  auto it = live_.find(txn);
  if (it == live_.end()) return;  // completed or never traced; late events are fine
  Txn& t = it->second;
  const Cycle at = std::max(now, t.last);
  t.stage[static_cast<std::size_t>(stageOf(e, leg))] += at - t.last;
  t.last = at;
  if (t.events.size() < cfg_.maxEventsPerTxn) {
    t.events.push_back({e, leg, where, at});
  } else {
    ++t.dropped;
    ++droppedEvents_;
  }
}

void TxnTracer::complete(std::uint64_t txn) {
  if (txn == 0) return;
  auto it = live_.find(txn);
  if (it == live_.end()) return;
  Txn t = std::move(it->second);
  live_.erase(it);
  t.end = t.last;
  Totals& agg = t.write ? writes_ : reads_;
  ++agg.txns;
  agg.endToEnd += static_cast<double>(t.end - t.start);
  for (std::size_t s = 0; s < kTxnStageCount; ++s) {
    agg.stage[s] += static_cast<double>(t.stage[s]);
  }
  ringEventCount_ += t.events.size();
  ring_.push_back(std::move(t));
  evictToCapacity();
}

void TxnTracer::evictToCapacity() {
  while (ringEventCount_ > cfg_.ringEvents && !ring_.empty()) {
    ringEventCount_ -= ring_.front().events.size();
    ring_.pop_front();
    ++evicted_;
  }
}

namespace {
void jsonEscaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // labels are plain ASCII
    os << c;
  }
}
}  // namespace

void TxnTracer::writeChromeHeader(std::ostream& os) {
  os << "{\"traceEvents\":[";
}

void TxnTracer::writeChromeFooter(std::ostream& os) { os << "\n]}\n"; }

void TxnTracer::writeChromeProcessName(std::ostream& os, std::uint32_t pid,
                                       std::string_view name, bool& first) {
  if (!first) os << ',';
  first = false;
  os << "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"";
  jsonEscaped(os, name);
  os << "\"}}";
}

void TxnTracer::appendChromeEvents(std::ostream& os, std::uint32_t pid,
                                   bool& first) const {
  // One "X" complete-event slice per recorded interval: the slice named after
  // the stage the interval was charged to, spanning [previous event, event].
  // Timestamps are simulated cycles (Perfetto renders them as microseconds).
  for (const Txn& t : ring_) {
    Cycle prev = t.start;
    for (const Event& e : t.events) {
      if (e.kind == TxnEvent::Begin && e.at == prev && t.events.size() > 1) {
        continue;  // zero-length begin marker; the issue slice covers it
      }
      if (!first) os << ',';
      first = false;
      os << "\n{\"ph\":\"X\",\"name\":\"" << toString(stageOf(e.kind, e.leg))
         << "\",\"cat\":\"" << (t.write ? "write" : "read") << "\",\"pid\":" << pid
         << ",\"tid\":" << t.id << ",\"ts\":" << prev << ",\"dur\":" << (e.at - prev)
         << ",\"args\":{\"event\":\"" << toString(e.kind) << "\",\"at\":\""
         << txnWhereName(e.where) << "\",\"addr\":\"0x" << std::hex << t.addr
         << std::dec << "\",\"requester\":" << t.requester << "}}";
      prev = e.at;
    }
  }
}

void TxnTracer::exportChrome(std::ostream& os, std::string_view processLabel,
                             std::uint32_t pid) const {
  bool first = true;
  writeChromeHeader(os);
  writeChromeProcessName(os, pid, processLabel, first);
  appendChromeEvents(os, pid, first);
  writeChromeFooter(os);
}

}  // namespace dresar
