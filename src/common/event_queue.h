// Discrete-event simulation kernel with cycle-granularity timestamps.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/small_fn.h"
#include "common/types.h"

namespace dresar {

/// A deterministic discrete-event queue. Events scheduled for the same cycle
/// fire in scheduling order, which keeps simulations reproducible across runs
/// and platforms.
///
/// Internally a calendar queue: a power-of-two ring of per-cycle FIFO buckets
/// covering the near window [now, now + kBuckets), with a sorted overflow map
/// for events beyond the window. Scheduling and dispatch are O(1) on the hot
/// path (coherence traffic schedules a handful of cycles ahead), versus the
/// O(log n) push/pop of a binary heap. FIFO append per bucket preserves the
/// (cycle, scheduling-order) total order exactly: far events for a cycle were
/// necessarily scheduled before that cycle entered the window, so migrating
/// them to the front of the bucket keeps them ahead of later near appends.
class EventQueue {
 public:
  /// Event closure. SmallFn's inline buffer is sized for the largest hot
  /// closure (Network's switch-hop lambda: a 96-byte Message plus route
  /// state), so scheduling an event performs no heap allocation — the
  /// single biggest remaining malloc source in the calendar-queue loop.
  /// Oversized closures still work; they transparently fall back to the
  /// heap like std::function.
  using Handler = SmallFn<160>;

  /// Current simulated cycle. Valid during and after event execution.
  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedule `fn` to run at absolute cycle `when` (>= now()). Templated so
  /// the closure is constructed directly in its bucket slot — one payload
  /// move, not a Handler round trip (hot closures carry ~150-byte captures,
  /// so an extra relocation per event is measurable).
  template <typename F>
  void scheduleAt(Cycle when, F&& fn) {
    if (when < now_) throw std::logic_error("EventQueue: scheduling into the past");
    ++pending_;
    if (when < windowEnd_) {
      Bucket& b = bucketOf(when);
      b.items.emplace_back(std::forward<F>(fn));
      markOccupied(when);
      ++nearCount_;
    } else {
      far_[when].emplace_back(std::forward<F>(fn));
    }
  }

  /// Schedule `fn` to run `delay` cycles from now.
  template <typename F>
  void scheduleAfter(Cycle delay, F&& fn) {
    scheduleAt(now_ + delay, std::forward<F>(fn));
  }

  [[nodiscard]] bool empty() const { return pending_ == 0; }
  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Run until the queue drains or `limit` cycles have elapsed.
  /// Returns true if the queue drained (normal completion).
  bool run(Cycle limit = kNoCycle);

  /// Run every event with cycle < `end`, then stop (the window step of the
  /// sharded kernel). now() is left at the last executed cycle, not `end`:
  /// cross-shard events drained at the barrier may still target cycles in
  /// (now, end) and must remain schedulable.
  void runUntil(Cycle end);

  /// Earliest pending cycle, or kNoCycle if the queue is empty (what the
  /// sharded kernel publishes at window barriers to plan the next window).
  [[nodiscard]] Cycle nextCycle() const { return nextEventCycle(); }

  /// Run while `keepGoing` returns true (checked between events) and events
  /// remain. Returns true if stopped because `keepGoing` became false.
  bool runWhile(const std::function<bool()>& keepGoing, Cycle limit = kNoCycle);

  /// Drop all pending events (used by tests between scenarios).
  void clear();

 private:
  static constexpr std::size_t kBuckets = 1024;  // power of two; window width
  static constexpr std::size_t kMask = kBuckets - 1;
  static constexpr std::size_t kWords = kBuckets / 64;

  /// One cycle's FIFO of handlers. `head` marks how many have already fired,
  /// so a run can stop mid-cycle (runWhile) without reshuffling the vector.
  struct Bucket {
    std::vector<Handler> items;
    std::size_t head = 0;
    [[nodiscard]] bool drained() const { return head >= items.size(); }
  };

  [[nodiscard]] Bucket& bucketOf(Cycle when) { return ring_[when & kMask]; }
  void markOccupied(Cycle when) { occupied_[(when & kMask) >> 6] |= 1ull << (when & 63); }
  void markDrained(Cycle when) { occupied_[(when & kMask) >> 6] &= ~(1ull << (when & 63)); }

  /// Earliest pending cycle, or kNoCycle if the queue is empty.
  [[nodiscard]] Cycle nextEventCycle() const;
  /// Advance now_ to `when` and pull overflow cycles entering the window.
  void advanceTo(Cycle when);
  /// Fire the next handler of the current cycle's bucket.
  void dispatchOne(Bucket& b);

  std::array<Bucket, kBuckets> ring_;
  std::array<std::uint64_t, kWords> occupied_{};  ///< bit per non-drained bucket
  std::map<Cycle, std::vector<Handler>> far_;     ///< beyond the near window
  Cycle now_ = 0;
  Cycle windowEnd_ = kBuckets;  ///< near window is [now_, windowEnd_)
  std::size_t nearCount_ = 0;   ///< pending handlers in the ring
  std::size_t pending_ = 0;     ///< pending handlers total (ring + far)
  std::uint64_t executed_ = 0;
};

}  // namespace dresar
