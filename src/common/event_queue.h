// Discrete-event simulation kernel with cycle-granularity timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace dresar {

/// A deterministic discrete-event queue. Events scheduled for the same cycle
/// fire in scheduling order (FIFO tie-break via a sequence number), which
/// keeps simulations reproducible across runs and platforms.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current simulated cycle. Valid during and after event execution.
  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedule `fn` to run at absolute cycle `when` (>= now()).
  void scheduleAt(Cycle when, Handler fn);

  /// Schedule `fn` to run `delay` cycles from now.
  void scheduleAfter(Cycle delay, Handler fn) { scheduleAt(now_ + delay, std::move(fn)); }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Run until the queue drains or `limit` cycles have elapsed.
  /// Returns true if the queue drained (normal completion).
  bool run(Cycle limit = kNoCycle);

  /// Run while `keepGoing` returns true (checked between events) and events
  /// remain. Returns true if stopped because `keepGoing` became false.
  bool runWhile(const std::function<bool()>& keepGoing, Cycle limit = kNoCycle);

  /// Drop all pending events (used by tests between scenarios).
  void clear();

 private:
  struct Entry {
    Cycle when;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dresar
