#include "common/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace dresar {

SimKernel::SimKernel(ShardId shards, Cycle windowCycles)
    : window_(windowCycles == 0 ? 1 : windowCycles) {
  if (shards == 0) throw std::invalid_argument("SimKernel: shards must be >= 1");
  shards_.reserve(shards);
  nextCycle_.assign(shards, kNoCycle);
  for (ShardId s = 0; s < shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->sched = std::make_unique<Scheduler>(*this, s, sh->q);
    sh->outbox.resize(shards);
    sh->outSeq.assign(shards, 0);
    shards_.push_back(std::move(sh));
  }
  barrier_ = std::make_unique<Barrier>(shards);
}

void SimKernel::postCross(ShardId src, ShardId dst, Cycle when, EventQueue::Handler fn) {
  Shard& from = *shards_[src];
  from.outbox[dst].push_back(Posted{when, src, from.outSeq[dst]++, std::move(fn)});
}

Cycle SimKernel::now() const {
  Cycle t = 0;
  for (const auto& sh : shards_) t = std::max(t, sh->q.now());
  return t;
}

std::uint64_t SimKernel::executedEvents() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->q.executed();
  return n;
}

std::size_t SimKernel::pendingEvents() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    n += sh->q.pending();
    for (const auto& box : sh->outbox) n += box.size();
  }
  return n;
}

void SimKernel::foldStats() {
  for (ShardId s = 1; s < shardCount(); ++s) {
    shards_[0]->stats.mergeFrom(shards_[s]->stats);
    shards_[s]->stats.reset();
  }
}

bool SimKernel::run(Cycle limit) {
  if (!parallel()) return shards_[0]->q.run(limit);
  return runParallel(limit);
}

bool SimKernel::runWhile(const std::function<bool()>& keepGoing, Cycle limit) {
  if (parallel()) throw std::logic_error("SimKernel: runWhile requires simThreads=1");
  return shards_[0]->q.runWhile(keepGoing, limit);
}

void SimKernel::drainInbox(ShardId s) {
  Shard& me = *shards_[s];
  // Gather this shard's inbox from every source's outbox. Each outbox slot
  // is written only by its source thread during the window and read only
  // here, after the barrier — no locking needed.
  std::vector<Posted> inbox;
  for (auto& src : shards_) {
    auto& box = src->outbox[s];
    if (box.empty()) continue;
    inbox.insert(inbox.end(), std::make_move_iterator(box.begin()),
                 std::make_move_iterator(box.end()));
    box.clear();
  }
  if (inbox.empty()) return;
  // Deterministic total order regardless of thread interleaving: cycle
  // first, then static src-shard priority, then per-link FIFO sequence.
  std::stable_sort(inbox.begin(), inbox.end(), [](const Posted& a, const Posted& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  const Cycle floor = me.q.now();
  for (auto& p : inbox) {
    // Bounded-lag clamp: a message stamped inside the window this shard just
    // executed fires at the shard clock instead (ordering preserved — the
    // sort above is by original stamp, and scheduleAt is FIFO per cycle).
    me.q.scheduleAt(p.when < floor ? floor : p.when, std::move(p.fn));
  }
}

void SimKernel::planNextWindow() {
  if (failed_.load(std::memory_order_relaxed)) {
    done_ = true;
    return;
  }
  Cycle s = kNoCycle;
  for (Cycle c : nextCycle_) s = std::min(s, c);
  if (s == kNoCycle) {
    done_ = true;
    drained_ = true;
    return;
  }
  if (s > limit_) {
    done_ = true;  // hit the cycle limit with work still pending
    return;
  }
  // Window jumping: start the next window at the global minimum pending
  // cycle, so idle stretches cost one barrier round instead of many.
  Cycle end = s > kNoCycle - window_ ? kNoCycle : s + window_;
  if (limit_ != kNoCycle && end > limit_ + 1) end = limit_ + 1;
  windowEnd_ = end;
}

void SimKernel::workerLoop(ShardId s) {
  Shard& me = *shards_[s];
  for (;;) {
    try {
      me.q.runUntil(windowEnd_);
    } catch (...) {
      me.error = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
    // Round 1: everyone's outboxes are final for this window.
    barrier_->arriveAndWait({});
    drainInbox(s);
    nextCycle_[s] = me.q.nextCycle();
    // Round 2: inboxes drained, next cycles published; last arriver plans
    // the next window (or ends the run).
    barrier_->arriveAndWait([this] { planNextWindow(); });
    if (done_) return;
  }
}

bool SimKernel::runParallel(Cycle limit) {
  limit_ = limit;
  done_ = false;
  drained_ = false;
  failed_.store(false, std::memory_order_relaxed);
  for (ShardId s = 0; s < shardCount(); ++s) nextCycle_[s] = shards_[s]->q.nextCycle();
  planNextWindow();
  if (!done_) {
    std::vector<std::thread> workers;
    workers.reserve(shardCount());
    for (ShardId s = 0; s < shardCount(); ++s)
      workers.emplace_back([this, s] { workerLoop(s); });
    for (auto& w : workers) w.join();
  }
  for (auto& sh : shards_) {
    if (sh->error) {
      auto err = std::exchange(sh->error, nullptr);
      std::rethrow_exception(err);
    }
  }
  return drained_;
}

void SimKernel::Barrier::arriveAndWait(const std::function<void()>& completion) {
  const std::uint32_t gen = generation_.load(std::memory_order_acquire);
  if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
    if (completion) completion();
    count_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    generation_.notify_all();
    return;
  }
  // Spin briefly (windows are short), then park on the futex-backed wait.
  for (int i = 0; i < 4096; ++i) {
    if (generation_.load(std::memory_order_acquire) != gen) return;
  }
  std::uint32_t g = generation_.load(std::memory_order_acquire);
  while (g == gen) {
    generation_.wait(gen, std::memory_order_acquire);
    g = generation_.load(std::memory_order_acquire);
  }
}

}  // namespace dresar
