// Deterministic pseudo-random generators used by workload/trace generators.
// We avoid std::uniform_int_distribution in hot paths because its output is
// not specified to be identical across standard library implementations;
// reproducibility of traces matters for the experiment harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace dresar {

/// SplitMix64 — tiny, fast, well-distributed; used to seed and to draw.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0. Lemire multiply-shift with
  /// rejection: `next() % bound` over-weights small residues whenever bound
  /// does not divide 2^64; this draws from the unbiased distribution at the
  /// cost of one widening multiply (rejection is astronomically rare for the
  /// small bounds used here).
  std::uint64_t below(std::uint64_t bound) {
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

/// Zipf(s) sampler over ranks [0, n) with precomputed CDF; rank 0 is the
/// hottest. Used by the synthetic TPC trace generators (Figure 2 shape).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);
  /// Draw a rank in [0, n).
  std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  /// Probability mass of rank r.
  [[nodiscard]] double pmf(std::size_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace dresar
