// Fundamental types shared by every dresar module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace dresar {

/// Simulated clock cycle (200 MHz core/link clock in the reference config).
using Cycle = std::uint64_t;

/// Simulated byte address in the shared physical address space.
using Addr = std::uint64_t;

/// Node index in [0, num_nodes). Each node hosts one processor/cache pair and
/// one memory/directory module (CC-NUMA node).
using NodeId = std::uint32_t;

inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/// Endpoints attached to the interconnect. In the dance-hall BMIN (paper
/// Fig. 3) processors attach below stage 0 and memory modules above the last
/// stage, so a node's processor interface and memory interface are distinct
/// network endpoints.
enum class EndpointKind : std::uint8_t { Proc = 0, Mem = 1 };

struct Endpoint {
  EndpointKind kind = EndpointKind::Proc;
  NodeId node = kInvalidNode;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

inline Endpoint procEp(NodeId n) { return {EndpointKind::Proc, n}; }
inline Endpoint memEp(NodeId n) { return {EndpointKind::Mem, n}; }

std::string toString(Endpoint ep);

/// One bit per node, used for directory sharer sets and invalidation-ack
/// bookkeeping. 128 bits wide so every supported geometry (up to 128 nodes)
/// fits; kept a plain unsigned type so mask algebra stays idiomatic.
using NodeMask = unsigned __int128;

inline constexpr NodeMask nodeBit(NodeId n) { return static_cast<NodeMask>(1) << n; }

/// Lowercase hex rendering ("0x..") — __int128 has no ostream operator.
std::string toHex(NodeMask mask);

/// How a read miss was ultimately serviced. Drives the Figure 1/8/9 metrics.
enum class ReadService : std::uint8_t {
  L1Hit,
  L2Hit,
  WriteBufferHit,
  CleanMemory,     ///< ReadReply from the home memory (block clean).
  CtoCHome,        ///< cache-to-cache transfer forwarded by the home node.
  CtoCSwitchDir,   ///< cache-to-cache transfer initiated by a switch directory.
  SwitchWriteBack, ///< served from write-back data captured at a switch.
  SwitchCache,     ///< clean data served by a switch cache (extension).
};

/// Number of ReadService enumerators; sizes per-service stat handle arrays.
inline constexpr std::size_t kReadServiceCount =
    static_cast<std::size_t>(ReadService::SwitchCache) + 1;

const char* toString(ReadService s);

}  // namespace dresar
