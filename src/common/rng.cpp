#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dresar {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t r) const {
  if (r >= cdf_.size()) return 0.0;
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace dresar
