// The simulation kernel behind the Scheduler facade.
//
// Components never touch an EventQueue directly anymore: they schedule
// through a Scheduler, a thin shard-bound facade whose single-shard path
// compiles down to the same calendar-queue operations as before (the
// `simThreads=1` output is byte-identical to the historical single-queue
// kernel, CI cmp-gated). The facade is what makes intra-run parallelism
// expressible at all — a raw `EventQueue&` cannot say *which* calendar an
// event belongs to, while `Scheduler::post(shard, ...)` can.
//
// Parallel mode (simThreads > 1) shards the kernel Graphite-style
// (sim_thread_manager / per-thread event heaps with a barrier clock-sync
// window): every shard owns one EventQueue and executes a fixed window of
// cycles [W_k, W_k+quantum) independently; cross-shard events accumulate in
// per-(src,dst) outboxes and are drained at the next window barrier in
// deterministic (cycle, src-shard, seq) order — the Li & An-style static
// priority that makes same-cycle cross-shard conflicts resolve identically
// regardless of thread interleaving. A drained event whose stamp already
// passed on the destination shard is clamped forward to the destination's
// clock, so parallel timing may skew by at most one window per crossing
// (bounded-lag approximation); protocol behaviour is unaffected and
// aggregate stats are gated against the sequential run within tolerance.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/stats.h"
#include "common/types.h"

namespace dresar {

/// Index of a kernel shard. Shard 0 always exists and is the "root" shard
/// (single-threaded runs execute entirely on it).
using ShardId = std::uint32_t;

class SimKernel;

/// Shard-bound scheduling facade handed to every component. Same-shard
/// operations forward straight to the shard's calendar queue (identical
/// semantics and ordering to the pre-facade kernel); cross-shard posts go
/// through the kernel's mailboxes.
class Scheduler {
 public:
  Scheduler(SimKernel& kernel, ShardId shard, EventQueue& q)
      : kernel_(kernel), shard_(shard), q_(q) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current cycle of this shard's clock. Shards within one window may skew
  /// by less than the window quantum; shard-local causality is exact.
  [[nodiscard]] Cycle now() const { return q_.now(); }

  [[nodiscard]] ShardId shard() const { return shard_; }
  [[nodiscard]] ShardId shardCount() const;

  /// Schedule `fn` on this shard at absolute cycle `when` (>= now()).
  template <typename F>
  void scheduleAt(Cycle when, F&& fn) {
    q_.scheduleAt(when, std::forward<F>(fn));
  }

  /// Schedule `fn` on this shard `delay` cycles from now.
  template <typename F>
  void scheduleIn(Cycle delay, F&& fn) {
    q_.scheduleAt(q_.now() + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` on shard `dst` at cycle `when`. Same-shard posts are
  /// plain scheduleAt calls (no mailbox, no reordering — this is what keeps
  /// simThreads=1 byte-identical). Cross-shard posts land in the mailbox
  /// drained at the next window barrier, stamped (when, src-shard, seq);
  /// `when` is clamped forward to the destination clock if it has passed.
  template <typename F>
  void post(ShardId dst, Cycle when, F&& fn) {
    if (dst == shard_) {
      q_.scheduleAt(when < q_.now() ? q_.now() : when, std::forward<F>(fn));
      return;
    }
    postCross(dst, when, EventQueue::Handler(std::forward<F>(fn)));
  }

 private:
  void postCross(ShardId dst, Cycle when, EventQueue::Handler fn);

  SimKernel& kernel_;
  ShardId shard_;
  EventQueue& q_;
};

/// The discrete-event kernel: owns one (EventQueue, Scheduler, StatRegistry)
/// triple per shard plus the window-barrier machinery that runs them on
/// worker threads. With one shard it degenerates to the classic
/// single-queue kernel (EventQueue::run on the calling thread).
class SimKernel {
 public:
  /// Default barrier-window quantum, in cycles. Large enough that barrier
  /// overhead amortizes over hundreds of events per shard, small enough
  /// that cross-shard clamping stays well under a network round trip.
  static constexpr Cycle kDefaultWindowCycles = 64;

  explicit SimKernel(ShardId shards, Cycle windowCycles = kDefaultWindowCycles);

  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  [[nodiscard]] ShardId shardCount() const { return static_cast<ShardId>(shards_.size()); }
  [[nodiscard]] bool parallel() const { return shards_.size() > 1; }
  [[nodiscard]] Cycle windowCycles() const { return window_; }

  [[nodiscard]] Scheduler& scheduler(ShardId s) { return *shards_[s]->sched; }
  /// Per-shard stat registry. Components register in their owning shard's
  /// registry; foldStats() merges everything into shard 0 after a run.
  [[nodiscard]] StatRegistry& registry(ShardId s) { return shards_[s]->stats; }
  [[nodiscard]] const StatRegistry& registry(ShardId s) const { return shards_[s]->stats; }

  /// Run until every shard drains or `limit` cycles elapse. Returns true on
  /// a drain (normal completion). Single shard: EventQueue::run on the
  /// calling thread. Multiple shards: one worker thread per shard, window
  /// barriers in between. Exceptions thrown by event handlers are rethrown
  /// on the calling thread (lowest shard id wins when several shards fail).
  bool run(Cycle limit = kNoCycle);

  /// Run while `keepGoing` returns true (checked between events). Only
  /// meaningful on a single-shard kernel; throws std::logic_error otherwise.
  bool runWhile(const std::function<bool()>& keepGoing, Cycle limit = kNoCycle);

  /// Completed-simulation clock: the maximum shard clock.
  [[nodiscard]] Cycle now() const;

  /// Events executed, summed over shards (the events_per_sec numerator —
  /// each shard attributes its own executed count; see RunRecorder).
  [[nodiscard]] std::uint64_t executedEvents() const;
  /// Events executed by one shard's loop.
  [[nodiscard]] std::uint64_t executedEvents(ShardId s) const {
    return shards_[s]->q.executed();
  }

  [[nodiscard]] std::size_t pendingEvents() const;

  /// Fold shards 1..N-1's registries into shard 0's and zero them (handles
  /// stay valid, so a later run keeps accumulating correctly). No-op on a
  /// single-shard kernel.
  void foldStats();

 private:
  friend class Scheduler;

  /// A cross-shard event: fires at `when` on the destination shard, ordered
  /// by (when, src-shard, seq) against every other drained event.
  struct Posted {
    Cycle when = 0;
    ShardId src = 0;
    std::uint64_t seq = 0;
    EventQueue::Handler fn;
  };

  /// One shard: calendar queue + facade + stats + outboxes. Padded so two
  /// shards' hot state never shares a cache line.
  struct alignas(64) Shard {
    EventQueue q;
    std::unique_ptr<Scheduler> sched;
    StatRegistry stats;
    /// outbox[dst]: events posted from this shard to `dst` this window.
    /// Written only by this shard's thread; read by `dst` after a barrier.
    std::vector<std::vector<Posted>> outbox;
    std::vector<std::uint64_t> outSeq;  ///< per-destination FIFO stamp
    std::exception_ptr error;
  };

  /// Sense-reversing spin barrier; the last arriver runs `completion`
  /// before releasing the others, which is how window planning happens
  /// exactly once per round with no extra synchronization.
  class Barrier {
   public:
    explicit Barrier(std::uint32_t n) : n_(n) {}
    void arriveAndWait(const std::function<void()>& completion);

   private:
    std::uint32_t n_;
    std::atomic<std::uint32_t> count_{0};
    std::atomic<std::uint32_t> generation_{0};
  };

  void postCross(ShardId src, ShardId dst, Cycle when, EventQueue::Handler fn);
  bool runParallel(Cycle limit);
  void workerLoop(ShardId s);
  /// Move every event posted *to* shard s into its queue, in deterministic
  /// (cycle, src-shard, seq) order, clamped forward to the shard clock.
  void drainInbox(ShardId s);
  /// Barrier completion: pick the next window from the global minimum
  /// pending cycle, or finish the run.
  void planNextWindow();

  std::vector<std::unique_ptr<Shard>> shards_;
  Cycle window_;

  // Window-loop control. Written only by the barrier completion (or before
  // threads start); read by workers after the barrier releases them, so the
  // barrier's release ordering is the only synchronization needed.
  Cycle windowEnd_ = 0;
  Cycle limit_ = kNoCycle;
  bool done_ = false;
  bool drained_ = false;
  std::vector<Cycle> nextCycle_;  ///< per-shard published next pending cycle
  std::atomic<bool> failed_{false};
  std::unique_ptr<Barrier> barrier_;
};

inline ShardId Scheduler::shardCount() const { return kernel_.shardCount(); }

inline void Scheduler::postCross(ShardId dst, Cycle when, EventQueue::Handler fn) {
  kernel_.postCross(shard_, dst, when, std::move(fn));
}

}  // namespace dresar
