#include "common/event_queue.h"

#include <stdexcept>
#include <utility>

namespace dresar {

void EventQueue::scheduleAt(Cycle when, Handler fn) {
  if (when < now_) throw std::logic_error("EventQueue: scheduling into the past");
  heap_.push(Entry{when, seq_++, std::move(fn)});
}

bool EventQueue::run(Cycle limit) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (top.when > limit) return false;
    now_ = top.when;
    Handler fn = std::move(const_cast<Entry&>(top).fn);
    heap_.pop();
    ++executed_;
    fn();
  }
  return true;
}

bool EventQueue::runWhile(const std::function<bool()>& keepGoing, Cycle limit) {
  while (!heap_.empty()) {
    if (!keepGoing()) return true;
    const Entry& top = heap_.top();
    if (top.when > limit) return false;
    now_ = top.when;
    Handler fn = std::move(const_cast<Entry&>(top).fn);
    heap_.pop();
    ++executed_;
    fn();
  }
  return !keepGoing();
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace dresar
