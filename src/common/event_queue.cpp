#include "common/event_queue.h"

#include <bit>
#include <stdexcept>
#include <utility>

namespace dresar {

Cycle EventQueue::nextEventCycle() const {
  if (nearCount_ > 0) {
    // Circular bitmap scan from the current cycle's ring position; each
    // occupied bucket maps back to the unique pending cycle in the window.
    const auto start = static_cast<std::size_t>(now_ & kMask);
    for (std::size_t i = 0; i <= kWords; ++i) {
      const std::size_t w = ((start >> 6) + i) & (kWords - 1);
      std::uint64_t word = occupied_[w];
      if (i == 0) word &= ~0ull << (start & 63);
      if (i == kWords) word &= (start & 63) != 0 ? (1ull << (start & 63)) - 1 : 0;
      if (word == 0) continue;
      const std::size_t pos = (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
      return now_ + static_cast<Cycle>((pos - start) & kMask);
    }
  }
  if (!far_.empty()) return far_.begin()->first;
  return kNoCycle;
}

void EventQueue::advanceTo(Cycle when) {
  now_ = when;
  const Cycle newEnd = when + kBuckets;
  if (newEnd <= windowEnd_) return;
  // Overflow cycles entering the window move to their (empty) buckets before
  // any near append for those cycles can happen, preserving FIFO order.
  while (!far_.empty() && far_.begin()->first < newEnd) {
    auto it = far_.begin();
    Bucket& b = bucketOf(it->first);
    b.items = std::move(it->second);
    b.head = 0;
    markOccupied(it->first);
    nearCount_ += b.items.size();
    far_.erase(it);
  }
  windowEnd_ = newEnd;
}

void EventQueue::dispatchOne(Bucket& b) {
  Handler fn = std::move(b.items[b.head]);
  ++b.head;
  --nearCount_;
  --pending_;
  ++executed_;
  fn();
}

bool EventQueue::run(Cycle limit) {
  for (;;) {
    const Cycle t = nextEventCycle();
    if (t == kNoCycle) return true;
    if (t > limit) return false;
    advanceTo(t);
    Bucket& b = bucketOf(t);
    // Handlers may append same-cycle events; the index-based head chases them.
    while (!b.drained()) dispatchOne(b);
    b.items.clear();
    b.head = 0;
    markDrained(t);
  }
}

void EventQueue::runUntil(Cycle end) {
  for (;;) {
    const Cycle t = nextEventCycle();
    if (t == kNoCycle || t >= end) return;
    advanceTo(t);
    Bucket& b = bucketOf(t);
    while (!b.drained()) dispatchOne(b);
    b.items.clear();
    b.head = 0;
    markDrained(t);
  }
}

bool EventQueue::runWhile(const std::function<bool()>& keepGoing, Cycle limit) {
  for (;;) {
    if (pending_ == 0) return !keepGoing();
    if (!keepGoing()) return true;
    const Cycle t = nextEventCycle();
    if (t > limit) return false;
    advanceTo(t);
    Bucket& b = bucketOf(t);
    dispatchOne(b);
    if (b.drained()) {
      b.items.clear();
      b.head = 0;
      markDrained(t);
    }
  }
}

void EventQueue::clear() {
  for (auto& b : ring_) {
    b.items.clear();
    b.head = 0;
  }
  occupied_.fill(0);
  far_.clear();
  nearCount_ = 0;
  pending_ = 0;
}

}  // namespace dresar
