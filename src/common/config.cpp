#include "common/config.h"

#include <bit>
#include <stdexcept>

namespace dresar {

namespace {
bool isPow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

std::uint32_t SystemConfig::lineOffsetBits() const {
  return static_cast<std::uint32_t>(std::countr_zero(lineBytes));
}

void SystemConfig::validate() const {
  if (!isPow2(numNodes)) throw std::invalid_argument("numNodes must be a power of two");
  if (!isPow2(lineBytes)) throw std::invalid_argument("lineBytes must be a power of two");
  if (!isPow2(pageBytes) || pageBytes < lineBytes)
    throw std::invalid_argument("pageBytes must be a power of two >= lineBytes");
  if (l1Bytes % (lineBytes * l1Assoc) != 0)
    throw std::invalid_argument("L1 size not divisible by assoc*line");
  if (l2Bytes % (lineBytes * l2Assoc) != 0)
    throw std::invalid_argument("L2 size not divisible by assoc*line");
  if (issueWidth == 0) throw std::invalid_argument("issueWidth must be >= 1");
  if (net.switchRadix < 2 || net.switchRadix % 2 != 0)
    throw std::invalid_argument("switchRadix must be an even number >= 2");
  const std::uint32_t half = net.switchRadix / 2;
  if (numNodes % half != 0)
    throw std::invalid_argument("numNodes must be a multiple of switchRadix/2");
  if (switchDir.enabled()) {
    if (switchDir.associativity == 0 || switchDir.entries % switchDir.associativity != 0)
      throw std::invalid_argument("switch directory entries must divide by associativity");
  }
  if (switchCache.enabled()) {
    if (switchCache.associativity == 0 ||
        switchCache.entries % switchCache.associativity != 0)
      throw std::invalid_argument("switch cache entries must divide by associativity");
  }
  if (writeBufferEntries == 0) throw std::invalid_argument("writeBufferEntries must be >= 1");
  if (mshrEntries < 2) throw std::invalid_argument("mshrEntries must be >= 2");
  if (retryBackoffCycles == 0) throw std::invalid_argument("retryBackoffCycles must be >= 1");
  if (switchDir.retryBackoffMaxCycles < retryBackoffCycles)
    throw std::invalid_argument("retryBackoffMaxCycles must be >= retryBackoffCycles");
  if (txnTrace.enabled && txnTrace.maxEventsPerTxn < 2)
    throw std::invalid_argument("txnTrace.maxEventsPerTxn must be >= 2");
}

void SystemConfig::dump(std::ostream& os) const {
  os << "Multiprocessor System - " << numNodes << " processors\n"
     << "  Processor   speed 200MHz, issue " << issueWidth << "-way\n"
     << "  L1 Cache    " << l1Bytes / 1024 << "KB, line " << lineBytes << "B, set size " << l1Assoc
     << ", access " << l1AccessCycles << "\n"
     << "  L2 Cache    " << l2Bytes / 1024 << "KB, line " << lineBytes << "B, set size " << l2Assoc
     << ", access " << l2AccessCycles << "\n"
     << "  Memory      access " << memAccessCycles << ", interleaving " << memInterleave
     << ", dir lookup " << dirLookupCycles << ", dir occupancy " << dirOccupancyCycles << "\n"
     << "  Network     switch " << net.switchRadix << "x" << net.switchRadix << ", core delay "
     << net.coreDelay << ", link 16 bits @200MHz, flit " << net.flitBytes << "B ("
     << net.linkCyclesPerFlit << " link cycles), VCs " << net.virtualChannels << ", buf "
     << net.bufferFlits << " flits\n"
     << "  SwitchDir   ";
  if (switchDir.enabled()) {
    os << switchDir.entries << " entries, " << switchDir.associativity << "-way, "
       << switchDir.snoopPortsPerCycle << " snoop ports, pending buffer "
       << (switchDir.usePendingBuffer ? std::to_string(switchDir.pendingBufferEntries) : "off")
       << "\n";
  } else {
    os << "disabled (Base system)\n";
  }
}

void TraceConfig::validate() const {
  if (!isPow2(numNodes)) throw std::invalid_argument("numNodes must be a power of two");
  if (!isPow2(lineBytes)) throw std::invalid_argument("lineBytes must be a power of two");
  if (cacheBytes % (lineBytes * cacheAssoc) != 0)
    throw std::invalid_argument("cache size not divisible by assoc*line");
  if (!isPow2(pageBytes) || pageBytes < lineBytes)
    throw std::invalid_argument("pageBytes must be a power of two >= lineBytes");
  if (switchDir.enabled()) {
    if (switchDir.associativity == 0 || switchDir.entries % switchDir.associativity != 0)
      throw std::invalid_argument("switch directory entries must divide by associativity");
  }
}

void TraceConfig::dump(std::ostream& os) const {
  os << "Trace-driven simulation - " << numNodes << " processors\n"
     << "  Cache            " << cacheBytes / (1024 * 1024) << "MB, " << cacheAssoc << "-way, line "
     << lineBytes << "B, access " << cacheAccess << " cycles\n"
     << "  Local memory     " << localMemory << " cycles\n"
     << "  CtoC local home  " << ctocLocalHome << " cycles\n"
     << "  Remote memory    " << remoteMemory << " cycles\n"
     << "  CtoC remote home " << ctocRemoteHome << " cycles\n"
     << "  SwitchDir hit    " << switchDirHit << " cycles\n"
     << "  SwitchDir        ";
  if (switchDir.enabled()) {
    os << switchDir.entries << " entries, " << switchDir.associativity << "-way\n";
  } else {
    os << "disabled (Base system)\n";
  }
}

}  // namespace dresar
