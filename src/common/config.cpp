#include "common/config.h"

#include <bit>
#include <stdexcept>
#include <thread>

#include "interconnect/routing.h"
#include "switchdir/sd_policy.h"

namespace dresar {

namespace {
bool isPow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Validate the two policy names of a switch-dir/switch-cache config,
/// appending one error per unknown name (`what` = "switch directory" /
/// "switch cache"). Both names are checked so a doubly-misconfigured sweep
/// surfaces every violation in one round trip.
void appendPolicyErrors(std::vector<std::string>& errs, const std::string& what,
                        const std::string& replacement, const std::string& arbitration) {
  if (!isSdReplacementPolicy(replacement)) {
    errs.push_back(what + " replacement policy '" + replacement +
                   "' unknown (valid: " + sdReplacementPolicyList() + ")");
  }
  if (!isSdArbitrationPolicy(arbitration)) {
    errs.push_back(what + " arbitration policy '" + arbitration +
                   "' unknown (valid: " + sdArbitrationPolicyList() + ")");
  }
}

/// Power-of-two node counts in [4, kMaxNodes] that tile a BMIN of this
/// radix, rendered for validation messages.
std::string supportedNodeCounts(std::uint32_t switchRadix) {
  std::string out;
  for (std::uint32_t n = 4; n <= kMaxNodes; n *= 2) {
    if (butterflyStages(n, switchRadix) == 0) continue;
    if (!out.empty()) out += ", ";
    out += std::to_string(n);
  }
  return out.empty() ? "none" : out;
}
}  // namespace

std::uint32_t butterflyStages(std::uint32_t numNodes, std::uint32_t switchRadix) {
  const std::uint32_t half = switchRadix / 2;
  if (switchRadix < 2 || switchRadix % 2 != 0 || half == 0) return 0;
  if (numNodes == 0 || numNodes % half != 0) return 0;
  const std::uint32_t perStage = numNodes / half;
  if (half == 1) return perStage == 1 ? 2 : 0;
  std::uint32_t k = 2;
  std::uint64_t reach = half;  // half^(k-1)
  while (reach < perStage) {
    reach *= half;
    ++k;
  }
  // The top digit has base m = perStage / half^(k-2); it must divide evenly.
  if (perStage % (reach / half) != 0) return 0;
  return k;
}

std::vector<std::string> NetworkConfig::validationErrors() const {
  std::vector<std::string> errs;
  const auto require = [&errs](bool ok, const char* why) {
    if (!ok) errs.emplace_back(why);
  };
  require(virtualChannels >= 1, "virtualChannels must be >= 1");
  // FlitNetwork::inKey packs the VC into 8 bits; a larger count would
  // silently alias input buffers.
  require(virtualChannels <= 256,
          "virtualChannels must be <= 256 (flit model packs the VC into 8 bits)");
  require(bufferFlits >= 1, "bufferFlits must be >= 1");
  require(flitBytes >= 1, "flitBytes must be >= 1");
  require(linkCyclesPerFlit >= 1, "linkCyclesPerFlit must be >= 1");
  if (!isRoutingPolicy(routing)) {
    errs.push_back("routing policy '" + routing +
                   "' unknown (valid: " + routingPolicyList() + ")");
  }
  return errs;
}

std::uint32_t SystemConfig::lineOffsetBits() const {
  return static_cast<std::uint32_t>(std::countr_zero(lineBytes));
}

std::vector<std::string> SystemConfig::validationErrors() const {
  std::vector<std::string> errs;
  const auto require = [&errs](bool ok, const char* why) {
    if (!ok) errs.emplace_back(why);
  };

  require(isPow2(numNodes), "numNodes must be a power of two");
  require(isPow2(lineBytes), "lineBytes must be a power of two");
  require(isPow2(pageBytes) && pageBytes >= lineBytes,
          "pageBytes must be a power of two >= lineBytes");
  require(l1Assoc >= 1, "l1Assoc must be >= 1");
  require(l2Assoc >= 1, "l2Assoc must be >= 1");
  if (l1Assoc >= 1 && lineBytes != 0) {
    // A cache must hold at least one full set; divisibility alone lets
    // l1Bytes == 0 slip through (0 % n == 0).
    require(l1Bytes >= lineBytes * l1Assoc, "L1 smaller than one set (lineBytes * l1Assoc)");
    require(l1Bytes % (lineBytes * l1Assoc) == 0, "L1 size not divisible by assoc*line");
  }
  if (l2Assoc >= 1 && lineBytes != 0) {
    require(l2Bytes >= lineBytes * l2Assoc, "L2 smaller than one set (lineBytes * l2Assoc)");
    require(l2Bytes % (lineBytes * l2Assoc) == 0, "L2 size not divisible by assoc*line");
  }
  require(issueWidth >= 1, "issueWidth must be >= 1");
  for (std::string& e : net.validationErrors()) errs.push_back(std::move(e));
  require(net.switchRadix >= 2 && net.switchRadix % 2 == 0,
          "switchRadix must be an even number >= 2");
  require(numNodes <= kMaxNodes,
          "numNodes exceeds 128 (NodeMask sharer bitmaps cap the system size)");
  if (net.switchRadix >= 2 && net.switchRadix % 2 == 0) {
    const std::uint32_t half = net.switchRadix / 2;
    if (numNodes % half != 0) {
      errs.emplace_back("numNodes must be a multiple of switchRadix/2");
    } else if (net.stagesFor(numNodes) == 0) {
      errs.emplace_back("numNodes=" + std::to_string(numNodes) + " does not tile a radix-" +
                        std::to_string(net.switchRadix) +
                        " BMIN; supported power-of-two node counts for this radix: " +
                        supportedNodeCounts(net.switchRadix));
    }
  }
  if (switchDir.enabled()) {
    require(switchDir.associativity != 0 && switchDir.entries % switchDir.associativity == 0,
            "switch directory entries must divide by associativity");
    appendPolicyErrors(errs, "switch directory", switchDir.replacementPolicy,
                       switchDir.arbitrationPolicy);
  }
  if (switchCache.enabled()) {
    require(switchCache.associativity != 0 &&
                switchCache.entries % switchCache.associativity == 0,
            "switch cache entries must divide by associativity");
    appendPolicyErrors(errs, "switch cache", switchCache.replacementPolicy,
                       switchCache.arbitrationPolicy);
  }
  require(writeBufferEntries >= 1, "writeBufferEntries must be >= 1");
  require(mshrEntries >= 2, "mshrEntries must be >= 2");
  require(retryBackoffCycles >= 1, "retryBackoffCycles must be >= 1");
  require(switchDir.retryBackoffMaxCycles >= retryBackoffCycles,
          "retryBackoffMaxCycles must be >= retryBackoffCycles");
  if (txnTrace.enabled) {
    require(txnTrace.maxEventsPerTxn >= 2, "txnTrace.maxEventsPerTxn must be >= 2");
  }
  require(simThreads >= 1, "simThreads must be >= 1");
  require(simWindowCycles >= 1, "simWindowCycles must be >= 1");
  if (const unsigned hw = std::thread::hardware_concurrency();
      hw > 0 && !simAllowOversubscription) {
    require(simThreads <= hw,
            "simThreads exceeds hardware_concurrency (oversubscribed sim workers only add "
            "barrier contention)");
  }
  if (simThreads > 1) {
    // These subsystems keep process-global state (a global per-cycle tick, a
    // shared trace ring, shared RNG streams) that the sharded kernel cannot
    // partition; collect the conflicts instead of failing deep in a run.
    require(!net.flitLevel, "flit-level network model requires simThreads=1");
    require(net.routing == "lca",
            "non-default routing policy requires simThreads=1 (adaptive costs read "
            "cross-shard link state)");
    require(!txnTrace.enabled, "transaction tracing requires simThreads=1");
    require(!fault.enabled(), "fault injection requires simThreads=1");
  }
  fault.appendValidationErrors(errs);
  if (fault.linkStall.active() && net.switchRadix >= 2 && net.switchRadix % 2 == 0) {
    const std::uint32_t stages = net.stagesFor(numNodes);
    require(stages == 0 || fault.linkStall.stage < stages,
            "fault.linkStall stage out of range for the derived BMIN depth");
    require(fault.linkStall.index < numNodes / (net.switchRadix / 2),
            "fault.linkStall port index exceeds switches per stage");
  }
  return errs;
}

void SystemConfig::validate() const {
  const std::vector<std::string> errs = validationErrors();
  if (errs.empty()) return;
  std::string msg =
      "invalid SystemConfig (" + std::to_string(errs.size()) + " violation(s)):";
  for (const std::string& e : errs) msg += "\n  - " + e;
  throw std::invalid_argument(msg);
}

void SystemConfig::dump(std::ostream& os) const {
  os << "Multiprocessor System - " << numNodes << " processors\n"
     << "  Processor   speed 200MHz, issue " << issueWidth << "-way\n"
     << "  L1 Cache    " << l1Bytes / 1024 << "KB, line " << lineBytes << "B, set size " << l1Assoc
     << ", access " << l1AccessCycles << "\n"
     << "  L2 Cache    " << l2Bytes / 1024 << "KB, line " << lineBytes << "B, set size " << l2Assoc
     << ", access " << l2AccessCycles << "\n"
     << "  Memory      access " << memAccessCycles << ", interleaving " << memInterleave
     << ", dir lookup " << dirLookupCycles << ", dir occupancy " << dirOccupancyCycles << "\n"
     << "  Network     switch " << net.switchRadix << "x" << net.switchRadix << ", core delay "
     << net.coreDelay << ", link 16 bits @200MHz, flit " << net.flitBytes << "B ("
     << net.linkCyclesPerFlit << " link cycles), VCs " << net.virtualChannels << ", buf "
     << net.bufferFlits << " flits";
  // Non-default routing is called out; the default line stays byte-identical
  // to the historical dump.
  if (net.routing != "lca") os << ", routing " << net.routing;
  os << "\n"
     << "  SwitchDir   ";
  if (switchDir.enabled()) {
    os << switchDir.entries << " entries, " << switchDir.associativity << "-way, "
       << switchDir.snoopPortsPerCycle << " snoop ports, pending buffer "
       << (switchDir.usePendingBuffer ? std::to_string(switchDir.pendingBufferEntries) : "off");
    // Non-default policies are called out; the default line stays
    // byte-identical to the historical dump.
    if (switchDir.replacementPolicy != "lru" || switchDir.arbitrationPolicy != "fifo") {
      os << ", policy " << switchDir.replacementPolicy << "/" << switchDir.arbitrationPolicy;
    }
    os << "\n";
  } else {
    os << "disabled (Base system)\n";
  }
}

std::vector<std::string> TraceConfig::validationErrors() const {
  std::vector<std::string> errs;
  const auto require = [&errs](bool ok, const char* why) {
    if (!ok) errs.emplace_back(why);
  };

  require(isPow2(numNodes), "numNodes must be a power of two");
  require(numNodes <= kMaxNodes,
          "numNodes exceeds 128 (NodeMask sharer bitmaps cap the system size)");
  // The trace simulator models the reference radix-8 BMIN.
  if (isPow2(numNodes) && butterflyStages(numNodes, 8) == 0) {
    errs.emplace_back("numNodes=" + std::to_string(numNodes) +
                      " does not tile the radix-8 BMIN; supported power-of-two node counts: " +
                      supportedNodeCounts(8));
  }
  require(isPow2(lineBytes), "lineBytes must be a power of two");
  require(cacheAssoc >= 1, "cacheAssoc must be >= 1");
  if (cacheAssoc >= 1 && lineBytes != 0) {
    require(cacheBytes >= lineBytes * cacheAssoc,
            "cache smaller than one set (lineBytes * cacheAssoc)");
    require(cacheBytes % (lineBytes * cacheAssoc) == 0,
            "cache size not divisible by assoc*line");
  }
  require(isPow2(pageBytes) && pageBytes >= lineBytes,
          "pageBytes must be a power of two >= lineBytes");
  if (switchDir.enabled()) {
    require(switchDir.associativity != 0 && switchDir.entries % switchDir.associativity == 0,
            "switch directory entries must divide by associativity");
    appendPolicyErrors(errs, "switch directory", switchDir.replacementPolicy,
                       switchDir.arbitrationPolicy);
  }
  return errs;
}

void TraceConfig::validate() const {
  const std::vector<std::string> errs = validationErrors();
  if (errs.empty()) return;
  std::string msg =
      "invalid TraceConfig (" + std::to_string(errs.size()) + " violation(s)):";
  for (const std::string& e : errs) msg += "\n  - " + e;
  throw std::invalid_argument(msg);
}

void TraceConfig::dump(std::ostream& os) const {
  os << "Trace-driven simulation - " << numNodes << " processors\n"
     << "  Cache            " << cacheBytes / (1024 * 1024) << "MB, " << cacheAssoc << "-way, line "
     << lineBytes << "B, access " << cacheAccess << " cycles\n"
     << "  Local memory     " << localMemory << " cycles\n"
     << "  CtoC local home  " << ctocLocalHome << " cycles\n"
     << "  Remote memory    " << remoteMemory << " cycles\n"
     << "  CtoC remote home " << ctocRemoteHome << " cycles\n"
     << "  SwitchDir hit    " << switchDirHit << " cycles\n"
     << "  SwitchDir        ";
  if (switchDir.enabled()) {
    os << switchDir.entries << " entries, " << switchDir.associativity << "-way\n";
  } else {
    os << "disabled (Base system)\n";
  }
}

}  // namespace dresar
