#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <stdexcept>

namespace dresar {

void Histogram::add(double v) {
  // Clamp negatives into the first bucket *before* the size_t cast: a
  // negative quotient cast to size_t wraps to a huge index, which the
  // overflow clamp would then silently misfile into the overflow bucket.
  if (v < 0.0) {
    ++underflows_;
    ++counts_[0];
    ++total_;
    return;
  }
  std::size_t idx = 0;
  if (logSpaced_) {
    // Bucket 0 is [0, firstBound); bucket i>0 is [firstBound*2^(i-1),
    // firstBound*2^i). ilogb gives the binade in one instruction-ish step.
    if (width_ > 0 && v >= width_) {
      idx = static_cast<std::size_t>(std::ilogb(v / width_)) + 1;
    }
  } else if (width_ > 0) {
    idx = static_cast<std::size_t>(v / width_);
  }
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
  ++total_;
}

void Histogram::merge(const Histogram& o) {
  if (logSpaced_ != o.logSpaced_ || width_ != o.width_ || counts_.size() != o.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
  underflows_ += o.underflows_;
}

std::size_t Histogram::percentileBucket(double fraction) const {
  if (total_ == 0) return std::size_t(-1);
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(std::ceil(fraction * static_cast<double>(total_)));
  if (target == 0) return std::size_t(-1);  // fraction == 0: nothing falls below
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    if (running >= target) return i;
  }
  return counts_.size() - 1;  // unreachable: running == total_ >= target
}

double Histogram::percentile(double fraction) const {
  const std::size_t idx = percentileBucket(fraction);
  if (idx == std::size_t(-1)) return 0.0;
  if (idx == counts_.size() - 1) return overflowBound();  // clamped, not exact
  return bucketBound(idx);
}

bool Histogram::percentileOverflowed(double fraction) const {
  return percentileBucket(fraction) == counts_.size() - 1;
}

std::uint64_t StatRegistry::counterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Sampler* StatRegistry::findSampler(const std::string& name) const {
  auto it = samplers_.find(name);
  return it == samplers_.end() ? nullptr : &it->second;
}

std::uint64_t StatRegistry::sumByPrefix(const std::string& prefix) const {
  std::uint64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += it->second;
  }
  return sum;
}

void StatRegistry::dump(std::ostream& os) const {
  for (const auto& [name, value] : counters_) {
    os << std::left << std::setw(48) << name << ' ' << value << '\n';
  }
  for (const auto& [name, s] : samplers_) {
    os << std::left << std::setw(48) << name << " count=" << s.count() << " mean=" << std::fixed
       << std::setprecision(2) << s.mean() << " min=" << s.min() << " max=" << s.max() << '\n';
  }
}

void StatRegistry::reset() {
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, s] : samplers_) s.reset();
}

}  // namespace dresar
