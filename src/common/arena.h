// Slab/arena allocation for hot-path simulation objects (in-flight message
// state, MSHR map nodes). General-purpose new/delete on these paths costs a
// malloc round trip per coherence event; the Arena instead carves fixed
// 64 KiB slabs into size-class chunks and recycles freed chunks on per-class
// free lists, so steady-state allocation is a pointer pop. Each simulation
// component owns its own Arena (no sharing, no locks) and everything is
// returned to the OS when the Arena dies — matching the one-Simulation-per-
// job isolation the sweep harness relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace dresar {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (void* s : slabs_) ::operator delete(s, std::align_val_t(kChunkAlign));
  }

  /// Allocate `bytes` with alignment <= kChunkAlign. Small requests come from
  /// a recycled size-class free list or a fresh slab; requests beyond the
  /// largest class (bucket arrays of a grown hash map, etc.) pass through to
  /// operator new.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes > kMaxSmall || align > kChunkAlign) {
      return ::operator new(bytes, std::align_val_t(align > kChunkAlign ? align : kChunkAlign));
    }
    const std::size_t cls = classOf(bytes);
    if (FreeNode* n = free_[cls]; n != nullptr) {
      free_[cls] = n->next;
      return n;
    }
    return carve(cls);
  }

  /// Return a block obtained from allocate() with the same size/alignment.
  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    if (p == nullptr) return;
    if (bytes > kMaxSmall || align > kChunkAlign) {
      ::operator delete(p, std::align_val_t(align > kChunkAlign ? align : kChunkAlign));
      return;
    }
    const std::size_t cls = classOf(bytes);
    auto* n = static_cast<FreeNode*>(p);
    n->next = free_[cls];
    free_[cls] = n;
  }

  /// Slabs held (diagnostics; steady-state workloads plateau quickly).
  [[nodiscard]] std::size_t slabCount() const noexcept { return slabs_.size(); }

  static constexpr std::size_t kChunkAlign = 16;  ///< covers __int128 payloads
  static constexpr std::size_t kSlabBytes = 64 * 1024;
  static constexpr std::size_t kMaxSmall = 1024;  ///< largest recycled class

 private:
  struct FreeNode {
    FreeNode* next;
  };

  /// Size classes: multiples of 16 bytes up to kMaxSmall. classOf(0..16)=0.
  [[nodiscard]] static constexpr std::size_t classOf(std::size_t bytes) noexcept {
    return (bytes + kChunkAlign - 1) / kChunkAlign - (bytes == 0 ? 0 : 1);
  }
  static constexpr std::size_t kClasses = kMaxSmall / kChunkAlign;

  void* carve(std::size_t cls) {
    const std::size_t chunk = (cls + 1) * kChunkAlign;
    if (bumpFree_ < chunk) {
      // The slab remainder (< one chunk of this class, always a multiple of
      // kChunkAlign) is donated to the class it exactly fills.
      if (bumpFree_ >= kChunkAlign) deallocate(bump_, bumpFree_, 1);
      bump_ = static_cast<std::byte*>(::operator new(kSlabBytes, std::align_val_t(kChunkAlign)));
      slabs_.push_back(bump_);
      bumpFree_ = kSlabBytes;
    }
    void* p = bump_;
    bump_ += chunk;
    bumpFree_ -= chunk;
    return p;
  }

  FreeNode* free_[kClasses] = {};
  std::byte* bump_ = nullptr;
  std::size_t bumpFree_ = 0;
  std::vector<void*> slabs_;
};

/// Standard-allocator shim over an Arena, for node-based containers on hot
/// paths (the MSHR map) and allocate_shared'd message state. Copies share the
/// same Arena; the Arena must outlive every container/object using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  /// Node-based containers may not swap/propagate their allocator; every
  /// ArenaAllocator in one container must point at the same Arena, which the
  /// owning component guarantees by construction.
  using propagate_on_container_move_assignment = std::false_type;
  using is_always_equal = std::false_type;

  explicit ArenaAllocator(Arena& a) noexcept : arena_(&a) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_(o.arena()) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T), alignof(T));
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator<U>& b) noexcept {
    return a.arena_ == b.arena();
  }

 private:
  Arena* arena_;
};

/// ArenaAllocator variant that co-owns its Arena. For objects whose lifetime
/// can exceed their allocating component's (e.g. in-flight message state
/// captured in event-queue closures that drain after the network dies): the
/// last allocate_shared'd object keeps the Arena alive until it is freed.
template <typename T>
class SharedArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::false_type;
  using is_always_equal = std::false_type;

  explicit SharedArenaAllocator(std::shared_ptr<Arena> a) noexcept : arena_(std::move(a)) {}
  template <typename U>
  SharedArenaAllocator(const SharedArenaAllocator<U>& o) noexcept : arena_(o.arena()) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T), alignof(T));
  }

  [[nodiscard]] const std::shared_ptr<Arena>& arena() const noexcept { return arena_; }

  template <typename U>
  friend bool operator==(const SharedArenaAllocator& a,
                         const SharedArenaAllocator<U>& b) noexcept {
    return a.arena_ == b.arena();
  }

 private:
  std::shared_ptr<Arena> arena_;
};

}  // namespace dresar
