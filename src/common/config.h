// Simulation parameter sets. SystemConfig mirrors the paper's Table 2
// (execution-driven runs); TraceConfig mirrors Table 3 (trace-driven runs).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/fault_plan.h"

namespace dresar {

/// Switch-directory (DRESAR) parameters. `entries == 0` disables the switch
/// directories entirely, yielding the paper's "Base" system.
struct SwitchDirConfig {
  std::uint32_t entries = 1024;   ///< total entries per switch (256..2048 in the paper)
  std::uint32_t associativity = 4;
  std::uint32_t snoopPortsPerCycle = 2;  ///< 2-way multiported SRAM (paper 4.2)
  std::uint32_t pendingBufferEntries = 16;  ///< transient-state buffer (paper 4.3)
  bool usePendingBuffer = true;
  /// Optional extension (ablation): invalidate matching entries when
  /// Invalidation messages traverse a switch, reducing stale-entry retries.
  bool snoopInvalidations = false;
  /// Cap on the exponential retry backoff a NAKed requester applies. The
  /// first re-issue waits SystemConfig::retryBackoffCycles; each further
  /// retry of the same transaction doubles the wait up to this bound.
  std::uint32_t retryBackoffMaxCycles = 768;
  /// Victim selection for the per-switch tag arrays: "lru" (the paper's
  /// fixed default), "fifo", or "random" (see switchdir/sd_policy.h).
  std::string replacementPolicy = "lru";
  /// Directory port arbitration: "fifo" (arrival order, the paper's model)
  /// or "phase" (phase-priority per Li & An).
  std::string arbitrationPolicy = "fifo";

  [[nodiscard]] bool enabled() const { return entries > 0; }
};

/// Switch *cache* parameters (extension, see paper conclusion + HPCA-5 [5]):
/// data caching of clean blocks at switches, combinable with the switch
/// directory. `entries == 0` (default) disables it.
struct SwitchCacheConfig {
  std::uint32_t entries = 0;
  std::uint32_t associativity = 4;
  std::uint32_t snoopPortsPerCycle = 2;
  /// Same policy seam as SwitchDirConfig (the switch cache reuses the switch
  /// tag array and port arbitration).
  std::string replacementPolicy = "lru";
  std::string arbitrationPolicy = "fifo";

  [[nodiscard]] bool enabled() const { return entries > 0; }
};

/// Largest supported system. NodeMask (sharer/ack bitmaps) is 128 bits wide,
/// so directories can track a full map for up to 128 nodes.
inline constexpr std::uint32_t kMaxNodes = 128;

/// Stage count k of the bidirectional MIN that connects `numNodes` endpoints
/// with radix-`switchRadix` switches: the smallest k >= 2 whose (radix/2)-ary
/// digit ladder covers numNodes/(radix/2) switches per stage. Returns 0 when
/// the combination does not tile (supported sizes are m*(radix/2)^(k-1) for
/// 1 <= m <= radix/2). The paper's reference machine (16 nodes, radix 8)
/// derives k = 2.
[[nodiscard]] std::uint32_t butterflyStages(std::uint32_t numNodes,
                                            std::uint32_t switchRadix);

/// Interconnect parameters (paper Table 2, "Network" column). The reference
/// system is a 2-stage bidirectional MIN of 8x8 switches for 16 nodes;
/// larger node counts derive deeper networks (see stagesFor).
struct NetworkConfig {
  std::uint32_t switchRadix = 8;      ///< ports per switch (4 down + 4 up)
  std::uint32_t coreDelay = 4;        ///< cycles through the crossbar core
  std::uint32_t linkCyclesPerFlit = 4;///< 8-byte flit over 16-bit links
  std::uint32_t flitBytes = 8;
  std::uint32_t virtualChannels = 2;
  std::uint32_t bufferFlits = 4;      ///< input FIFO depth per VC (ablation knob)
  std::uint32_t headerBytes = 8;      ///< one header flit per message
  /// Select the flit-level wormhole model (paper 4.1 fidelity) instead of
  /// the default message-level timing. Slower; identical protocol behaviour.
  bool flitLevel = false;
  /// Turnaround routing policy for paths with a free digit (proc->proc c2c
  /// data, switch-generated traffic): "lca" (the paper's deterministic
  /// baseline) or "adaptive" (credit/occupancy-guided, deterministically
  /// seeded). See interconnect/routing.h.
  std::string routing = "lca";

  /// Derived BMIN depth for a given node count (0 = does not tile).
  [[nodiscard]] std::uint32_t stagesFor(std::uint32_t numNodes) const {
    return butterflyStages(numNodes, switchRadix);
  }

  /// Network-local invariant violations (routing policy name, VC count vs
  /// the flit model's 8-bit VC field, ...). SystemConfig::validationErrors()
  /// folds these in; empty = valid.
  [[nodiscard]] std::vector<std::string> validationErrors() const;
};

/// Transaction tracing & latency attribution. Disabled by default: no
/// component is handed a tracer, so instrumented paths cost one untaken
/// branch and results are bit-identical to an untraced build.
struct TxnTraceConfig {
  bool enabled = false;
  std::uint64_t ringEvents = 1ull << 22;  ///< completed-txn ring capacity, in events
  std::uint32_t maxEventsPerTxn = 512;    ///< per-transaction event cap
};

/// Processor + cache + memory parameters (paper Table 2).
struct SystemConfig {
  /// Named preset for the paper's Table 2 reference machine. The defaults
  /// below ARE Table 2, but benches/examples go through this constructor so
  /// a future parameter change is one edit and call sites say what they mean.
  [[nodiscard]] static SystemConfig paperTable2() { return SystemConfig{}; }

  std::uint32_t numNodes = 16;
  // Processor.
  std::uint32_t issueWidth = 4;       ///< instructions per cycle (in-order)
  // L1 cache.
  std::uint32_t l1Bytes = 16 * 1024;
  std::uint32_t l1Assoc = 2;
  std::uint32_t l1AccessCycles = 1;
  // L2 cache.
  std::uint32_t l2Bytes = 128 * 1024;
  std::uint32_t l2Assoc = 4;
  std::uint32_t l2AccessCycles = 8;
  std::uint32_t lineBytes = 32;
  // Memory.
  std::uint32_t memAccessCycles = 40;
  std::uint32_t memInterleave = 4;    ///< banks per memory module
  // Directory/coherence controller.
  std::uint32_t dirLookupCycles = 40;   ///< slow DRAM directory access
  std::uint32_t dirOccupancyCycles = 12;///< controller busy time per request
  std::uint32_t cacheCtrlOccupancyCycles = 4;
  std::uint32_t writeBufferEntries = 8;
  std::uint32_t mshrEntries = 16;
  std::uint32_t retryBackoffCycles = 24;  ///< re-issue delay after a Retry/NAK
  std::uint32_t maxRetries = 10000;       ///< watchdog against livelock
  // Synchronization.
  std::uint32_t barrierLatencyCycles = 96;  ///< hardware barrier cost
  // Address space.
  std::uint32_t pageBytes = 4096;     ///< round-robin page interleaving grain
  // Simulation kernel.
  /// Worker threads the event kernel shards nodes across. 1 (default) is the
  /// classic single-queue kernel, byte-identical to every previous release;
  /// >1 trades exact cross-shard timing for wall-clock speed (aggregate
  /// stats gated within tolerance). Capped to numNodes by System.
  std::uint32_t simThreads = 1;
  /// Barrier-window quantum for simThreads>1: shards run this many cycles
  /// between mailbox drains. Larger = less sync overhead, more clock skew.
  std::uint32_t simWindowCycles = 64;
  /// Permit simThreads > hardware_concurrency. Oversubscribed sim workers
  /// only add barrier contention, so validation rejects that by default;
  /// correctness tests and CI boxes with few cores opt in explicitly.
  bool simAllowOversubscription = false;

  NetworkConfig net;
  SwitchDirConfig switchDir;
  SwitchCacheConfig switchCache;
  TxnTraceConfig txnTrace;
  /// Fault-injection campaign; default-constructed = fault-free (see
  /// fault/fault_plan.h — a disabled plan leaves runs byte-identical).
  FaultPlan fault;

  [[nodiscard]] std::uint32_t lineOffsetBits() const;
  [[nodiscard]] Addr blockOf(Addr a) const { return a & ~static_cast<Addr>(lineBytes - 1); }
  [[nodiscard]] NodeId homeOf(Addr a) const {
    return static_cast<NodeId>((a / pageBytes) % numNodes);
  }

  void dump(std::ostream& os) const;
  /// Collect a description of every violated invariant (power-of-two sizes,
  /// line-vs-way geometry, radix vs node count, fault rates in [0,1], ...).
  /// Empty result = valid configuration.
  [[nodiscard]] std::vector<std::string> validationErrors() const;
  /// Throws std::invalid_argument listing ALL violations (one bullet per
  /// finding), so a misconfiguration is fixed in one round trip.
  void validate() const;
};

/// Trace-driven commercial-workload parameters (paper Table 3).
struct TraceConfig {
  /// Named preset for the paper's Table 3 latencies (see paperTable2()).
  [[nodiscard]] static TraceConfig paperTable3() { return TraceConfig{}; }

  std::uint32_t numNodes = 16;
  std::uint32_t cacheBytes = 2 * 1024 * 1024;
  std::uint32_t cacheAssoc = 4;
  std::uint32_t lineBytes = 32;
  // Fixed service latencies (cycles), from Table 3.
  std::uint32_t cacheAccess = 8;
  std::uint32_t localMemory = 100;
  std::uint32_t ctocLocalHome = 220;
  std::uint32_t remoteMemory = 260;
  std::uint32_t ctocRemoteHome = 320;
  std::uint32_t switchDirHit = 200;
  /// Penalty added when a stale switch-directory entry forces a retry before
  /// the request is serviced at the home (paper handles this with its Retry
  /// message; latency not listed, we charge one extra network round).
  std::uint32_t staleRetryPenalty = 120;
  std::uint32_t pageBytes = 4096;

  SwitchDirConfig switchDir;

  [[nodiscard]] Addr blockOf(Addr a) const { return a & ~static_cast<Addr>(lineBytes - 1); }
  [[nodiscard]] NodeId homeOf(Addr a) const {
    return static_cast<NodeId>((a / pageBytes) % numNodes);
  }

  void dump(std::ostream& os) const;
  /// Collect a description of every violated invariant; empty = valid.
  /// Same all-violations contract as SystemConfig::validationErrors().
  [[nodiscard]] std::vector<std::string> validationErrors() const;
  /// Throws std::invalid_argument listing ALL violations at once.
  void validate() const;
};

}  // namespace dresar
