// Move-only callable wrapper with guaranteed inline storage for small
// callables — the small-buffer path for EventQueue::Handler. std::function's
// inline buffer (16 bytes in libstdc++) is far too small for the simulator's
// hot event closures (a captured Message alone is ~96 bytes), so every
// scheduled event used to heap-allocate. SmallFn sizes its buffer for those
// closures: a callable that is nothrow-move-constructible and fits the
// buffer lives inline; anything bigger (or throwing on move, so moves stay
// noexcept) falls back to the heap exactly like std::function.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dresar {

template <std::size_t Capacity, std::size_t Align = alignof(std::max_align_t)>
class SmallFn {
  template <typename F>
  static constexpr bool fitsInline =
      sizeof(F) <= Capacity && alignof(F) <= Align && std::is_nothrow_move_constructible_v<F>;

 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &heapOps<D>;
    }
  }

  SmallFn(SmallFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the held callable lives in the inline buffer (no heap
  /// allocation). Exposed so tests can pin the hot closures inline.
  [[nodiscard]] bool isInline() const noexcept { return ops_ != nullptr && ops_->inlined; }

  /// Compile-time query: would callable type F be stored inline?
  template <typename F>
  static constexpr bool inlineEligible() {
    return fitsInline<std::decay_t<F>>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the callable into `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inlined;
  };

  template <typename F>
  static F* inlinePtr(void* p) noexcept {
    return std::launder(reinterpret_cast<F*>(p));
  }
  template <typename F>
  static F*& heapPtr(void* p) noexcept {
    return *std::launder(reinterpret_cast<F**>(p));
  }

  template <typename F>
  static constexpr Ops inlineOps{
      [](void* p) { (*inlinePtr<F>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) F(std::move(*inlinePtr<F>(src)));
        inlinePtr<F>(src)->~F();
      },
      [](void* p) noexcept { inlinePtr<F>(p)->~F(); },
      true,
  };

  template <typename F>
  static constexpr Ops heapOps{
      [](void* p) { (*heapPtr<F>(p))(); },
      [](void* dst, void* src) noexcept { ::new (dst) F*(heapPtr<F>(src)); },
      [](void* p) noexcept { delete heapPtr<F>(p); },
      false,
  };

  alignas(Align) std::byte buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace dresar
