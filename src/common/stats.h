// Lightweight statistics: named counters, scalar samples and histograms with
// a registry for formatted dumps. No global state; each simulation owns one
// StatRegistry so parallel sweeps in one process never interfere.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace dresar {

/// Accumulates count/sum/min/max of a stream of samples (e.g. read latency).
class Sampler {
 public:
  void add(double v) {
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    sum_ += v;
    ++count_;
  }
  void merge(const Sampler& o) {
    if (o.count_ == 0) return;
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (count_ == 0 || o.max_ > max_) max_ = o.max_;
    sum_ += o.sum_;
    count_ += o.count_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  void reset() { *this = Sampler{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram (linear buckets plus overflow).
class Histogram {
 public:
  Histogram() = default;
  Histogram(double bucketWidth, std::size_t buckets)
      : width_(bucketWidth), counts_(buckets + 1, 0) {}

  void add(double v);
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucketWidth() const { return width_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  /// Value below which `fraction` (in [0,1]) of samples fall (bucket upper
  /// bound approximation).
  [[nodiscard]] double percentile(double fraction) const;

 private:
  double width_ = 1.0;
  std::vector<std::uint64_t> counts_ = std::vector<std::uint64_t>(11, 0);
  std::uint64_t total_ = 0;
};

/// A hierarchical name -> value registry. Components register counters under
/// dotted paths ("switch.2.dresar.hits"); dumps are sorted and stable.
class StatRegistry {
 public:
  /// Returns a reference to a named 64-bit counter, creating it at zero.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  /// Returns a named sampler, creating it empty.
  Sampler& sampler(const std::string& name) { return samplers_[name]; }

  [[nodiscard]] std::uint64_t counterValue(const std::string& name) const;
  [[nodiscard]] const Sampler* findSampler(const std::string& name) const;

  /// Sum of all counters whose name starts with `prefix`.
  [[nodiscard]] std::uint64_t sumByPrefix(const std::string& prefix) const;

  void dump(std::ostream& os) const;
  void reset();

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Sampler>& samplers() const { return samplers_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Sampler> samplers_;
};

}  // namespace dresar
