// Lightweight statistics: named counters, scalar samples and histograms with
// a registry for formatted dumps. No global state; each simulation owns one
// StatRegistry so parallel sweeps in one process never interfere.
//
// Hot-path discipline: components resolve CounterHandle / SamplerHandle
// objects once at construction (a string lookup that also registers the name
// for dumps), then bump through the cached pointer with zero per-event
// string work. The dotted-name registry remains the source of truth for
// dump(), counterValue() and sumByPrefix().
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace dresar {

/// Accumulates count/sum/min/max of a stream of samples (e.g. read latency).
class Sampler {
 public:
  void add(double v) {
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    sum_ += v;
    ++count_;
  }
  void merge(const Sampler& o) {
    if (o.count_ == 0) return;
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (count_ == 0 || o.max_ > max_) max_ = o.max_;
    sum_ += o.sum_;
    count_ += o.count_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  void reset() { *this = Sampler{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram: linear buckets (default) or log2-spaced buckets,
/// both plus one overflow bucket.
///
/// Linear buckets clamp heavy-tailed percentiles: p99/p99.9 of a latency
/// distribution spanning 8..100k cycles lands in the overflow bucket unless
/// the linear range is absurdly wide. The log2 geometry covers the same span
/// in a few dozen buckets with bounded relative error (each bucket's upper
/// bound is 2x its lower bound), which is what the traffic tail metrics use.
class Histogram {
 public:
  /// Log2 geometry selector: bucket 0 covers [0, firstBound), bucket i>0
  /// covers [firstBound*2^(i-1), firstBound*2^i).
  struct LogSpaced {
    double firstBound = 1.0;
    std::size_t buckets = 32;
  };

  Histogram() = default;
  Histogram(double bucketWidth, std::size_t buckets)
      : width_(bucketWidth), counts_(buckets + 1, 0) {}
  explicit Histogram(LogSpaced g)
      : width_(g.firstBound), logSpaced_(true), counts_(g.buckets + 1, 0) {}

  void add(double v);
  /// Fold another histogram's counts in. The geometries must be identical
  /// (same spacing mode, width/firstBound and bucket count); throws
  /// std::invalid_argument otherwise.
  void merge(const Histogram& o);
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucketWidth() const { return width_; }
  [[nodiscard]] bool isLogSpaced() const { return logSpaced_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  /// Samples that fell beyond the last bounded bucket.
  [[nodiscard]] std::uint64_t overflowCount() const { return counts_.back(); }
  /// Negative samples, counted into the first bucket (clamped at zero).
  [[nodiscard]] std::uint64_t underflowCount() const { return underflows_; }
  /// Upper bound of bounded bucket `i` (defined for i < buckets().size()-1).
  [[nodiscard]] double bucketBound(std::size_t i) const {
    if (!logSpaced_) return width_ * static_cast<double>(i + 1);
    return std::ldexp(width_, static_cast<int>(i));
  }
  /// Upper bound of the bounded range; percentile() never reports beyond it.
  [[nodiscard]] double overflowBound() const { return bucketBound(counts_.size() - 2); }
  /// Value below which `fraction` (in [0,1]) of samples fall (bucket upper
  /// bound approximation). fraction == 0 returns 0.0; a percentile landing in
  /// the overflow bucket is clamped to overflowBound() — callers can detect
  /// the clamp via percentileOverflowed().
  [[nodiscard]] double percentile(double fraction) const;
  /// True when percentile(fraction) landed in the overflow bucket, i.e. the
  /// returned value is a lower bound on the true percentile.
  [[nodiscard]] bool percentileOverflowed(double fraction) const;

 private:
  /// Index of the bucket holding the `fraction` percentile, or SIZE_MAX for
  /// "no samples / fraction == 0".
  [[nodiscard]] std::size_t percentileBucket(double fraction) const;

  double width_ = 1.0;  ///< linear bucket width, or the log firstBound
  bool logSpaced_ = false;
  std::vector<std::uint64_t> counts_ = std::vector<std::uint64_t>(11, 0);
  std::uint64_t total_ = 0;
  std::uint64_t underflows_ = 0;
};

/// Pre-resolved reference to a registry counter. Cheap to copy; bumping is a
/// single pointer-chase. Stays valid for the registry's lifetime (element
/// addresses in std::map are stable, and StatRegistry::reset() zeroes values
/// in place instead of erasing them).
class CounterHandle {
 public:
  CounterHandle() = default;

  CounterHandle& operator++() {
    ++*p_;
    return *this;
  }
  CounterHandle& operator+=(std::uint64_t v) {
    *p_ += v;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return p_ ? *p_ : 0; }
  [[nodiscard]] bool valid() const { return p_ != nullptr; }

 private:
  friend class StatRegistry;
  explicit CounterHandle(std::uint64_t* p) : p_(p) {}
  std::uint64_t* p_ = nullptr;
};

/// Pre-resolved reference to a registry sampler (same lifetime rules as
/// CounterHandle).
class SamplerHandle {
 public:
  SamplerHandle() = default;

  void add(double v) { p_->add(v); }
  [[nodiscard]] const Sampler* get() const { return p_; }
  [[nodiscard]] bool valid() const { return p_ != nullptr; }

 private:
  friend class StatRegistry;
  explicit SamplerHandle(Sampler* p) : p_(p) {}
  Sampler* p_ = nullptr;
};

/// A hierarchical name -> value registry. Components register counters under
/// dotted paths ("switch.2.dresar.hits"); dumps are sorted and stable.
class StatRegistry {
 public:
  /// Returns a reference to a named 64-bit counter, creating it at zero.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  /// Returns a named sampler, creating it empty.
  Sampler& sampler(const std::string& name) { return samplers_[name]; }

  /// Resolve a counter once (creating it at zero) and return a handle for
  /// string-free hot-path bumps.
  [[nodiscard]] CounterHandle counterHandle(const std::string& name) {
    return CounterHandle(&counters_[name]);
  }
  /// Resolve a sampler once (creating it empty) and return a handle.
  [[nodiscard]] SamplerHandle samplerHandle(const std::string& name) {
    return SamplerHandle(&samplers_[name]);
  }

  [[nodiscard]] std::uint64_t counterValue(const std::string& name) const;
  [[nodiscard]] const Sampler* findSampler(const std::string& name) const;

  /// Sum of all counters whose name starts with `prefix`.
  [[nodiscard]] std::uint64_t sumByPrefix(const std::string& prefix) const;

  void dump(std::ostream& os) const;
  /// Zero every counter and empty every sampler, keeping registrations (and
  /// therefore outstanding handles) valid.
  void reset();

  /// Fold another registry in: counters add, samplers merge, names missing
  /// here are created. Used by the sharded kernel to collapse per-shard
  /// registries into shard 0 after a run; `o` is left untouched.
  void mergeFrom(const StatRegistry& o) {
    for (const auto& [name, v] : o.counters_) counters_[name] += v;
    for (const auto& [name, s] : o.samplers_) samplers_[name].merge(s);
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Sampler>& samplers() const { return samplers_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Sampler> samplers_;
};

}  // namespace dresar
