// Red-black successive over-relaxation on an (N+2)x(N+2) grid with fixed
// boundary. Rows are block-partitioned; every sweep the first and last row
// of each partition are read by the neighbouring processor right after being
// written — the nearest-neighbour producer/consumer pattern behind SOR's
// high cache-to-cache fraction in Figure 1.
#include <cmath>
#include <vector>

#include "workloads/common.h"
#include "workloads/workload.h"

namespace dresar::workloads {

namespace {

class SorWorkload final : public Workload {
 public:
  SorWorkload(std::size_t n, std::size_t iters) : n_(n), iters_(iters) {}

  [[nodiscard]] std::string name() const override { return "SOR"; }

  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const { return i * (n_ + 2) + j; }

  void setup(System& sys) override {
    barrier_ = makeBarrier(sys);
    grid_ = SharedArray<double>(sys.mem(), (n_ + 2) * (n_ + 2));
    init_.assign((n_ + 2) * (n_ + 2), 0.0);
    // Hot left boundary, cold elsewhere; interior seeded with a ripple.
    for (std::size_t i = 0; i < n_ + 2; ++i) init_[idx(i, 0)] = 100.0;
    for (std::size_t i = 1; i <= n_; ++i) {
      for (std::size_t j = 1; j <= n_; ++j) {
        init_[idx(i, j)] = std::sin(0.1 * static_cast<double>(i * j));
      }
    }
    for (std::size_t k = 0; k < init_.size(); ++k) grid_[k] = init_[k];
  }

  SimTask body(System& sys, ThreadContext& ctx) override {
    const Range rows = blockPartition(n_, sys.config().numNodes, ctx.id());
    for (std::size_t it = 0; it < iters_; ++it) {
      for (int colour = 0; colour < 2; ++colour) {
        for (std::size_t r = rows.begin; r < rows.end; ++r) {
          const std::size_t i = r + 1;  // skip boundary row 0
          for (std::size_t j = 1 + ((i + static_cast<std::size_t>(colour)) % 2); j <= n_;
               j += 2) {
            co_await ctx.load(grid_.addr(idx(i - 1, j)));
            co_await ctx.load(grid_.addr(idx(i + 1, j)));
            co_await ctx.load(grid_.addr(idx(i, j - 1)));
            co_await ctx.load(grid_.addr(idx(i, j + 1)));
            grid_[idx(i, j)] = 0.25 * (grid_[idx(i - 1, j)] + grid_[idx(i + 1, j)] +
                                       grid_[idx(i, j - 1)] + grid_[idx(i, j + 1)]);
            co_await ctx.store(grid_.addr(idx(i, j)));
            co_await ctx.compute(8);
          }
        }
        co_await ctx.fence();
        co_await barrier_->arrive(ctx);
      }
    }
  }

  [[nodiscard]] WorkloadResult verify(System&) override {
    // Serial reference with the identical red-black schedule is
    // deterministic regardless of processor interleaving.
    std::vector<double> ref = init_;
    for (std::size_t it = 0; it < iters_; ++it) {
      for (int colour = 0; colour < 2; ++colour) {
        for (std::size_t i = 1; i <= n_; ++i) {
          for (std::size_t j = 1 + ((i + static_cast<std::size_t>(colour)) % 2); j <= n_;
               j += 2) {
            ref[idx(i, j)] = 0.25 * (ref[idx(i - 1, j)] + ref[idx(i + 1, j)] +
                                     ref[idx(i, j - 1)] + ref[idx(i, j + 1)]);
          }
        }
      }
    }
    double maxErr = 0.0;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      maxErr = std::max(maxErr, std::abs(ref[k] - grid_[k]));
    }
    if (maxErr > 1e-12) return {false, "sor mismatch vs serial, max error " + std::to_string(maxErr)};
    return {true, "matches serial red-black schedule"};
  }

 private:
  std::size_t n_;
  std::size_t iters_;
  SharedArray<double> grid_;
  std::vector<double> init_;
  std::unique_ptr<HwBarrier> barrier_;
};

}  // namespace

std::unique_ptr<Workload> makeSor(std::size_t n, std::size_t iters) {
  return std::make_unique<SorWorkload>(n, iters);
}

}  // namespace dresar::workloads
