// Floyd-Warshall all-pairs shortest paths (min-plus Warshall) on a dense
// integer distance matrix, rows block-partitioned with a barrier per pivot.
#include <vector>

#include "common/rng.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace dresar::workloads {

namespace {

constexpr std::int32_t kInf = 1 << 28;

class FwaWorkload final : public Workload {
 public:
  explicit FwaWorkload(std::size_t n) : n_(n) {}

  [[nodiscard]] std::string name() const override { return "FWA"; }

  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const { return i * n_ + j; }

  void setup(System& sys) override {
    barrier_ = makeBarrier(sys);
    dist_ = SharedArray<std::int32_t>(sys.mem(), n_ * n_);
    init_.assign(n_ * n_, kInf);
    Rng rng(0xF17Du);
    for (std::size_t i = 0; i < n_; ++i) {
      init_[idx(i, i)] = 0;
      for (std::size_t j = 0; j < n_; ++j) {
        if (i != j && rng.chance(0.25)) {
          init_[idx(i, j)] = static_cast<std::int32_t>(1 + rng.below(100));
        }
      }
    }
    for (std::size_t k = 0; k < init_.size(); ++k) dist_[k] = init_[k];
  }

  SimTask body(System& sys, ThreadContext& ctx) override {
    const Range rows = blockPartition(n_, sys.config().numNodes, ctx.id());
    for (std::size_t k = 0; k < n_; ++k) {
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        co_await ctx.load(dist_.addr(idx(i, k)));
        const std::int32_t dik = dist_[idx(i, k)];
        if (dik >= kInf) {
          co_await ctx.compute(4);
          continue;
        }
        for (std::size_t j = 0; j < n_; ++j) {
          co_await ctx.load(dist_.addr(idx(k, j)));
          const std::int32_t dkj = dist_[idx(k, j)];
          if (dkj < kInf) {
            co_await ctx.load(dist_.addr(idx(i, j)));
            if (dik + dkj < dist_[idx(i, j)]) {
              dist_[idx(i, j)] = dik + dkj;
              co_await ctx.store(dist_.addr(idx(i, j)));
            }
          }
          co_await ctx.compute(6);
        }
      }
      co_await ctx.fence();
      co_await barrier_->arrive(ctx);
    }
  }

  [[nodiscard]] WorkloadResult verify(System&) override {
    std::vector<std::int32_t> ref = init_;
    for (std::size_t k = 0; k < n_; ++k) {
      for (std::size_t i = 0; i < n_; ++i) {
        if (ref[idx(i, k)] >= kInf) continue;
        for (std::size_t j = 0; j < n_; ++j) {
          if (ref[idx(k, j)] < kInf && ref[idx(i, k)] + ref[idx(k, j)] < ref[idx(i, j)]) {
            ref[idx(i, j)] = ref[idx(i, k)] + ref[idx(k, j)];
          }
        }
      }
    }
    for (std::size_t e = 0; e < ref.size(); ++e) {
      if (ref[e] != dist_[e]) {
        return {false, "fwa mismatch at element " + std::to_string(e)};
      }
    }
    return {true, "distances match serial Floyd-Warshall"};
  }

 private:
  std::size_t n_;
  SharedArray<std::int32_t> dist_;
  std::vector<std::int32_t> init_;
  std::unique_ptr<HwBarrier> barrier_;
};

}  // namespace

std::unique_ptr<Workload> makeFwa(std::size_t n) { return std::make_unique<FwaWorkload>(n); }

}  // namespace dresar::workloads
