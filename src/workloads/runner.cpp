#include <stdexcept>

#include "workloads/workload.h"

namespace dresar {

namespace {
SimTask procWrapper(Workload& w, System& sys, ThreadContext& ctx) {
  co_await w.body(sys, ctx);
  co_await ctx.fence();  // release consistency: retire every store
  ctx.markDone(ctx.now());
}
}  // namespace

RunMetrics runWorkload(System& sys, Workload& w, bool requireVerify) {
  w.setup(sys);
  for (NodeId n = 0; n < sys.config().numNodes; ++n) {
    sys.spawn(n, procWrapper(w, sys, sys.ctx(n)));
  }
  sys.run();
  if (!sys.quiescent()) {
    throw std::runtime_error(w.name() + ": system not quiescent after run");
  }
  if (requireVerify) {
    const WorkloadResult r = w.verify(sys);
    if (!r.ok) throw std::runtime_error(w.name() + ": verification failed: " + r.detail);
  }
  RunMetrics m = RunMetrics::collect(sys, w.name());
  w.annotate(m);
  return m;
}

}  // namespace dresar
