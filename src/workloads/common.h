// Shared helpers for the scientific kernels.
#pragma once

#include <cstddef>
#include <memory>

#include "cpu/sync.h"
#include "sim/system.h"

namespace dresar::workloads {

/// Contiguous block partition of [0, n) across `parts` workers.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

inline Range blockPartition(std::size_t n, std::uint32_t parts, std::uint32_t who) {
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t begin = who * base + std::min<std::size_t>(who, extra);
  return Range{begin, begin + base + (who < extra ? 1 : 0)};
}

/// Builds the per-run hardware barrier sized to the system. The root-shard
/// scheduler owns it; arrivals from other shards cross via the mailbox.
inline std::unique_ptr<HwBarrier> makeBarrier(System& sys) {
  return std::make_unique<HwBarrier>(sys.sched(), sys.config().numNodes,
                                     sys.config().barrierLatencyCycles);
}

}  // namespace dresar::workloads
