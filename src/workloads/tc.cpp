// Transitive closure via Warshall's algorithm over a dense boolean
// adjacency matrix. Rows are block-partitioned; in iteration k every
// processor reads row k (written by its owner in earlier iterations), a
// one-producer / many-consumer broadcast: the first consumer triggers a
// cache-to-cache transfer, later ones read the now-clean copy — hence TC's
// moderate dirty fraction in Figure 1.
#include <vector>

#include "common/rng.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace dresar::workloads {

namespace {

class TcWorkload final : public Workload {
 public:
  explicit TcWorkload(std::size_t n) : n_(n) {}

  [[nodiscard]] std::string name() const override { return "TC"; }

  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const { return i * n_ + j; }

  void setup(System& sys) override {
    barrier_ = makeBarrier(sys);
    reach_ = SharedArray<std::uint8_t>(sys.mem(), n_ * n_);
    init_.assign(n_ * n_, 0);
    Rng rng(0x7C15u);
    for (std::size_t i = 0; i < n_; ++i) {
      init_[idx(i, i)] = 1;
      for (std::size_t j = 0; j < n_; ++j) {
        if (i != j && rng.chance(0.08)) init_[idx(i, j)] = 1;
      }
    }
    for (std::size_t k = 0; k < init_.size(); ++k) reach_[k] = init_[k];
  }

  SimTask body(System& sys, ThreadContext& ctx) override {
    const Range rows = blockPartition(n_, sys.config().numNodes, ctx.id());
    for (std::size_t k = 0; k < n_; ++k) {
      for (std::size_t i = rows.begin; i < rows.end; ++i) {
        co_await ctx.load(reach_.addr(idx(i, k)));
        if (reach_[idx(i, k)] == 0) {
          co_await ctx.compute(4);
          continue;
        }
        for (std::size_t j = 0; j < n_; ++j) {
          co_await ctx.load(reach_.addr(idx(k, j)));
          if (reach_[idx(k, j)] != 0) {
            co_await ctx.load(reach_.addr(idx(i, j)));
            if (reach_[idx(i, j)] == 0) {
              reach_[idx(i, j)] = 1;
              co_await ctx.store(reach_.addr(idx(i, j)));
            }
          }
          co_await ctx.compute(4);
        }
      }
      co_await ctx.fence();
      co_await barrier_->arrive(ctx);
    }
  }

  [[nodiscard]] WorkloadResult verify(System&) override {
    std::vector<std::uint8_t> ref = init_;
    for (std::size_t k = 0; k < n_; ++k) {
      for (std::size_t i = 0; i < n_; ++i) {
        if (ref[idx(i, k)] == 0) continue;
        for (std::size_t j = 0; j < n_; ++j) {
          if (ref[idx(k, j)] != 0) ref[idx(i, j)] = 1;
        }
      }
    }
    for (std::size_t e = 0; e < ref.size(); ++e) {
      if (ref[e] != reach_[e]) {
        return {false, "tc mismatch at element " + std::to_string(e)};
      }
    }
    return {true, "closure matches serial Warshall"};
  }

 private:
  std::size_t n_;
  SharedArray<std::uint8_t> reach_;
  std::vector<std::uint8_t> init_;
  std::unique_ptr<HwBarrier> barrier_;
};

}  // namespace

std::unique_ptr<Workload> makeTc(std::size_t n) { return std::make_unique<TcWorkload>(n); }

}  // namespace dresar::workloads
