#include <stdexcept>

#include "workloads/workload.h"

namespace dresar {

namespace workloads {
std::unique_ptr<Workload> makeFft(std::size_t points);
std::unique_ptr<Workload> makeSor(std::size_t n, std::size_t iters);
std::unique_ptr<Workload> makeTc(std::size_t n);
std::unique_ptr<Workload> makeFwa(std::size_t n);
std::unique_ptr<Workload> makeGauss(std::size_t n);
}  // namespace workloads

std::unique_ptr<Workload> makeWorkload(const std::string& name, const WorkloadScale& scale) {
  if (name == "fft" || name == "FFT") return workloads::makeFft(scale.fftPoints);
  if (name == "sor" || name == "SOR") return workloads::makeSor(scale.sorN, scale.sorIters);
  if (name == "tc" || name == "TC") return workloads::makeTc(scale.tcN);
  if (name == "fwa" || name == "FWA") return workloads::makeFwa(scale.fwaN);
  if (name == "gauss" || name == "GAUSS") return workloads::makeGauss(scale.gaussN);
  throw std::invalid_argument("unknown workload: " + name);
}

std::vector<std::string> workloadNames() { return {"fft", "tc", "sor", "fwa", "gauss"}; }

}  // namespace dresar
