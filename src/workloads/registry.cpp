#include <cctype>
#include <stdexcept>

#include "workloads/workload.h"

namespace dresar {

namespace workloads {
std::unique_ptr<Workload> makeFft(std::size_t points);
std::unique_ptr<Workload> makeSor(std::size_t n, std::size_t iters);
std::unique_ptr<Workload> makeTc(std::size_t n);
std::unique_ptr<Workload> makeFwa(std::size_t n);
std::unique_ptr<Workload> makeGauss(std::size_t n);
std::unique_ptr<Workload> makeTraffic(const std::string& profile, std::uint64_t refsPerNode,
                                      double offeredLoad);
}  // namespace workloads

std::unique_ptr<Workload> makeWorkload(const std::string& name, const WorkloadScale& scale) {
  if (name == "fft" || name == "FFT") return workloads::makeFft(scale.fftPoints);
  if (name == "sor" || name == "SOR") return workloads::makeSor(scale.sorN, scale.sorIters);
  if (name == "tc" || name == "TC") return workloads::makeTc(scale.tcN);
  if (name == "fwa" || name == "FWA") return workloads::makeFwa(scale.fwaN);
  if (name == "gauss" || name == "GAUSS") return workloads::makeGauss(scale.gaussN);
  if (name == "oltp" || name == "OLTP" || name == "kv" || name == "KV" ||
      name == "hotspot" || name == "HOTSPOT" || name == "incast" || name == "INCAST") {
    std::string profile = name;
    for (char& c : profile) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return workloads::makeTraffic(profile, scale.trafficRefsPerNode, scale.offeredLoad);
  }
  throw std::invalid_argument("unknown workload: " + name);
}

// Deliberately still the five scientific kernels (the paper's Figure 1 set):
// callers iterate this to reproduce figure sweeps. Traffic workloads are
// reachable by name ("oltp", "kv") via makeWorkload.
std::vector<std::string> workloadNames() { return {"fft", "tc", "sor", "fwa", "gauss"}; }

}  // namespace dresar
