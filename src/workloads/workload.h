// Workload interface for execution-driven runs, plus the runner that wires
// per-processor coroutines into a System and collects metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/context.h"
#include "cpu/task.h"
#include "sim/metrics.h"
#include "sim/system.h"

namespace dresar {

struct WorkloadResult {
  bool ok = false;
  std::string detail;
};

/// Problem-size knobs. Defaults are scaled for seconds-long runs; `paper()`
/// gives the Table 2 sizes.
struct WorkloadScale {
  std::size_t fftPoints = 4096;     ///< paper: 16K
  std::size_t sorN = 128;           ///< paper: 512
  std::size_t sorIters = 8;
  std::size_t tcN = 48;             ///< paper: 128
  std::size_t fwaN = 48;            ///< paper: 128
  std::size_t gaussN = 48;          ///< paper: 128
  /// References each node issues for the traffic workloads ("oltp", "kv",
  /// "hotspot", "incast").
  std::size_t trafficRefsPerNode = 20000;
  /// Arrival-rate multiplier for the traffic workloads — the offered-load
  /// axis of saturation curves. 1.0 = each profile's nominal rate.
  double offeredLoad = 1.0;

  static WorkloadScale paper() {
    WorkloadScale s;
    s.fftPoints = 16384;
    s.sorN = 512;
    s.sorIters = 8;
    s.tcN = 128;
    s.fwaN = 128;
    s.gaussN = 128;
    s.trafficRefsPerNode = 100000;
    return s;
  }
  static WorkloadScale tiny() {
    WorkloadScale s;
    s.fftPoints = 256;
    s.sorN = 32;
    s.sorIters = 4;
    s.tcN = 16;
    s.fwaN = 16;
    s.gaussN = 16;
    s.trafficRefsPerNode = 2000;
    return s;
  }
};

class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Allocate and initialize shared data (called once, before any body).
  virtual void setup(System& sys) = 0;
  /// The per-processor program. One coroutine per node runs concurrently at
  /// simulated time.
  virtual SimTask body(System& sys, ThreadContext& ctx) = 0;
  /// Numeric self-check after the run.
  [[nodiscard]] virtual WorkloadResult verify(System& sys) = 0;
  /// Post-collection hook: fold workload-private measurements into the run's
  /// metrics (e.g. the traffic workloads' offered/accepted load). Default:
  /// nothing, so existing workloads' metrics are byte-identical.
  virtual void annotate(RunMetrics&) {}
};

/// Run `w` on `sys` (setup -> one body per processor -> fence -> verify).
/// Throws if verification fails or the protocol deadlocks.
RunMetrics runWorkload(System& sys, Workload& w, bool requireVerify = true);

/// Factory over the five scientific kernels: "fft", "sor", "tc", "fwa",
/// "gauss". Throws on unknown names.
std::unique_ptr<Workload> makeWorkload(const std::string& name, const WorkloadScale& scale);

/// All registered workload names, in the paper's Figure 1 order.
std::vector<std::string> workloadNames();

}  // namespace dresar
