// Gaussian elimination (no pivoting, diagonally dominant system) on an
// N x (N+1) augmented matrix. Rows are distributed cyclically for load
// balance; each iteration broadcasts the freshly reduced pivot row to every
// processor.
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace dresar::workloads {

namespace {

class GaussWorkload final : public Workload {
 public:
  explicit GaussWorkload(std::size_t n) : n_(n), cols_(n + 1) {}

  [[nodiscard]] std::string name() const override { return "GAUSS"; }

  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const { return i * cols_ + j; }

  void setup(System& sys) override {
    barrier_ = makeBarrier(sys);
    a_ = SharedArray<double>(sys.mem(), n_ * cols_);
    orig_.assign(n_ * cols_, 0.0);
    Rng rng(0x6A55u);
    for (std::size_t i = 0; i < n_; ++i) {
      double rowSum = 0.0;
      for (std::size_t j = 0; j < n_; ++j) {
        if (i != j) {
          orig_[idx(i, j)] = rng.uniform() * 2.0 - 1.0;
          rowSum += std::abs(orig_[idx(i, j)]);
        }
      }
      orig_[idx(i, i)] = rowSum + 1.0;  // diagonally dominant => stable
      orig_[idx(i, n_)] = rng.uniform() * 10.0;  // rhs
    }
    for (std::size_t k = 0; k < orig_.size(); ++k) a_[k] = orig_[k];
  }

  SimTask body(System& sys, ThreadContext& ctx) override {
    const std::uint32_t p = sys.config().numNodes;
    for (std::size_t k = 0; k < n_; ++k) {
      // Eliminate column k from this processor's rows below the pivot.
      co_await ctx.load(a_.addr(idx(k, k)));
      const double pivot = a_[idx(k, k)];
      for (std::size_t i = k + 1; i < n_; ++i) {
        if (i % p != ctx.id()) continue;
        co_await ctx.load(a_.addr(idx(i, k)));
        const double factor = a_[idx(i, k)] / pivot;
        a_[idx(i, k)] = 0.0;
        co_await ctx.store(a_.addr(idx(i, k)));
        for (std::size_t j = k + 1; j < cols_; ++j) {
          co_await ctx.load(a_.addr(idx(k, j)));
          co_await ctx.load(a_.addr(idx(i, j)));
          a_[idx(i, j)] -= factor * a_[idx(k, j)];
          co_await ctx.store(a_.addr(idx(i, j)));
          co_await ctx.compute(6);
        }
      }
      co_await ctx.fence();
      co_await barrier_->arrive(ctx);
    }
  }

  [[nodiscard]] WorkloadResult verify(System&) override {
    // Back-substitute on the reduced matrix, then check A_orig * x = b.
    std::vector<double> x(n_, 0.0);
    for (std::size_t ii = n_; ii-- > 0;) {
      double s = a_[idx(ii, n_)];
      for (std::size_t j = ii + 1; j < n_; ++j) s -= a_[idx(ii, j)] * x[j];
      x[ii] = s / a_[idx(ii, ii)];
    }
    double maxResidual = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n_; ++j) s += orig_[idx(i, j)] * x[j];
      maxResidual = std::max(maxResidual, std::abs(s - orig_[idx(i, n_)]));
    }
    if (maxResidual > 1e-8) {
      return {false, "gauss residual " + std::to_string(maxResidual)};
    }
    return {true, "residual " + std::to_string(maxResidual)};
  }

 private:
  std::size_t n_;
  std::size_t cols_;
  SharedArray<double> a_;
  std::vector<double> orig_;
  std::unique_ptr<HwBarrier> barrier_;
};

}  // namespace

std::unique_ptr<Workload> makeGauss(std::size_t n) { return std::make_unique<GaussWorkload>(n); }

}  // namespace dresar::workloads
