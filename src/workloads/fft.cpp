// Parallel 1-D FFT (radix-2, binary exchange, double-buffered). Each
// processor owns a contiguous block of points; once the butterfly distance
// reaches the block size every point update reads one element freshly
// written by another processor — the pairwise producer/consumer pattern that
// makes FFT one of the most cache-to-cache-intensive kernels in Figure 1.
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "workloads/common.h"
#include "workloads/workload.h"

namespace dresar::workloads {

namespace {

struct Cplx {
  double re = 0.0;
  double im = 0.0;
};

std::size_t bitReverse(std::size_t x, unsigned bits) {
  std::size_t r = 0;
  for (unsigned b = 0; b < bits; ++b) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

/// Serial reference FFT (same algorithm) over std::complex.
void serialFft(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitReverse(i, bits);
    if (j > i) std::swap(a[i], a[j]);
  }
  for (std::size_t m = 2; m <= n; m <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(m);
    const std::complex<double> wm(std::cos(ang), std::sin(ang));
    for (std::size_t k = 0; k < n; k += m) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < m / 2; ++j) {
        const auto t = w * a[k + j + m / 2];
        const auto u = a[k + j];
        a[k + j] = u + t;
        a[k + j + m / 2] = u - t;
        w *= wm;
      }
    }
  }
  if (inverse) {
    for (auto& v : a) v /= static_cast<double>(n);
  }
}

class FftWorkload final : public Workload {
 public:
  explicit FftWorkload(std::size_t points) : n_(points) {
    if (n_ < 2 || (n_ & (n_ - 1)) != 0) throw std::invalid_argument("fft: points must be 2^k");
    while ((std::size_t{1} << bits_) < n_) ++bits_;
  }

  [[nodiscard]] std::string name() const override { return "FFT"; }

  void setup(System& sys) override {
    barrier_ = makeBarrier(sys);
    buf_[0] = SharedArray<Cplx>(sys.mem(), n_);
    buf_[1] = SharedArray<Cplx>(sys.mem(), n_);
    input_.resize(n_);
    // Deterministic test signal, bit-reverse permuted into buffer 0
    // (decimation-in-time input ordering).
    for (std::size_t i = 0; i < n_; ++i) {
      const double t = static_cast<double>(i);
      input_[i] = {std::sin(0.03 * t) + 0.5 * std::cos(0.11 * t), 0.25 * std::sin(0.07 * t)};
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const auto src = input_[bitReverse(i, bits_)];
      buf_[0][i] = Cplx{src.real(), src.imag()};
    }
  }

  SimTask body(System& sys, ThreadContext& ctx) override {
    const Range mine = blockPartition(n_, sys.config().numNodes, ctx.id());
    unsigned src = 0;
    for (unsigned s = 1; s <= bits_; ++s) {
      const std::size_t m = std::size_t{1} << s;
      const std::size_t half = m / 2;
      const unsigned dst = src ^ 1u;
      const double ang = -2.0 * std::numbers::pi / static_cast<double>(m);
      for (std::size_t i = mine.begin; i < mine.end; ++i) {
        const std::size_t p = i & (m - 1);
        if (p < half) {
          const std::size_t partner = i + half;
          co_await ctx.load(buf_[src].addr(i));
          co_await ctx.load(buf_[src].addr(partner));
          const double wr = std::cos(ang * static_cast<double>(p));
          const double wi = std::sin(ang * static_cast<double>(p));
          const Cplx a = buf_[src][i];
          const Cplx b = buf_[src][partner];
          buf_[dst][i] = Cplx{a.re + wr * b.re - wi * b.im, a.im + wr * b.im + wi * b.re};
        } else {
          const std::size_t partner = i - half;
          const std::size_t q = p - half;
          co_await ctx.load(buf_[src].addr(partner));
          co_await ctx.load(buf_[src].addr(i));
          const double wr = std::cos(ang * static_cast<double>(q));
          const double wi = std::sin(ang * static_cast<double>(q));
          const Cplx a = buf_[src][partner];
          const Cplx b = buf_[src][i];
          buf_[dst][i] = Cplx{a.re - (wr * b.re - wi * b.im), a.im - (wr * b.im + wi * b.re)};
        }
        co_await ctx.store(buf_[dst].addr(i));
        co_await ctx.compute(20);
      }
      co_await ctx.fence();
      co_await barrier_->arrive(ctx);
      src = dst;
    }
    // Every proc computes the same final buffer index, but on the sharded
    // kernel they finish on different threads; a single writer keeps the
    // (value-identical) store race-free.
    if (ctx.id() == 0) result_ = src;
  }

  [[nodiscard]] WorkloadResult verify(System&) override {
    // Round-trip: inverse-transform the parallel result (serially, outside
    // simulated time) and compare with the original signal.
    std::vector<std::complex<double>> out(n_);
    for (std::size_t i = 0; i < n_; ++i) out[i] = {buf_[result_][i].re, buf_[result_][i].im};
    serialFft(out, /*inverse=*/true);
    double maxErr = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      maxErr = std::max(maxErr, std::abs(out[i] - input_[i]));
    }
    if (maxErr > 1e-6) {
      return {false, "fft round-trip max error " + std::to_string(maxErr)};
    }
    return {true, "max round-trip error " + std::to_string(maxErr)};
  }

 private:
  std::size_t n_;
  unsigned bits_ = 0;
  unsigned result_ = 0;
  SharedArray<Cplx> buf_[2];
  std::vector<std::complex<double>> input_;
  std::unique_ptr<HwBarrier> barrier_;
};

}  // namespace

std::unique_ptr<Workload> makeFft(std::size_t points) {
  return std::make_unique<FftWorkload>(points);
}

}  // namespace dresar::workloads
