#include "switchdir/dir_cache.h"

#include <bit>
#include <stdexcept>

namespace dresar {

const char* toString(SDState s) {
  switch (s) {
    case SDState::Invalid: return "Invalid";
    case SDState::Modified: return "Modified";
    case SDState::Transient: return "Transient";
  }
  return "?";
}

SwitchDirCache::SwitchDirCache(std::uint32_t entries, std::uint32_t associativity,
                               std::uint32_t lineBytes)
    : assoc_(associativity), lineShift_(static_cast<std::uint32_t>(std::countr_zero(lineBytes))) {
  if (entries == 0 || associativity == 0 || entries % associativity != 0)
    throw std::invalid_argument("SwitchDirCache: entries must be a positive multiple of assoc");
  if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
    throw std::invalid_argument("SwitchDirCache: lineBytes must be a power of two");
  numSets_ = entries / associativity;
  ways_.resize(entries);
}

std::size_t SwitchDirCache::setBase(Addr block) const {
  return static_cast<std::size_t>((block >> lineShift_) % numSets_) * assoc_;
}

SDEntry* SwitchDirCache::find(Addr block) {
  ++stats_.lookups;
  const std::size_t base = setBase(block);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    SDEntry& e = ways_[base + w];
    if (e.valid() && e.tag == block) {
      ++stats_.hits;
      e.lastUse = ++tick_;
      return &e;
    }
  }
  return nullptr;
}

const SDEntry* SwitchDirCache::peek(Addr block) const {
  const std::size_t base = setBase(block);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    const SDEntry& e = ways_[base + w];
    if (e.valid() && e.tag == block) return &e;
  }
  return nullptr;
}

SDEntry* SwitchDirCache::allocate(Addr block) {
  const std::size_t base = setBase(block);
  SDEntry* invalid = nullptr;
  SDEntry* lruModified = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    SDEntry& e = ways_[base + w];
    if (e.valid() && e.tag == block) {
      e.lastUse = ++tick_;
      return &e;
    }
    if (!e.valid()) {
      if (invalid == nullptr) invalid = &e;
    } else if (e.state == SDState::Modified) {
      if (lruModified == nullptr || e.lastUse < lruModified->lastUse) lruModified = &e;
    }
  }
  SDEntry* victim = invalid != nullptr ? invalid : lruModified;
  if (victim == nullptr) {
    ++stats_.allocFailures;
    return nullptr;
  }
  if (victim->valid()) ++stats_.evictions;
  ++stats_.allocations;
  *victim = SDEntry{};
  victim->tag = block;
  victim->lastUse = ++tick_;
  return victim;
}

void SwitchDirCache::invalidate(SDEntry& e) {
  ++stats_.invalidations;
  e = SDEntry{};
}

std::uint64_t SwitchDirCache::countState(SDState s) const {
  std::uint64_t n = 0;
  for (const auto& e : ways_) {
    if (e.valid() && e.state == s) ++n;
  }
  return n;
}

}  // namespace dresar
