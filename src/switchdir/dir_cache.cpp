#include "switchdir/dir_cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "switchdir/sd_policy.h"

namespace dresar {

const char* toString(SDState s) {
  switch (s) {
    case SDState::Invalid: return "Invalid";
    case SDState::Modified: return "Modified";
    case SDState::Shared: return "Shared";
    case SDState::Transient: return "Transient";
  }
  return "?";
}

SwitchDirCache::SwitchDirCache(std::uint32_t entries, std::uint32_t associativity,
                               std::uint32_t lineBytes, const std::string& replacementPolicy,
                               std::uint64_t stampAgingThreshold)
    : assoc_(associativity),
      lineShift_(static_cast<std::uint32_t>(std::countr_zero(lineBytes))),
      policy_(makeSdReplacementPolicy(replacementPolicy)),
      touchOnHit_(policy_->touchOnHit()),
      agingThreshold_(stampAgingThreshold) {
  if (entries == 0 || associativity == 0 || entries % associativity != 0)
    throw std::invalid_argument("SwitchDirCache: entries must be a positive multiple of assoc");
  if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
    throw std::invalid_argument("SwitchDirCache: lineBytes must be a power of two");
  if (stampAgingThreshold == 0)
    throw std::invalid_argument("SwitchDirCache: stampAgingThreshold must be positive");
  numSets_ = entries / associativity;
  ways_.resize(entries);
  victimScratch_.resize(assoc_);
}

SwitchDirCache::~SwitchDirCache() = default;
SwitchDirCache::SwitchDirCache(SwitchDirCache&&) noexcept = default;
SwitchDirCache& SwitchDirCache::operator=(SwitchDirCache&&) noexcept = default;

const char* SwitchDirCache::replacementPolicyName() const { return policy_->name(); }

std::size_t SwitchDirCache::setBase(Addr block) const {
  return static_cast<std::size_t>((block >> lineShift_) % numSets_) * assoc_;
}

std::uint64_t SwitchDirCache::nextStamp() {
  if (tick_ >= agingThreshold_) renumberStamps();
  return ++tick_;
}

void SwitchDirCache::renumberStamps() {
  // Order-preserving rank compression: live stamps become 1..n, the tick
  // restarts past them. Stamps are unique (each came from a distinct ++tick_),
  // so the sort is total and the relative LRU/FIFO order is exactly kept.
  std::vector<SDEntry*> live;
  live.reserve(ways_.size());
  for (SDEntry& e : ways_) {
    if (e.valid()) live.push_back(&e);
  }
  std::sort(live.begin(), live.end(),
            [](const SDEntry* a, const SDEntry* b) { return a->lastUse < b->lastUse; });
  std::uint64_t stamp = 0;
  for (SDEntry* e : live) e->lastUse = ++stamp;
  tick_ = stamp;
  ++stats_.stampAgings;
}

SDEntry* SwitchDirCache::find(Addr block) {
  ++stats_.lookups;
  const std::size_t base = setBase(block);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    SDEntry& e = ways_[base + w];
    if (e.valid() && e.tag == block) {
      ++stats_.hits;
      if (touchOnHit_) e.lastUse = nextStamp();
      return &e;
    }
  }
  return nullptr;
}

const SDEntry* SwitchDirCache::peek(Addr block) const {
  const std::size_t base = setBase(block);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    const SDEntry& e = ways_[base + w];
    if (e.valid() && e.tag == block) return &e;
  }
  return nullptr;
}

SDEntry* SwitchDirCache::allocate(Addr block) {
  const std::size_t base = setBase(block);
  SDEntry* invalid = nullptr;
  std::size_t evictable = 0;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    SDEntry& e = ways_[base + w];
    if (e.valid() && e.tag == block) {
      if (touchOnHit_) e.lastUse = nextStamp();
      return &e;
    }
    if (!e.valid()) {
      if (invalid == nullptr) invalid = &e;
    } else if (e.state != SDState::Transient) {
      // Every unpinned valid way — MODIFIED and SHARED alike — is a
      // replacement candidate. (A previous revision only offered MODIFIED
      // ways, silently making clean SHARED entries immortal.)
      victimScratch_[evictable++] = &e;
    }
  }
  SDEntry* victim = invalid;
  if (victim == nullptr && evictable > 0) {
    victim = policy_->pickVictim(victimScratch_.data(), evictable);
  }
  if (victim == nullptr) {
    ++stats_.allocFailures;
    return nullptr;
  }
  if (victim->valid()) ++stats_.evictions;
  ++stats_.allocations;
  *victim = SDEntry{};
  victim->tag = block;
  victim->lastUse = nextStamp();
  return victim;
}

void SwitchDirCache::invalidate(SDEntry& e) {
  ++stats_.invalidations;
  e = SDEntry{};
}

std::uint64_t SwitchDirCache::countState(SDState s) const {
  std::uint64_t n = 0;
  for (const auto& e : ways_) {
    if (e.valid() && e.state == s) ++n;
  }
  return n;
}

}  // namespace dresar
