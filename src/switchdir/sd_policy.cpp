#include "switchdir/sd_policy.h"

#include <algorithm>
#include <stdexcept>

namespace dresar {

const char* toString(SDAccessPhase p) {
  switch (p) {
    case SDAccessPhase::Request: return "Request";
    case SDAccessPhase::Completion: return "Completion";
  }
  return "?";
}

namespace {

/// Oldest stamp wins. Stamps are unique (every one comes from a distinct
/// monotonic tick), so the choice is total and deterministic.
SDEntry* oldestStamp(SDEntry* const* candidates, std::size_t n) {
  SDEntry* best = candidates[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (candidates[i]->lastUse < best->lastUse) best = candidates[i];
  }
  return best;
}

class LruReplacement final : public SDReplacementPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "lru"; }
  [[nodiscard]] bool touchOnHit() const override { return true; }
  [[nodiscard]] SDEntry* pickVictim(SDEntry* const* candidates, std::size_t n) override {
    return oldestStamp(candidates, n);
  }
};

class FifoReplacement final : public SDReplacementPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "fifo"; }
  [[nodiscard]] bool touchOnHit() const override { return false; }
  [[nodiscard]] SDEntry* pickVictim(SDEntry* const* candidates, std::size_t n) override {
    // Hits never refresh, so the oldest stamp is the oldest insertion.
    return oldestStamp(candidates, n);
  }
};

class RandomReplacement final : public SDReplacementPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "random"; }
  [[nodiscard]] bool touchOnHit() const override { return false; }
  [[nodiscard]] SDEntry* pickVictim(SDEntry* const* candidates, std::size_t n) override {
    // xorshift64*: one fixed-seed stream per cache instance. Decisions
    // depend only on that cache's access sequence, never on thread
    // scheduling, so parallel sweeps stay byte-identical for any --jobs.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t draw = state_ * 0x2545F4914F6CDD1Dull;
    return candidates[draw % n];
  }

 private:
  std::uint64_t state_ = 0x9E3779B97F4A7C15ull;
};

class FifoArbitration final : public SDArbitrationPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "fifo"; }
  Cycle reserve(PortSchedule& ports, Cycle now, SDAccessPhase /*phase*/) override {
    return ports.reserve(now);
  }
};

/// Phase-priority (Li & An): one port per cycle is held back from fresh
/// requests so completion-phase traffic always finds capacity. Degenerates
/// to FIFO on a single-ported SRAM (the reservation would starve requests).
class PhaseArbitration final : public SDArbitrationPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "phase"; }
  Cycle reserve(PortSchedule& ports, Cycle now, SDAccessPhase phase) override {
    if (phase == SDAccessPhase::Completion || ports.portsPerCycle() <= 1) {
      return ports.reserve(now);
    }
    return ports.reserve(now, ports.portsPerCycle() - 1);
  }
};

}  // namespace

std::unique_ptr<SDReplacementPolicy> makeSdReplacementPolicy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruReplacement>();
  if (name == "fifo") return std::make_unique<FifoReplacement>();
  if (name == "random") return std::make_unique<RandomReplacement>();
  throw std::invalid_argument("unknown switch-directory replacement policy '" + name +
                              "' (valid: " + sdReplacementPolicyList() + ")");
}

std::unique_ptr<SDArbitrationPolicy> makeSdArbitrationPolicy(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoArbitration>();
  if (name == "phase") return std::make_unique<PhaseArbitration>();
  throw std::invalid_argument("unknown switch-directory arbitration policy '" + name +
                              "' (valid: " + sdArbitrationPolicyList() + ")");
}

const std::vector<std::string>& sdReplacementPolicyNames() {
  static const std::vector<std::string> names = {"lru", "fifo", "random"};
  return names;
}

const std::vector<std::string>& sdArbitrationPolicyNames() {
  static const std::vector<std::string> names = {"fifo", "phase"};
  return names;
}

namespace {
bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

std::string joined(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}
}  // namespace

bool isSdReplacementPolicy(const std::string& name) {
  return contains(sdReplacementPolicyNames(), name);
}

bool isSdArbitrationPolicy(const std::string& name) {
  return contains(sdArbitrationPolicyNames(), name);
}

std::string sdReplacementPolicyList() { return joined(sdReplacementPolicyNames()); }

std::string sdArbitrationPolicyList() { return joined(sdArbitrationPolicyNames()); }

}  // namespace dresar
