// Models a multiported SRAM's per-cycle port budget (paper 4.2: a 2-way
// multiported directory serves two snoops per cycle; the 4-way multiported
// pending buffer serves four). Reservations arrive in nondecreasing simulated
// time (event-queue order), so a compact head-of-line schedule suffices.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "common/types.h"

namespace dresar {

class PortSchedule {
 public:
  explicit PortSchedule(std::uint32_t portsPerCycle) : ports_(portsPerCycle) {
    if (portsPerCycle == 0) throw std::invalid_argument("PortSchedule: need >= 1 port");
  }

  /// Reserve one port at the earliest cycle >= now; returns the wait (cycles
  /// beyond `now` the access must be delayed by port contention).
  Cycle reserve(Cycle now) { return reserve(now, ports_); }

  /// Reserve with a reduced per-cycle budget (arbitration policies withhold
  /// ports from low-priority phases this way). `budget` is clamped to
  /// [1, portsPerCycle]; an access that finds its budget exhausted waits for
  /// the next cycle.
  Cycle reserve(Cycle now, std::uint32_t budget) {
    budget = std::clamp<std::uint32_t>(budget, 1, ports_);
    if (now > head_) {
      head_ = now;
      used_ = 1;
      return 0;
    }
    if (used_ < budget) {
      ++used_;
      return head_ - now;
    }
    ++head_;
    used_ = 1;
    return head_ - now;
  }

  [[nodiscard]] std::uint32_t portsPerCycle() const { return ports_; }

 private:
  std::uint32_t ports_;
  Cycle head_ = 0;
  std::uint32_t used_ = 0;
};

}  // namespace dresar
