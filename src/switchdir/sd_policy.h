// Pluggable switch-directory policies (ROADMAP "policy lab"). Two seams are
// extracted from the switch-directory layer so head-to-head studies plug in
// without touching the protocol engines:
//
//   * SDReplacementPolicy — victim selection and touch-on-use bookkeeping for
//     the per-switch tag arrays (SwitchDirCache). Modeled on Graphite's
//     DramDirectoryCache replacement-candidate machinery: the cache collects
//     the evictable ways of a set (valid, not pinned TRANSIENT) and the
//     policy picks among them. Shipped: "lru" (the paper's fixed default),
//     "fifo" (insertion order, hits do not refresh), "random" (deterministic
//     xorshift stream per cache, so sweeps stay byte-identical per --jobs).
//
//   * SDArbitrationPolicy — how contending directory accesses share a
//     switch's multiported SRAM in one cycle. Shipped: "fifo" (arrival
//     order, the paper's model) and "phase" (phase-priority per Li & An:
//     completion-phase traffic — replies, copybacks, retries — keeps the
//     full port budget while fresh requests are throttled to ports-1, so a
//     transaction nearing completion is never starved by new arrivals).
//
// Both factories throw std::invalid_argument on unknown names;
// SystemConfig::validationErrors() reports the same names earlier with the
// full valid list so misconfigured sweeps fail before burning simulation
// hours.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "switchdir/dir_cache.h"
#include "switchdir/port_schedule.h"

namespace dresar {

/// Protocol phase of a directory access, for phase-priority arbitration.
/// Request = a fresh request probing the directory (ReadRequest,
/// WriteRequest); Completion = traffic finishing an in-flight transaction
/// (WriteReply deposits, CtoCRequest, CopyBack, WriteBack, Retry,
/// Invalidation).
enum class SDAccessPhase : std::uint8_t { Request, Completion };

const char* toString(SDAccessPhase p);

/// Victim selection for one set of a switch tag array. The cache keeps the
/// mechanics (stamps come from its monotonic tick, invalid ways are always
/// preferred, TRANSIENT ways are never offered) and asks the policy two
/// questions: does a lookup hit refresh the recency stamp, and which of the
/// evictable ways dies.
class SDReplacementPolicy {
 public:
  virtual ~SDReplacementPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// True if a lookup hit refreshes the entry's recency stamp (LRU); false
  /// if only allocation stamps it (FIFO/random keep insertion order).
  [[nodiscard]] virtual bool touchOnHit() const = 0;

  /// Choose the victim among `n >= 1` evictable ways (valid, unpinned).
  /// Stateful policies (random) may advance internal state per call.
  [[nodiscard]] virtual SDEntry* pickVictim(SDEntry* const* candidates, std::size_t n) = 0;
};

/// Port arbitration for one multiported directory SRAM. The policy decides
/// how a phase shares the per-cycle port budget; the PortSchedule keeps the
/// head-of-line bookkeeping.
class SDArbitrationPolicy {
 public:
  virtual ~SDArbitrationPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Reserve one access on `ports` at the earliest cycle >= now; returns the
  /// contention delay in cycles.
  virtual Cycle reserve(PortSchedule& ports, Cycle now, SDAccessPhase phase) = 0;
};

/// Factory + registry. Names are stable spec/config tokens.
[[nodiscard]] std::unique_ptr<SDReplacementPolicy> makeSdReplacementPolicy(
    const std::string& name);
[[nodiscard]] std::unique_ptr<SDArbitrationPolicy> makeSdArbitrationPolicy(
    const std::string& name);

/// Registered policy names, in deterministic registration order.
[[nodiscard]] const std::vector<std::string>& sdReplacementPolicyNames();
[[nodiscard]] const std::vector<std::string>& sdArbitrationPolicyNames();

[[nodiscard]] bool isSdReplacementPolicy(const std::string& name);
[[nodiscard]] bool isSdArbitrationPolicy(const std::string& name);

/// "lru, fifo, random" — for validation/usage messages.
[[nodiscard]] std::string sdReplacementPolicyList();
[[nodiscard]] std::string sdArbitrationPolicyList();

}  // namespace dresar
