// Switch cache (the paper's conclusion proposes combining DRESAR with the
// authors' earlier HPCA-5 "switch cache" framework; this implements that
// extension). Where the switch *directory* captures ownership of dirty
// blocks, the switch *cache* holds the data of recently read clean blocks:
// ReadReplies flowing home -> reader deposit the line, and later reads that
// hit are served directly at the switch, skipping the home entirely.
//
// Coherence: entries are invalidated by every message that makes the cached
// value suspect (WriteRequest, WriteReply, Invalidation, CtoCRequest,
// CopyBack, WriteBack). A switch-served read additionally sends a
// SharerNotify to the home so the full-map directory keeps tracking every
// copy; a notify that finds the block no longer cleanly SHARED makes the
// home invalidate the served reader again (the same fill-then-invalidate
// window the base protocol already tolerates).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "interconnect/network.h"
#include "switchdir/dir_cache.h"
#include "switchdir/port_schedule.h"
#include "switchdir/sd_policy.h"

namespace dresar {

class SwitchCacheManager : public ISwitchSnoop {
 public:
  /// Each switch unit's counters register in the registry of the shard that
  /// owns the switch (per `map`), since onMessage runs on that shard.
  SwitchCacheManager(const SwitchCacheConfig& cfg, const Butterfly& topo,
                     std::uint32_t lineBytes, SimKernel& kernel, const ShardMap& map);

  SnoopOutcome onMessage(SwitchId sw, Cycle now, Message& m,
                         std::vector<Message>& spawn) override;

  /// Install the fault injector (spontaneous entry loss on would-be serves).
  /// May be null — fault-free runs never construct one.
  void setFaultInjector(FaultInjector* fault) { fault_ = fault; }

  [[nodiscard]] bool enabled() const { return cfg_.enabled(); }
  /// Aggregates summed over units post-run (each unit is only written by its
  /// owning shard; these plain fields survive the kernel's stat fold).
  [[nodiscard]] std::uint64_t deposits() const { return sumUnits(&Unit::nDeposits); }
  [[nodiscard]] std::uint64_t serves() const { return sumUnits(&Unit::nServes); }
  [[nodiscard]] std::uint64_t invalidates() const { return sumUnits(&Unit::nInvalidates); }

 private:
  struct Unit {
    SwitchDirCache tags;  ///< reuse the tag array; state Shared == "clean data"
    PortSchedule ports;
    /// Per-switch counters ("sc.<flat>.*"), resolved once at construction.
    CounterHandle deposits, serves, invalidates;
    std::uint64_t nDeposits = 0, nServes = 0, nInvalidates = 0;
    Unit(const SwitchCacheConfig& cfg, std::uint32_t lineBytes)
        : tags(cfg.entries, cfg.associativity, lineBytes, cfg.replacementPolicy),
          ports(cfg.snoopPortsPerCycle) {}
  };

  Unit& unit(SwitchId sw) { return units_[topo_.flat(sw)]; }

  [[nodiscard]] std::uint64_t sumUnits(std::uint64_t Unit::* f) const {
    std::uint64_t n = 0;
    for (const auto& u : units_) n += u.*f;
    return n;
  }

  SwitchCacheConfig cfg_;
  const Butterfly& topo_;
  FaultInjector* fault_ = nullptr;
  /// Stateless across switches; one instance arbitrates every unit.
  std::unique_ptr<SDArbitrationPolicy> arb_;
  std::vector<Unit> units_;
};

/// Chains two snoops: the switch directory decides first (it may sink a
/// request to start a dirty transfer); the switch cache sees the message
/// only if it passed. Delays add (both structures are probed in the same
/// switch pipeline).
class SnoopChain : public ISwitchSnoop {
 public:
  SnoopChain(ISwitchSnoop* first, ISwitchSnoop* second) : first_(first), second_(second) {}

  SnoopOutcome onMessage(SwitchId sw, Cycle now, Message& m,
                         std::vector<Message>& spawn) override {
    SnoopOutcome a{true, 0};
    if (first_ != nullptr) a = first_->onMessage(sw, now, m, spawn);
    if (!a.pass) return a;
    SnoopOutcome b{true, 0};
    if (second_ != nullptr) b = second_->onMessage(sw, now, m, spawn);
    return {b.pass, a.extraDelay + b.extraDelay};
  }

 private:
  ISwitchSnoop* first_;
  ISwitchSnoop* second_;
};

}  // namespace dresar
