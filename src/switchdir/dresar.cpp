#include "switchdir/dresar.h"

#include <stdexcept>

#include "common/log.h"
#include "fault/injector.h"

namespace dresar {

namespace {
NodeMask bit(NodeId n) { return nodeBit(n); }
}  // namespace

DresarManager::DresarManager(const SwitchDirConfig& cfg, const Butterfly& topo,
                             std::uint32_t lineBytes, std::uint32_t numNodes, SimKernel& kernel,
                             const ShardMap& map)
    : cfg_(cfg), topo_(topo), lineBytes_(lineBytes), numNodes_(numNodes) {
  if (numNodes_ > 128)
    throw std::invalid_argument("DresarManager: sharer masks support <= 128 nodes");
  if (cfg_.enabled()) {
    arb_ = makeSdArbitrationPolicy(cfg_.arbitrationPolicy);
    units_.reserve(topo_.totalSwitches());
    for (std::uint32_t i = 0; i < topo_.totalSwitches(); ++i) {
      Unit& u = units_.emplace_back(cfg_, lineBytes);
      StatRegistry& stats = kernel.registry(map.ofSwitch(i));
      const std::string pfx = "sd." + std::to_string(i) + ".";
      u.c.depositSkipped = stats.counterHandle(pfx + "deposit_skipped");
      u.c.writereplyOnTransient = stats.counterHandle(pfx + "writereply_on_transient");
      u.c.deposits = stats.counterHandle(pfx + "deposits");
      u.c.staleSelf = stats.counterHandle(pfx + "stale_self");
      u.c.ctocInitiated = stats.counterHandle(pfx + "ctoc_initiated");
      u.c.readRetries = stats.counterHandle(pfx + "read_retries");
      u.c.writeRetries = stats.counterHandle(pfx + "write_retries");
      u.c.ctocPassedTransient = stats.counterHandle(pfx + "ctoc_passed_transient");
      u.c.copybackServes = stats.counterHandle(pfx + "copyback_serves");
      u.c.writebackServes = stats.counterHandle(pfx + "writeback_serves");
      u.c.ownerRetryBounced = stats.counterHandle(pfx + "owner_retry_bounced");
      u.c.invalSnooped = stats.counterHandle(pfx + "inval_snooped");
    }
  }
}

const SwitchDirCache& DresarManager::cacheAt(SwitchId sw) const {
  return units_.at(topo_.flat(sw)).cache;
}

void DresarManager::setTransient(Unit& u, SDEntry& e, NodeId requester,
                                 std::uint64_t txn) {
  if (e.state != SDState::Transient) ++u.transientCount;
  e.state = SDState::Transient;
  e.requester = requester;
  e.txn = txn;
}

void DresarManager::clearEntry(Unit& u, SDEntry& e) {
  if (e.state == SDState::Transient) --u.transientCount;
  u.cache.invalidate(e);
}

Cycle DresarManager::reservePorts(Unit& u, Cycle now, bool pendingEligible,
                                  SDAccessPhase phase) {
  // Strict <: with N buffer entries, the Nth TRANSIENT entry is the last one
  // that fits, so a full buffer (transientCount == N) falls back to the main
  // directory ports.
  if (cfg_.usePendingBuffer && pendingEligible && u.transientCount < cfg_.pendingBufferEntries) {
    return arb_->reserve(u.pendingPorts, now, phase);
  }
  return arb_->reserve(u.mainPorts, now, phase);
}

SnoopOutcome DresarManager::onMessage(SwitchId sw, Cycle now, Message& m,
                                      std::vector<Message>& spawn) {
  if (!cfg_.enabled()) return {};
  Unit& u = unit(sw);

  switch (m.type) {
    case MsgType::WriteReply: {
      // Ownership grant flowing home -> writer: deposit/update an entry at
      // every switch on the backward path (paper 3.2 "Write Replies").
      const Cycle delay =
          reservePorts(u, now, /*pendingEligible=*/false, SDAccessPhase::Completion);
      SDEntry* e = u.cache.allocate(m.addr);
      if (e == nullptr) {
        ++u.c.depositSkipped;
        return {true, delay};
      }
      if (e->state == SDState::Transient) {
        // Should be unreachable: a write to a block with an in-flight
        // switch-initiated transfer is retried before reaching the home.
        ++u.c.writereplyOnTransient;
        return {true, delay};
      }
      e->state = SDState::Modified;
      e->owner = m.dst.node;
      e->requester = kInvalidNode;
      ++u.deposits;
      ++u.c.deposits;
      return {true, delay};
    }

    case MsgType::ReadRequest: {
      const Cycle delay =
          reservePorts(u, now, /*pendingEligible=*/false, SDAccessPhase::Request);
      SDEntry* e = u.cache.find(m.addr);
      if (e == nullptr) return {true, delay};
      if (e->state == SDState::Modified) {
        if (fault_ != nullptr && fault_->loseSdEntry()) {
          // Injected entry loss on a would-be hit: the paper's hint property
          // says this may only cost the trip to the home's full-map
          // directory, never correctness. TRANSIENT entries are never lost —
          // they track an in-flight transfer, not a hint.
          clearEntry(u, *e);
          return {true, delay};
        }
        if (e->owner == m.requester) {
          // Stale entry: the "owner" itself is asking again (it lost the
          // line since). Drop the entry and let the home service the read.
          ++u.staleSelf;
          ++u.c.staleSelf;
          clearEntry(u, *e);
          return {true, delay};
        }
        // Directory hit: sink the request and re-route a marked c2c request
        // straight to the owner's cache (paper 3.2 "Read Requests").
        const NodeId owner = e->owner;
        setTransient(u, *e, m.requester, m.txn);
        if (tracer_ != nullptr && m.txn != 0) {
          tracer_->record(m.txn, TxnEvent::SwitchIntercept, TxnLeg::Request,
                          txnAtSwitch(topo_.flat(sw)), now);
        }
        Message ctoc;
        ctoc.type = MsgType::CtoCRequest;
        ctoc.src = procEp(m.requester);
        ctoc.dst = procEp(owner);
        ctoc.addr = m.addr;
        ctoc.requester = m.requester;
        ctoc.marked = true;
        ctoc.viaSwitchDir = true;
        ctoc.txn = m.txn;
        spawn.push_back(ctoc);
        ++u.ctocInitiated;
        ++u.c.ctocInitiated;
        return {false, delay};
      }
      // TRANSIENT: a transfer for this block is already in flight from this
      // switch; bounce the requester (design choice in paper 3.2).
      if (tracer_ != nullptr && m.txn != 0) {
        tracer_->record(m.txn, TxnEvent::SwitchRetry, TxnLeg::Request,
                        txnAtSwitch(topo_.flat(sw)), now);
      }
      Message retry;
      retry.type = MsgType::Retry;
      retry.src = procEp(m.requester);
      retry.dst = procEp(m.requester);
      retry.addr = m.addr;
      retry.requester = m.requester;
      retry.marked = true;
      retry.txn = m.txn;
      spawn.push_back(retry);
      ++u.readRetries;
      ++u.c.readRetries;
      return {false, delay};
    }

    case MsgType::WriteRequest: {
      const Cycle delay =
          reservePorts(u, now, /*pendingEligible=*/false, SDAccessPhase::Request);
      SDEntry* e = u.cache.find(m.addr);
      if (e == nullptr) return {true, delay};
      if (e->state == SDState::Modified) {
        clearEntry(u, *e);
        return {true, delay};
      }
      // TRANSIENT: NAK the writer, sink the request (paper 3.2).
      if (tracer_ != nullptr && m.txn != 0) {
        tracer_->record(m.txn, TxnEvent::SwitchRetry, TxnLeg::Request,
                        txnAtSwitch(topo_.flat(sw)), now);
      }
      Message retry;
      retry.type = MsgType::Retry;
      retry.src = procEp(m.requester);
      retry.dst = procEp(m.requester);
      retry.addr = m.addr;
      retry.requester = m.requester;
      retry.marked = true;
      retry.txn = m.txn;
      spawn.push_back(retry);
      ++u.writeRetries;
      ++u.c.writeRetries;
      return {false, delay};
    }

    case MsgType::CtoCRequest: {
      const Cycle delay =
          reservePorts(u, now, /*pendingEligible=*/true, SDAccessPhase::Completion);
      SDEntry* e = u.cache.find(m.addr);
      if (e == nullptr) return {true, delay};
      if (e->state == SDState::Modified) {
        // A transfer (home- or switch-initiated) is about to downgrade the
        // owner; this entry would go stale, drop it (Figure 4a).
        clearEntry(u, *e);
        return {true, delay};
      }
      // TRANSIENT: this switch already initiated a transfer. The paper sinks
      // the request here, but that deadlocks if our own transfer fails (a
      // stale owner bounces it with a Retry and produces no copyback for the
      // home to complete on). Passing is always safe: the owner may serve
      // twice, and duplicate fills/sharer notifications are tolerated.
      ++u.c.ctocPassedTransient;
      return {true, delay};
    }

    case MsgType::CopyBack: {
      const Cycle delay =
          reservePorts(u, now, /*pendingEligible=*/true, SDAccessPhase::Completion);
      SDEntry* e = u.cache.find(m.addr);
      if (e == nullptr) return {true, delay};
      if (e->state == SDState::Transient &&
          (m.carriedSharers & bit(e->requester)) == 0) {
        // The copyback serves a different requester than the one this switch
        // recorded; use its data to answer ours and tell the home about it.
        if (tracer_ != nullptr && e->txn != 0) {
          tracer_->record(e->txn, TxnEvent::SwitchServe, TxnLeg::Forward,
                          txnAtSwitch(topo_.flat(sw)), now);
        }
        Message reply;
        reply.type = MsgType::ReadReply;
        reply.src = procEp(e->requester);
        reply.dst = procEp(e->requester);
        reply.addr = m.addr;
        reply.requester = e->requester;
        reply.marked = true;
        reply.viaSwitchDir = true;
        reply.txn = e->txn;
        spawn.push_back(reply);
        m.carriedSharers |= bit(e->requester);
        m.marked = true;
        ++u.cbServes;
        ++u.c.copybackServes;
      }
      clearEntry(u, *e);
      return {true, delay};
    }

    case MsgType::WriteBack: {
      const Cycle delay =
          reservePorts(u, now, /*pendingEligible=*/true, SDAccessPhase::Completion);
      SDEntry* e = u.cache.find(m.addr);
      if (e == nullptr) return {true, delay};
      if (e->state == SDState::Transient) {
        // The dirty line was evicted before our marked CtoCRequest reached
        // the owner: serve the stored requester from the write-back data and
        // carry its pid to the home (paper 3.2 "Write-Backs and Copy-Backs").
        if (tracer_ != nullptr && e->txn != 0) {
          tracer_->record(e->txn, TxnEvent::SwitchServe, TxnLeg::Forward,
                          txnAtSwitch(topo_.flat(sw)), now);
        }
        Message reply;
        reply.type = MsgType::ReadReply;
        reply.src = procEp(e->requester);
        reply.dst = procEp(e->requester);
        reply.addr = m.addr;
        reply.requester = e->requester;
        reply.marked = true;
        reply.viaSwitchDir = true;
        reply.txn = e->txn;
        spawn.push_back(reply);
        m.carriedSharers |= bit(e->requester);
        m.marked = true;
        ++u.wbServes;
        ++u.c.writebackServes;
      }
      clearEntry(u, *e);
      return {true, delay};
    }

    case MsgType::Retry: {
      // Only owner-generated marked retries heading to the home concern the
      // switch directory: they mean "I could not supply the block" and must
      // clear the initiating TRANSIENT entry and bounce its requester.
      if (!m.marked || m.dst.kind != EndpointKind::Mem) return {};
      const Cycle delay =
          reservePorts(u, now, /*pendingEligible=*/true, SDAccessPhase::Completion);
      SDEntry* e = u.cache.find(m.addr);
      if (e == nullptr || e->state != SDState::Transient) return {true, delay};
      if (tracer_ != nullptr && e->txn != 0) {
        tracer_->record(e->txn, TxnEvent::SwitchRetry, TxnLeg::Retry,
                        txnAtSwitch(topo_.flat(sw)), now);
      }
      Message retry;
      retry.type = MsgType::Retry;
      retry.src = procEp(e->requester);
      retry.dst = procEp(e->requester);
      retry.addr = m.addr;
      retry.requester = e->requester;
      retry.marked = true;
      retry.txn = e->txn;
      spawn.push_back(retry);
      clearEntry(u, *e);
      ++u.c.ownerRetryBounced;
      // Keep travelling: another switch on the owner->home path may hold its
      // own TRANSIENT entry for this block and must be cleared too (sinking
      // here would orphan it). The home drops the message at the end.
      return {true, delay};
    }

    case MsgType::Invalidation: {
      if (!cfg_.snoopInvalidations) return {};
      const Cycle delay =
          reservePorts(u, now, /*pendingEligible=*/true, SDAccessPhase::Completion);
      SDEntry* e = u.cache.find(m.addr);
      if (e != nullptr && e->state == SDState::Modified) {
        clearEntry(u, *e);
        ++u.c.invalSnooped;
      }
      return {true, delay};
    }

    default:
      // ReadReply, CtoCReply, InvalAck need no switch-directory processing.
      return {};
  }
}

std::uint64_t DresarManager::transientEntries() const {
  std::uint64_t n = 0;
  for (const auto& u : units_) n += u.cache.countState(SDState::Transient);
  return n;
}

}  // namespace dresar
