#include "switchdir/switch_cache.h"

#include <stdexcept>

#include "fault/injector.h"

namespace dresar {

SwitchCacheManager::SwitchCacheManager(const SwitchCacheConfig& cfg, const Butterfly& topo,
                                       std::uint32_t lineBytes, SimKernel& kernel,
                                       const ShardMap& map)
    : cfg_(cfg), topo_(topo) {
  if (cfg_.enabled()) {
    arb_ = makeSdArbitrationPolicy(cfg_.arbitrationPolicy);
    units_.reserve(topo_.totalSwitches());
    for (std::uint32_t i = 0; i < topo_.totalSwitches(); ++i) {
      Unit& u = units_.emplace_back(cfg_, lineBytes);
      StatRegistry& stats = kernel.registry(map.ofSwitch(i));
      const std::string pfx = "sc." + std::to_string(i) + ".";
      u.deposits = stats.counterHandle(pfx + "deposits");
      u.serves = stats.counterHandle(pfx + "serves");
      u.invalidates = stats.counterHandle(pfx + "invalidates");
    }
  }
}

SnoopOutcome SwitchCacheManager::onMessage(SwitchId sw, Cycle now, Message& m,
                                           std::vector<Message>& spawn) {
  if (!cfg_.enabled()) return {};
  Unit& u = unit(sw);

  switch (m.type) {
    case MsgType::ReadReply: {
      // Clean data flowing home -> reader: deposit it. Switch-served replies
      // are not re-deposited (they never crossed the home).
      if (m.viaSwitchCache || m.marked) return {};
      const Cycle delay = arb_->reserve(u.ports, now, SDAccessPhase::Completion);
      if (SDEntry* e = u.tags.allocate(m.addr); e != nullptr) {
        e->state = SDState::Shared;  // clean data captured at the switch
        e->owner = kInvalidNode;
        ++u.nDeposits;
        ++u.deposits;
      }
      return {true, delay};
    }

    case MsgType::ReadRequest: {
      const Cycle delay = arb_->reserve(u.ports, now, SDAccessPhase::Request);
      SDEntry* e = u.tags.find(m.addr);
      if (e == nullptr) return {true, delay};
      if (fault_ != nullptr && fault_->loseSdEntry()) {
        // Injected entry loss on a would-be serve: the request falls back to
        // the home, costing one trip but never coherence.
        u.tags.invalidate(*e);
        ++u.nInvalidates;
        ++u.invalidates;
        return {true, delay};
      }
      // Serve the read right here and tell the home about the new sharer.
      Message reply;
      reply.type = MsgType::ReadReply;
      reply.src = procEp(m.requester);
      reply.dst = procEp(m.requester);
      reply.addr = m.addr;
      reply.requester = m.requester;
      reply.viaSwitchCache = true;
      reply.txn = m.txn;
      spawn.push_back(reply);

      Message notify;
      notify.type = MsgType::SharerNotify;
      notify.src = procEp(m.requester);
      notify.dst = m.dst;  // the home this request was heading to
      notify.addr = m.addr;
      notify.requester = m.requester;
      spawn.push_back(notify);

      ++u.nServes;
      ++u.serves;
      return {false, delay};
    }

    // Anything that can make the cached value stale kills the entry.
    case MsgType::WriteRequest:
    case MsgType::WriteReply:
    case MsgType::Invalidation:
    case MsgType::CtoCRequest:
    case MsgType::CopyBack:
    case MsgType::WriteBack: {
      const Cycle delay = arb_->reserve(u.ports, now, SDAccessPhase::Completion);
      if (SDEntry* e = u.tags.find(m.addr); e != nullptr) {
        u.tags.invalidate(*e);
        ++u.nInvalidates;
        ++u.invalidates;
      }
      return {true, delay};
    }

    default:
      return {};
  }
}

}  // namespace dresar
