// Set-associative SRAM switch tag array (paper 4.2), shared by the switch
// *directory* (DRESAR ownership hints) and the switch *cache* (clean-data
// capture). Each entry holds the block tag, one of four states, the owner
// pid and — while TRANSIENT — the pid of the requester the switch is
// serving:
//
//   MODIFIED  — dirty-ownership hint (switch directory).
//   SHARED    — clean data captured at the switch (switch cache).
//   TRANSIENT — an in-flight switch-initiated transfer; pinned: replacement
//               never evicts it, so the transfer can never lose its
//               bookkeeping.
//   INVALID   — free way.
//
// Victim selection, and whether a lookup hit refreshes the recency stamp,
// are delegated to a pluggable SDReplacementPolicy (sd_policy.h): the cache
// collects the evictable ways of the set (every valid way that is not
// pinned TRANSIENT — MODIFIED and SHARED alike) and the policy picks.
// Allocation that finds no evictable way is skipped, which is always
// functionally safe (the request simply proceeds to the home node).
//
// Recency stamps are 64-bit values drawn from a per-cache monotonic tick.
// The tick is explicitly aged: when it reaches `stampAgingThreshold` the
// live stamps are rank-compressed (order-preserving renumbering to 1..n) so
// arbitrarily long runs can never alias or overflow the stamp space. The
// default threshold (2^62) is unreachable in practice; tests lower it to
// exercise the renumbering.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace dresar {

class SDReplacementPolicy;

enum class SDState : std::uint8_t { Invalid, Modified, Shared, Transient };

const char* toString(SDState s);

struct SDEntry {
  Addr tag = kInvalidAddr;       ///< block-aligned address (full tag kept for clarity)
  SDState state = SDState::Invalid;
  NodeId owner = kInvalidNode;
  NodeId requester = kInvalidNode;  ///< valid while TRANSIENT
  std::uint64_t txn = 0;  ///< requester's traced transaction (valid while TRANSIENT)
  std::uint64_t lastUse = 0;

  [[nodiscard]] bool valid() const { return state != SDState::Invalid; }
};

class SwitchDirCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t allocations = 0;
    std::uint64_t evictions = 0;      ///< valid (MODIFIED/SHARED) entries displaced
    std::uint64_t allocFailures = 0;  ///< all ways TRANSIENT, allocation skipped
    std::uint64_t invalidations = 0;
    std::uint64_t stampAgings = 0;    ///< order-preserving stamp renumberings
  };

  /// Stamp-aging threshold far beyond any reachable run length; the explicit
  /// headroom (2^62 << 2^64) guarantees ++tick_ itself can never wrap.
  static constexpr std::uint64_t kDefaultStampAgingThreshold = 1ull << 62;

  /// `replacementPolicy` must name a registered policy (sd_policy.h);
  /// throws std::invalid_argument otherwise.
  SwitchDirCache(std::uint32_t entries, std::uint32_t associativity, std::uint32_t lineBytes,
                 const std::string& replacementPolicy = "lru",
                 std::uint64_t stampAgingThreshold = kDefaultStampAgingThreshold);
  ~SwitchDirCache();

  // Move-only (unique_ptr member); defined in the .cpp where the policy
  // type is complete.
  SwitchDirCache(SwitchDirCache&&) noexcept;
  SwitchDirCache& operator=(SwitchDirCache&&) noexcept;

  /// Lookup without allocation. Returns nullptr on miss. Counts a lookup;
  /// a hit refreshes the recency stamp iff the policy touches on hit.
  SDEntry* find(Addr block);
  [[nodiscard]] const SDEntry* peek(Addr block) const;  ///< no stats/stamp side effects

  /// Find-or-allocate for a deposit. Returns nullptr if every way in the
  /// set is pinned TRANSIENT.
  SDEntry* allocate(Addr block);

  void invalidate(SDEntry& e);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t entries() const { return static_cast<std::uint32_t>(ways_.size()); }
  [[nodiscard]] std::uint32_t associativity() const { return assoc_; }
  [[nodiscard]] const char* replacementPolicyName() const;

  /// Number of live entries in each state (test/invariant support).
  [[nodiscard]] std::uint64_t countState(SDState s) const;

  /// Visit every valid entry (invariant checker support).
  template <typename Fn>
  void forEachValid(Fn&& fn) const {
    for (const auto& e : ways_) {
      if (e.valid()) fn(e);
    }
  }

 private:
  [[nodiscard]] std::size_t setBase(Addr block) const;
  /// Next recency stamp, aging (rank-compressing) the live stamps first when
  /// the tick has reached the threshold.
  std::uint64_t nextStamp();
  void renumberStamps();

  std::uint32_t assoc_;
  std::uint32_t numSets_;
  std::uint32_t lineShift_;
  std::vector<SDEntry> ways_;  ///< numSets_ * assoc_, set-major
  std::unique_ptr<SDReplacementPolicy> policy_;
  bool touchOnHit_;            ///< policy_->touchOnHit(), cached off the hot path
  std::uint64_t tick_ = 0;
  std::uint64_t agingThreshold_;
  std::vector<SDEntry*> victimScratch_;  ///< per-set candidate buffer (assoc_ slots)
  Stats stats_;
};

}  // namespace dresar
