// Set-associative SRAM switch-directory cache (paper 4.2). Each entry holds
// the block tag, one of three states (MODIFIED / TRANSIENT / INVALID), the
// owner pid and — while TRANSIENT — the pid of the requester the switch is
// serving. TRANSIENT entries are pinned: LRU replacement only ever evicts
// MODIFIED entries, so an in-flight switch-initiated transfer can never lose
// its bookkeeping. Allocation that finds no evictable way is skipped, which
// is always functionally safe (the request simply proceeds to the home node).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dresar {

enum class SDState : std::uint8_t { Invalid, Modified, Transient };

const char* toString(SDState s);

struct SDEntry {
  Addr tag = kInvalidAddr;       ///< block-aligned address (full tag kept for clarity)
  SDState state = SDState::Invalid;
  NodeId owner = kInvalidNode;
  NodeId requester = kInvalidNode;  ///< valid while TRANSIENT
  std::uint64_t txn = 0;  ///< requester's traced transaction (valid while TRANSIENT)
  std::uint64_t lastUse = 0;

  [[nodiscard]] bool valid() const { return state != SDState::Invalid; }
};

class SwitchDirCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t allocations = 0;
    std::uint64_t evictions = 0;      ///< MODIFIED entries displaced by LRU
    std::uint64_t allocFailures = 0;  ///< all ways TRANSIENT, allocation skipped
    std::uint64_t invalidations = 0;
  };

  SwitchDirCache(std::uint32_t entries, std::uint32_t associativity, std::uint32_t lineBytes);

  /// Lookup without allocation. Returns nullptr on miss. Counts a lookup.
  SDEntry* find(Addr block);
  [[nodiscard]] const SDEntry* peek(Addr block) const;  ///< no stats side effects

  /// Find-or-allocate for a WriteReply deposit. Returns nullptr if every way
  /// in the set is pinned TRANSIENT.
  SDEntry* allocate(Addr block);

  void invalidate(SDEntry& e);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t entries() const { return static_cast<std::uint32_t>(ways_.size()); }
  [[nodiscard]] std::uint32_t associativity() const { return assoc_; }

  /// Number of live entries in each state (test/invariant support).
  [[nodiscard]] std::uint64_t countState(SDState s) const;

  /// Visit every valid entry (invariant checker support).
  template <typename Fn>
  void forEachValid(Fn&& fn) const {
    for (const auto& e : ways_) {
      if (e.valid()) fn(e);
    }
  }

 private:
  [[nodiscard]] std::size_t setBase(Addr block) const;

  std::uint32_t assoc_;
  std::uint32_t numSets_;
  std::uint32_t lineShift_;
  std::vector<SDEntry> ways_;  ///< numSets_ * assoc_, set-major
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace dresar
