// DRESAR — the DiRectory Embedded Switch ARchitecture (paper Section 4).
// One DresarManager observes every message traversing every switch of the
// BMIN (via the Network snoop hook) and implements the switch-directory
// protocol of Figure 4 / Table 1:
//
//   * WriteReply (home -> writer) deposits {MODIFIED, owner} at each switch
//     on its backward path.
//   * ReadRequest hitting MODIFIED is sunk; the entry goes TRANSIENT and a
//     *marked* CtoCRequest is re-routed to the owner's cache.
//   * ReadRequest hitting TRANSIENT is sunk and the requester told to Retry.
//   * WriteRequest hitting MODIFIED invalidates the entry and proceeds;
//     hitting TRANSIENT it is sunk and the writer told to Retry.
//   * Home-generated CtoCRequests invalidate MODIFIED entries, and are sunk
//     at TRANSIENT entries (the marked CopyBack completes both transactions).
//   * CopyBack / WriteBack invalidate entries; while TRANSIENT, a passing
//     WriteBack (or a CopyBack that served a different requester) supplies
//     the data for a switch-generated ReadReply to the stored requester, and
//     the message is annotated with the served pid so the home's full-map
//     directory stays exact ("marked writeback/copyback", paper 3.2).
//   * A marked Retry from an owner that could no longer supply the block
//     clears the initiating TRANSIENT entry and bounces the requester.
//
// Port contention is modeled per paper 4.2/4.3: request-side snoops share the
// 2-way multiported main directory; transient-state checks use the 4-way
// multiported pending buffer when the number of TRANSIENT entries fits.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "interconnect/network.h"
#include "switchdir/dir_cache.h"
#include "switchdir/port_schedule.h"
#include "switchdir/sd_policy.h"

namespace dresar {

class DresarManager : public ISwitchSnoop {
 public:
  /// Each switch unit's counters register in the registry of the shard that
  /// owns the switch (per `map`), since onMessage runs on that shard.
  DresarManager(const SwitchDirConfig& cfg, const Butterfly& topo, std::uint32_t lineBytes,
                std::uint32_t numNodes, SimKernel& kernel, const ShardMap& map);

  SnoopOutcome onMessage(SwitchId sw, Cycle now, Message& m,
                         std::vector<Message>& spawn) override;

  /// Install the transaction tracer (snoop-outcome events). May be null.
  void setTracer(TxnTracer* tracer) { tracer_ = tracer; }

  /// Install the fault injector (spontaneous entry loss on would-be hits).
  /// May be null — fault-free runs never construct one.
  void setFaultInjector(FaultInjector* fault) { fault_ = fault; }

  [[nodiscard]] const SwitchDirCache& cacheAt(SwitchId sw) const;
  [[nodiscard]] bool enabled() const { return cfg_.enabled(); }

  /// Aggregate counters (sums over all switches), for benches and tests.
  /// Each bump lands in the unit touched by the executing shard; the sums
  /// are read post-run, after the kernel's window barriers have quiesced.
  [[nodiscard]] std::uint64_t ctocInitiated() const { return sumUnits(&Unit::ctocInitiated); }
  [[nodiscard]] std::uint64_t readRetries() const { return sumUnits(&Unit::readRetries); }
  [[nodiscard]] std::uint64_t writeRetries() const { return sumUnits(&Unit::writeRetries); }
  [[nodiscard]] std::uint64_t writeBackServes() const { return sumUnits(&Unit::wbServes); }
  [[nodiscard]] std::uint64_t copyBackServes() const { return sumUnits(&Unit::cbServes); }
  [[nodiscard]] std::uint64_t deposits() const { return sumUnits(&Unit::deposits); }
  [[nodiscard]] std::uint64_t staleSelfHits() const { return sumUnits(&Unit::staleSelf); }

  /// Invariant support: total TRANSIENT entries across switches (must be zero
  /// at quiesce).
  [[nodiscard]] std::uint64_t transientEntries() const;

 private:
  /// Per-switch counters ("sd.<flat>.*"), resolved once at construction.
  struct Counters {
    CounterHandle depositSkipped, writereplyOnTransient, deposits, staleSelf, ctocInitiated,
        readRetries, writeRetries, ctocPassedTransient, copybackServes, writebackServes,
        ownerRetryBounced, invalSnooped;
  };

  struct Unit {
    SwitchDirCache cache;
    PortSchedule mainPorts;
    PortSchedule pendingPorts;
    std::uint32_t transientCount = 0;
    Counters c;
    /// Manager-level aggregates, kept per unit so each shard only writes the
    /// units it owns; the accessors above sum them post-run. Unlike the
    /// registry counters these survive the kernel's stat fold.
    std::uint64_t ctocInitiated = 0, readRetries = 0, writeRetries = 0, wbServes = 0,
        cbServes = 0, deposits = 0, staleSelf = 0;

    Unit(const SwitchDirConfig& cfg, std::uint32_t lineBytes)
        : cache(cfg.entries, cfg.associativity, lineBytes, cfg.replacementPolicy),
          mainPorts(cfg.snoopPortsPerCycle),
          pendingPorts(cfg.snoopPortsPerCycle * 2) {}
  };

  [[nodiscard]] std::uint64_t sumUnits(std::uint64_t Unit::* f) const {
    std::uint64_t n = 0;
    for (const auto& u : units_) n += u.*f;
    return n;
  }

  Unit& unit(SwitchId sw) { return units_[topo_.flat(sw)]; }

  void setTransient(Unit& u, SDEntry& e, NodeId requester, std::uint64_t txn);
  void clearEntry(Unit& u, SDEntry& e);

  /// Reserve directory access ports; returns the contention delay. The
  /// arbitration policy sees the access's protocol phase; which SRAM is
  /// probed (main directory vs pending buffer) stays a structural property
  /// of the message class, per paper 4.3.
  Cycle reservePorts(Unit& u, Cycle now, bool pendingEligible, SDAccessPhase phase);

  SwitchDirConfig cfg_;
  const Butterfly& topo_;
  std::uint32_t lineBytes_;
  std::uint32_t numNodes_;
  TxnTracer* tracer_ = nullptr;
  FaultInjector* fault_ = nullptr;
  /// Stateless across switches; one instance arbitrates every unit.
  std::unique_ptr<SDArbitrationPolicy> arb_;
  std::vector<Unit> units_;
};

}  // namespace dresar
