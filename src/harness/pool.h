// Work-stealing thread pool for sweep jobs. Simulation jobs vary in cost by
// orders of magnitude (GAUSS @ paper scale vs a 200K-ref trace), so static
// partitioning would leave workers idle; each worker owns a deque seeded
// round-robin, pops from its own front, and steals from the back of a
// victim's deque when it runs dry — classic owner-front/thief-back so steals
// grab the work the owner would reach last.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace dresar::harness {

/// Thrown by WorkStealingPool::forEach when one or more jobs threw. Every
/// failure is preserved with its job index so the caller can name the job
/// (config tag, seed) instead of reporting an anonymous first-to-fail error,
/// and so results of the jobs that *did* complete are never discarded — the
/// pool always finishes the remaining queue before throwing.
class PoolError : public std::runtime_error {
 public:
  struct Failure {
    std::size_t job;    ///< index passed to fn
    std::string what;   ///< the job exception's message
  };

  explicit PoolError(std::vector<Failure> failures)
      : std::runtime_error(describe(failures)), failures_(std::move(failures)) {}

  [[nodiscard]] const std::vector<Failure>& failures() const { return failures_; }

 private:
  static std::string describe(const std::vector<Failure>& fs);

  std::vector<Failure> failures_;
};

class WorkStealingPool {
 public:
  /// `threads` == 0 or 1 runs everything inline on the calling thread.
  explicit WorkStealingPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {}

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Execute fn(jobIndex, workerIndex) for every jobIndex in [0, n).
  /// workerIndex < threads() identifies the executing worker so callers can
  /// keep per-worker accumulators without locks. Blocks until all jobs
  /// finished; a throwing job never cancels its siblings — every remaining
  /// job still runs, and the failures are reported together as one PoolError
  /// (ordered by job index) after the join.
  void forEach(std::size_t n, const std::function<void(std::size_t, unsigned)>& fn);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> jobs;
  };

  unsigned threads_;
};

}  // namespace dresar::harness
