// Work-stealing thread pool for sweep jobs. Simulation jobs vary in cost by
// orders of magnitude (GAUSS @ paper scale vs a 200K-ref trace), so static
// partitioning would leave workers idle; each worker owns a deque seeded
// round-robin, pops from its own front, and steals from the back of a
// victim's deque when it runs dry — classic owner-front/thief-back so steals
// grab the work the owner would reach last.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace dresar::harness {

class WorkStealingPool {
 public:
  /// `threads` == 0 or 1 runs everything inline on the calling thread.
  explicit WorkStealingPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {}

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Execute fn(jobIndex, workerIndex) for every jobIndex in [0, n).
  /// workerIndex < threads() identifies the executing worker so callers can
  /// keep per-worker accumulators without locks. Blocks until all jobs
  /// finished; if any invocation threw, the first exception (in completion
  /// order) is rethrown after the join.
  void forEach(std::size_t n, const std::function<void(std::size_t, unsigned)>& fn);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> jobs;
  };

  unsigned threads_;
};

}  // namespace dresar::harness
