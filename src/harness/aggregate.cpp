#include "harness/aggregate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/json_writer.h"

namespace dresar::harness {

MetricSummary summarize(const std::vector<double>& xs) {
  MetricSummary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    if (x < s.min) s.min = x;
    if (x > s.max) s.max = x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double sq = 0.0;
  for (const double x : xs) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(xs.size()));
  return s;
}

std::vector<ConfigAggregate> aggregate(const std::vector<RunRecord>& runs) {
  std::vector<ConfigAggregate> out;
  std::size_t i = 0;
  while (i < runs.size()) {
    // Runs are canonically sorted, so a cell's replicas are contiguous.
    std::size_t j = i;
    while (j < runs.size() && runs[j].app == runs[i].app && runs[j].config == runs[i].config &&
           runs[j].kind == runs[i].kind) {
      ++j;
    }
    ConfigAggregate agg;
    agg.app = runs[i].app;
    agg.config = runs[i].config;
    agg.kind = runs[i].kind;
    agg.sdEntries = runs[i].sdEntries;
    agg.replicas = j - i;
    for (const auto& [name, first] : runs[i].metrics) {
      std::vector<double> xs;
      xs.reserve(j - i);
      xs.push_back(first);
      for (std::size_t k = i + 1; k < j; ++k) {
        for (const auto& [n2, v2] : runs[k].metrics) {
          if (n2 == name) {
            xs.push_back(v2);
            break;
          }
        }
      }
      agg.metrics.emplace_back(name, summarize(xs));
    }
    out.push_back(std::move(agg));
    i = j;
  }
  return out;
}

std::vector<MetricDelta> compareMetrics(
    const std::vector<std::pair<std::string, double>>& baseline,
    const std::vector<std::pair<std::string, double>>& current) {
  std::vector<MetricDelta> out;
  for (const auto& [name, cur] : current) {
    for (const auto& [bname, base] : baseline) {
      if (bname != name) continue;
      MetricDelta d;
      d.name = name;
      d.baseline = base;
      d.current = cur;
      d.pct = base != 0.0 ? (cur - base) / base * 100.0 : 0.0;
      out.push_back(std::move(d));
      break;
    }
  }
  return out;
}

std::string sweepToJson(const RunRecorder& merged, const std::vector<ConfigAggregate>& configs,
                        const SweepJsonOptions& opts) {
  std::ostringstream os;
  JsonWriter w(os);
  const std::vector<RunRecord>& allRuns = merged.runs();
  // Traffic-free, fault-free sweeps stay byte-identical to the historical v3
  // output (precedence: congestion > traffic > fault > v3).
  const bool anyFault = std::any_of(allRuns.begin(), allRuns.end(),
                                    [](const RunRecord& r) { return r.hasFault; });
  const bool anyTraffic = std::any_of(allRuns.begin(), allRuns.end(),
                                      [](const RunRecord& r) { return r.hasTraffic; });
  const bool anyCongestion = std::any_of(allRuns.begin(), allRuns.end(),
                                         [](const RunRecord& r) { return r.hasCongestion; });
  w.beginObject();
  w.field("schema", anyCongestion ? kSweepSchemaCongestion
                  : anyTraffic    ? kSweepSchemaTraffic
                  : anyFault      ? kSweepSchemaFault
                                  : kSweepSchema);
  w.field("bench", "dresar-sweep");
  w.field("spec", opts.specName);
  w.key("options");
  w.beginObject();
  for (const auto& [k, v] : opts.options) w.field(k, v);
  w.endObject();
  const std::vector<RunRecord>& runs = merged.runs();
  if (!opts.deterministic) {
    // Worker count and wall time describe the machine, not the experiment;
    // deterministic mode drops them so any --jobs=N serializes identically.
    w.field("jobs", static_cast<std::uint64_t>(opts.jobs));
    double wallTotal = 0.0;
    for (const RunRecord& r : runs) wallTotal += r.wallSeconds;
    w.field("wall_seconds_total", wallTotal);
  }

  w.key("runs");
  w.beginArray();
  for (const RunRecord& r : runs) {
    w.beginObject();
    w.field("app", r.app);
    w.field("config", r.config);
    w.field("kind", r.kind);
    w.field("sd_entries", r.sdEntries);
    if (r.seed != 0) w.field("seed", r.seed);
    if (!opts.deterministic) w.field("wall_seconds", r.wallSeconds);
    w.field("events", r.events);
    w.key("metrics");
    w.beginObject();
    for (const auto& [k, v] : r.metrics) w.field(k, v);
    w.endObject();
    if (r.hasFault) {
      w.key("fault");
      w.beginObject();
      w.field("injected_drops", r.faultInjectedDrops);
      w.field("injected_delays", r.faultInjectedDelays);
      w.field("injected_delay_cycles", r.faultInjectedDelayCycles);
      w.field("injected_sd_losses", r.faultInjectedSdLosses);
      w.field("injected_stall_cycles", r.faultInjectedStallCycles);
      w.field("injected_effective", r.faultInjectedEffective);
      w.field("timeout_reissues", r.faultTimeoutReissues);
      w.field("recovered", r.faultRecovered);
      w.field("fallback_home_lookups", r.faultFallbackHomeLookups);
      w.endObject();
    }
    if (r.hasTraffic) writeTrafficJson(w, r);
    if (r.hasCongestion) writeCongestionJson(w, r);
    w.endObject();
  }
  w.endArray();

  w.key("configs");
  w.beginArray();
  for (const ConfigAggregate& c : configs) {
    w.beginObject();
    w.field("app", c.app);
    w.field("config", c.config);
    w.field("kind", c.kind);
    w.field("sd_entries", c.sdEntries);
    w.field("replicas", c.replicas);
    w.key("metrics");
    w.beginObject();
    for (const auto& [name, s] : c.metrics) {
      w.key(name);
      w.beginObject();
      w.field("mean", s.mean);
      w.field("stddev", s.stddev);
      w.field("min", s.min);
      w.field("max", s.max);
      w.endObject();
    }
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << '\n';
  return os.str();
}

}  // namespace dresar::harness
