// Baseline comparison — the regression gate. Loads a prior sweep document
// (schema v3, or a v2 bench document as a degenerate single-replica case),
// matches config cells by (app, config, kind) against the current
// aggregates, and flags any watched metric whose mean worsened beyond the
// threshold. Watched metrics are latency/cycle-count quantities where higher
// is strictly worse; throughput-like counters are reported but never gate.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/aggregate.h"

namespace dresar::harness {

/// Metrics the gate fails on (higher = worse), checked when present.
const std::vector<std::string>& watchedMetrics();

struct RegressionItem {
  std::string app;
  std::string config;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double pct = 0.0;      ///< signed change, + = worse
  bool regression = false;  ///< pct > threshold on a watched metric
};

struct RegressionReport {
  double thresholdPct = 5.0;
  std::vector<RegressionItem> items;      ///< watched-metric comparisons only
  std::vector<std::string> missingInBaseline;  ///< configs the baseline lacks
  std::vector<std::string> missingInCurrent;   ///< baseline configs we did not run

  [[nodiscard]] bool ok() const {
    for (const RegressionItem& i : items) {
      if (i.regression) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t regressions() const {
    std::size_t n = 0;
    for (const RegressionItem& i : items) n += i.regression ? 1 : 0;
    return n;
  }

  /// Human-readable summary (regressions first, then the largest movers).
  void print(std::ostream& os) const;
};

/// Parse a baseline JSON document (file contents) into per-config mean
/// metrics. Accepts v3 ("configs") and v1/v2/v3 ("runs") documents.
/// Throws std::runtime_error on malformed input.
std::vector<ConfigAggregate> loadBaseline(const std::string& jsonText);
std::vector<ConfigAggregate> loadBaselineFile(const std::string& path);

/// Compare current aggregates against the baseline.
RegressionReport compareAgainstBaseline(const std::vector<ConfigAggregate>& baseline,
                                        const std::vector<ConfigAggregate>& current,
                                        double thresholdPct);

}  // namespace dresar::harness
