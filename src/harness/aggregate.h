// Cross-run aggregation and the sweep result document.
//
// Schema "dresar-bench-results/v3" — the sweep harness's aggregated output.
// v2 -> v3: "runs" may hold many seed replicas per config cell (each with a
// "seed" key when > 1) and is canonically sorted by (app, config, seed);
// a new top-level "configs" array summarizes every (app, config) cell with
// per-metric mean/stddev/min/max over its replicas. Timing fields are
// omitted entirely in deterministic mode so `--jobs=1` and `--jobs=N`
// documents are byte-identical.
//
//   {
//     "schema": "dresar-bench-results/v3",
//     "bench": "dresar-sweep",
//     "spec": "<sweep name>",
//     "options": { ... },
//     "jobs": <uint>,                      // worker threads used
//     "wall_seconds_total": <double>,      // omitted in deterministic mode
//     "runs": [ ... v2-shaped run records, sorted, plus "seed" ... ],
//     "configs": [
//       { "app": "FFT", "config": "sd-512", "kind": "scientific",
//         "sd_entries": 512, "replicas": 3,
//         "metrics": { "exec_time": { "mean": .., "stddev": ..,
//                                     "min": .., "max": .. }, ... } }, ...
//     ]
//   }
//
// v3 -> v4: a sweep with at least one fault-injection run carries schema
// "dresar-bench-results/v4" and each such run an extra "fault" object (same
// shape as the bench-document v4, see sim/run_recorder.h). Fault-free
// sweeps keep emitting v3 byte-for-byte.
//
// v4 -> v5: a sweep with at least one multi-tenant traffic run ("oltp"/"kv")
// carries schema "dresar-bench-results/v5" and each such run an extra
// "traffic" object (same shape as the bench-document v5, see
// sim/run_recorder.h). Precedence: traffic > fault > v3.
//
// v5 -> v6: a sweep with at least one congestion-lab run ("hotspot"/"incast"
// profiles or the flit-level network) carries schema
// "dresar-bench-results/v6" and each such run an extra "congestion" object
// (same shape as the bench-document v6, see sim/run_recorder.h).
// Precedence: congestion > traffic > fault > v3.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/run_recorder.h"

namespace dresar::harness {

inline constexpr const char* kSweepSchema = "dresar-bench-results/v3";
inline constexpr const char* kSweepSchemaFault = "dresar-bench-results/v4";
inline constexpr const char* kSweepSchemaTraffic = "dresar-bench-results/v5";
inline constexpr const char* kSweepSchemaCongestion = "dresar-bench-results/v6";

struct MetricSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population stddev over replicas
  double min = 0.0;
  double max = 0.0;
};

/// Summary statistics over one metric's replica observations.
MetricSummary summarize(const std::vector<double>& xs);

/// One (app, config) cell: per-metric statistics over its seed replicas.
struct ConfigAggregate {
  std::string app;
  std::string config;
  std::string kind;
  std::uint64_t sdEntries = 0;
  std::uint64_t replicas = 0;
  std::vector<std::pair<std::string, MetricSummary>> metrics;  ///< first-replica order
};

/// Group canonically-sorted runs into config cells. Runs must already be
/// sorted (RunRecorder::sortCanonical()); the output preserves that order.
std::vector<ConfigAggregate> aggregate(const std::vector<RunRecord>& runs);

/// One metric's baseline-vs-current comparison (positive pct = increase).
struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double pct = 0.0;  ///< (current - baseline) / baseline * 100; 0 when baseline == 0
};

/// Positionally compare two metric maps by name (shared by the harness
/// aggregator's console diff and the baseline regression gate).
std::vector<MetricDelta> compareMetrics(
    const std::vector<std::pair<std::string, double>>& baseline,
    const std::vector<std::pair<std::string, double>>& current);

struct SweepJsonOptions {
  std::string specName;
  std::vector<std::pair<std::string, std::string>> options;  ///< echoed verbatim
  unsigned jobs = 1;
  bool deterministic = false;  ///< omit wall-clock fields
};

/// Serialize the full v3 document from the merged recorder + aggregates.
std::string sweepToJson(const RunRecorder& merged, const std::vector<ConfigAggregate>& configs,
                        const SweepJsonOptions& opts);

}  // namespace dresar::harness
