// Declarative sweep specifications. A spec file is a flat `key = value`
// document (''#'' comments, blank lines ignored); multi-valued keys take
// comma-separated lists and the expansion is the full cross product:
//
//   # sweeps/paper_all.spec
//   name = paper_all
//   workloads = fft, tc, sor, fwa, gauss, tpcc, tpcd
//   entries = 0, 256, 512, 1024, 2048    # 0 = Base system
//   assoc = 4
//   pending_buffer = 16
//   seeds = 1                            # replicas per config cell
//   scale = paper                        # tiny | default | paper
//   trace_refs = 16000000
//
// expand() turns this into workload x entries x assoc x pending_buffer x
// seed JobSpecs. Unknown keys and malformed values are hard errors with the
// line number, so a typo'd sweep fails before burning hours of simulation.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "harness/job.h"

namespace dresar::harness {

struct SweepSpec {
  std::string name = "sweep";
  std::vector<std::string> workloads;            ///< fft/tc/sor/fwa/gauss/tpcc/tpcd
  std::vector<std::uint32_t> entries = {0, 256, 512, 1024, 2048};
  std::vector<std::uint32_t> assoc = {4};
  std::vector<std::uint32_t> pendingBuffer = {16};
  std::uint64_t seeds = 1;                       ///< replicas per config cell
  std::string scale = "default";                 ///< tiny | default | paper
  std::uint64_t traceRefs = 1'000'000;

  /// Parse from a stream / file. Throws std::runtime_error with
  /// "<source>:<line>: ..." context on any malformed or unknown input.
  static SweepSpec parse(std::istream& in, const std::string& source = "<spec>");
  static SweepSpec parseFile(const std::string& path);

  /// The full job matrix, in deterministic spec order (workload-major, then
  /// entries, assoc, pending buffer, seed).
  [[nodiscard]] std::vector<JobSpec> expand() const;

  /// Total matrix size without materializing it.
  [[nodiscard]] std::size_t jobCount() const {
    return workloads.size() * entries.size() * assoc.size() * pendingBuffer.size() *
           static_cast<std::size_t>(seeds);
  }

  /// Problem-size override used by `dresar-sweep --quick` / `--paper`.
  void overrideScale(const std::string& s);
};

}  // namespace dresar::harness
