// Declarative sweep specifications. A spec file is a flat `key = value`
// document (''#'' comments, blank lines ignored); multi-valued keys take
// comma-separated lists and the expansion is the full cross product:
//
//   # sweeps/paper_all.spec
//   name = paper_all
//   workloads = fft, tc, sor, fwa, gauss, tpcc, tpcd
//   entries = 0, 256, 512, 1024, 2048    # 0 = Base system
//   assoc = 4
//   pending_buffer = 16
//   nodes = 16, 32, 64, 128              # system sizes (BMIN depth derived)
//   sd_policy = lru, random-phase        # replacement[-arbitration] cells
//   seeds = 1                            # replicas per config cell
//   scale = paper                        # tiny | default | paper
//   trace_refs = 16000000
//
// Fault-injection campaigns (execution-driven workloads only) add:
//
//   fault_drop_rate = 0, 0.02            # per-eligible-message drop prob.
//   fault_delay_rate = 0.02              # per-eligible-message delay prob.
//   fault_sd_loss_rate = 0.1             # switch-dir entry loss per hit
//   fault_seed = 7                       # injector RNG base seed
//   fault_link_stall = 0,1,1000,500      # stage,port,startCycle,lenCycles
//
// Traffic campaigns (workloads oltp / kv, the multi-tenant traffic models)
// add axes over the model's tenancy and load shape:
//
//   tenants = 2, 4, 8                    # tenant count per model
//   skew = 0.6, 0.9, 1.2                 # per-tenant key Zipf exponent
//   burst = 1, 4, 8                      # burst-window load multiplier
//   mix = readmostly, writeheavy         # write-fraction cell
//
// Execution-driven sweeps may also shard the event kernel:
//
//   sim_threads = 1, 4                   # sim worker threads per job
//
// Congestion campaigns (execution-driven workloads; offered_load additionally
// requires the hotspot/incast congestion profiles) add:
//
//   routing = lca, adaptive              # interconnect routing policy
//   offered_load = 0.5, 1, 2, 4          # arrival-rate multiplier (x-axis)
//   flit_level = 0, 1                    # message-level vs wormhole network
//
// expand() turns this into workload x entries x assoc x pending_buffer x
// nodes x sd_policy x fault-rate x traffic x seed JobSpecs. Unknown keys and
// malformed values are hard errors with the line number, so a typo'd sweep
// fails before burning hours of simulation.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "harness/job.h"

namespace dresar::harness {

/// One point on the sd_policy axis: a replacement policy plus an arbitration
/// policy. Spec syntax is "repl-arb" ("random-phase") or a bare replacement
/// name ("fifo"), which keeps the default fifo arbitration.
struct SdPolicyChoice {
  std::string replacement = "lru";
  std::string arbitration = "fifo";
  bool operator==(const SdPolicyChoice&) const = default;

  [[nodiscard]] bool isDefault() const {
    return replacement == "lru" && arbitration == "fifo";
  }
  /// Canonical spelling ("lru-fifo") used in recorder options and errors.
  [[nodiscard]] std::string label() const { return replacement + "-" + arbitration; }
};

struct SweepSpec {
  std::string name = "sweep";
  std::vector<std::string> workloads;  ///< fft/tc/sor/fwa/gauss/tpcc/tpcd/oltp/kv
  std::vector<std::uint32_t> entries = {0, 256, 512, 1024, 2048};
  std::vector<std::uint32_t> assoc = {4};
  std::vector<std::uint32_t> pendingBuffer = {16};
  /// System sizes (the nodes axis of the scaling study). The BMIN depth is
  /// derived per size; every value is validated against the radix at parse
  /// time.
  std::vector<std::uint32_t> nodes = {16};
  /// Switch-directory policy cells (replacement x arbitration, see the
  /// sd_policy key). The default single cell is the paper's fixed LRU/FIFO
  /// organization and keeps the sweep byte-identical to pre-policy output.
  std::vector<SdPolicyChoice> sdPolicy = {{}};
  std::uint64_t seeds = 1;                       ///< replicas per config cell
  std::string scale = "default";                 ///< tiny | default | paper
  std::uint64_t traceRefs = 1'000'000;
  /// Fault axes; {0} / inactive keep the sweep fault-free and byte-identical
  /// to the pre-fault output. Replica k>1 of a faulted cell runs with
  /// injector seed faultSeed + (k-1).
  std::vector<double> faultDropRate = {0.0};
  std::vector<double> faultDelayRate = {0.0};
  std::vector<double> faultSdLossRate = {0.0};
  std::uint64_t faultSeed = 1;
  LinkStallSpec faultLinkStall{};
  /// Traffic axes (traffic workloads only). The sentinel single-cell
  /// defaults mean "profile default" and keep non-traffic sweeps exactly as
  /// before; any explicit value restricts the sweep to oltp/kv workloads.
  std::vector<std::uint32_t> trafficTenants = {0};
  std::vector<double> trafficSkew = {-1.0};
  std::vector<double> trafficBurst = {0.0};
  std::vector<std::string> trafficMix = {"readmostly"};
  /// Simulation-kernel worker threads per job (execution-driven workloads
  /// only). The default single cell {1} is the sequential kernel and keeps
  /// sweeps byte-identical to pre-sharding output.
  std::vector<std::uint32_t> simThreads = {1};
  /// Congestion axes (execution-driven workloads only). Defaults are the
  /// deterministic baseline and keep every existing sweep byte-identical:
  /// routing "lca", offered_load sentinel 0 (profile nominal rate; only the
  /// hotspot/incast profiles accept other values), message-level network.
  std::vector<std::string> routing = {"lca"};
  std::vector<double> offeredLoad = {0.0};
  std::vector<std::uint32_t> flitLevel = {0};

  /// True when any fault axis can produce an injecting run.
  [[nodiscard]] bool hasFaultAxes() const;
  /// True when any traffic axis was explicitly set (non-sentinel cell).
  [[nodiscard]] bool hasTrafficAxes() const;

  /// Parse from a stream / file. Throws std::runtime_error with
  /// "<source>:<line>: ..." context on any malformed or unknown input.
  static SweepSpec parse(std::istream& in, const std::string& source = "<spec>");
  static SweepSpec parseFile(const std::string& path);

  /// The full job matrix, in deterministic spec order (workload-major, then
  /// entries, assoc, pending buffer, nodes, sd policy, fault rates, traffic
  /// axes, sim threads, seed).
  [[nodiscard]] std::vector<JobSpec> expand() const;

  /// Total matrix size without materializing it.
  [[nodiscard]] std::size_t jobCount() const {
    return workloads.size() * entries.size() * assoc.size() * pendingBuffer.size() *
           nodes.size() * sdPolicy.size() * faultDropRate.size() *
           faultDelayRate.size() * faultSdLossRate.size() * trafficTenants.size() *
           trafficSkew.size() * trafficBurst.size() * trafficMix.size() *
           simThreads.size() * routing.size() * offeredLoad.size() * flitLevel.size() *
           static_cast<std::size_t>(seeds);
  }

  /// Problem-size override used by `dresar-sweep --quick` / `--paper`.
  void overrideScale(const std::string& s);
};

}  // namespace dresar::harness
