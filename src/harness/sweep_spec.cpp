#include "harness/sweep_spec.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dresar::harness {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> splitList(const std::string& v) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    std::size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    out.push_back(trim(v.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

[[noreturn]] void fail(const std::string& source, int line, const std::string& why) {
  throw std::runtime_error(source + ":" + std::to_string(line) + ": " + why);
}

std::uint64_t parseUnsigned(const std::string& source, int line, const std::string& s,
                            std::uint64_t max) {
  std::uint64_t v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, 10);
  if (s.empty() || ec != std::errc() || ptr != last || v > max) {
    fail(source, line, "expected an unsigned integer, got '" + s + "'");
  }
  return v;
}

std::vector<std::uint32_t> parseU32List(const std::string& source, int line,
                                        const std::string& v, bool allowZero) {
  std::vector<std::uint32_t> out;
  for (const std::string& item : splitList(v)) {
    const std::uint64_t x = parseUnsigned(source, line, item, UINT32_MAX);
    if (x == 0 && !allowZero) fail(source, line, "value must be positive: '" + item + "'");
    out.push_back(static_cast<std::uint32_t>(x));
  }
  if (out.empty()) fail(source, line, "list must not be empty");
  return out;
}

bool isTraceWorkload(const std::string& w) { return w == "tpcc" || w == "tpcd"; }

}  // namespace

SweepSpec SweepSpec::parse(std::istream& in, const std::string& source) {
  SweepSpec spec;
  spec.workloads = {"fft", "tc", "sor", "fwa", "gauss", "tpcc", "tpcd"};

  static const std::set<std::string> knownWorkloads = {"fft", "tc",   "sor", "fwa",
                                                       "gauss", "tpcc", "tpcd"};
  std::set<std::string> seenKeys;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    if (const std::size_t hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    const std::string t = trim(raw);
    if (t.empty()) continue;
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) fail(source, line, "expected 'key = value', got '" + t + "'");
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) fail(source, line, "empty key");
    if (value.empty()) fail(source, line, "empty value for '" + key + "'");
    if (!seenKeys.insert(key).second) fail(source, line, "duplicate key '" + key + "'");

    if (key == "name") {
      spec.name = value;
    } else if (key == "workloads") {
      spec.workloads = splitList(value);
      for (const std::string& w : spec.workloads) {
        if (knownWorkloads.count(w) == 0) fail(source, line, "unknown workload '" + w + "'");
      }
      if (spec.workloads.empty()) fail(source, line, "workloads list must not be empty");
    } else if (key == "entries") {
      spec.entries = parseU32List(source, line, value, /*allowZero=*/true);
    } else if (key == "assoc") {
      spec.assoc = parseU32List(source, line, value, /*allowZero=*/false);
    } else if (key == "pending_buffer") {
      spec.pendingBuffer = parseU32List(source, line, value, /*allowZero=*/false);
    } else if (key == "seeds") {
      spec.seeds = parseUnsigned(source, line, value, 10'000);
      if (spec.seeds == 0) fail(source, line, "seeds must be positive");
    } else if (key == "scale") {
      if (value != "tiny" && value != "default" && value != "paper") {
        fail(source, line, "scale must be tiny|default|paper, got '" + value + "'");
      }
      spec.scale = value;
    } else if (key == "trace_refs") {
      spec.traceRefs = parseUnsigned(source, line, value, UINT64_MAX);
      if (spec.traceRefs == 0) fail(source, line, "trace_refs must be positive");
    } else {
      fail(source, line, "unknown key '" + key + "'");
    }
  }
  return spec;
}

SweepSpec SweepSpec::parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open sweep spec '" + path + "'");
  return parse(in, path);
}

void SweepSpec::overrideScale(const std::string& s) {
  scale = s;
  if (s == "tiny") {
    traceRefs = std::min<std::uint64_t>(traceRefs, 200'000);
  } else if (s == "paper") {
    traceRefs = 16'000'000;
  }
}

std::vector<JobSpec> SweepSpec::expand() const {
  WorkloadScale ws;
  if (scale == "tiny") {
    ws = WorkloadScale::tiny();
  } else if (scale == "paper") {
    ws = WorkloadScale::paper();
  }

  std::vector<JobSpec> jobs;
  jobs.reserve(jobCount());
  for (const std::string& w : workloads) {
    for (const std::uint32_t e : entries) {
      for (const std::uint32_t a : assoc) {
        for (const std::uint32_t pb : pendingBuffer) {
          for (std::uint64_t s = 1; s <= seeds; ++s) {
            JobSpec j;
            j.kind = isTraceWorkload(w) ? JobKind::Trace : JobKind::Scientific;
            j.app = w;
            j.sdEntries = e;
            j.assoc = a;
            j.pendingBuffer = pb;
            j.seed = s;
            j.scale = ws;
            j.traceRefs = traceRefs;
            jobs.push_back(std::move(j));
          }
        }
      }
    }
  }
  return jobs;
}

}  // namespace dresar::harness
