#include "harness/sweep_spec.h"

#include "interconnect/routing.h"
#include "switchdir/sd_policy.h"
#include "traffic/traffic_model.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dresar::harness {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> splitList(const std::string& v) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    std::size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    out.push_back(trim(v.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

[[noreturn]] void fail(const std::string& source, int line, const std::string& why) {
  throw std::runtime_error(source + ":" + std::to_string(line) + ": " + why);
}

std::uint64_t parseUnsigned(const std::string& source, int line, const std::string& s,
                            std::uint64_t max) {
  std::uint64_t v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, 10);
  if (s.empty() || ec != std::errc() || ptr != last || v > max) {
    fail(source, line, "expected an unsigned integer, got '" + s + "'");
  }
  return v;
}

std::vector<std::uint32_t> parseU32List(const std::string& source, int line,
                                        const std::string& v, bool allowZero) {
  std::vector<std::uint32_t> out;
  for (const std::string& item : splitList(v)) {
    const std::uint64_t x = parseUnsigned(source, line, item, UINT32_MAX);
    if (x == 0 && !allowZero) fail(source, line, "value must be positive: '" + item + "'");
    out.push_back(static_cast<std::uint32_t>(x));
  }
  if (out.empty()) fail(source, line, "list must not be empty");
  return out;
}

/// Comma-separated probabilities, each in [0, 1].
std::vector<double> parseRateList(const std::string& source, int line, const std::string& v) {
  std::vector<double> out;
  for (const std::string& item : splitList(v)) {
    if (item.empty()) fail(source, line, "empty rate in list");
    char* end = nullptr;
    const double x = std::strtod(item.c_str(), &end);
    if (end != item.c_str() + item.size()) {
      fail(source, line, "expected a number, got '" + item + "'");
    }
    if (!(x >= 0.0 && x <= 1.0)) {
      fail(source, line, "rate must be in [0, 1], got '" + item + "'");
    }
    out.push_back(x);
  }
  if (out.empty()) fail(source, line, "list must not be empty");
  return out;
}

bool isTraceWorkload(const std::string& w) { return w == "tpcc" || w == "tpcd"; }

/// Event-driven congestion profiles: the only workloads where offered_load
/// has meaning (their traffic models expose an arrival-rate multiplier).
bool isCongestionProfile(const std::string& w) { return w == "hotspot" || w == "incast"; }

/// Comma-separated doubles, each >= `min`.
std::vector<double> parseDoubleList(const std::string& source, int line, const std::string& v,
                                    double min, const char* what) {
  std::vector<double> out;
  for (const std::string& item : splitList(v)) {
    if (item.empty()) fail(source, line, std::string("empty ") + what + " in list");
    char* end = nullptr;
    const double x = std::strtod(item.c_str(), &end);
    if (end != item.c_str() + item.size()) {
      fail(source, line, "expected a number, got '" + item + "'");
    }
    if (!(x >= min)) {
      std::ostringstream os;
      os << what << " must be >= " << min << ", got '" << item << "'";
      fail(source, line, os.str());
    }
    out.push_back(x);
  }
  if (out.empty()) fail(source, line, "list must not be empty");
  return out;
}

/// Parse one sd_policy token: "repl-arb" or a bare replacement name (which
/// keeps the default fifo arbitration). Both halves are validated against the
/// policy registries so a typo'd cell dies at parse time with the valid names.
SdPolicyChoice parsePolicyChoice(const std::string& source, int line, const std::string& item) {
  SdPolicyChoice c;
  const std::size_t dash = item.find('-');
  if (dash == std::string::npos) {
    c.replacement = item;
  } else {
    c.replacement = item.substr(0, dash);
    c.arbitration = item.substr(dash + 1);
  }
  if (!isSdReplacementPolicy(c.replacement)) {
    fail(source, line, "unknown replacement policy '" + c.replacement +
                           "' in sd_policy '" + item +
                           "' (valid: " + sdReplacementPolicyList() + ")");
  }
  if (!isSdArbitrationPolicy(c.arbitration)) {
    fail(source, line, "unknown arbitration policy '" + c.arbitration +
                           "' in sd_policy '" + item +
                           "' (valid: " + sdArbitrationPolicyList() + ")");
  }
  return c;
}

}  // namespace

SweepSpec SweepSpec::parse(std::istream& in, const std::string& source) {
  SweepSpec spec;
  spec.workloads = {"fft", "tc", "sor", "fwa", "gauss", "tpcc", "tpcd"};

  static const std::set<std::string> knownWorkloads = {"fft",  "tc",   "sor",     "fwa",
                                                       "gauss", "tpcc", "tpcd",    "oltp",
                                                       "kv",    "hotspot", "incast"};
  std::set<std::string> seenKeys;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    if (const std::size_t hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    const std::string t = trim(raw);
    if (t.empty()) continue;
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) fail(source, line, "expected 'key = value', got '" + t + "'");
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) fail(source, line, "empty key");
    if (value.empty()) fail(source, line, "empty value for '" + key + "'");
    if (!seenKeys.insert(key).second) fail(source, line, "duplicate key '" + key + "'");

    if (key == "name") {
      spec.name = value;
    } else if (key == "workloads") {
      spec.workloads = splitList(value);
      for (const std::string& w : spec.workloads) {
        if (knownWorkloads.count(w) == 0) fail(source, line, "unknown workload '" + w + "'");
      }
      if (spec.workloads.empty()) fail(source, line, "workloads list must not be empty");
    } else if (key == "entries") {
      spec.entries = parseU32List(source, line, value, /*allowZero=*/true);
    } else if (key == "assoc") {
      spec.assoc = parseU32List(source, line, value, /*allowZero=*/false);
    } else if (key == "pending_buffer") {
      spec.pendingBuffer = parseU32List(source, line, value, /*allowZero=*/false);
    } else if (key == "nodes") {
      spec.nodes = parseU32List(source, line, value, /*allowZero=*/false);
      for (const std::uint32_t n : spec.nodes) {
        SystemConfig probe;
        probe.numNodes = n;
        if (!probe.validationErrors().empty()) {
          fail(source, line, "unsupported nodes value " + std::to_string(n) +
                                 ": " + probe.validationErrors().front());
        }
      }
    } else if (key == "sd_policy") {
      spec.sdPolicy.clear();
      for (const std::string& item : splitList(value)) {
        if (item.empty()) fail(source, line, "empty sd_policy cell in list");
        const SdPolicyChoice c = parsePolicyChoice(source, line, item);
        if (std::find(spec.sdPolicy.begin(), spec.sdPolicy.end(), c) != spec.sdPolicy.end()) {
          fail(source, line, "duplicate sd_policy cell '" + c.label() + "'");
        }
        spec.sdPolicy.push_back(c);
      }
      if (spec.sdPolicy.empty()) fail(source, line, "sd_policy list must not be empty");
    } else if (key == "seeds") {
      spec.seeds = parseUnsigned(source, line, value, 10'000);
      if (spec.seeds == 0) fail(source, line, "seeds must be positive");
    } else if (key == "scale") {
      if (value != "tiny" && value != "default" && value != "paper") {
        fail(source, line, "scale must be tiny|default|paper, got '" + value + "'");
      }
      spec.scale = value;
    } else if (key == "trace_refs") {
      spec.traceRefs = parseUnsigned(source, line, value, UINT64_MAX);
      if (spec.traceRefs == 0) fail(source, line, "trace_refs must be positive");
    } else if (key == "fault_drop_rate") {
      spec.faultDropRate = parseRateList(source, line, value);
    } else if (key == "fault_delay_rate") {
      spec.faultDelayRate = parseRateList(source, line, value);
    } else if (key == "fault_sd_loss_rate") {
      spec.faultSdLossRate = parseRateList(source, line, value);
    } else if (key == "fault_seed") {
      spec.faultSeed = parseUnsigned(source, line, value, UINT64_MAX);
      if (spec.faultSeed == 0) fail(source, line, "fault_seed must be positive");
    } else if (key == "fault_link_stall") {
      try {
        spec.faultLinkStall = FaultPlan::parseLinkStall(value);
      } catch (const std::invalid_argument& e) {
        fail(source, line, e.what());
      }
    } else if (key == "tenants") {
      spec.trafficTenants = parseU32List(source, line, value, /*allowZero=*/false);
    } else if (key == "skew") {
      spec.trafficSkew = parseDoubleList(source, line, value, 0.0, "skew");
    } else if (key == "burst") {
      spec.trafficBurst = parseDoubleList(source, line, value, 0.0, "burst");
      for (const double b : spec.trafficBurst) {
        if (b <= 0.0) fail(source, line, "burst multiplier must be > 0");
      }
    } else if (key == "sim_threads") {
      spec.simThreads = parseU32List(source, line, value, /*allowZero=*/false);
      for (const std::uint32_t st : spec.simThreads) {
        // Probe the config validator so a structurally bad thread count dies
        // at parse time with the same wording a direct run would produce.
        // Specs are authored on one machine and run on many (CI included),
        // so the local core count is not a parse-time constraint.
        SystemConfig probe;
        probe.simAllowOversubscription = true;
        probe.simThreads = st;
        const std::vector<std::string> errs = probe.validationErrors();
        if (!errs.empty()) {
          fail(source, line,
               "unsupported sim_threads value " + std::to_string(st) + ": " + errs.front());
        }
      }
    } else if (key == "routing") {
      spec.routing.clear();
      for (const std::string& item : splitList(value)) {
        if (!isRoutingPolicy(item)) {
          fail(source, line,
               "unknown routing policy '" + item + "' (valid: " + routingPolicyList() + ")");
        }
        if (std::find(spec.routing.begin(), spec.routing.end(), item) != spec.routing.end()) {
          fail(source, line, "duplicate routing cell '" + item + "'");
        }
        spec.routing.push_back(item);
      }
      if (spec.routing.empty()) fail(source, line, "routing list must not be empty");
    } else if (key == "offered_load") {
      spec.offeredLoad = parseDoubleList(source, line, value, 0.0, "offered_load");
      for (const double ol : spec.offeredLoad) {
        if (ol <= 0.0) fail(source, line, "offered_load must be > 0");
      }
    } else if (key == "flit_level") {
      spec.flitLevel = parseU32List(source, line, value, /*allowZero=*/true);
      for (const std::uint32_t fl : spec.flitLevel) {
        if (fl > 1) fail(source, line, "flit_level cells must be 0 or 1");
      }
    } else if (key == "mix") {
      spec.trafficMix = splitList(value);
      for (const std::string& m : spec.trafficMix) {
        if (!isTrafficMix(m)) {
          fail(source, line, "unknown mix '" + m + "' (valid: readmostly, writeheavy)");
        }
      }
      if (spec.trafficMix.empty()) fail(source, line, "mix list must not be empty");
    } else {
      fail(source, line, "unknown key '" + key + "'");
    }
  }

  if (spec.hasTrafficAxes()) {
    // Traffic axes parameterize the traffic models only; on any other
    // workload they would be silently ignored — reject instead.
    for (const std::string& w : spec.workloads) {
      if (!isTrafficWorkload(w)) {
        throw std::runtime_error(source + ": traffic axes (tenants/skew/burst/mix) only "
                                          "apply to traffic workloads; remove '" + w +
                                          "' or the traffic keys");
      }
    }
    // Probe every traffic cell against the model validator so a bad
    // combination dies at parse time, not mid-sweep.
    for (const std::string& w : spec.workloads) {
      for (const std::uint32_t tn : spec.trafficTenants) {
        for (const double z : spec.trafficSkew) {
          for (const double b : spec.trafficBurst) {
            for (const std::string& m : spec.trafficMix) {
              TrafficConfig probe = TrafficConfig::byName(w, 1);
              if (tn != 0) probe.tenants = tn;
              if (z >= 0.0) probe.skew = z;
              if (b > 0.0) probe.burstMultiplier = b;
              probe.applyMix(m);
              const std::vector<std::string> errs = probe.validationErrors();
              if (!errs.empty()) {
                std::string msg = source + ": invalid traffic configuration:";
                for (const std::string& e : errs) msg += "\n  - " + e;
                throw std::runtime_error(msg);
              }
            }
          }
        }
      }
    }
  }

  if (spec.simThreads.size() > 1 || spec.simThreads[0] != 1) {
    // The sharded kernel exists only in the execution-driven System; the
    // trace/traffic simulators are reference-stream loops with no event
    // kernel, so a sim_threads axis there would be silently meaningless.
    for (const std::string& w : spec.workloads) {
      if (isTraceWorkload(w) || isTrafficWorkload(w)) {
        throw std::runtime_error(source + ": sim_threads only applies to execution-driven "
                                          "workloads; remove '" + w + "' or the sim_threads key");
      }
    }
    if (spec.hasFaultAxes()) {
      // SystemConfig::validate would reject every expanded job anyway; fail
      // the spec up front with the axis-level reason.
      throw std::runtime_error(source +
                               ": fault injection requires simThreads=1; remove the "
                               "sim_threads key or the fault axes");
    }
  }

  const bool routingAxis = spec.routing.size() > 1 || spec.routing[0] != "lca";
  const bool flitAxis = spec.flitLevel.size() > 1 || spec.flitLevel[0] != 0;
  const bool offeredAxis = spec.offeredLoad.size() > 1 || spec.offeredLoad[0] != 0.0;
  if (routingAxis || flitAxis) {
    // Only the execution-driven System owns an interconnect network; the
    // trace/traffic simulators model service classes, not routes.
    for (const std::string& w : spec.workloads) {
      if (isTraceWorkload(w) || isTrafficWorkload(w)) {
        throw std::runtime_error(source + ": routing/flit_level only apply to "
                                          "execution-driven workloads; remove '" + w +
                                          "' or the congestion keys");
      }
    }
    const bool nonLca = std::any_of(spec.routing.begin(), spec.routing.end(),
                                    [](const std::string& r) { return r != "lca"; });
    const bool anyFlit = std::any_of(spec.flitLevel.begin(), spec.flitLevel.end(),
                                     [](std::uint32_t f) { return f != 0; });
    if ((nonLca || anyFlit) && (spec.simThreads.size() > 1 || spec.simThreads[0] != 1)) {
      throw std::runtime_error(source +
                               ": adaptive routing and the flit-level network require "
                               "simThreads=1; remove the sim_threads key or those axes");
    }
    // Probe every routing x flit cell against the config validator so a bad
    // combination dies at parse time with the validator's wording.
    for (const std::string& r : spec.routing) {
      for (const std::uint32_t fl : spec.flitLevel) {
        SystemConfig probe;
        probe.net.routing = r;
        probe.net.flitLevel = fl != 0;
        const std::vector<std::string> errs = probe.validationErrors();
        if (!errs.empty()) {
          std::string msg = source + ": invalid congestion configuration:";
          for (const std::string& e : errs) msg += "\n  - " + e;
          throw std::runtime_error(msg);
        }
      }
    }
  }
  if (offeredAxis) {
    // offered_load scales the congestion profiles' arrival clocks; on any
    // other workload it would be silently ignored — reject instead.
    for (const std::string& w : spec.workloads) {
      if (!isCongestionProfile(w)) {
        throw std::runtime_error(source + ": offered_load only applies to the hotspot/"
                                          "incast congestion profiles; remove '" + w +
                                          "' or the offered_load key");
      }
    }
  }

  if (spec.hasFaultAxes()) {
    // Fault injection runs on the execution-driven System only.
    for (const std::string& w : spec.workloads) {
      if (isTraceWorkload(w) || isTrafficWorkload(w)) {
        throw std::runtime_error(source + ": fault axes only apply to execution-driven "
                                          "workloads; remove '" + w + "' or the fault keys");
      }
    }
    // Probe the worst-case fault combination against the full config
    // validator so geometry errors (e.g. a link-stall port that does not
    // exist) surface at parse time, not mid-sweep.
    SystemConfig probe;
    probe.fault.msgDropRate = *std::max_element(spec.faultDropRate.begin(),
                                                spec.faultDropRate.end());
    probe.fault.msgDelayRate = *std::max_element(spec.faultDelayRate.begin(),
                                                 spec.faultDelayRate.end());
    probe.fault.sdEntryLossRate = *std::max_element(spec.faultSdLossRate.begin(),
                                                    spec.faultSdLossRate.end());
    probe.fault.linkStall = spec.faultLinkStall;
    probe.fault.seed = spec.faultSeed;
    const std::vector<std::string> errs = probe.validationErrors();
    if (!errs.empty()) {
      std::string msg = source + ": invalid fault configuration:";
      for (const std::string& e : errs) msg += "\n  - " + e;
      throw std::runtime_error(msg);
    }
  }
  return spec;
}

bool SweepSpec::hasFaultAxes() const {
  const auto anyNonZero = [](const std::vector<double>& v) {
    return std::any_of(v.begin(), v.end(), [](double x) { return x > 0.0; });
  };
  return anyNonZero(faultDropRate) || anyNonZero(faultDelayRate) ||
         anyNonZero(faultSdLossRate) || faultLinkStall.active();
}

bool SweepSpec::hasTrafficAxes() const {
  const bool defaultTenants = trafficTenants.size() == 1 && trafficTenants[0] == 0;
  const bool defaultSkew = trafficSkew.size() == 1 && trafficSkew[0] < 0.0;
  const bool defaultBurst = trafficBurst.size() == 1 && trafficBurst[0] == 0.0;
  const bool defaultMix = trafficMix.size() == 1 && trafficMix[0] == "readmostly";
  return !(defaultTenants && defaultSkew && defaultBurst && defaultMix);
}

SweepSpec SweepSpec::parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open sweep spec '" + path + "'");
  return parse(in, path);
}

void SweepSpec::overrideScale(const std::string& s) {
  scale = s;
  if (s == "tiny") {
    traceRefs = std::min<std::uint64_t>(traceRefs, 200'000);
  } else if (s == "paper") {
    traceRefs = 16'000'000;
  }
}

std::vector<JobSpec> SweepSpec::expand() const {
  WorkloadScale ws;
  if (scale == "tiny") {
    ws = WorkloadScale::tiny();
  } else if (scale == "paper") {
    ws = WorkloadScale::paper();
  }

  std::vector<JobSpec> jobs;
  jobs.reserve(jobCount());
  for (const std::string& w : workloads) {
    for (const std::uint32_t e : entries) {
      for (const std::uint32_t a : assoc) {
        for (const std::uint32_t pb : pendingBuffer) {
          for (const std::uint32_t n : nodes) {
            for (const SdPolicyChoice& pol : sdPolicy) {
              for (const double fd : faultDropRate) {
                for (const double fy : faultDelayRate) {
                  for (const double fl : faultSdLossRate) {
                    for (const std::uint32_t tn : trafficTenants) {
                      for (const double z : trafficSkew) {
                        for (const double b : trafficBurst) {
                          for (const std::string& mx : trafficMix) {
                            for (const std::uint32_t st : simThreads) {
                            for (const std::string& rt : routing) {
                            for (const double ol : offeredLoad) {
                            // NB: must not shadow `fl` (faultSdLossRate) above —
                            // j.fault.sdEntryLossRate reads it below.
                            for (const std::uint32_t flit : flitLevel) {
                            for (std::uint64_t s = 1; s <= seeds; ++s) {
                              JobSpec j;
                              j.kind = isTrafficWorkload(w) ? JobKind::Traffic
                                       : isTraceWorkload(w) ? JobKind::Trace
                                                            : JobKind::Scientific;
                              j.app = w;
                              j.sdEntries = e;
                              j.assoc = a;
                              j.pendingBuffer = pb;
                              j.sdReplacement = pol.replacement;
                              j.sdArbitration = pol.arbitration;
                              j.numNodes = n;
                              j.seed = s;
                              j.scale = ws;
                              j.traceRefs = traceRefs;
                              j.fault.msgDropRate = fd;
                              j.fault.msgDelayRate = fy;
                              j.fault.sdEntryLossRate = fl;
                              j.fault.linkStall = faultLinkStall;
                              // Replicas of one faulted cell draw independent
                              // injector streams; replica 1 keeps the base seed.
                              j.fault.seed = faultSeed + (s - 1);
                              j.trafficTenants = tn;
                              j.trafficSkew = z;
                              j.trafficBurst = b;
                              j.trafficMix = mx;
                              j.simThreads = st;
                              j.routing = rt;
                              j.offeredLoad = ol;
                              j.flitLevel = flit != 0;
                              jobs.push_back(std::move(j));
                            }
                            }
                            }
                            }
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return jobs;
}

}  // namespace dresar::harness
