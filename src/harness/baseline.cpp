#include "harness/baseline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "sim/json_reader.h"

namespace dresar::harness {

const std::vector<std::string>& watchedMetrics() {
  static const std::vector<std::string> watched = {
      "exec_time",        "avg_read_latency",  "total_read_stall",
      "p99_read_latency", "p999_read_latency",
  };
  return watched;
}

namespace {

std::string cellKey(const std::string& app, const std::string& config, const std::string& kind) {
  return app + "\x1f" + config + "\x1f" + kind;
}

/// Collect per-config mean metrics from a "runs" array (v1/v2/v3 documents):
/// group replicas by cell, then average each metric.
std::vector<ConfigAggregate> fromRuns(const JsonValue& runs) {
  // Rebuild RunRecords and reuse the aggregator after a canonical sort.
  std::vector<RunRecord> records;
  for (const JsonValue& run : runs.asArray()) {
    RunRecord r;
    r.app = run.at("app").asString();
    r.config = run.at("config").asString();
    r.kind = run.at("kind").asString();
    if (const JsonValue* sd = run.find("sd_entries"); sd != nullptr) {
      r.sdEntries = static_cast<std::uint64_t>(sd->asNumber());
    }
    if (const JsonValue* seed = run.find("seed"); seed != nullptr) {
      r.seed = static_cast<std::uint64_t>(seed->asNumber());
    }
    for (const auto& [name, v] : run.at("metrics").asObject()) {
      if (v.isNumber()) r.metric(name, v.asNumber());
    }
    records.push_back(std::move(r));
  }
  RunRecorder rec;
  for (RunRecord& r : records) rec.add(std::move(r));
  rec.sortCanonical();
  return aggregate(rec.runs());
}

/// Read the pre-aggregated "configs" array of a v3 document.
std::vector<ConfigAggregate> fromConfigs(const JsonValue& configs) {
  std::vector<ConfigAggregate> out;
  for (const JsonValue& c : configs.asArray()) {
    ConfigAggregate agg;
    agg.app = c.at("app").asString();
    agg.config = c.at("config").asString();
    agg.kind = c.at("kind").asString();
    if (const JsonValue* sd = c.find("sd_entries"); sd != nullptr) {
      agg.sdEntries = static_cast<std::uint64_t>(sd->asNumber());
    }
    if (const JsonValue* rep = c.find("replicas"); rep != nullptr) {
      agg.replicas = static_cast<std::uint64_t>(rep->asNumber());
    }
    for (const auto& [name, v] : c.at("metrics").asObject()) {
      MetricSummary s;
      if (v.isNumber()) {  // tolerate a flat {"metric": value} shape
        s.count = 1;
        s.mean = s.min = s.max = v.asNumber();
      } else {
        s.count = agg.replicas != 0 ? agg.replicas : 1;
        s.mean = v.at("mean").asNumber();
        if (const JsonValue* sd2 = v.find("stddev"); sd2 != nullptr) s.stddev = sd2->asNumber();
        if (const JsonValue* mn = v.find("min"); mn != nullptr) s.min = mn->asNumber();
        if (const JsonValue* mx = v.find("max"); mx != nullptr) s.max = mx->asNumber();
      }
      agg.metrics.emplace_back(name, s);
    }
    out.push_back(std::move(agg));
  }
  return out;
}

}  // namespace

std::vector<ConfigAggregate> loadBaseline(const std::string& jsonText) {
  const JsonValue doc = JsonValue::parse(jsonText);
  if (const JsonValue* configs = doc.find("configs"); configs != nullptr) {
    return fromConfigs(*configs);
  }
  if (const JsonValue* runs = doc.find("runs"); runs != nullptr) {
    return fromRuns(*runs);
  }
  throw std::runtime_error("baseline document has neither 'configs' nor 'runs'");
}

std::vector<ConfigAggregate> loadBaselineFile(const std::string& path) {
  const JsonValue doc = JsonValue::parseFile(path);
  if (const JsonValue* configs = doc.find("configs"); configs != nullptr) {
    return fromConfigs(*configs);
  }
  if (const JsonValue* runs = doc.find("runs"); runs != nullptr) {
    return fromRuns(*runs);
  }
  throw std::runtime_error("baseline '" + path + "' has neither 'configs' nor 'runs'");
}

RegressionReport compareAgainstBaseline(const std::vector<ConfigAggregate>& baseline,
                                        const std::vector<ConfigAggregate>& current,
                                        double thresholdPct) {
  RegressionReport report;
  report.thresholdPct = thresholdPct;

  std::map<std::string, const ConfigAggregate*> baseByKey;
  for (const ConfigAggregate& b : baseline) {
    baseByKey[cellKey(b.app, b.config, b.kind)] = &b;
  }
  std::map<std::string, bool> baseSeen;

  for (const ConfigAggregate& cur : current) {
    const std::string key = cellKey(cur.app, cur.config, cur.kind);
    const auto it = baseByKey.find(key);
    if (it == baseByKey.end()) {
      report.missingInBaseline.push_back(cur.app + "/" + cur.config);
      continue;
    }
    baseSeen[key] = true;
    const ConfigAggregate& base = *it->second;

    // Flatten the means and reuse the shared compare helper.
    std::vector<std::pair<std::string, double>> baseMeans;
    std::vector<std::pair<std::string, double>> curMeans;
    for (const auto& [n, s] : base.metrics) baseMeans.emplace_back(n, s.mean);
    for (const auto& [n, s] : cur.metrics) curMeans.emplace_back(n, s.mean);
    for (const MetricDelta& d : compareMetrics(baseMeans, curMeans)) {
      if (std::find(watchedMetrics().begin(), watchedMetrics().end(), d.name) ==
          watchedMetrics().end()) {
        continue;
      }
      RegressionItem item;
      item.app = cur.app;
      item.config = cur.config;
      item.metric = d.name;
      item.baseline = d.baseline;
      item.current = d.current;
      item.pct = d.pct;
      item.regression = d.pct > thresholdPct;
      report.items.push_back(std::move(item));
    }
  }
  for (const ConfigAggregate& b : baseline) {
    if (baseSeen.find(cellKey(b.app, b.config, b.kind)) == baseSeen.end()) {
      report.missingInCurrent.push_back(b.app + "/" + b.config);
    }
  }
  return report;
}

void RegressionReport::print(std::ostream& os) const {
  os << "baseline comparison (" << items.size() << " watched-metric cells, threshold +"
     << thresholdPct << "%)\n";
  std::vector<const RegressionItem*> sorted;
  sorted.reserve(items.size());
  for (const RegressionItem& i : items) sorted.push_back(&i);
  std::stable_sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    if (a->regression != b->regression) return a->regression;
    return std::fabs(a->pct) > std::fabs(b->pct);
  });
  const std::size_t shown = std::min<std::size_t>(sorted.size(), regressions() + 10);
  for (std::size_t i = 0; i < shown; ++i) {
    const RegressionItem& it = *sorted[i];
    char buf[256];
    std::snprintf(buf, sizeof buf, "  %s %-10s %-10s %-18s %14.2f -> %14.2f  %+7.2f%%\n",
                  it.regression ? "REGRESSION" : "          ", it.app.c_str(),
                  it.config.c_str(), it.metric.c_str(), it.baseline, it.current, it.pct);
    os << buf;
  }
  if (!missingInBaseline.empty()) {
    os << "  note: " << missingInBaseline.size() << " config(s) absent from baseline (skipped)\n";
  }
  if (!missingInCurrent.empty()) {
    os << "  note: " << missingInCurrent.size() << " baseline config(s) not in this sweep\n";
  }
  os << (ok() ? "  OK: no watched metric regressed beyond threshold\n"
              : "  FAIL: " + std::to_string(regressions()) + " regression(s)\n");
}

}  // namespace dresar::harness
