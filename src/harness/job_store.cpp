#include "harness/job_store.h"

#include <cstdio>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/json_reader.h"
#include "sim/json_writer.h"

namespace dresar::harness {

std::string jobKeyOf(const JobSpec& job) {
  const char* kind = job.kind == JobKind::Scientific ? "scientific"
                     : job.kind == JobKind::Traffic  ? "traffic"
                                                     : "trace";
  return std::string(kind) + "|" + job.displayApp() + "|" + job.configTag() + "|" +
         std::to_string(job.seed);
}

JobStore::~JobStore() {
  if (out_ != nullptr) std::fclose(out_);
}

bool JobStore::open(const std::string& path, bool append) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr) std::fclose(out_);
  out_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  return out_ != nullptr;
}

void JobStore::append(const StoredJob& job) {
  const std::string line = serializeLine(job) + "\n";
  const std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  // One whole line per write, flushed immediately: a kill between jobs loses
  // nothing, a kill mid-write leaves at most one torn final line, which the
  // loader ignores.
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
}

std::string JobStore::serializeLine(const StoredJob& job) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.field("key", job.key);
  w.field("ok", job.ok);
  if (!job.ok) {
    w.field("error", job.error);
    w.endObject();
    return os.str();
  }
  w.fieldPrecise("wall_seconds", job.wallSeconds);
  const RunRecord& r = job.record;
  w.key("record");
  w.beginObject();
  w.field("app", r.app);
  w.field("config", r.config);
  w.field("kind", r.kind);
  w.field("sd_entries", r.sdEntries);
  w.field("seed", r.seed);
  w.fieldPrecise("wall_seconds", r.wallSeconds);
  w.field("events", r.events);
  w.key("metrics");
  w.beginObject();
  for (const auto& [k, v] : r.metrics) w.fieldPrecise(k, v);
  w.endObject();
  if (r.hasFault) {
    w.key("fault");
    w.beginObject();
    w.field("injected_drops", r.faultInjectedDrops);
    w.field("injected_delays", r.faultInjectedDelays);
    w.field("injected_delay_cycles", r.faultInjectedDelayCycles);
    w.field("injected_sd_losses", r.faultInjectedSdLosses);
    w.field("injected_stall_cycles", r.faultInjectedStallCycles);
    w.field("injected_effective", r.faultInjectedEffective);
    w.field("timeout_reissues", r.faultTimeoutReissues);
    w.field("recovered", r.faultRecovered);
    w.field("fallback_home_lookups", r.faultFallbackHomeLookups);
    w.endObject();
  }
  if (r.hasTraffic) {
    w.key("traffic");
    w.beginObject();
    w.field("tenants", r.trafficTenantCount);
    w.fieldPrecise("p99_read_latency", r.trafficP99Read);
    w.fieldPrecise("p999_read_latency", r.trafficP999Read);
    w.field("p99_overflowed", r.trafficP99Overflowed);
    w.field("p999_overflowed", r.trafficP999Overflowed);
    w.fieldPrecise("burst_occupancy", r.trafficBurstOccupancy);
    w.fieldPrecise("steady_occupancy", r.trafficSteadyOccupancy);
    w.field("burst_cycles", r.trafficBurstCycles);
    w.field("steady_cycles", r.trafficSteadyCycles);
    w.key("per_tenant");
    w.beginArray();
    for (const RunRecord::TrafficTenant& t : r.trafficPerTenant) {
      w.beginObject();
      w.field("reads", t.reads);
      w.field("writes", t.writes);
      w.fieldPrecise("mean_read_latency", t.meanReadLatency);
      w.fieldPrecise("max_read_latency", t.maxReadLatency);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  if (r.hasCongestion) {
    w.key("congestion");
    w.beginObject();
    w.fieldPrecise("offered_rate", r.congOfferedRate);
    w.fieldPrecise("accepted_rate", r.congAcceptedRate);
    w.field("runs", r.congRuns);
    w.field("credit_stall_cycles", r.congCreditStallCycles);
    w.field("link_busy_skips", r.congLinkBusySkips);
    w.field("source_credit_stalls", r.congSourceCreditStalls);
    w.key("per_switch_credit_stalls");
    w.beginArray();
    for (const std::uint64_t v : r.congPerSwitchCreditStalls) w.value(v);
    w.endArray();
    w.key("stage_occupancy");
    w.beginArray();
    for (const RunRecord::CongestionStage& s : r.congStageOccupancy) {
      w.beginObject();
      w.fieldPrecise("mean", s.mean);
      w.fieldPrecise("max", s.max);
      w.field("samples", s.samples);
      w.key("hist");
      w.beginArray();
      for (const std::uint64_t v : s.hist) w.value(v);
      w.endArray();
      w.endObject();
    }
    w.endArray();
    w.key("lock_hold");
    w.beginObject();
    w.fieldPrecise("mean", r.congLockHoldMean);
    w.fieldPrecise("max", r.congLockHoldMax);
    w.field("count", r.congLockHoldCount);
    w.key("hist");
    w.beginArray();
    for (const std::uint64_t v : r.congLockHoldHist) w.value(v);
    w.endArray();
    w.endObject();
    w.endObject();
  }
  if (r.hasTrace) {
    w.key("latency");
    w.beginObject();
    w.field("read_txns", r.traceReadTxns);
    w.field("write_txns", r.traceWriteTxns);
    w.fieldPrecise("read_end_to_end", r.traceReadEndToEnd);
    w.fieldPrecise("write_end_to_end", r.traceWriteEndToEnd);
    w.key("read_stage");
    w.beginArray();
    for (const double v : r.traceReadStage) w.valuePrecise(v);
    w.endArray();
    w.key("write_stage");
    w.beginArray();
    for (const double v : r.traceWriteStage) w.valuePrecise(v);
    w.endArray();
    w.endObject();
  }
  w.endObject();  // record
  w.endObject();
  return os.str();
}

namespace {

std::uint64_t asU64(const JsonValue& v) {
  return static_cast<std::uint64_t>(v.asNumber());
}

}  // namespace

StoredJob JobStore::parseLine(const std::string& line) {
  const JsonValue doc = JsonValue::parse(line);
  StoredJob j;
  j.key = doc.at("key").asString();
  j.ok = doc.at("ok").asBool();
  if (!j.ok) {
    if (const JsonValue* e = doc.find("error")) j.error = e->asString();
    return j;
  }
  j.wallSeconds = doc.at("wall_seconds").asNumber();
  const JsonValue& rec = doc.at("record");
  RunRecord& r = j.record;
  r.app = rec.at("app").asString();
  r.config = rec.at("config").asString();
  r.kind = rec.at("kind").asString();
  r.sdEntries = asU64(rec.at("sd_entries"));
  r.seed = asU64(rec.at("seed"));
  r.wallSeconds = rec.at("wall_seconds").asNumber();
  r.events = asU64(rec.at("events"));
  for (const auto& [k, v] : rec.at("metrics").asObject()) r.metric(k, v.asNumber());
  if (const JsonValue* f = rec.find("fault")) {
    r.hasFault = true;
    r.faultInjectedDrops = asU64(f->at("injected_drops"));
    r.faultInjectedDelays = asU64(f->at("injected_delays"));
    r.faultInjectedDelayCycles = asU64(f->at("injected_delay_cycles"));
    r.faultInjectedSdLosses = asU64(f->at("injected_sd_losses"));
    r.faultInjectedStallCycles = asU64(f->at("injected_stall_cycles"));
    r.faultInjectedEffective = asU64(f->at("injected_effective"));
    r.faultTimeoutReissues = asU64(f->at("timeout_reissues"));
    r.faultRecovered = asU64(f->at("recovered"));
    r.faultFallbackHomeLookups = asU64(f->at("fallback_home_lookups"));
  }
  if (const JsonValue* tr = rec.find("traffic")) {
    r.hasTraffic = true;
    r.trafficTenantCount = asU64(tr->at("tenants"));
    r.trafficP99Read = tr->at("p99_read_latency").asNumber();
    r.trafficP999Read = tr->at("p999_read_latency").asNumber();
    r.trafficP99Overflowed = tr->at("p99_overflowed").asBool();
    r.trafficP999Overflowed = tr->at("p999_overflowed").asBool();
    r.trafficBurstOccupancy = tr->at("burst_occupancy").asNumber();
    r.trafficSteadyOccupancy = tr->at("steady_occupancy").asNumber();
    r.trafficBurstCycles = asU64(tr->at("burst_cycles"));
    r.trafficSteadyCycles = asU64(tr->at("steady_cycles"));
    for (const JsonValue& row : tr->at("per_tenant").asArray()) {
      RunRecord::TrafficTenant t;
      t.reads = asU64(row.at("reads"));
      t.writes = asU64(row.at("writes"));
      t.meanReadLatency = row.at("mean_read_latency").asNumber();
      t.maxReadLatency = row.at("max_read_latency").asNumber();
      r.trafficPerTenant.push_back(t);
    }
  }
  if (const JsonValue* c = rec.find("congestion")) {
    r.hasCongestion = true;
    r.congOfferedRate = c->at("offered_rate").asNumber();
    r.congAcceptedRate = c->at("accepted_rate").asNumber();
    r.congRuns = asU64(c->at("runs"));
    r.congCreditStallCycles = asU64(c->at("credit_stall_cycles"));
    r.congLinkBusySkips = asU64(c->at("link_busy_skips"));
    r.congSourceCreditStalls = asU64(c->at("source_credit_stalls"));
    for (const JsonValue& v : c->at("per_switch_credit_stalls").asArray()) {
      r.congPerSwitchCreditStalls.push_back(asU64(v));
    }
    for (const JsonValue& row : c->at("stage_occupancy").asArray()) {
      RunRecord::CongestionStage s;
      s.mean = row.at("mean").asNumber();
      s.max = row.at("max").asNumber();
      s.samples = asU64(row.at("samples"));
      for (const JsonValue& v : row.at("hist").asArray()) s.hist.push_back(asU64(v));
      r.congStageOccupancy.push_back(std::move(s));
    }
    const JsonValue& lh = c->at("lock_hold");
    r.congLockHoldMean = lh.at("mean").asNumber();
    r.congLockHoldMax = lh.at("max").asNumber();
    r.congLockHoldCount = asU64(lh.at("count"));
    for (const JsonValue& v : lh.at("hist").asArray()) r.congLockHoldHist.push_back(asU64(v));
  }
  if (const JsonValue* t = rec.find("latency")) {
    r.hasTrace = true;
    r.traceReadTxns = asU64(t->at("read_txns"));
    r.traceWriteTxns = asU64(t->at("write_txns"));
    r.traceReadEndToEnd = t->at("read_end_to_end").asNumber();
    r.traceWriteEndToEnd = t->at("write_end_to_end").asNumber();
    const auto readStage = [&](const char* key, auto& dst) {
      const std::vector<JsonValue>& a = t->at(key).asArray();
      if (a.size() != dst.size()) {
        throw std::runtime_error("job store: latency stage arity mismatch");
      }
      for (std::size_t i = 0; i < a.size(); ++i) dst[i] = a[i].asNumber();
    };
    readStage("read_stage", r.traceReadStage);
    readStage("write_stage", r.traceWriteStage);
  }
  return j;
}

std::vector<StoredJob> JobStore::loadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("job store: cannot read '" + path + "'");
  std::vector<StoredJob> out;
  std::string line;
  std::string pendingError;   // malformed line, fatal only if more lines follow
  std::size_t pendingLineNo = 0;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    if (!pendingError.empty()) {
      throw std::runtime_error("job store '" + path + "' line " +
                               std::to_string(pendingLineNo) + ": " + pendingError);
    }
    try {
      out.push_back(parseLine(line));
    } catch (const std::exception& e) {
      // Tolerated if this turns out to be the final line (torn write from a
      // killed campaign); fatal if any valid line follows it.
      pendingError = e.what();
      pendingLineNo = lineNo;
    }
  }
  return out;
}

}  // namespace dresar::harness
