// One cell of a sweep's job matrix: which workload, which switch-directory
// configuration, which seed replica. Jobs are fully self-describing so a
// worker thread can execute one with no shared state beyond the spec itself.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/config.h"
#include "fault/fault_plan.h"
#include "workloads/workload.h"

namespace dresar::harness {

enum class JobKind : std::uint8_t {
  Scientific,  ///< execution-driven kernel on the cycle-level System
  Trace,       ///< trace-driven commercial workload (synthetic TPC stream)
  Traffic,     ///< trace-driven multi-tenant traffic model ("oltp"/"kv")
};

struct JobSpec {
  JobKind kind = JobKind::Scientific;
  /// Workload key: "fft"/"tc"/"sor"/"fwa"/"gauss" (scientific),
  /// "tpcc"/"tpcd" (trace) or "oltp"/"kv" (traffic).
  std::string app;
  std::uint32_t sdEntries = 0;  ///< 0 = Base system (no switch directories)
  std::uint32_t assoc = 4;
  std::uint32_t pendingBuffer = 16;
  /// Switch-directory policy cell (see switchdir/sd_policy.h). The defaults
  /// are the paper's fixed organization; policy sweeps cross these axes.
  std::string sdReplacement = "lru";
  std::string sdArbitration = "fifo";
  /// System size; the BMIN depth is derived from it (16 = the paper's
  /// reference machine, deeper networks at 32/64/128).
  std::uint32_t numNodes = 16;
  /// Replica index, 1-based. Replica 1 reproduces the historical default
  /// stream; replica k>1 perturbs the trace generator's seed. Scientific
  /// kernels are RNG-free, so their replicas are bit-identical by design —
  /// a per-config stddev > 0 in the aggregate is itself a determinism bug.
  std::uint64_t seed = 1;
  WorkloadScale scale;            ///< scientific problem sizes
  std::uint64_t traceRefs = 1'000'000;  ///< stream length (trace/traffic jobs)
  bool traceTxns = false;         ///< record per-transaction latency events
  /// Traffic-model overrides (traffic jobs only). Sentinel defaults mean
  /// "keep the profile's value" — oltp and kv carry different baseline
  /// tenancy/skew, so 0 / -1 / 0 / "readmostly" leaves each profile intact
  /// and keeps default jobs tag-identical across the axes.
  std::uint32_t trafficTenants = 0;          ///< 0 = profile default
  double trafficSkew = -1.0;                 ///< < 0 = profile default
  double trafficBurst = 0.0;                 ///< 0 = profile default (1 = flat)
  std::string trafficMix = "readmostly";     ///< readmostly | writeheavy
  /// Base switch-directory template; entries/assoc/pendingBuffer above are
  /// applied on top. Lets ablation benches sweep the remaining knobs
  /// (pending-buffer enable, invalidation snooping, retry backoff).
  SwitchDirConfig sdTemplate{};
  /// Fault-injection plan (scientific jobs only). Default-constructed plans
  /// are disabled and leave the run byte-identical to a fault-free one.
  FaultPlan fault{};
  /// Simulation worker threads (scientific jobs only; the trace/traffic
  /// simulators have no event kernel to shard). 1 = sequential kernel.
  std::uint32_t simThreads = 1;
  /// Routing policy for the interconnect ("lca" = deterministic baseline,
  /// "adaptive" = credit/occupancy-aware turnaround choice). Non-default
  /// policies require simThreads == 1 (see NetworkConfig::validationErrors).
  std::string routing = "lca";
  /// Offered-load multiplier for the congestion traffic profiles
  /// ("hotspot"/"incast"): scales the arrival rate, the x-axis of a
  /// saturation curve. Sentinel 0 = profile nominal rate (no tag).
  double offeredLoad = 0.0;
  /// Route through the flit-level wormhole network instead of the
  /// message-level one (per-switch congestion telemetry; simThreads == 1).
  bool flitLevel = false;
  /// When non-empty, used verbatim as the recorded config tag instead of
  /// the derived one (bench binaries keep their historical tags this way).
  std::string tagOverride;

  /// Display name in the paper's style ("FFT", "TPC-C", "OLTP", ...).
  [[nodiscard]] std::string displayApp() const {
    if (kind == JobKind::Trace) return app == "tpcd" ? "TPC-D" : "TPC-C";
    std::string up = app;
    for (char& c : up) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return up;
  }

  /// Short config tag; matches the bench convention ("base", "sd-512") and
  /// appends -aN / -pbN / -nN / policy / fault-rate suffixes only when they
  /// differ from the defaults, so default sweeps serialize exactly as the
  /// historical bench output did. Policy suffixes are the bare policy names
  /// ("sd-1024-random-phase"); replacement and arbitration name sets are
  /// disjoint, so the tag stays unambiguous. Fault suffixes (-fd / -fy /
  /// -fl: drop, delay, sd-loss rate) apply to "base" as well — a faulty base
  /// run is not the base run.
  [[nodiscard]] std::string configTag() const {
    if (!tagOverride.empty()) return tagOverride;
    std::string t;
    if (sdEntries == 0) {
      t = "base";
    } else {
      t = "sd-" + std::to_string(sdEntries);
      if (assoc != 4) t += "-a" + std::to_string(assoc);
      if (pendingBuffer != 16) t += "-pb" + std::to_string(pendingBuffer);
      if (sdReplacement != "lru") t += "-" + sdReplacement;
      if (sdArbitration != "fifo") t += "-" + sdArbitration;
    }
    if (numNodes != 16) t += "-n" + std::to_string(numNodes);
    // Traffic axes (same only-when-non-default discipline): -tN tenants,
    // -z<skew>, -b<burst multiplier>, -wh write-heavy mix.
    if (trafficTenants != 0) t += "-t" + std::to_string(trafficTenants);
    if (trafficSkew >= 0.0) t += "-z" + rateTag(trafficSkew);
    if (trafficBurst > 0.0) t += "-b" + rateTag(trafficBurst);
    if (trafficMix == "writeheavy") t += "-wh";
    if (fault.msgDropRate > 0.0) t += "-fd" + rateTag(fault.msgDropRate);
    if (fault.msgDelayRate > 0.0) t += "-fy" + rateTag(fault.msgDelayRate);
    if (fault.sdEntryLossRate > 0.0) t += "-fl" + rateTag(fault.sdEntryLossRate);
    // Kernel sharding axis; -stN only when parallel, so a sequential sweep's
    // tags stay byte-identical to every previous release.
    if (simThreads != 1) t += "-st" + std::to_string(simThreads);
    // Congestion-lab axes: routing policy by name, offered load, flit-level
    // network. All default-off so historical tags are untouched.
    if (routing != "lca") t += "-" + routing;
    if (offeredLoad > 0.0) t += "-ol" + rateTag(offeredLoad);
    if (flitLevel) t += "-flit";
    return t;
  }

  /// Shortest round-trip decimal for a fault rate ("0.02", not "0.020000").
  [[nodiscard]] static std::string rateTag(double r) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", r);
    return buf;
  }

  /// Canonical identity of the config cell this job belongs to (seed
  /// replicas of the same cell share it). Used for grouping and sorting.
  [[nodiscard]] std::string configKey() const { return displayApp() + "/" + configTag(); }
};

}  // namespace dresar::harness
