// Per-run context & job execution. Everything that used to be process-global
// in bench/bench_util.h (the RunRecorder singleton, the Chrome-trace
// accumulator) lives here as explicit state owned by the caller, which is
// what makes in-process parallel sweeps possible: each simulation job is
// executed against fresh System/TraceSimulator instances and returns its
// results as a value; the coordinator folds them into one RunContext in
// deterministic job order, so `--jobs=N` never changes output bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/job.h"
#include "sim/metrics.h"
#include "sim/run_recorder.h"
#include "trace/trace_sim.h"
#include "traffic/traffic_stats.h"

namespace dresar::harness {

/// Chrome trace_event accumulator (--trace=FILE). Job bodies are appended in
/// job order; writeChromeTrace() assembles the final document.
struct TraceExport {
  bool enabled = false;
  std::string path;
  std::string body;   ///< concatenated per-job event fragments
  bool any = false;   ///< at least one fragment appended (comma placement)
  std::uint32_t nextPid = 1;  ///< next Chrome pid; runJobs() advances it

  /// Append one job's event fragment (no leading comma in the fragment).
  void append(const std::string& fragment);
  /// Write the complete trace document to `path`. Returns false (after
  /// reporting to stderr) if the file cannot be written.
  [[nodiscard]] bool write() const;
};

/// Explicit replacement for the old process-global bench state: one results
/// recorder plus one trace accumulator. NOT thread-safe by design — worker
/// threads produce standalone JobResults and only the coordinating thread
/// touches the context (see runJobs()).
struct RunContext {
  RunRecorder recorder;
  TraceExport traceExport;
};

/// Everything a finished job hands back to the coordinator.
struct JobResult {
  JobSpec job;
  bool ok = true;         ///< false: the job threw; only `job`/`error` valid
  std::string error;      ///< exception message when !ok
  RunRecord record;       ///< ready to add() to a recorder
  std::string traceBody;  ///< Chrome event fragment (empty unless traced)
  RunMetrics sci;         ///< valid when job.kind == Scientific
  TraceMetrics trace;     ///< valid when job.kind == Trace or Traffic
  double wallSeconds = 0.0;
};

/// Build the standard RunRecord for an execution-driven run. Exposed for
/// benches that drive System directly (ablations, tables).
RunRecord makeSciRecord(const std::string& app, const std::string& config,
                        std::uint64_t sdEntries, double wallSeconds, std::uint64_t events,
                        const RunMetrics& m);

/// Trace-run counterpart of makeSciRecord().
RunRecord makeTraceRecord(const std::string& app, const std::string& config,
                          std::uint64_t sdEntries, double wallSeconds, const TraceMetrics& m);

/// Traffic-run record: the trace metrics plus per-tenant counters, tail
/// percentiles (p99 / p99.9 read latency from the log-spaced histograms) and
/// per-phase controller occupancy. `burstElapsed` / `steadyElapsed` are the
/// model's arrival-clock cycles per phase; `numProcs` sizes the occupancy
/// denominator.
RunRecord makeTrafficRecord(const std::string& app, const std::string& config,
                            std::uint64_t sdEntries, double wallSeconds, const TraceMetrics& m,
                            const TrafficStats& stats, std::uint64_t burstElapsed,
                            std::uint64_t steadyElapsed, std::uint32_t numProcs);

/// Execute one job in complete isolation: fresh simulator state, no global
/// reads or writes. Thread-safe against concurrent executeJob() calls.
/// `chromePid` labels this job's slice group when transaction tracing is on.
JobResult executeJob(const JobSpec& job, std::uint32_t chromePid);

/// Serialized per-job completion hook (sweep persistence). Called from
/// worker threads under an internal mutex, in completion order — including
/// for failed jobs (result.ok == false).
using JobDoneFn = std::function<void(const JobResult&)>;

/// Run `jobs` (with `threads` workers when threads > 1; work-stealing pool),
/// then fold every result into `ctx` in job order: records into
/// ctx.recorder, trace fragments into ctx.traceExport. Results are returned
/// indexed exactly like `jobs`. A throwing job never aborts its siblings:
/// its slot comes back with ok == false and the exception message in
/// `error`, and no record is folded for it — callers decide whether partial
/// results are acceptable. `onJobDone`, when set, observes every completed
/// job as it finishes (for incremental persistence).
std::vector<JobResult> runJobs(RunContext& ctx, const std::vector<JobSpec>& jobs,
                               unsigned threads, const JobDoneFn& onJobDone = nullptr);

}  // namespace dresar::harness
