#include "harness/run_context.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/rng.h"
#include "common/txn_trace.h"
#include "harness/pool.h"
#include "sim/simulation.h"
#include "trace/tpc_gen.h"
#include "traffic/traffic_model.h"

namespace dresar::harness {

void TraceExport::append(const std::string& fragment) {
  if (fragment.empty()) return;
  if (any) body += ',';
  any = true;
  body += fragment;
}

bool TraceExport::write() const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open --trace file '%s' for writing\n", path.c_str());
    return false;
  }
  TxnTracer::writeChromeHeader(out);
  out << body;
  TxnTracer::writeChromeFooter(out);
  return static_cast<bool>(out);
}

RunRecord makeSciRecord(const std::string& app, const std::string& config,
                        std::uint64_t sdEntries, double wallSeconds, std::uint64_t events,
                        const RunMetrics& m) {
  RunRecord rec;
  rec.app = app;
  rec.config = config;
  rec.kind = "scientific";
  rec.sdEntries = sdEntries;
  rec.wallSeconds = wallSeconds;
  rec.events = events;
  rec.metric("exec_time", static_cast<double>(m.execTime));
  rec.metric("reads", static_cast<double>(m.reads));
  rec.metric("stores", static_cast<double>(m.stores));
  rec.metric("read_misses", static_cast<double>(m.readMisses));
  rec.metric("svc_clean", static_cast<double>(m.svcClean));
  rec.metric("svc_ctoc_home", static_cast<double>(m.svcCtoCHome));
  rec.metric("svc_ctoc_switch", static_cast<double>(m.svcCtoCSwitch));
  rec.metric("svc_switch_wb", static_cast<double>(m.svcSwitchWB));
  rec.metric("svc_switch_cache", static_cast<double>(m.svcSwitchCache));
  rec.metric("avg_read_latency", m.avgReadLatency);
  rec.metric("total_read_stall", m.totalReadStall);
  rec.metric("home_ctoc", static_cast<double>(m.homeCtoC));
  rec.metric("sd_deposits", static_cast<double>(m.sdDeposits));
  rec.metric("sd_ctoc_initiated", static_cast<double>(m.sdCtoCInitiated));
  rec.metric("sd_retries", static_cast<double>(m.sdRetries));
  rec.metric("net_messages", static_cast<double>(m.netMessages));
  rec.metric("retries", static_cast<double>(m.retriesObserved));
  rec.metric("backoff_cycles", static_cast<double>(m.backoffCycles));
  rec.metric("dirty_fraction", m.dirtyFraction());
  if (m.faultEnabled) {
    rec.hasFault = true;
    rec.faultInjectedDrops = m.faultInjectedDrops;
    rec.faultInjectedDelays = m.faultInjectedDelays;
    rec.faultInjectedDelayCycles = m.faultInjectedDelayCycles;
    rec.faultInjectedSdLosses = m.faultInjectedSdLosses;
    rec.faultInjectedStallCycles = m.faultInjectedStallCycles;
    rec.faultInjectedEffective = m.faultInjectedEffective();
    rec.faultTimeoutReissues = m.faultTimeoutReissues;
    rec.faultRecovered = m.faultRecovered;
    rec.faultFallbackHomeLookups = m.faultFallbackHomeLookups;
  }
  if (m.congestionEnabled) {
    // Saturation scalars land in the flat metrics map too so config
    // aggregation and the trajectory gate see them without extra plumbing.
    rec.metric("offered_rate", m.congOfferedRate);
    rec.metric("accepted_rate", m.congAcceptedRate);
    rec.metric("credit_stall_cycles", static_cast<double>(m.congestion.creditStallCycles));
    rec.hasCongestion = true;
    rec.congOfferedRate = m.congOfferedRate;
    rec.congAcceptedRate = m.congAcceptedRate;
    rec.congRuns = m.congRuns;
    rec.congCreditStallCycles = m.congestion.creditStallCycles;
    rec.congLinkBusySkips = m.congestion.linkBusySkips;
    rec.congSourceCreditStalls = m.congestion.sourceCreditStalls;
    rec.congPerSwitchCreditStalls = m.congestion.perSwitchCreditStalls;
    for (std::size_t s = 0; s < m.congestion.stageOccupancy.size(); ++s) {
      RunRecord::CongestionStage row;
      row.mean = m.congestion.stageOccupancy[s].mean();
      row.max = m.congestion.stageOccupancy[s].max();
      row.samples = m.congestion.stageOccupancy[s].count();
      if (s < m.congestion.stageOccupancyHist.size()) {
        row.hist = m.congestion.stageOccupancyHist[s].buckets();
      }
      rec.congStageOccupancy.push_back(std::move(row));
    }
    rec.congLockHoldMean = m.congestion.lockHold.mean();
    rec.congLockHoldMax = m.congestion.lockHold.max();
    rec.congLockHoldCount = m.congestion.lockHold.count();
    rec.congLockHoldHist = m.congestion.lockHoldHist.buckets();
  }
  if (m.traceReadTxns + m.traceWriteTxns > 0) {
    rec.hasTrace = true;
    rec.traceReadTxns = m.traceReadTxns;
    rec.traceWriteTxns = m.traceWriteTxns;
    rec.traceReadEndToEnd = m.traceReadEndToEnd;
    rec.traceWriteEndToEnd = m.traceWriteEndToEnd;
    rec.traceReadStage = m.traceReadStage;
    rec.traceWriteStage = m.traceWriteStage;
  }
  return rec;
}

RunRecord makeTraceRecord(const std::string& app, const std::string& config,
                          std::uint64_t sdEntries, double wallSeconds, const TraceMetrics& m) {
  RunRecord rec;
  rec.app = app;
  rec.config = config;
  rec.kind = "trace";
  rec.sdEntries = sdEntries;
  rec.wallSeconds = wallSeconds;
  rec.events = m.refs;
  rec.metric("exec_time", static_cast<double>(m.execTime));
  rec.metric("refs", static_cast<double>(m.refs));
  rec.metric("reads", static_cast<double>(m.reads));
  rec.metric("writes", static_cast<double>(m.writes));
  rec.metric("read_hits", static_cast<double>(m.readHits));
  rec.metric("read_misses", static_cast<double>(m.readMisses));
  rec.metric("svc_clean_local", static_cast<double>(m.svcCleanLocal));
  rec.metric("svc_clean_remote", static_cast<double>(m.svcCleanRemote));
  rec.metric("svc_ctoc_local", static_cast<double>(m.svcCtoCLocal));
  rec.metric("svc_ctoc_remote", static_cast<double>(m.svcCtoCRemote));
  rec.metric("svc_switch_dir", static_cast<double>(m.svcSwitchDir));
  rec.metric("home_ctoc", static_cast<double>(m.homeCtoC));
  rec.metric("sd_deposits", static_cast<double>(m.sdDeposits));
  rec.metric("sd_stale_retries", static_cast<double>(m.sdStaleRetries));
  rec.metric("avg_read_latency", m.avgReadLatency());
  rec.metric("dirty_fraction", m.dirtyFraction());
  return rec;
}

RunRecord makeTrafficRecord(const std::string& app, const std::string& config,
                            std::uint64_t sdEntries, double wallSeconds, const TraceMetrics& m,
                            const TrafficStats& stats, std::uint64_t burstElapsed,
                            std::uint64_t steadyElapsed, std::uint32_t numProcs) {
  RunRecord rec = makeTraceRecord(app, config, sdEntries, wallSeconds, m);
  rec.kind = "traffic";
  // Tail scalars go into the flat metrics map too, so config aggregation and
  // the baseline regression gate cover them with zero extra plumbing.
  rec.metric("p99_read_latency", stats.readLatency().percentile(0.99));
  rec.metric("p999_read_latency", stats.readLatency().percentile(0.999));
  rec.metric("burst_occupancy", stats.burstOccupancy(burstElapsed, numProcs));
  rec.metric("steady_occupancy", stats.steadyOccupancy(steadyElapsed, numProcs));
  rec.hasTraffic = true;
  rec.trafficTenantCount = stats.tenants().size();
  rec.trafficP99Read = stats.readLatency().percentile(0.99);
  rec.trafficP999Read = stats.readLatency().percentile(0.999);
  rec.trafficP99Overflowed = stats.readLatency().percentileOverflowed(0.99);
  rec.trafficP999Overflowed = stats.readLatency().percentileOverflowed(0.999);
  rec.trafficBurstOccupancy = stats.burstOccupancy(burstElapsed, numProcs);
  rec.trafficSteadyOccupancy = stats.steadyOccupancy(steadyElapsed, numProcs);
  rec.trafficBurstCycles = burstElapsed;
  rec.trafficSteadyCycles = steadyElapsed;
  for (const TenantCounters& t : stats.tenants()) {
    RunRecord::TrafficTenant row;
    row.reads = t.reads;
    row.writes = t.writes;
    row.meanReadLatency = t.readLatency.mean();
    row.maxReadLatency = t.readLatency.max();
    rec.trafficPerTenant.push_back(row);
  }
  return rec;
}

namespace {

JobResult executeScientific(const JobSpec& job, std::uint32_t chromePid) {
  SystemConfig cfg = SystemConfig::paperTable2();
  cfg.numNodes = job.numNodes;
  cfg.switchDir = job.sdTemplate;
  cfg.switchDir.entries = job.sdEntries;
  cfg.switchDir.associativity = job.assoc;
  cfg.switchDir.pendingBufferEntries = job.pendingBuffer;
  cfg.switchDir.replacementPolicy = job.sdReplacement;
  cfg.switchDir.arbitrationPolicy = job.sdArbitration;
  // The switch cache reuses the switch-directory tag organization; a policy
  // sweep exercises both structures with the same cell.
  cfg.switchCache.replacementPolicy = job.sdReplacement;
  cfg.switchCache.arbitrationPolicy = job.sdArbitration;
  cfg.txnTrace.enabled = job.traceTxns;
  cfg.fault = job.fault;
  cfg.simThreads = job.simThreads;
  // Congestion-lab axes: routing policy, flit-level network, offered load.
  cfg.net.routing = job.routing;
  cfg.net.flitLevel = job.flitLevel;
  WorkloadScale scale = job.scale;
  if (job.offeredLoad > 0.0) scale.offeredLoad = job.offeredLoad;
  // The sweep scheduler already owns process-level parallelism (--jobs), so
  // a sim_threads axis value above the local core count runs oversubscribed
  // instead of failing a whole campaign on a smaller machine.
  cfg.simAllowOversubscription = true;
  Simulation sim(cfg);

  JobResult res;
  res.job = job;
  const auto t0 = std::chrono::steady_clock::now();
  res.sci = sim.run({.workload = job.app, .scale = scale, .simThreads = job.simThreads});
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  res.wallSeconds = dt.count();
  if (job.traceTxns) {
    res.traceBody =
        sim.chromeTraceFragment(chromePid, job.displayApp() + " " + job.configTag());
  }
  // events_per_sec bugfix: the kernel shards the event loop, so "events this
  // run" is the per-shard executed counts summed — not one queue's counter.
  res.record = makeSciRecord(job.displayApp(), job.configTag(), job.sdEntries,
                             res.wallSeconds, sim.system().kernel().executedEvents(), res.sci);
  if (job.seed > 1) res.record.seed = job.seed;
  return res;
}

JobResult executeTrace(const JobSpec& job) {
  TraceConfig cfg = TraceConfig::paperTable3();
  cfg.numNodes = job.numNodes;
  cfg.switchDir = job.sdTemplate;
  cfg.switchDir.entries = job.sdEntries;
  cfg.switchDir.associativity = job.assoc;
  cfg.switchDir.pendingBufferEntries = job.pendingBuffer;
  cfg.switchDir.replacementPolicy = job.sdReplacement;
  cfg.switchDir.arbitrationPolicy = job.sdArbitration;
  TraceSimulator sim(cfg);
  TpcParams p = job.app == "tpcd" ? TpcParams::tpcd(job.traceRefs)
                                  : TpcParams::tpcc(job.traceRefs);
  p.numProcs = job.numNodes;
  if (job.seed > 1) {
    // Replica k draws an independent stream; replica 1 keeps the historical
    // default seed so existing single-run results stay bit-identical.
    Rng mix(job.seed);
    p.seed ^= mix.next();
  }
  TpcGenerator gen(p);

  JobResult res;
  res.job = job;
  const auto t0 = std::chrono::steady_clock::now();
  sim.run(gen);
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  res.wallSeconds = dt.count();
  res.trace = sim.metrics();
  res.record = makeTraceRecord(job.displayApp(), job.configTag(), job.sdEntries,
                               res.wallSeconds, res.trace);
  if (job.seed > 1) res.record.seed = job.seed;
  return res;
}

JobResult executeTraffic(const JobSpec& job) {
  TraceConfig cfg = TraceConfig::paperTable3();
  cfg.numNodes = job.numNodes;
  cfg.switchDir = job.sdTemplate;
  cfg.switchDir.entries = job.sdEntries;
  cfg.switchDir.associativity = job.assoc;
  cfg.switchDir.pendingBufferEntries = job.pendingBuffer;
  cfg.switchDir.replacementPolicy = job.sdReplacement;
  cfg.switchDir.arbitrationPolicy = job.sdArbitration;
  TraceSimulator sim(cfg);

  TrafficConfig tc = TrafficConfig::byName(job.app, job.traceRefs);
  tc.numProcs = job.numNodes;
  tc.lineBytes = cfg.lineBytes;
  // Sentinel values (0 / -1.0 / 0.0 / "readmostly") mean "keep the profile
  // default" — oltp and kv ship different baselines, so the job only
  // overrides knobs the sweep actually set.
  if (job.trafficTenants != 0) tc.tenants = job.trafficTenants;
  if (job.trafficSkew >= 0.0) tc.skew = job.trafficSkew;
  if (job.trafficBurst > 0.0) tc.burstMultiplier = job.trafficBurst;
  tc.applyMix(job.trafficMix);
  if (job.seed > 1) {
    Rng mix(job.seed);
    tc.seed ^= mix.next();
  }
  TrafficModel model(tc);
  TrafficStats stats(tc.tenants);

  JobResult res;
  res.job = job;
  const auto t0 = std::chrono::steady_clock::now();
  TrafficRef ref;
  while (model.nextRef(ref)) stats.record(ref, sim.access(ref.rec));
  sim.finalize();
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  res.wallSeconds = dt.count();
  res.trace = sim.metrics();
  res.record = makeTrafficRecord(job.displayApp(), job.configTag(), job.sdEntries,
                                 res.wallSeconds, res.trace, stats,
                                 model.burstCyclesElapsed(), model.steadyCyclesElapsed(),
                                 tc.numProcs);
  if (job.seed > 1) res.record.seed = job.seed;
  return res;
}

}  // namespace

JobResult executeJob(const JobSpec& job, std::uint32_t chromePid) {
  switch (job.kind) {
    case JobKind::Scientific: return executeScientific(job, chromePid);
    case JobKind::Traffic: return executeTraffic(job);
    case JobKind::Trace: break;
  }
  return executeTrace(job);
}

std::vector<JobResult> runJobs(RunContext& ctx, const std::vector<JobSpec>& jobs,
                               unsigned threads, const JobDoneFn& onJobDone) {
  std::vector<JobResult> results(jobs.size());
  WorkStealingPool pool(threads);
  // Per-worker recorders: workers never touch shared state while running;
  // the coordinator merges after the join and canonicalizes the order so the
  // serialized document is invariant under scheduling (and under --jobs=N).
  std::vector<RunRecorder> workerRecorders(pool.threads());
  std::mutex doneMu;
  // Pid block is claimed up front so repeated runJobs() calls against the
  // same context keep allocating distinct, order-stable Chrome pids.
  const std::uint32_t pidBase = ctx.traceExport.nextPid;
  pool.forEach(jobs.size(), [&](std::size_t i, unsigned w) {
    // A failed job surrenders only its own slot; siblings keep running and
    // their results are kept. The coordinator (dresar-sweep) names the
    // job (config tag, seed) in its failure summary and exits non-zero.
    try {
      results[i] = executeJob(jobs[i], pidBase + static_cast<std::uint32_t>(i));
    } catch (const std::exception& e) {
      results[i] = JobResult{};
      results[i].job = jobs[i];
      results[i].ok = false;
      results[i].error = e.what();
    }
    if (results[i].ok) workerRecorders[w].add(results[i].record);
    if (onJobDone) {
      const std::lock_guard<std::mutex> lock(doneMu);
      onJobDone(results[i]);
    }
  });
  for (RunRecorder& r : workerRecorders) ctx.recorder.merge(std::move(r));
  ctx.recorder.sortCanonical();
  ctx.traceExport.nextPid = pidBase + static_cast<std::uint32_t>(jobs.size());
  if (ctx.traceExport.enabled) {
    for (const JobResult& res : results) ctx.traceExport.append(res.traceBody);
  }
  return results;
}

}  // namespace dresar::harness
