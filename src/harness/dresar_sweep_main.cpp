// dresar-sweep — declarative parallel design-space sweeps.
//
//   dresar-sweep --spec=sweeps/paper_all.spec --jobs=8 --json=out.json
//   dresar-sweep --spec=sweeps/quick.spec --quick --baseline=main.json
//
// Expands the spec's job matrix (workload x switch-dir entries x assoc x
// pending-buffer depth x sd policy x seed replicas), runs every job on a work-stealing
// thread pool (each job is a fully isolated simulation), aggregates
// per-config statistics over seed replicas into one schema-v3 JSON document,
// and optionally gates on regressions against a prior document.
//
// Campaign persistence: with --json=FILE every finished job is also appended
// to a JSONL job store (FILE.jobs by default, --store overrides), so
//   - a killed campaign re-run with --resume skips completed cells and
//     re-emits the canonical document byte-identically (--deterministic);
//   - --shard=I/N partitions the matrix across machines, and
//     --merge=A.jobs,B.jobs reassembles the shard stores into the single
//     document without simulating;
//   - a job that throws records an error entry, the campaign continues,
//     and the run exits non-zero after reporting every failure — sibling
//     results are written, not discarded.
//
// Exit codes: 0 ok, 1 I/O or simulation failure, 2 bad usage,
//             3 baseline regression beyond threshold.
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/aggregate.h"
#include "harness/baseline.h"
#include "harness/campaign.h"
#include "harness/run_context.h"
#include "harness/sweep_spec.h"

namespace {

using namespace dresar;
using namespace dresar::harness;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec=FILE [options]\n"
               "  --spec=FILE       sweep specification (see sweeps/*.spec)\n"
               "  --jobs=N          worker threads (default 1)\n"
               "  --json=FILE       write the aggregated v3 result document\n"
               "  --store=FILE      job store path (default: <json>.jobs)\n"
               "  --resume          fold completed jobs in from the store and\n"
               "                    simulate only what is missing\n"
               "  --shard=I/N       run only matrix slice I of N (0-based)\n"
               "  --merge=A,B,...   merge shard job stores into the result\n"
               "                    document; no simulation\n"
               "  --baseline=FILE   compare against a prior result document;\n"
               "                    exit 3 on watched-metric regressions\n"
               "  --threshold=PCT   regression threshold, percent (default 5)\n"
               "  --quick           override problem sizes to CI-smoke scale\n"
               "  --paper           override problem sizes to the paper's Table 2\n"
               "  --seeds=N         override the spec's seed replica count\n"
               "  --deterministic   omit wall-clock fields from the JSON so the\n"
               "                    document is byte-identical for any --jobs=N\n"
               "  --list            print the expanded job matrix and exit\n",
               argv0);
}

bool parseU64(const std::string& s, std::uint64_t& out, std::uint64_t max = UINT64_MAX) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc() || ptr != s.data() + s.size() || v > max) return false;
  out = v;
  return true;
}

struct Cli {
  std::string specPath;
  std::string jsonPath;
  std::string storePath;
  std::vector<std::string> mergePaths;
  std::string baselinePath;
  double thresholdPct = 5.0;
  unsigned jobs = 1;
  std::uint64_t seedsOverride = 0;
  std::uint32_t shardIndex = 0;
  std::uint32_t shardCount = 1;
  bool resume = false;
  bool quick = false;
  bool paper = false;
  bool deterministic = false;
  bool list = false;
};

Cli parseCli(int argc, char** argv) {
  Cli c;
  const auto fail = [&](const char* why, const std::string& arg) {
    std::fprintf(stderr, "error: %s: %s\n", why, arg.c_str());
    usage(argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (a.rfind("--spec=", 0) == 0) {
      c.specPath = a.substr(7);
      if (c.specPath.empty()) fail("--spec expects a file path", a);
    } else if (a == "--spec" && i + 1 < argc) {
      c.specPath = argv[++i];
    } else if (a.rfind("--jobs=", 0) == 0) {
      std::uint64_t v = 0;
      if (!parseU64(a.substr(7), v, 1024) || v == 0) {
        fail("--jobs expects a positive integer", a);
      }
      c.jobs = static_cast<unsigned>(v);
    } else if (a.rfind("--json=", 0) == 0) {
      c.jsonPath = a.substr(7);
      if (c.jsonPath.empty()) fail("--json expects a file path", a);
    } else if (a.rfind("--store=", 0) == 0) {
      c.storePath = a.substr(8);
      if (c.storePath.empty()) fail("--store expects a file path", a);
    } else if (a == "--resume") {
      c.resume = true;
    } else if (a.rfind("--shard=", 0) == 0) {
      const std::string v = a.substr(8);
      const std::size_t slash = v.find('/');
      std::uint64_t idx = 0;
      std::uint64_t cnt = 0;
      if (slash == std::string::npos || !parseU64(v.substr(0, slash), idx, 1'000'000) ||
          !parseU64(v.substr(slash + 1), cnt, 1'000'000) || cnt == 0 || idx >= cnt) {
        fail("--shard expects I/N with 0 <= I < N", a);
      }
      c.shardIndex = static_cast<std::uint32_t>(idx);
      c.shardCount = static_cast<std::uint32_t>(cnt);
    } else if (a.rfind("--merge=", 0) == 0) {
      std::string rest = a.substr(8);
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string piece = rest.substr(0, comma);
        if (!piece.empty()) c.mergePaths.push_back(piece);
        if (comma == std::string::npos) break;
        rest.erase(0, comma + 1);
      }
      if (c.mergePaths.empty()) fail("--merge expects a comma-separated store list", a);
    } else if (a.rfind("--baseline=", 0) == 0) {
      c.baselinePath = a.substr(11);
      if (c.baselinePath.empty()) fail("--baseline expects a file path", a);
    } else if (a.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      c.thresholdPct = std::strtod(a.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || c.thresholdPct < 0.0) {
        fail("--threshold expects a non-negative number", a);
      }
    } else if (a.rfind("--seeds=", 0) == 0) {
      if (!parseU64(a.substr(8), c.seedsOverride, 10'000) || c.seedsOverride == 0) {
        fail("--seeds expects a positive integer", a);
      }
    } else if (a == "--quick") {
      c.quick = true;
    } else if (a == "--paper") {
      c.paper = true;
    } else if (a == "--deterministic") {
      c.deterministic = true;
    } else if (a == "--list") {
      c.list = true;
    } else {
      fail("unknown option", a);
    }
  }
  if (c.specPath.empty()) fail("--spec is required", "(missing)");
  if (c.quick && c.paper) fail("--quick and --paper are mutually exclusive", "(conflict)");
  if (!c.mergePaths.empty() && (c.resume || c.shardCount != 1)) {
    fail("--merge cannot be combined with --resume or --shard", "(conflict)");
  }
  if (c.resume && c.jsonPath.empty() && c.storePath.empty()) {
    fail("--resume needs a job store (--json or --store)", "(missing)");
  }
  return c;
}

/// Create the parent directory of `path` up front so a campaign fails before
/// hours of simulation, not at the final write. Returns false after
/// reporting to stderr.
bool ensureParentDir(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return true;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create output directory '%s': %s\n",
                 parent.string().c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

/// Comma-joined canonical sd_policy labels ("lru-fifo,random-phase").
std::string policyList(const std::vector<SdPolicyChoice>& cells) {
  std::string s;
  for (const SdPolicyChoice& c : cells) {
    if (!s.empty()) s += ',';
    s += c.label();
  }
  return s;
}

/// True when the spec sweeps anything beyond the default LRU/FIFO cell.
/// Default sweeps must not record the option: their JSON stays byte-identical
/// to pre-policy output.
bool hasPolicyAxis(const SweepSpec& spec) {
  return spec.sdPolicy != std::vector<SdPolicyChoice>{{}};
}

std::string joinCsv(const std::vector<std::string>& v) {
  std::string s;
  for (const std::string& x : v) {
    if (!s.empty()) s += ',';
    s += x;
  }
  return s;
}

std::string rateCsv(const std::vector<double>& v) {
  std::string s;
  for (const double x : v) {
    if (!s.empty()) s += ',';
    s += JobSpec::rateTag(x);
  }
  return s;
}

std::string u32Csv(const std::vector<std::uint32_t>& v) {
  std::string s;
  for (const std::uint32_t x : v) {
    if (!s.empty()) s += ',';
    s += std::to_string(x);
  }
  return s;
}

/// Congestion-axis options, recorded only when swept off the defaults so
/// every existing sweep document stays byte-identical.
void appendCongestionOptions(const SweepSpec& spec,
                             std::vector<std::pair<std::string, std::string>>& opts) {
  if (spec.routing != std::vector<std::string>{"lca"}) {
    opts.emplace_back("routing", joinCsv(spec.routing));
  }
  if (spec.offeredLoad != std::vector<double>{0.0}) {
    opts.emplace_back("offered_load", rateCsv(spec.offeredLoad));
  }
  if (spec.flitLevel != std::vector<std::uint32_t>{0}) {
    opts.emplace_back("flit_level", u32Csv(spec.flitLevel));
  }
}

/// Metric value by name from a run record (0.0 when absent). The console
/// totals read these instead of the in-memory RunMetrics so resumed jobs —
/// which only have their persisted record — contribute identically.
double recordMetric(const RunRecord& r, std::string_view name) {
  for (const auto& [k, v] : r.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parseCli(argc, argv);

  // Fail unwritable output locations now, before hours of simulation.
  if (!cli.jsonPath.empty() && !ensureParentDir(cli.jsonPath)) return 1;
  const std::string storePath =
      !cli.storePath.empty() ? cli.storePath
                             : (cli.jsonPath.empty() ? "" : cli.jsonPath + ".jobs");
  if (!storePath.empty() && !ensureParentDir(storePath)) return 1;

  SweepSpec spec;
  try {
    spec = SweepSpec::parseFile(cli.specPath);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (cli.quick) spec.overrideScale("tiny");
  if (cli.paper) spec.overrideScale("paper");
  if (cli.seedsOverride != 0) spec.seeds = cli.seedsOverride;

  const std::vector<JobSpec> jobs = spec.expand();
  if (cli.list) {
    std::printf("sweep '%s': %zu job(s)\n", spec.name.c_str(), jobs.size());
    for (const JobSpec& j : jobs) {
      std::printf("  %-8s %-14s seed=%llu %s\n", j.displayApp().c_str(), j.configTag().c_str(),
                  static_cast<unsigned long long>(j.seed),
                  j.kind == JobKind::Trace ? "trace" : "scientific");
    }
    return 0;
  }

  // Load the baseline up front: a bad path or malformed document must fail
  // before hours of simulation, not after.
  std::vector<ConfigAggregate> baseline;
  if (!cli.baselinePath.empty()) {
    try {
      baseline = loadBaselineFile(cli.baselinePath);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot load baseline: %s\n", e.what());
      return 1;
    }
  }

  const bool merging = !cli.mergePaths.empty();
  if (merging) {
    std::printf("sweep '%s': merging %zu store(s), %zu job(s) expected\n", spec.name.c_str(),
                cli.mergePaths.size(), jobs.size());
  } else if (cli.shardCount != 1) {
    std::printf("sweep '%s': %zu job(s), shard %u/%u on %u worker(s), scale=%s\n",
                spec.name.c_str(), jobs.size(), cli.shardIndex, cli.shardCount, cli.jobs,
                spec.scale.c_str());
  } else {
    std::printf("sweep '%s': %zu job(s) on %u worker(s), scale=%s\n", spec.name.c_str(),
                jobs.size(), cli.jobs, spec.scale.c_str());
  }

  RunContext ctx;
  ctx.recorder.setBench("dresar-sweep");
  ctx.recorder.setOption("spec", spec.name);
  ctx.recorder.setOption("scale", spec.scale);
  ctx.recorder.setOption("seeds", std::to_string(spec.seeds));
  ctx.recorder.setOption("trace_refs", std::to_string(spec.traceRefs));
  if (spec.nodes != std::vector<std::uint32_t>{16}) {
    // A nodes axis is recorded; default 16-node sweeps stay byte-identical.
    std::string nlist;
    for (const std::uint32_t n : spec.nodes) {
      if (!nlist.empty()) nlist += ',';
      nlist += std::to_string(n);
    }
    ctx.recorder.setOption("nodes", nlist);
  }
  if (hasPolicyAxis(spec)) {
    ctx.recorder.setOption("sd_policy", policyList(spec.sdPolicy));
  }
  {
    std::vector<std::pair<std::string, std::string>> copts;
    appendCongestionOptions(spec, copts);
    for (const auto& [k, v] : copts) ctx.recorder.setOption(k, v);
  }

  const auto t0 = std::chrono::steady_clock::now();
  CampaignResult campaign;
  try {
    if (merging) {
      campaign = mergeCampaignStores(ctx, jobs, cli.mergePaths);
    } else {
      CampaignOptions copts;
      copts.threads = cli.jobs;
      copts.storePath = storePath;
      copts.resume = cli.resume;
      copts.shardIndex = cli.shardIndex;
      copts.shardCount = cli.shardCount;
      campaign = runCampaign(ctx, jobs, copts);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: sweep failed: %s\n", e.what());
    return 1;
  }
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - t0;

  if (campaign.resumed > 0) {
    std::printf("resumed %zu completed job(s) from the store, ran %zu\n", campaign.resumed,
                campaign.executed);
  }

  const std::vector<ConfigAggregate> configs = aggregate(ctx.recorder.runs());

  // Console summary: one line per config cell.
  std::printf("\n%-8s %-14s %-10s %8s %14s %14s %10s\n", "app", "config", "kind", "replicas",
              "exec_time", "avg_read_lat", "stddev%");
  for (const ConfigAggregate& c : configs) {
    double execMean = 0.0;
    double execStd = 0.0;
    double lat = 0.0;
    for (const auto& [n, s] : c.metrics) {
      if (n == "exec_time") {
        execMean = s.mean;
        execStd = s.stddev;
      } else if (n == "avg_read_latency") {
        lat = s.mean;
      }
    }
    std::printf("%-8s %-14s %-10s %8llu %14.0f %14.2f %9.2f%%\n", c.app.c_str(),
                c.config.c_str(), c.kind.c_str(), static_cast<unsigned long long>(c.replicas),
                execMean, lat, execMean > 0.0 ? execStd / execMean * 100.0 : 0.0);
  }

  // Whole-sweep totals over the scientific runs, from the persisted record
  // metrics so freshly-run and resumed jobs contribute identically.
  std::uint64_t sciRuns = 0;
  std::uint64_t sciCycles = 0;
  std::uint64_t sciReads = 0;
  std::uint64_t sciMisses = 0;
  for (const JobResult& r : campaign.results) {
    if (r.job.kind == JobKind::Scientific) {
      sciCycles += static_cast<std::uint64_t>(recordMetric(r.record, "exec_time"));
      sciReads += static_cast<std::uint64_t>(recordMetric(r.record, "reads"));
      sciMisses += static_cast<std::uint64_t>(recordMetric(r.record, "read_misses"));
      ++sciRuns;
    }
  }
  if (sciRuns > 0) {
    std::printf("\nscientific totals over %llu run(s): cycles=%llu reads=%llu misses=%llu\n",
                static_cast<unsigned long long>(sciRuns),
                static_cast<unsigned long long>(sciCycles),
                static_cast<unsigned long long>(sciReads),
                static_cast<unsigned long long>(sciMisses));
  }
  std::printf("wall: %.2fs (%zu jobs / %u workers)\n", wall.count(), jobs.size(), cli.jobs);

  int rc = 0;
  if (!cli.jsonPath.empty()) {
    SweepJsonOptions jo;
    jo.specName = spec.name;
    jo.options = {{"scale", spec.scale},
                  {"seeds", std::to_string(spec.seeds)},
                  {"trace_refs", std::to_string(spec.traceRefs)}};
    if (spec.nodes != std::vector<std::uint32_t>{16}) {
      std::string nlist;
      for (const std::uint32_t n : spec.nodes) {
        if (!nlist.empty()) nlist += ',';
        nlist += std::to_string(n);
      }
      jo.options.emplace_back("nodes", nlist);
    }
    if (hasPolicyAxis(spec)) {
      jo.options.emplace_back("sd_policy", policyList(spec.sdPolicy));
    }
    appendCongestionOptions(spec, jo.options);
    if (spec.hasFaultAxes()) {
      // Only faulted sweeps carry fault options; fault-free documents stay
      // byte-identical to the pre-fault output.
      const auto rateList = [](const std::vector<double>& v) {
        std::string s;
        for (const double x : v) {
          if (!s.empty()) s += ',';
          s += JobSpec::rateTag(x);
        }
        return s;
      };
      jo.options.emplace_back("fault_drop_rate", rateList(spec.faultDropRate));
      jo.options.emplace_back("fault_delay_rate", rateList(spec.faultDelayRate));
      jo.options.emplace_back("fault_sd_loss_rate", rateList(spec.faultSdLossRate));
      jo.options.emplace_back("fault_seed", std::to_string(spec.faultSeed));
      if (spec.faultLinkStall.active()) {
        jo.options.emplace_back(
            "fault_link_stall",
            std::to_string(spec.faultLinkStall.stage) + "," +
                std::to_string(spec.faultLinkStall.index) + "," +
                std::to_string(spec.faultLinkStall.startCycle) + "," +
                std::to_string(spec.faultLinkStall.lengthCycles));
      }
    }
    jo.jobs = cli.jobs;
    jo.deterministic = cli.deterministic;
    std::ofstream out(cli.jsonPath);
    if (!out) {
      std::fprintf(stderr, "error: cannot open --json file '%s' for writing\n",
                   cli.jsonPath.c_str());
      rc = 1;
    } else {
      out << sweepToJson(ctx.recorder, configs, jo);
      if (!out) rc = 1;
    }
  }

  if (!campaign.failures.empty()) {
    // Sibling results were aggregated and written above; the failures are
    // reported job-by-job and the exit is non-zero so CI cannot miss them.
    std::fprintf(stderr, "\n%zu job(s) failed:\n", campaign.failures.size());
    for (const CampaignResult::Failure& f : campaign.failures) {
      std::fprintf(stderr, "  %s %s seed=%llu: %s\n", f.job.displayApp().c_str(),
                   f.job.configTag().c_str(), static_cast<unsigned long long>(f.job.seed),
                   f.error.c_str());
    }
    return 1;
  }

  if (!cli.baselinePath.empty()) {
    const RegressionReport report = compareAgainstBaseline(baseline, configs, cli.thresholdPct);
    report.print(std::cout);
    if (!report.ok()) return 3;
  }
  return rc;
}
