// dresar-sweep — declarative parallel design-space sweeps.
//
//   dresar-sweep --spec=sweeps/paper_all.spec --jobs=8 --json=out.json
//   dresar-sweep --spec=sweeps/quick.spec --quick --baseline=main.json
//
// Expands the spec's job matrix (workload x switch-dir entries x assoc x
// pending-buffer depth x sd policy x seed replicas), runs every job on a work-stealing
// thread pool (each job is a fully isolated simulation), aggregates
// per-config statistics over seed replicas into one schema-v3 JSON document,
// and optionally gates on regressions against a prior document.
//
// Exit codes: 0 ok, 1 I/O or simulation failure, 2 bad usage,
//             3 baseline regression beyond threshold.
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/aggregate.h"
#include "harness/baseline.h"
#include "harness/run_context.h"
#include "harness/sweep_spec.h"

namespace {

using namespace dresar;
using namespace dresar::harness;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec=FILE [options]\n"
               "  --spec=FILE       sweep specification (see sweeps/*.spec)\n"
               "  --jobs=N          worker threads (default 1)\n"
               "  --json=FILE       write the aggregated v3 result document\n"
               "  --baseline=FILE   compare against a prior result document;\n"
               "                    exit 3 on watched-metric regressions\n"
               "  --threshold=PCT   regression threshold, percent (default 5)\n"
               "  --quick           override problem sizes to CI-smoke scale\n"
               "  --paper           override problem sizes to the paper's Table 2\n"
               "  --seeds=N         override the spec's seed replica count\n"
               "  --deterministic   omit wall-clock fields from the JSON so the\n"
               "                    document is byte-identical for any --jobs=N\n"
               "  --list            print the expanded job matrix and exit\n",
               argv0);
}

bool parseU64(const std::string& s, std::uint64_t& out, std::uint64_t max = UINT64_MAX) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc() || ptr != s.data() + s.size() || v > max) return false;
  out = v;
  return true;
}

struct Cli {
  std::string specPath;
  std::string jsonPath;
  std::string baselinePath;
  double thresholdPct = 5.0;
  unsigned jobs = 1;
  std::uint64_t seedsOverride = 0;
  bool quick = false;
  bool paper = false;
  bool deterministic = false;
  bool list = false;
};

Cli parseCli(int argc, char** argv) {
  Cli c;
  const auto fail = [&](const char* why, const std::string& arg) {
    std::fprintf(stderr, "error: %s: %s\n", why, arg.c_str());
    usage(argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (a.rfind("--spec=", 0) == 0) {
      c.specPath = a.substr(7);
      if (c.specPath.empty()) fail("--spec expects a file path", a);
    } else if (a == "--spec" && i + 1 < argc) {
      c.specPath = argv[++i];
    } else if (a.rfind("--jobs=", 0) == 0) {
      std::uint64_t v = 0;
      if (!parseU64(a.substr(7), v, 1024) || v == 0) {
        fail("--jobs expects a positive integer", a);
      }
      c.jobs = static_cast<unsigned>(v);
    } else if (a.rfind("--json=", 0) == 0) {
      c.jsonPath = a.substr(7);
      if (c.jsonPath.empty()) fail("--json expects a file path", a);
    } else if (a.rfind("--baseline=", 0) == 0) {
      c.baselinePath = a.substr(11);
      if (c.baselinePath.empty()) fail("--baseline expects a file path", a);
    } else if (a.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      c.thresholdPct = std::strtod(a.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || c.thresholdPct < 0.0) {
        fail("--threshold expects a non-negative number", a);
      }
    } else if (a.rfind("--seeds=", 0) == 0) {
      if (!parseU64(a.substr(8), c.seedsOverride, 10'000) || c.seedsOverride == 0) {
        fail("--seeds expects a positive integer", a);
      }
    } else if (a == "--quick") {
      c.quick = true;
    } else if (a == "--paper") {
      c.paper = true;
    } else if (a == "--deterministic") {
      c.deterministic = true;
    } else if (a == "--list") {
      c.list = true;
    } else {
      fail("unknown option", a);
    }
  }
  if (c.specPath.empty()) fail("--spec is required", "(missing)");
  if (c.quick && c.paper) fail("--quick and --paper are mutually exclusive", "(conflict)");
  return c;
}

/// Comma-joined canonical sd_policy labels ("lru-fifo,random-phase").
std::string policyList(const std::vector<SdPolicyChoice>& cells) {
  std::string s;
  for (const SdPolicyChoice& c : cells) {
    if (!s.empty()) s += ',';
    s += c.label();
  }
  return s;
}

/// True when the spec sweeps anything beyond the default LRU/FIFO cell.
/// Default sweeps must not record the option: their JSON stays byte-identical
/// to pre-policy output.
bool hasPolicyAxis(const SweepSpec& spec) {
  return spec.sdPolicy != std::vector<SdPolicyChoice>{{}};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parseCli(argc, argv);

  SweepSpec spec;
  try {
    spec = SweepSpec::parseFile(cli.specPath);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (cli.quick) spec.overrideScale("tiny");
  if (cli.paper) spec.overrideScale("paper");
  if (cli.seedsOverride != 0) spec.seeds = cli.seedsOverride;

  const std::vector<JobSpec> jobs = spec.expand();
  if (cli.list) {
    std::printf("sweep '%s': %zu job(s)\n", spec.name.c_str(), jobs.size());
    for (const JobSpec& j : jobs) {
      std::printf("  %-8s %-14s seed=%llu %s\n", j.displayApp().c_str(), j.configTag().c_str(),
                  static_cast<unsigned long long>(j.seed),
                  j.kind == JobKind::Trace ? "trace" : "scientific");
    }
    return 0;
  }

  // Load the baseline up front: a bad path or malformed document must fail
  // before hours of simulation, not after.
  std::vector<ConfigAggregate> baseline;
  if (!cli.baselinePath.empty()) {
    try {
      baseline = loadBaselineFile(cli.baselinePath);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot load baseline: %s\n", e.what());
      return 1;
    }
  }

  std::printf("sweep '%s': %zu job(s) on %u worker(s), scale=%s\n", spec.name.c_str(),
              jobs.size(), cli.jobs, spec.scale.c_str());

  RunContext ctx;
  ctx.recorder.setBench("dresar-sweep");
  ctx.recorder.setOption("spec", spec.name);
  ctx.recorder.setOption("scale", spec.scale);
  ctx.recorder.setOption("seeds", std::to_string(spec.seeds));
  ctx.recorder.setOption("trace_refs", std::to_string(spec.traceRefs));
  if (spec.nodes != std::vector<std::uint32_t>{16}) {
    // A nodes axis is recorded; default 16-node sweeps stay byte-identical.
    std::string nlist;
    for (const std::uint32_t n : spec.nodes) {
      if (!nlist.empty()) nlist += ',';
      nlist += std::to_string(n);
    }
    ctx.recorder.setOption("nodes", nlist);
  }
  if (hasPolicyAxis(spec)) {
    ctx.recorder.setOption("sd_policy", policyList(spec.sdPolicy));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<JobResult> results;
  try {
    results = runJobs(ctx, jobs, cli.jobs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: sweep job failed: %s\n", e.what());
    return 1;
  }
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - t0;

  const std::vector<ConfigAggregate> configs = aggregate(ctx.recorder.runs());

  // Console summary: one line per config cell.
  std::printf("\n%-8s %-14s %-10s %8s %14s %14s %10s\n", "app", "config", "kind", "replicas",
              "exec_time", "avg_read_lat", "stddev%");
  for (const ConfigAggregate& c : configs) {
    double execMean = 0.0;
    double execStd = 0.0;
    double lat = 0.0;
    for (const auto& [n, s] : c.metrics) {
      if (n == "exec_time") {
        execMean = s.mean;
        execStd = s.stddev;
      } else if (n == "avg_read_latency") {
        lat = s.mean;
      }
    }
    std::printf("%-8s %-14s %-10s %8llu %14.0f %14.2f %9.2f%%\n", c.app.c_str(),
                c.config.c_str(), c.kind.c_str(), static_cast<unsigned long long>(c.replicas),
                execMean, lat, execMean > 0.0 ? execStd / execMean * 100.0 : 0.0);
  }

  // Whole-sweep totals over the scientific runs (RunMetrics::merge).
  RunMetrics sciTotal;
  std::uint64_t sciRuns = 0;
  for (const JobResult& r : results) {
    if (r.job.kind == JobKind::Scientific) {
      sciTotal.merge(r.sci);
      ++sciRuns;
    }
  }
  if (sciRuns > 0) {
    std::printf("\nscientific totals over %llu run(s): cycles=%llu reads=%llu misses=%llu\n",
                static_cast<unsigned long long>(sciRuns),
                static_cast<unsigned long long>(sciTotal.execTime),
                static_cast<unsigned long long>(sciTotal.reads),
                static_cast<unsigned long long>(sciTotal.readMisses));
  }
  std::printf("wall: %.2fs (%zu jobs / %u workers)\n", wall.count(), jobs.size(), cli.jobs);

  int rc = 0;
  if (!cli.jsonPath.empty()) {
    SweepJsonOptions jo;
    jo.specName = spec.name;
    jo.options = {{"scale", spec.scale},
                  {"seeds", std::to_string(spec.seeds)},
                  {"trace_refs", std::to_string(spec.traceRefs)}};
    if (spec.nodes != std::vector<std::uint32_t>{16}) {
      std::string nlist;
      for (const std::uint32_t n : spec.nodes) {
        if (!nlist.empty()) nlist += ',';
        nlist += std::to_string(n);
      }
      jo.options.emplace_back("nodes", nlist);
    }
    if (hasPolicyAxis(spec)) {
      jo.options.emplace_back("sd_policy", policyList(spec.sdPolicy));
    }
    if (spec.hasFaultAxes()) {
      // Only faulted sweeps carry fault options; fault-free documents stay
      // byte-identical to the pre-fault output.
      const auto rateList = [](const std::vector<double>& v) {
        std::string s;
        for (const double x : v) {
          if (!s.empty()) s += ',';
          s += JobSpec::rateTag(x);
        }
        return s;
      };
      jo.options.emplace_back("fault_drop_rate", rateList(spec.faultDropRate));
      jo.options.emplace_back("fault_delay_rate", rateList(spec.faultDelayRate));
      jo.options.emplace_back("fault_sd_loss_rate", rateList(spec.faultSdLossRate));
      jo.options.emplace_back("fault_seed", std::to_string(spec.faultSeed));
      if (spec.faultLinkStall.active()) {
        jo.options.emplace_back(
            "fault_link_stall",
            std::to_string(spec.faultLinkStall.stage) + "," +
                std::to_string(spec.faultLinkStall.index) + "," +
                std::to_string(spec.faultLinkStall.startCycle) + "," +
                std::to_string(spec.faultLinkStall.lengthCycles));
      }
    }
    jo.jobs = cli.jobs;
    jo.deterministic = cli.deterministic;
    std::ofstream out(cli.jsonPath);
    if (!out) {
      std::fprintf(stderr, "error: cannot open --json file '%s' for writing\n",
                   cli.jsonPath.c_str());
      rc = 1;
    } else {
      out << sweepToJson(ctx.recorder, configs, jo);
      if (!out) rc = 1;
    }
  }

  if (!cli.baselinePath.empty()) {
    const RegressionReport report = compareAgainstBaseline(baseline, configs, cli.thresholdPct);
    report.print(std::cout);
    if (!report.ok()) return 3;
  }
  return rc;
}
