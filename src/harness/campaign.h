// Resumable, shardable sweep campaigns. A campaign is one expansion of a
// sweep spec's job matrix plus the policies that make long campaigns
// practical on real machines:
//
//   - persistence: every finished job is appended to a JSONL job store
//     (job_store.h) as it completes, so a killed run loses at most the
//     in-flight jobs;
//   - resume: a re-run with the same spec folds completed cells back in from
//     the store (byte-identical to an uninterrupted run in --deterministic
//     mode) and only simulates what is missing — failed jobs are retried;
//   - sharding: --shard I/N deterministically partitions the matrix by job
//     index so N machines each run a disjoint slice, each writing its own
//     store; mergeCampaignStores() reassembles the canonical document from
//     the shard stores without running anything;
//   - failure isolation: a throwing job records an error entry and the
//     campaign continues — sibling results are never discarded; the driver
//     reports every failure and exits non-zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/job.h"
#include "harness/run_context.h"

namespace dresar::harness {

struct CampaignOptions {
  unsigned threads = 1;
  /// JSONL job store path; empty disables persistence (and resume).
  std::string storePath;
  /// Fold completed jobs in from an existing store instead of re-running
  /// them. Without it, an existing store is truncated (fresh campaign).
  bool resume = false;
  /// Run only jobs whose matrix index i satisfies i % shardCount ==
  /// shardIndex. The default 0/1 runs the whole matrix.
  std::uint32_t shardIndex = 0;
  std::uint32_t shardCount = 1;
};

struct CampaignResult {
  struct Failure {
    JobSpec job;
    std::string error;
  };

  /// Successful results — resumed and freshly executed — in matrix order.
  std::vector<JobResult> results;
  /// Jobs that threw this invocation (already persisted as error entries).
  std::vector<Failure> failures;
  std::size_t executed = 0;      ///< jobs simulated by this invocation
  std::size_t resumed = 0;       ///< jobs satisfied from the store
  std::size_t shardSkipped = 0;  ///< jobs belonging to other shards

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run the campaign over `jobs` (the full expanded matrix — sharding is
/// applied inside). Successful records are folded into ctx.recorder and the
/// recorder is left canonically sorted. Throws std::runtime_error only for
/// campaign-level failures (unreadable/unwritable store); individual job
/// failures come back in CampaignResult::failures.
CampaignResult runCampaign(RunContext& ctx, const std::vector<JobSpec>& jobs,
                           const CampaignOptions& opts);

/// Reassemble a complete campaign from shard stores without simulating:
/// every job of `jobs` must have a successful entry in some store (last
/// entry wins across duplicates). Missing or failed cells are reported as
/// failures. Records fold into ctx.recorder exactly as runCampaign does.
CampaignResult mergeCampaignStores(RunContext& ctx, const std::vector<JobSpec>& jobs,
                                   const std::vector<std::string>& storePaths);

}  // namespace dresar::harness
