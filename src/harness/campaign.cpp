#include "harness/campaign.h"

#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "harness/job_store.h"

namespace dresar::harness {

namespace {

/// Fold store entries into a key -> outcome map. Last entry wins, except
/// that an error entry never displaces a successful one — a shard re-run
/// merged with an older store must not resurrect a failure that has since
/// been fixed, regardless of file order.
void foldStored(std::unordered_map<std::string, StoredJob>& map,
                std::vector<StoredJob> entries) {
  for (StoredJob& e : entries) {
    auto it = map.find(e.key);
    if (it == map.end()) {
      map.emplace(e.key, std::move(e));
    } else if (e.ok || !it->second.ok) {
      it->second = std::move(e);
    }
  }
}

/// foldStored with the folded entries kept in first-seen file order, for
/// rewriting a compacted store.
std::vector<StoredJob> foldStoredOrdered(std::vector<StoredJob> entries) {
  std::vector<StoredJob> out;
  std::unordered_map<std::string, std::size_t> index;
  for (StoredJob& e : entries) {
    const auto [it, fresh] = index.emplace(e.key, out.size());
    if (fresh) {
      out.push_back(std::move(e));
    } else if (e.ok || !out[it->second].ok) {
      out[it->second] = std::move(e);
    }
  }
  return out;
}

/// Load a store file if it exists; a missing file is an empty store (first
/// run of a campaign that was asked to be resumable).
std::vector<StoredJob> loadIfPresent(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
    std::fclose(f);
    return JobStore::loadFile(path);
  }
  return {};
}

JobResult resumedResult(const JobSpec& job, const StoredJob& stored) {
  JobResult r;
  r.job = job;
  r.record = stored.record;
  r.wallSeconds = stored.wallSeconds;
  return r;
}

StoredJob storedFrom(const JobResult& res) {
  StoredJob s;
  s.key = jobKeyOf(res.job);
  s.ok = res.ok;
  if (res.ok) {
    s.wallSeconds = res.wallSeconds;
    s.record = res.record;
  } else {
    s.error = res.error;
  }
  return s;
}

}  // namespace

CampaignResult runCampaign(RunContext& ctx, const std::vector<JobSpec>& jobs,
                           const CampaignOptions& opts) {
  if (opts.shardCount == 0 || opts.shardIndex >= opts.shardCount) {
    throw std::runtime_error("campaign: shard index out of range");
  }

  CampaignResult out;

  std::vector<StoredJob> priorEntries;
  std::unordered_map<std::string, StoredJob> stored;
  if (opts.resume && !opts.storePath.empty()) {
    priorEntries = foldStoredOrdered(loadIfPresent(opts.storePath));
    for (const StoredJob& e : priorEntries) stored.emplace(e.key, e);
  }

  // Partition the matrix: my shard's jobs, split into resumed and to-run.
  // Matrix index — not a hash — keys the shard so the partition is stable
  // across machines and runs of the same spec.
  std::vector<JobSpec> toRun;
  std::vector<std::size_t> toRunIndex;          // matrix position of toRun[k]
  std::vector<JobResult> byIndex(jobs.size());  // slots for my shard's results
  std::vector<bool> have(jobs.size(), false);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i % opts.shardCount != opts.shardIndex) {
      ++out.shardSkipped;
      continue;
    }
    if (const auto it = stored.find(jobKeyOf(jobs[i])); it != stored.end() && it->second.ok) {
      byIndex[i] = resumedResult(jobs[i], it->second);
      have[i] = true;
      ctx.recorder.add(byIndex[i].record);
      ++out.resumed;
      continue;
    }
    toRun.push_back(jobs[i]);
    toRunIndex.push_back(i);
  }

  // The store is always rewritten from scratch. On resume this compacts it:
  // the folded prior entries are written back as clean whole lines, so a torn
  // final line (mid-write kill) or a displaced duplicate never survives into
  // the file the NEXT resume will read — appending directly after a torn line
  // would glue the new record onto it and corrupt the store.
  JobStore store;
  if (!opts.storePath.empty()) {
    if (!store.open(opts.storePath, /*append=*/false)) {
      throw std::runtime_error("campaign: cannot open job store '" + opts.storePath +
                               "' for writing");
    }
    for (const StoredJob& e : priorEntries) store.append(e);
  }

  const JobDoneFn persist = [&store](const JobResult& res) {
    if (store.isOpen()) store.append(storedFrom(res));
  };

  const std::vector<JobResult> fresh = runJobs(ctx, toRun, opts.threads, persist);
  out.executed = fresh.size();
  for (std::size_t k = 0; k < fresh.size(); ++k) {
    if (fresh[k].ok) {
      byIndex[toRunIndex[k]] = fresh[k];
      have[toRunIndex[k]] = true;
    } else {
      out.failures.push_back({fresh[k].job, fresh[k].error});
    }
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (have[i]) out.results.push_back(std::move(byIndex[i]));
  }
  // Resumed records were appended after runJobs' canonical sort; restore the
  // canonical total order (job keys are unique, so the order — and therefore
  // the serialized document — is identical to an uninterrupted run's).
  ctx.recorder.sortCanonical();
  return out;
}

CampaignResult mergeCampaignStores(RunContext& ctx, const std::vector<JobSpec>& jobs,
                                   const std::vector<std::string>& storePaths) {
  std::unordered_map<std::string, StoredJob> stored;
  for (const std::string& path : storePaths) {
    foldStored(stored, JobStore::loadFile(path));  // missing file IS an error here
  }

  CampaignResult out;
  for (const JobSpec& job : jobs) {
    const auto it = stored.find(jobKeyOf(job));
    if (it == stored.end()) {
      out.failures.push_back({job, "not found in any store"});
    } else if (!it->second.ok) {
      out.failures.push_back({job, it->second.error});
    } else {
      out.results.push_back(resumedResult(job, it->second));
      ctx.recorder.add(out.results.back().record);
      ++out.resumed;
    }
  }
  ctx.recorder.sortCanonical();
  return out;
}

}  // namespace dresar::harness
