// Persistent sweep-campaign job store: one JSONL record per finished job,
// appended as each job completes. A campaign killed mid-run (machine loss,
// ^C, OOM) can be resumed with --resume — completed cells are folded back in
// from the store instead of being re-simulated — and a sweep can be split
// across machines with --shard I/N, each shard writing its own store, the
// stores later re-merged into the one canonical result document.
//
// Line format (one complete JSON object per line, no wrapping document):
//   {"key":"scientific|FFT|sd-512|1","ok":true,"wall_seconds":W,
//    "record":{...full RunRecord...}}
//   {"key":"trace|TPC-C|base|2","ok":false,"error":"..."}
//
// Doubles inside "record" are serialized with %.17g so the parsed-back value
// is bit-exact: a resumed campaign re-emits the canonical %.12g result
// document byte-identically to an uninterrupted run. Appends write one whole
// line with a single flush; the loader tolerates a torn or malformed final
// line (the signature of a mid-write kill) and ignores it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "harness/job.h"
#include "sim/run_recorder.h"

namespace dresar::harness {

/// Canonical identity of one job in a sweep matrix:
/// "<kind>|<display app>|<config tag>|<seed>". Unique across the matrix —
/// the config tag encodes every non-default axis value.
[[nodiscard]] std::string jobKeyOf(const JobSpec& job);

/// One persisted job outcome.
struct StoredJob {
  std::string key;          ///< jobKeyOf() of the job
  bool ok = true;
  std::string error;        ///< failure message when !ok
  double wallSeconds = 0.0; ///< job wall time (informational)
  RunRecord record;         ///< complete result record when ok
};

/// Append-only JSONL store with a tolerant loader. Thread-safe appends (the
/// sweep's worker threads call append() directly as jobs finish).
class JobStore {
 public:
  JobStore() = default;
  ~JobStore();
  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  /// Open `path` for appending (`append`) or truncating (fresh campaign).
  /// Returns false on I/O failure.
  [[nodiscard]] bool open(const std::string& path, bool append);
  [[nodiscard]] bool isOpen() const { return out_ != nullptr; }

  /// Persist one finished job: serialize, write the whole line, flush.
  void append(const StoredJob& job);

  /// One store line (no trailing newline). Exposed for tests.
  [[nodiscard]] static std::string serializeLine(const StoredJob& job);
  /// Parse one line; throws std::runtime_error on malformed input.
  [[nodiscard]] static StoredJob parseLine(const std::string& line);

  /// Load every job from a store file, in file order (a key appearing twice
  /// keeps both entries; callers apply last-wins). A malformed or torn final
  /// line is ignored — that is what a killed campaign leaves behind — but a
  /// malformed line with valid lines after it is a corrupt store and throws.
  /// Throws std::runtime_error if the file cannot be read.
  [[nodiscard]] static std::vector<StoredJob> loadFile(const std::string& path);

 private:
  std::mutex mu_;
  std::FILE* out_ = nullptr;
};

}  // namespace dresar::harness
