#include "harness/pool.h"

#include <exception>
#include <thread>

namespace dresar::harness {

void WorkStealingPool::forEach(std::size_t n,
                               const std::function<void(std::size_t, unsigned)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  const unsigned workers = threads_;
  std::vector<Queue> queues(workers);
  for (std::size_t i = 0; i < n; ++i) {
    queues[i % workers].jobs.push_back(i);  // round-robin seeding, pre-start
  }

  std::mutex errMu;
  std::exception_ptr firstError;

  const auto popOwn = [&queues](unsigned w, std::size_t& out) {
    Queue& q = queues[w];
    const std::lock_guard<std::mutex> lock(q.mu);
    if (q.jobs.empty()) return false;
    out = q.jobs.front();
    q.jobs.pop_front();
    return true;
  };
  const auto steal = [&queues, workers](unsigned thief, std::size_t& out) {
    for (unsigned d = 1; d < workers; ++d) {
      Queue& q = queues[(thief + d) % workers];
      const std::lock_guard<std::mutex> lock(q.mu);
      if (!q.jobs.empty()) {
        out = q.jobs.back();
        q.jobs.pop_back();
        return true;
      }
    }
    return false;
  };

  const auto workerBody = [&](unsigned w) {
    std::size_t job = 0;
    while (popOwn(w, job) || steal(w, job)) {
      try {
        fn(job, w);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errMu);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(workerBody, w);
  for (std::thread& t : pool) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace dresar::harness
