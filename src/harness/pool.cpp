#include "harness/pool.h"

#include <algorithm>
#include <exception>
#include <thread>

namespace dresar::harness {

std::string PoolError::describe(const std::vector<Failure>& fs) {
  std::string s = std::to_string(fs.size()) + " job(s) failed:";
  for (const Failure& f : fs) {
    s += " [job " + std::to_string(f.job) + "] " + f.what + ";";
  }
  if (!fs.empty()) s.pop_back();  // drop trailing ';'
  return s;
}

namespace {

/// what() of an in-flight exception, tolerating non-std exceptions.
std::string describeCurrentException() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void WorkStealingPool::forEach(std::size_t n,
                               const std::function<void(std::size_t, unsigned)>& fn) {
  if (n == 0) return;

  std::mutex errMu;
  std::vector<PoolError::Failure> failures;
  const auto recordFailure = [&](std::size_t job) {
    const std::lock_guard<std::mutex> lock(errMu);
    failures.push_back({job, describeCurrentException()});
  };

  if (threads_ == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i, 0);
      } catch (...) {
        recordFailure(i);
      }
    }
  } else {
    const unsigned workers = threads_;
    std::vector<Queue> queues(workers);
    for (std::size_t i = 0; i < n; ++i) {
      queues[i % workers].jobs.push_back(i);  // round-robin seeding, pre-start
    }

    const auto popOwn = [&queues](unsigned w, std::size_t& out) {
      Queue& q = queues[w];
      const std::lock_guard<std::mutex> lock(q.mu);
      if (q.jobs.empty()) return false;
      out = q.jobs.front();
      q.jobs.pop_front();
      return true;
    };
    const auto steal = [&queues, workers](unsigned thief, std::size_t& out) {
      for (unsigned d = 1; d < workers; ++d) {
        Queue& q = queues[(thief + d) % workers];
        const std::lock_guard<std::mutex> lock(q.mu);
        if (!q.jobs.empty()) {
          out = q.jobs.back();
          q.jobs.pop_back();
          return true;
        }
      }
      return false;
    };

    const auto workerBody = [&](unsigned w) {
      std::size_t job = 0;
      while (popOwn(w, job) || steal(w, job)) {
        try {
          fn(job, w);
        } catch (...) {
          recordFailure(job);
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(workerBody, w);
    for (std::thread& t : pool) t.join();
  }

  if (!failures.empty()) {
    // Completion order depends on scheduling; report by job index instead.
    std::sort(failures.begin(), failures.end(),
              [](const PoolError::Failure& a, const PoolError::Failure& b) {
                return a.job < b.job;
              });
    throw PoolError(std::move(failures));
  }
}

}  // namespace dresar::harness
