#include "coherence/cache_controller.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "common/log.h"
#include "fault/injector.h"

namespace dresar {

namespace {
NodeMask bit(NodeId n) { return nodeBit(n); }
}  // namespace

CacheController::CacheController(NodeId node, const SystemConfig& cfg, Scheduler& sched,
                                 INetwork& net, StatRegistry& stats)
    : node_(node),
      cfg_(cfg),
      sched_(sched),
      net_(net),
      l1_(cfg.l1Bytes, cfg.l1Assoc, cfg.lineBytes),
      l2_(cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes) {
  const std::string pfx = "cache." + std::to_string(node) + ".";
  c_.reads = stats.counterHandle(pfx + "reads");
  c_.l1Hits = stats.counterHandle(pfx + "l1_hits");
  c_.l2Hits = stats.counterHandle(pfx + "l2_hits");
  c_.readMerged = stats.counterHandle(pfx + "read_merged");
  c_.mshrFullStalls = stats.counterHandle(pfx + "mshr_full_stalls");
  c_.readMisses = stats.counterHandle(pfx + "read_misses");
  c_.writes = stats.counterHandle(pfx + "writes");
  c_.wbFullStalls = stats.counterHandle(pfx + "wb_full_stalls");
  c_.rmws = stats.counterHandle(pfx + "rmws");
  c_.writeHits = stats.counterHandle(pfx + "write_hits");
  c_.writeUpgrades = stats.counterHandle(pfx + "write_upgrades");
  c_.writeMisses = stats.counterHandle(pfx + "write_misses");
  c_.evictions = stats.counterHandle(pfx + "evictions");
  c_.writebacks = stats.counterHandle(pfx + "writebacks");
  c_.spuriousFills = stats.counterHandle(pfx + "spurious_fills");
  c_.fillThenInvalidate = stats.counterHandle(pfx + "fill_then_invalidate");
  c_.ctocCannotSupply = stats.counterHandle(pfx + "ctoc_cannot_supply");
  c_.ctocDroppedWbRace = stats.counterHandle(pfx + "ctoc_dropped_wb_race");
  c_.ctocSupplied = stats.counterHandle(pfx + "ctoc_supplied");
  c_.cleanupInvalidations = stats.counterHandle(pfx + "cleanup_invalidations");
  c_.recalls = stats.counterHandle(pfx + "recalls");
  c_.invalidations = stats.counterHandle(pfx + "invalidations");
  c_.spuriousRetries = stats.counterHandle(pfx + "spurious_retries");
  c_.retries = stats.counterHandle(pfx + "retries");
  c_.backoffCycles = stats.counterHandle(pfx + "backoff_cycles");
  for (std::size_t s = 0; s < kReadServiceCount; ++s) {
    svc_[s] = stats.counterHandle(std::string("svc.") + toString(static_cast<ReadService>(s)));
  }
  latAll_ = stats.samplerHandle("cpu.read_latency");
  latClean_ = stats.samplerHandle("cpu.read_latency.clean");
  latCtoC_ = stats.samplerHandle("cpu.read_latency.ctoc");
  latCleanMiss_ = stats.samplerHandle("cpu.read_latency.clean_miss");
}

Cycle CacheController::acquireCtrl(Cycle busy) {
  const Cycle start = std::max(sched_.now(), ctrlFree_);
  ctrlFree_ = start + busy;
  return start - sched_.now();
}

Cycle CacheController::backoffDelay(std::uint32_t attempt) const {
  const Cycle base = cfg_.retryBackoffCycles;
  const Cycle cap = std::max<Cycle>(base, cfg_.switchDir.retryBackoffMaxCycles);
  const std::uint32_t shift = std::min(attempt - 1, 24u);
  return std::min(base << shift, cap);
}

// ---------------------------------------------------------------------------
// CPU-facing operations
// ---------------------------------------------------------------------------

void CacheController::cpuRead(Addr a, ReadCallback done) {
  const Addr block = blockOf(a);
  const Cycle start = sched_.now();
  ++c_.reads;
  sched_.scheduleIn(cfg_.l1AccessCycles, [this, block, start, done = std::move(done)]() mutable {
    if (l1_.contains(block)) {
      latAll_.add(static_cast<double>(sched_.now() - start));
      latClean_.add(static_cast<double>(sched_.now() - start));
      ++c_.l1Hits;
      done(ReadResult{ReadService::L1Hit, sched_.now() - start, 0});
      return;
    }
    sched_.scheduleIn(cfg_.l2AccessCycles, [this, block, start, done = std::move(done)]() mutable {
      CacheLine* line = l2_.find(block);
      if (line != nullptr) {
        l1_.insert(block);
        latAll_.add(static_cast<double>(sched_.now() - start));
        latClean_.add(static_cast<double>(sched_.now() - start));
        ++c_.l2Hits;
        done(ReadResult{ReadService::L2Hit, sched_.now() - start, 0});
        return;
      }
      startReadMiss(block, std::move(done), start);
    });
  });
}

void CacheController::startReadMiss(Addr block, ReadCallback done, Cycle start) {
  auto it = mshrs_.find(block);
  if (it != mshrs_.end()) {
    // Merge into the outstanding transaction (possibly a store's ownership
    // fetch — the classic "load hits pending write buffer entry" case).
    it->second.readers.push_back({std::move(done), start});
    ++c_.readMerged;
    return;
  }
  if (mshrs_.size() >= cfg_.mshrEntries) {
    ++c_.mshrFullStalls;
    sched_.scheduleIn(cfg_.l2AccessCycles,
                      [this, block, start, done = std::move(done)]() mutable {
                        startReadMiss(block, std::move(done), start);
                      });
    return;
  }
  Mshr& m = mshrs_[block];
  m.firstIssue = sched_.now();
  if (tracer_ != nullptr) {
    m.txn = tracer_->begin(block, node_, /*write=*/false, start);
  }
  m.readers.push_back({std::move(done), start});
  ++c_.readMisses;
  sendRequest(block, m);
  if (tracer_ != nullptr && m.txn != 0) {
    tracer_->record(m.txn, TxnEvent::Issue, TxnLeg::Request, txnAtProc(node_), sched_.now());
  }
}

void CacheController::cpuWrite(Addr a, DoneCallback accepted) {
  const Addr block = blockOf(a);
  ++c_.writes;
  sched_.scheduleIn(cfg_.l1AccessCycles, [this, block, accepted = std::move(accepted)]() mutable {
    if (wbOccupancy_ >= cfg_.writeBufferEntries) {
      ++c_.wbFullStalls;
      stalledStores_.emplace_back(block, std::move(accepted));
      return;
    }
    ++wbOccupancy_;
    accepted();  // Release consistency: the core proceeds immediately.
    startWriteMiss(block, [this] {
      --wbOccupancy_;
      maybeReleaseStalledStores();
      maybeFireDrainWaiters();
    }, /*isRmw=*/false);
  });
}

void CacheController::cpuRmw(Addr a, DoneCallback done) {
  const Addr block = blockOf(a);
  ++c_.rmws;
  sched_.scheduleIn(cfg_.l1AccessCycles + cfg_.l2AccessCycles,
                    [this, block, done = std::move(done)]() mutable {
                      startWriteMiss(block, std::move(done), /*isRmw=*/true);
                    });
}

void CacheController::startWriteMiss(Addr block, DoneCallback retire, bool isRmw) {
  CacheLine* line = l2_.find(block);
  if (line != nullptr && line->state == CacheState::M) {
    l1_.insert(block);
    if (!isRmw) ++c_.writeHits;
    retire();
    return;
  }
  auto it = mshrs_.find(block);
  if (it != mshrs_.end()) {
    Mshr& m = it->second;
    m.writers.push_back(std::move(retire));
    if (!m.wantWrite) {
      // A read transaction is in flight; the write piggybacks and an
      // ownership request follows the read fill.
      m.wantWrite = true;
    }
    return;
  }
  if (mshrs_.size() >= cfg_.mshrEntries) {
    ++c_.mshrFullStalls;
    sched_.scheduleIn(cfg_.l2AccessCycles,
                      [this, block, retire = std::move(retire), isRmw]() mutable {
                        startWriteMiss(block, std::move(retire), isRmw);
                      });
    return;
  }
  Mshr& m = mshrs_[block];
  m.firstIssue = sched_.now();
  m.wantWrite = true;
  if (tracer_ != nullptr) {
    m.txn = tracer_->begin(block, node_, /*write=*/true, sched_.now());
  }
  m.writers.push_back(std::move(retire));
  ++(line != nullptr ? c_.writeUpgrades : c_.writeMisses);
  sendRequest(block, m);
  if (tracer_ != nullptr && m.txn != 0) {
    tracer_->record(m.txn, TxnEvent::Issue, TxnLeg::Request, txnAtProc(node_), sched_.now());
  }
}

void CacheController::sendRequest(Addr block, Mshr& m) {
  m.requestOutstanding = true;
  m.curRequestIsWrite = m.wantWrite;
  Message req;
  req.type = m.wantWrite ? MsgType::WriteRequest : MsgType::ReadRequest;
  req.src = procEp(node_);
  req.dst = memEp(homeOf(block));
  req.addr = block;
  req.requester = node_;
  req.txn = m.txn;
  net_.send(req);
  if (fault_ != nullptr) {
    ++m.issueSerial;
    armRequestTimeout(block, m.issueSerial);
  }
}

void CacheController::armRequestTimeout(Addr block, std::uint64_t serial) {
  sched_.scheduleIn(fault_->requestTimeoutCycles(), [this, block, serial] {
    auto it = mshrs_.find(block);
    if (it == mshrs_.end()) return;  // transaction completed meanwhile
    Mshr& mshr = it->second;
    if (!mshr.requestOutstanding || mshr.issueSerial != serial) return;  // stale timer
    // The request (or its NAK) vanished in the network: reissue. A duplicate
    // of a request that merely crawled is protocol-safe — the directory
    // re-grants to the current owner and this controller absorbs the extra
    // reply/NAK as spurious.
    mshr.requestOutstanding = false;
    ++mshr.retries;
    if (mshr.retries > cfg_.maxRetries) {
      throw std::runtime_error("CacheController: timeout livelock on block " +
                               std::to_string(block));
    }
    fault_->noteTimeoutReissue();
    fault_->consumeStranded(node_, block);
    if (tracer_ != nullptr && mshr.txn != 0) {
      tracer_->record(mshr.txn, TxnEvent::Reissue, TxnLeg::None, txnAtProc(node_), sched_.now());
    }
    sendRequest(block, mshr);
  });
}

void CacheController::describeInFlight(std::ostream& os) const {
  if (quiescent()) return;
  os << "\n  node " << node_ << ": " << mshrs_.size() << " MSHR(s), write-buffer occupancy "
     << wbOccupancy_ << ", stalled stores " << stalledStores_.size();
  std::vector<Addr> blocks;
  blocks.reserve(mshrs_.size());
  for (const auto& [block, m] : mshrs_) blocks.push_back(block);
  std::sort(blocks.begin(), blocks.end());
  for (const Addr block : blocks) {
    const Mshr& m = mshrs_.at(block);
    os << "\n    block 0x" << std::hex << block << std::dec
       << (m.wantWrite ? " write" : " read")
       << (m.requestOutstanding ? ", request outstanding" : ", awaiting reissue")
       << ", retries " << m.retries << ", age " << sched_.now() - m.firstIssue << " cycles";
  }
}

void CacheController::drainWrites(DoneCallback done) {
  if (wbOccupancy_ == 0 && stalledStores_.empty()) {
    done();
    return;
  }
  drainWaiters_.push_back(std::move(done));
}

void CacheController::maybeReleaseStalledStores() {
  while (!stalledStores_.empty() && wbOccupancy_ < cfg_.writeBufferEntries) {
    auto [block, accepted] = std::move(stalledStores_.front());
    stalledStores_.pop_front();
    ++wbOccupancy_;
    accepted();
    startWriteMiss(block, [this] {
      --wbOccupancy_;
      maybeReleaseStalledStores();
      maybeFireDrainWaiters();
    }, /*isRmw=*/false);
  }
}

void CacheController::maybeFireDrainWaiters() {
  if (wbOccupancy_ != 0 || !stalledStores_.empty()) return;
  auto waiters = std::move(drainWaiters_);
  drainWaiters_.clear();
  for (auto& w : waiters) w();
}

// ---------------------------------------------------------------------------
// Network-facing operations
// ---------------------------------------------------------------------------

void CacheController::onMessage(const Message& m) {
  const Cycle delay = acquireCtrl(cfg_.cacheCtrlOccupancyCycles);
  sched_.scheduleIn(delay, [this, m] {
    switch (m.type) {
      case MsgType::ReadReply:
      case MsgType::CtoCReply:
      case MsgType::WriteReply:
        handleFill(m);
        break;
      case MsgType::CtoCRequest:
        handleCtoCRequest(m);
        break;
      case MsgType::Invalidation:
        handleInvalidation(m);
        break;
      case MsgType::Retry:
        handleRetry(m);
        break;
      default:
        throw std::logic_error("CacheController: unexpected message " + m.describe());
    }
  });
}

ReadService CacheController::classifyFill(const Message& m) const {
  switch (m.type) {
    case MsgType::ReadReply:
      if (m.marked) return ReadService::SwitchWriteBack;
      return m.viaSwitchCache ? ReadService::SwitchCache : ReadService::CleanMemory;
    case MsgType::CtoCReply:
      return m.viaSwitchDir ? ReadService::CtoCSwitchDir : ReadService::CtoCHome;
    case MsgType::WriteReply:
    default:
      return ReadService::CleanMemory;
  }
}

void CacheController::installLine(Addr block, CacheState state) {
  Victim victim;
  CacheLine* line = l2_.allocate(block, victim);
  if (victim.evicted) {
    l1_.remove(victim.block);
    ++c_.evictions;
    if (victim.dirty) {
      Message wb;
      wb.type = MsgType::WriteBack;
      wb.src = procEp(node_);
      wb.dst = memEp(homeOf(victim.block));
      wb.addr = victim.block;
      wb.requester = node_;
      net_.send(wb);
      ++c_.writebacks;
    }
  }
  line->state = state;
  l1_.insert(block);
}

void CacheController::handleFill(const Message& m) {
  auto it = mshrs_.find(m.addr);
  if (it == mshrs_.end()) {
    // A transaction can be answered twice when a copyback served the
    // requester at a switch while the owner also replied; drop the extra.
    ++c_.spuriousFills;
    if (m.type == MsgType::WriteReply) {
      // The home's serialization point made this node the owner (a duplicate
      // WriteRequest can be granted after the first grant was satisfied and
      // the line surrendered). Discarding the grant would orphan the home's
      // Modified entry and deadlock any request it later forwards here —
      // accept ownership so a forward or writeback re-converges the
      // directory.
      CacheLine* line = l2_.find(m.addr);
      if (line == nullptr) {
        installLine(m.addr, CacheState::M);
      } else {
        line->state = CacheState::M;
      }
    }
    return;
  }
  Mshr& mshr = it->second;
  if (m.type != MsgType::WriteReply && mshr.curRequestIsWrite) {
    // A read-type fill cannot answer an ownership request; it is a stale
    // duplicate of an already-completed read (e.g. the home resolved a
    // BusyRead off an unrelated copyback after the owner had replied to the
    // requester directly). Falling through would re-run the ownership chase
    // and issue a second WriteRequest while the first is still in flight.
    ++c_.spuriousFills;
    return;
  }
  // A fill can rescue a dropped issue (e.g. the original request crawled in
  // after a timeout-reissue was itself dropped); settle the strand here so
  // the recovery accounting balances even when the MSHR dies with a stale
  // timer pending.
  if (fault_ != nullptr) fault_->consumeStranded(node_, m.addr);
  const ReadService service = classifyFill(m);

  if (m.type == MsgType::WriteReply) {
    installLine(m.addr, CacheState::M);
    Mshr done = std::move(mshr);
    mshrs_.erase(it);
    if (tracer_ != nullptr && done.txn != 0) {
      tracer_->record(done.txn, TxnEvent::Fill, TxnLeg::Return, txnAtProc(node_), sched_.now());
      tracer_->complete(done.txn);
    }
    for (auto& r : done.readers) {
      latAll_.add(static_cast<double>(sched_.now() - r.start));
      latClean_.add(static_cast<double>(sched_.now() - r.start));
      ++svc_[static_cast<std::size_t>(ReadService::CleanMemory)];
      r.cb(ReadResult{ReadService::CleanMemory, sched_.now() - r.start, done.retries});
    }
    for (auto& w : done.writers) w();
    return;
  }

  // Read-type fill (ReadReply or CtoCReply): line arrives in S state.
  installLine(m.addr, mshr.fillThenInvalidate ? CacheState::I : CacheState::S);
  if (mshr.fillThenInvalidate) {
    // The data is still delivered to the waiting loads (it is the value as
    // of the invalidating write's serialization point), but the line is dead.
    l1_.remove(m.addr);
    ++c_.fillThenInvalidate;
  }
  auto readers = std::move(mshr.readers);
  mshr.readers.clear();
  mshr.fillThenInvalidate = false;
  const std::uint32_t retries = mshr.retries;
  const bool isCtoC = service == ReadService::CtoCHome || service == ReadService::CtoCSwitchDir ||
                      service == ReadService::SwitchWriteBack;
  for (auto& r : readers) {
    const auto lat = static_cast<double>(sched_.now() - r.start);
    latAll_.add(lat);
    (isCtoC ? latCtoC_ : latClean_).add(lat);
    if (!isCtoC) latCleanMiss_.add(lat);
    ++svc_[static_cast<std::size_t>(service)];
    r.cb(ReadResult{service, sched_.now() - r.start, retries});
  }
  if (tracer_ != nullptr && mshr.txn != 0) {
    tracer_->record(mshr.txn, TxnEvent::Fill, TxnLeg::Return, txnAtProc(node_), sched_.now());
    tracer_->complete(mshr.txn);
    mshr.txn = 0;
  }
  if (mshr.wantWrite) {
    // A store merged behind this read: chase ownership now. The ownership
    // fetch is traced as a fresh write transaction.
    mshr.requestOutstanding = false;
    mshr.retries = 0;
    if (tracer_ != nullptr) {
      mshr.txn = tracer_->begin(m.addr, node_, /*write=*/true, sched_.now());
    }
    sendRequest(m.addr, mshr);
    if (tracer_ != nullptr && mshr.txn != 0) {
      tracer_->record(mshr.txn, TxnEvent::Issue, TxnLeg::Request, txnAtProc(node_), sched_.now());
    }
  } else {
    mshrs_.erase(it);
  }
}

void CacheController::handleCtoCRequest(const Message& m) {
  if (tracer_ != nullptr && m.txn != 0) {
    tracer_->record(m.txn, TxnEvent::OwnerArrive, TxnLeg::Forward, txnAtProc(node_), sched_.now());
  }
  sched_.scheduleIn(cfg_.l2AccessCycles, [this, m] {
    CacheLine* line = l2_.find(m.addr);
    if (line == nullptr) {
      if (m.marked) {
        // Stale switch-directory entry (we lost the line since): tell the
        // initiating switch so it bounces the requester (paper "Retries").
        Message retry;
        retry.type = MsgType::Retry;
        retry.src = procEp(node_);
        retry.dst = memEp(homeOf(m.addr));
        retry.addr = m.addr;
        retry.requester = m.requester;
        retry.marked = true;
        retry.txn = m.txn;
        if (tracer_ != nullptr && m.txn != 0) {
          tracer_->record(m.txn, TxnEvent::OwnerInject, TxnLeg::Retry, txnAtProc(node_),
                          sched_.now());
        }
        net_.send(retry);
        ++c_.ctocCannotSupply;
      } else {
        // Our WriteBack is in flight; it resolves the transaction at home.
        ++c_.ctocDroppedWbRace;
      }
      return;
    }
    // M or S: supply the data directly to the requester and copy back to the
    // home so memory and the full-map directory stay exact.
    ++c_.ctocSupplied;
    Message reply;
    reply.type = MsgType::CtoCReply;
    reply.src = procEp(node_);
    reply.dst = procEp(m.requester);
    reply.addr = m.addr;
    reply.requester = m.requester;
    reply.viaSwitchDir = m.marked;
    reply.txn = m.txn;
    if (tracer_ != nullptr && m.txn != 0) {
      tracer_->record(m.txn, TxnEvent::OwnerInject, TxnLeg::Return, txnAtProc(node_), sched_.now());
    }
    net_.send(reply);

    Message cb;
    cb.type = MsgType::CopyBack;
    cb.src = procEp(node_);
    cb.dst = memEp(homeOf(m.addr));
    cb.addr = m.addr;
    cb.requester = m.requester;
    cb.carriedSharers = bit(m.requester);
    cb.marked = m.marked;
    net_.send(cb);

    line->state = CacheState::S;
  });
}

void CacheController::handleInvalidation(const Message& m) {
  sched_.scheduleIn(cfg_.l2AccessCycles, [this, m] {
    CacheLine* line = l2_.find(m.addr);
    if (m.marked) {
      // Ack-free cleanup invalidation (switch-cache stale-serve path).
      if (line != nullptr) {
        l2_.invalidate(*line);
        l1_.remove(m.addr);
      } else if (auto it = mshrs_.find(m.addr);
                 it != mshrs_.end() && !it->second.wantWrite) {
        it->second.fillThenInvalidate = true;
      }
      ++c_.cleanupInvalidations;
      return;
    }
    // A recall can only find the line in M/S/I: the home's outgoing messages
    // to one node are FIFO (DirController::sendOrdered), so a recall can
    // never overtake the WriteReply that granted ownership. A recall that
    // finds the line gone refers to an ownership epoch we already ended (our
    // WriteBack is in flight) and is acked like a plain invalidation — even
    // if we are re-requesting the block right now.
    if (line != nullptr && line->state == CacheState::M) {
      // Recall: surrender the dirty line to the home.
      Message cb;
      cb.type = MsgType::CopyBack;
      cb.src = procEp(node_);
      cb.dst = memEp(homeOf(m.addr));
      cb.addr = m.addr;
      cb.recall = true;
      net_.send(cb);
      l2_.invalidate(*line);
      l1_.remove(m.addr);
      ++c_.recalls;
      return;
    }
    if (line != nullptr) {
      l2_.invalidate(*line);
      l1_.remove(m.addr);
    } else {
      auto it = mshrs_.find(m.addr);
      if (it != mshrs_.end() && !it->second.wantWrite) {
        // Read fill in flight: deliver it, then kill the line.
        it->second.fillThenInvalidate = true;
      }
    }
    Message ack;
    ack.type = MsgType::InvalAck;
    ack.src = procEp(node_);
    ack.dst = memEp(homeOf(m.addr));
    ack.addr = m.addr;
    net_.send(ack);
    ++c_.invalidations;
  });
}

void CacheController::handleRetry(const Message& m) {
  auto it = mshrs_.find(m.addr);
  if (it == mshrs_.end() || !it->second.requestOutstanding) {
    ++c_.spuriousRetries;
    return;
  }
  Mshr& mshr = it->second;
  mshr.requestOutstanding = false;
  ++mshr.retries;
  ++c_.retries;
  if (mshr.retries > cfg_.maxRetries) {
    throw std::runtime_error("CacheController: retry livelock on " + m.describe());
  }
  if (tracer_ != nullptr && mshr.txn != 0) {
    tracer_->record(mshr.txn, TxnEvent::RetryArrive, TxnLeg::Retry, txnAtProc(node_), sched_.now());
  }
  const Addr block = m.addr;
  const Cycle delay = backoffDelay(mshr.retries);
  c_.backoffCycles += delay;
  sched_.scheduleIn(delay, [this, block] {
    auto it2 = mshrs_.find(block);
    if (it2 == mshrs_.end() || it2->second.requestOutstanding) return;
    Mshr& mshr2 = it2->second;
    if (tracer_ != nullptr && mshr2.txn != 0) {
      tracer_->record(mshr2.txn, TxnEvent::Reissue, TxnLeg::None, txnAtProc(node_), sched_.now());
    }
    sendRequest(block, mshr2);
  });
}

}  // namespace dresar
