#include "coherence/cache_controller.h"

#include <stdexcept>

#include "common/log.h"

namespace dresar {

namespace {
std::uint64_t bit(NodeId n) { return 1ull << n; }
}  // namespace

CacheController::CacheController(NodeId node, const SystemConfig& cfg, EventQueue& eq,
                                 INetwork& net, StatRegistry& stats)
    : node_(node),
      cfg_(cfg),
      eq_(eq),
      net_(net),
      stats_(stats),
      pfx_("cache." + std::to_string(node) + "."),
      l1_(cfg.l1Bytes, cfg.l1Assoc, cfg.lineBytes),
      l2_(cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes) {}

Cycle CacheController::acquireCtrl(Cycle busy) {
  const Cycle start = std::max(eq_.now(), ctrlFree_);
  ctrlFree_ = start + busy;
  return start - eq_.now();
}

// ---------------------------------------------------------------------------
// CPU-facing operations
// ---------------------------------------------------------------------------

void CacheController::cpuRead(Addr a, ReadCallback done) {
  const Addr block = blockOf(a);
  const Cycle start = eq_.now();
  ++stats_.counter(pfx_ + "reads");
  eq_.scheduleAfter(cfg_.l1AccessCycles, [this, block, start, done = std::move(done)]() mutable {
    if (l1_.contains(block)) {
      stats_.sampler("cpu.read_latency").add(static_cast<double>(eq_.now() - start));
      stats_.sampler("cpu.read_latency.clean").add(static_cast<double>(eq_.now() - start));
      ++stats_.counter(pfx_ + "l1_hits");
      done(ReadResult{ReadService::L1Hit, eq_.now() - start, 0});
      return;
    }
    eq_.scheduleAfter(cfg_.l2AccessCycles, [this, block, start, done = std::move(done)]() mutable {
      CacheLine* line = l2_.find(block);
      if (line != nullptr) {
        l1_.insert(block);
        stats_.sampler("cpu.read_latency").add(static_cast<double>(eq_.now() - start));
        stats_.sampler("cpu.read_latency.clean").add(static_cast<double>(eq_.now() - start));
        ++stats_.counter(pfx_ + "l2_hits");
        done(ReadResult{ReadService::L2Hit, eq_.now() - start, 0});
        return;
      }
      startReadMiss(block, std::move(done), start);
    });
  });
}

void CacheController::startReadMiss(Addr block, ReadCallback done, Cycle start) {
  auto it = mshrs_.find(block);
  if (it != mshrs_.end()) {
    // Merge into the outstanding transaction (possibly a store's ownership
    // fetch — the classic "load hits pending write buffer entry" case).
    it->second.readers.push_back({std::move(done), start});
    ++stats_.counter(pfx_ + "read_merged");
    return;
  }
  if (mshrs_.size() >= cfg_.mshrEntries) {
    ++stats_.counter(pfx_ + "mshr_full_stalls");
    eq_.scheduleAfter(cfg_.l2AccessCycles,
                      [this, block, start, done = std::move(done)]() mutable {
                        startReadMiss(block, std::move(done), start);
                      });
    return;
  }
  Mshr& m = mshrs_[block];
  m.firstIssue = eq_.now();
  m.readers.push_back({std::move(done), start});
  ++stats_.counter(pfx_ + "read_misses");
  sendRequest(block, m);
}

void CacheController::cpuWrite(Addr a, DoneCallback accepted) {
  const Addr block = blockOf(a);
  ++stats_.counter(pfx_ + "writes");
  eq_.scheduleAfter(cfg_.l1AccessCycles, [this, block, accepted = std::move(accepted)]() mutable {
    if (wbOccupancy_ >= cfg_.writeBufferEntries) {
      ++stats_.counter(pfx_ + "wb_full_stalls");
      stalledStores_.emplace_back(block, std::move(accepted));
      return;
    }
    ++wbOccupancy_;
    accepted();  // Release consistency: the core proceeds immediately.
    startWriteMiss(block, [this] {
      --wbOccupancy_;
      maybeReleaseStalledStores();
      maybeFireDrainWaiters();
    }, /*isRmw=*/false);
  });
}

void CacheController::cpuRmw(Addr a, DoneCallback done) {
  const Addr block = blockOf(a);
  ++stats_.counter(pfx_ + "rmws");
  eq_.scheduleAfter(cfg_.l1AccessCycles + cfg_.l2AccessCycles,
                    [this, block, done = std::move(done)]() mutable {
                      startWriteMiss(block, std::move(done), /*isRmw=*/true);
                    });
}

void CacheController::startWriteMiss(Addr block, DoneCallback retire, bool isRmw) {
  CacheLine* line = l2_.find(block);
  if (line != nullptr && line->state == CacheState::M) {
    l1_.insert(block);
    if (!isRmw) ++stats_.counter(pfx_ + "write_hits");
    retire();
    return;
  }
  auto it = mshrs_.find(block);
  if (it != mshrs_.end()) {
    Mshr& m = it->second;
    m.writers.push_back(std::move(retire));
    if (!m.wantWrite) {
      // A read transaction is in flight; the write piggybacks and an
      // ownership request follows the read fill.
      m.wantWrite = true;
    }
    return;
  }
  if (mshrs_.size() >= cfg_.mshrEntries) {
    ++stats_.counter(pfx_ + "mshr_full_stalls");
    eq_.scheduleAfter(cfg_.l2AccessCycles,
                      [this, block, retire = std::move(retire), isRmw]() mutable {
                        startWriteMiss(block, std::move(retire), isRmw);
                      });
    return;
  }
  Mshr& m = mshrs_[block];
  m.firstIssue = eq_.now();
  m.wantWrite = true;
  m.writers.push_back(std::move(retire));
  ++stats_.counter(pfx_ + (line != nullptr ? "write_upgrades" : "write_misses"));
  sendRequest(block, m);
}

void CacheController::sendRequest(Addr block, Mshr& m) {
  m.requestOutstanding = true;
  m.curRequestIsWrite = m.wantWrite;
  Message req;
  req.type = m.wantWrite ? MsgType::WriteRequest : MsgType::ReadRequest;
  req.src = procEp(node_);
  req.dst = memEp(homeOf(block));
  req.addr = block;
  req.requester = node_;
  net_.send(req);
}

void CacheController::drainWrites(DoneCallback done) {
  if (wbOccupancy_ == 0 && stalledStores_.empty()) {
    done();
    return;
  }
  drainWaiters_.push_back(std::move(done));
}

void CacheController::maybeReleaseStalledStores() {
  while (!stalledStores_.empty() && wbOccupancy_ < cfg_.writeBufferEntries) {
    auto [block, accepted] = std::move(stalledStores_.front());
    stalledStores_.pop_front();
    ++wbOccupancy_;
    accepted();
    startWriteMiss(block, [this] {
      --wbOccupancy_;
      maybeReleaseStalledStores();
      maybeFireDrainWaiters();
    }, /*isRmw=*/false);
  }
}

void CacheController::maybeFireDrainWaiters() {
  if (wbOccupancy_ != 0 || !stalledStores_.empty()) return;
  auto waiters = std::move(drainWaiters_);
  drainWaiters_.clear();
  for (auto& w : waiters) w();
}

// ---------------------------------------------------------------------------
// Network-facing operations
// ---------------------------------------------------------------------------

void CacheController::onMessage(const Message& m) {
  const Cycle delay = acquireCtrl(cfg_.cacheCtrlOccupancyCycles);
  eq_.scheduleAfter(delay, [this, m] {
    switch (m.type) {
      case MsgType::ReadReply:
      case MsgType::CtoCReply:
      case MsgType::WriteReply:
        handleFill(m);
        break;
      case MsgType::CtoCRequest:
        handleCtoCRequest(m);
        break;
      case MsgType::Invalidation:
        handleInvalidation(m);
        break;
      case MsgType::Retry:
        handleRetry(m);
        break;
      default:
        throw std::logic_error("CacheController: unexpected message " + m.describe());
    }
  });
}

ReadService CacheController::classifyFill(const Message& m) const {
  switch (m.type) {
    case MsgType::ReadReply:
      if (m.marked) return ReadService::SwitchWriteBack;
      return m.viaSwitchCache ? ReadService::SwitchCache : ReadService::CleanMemory;
    case MsgType::CtoCReply:
      return m.viaSwitchDir ? ReadService::CtoCSwitchDir : ReadService::CtoCHome;
    case MsgType::WriteReply:
    default:
      return ReadService::CleanMemory;
  }
}

void CacheController::installLine(Addr block, CacheState state) {
  Victim victim;
  CacheLine* line = l2_.allocate(block, victim);
  if (victim.evicted) {
    l1_.remove(victim.block);
    ++stats_.counter(pfx_ + "evictions");
    if (victim.dirty) {
      Message wb;
      wb.type = MsgType::WriteBack;
      wb.src = procEp(node_);
      wb.dst = memEp(homeOf(victim.block));
      wb.addr = victim.block;
      wb.requester = node_;
      net_.send(wb);
      ++stats_.counter(pfx_ + "writebacks");
    }
  }
  line->state = state;
  l1_.insert(block);
}

void CacheController::handleFill(const Message& m) {
  auto it = mshrs_.find(m.addr);
  if (it == mshrs_.end()) {
    // A transaction can be answered twice when a copyback served the
    // requester at a switch while the owner also replied; drop the extra.
    ++stats_.counter(pfx_ + "spurious_fills");
    return;
  }
  Mshr& mshr = it->second;
  const ReadService service = classifyFill(m);

  if (m.type == MsgType::WriteReply) {
    installLine(m.addr, CacheState::M);
    Mshr done = std::move(mshr);
    mshrs_.erase(it);
    for (auto& r : done.readers) {
      stats_.sampler("cpu.read_latency").add(static_cast<double>(eq_.now() - r.start));
      stats_.sampler("cpu.read_latency.clean").add(static_cast<double>(eq_.now() - r.start));
      ++stats_.counter(std::string("svc.") + toString(ReadService::CleanMemory));
      r.cb(ReadResult{ReadService::CleanMemory, eq_.now() - r.start, done.retries});
    }
    for (auto& w : done.writers) w();
    return;
  }

  // Read-type fill (ReadReply or CtoCReply): line arrives in S state.
  installLine(m.addr, mshr.fillThenInvalidate ? CacheState::I : CacheState::S);
  if (mshr.fillThenInvalidate) {
    // The data is still delivered to the waiting loads (it is the value as
    // of the invalidating write's serialization point), but the line is dead.
    l1_.remove(m.addr);
    ++stats_.counter(pfx_ + "fill_then_invalidate");
  }
  auto readers = std::move(mshr.readers);
  mshr.readers.clear();
  mshr.fillThenInvalidate = false;
  const std::uint32_t retries = mshr.retries;
  const bool isCtoC = service == ReadService::CtoCHome || service == ReadService::CtoCSwitchDir ||
                      service == ReadService::SwitchWriteBack;
  for (auto& r : readers) {
    const auto lat = static_cast<double>(eq_.now() - r.start);
    stats_.sampler("cpu.read_latency").add(lat);
    stats_.sampler(isCtoC ? "cpu.read_latency.ctoc" : "cpu.read_latency.clean").add(lat);
    if (!isCtoC) stats_.sampler("cpu.read_latency.clean_miss").add(lat);
    ++stats_.counter(std::string("svc.") + toString(service));
    r.cb(ReadResult{service, eq_.now() - r.start, retries});
  }
  if (mshr.wantWrite) {
    // A store merged behind this read: chase ownership now.
    mshr.requestOutstanding = false;
    sendRequest(m.addr, mshr);
  } else {
    mshrs_.erase(it);
  }
}

void CacheController::handleCtoCRequest(const Message& m) {
  eq_.scheduleAfter(cfg_.l2AccessCycles, [this, m] {
    CacheLine* line = l2_.find(m.addr);
    if (line == nullptr) {
      if (m.marked) {
        // Stale switch-directory entry (we lost the line since): tell the
        // initiating switch so it bounces the requester (paper "Retries").
        Message retry;
        retry.type = MsgType::Retry;
        retry.src = procEp(node_);
        retry.dst = memEp(homeOf(m.addr));
        retry.addr = m.addr;
        retry.requester = m.requester;
        retry.marked = true;
        net_.send(retry);
        ++stats_.counter(pfx_ + "ctoc_cannot_supply");
      } else {
        // Our WriteBack is in flight; it resolves the transaction at home.
        ++stats_.counter(pfx_ + "ctoc_dropped_wb_race");
      }
      return;
    }
    // M or S: supply the data directly to the requester and copy back to the
    // home so memory and the full-map directory stay exact.
    ++stats_.counter(pfx_ + "ctoc_supplied");
    Message reply;
    reply.type = MsgType::CtoCReply;
    reply.src = procEp(node_);
    reply.dst = procEp(m.requester);
    reply.addr = m.addr;
    reply.requester = m.requester;
    reply.viaSwitchDir = m.marked;
    net_.send(reply);

    Message cb;
    cb.type = MsgType::CopyBack;
    cb.src = procEp(node_);
    cb.dst = memEp(homeOf(m.addr));
    cb.addr = m.addr;
    cb.requester = m.requester;
    cb.carriedSharers = bit(m.requester);
    cb.marked = m.marked;
    net_.send(cb);

    line->state = CacheState::S;
  });
}

void CacheController::handleInvalidation(const Message& m) {
  eq_.scheduleAfter(cfg_.l2AccessCycles, [this, m] {
    CacheLine* line = l2_.find(m.addr);
    if (m.marked) {
      // Ack-free cleanup invalidation (switch-cache stale-serve path).
      if (line != nullptr) {
        l2_.invalidate(*line);
        l1_.remove(m.addr);
      } else if (auto it = mshrs_.find(m.addr);
                 it != mshrs_.end() && !it->second.wantWrite) {
        it->second.fillThenInvalidate = true;
      }
      ++stats_.counter(pfx_ + "cleanup_invalidations");
      return;
    }
    // A recall can only find the line in M/S/I: the home's outgoing messages
    // to one node are FIFO (DirController::sendOrdered), so a recall can
    // never overtake the WriteReply that granted ownership. A recall that
    // finds the line gone refers to an ownership epoch we already ended (our
    // WriteBack is in flight) and is acked like a plain invalidation — even
    // if we are re-requesting the block right now.
    if (line != nullptr && line->state == CacheState::M) {
      // Recall: surrender the dirty line to the home.
      Message cb;
      cb.type = MsgType::CopyBack;
      cb.src = procEp(node_);
      cb.dst = memEp(homeOf(m.addr));
      cb.addr = m.addr;
      cb.recall = true;
      net_.send(cb);
      l2_.invalidate(*line);
      l1_.remove(m.addr);
      ++stats_.counter(pfx_ + "recalls");
      return;
    }
    if (line != nullptr) {
      l2_.invalidate(*line);
      l1_.remove(m.addr);
    } else {
      auto it = mshrs_.find(m.addr);
      if (it != mshrs_.end() && !it->second.wantWrite) {
        // Read fill in flight: deliver it, then kill the line.
        it->second.fillThenInvalidate = true;
      }
    }
    Message ack;
    ack.type = MsgType::InvalAck;
    ack.src = procEp(node_);
    ack.dst = memEp(homeOf(m.addr));
    ack.addr = m.addr;
    net_.send(ack);
    ++stats_.counter(pfx_ + "invalidations");
  });
}

void CacheController::handleRetry(const Message& m) {
  auto it = mshrs_.find(m.addr);
  if (it == mshrs_.end() || !it->second.requestOutstanding) {
    ++stats_.counter(pfx_ + "spurious_retries");
    return;
  }
  Mshr& mshr = it->second;
  mshr.requestOutstanding = false;
  ++mshr.retries;
  ++stats_.counter(pfx_ + "retries");
  if (mshr.retries > cfg_.maxRetries) {
    throw std::runtime_error("CacheController: retry livelock on " + m.describe());
  }
  const Addr block = m.addr;
  eq_.scheduleAfter(cfg_.retryBackoffCycles, [this, block] {
    auto it2 = mshrs_.find(block);
    if (it2 == mshrs_.end() || it2->second.requestOutstanding) return;
    sendRequest(block, it2->second);
  });
}

}  // namespace dresar
