// Processor-side coherence engine: L1/L2 lookup timing, MSHRs with
// read/write merging, a release-consistency write buffer (stores retire
// without stalling the core; loads block), and the cache half of the MSI /
// full-map directory protocol, including every message the switch
// directories can generate (marked CtoCRequests, switch-served ReadReplies,
// Retry NAKs).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/config.h"
#include "common/scheduler.h"
#include "common/stats.h"
#include "common/types.h"
#include "coherence/cache_array.h"
#include "interconnect/network.h"

namespace dresar {

/// Completion record handed back to the CPU model for a load.
struct ReadResult {
  ReadService service = ReadService::L1Hit;
  Cycle latency = 0;       ///< issue -> data return, in cycles
  std::uint32_t retries = 0;
};

class CacheController {
 public:
  using ReadCallback = std::function<void(const ReadResult&)>;
  using DoneCallback = std::function<void()>;

  CacheController(NodeId node, const SystemConfig& cfg, Scheduler& sched, INetwork& net,
                  StatRegistry& stats);

  CacheController(const CacheController&) = delete;
  CacheController& operator=(const CacheController&) = delete;

  // ---- CPU-facing API ------------------------------------------------
  /// Blocking load. `done` fires when data is available.
  void cpuRead(Addr a, ReadCallback done);
  /// Store under release consistency: `accepted` fires when the store has
  /// retired into the write buffer (the core may proceed); the buffer
  /// acquires ownership in the background.
  void cpuWrite(Addr a, DoneCallback accepted);
  /// Atomic read-modify-write (lock primitives): `done` fires with the line
  /// held in M state; the caller performs its value update inside `done`.
  void cpuRmw(Addr a, DoneCallback done);
  /// Release-consistency fence: fires when the write buffer has drained and
  /// no store misses are outstanding.
  void drainWrites(DoneCallback done);

  // ---- Network-facing API ---------------------------------------------
  void onMessage(const Message& m);

  /// Install the transaction tracer (issue/owner/fill events). May be null.
  void setTracer(TxnTracer* tracer) { tracer_ = tracer; }

  /// Install the fault injector. Non-null arms a per-MSHR request timeout on
  /// every issue: a request (or its NAK) that vanishes in the network is
  /// reissued after fault.requestTimeoutCycles, bounded by maxRetries.
  void setFaultInjector(FaultInjector* fault) { fault_ = fault; }

  // ---- Introspection ----------------------------------------------------
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const CacheArray& l2() const { return l2_; }
  /// True when no MSHR is live and the write buffer is empty.
  [[nodiscard]] bool quiescent() const {
    return mshrs_.empty() && wbOccupancy_ == 0 && stalledStores_.empty();
  }
  /// Append a human-readable line per in-flight MSHR (block, kind, retries,
  /// age) plus write-buffer occupancy to `os`. Deadlock diagnostics.
  void describeInFlight(std::ostream& os) const;

 private:
  struct Mshr {
    bool wantWrite = false;          ///< must end with ownership
    bool requestOutstanding = false; ///< a request is in flight (awaiting reply/retry)
    bool curRequestIsWrite = false;
    bool fillThenInvalidate = false; ///< an invalidation raced the read fill
    std::uint32_t retries = 0;
    Cycle firstIssue = 0;
    /// Bumped on every issue; a pending request timeout only fires for the
    /// issue that armed it (stale timers are no-ops). Fault runs only.
    std::uint64_t issueSerial = 0;
    std::uint64_t txn = 0;           ///< traced transaction id (0 = untraced)
    struct Reader {
      ReadCallback cb;
      Cycle start;
    };
    std::vector<Reader> readers;
    std::vector<DoneCallback> writers;  ///< write-buffer entries (and RMWs)
  };

  [[nodiscard]] Addr blockOf(Addr a) const { return cfg_.blockOf(a); }
  [[nodiscard]] NodeId homeOf(Addr a) const { return cfg_.homeOf(a); }

  /// Controller occupancy for incoming protocol messages.
  Cycle acquireCtrl(Cycle busy);

  /// Re-issue delay after the `attempt`-th NAK of one transaction: the base
  /// backoff doubled per retry, bounded by switchDir.retryBackoffMaxCycles.
  [[nodiscard]] Cycle backoffDelay(std::uint32_t attempt) const;

  void sendRequest(Addr block, Mshr& m);
  /// Schedule the fault-mode request timeout for the given issue serial.
  void armRequestTimeout(Addr block, std::uint64_t serial);
  void startReadMiss(Addr block, ReadCallback done, Cycle start);
  void startWriteMiss(Addr block, DoneCallback retire, bool isRmw);

  /// Install a fill and complete the MSHR according to the reply type.
  void handleFill(const Message& m);
  void handleCtoCRequest(const Message& m);
  void handleInvalidation(const Message& m);
  void handleRetry(const Message& m);

  void installLine(Addr block, CacheState state);
  void maybeReleaseStalledStores();
  void maybeFireDrainWaiters();

  [[nodiscard]] ReadService classifyFill(const Message& m) const;

  NodeId node_;
  const SystemConfig& cfg_;
  Scheduler& sched_;
  INetwork& net_;
  TxnTracer* tracer_ = nullptr;
  FaultInjector* fault_ = nullptr;

  /// Per-node counters ("cache.<n>.*"), resolved once at construction.
  struct Counters {
    CounterHandle reads, l1Hits, l2Hits, readMerged, mshrFullStalls, readMisses, writes,
        wbFullStalls, rmws, writeHits, writeUpgrades, writeMisses, evictions, writebacks,
        spuriousFills, fillThenInvalidate, ctocCannotSupply, ctocDroppedWbRace, ctocSupplied,
        cleanupInvalidations, recalls, invalidations, spuriousRetries, retries, backoffCycles;
  };
  Counters c_;
  /// Global read-service classification counters ("svc.<ReadService>").
  std::array<CounterHandle, kReadServiceCount> svc_;
  SamplerHandle latAll_, latClean_, latCtoC_, latCleanMiss_;

  L1Filter l1_;
  CacheArray l2_;
  /// Arena backing the MSHR map's nodes; MSHRs churn on every miss, and the
  /// arena turns that node traffic into free-list pops. Declared before
  /// mshrs_ so it outlives the map.
  Arena mshrArena_;
  std::unordered_map<Addr, Mshr, std::hash<Addr>, std::equal_to<Addr>,
                     ArenaAllocator<std::pair<const Addr, Mshr>>>
      mshrs_{ArenaAllocator<std::pair<const Addr, Mshr>>(mshrArena_)};
  Cycle ctrlFree_ = 0;

  std::uint32_t wbOccupancy_ = 0;  ///< write-buffer entries in flight
  std::deque<std::pair<Addr, DoneCallback>> stalledStores_;
  std::vector<DoneCallback> drainWaiters_;
};

}  // namespace dresar
