#include "coherence/dir_controller.h"

#include "common/log.h"

namespace dresar {

namespace {
std::uint64_t bit(NodeId n) { return 1ull << n; }
}  // namespace

const char* toString(DirState s) {
  switch (s) {
    case DirState::Uncached: return "Uncached";
    case DirState::Shared: return "Shared";
    case DirState::Modified: return "Modified";
    case DirState::BusyRead: return "BusyRead";
    case DirState::BusyWrite: return "BusyWrite";
  }
  return "?";
}

DirController::DirController(NodeId node, const SystemConfig& cfg, EventQueue& eq, INetwork& net,
                             StatRegistry& stats)
    : node_(node),
      cfg_(cfg),
      eq_(eq),
      net_(net),
      stats_(stats),
      pfx_("dir." + std::to_string(node) + ".") {
  lastInjectTo_.resize(cfg_.numNodes, 0);
}

void DirController::sendOrdered(Message m, Cycle delay) {
  Cycle& horizon = lastInjectTo_.at(m.dst.node);
  const Cycle when = std::max(eq_.now() + delay, horizon);
  horizon = when;
  eq_.scheduleAt(when, [this, m = std::move(m)] { net_.send(m); });
}

Cycle DirController::acquireCtrl() {
  const Cycle start = std::max(eq_.now(), ctrlFree_);
  ctrlFree_ = start + cfg_.dirOccupancyCycles;
  return start - eq_.now();
}

const DirController::Entry* DirController::peek(Addr block) const {
  auto it = dir_.find(block);
  return it == dir_.end() ? nullptr : &it->second;
}

bool DirController::quiescent() const {
  for (const auto& [addr, e] : dir_) {
    if (e.state == DirState::BusyRead || e.state == DirState::BusyWrite) return false;
    if (!e.queue.empty()) return false;
  }
  return true;
}

void DirController::onMessage(const Message& m) {
  // Controller occupancy, then the slow DRAM directory lookup.
  const Cycle delay = acquireCtrl() + cfg_.dirLookupCycles;
  eq_.scheduleAfter(delay, [this, m] { process(m); });
}

void DirController::process(const Message& m) {
  Entry& e = entry(m.addr);
  handle(m, e);
  // Serve queued requests the moment the entry leaves its BUSY state —
  // atomically within this event, so no fresh arrival can slip in between
  // and push an already-queued request back (which would break the FIFO
  // service order and allow starvation of, e.g., a lock holder's release).
  while (e.state != DirState::BusyRead && e.state != DirState::BusyWrite && !e.queue.empty()) {
    Message next = std::move(e.queue.front());
    e.queue.pop_front();
    ++stats_.counter(pfx_ + "pending_served");
    handle(next, e);
  }
}

void DirController::handle(const Message& m, Entry& e) {
  ++stats_.counter(pfx_ + "requests");
  switch (m.type) {
    case MsgType::ReadRequest: onReadRequest(m, e); break;
    case MsgType::WriteRequest: onWriteRequest(m, e); break;
    case MsgType::CopyBack: onCopyBack(m, e); break;
    case MsgType::WriteBack: onWriteBack(m, e); break;
    case MsgType::InvalAck: onInvalAck(m, e); break;
    case MsgType::Retry:
      // A marked owner-retry whose initiating TRANSIENT entry was already
      // cleared; nothing left to do (paper: home ignores it).
      ++stats_.counter(pfx_ + "retry_dropped");
      break;
    case MsgType::SharerNotify: {
      // Switch-cache extension: a read was served with clean data inside the
      // network; keep the full-map directory exact.
      const NodeId r = m.requester;
      if (e.state == DirState::Shared || e.state == DirState::Uncached) {
        e.state = DirState::Shared;
        e.sharers |= 1ull << r;
        ++stats_.counter(pfx_ + "switch_cache_sharers");
      } else {
        // The block turned dirty (or is mid-transaction): the served copy is
        // from the old epoch — clean it up with an ack-free invalidation.
        Message inv;
        inv.type = MsgType::Invalidation;
        inv.src = memEp(node_);
        inv.dst = procEp(r);
        inv.addr = m.addr;
        inv.marked = true;  // marked invalidation = no ack expected
        sendOrdered(std::move(inv), 0);
        ++stats_.counter(pfx_ + "switch_cache_stale_serve");
      }
      break;
    }
    default:
      throw std::logic_error("DirController: unexpected message " + m.describe());
  }
}

void DirController::sendReadReply(NodeId to, Addr block, bool viaSwitchDir) {
  Message r;
  r.type = MsgType::ReadReply;
  r.src = memEp(node_);
  r.dst = procEp(to);
  r.addr = block;
  r.requester = to;
  r.viaSwitchDir = viaSwitchDir;
  sendOrdered(std::move(r), cfg_.memAccessCycles);
}

void DirController::sendWriteReply(NodeId to, Addr block) {
  Message r;
  r.type = MsgType::WriteReply;
  r.src = memEp(node_);
  r.dst = procEp(to);
  r.addr = block;
  r.requester = to;
  sendOrdered(std::move(r), cfg_.memAccessCycles);
}

void DirController::sendInvalidation(NodeId to, Addr block, bool recall) {
  Message inv;
  inv.type = MsgType::Invalidation;
  inv.src = memEp(node_);
  inv.dst = procEp(to);
  inv.addr = block;
  inv.recall = recall;
  sendOrdered(std::move(inv), 0);
}

void DirController::onReadRequest(const Message& m, Entry& e) {
  const NodeId r = m.requester;
  switch (e.state) {
    case DirState::Uncached:
    case DirState::Shared:
      e.state = DirState::Shared;
      e.sharers |= bit(r);
      ++stats_.counter(pfx_ + "reads_clean");
      sendReadReply(r, m.addr);
      break;
    case DirState::Modified:
      if (e.owner == r) {
        // Unreachable with per-path FIFO ordering; tolerate and serve.
        ++stats_.counter(pfx_ + "anomaly.read_from_owner");
        sendReadReply(r, m.addr);
        break;
      }
      e.state = DirState::BusyRead;
      e.pendingRequester = r;
      ++homeCtoC_;
      ++stats_.counter(pfx_ + "home_ctoc");
      {
        Message fwd;
        fwd.type = MsgType::CtoCRequest;
        fwd.src = memEp(node_);
        fwd.dst = procEp(e.owner);
        fwd.addr = m.addr;
        fwd.requester = r;
        sendOrdered(std::move(fwd), 0);
      }
      break;
    case DirState::BusyRead:
    case DirState::BusyWrite:
      e.queue.push_back(m);
      ++stats_.counter(pfx_ + "queued");
      break;
  }
}

void DirController::onWriteRequest(const Message& m, Entry& e) {
  const NodeId w = m.requester;
  switch (e.state) {
    case DirState::Uncached:
      e.state = DirState::Modified;
      e.owner = w;
      e.sharers = 0;
      sendWriteReply(w, m.addr);
      break;
    case DirState::Shared: {
      const std::uint64_t others = e.sharers & ~bit(w);
      if (others == 0) {
        e.state = DirState::Modified;
        e.owner = w;
        e.sharers = 0;
        ++stats_.counter(pfx_ + "upgrades");
        sendWriteReply(w, m.addr);
        break;
      }
      e.state = DirState::BusyWrite;
      e.pendingRequester = w;
      e.pendingAcks = others;
      for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        if (others & bit(n)) sendInvalidation(n, m.addr);
      }
      ++stats_.counter(pfx_ + "write_invalidates");
      break;
    }
    case DirState::Modified:
      if (e.owner == w) {
        ++stats_.counter(pfx_ + "anomaly.write_from_owner");
        sendWriteReply(w, m.addr);
        break;
      }
      // Recall the dirty line, then grant ownership from memory.
      e.state = DirState::BusyWrite;
      e.pendingRequester = w;
      e.pendingAcks = bit(e.owner);
      sendInvalidation(e.owner, m.addr, /*recall=*/true);
      ++stats_.counter(pfx_ + "write_recalls");
      break;
    case DirState::BusyRead:
    case DirState::BusyWrite:
      e.queue.push_back(m);
      ++stats_.counter(pfx_ + "queued");
      break;
  }
}

void DirController::absorbCarriedSharers(const Message& m, Addr block, Entry& e) {
  // Requesters served inside the network hold S copies the in-progress write
  // must invalidate before ownership is granted.
  for (NodeId n = 0; n < cfg_.numNodes; ++n) {
    if ((m.carriedSharers & bit(n)) == 0) continue;
    if (n == e.pendingRequester) continue;
    if (e.pendingAcks & bit(n)) continue;
    e.pendingAcks |= bit(n);
    sendInvalidation(n, block);
    ++stats_.counter(pfx_ + "carried_sharer_invalidated");
  }
}

void DirController::onCopyBack(const Message& m, Entry& e) {
  const NodeId from = m.src.node;
  if (m.recall) {
    // The owner surrendered the line in response to a recall Invalidation.
    if (e.state == DirState::BusyWrite && (e.pendingAcks & bit(from)) != 0) {
      // A TRANSIENT switch may have served readers from this copyback's data
      // on the way here (annotating it); they hold S copies that must fall
      // under this write's invalidation set before ownership is granted.
      absorbCarriedSharers(m, m.addr, e);
      e.pendingAcks &= ~bit(from);
      e.owner = kInvalidNode;
      if (e.pendingAcks == 0) completeBusyWrite(m.addr, e);
    } else {
      ++stats_.counter(pfx_ + "anomaly.recall_copyback");
    }
    return;
  }
  switch (e.state) {
    case DirState::BusyRead: {
      const NodeId r = e.pendingRequester;
      if ((m.carriedSharers & bit(r)) == 0) {
        // The copyback completed a different transfer (a switch-initiated
        // one); serve our requester from the now-clean memory copy.
        sendReadReply(r, m.addr);
        ++stats_.counter(pfx_ + "busyread_served_from_memory");
      }
      e.sharers = bit(from) | m.carriedSharers | bit(r);
      e.owner = kInvalidNode;
      e.pendingRequester = kInvalidNode;
      e.state = DirState::Shared;
      ++stats_.counter(pfx_ + "copybacks");
      break;
    }
    case DirState::BusyWrite:
      absorbCarriedSharers(m, m.addr, e);
      ++stats_.counter(pfx_ + "copyback_during_write");
      break;
    case DirState::Modified:
      // Switch-initiated transfer completing with no home involvement: the
      // "marked copyback" path of paper 3.2.
      e.sharers = bit(from) | m.carriedSharers;
      e.owner = kInvalidNode;
      e.state = DirState::Shared;
      ++stats_.counter(pfx_ + (m.marked ? "marked_copybacks" : "copybacks"));
      break;
    case DirState::Shared:
      e.sharers |= bit(from) | m.carriedSharers;
      ++stats_.counter(pfx_ + "copyback_in_shared");
      break;
    case DirState::Uncached:
      ++stats_.counter(pfx_ + "anomaly.copyback_uncached");
      break;
  }
}

void DirController::onWriteBack(const Message& m, Entry& e) {
  const NodeId from = m.src.node;
  switch (e.state) {
    case DirState::Modified:
      if (e.owner != from) {
        ++stats_.counter(pfx_ + "anomaly.writeback_not_owner");
        break;
      }
      e.owner = kInvalidNode;
      if (m.carriedSharers != 0) {
        // Marked write-back: switch directories served requesters from the
        // victim's data on its way here.
        e.sharers = m.carriedSharers;
        e.state = DirState::Shared;
        ++stats_.counter(pfx_ + "marked_writebacks");
      } else {
        e.sharers = 0;
        e.state = DirState::Uncached;
        ++stats_.counter(pfx_ + "writebacks");
      }
      break;
    case DirState::BusyRead: {
      // The owner evicted the line before our forwarded request reached it;
      // its data just arrived, serve the waiting read from memory.
      const NodeId r = e.pendingRequester;
      if ((m.carriedSharers & bit(r)) == 0) {
        sendReadReply(r, m.addr);
      }
      e.sharers = m.carriedSharers | bit(r);
      e.owner = kInvalidNode;
      e.pendingRequester = kInvalidNode;
      e.state = DirState::Shared;
      ++stats_.counter(pfx_ + "writeback_resolves_busyread");
      break;
    }
    case DirState::BusyWrite:
      // Owner evicted instead of answering the recall; its InvalAck arrives
      // separately (the invalidation finds the line gone).
      absorbCarriedSharers(m, m.addr, e);
      ++stats_.counter(pfx_ + "writeback_during_write");
      break;
    case DirState::Shared:
    case DirState::Uncached:
      ++stats_.counter(pfx_ + "anomaly.stale_writeback");
      break;
  }
}

void DirController::onInvalAck(const Message& m, Entry& e) {
  const NodeId from = m.src.node;
  if (e.state != DirState::BusyWrite || (e.pendingAcks & bit(from)) == 0) {
    ++stats_.counter(pfx_ + "anomaly.spurious_inval_ack");
    return;
  }
  e.pendingAcks &= ~bit(from);
  e.sharers &= ~bit(from);
  if (e.pendingAcks == 0) completeBusyWrite(m.addr, e);
}

void DirController::completeBusyWrite(Addr block, Entry& e) {
  const NodeId w = e.pendingRequester;
  e.state = DirState::Modified;
  e.owner = w;
  e.sharers = 0;
  e.pendingRequester = kInvalidNode;
  e.pendingAcks = 0;
  ++stats_.counter(pfx_ + "writes_granted");
  sendWriteReply(w, block);
}

}  // namespace dresar
