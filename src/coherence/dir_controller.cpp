#include "coherence/dir_controller.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/log.h"

namespace dresar {

namespace {
NodeMask bit(NodeId n) { return nodeBit(n); }
}  // namespace

const char* toString(DirState s) {
  switch (s) {
    case DirState::Uncached: return "Uncached";
    case DirState::Shared: return "Shared";
    case DirState::Modified: return "Modified";
    case DirState::BusyRead: return "BusyRead";
    case DirState::BusyWrite: return "BusyWrite";
  }
  return "?";
}

DirController::DirController(NodeId node, const SystemConfig& cfg, Scheduler& sched, INetwork& net,
                             StatRegistry& stats)
    : node_(node), cfg_(cfg), sched_(sched), net_(net) {
  const std::string pfx = "dir." + std::to_string(node) + ".";
  c_.pendingServed = stats.counterHandle(pfx + "pending_served");
  c_.requests = stats.counterHandle(pfx + "requests");
  c_.retryDropped = stats.counterHandle(pfx + "retry_dropped");
  c_.switchCacheSharers = stats.counterHandle(pfx + "switch_cache_sharers");
  c_.switchCacheStaleServe = stats.counterHandle(pfx + "switch_cache_stale_serve");
  c_.readsClean = stats.counterHandle(pfx + "reads_clean");
  c_.anomalyReadFromOwner = stats.counterHandle(pfx + "anomaly.read_from_owner");
  c_.homeCtoc = stats.counterHandle(pfx + "home_ctoc");
  c_.queued = stats.counterHandle(pfx + "queued");
  c_.upgrades = stats.counterHandle(pfx + "upgrades");
  c_.writeInvalidates = stats.counterHandle(pfx + "write_invalidates");
  c_.anomalyWriteFromOwner = stats.counterHandle(pfx + "anomaly.write_from_owner");
  c_.writeRecalls = stats.counterHandle(pfx + "write_recalls");
  c_.carriedSharerInvalidated = stats.counterHandle(pfx + "carried_sharer_invalidated");
  c_.anomalyRecallCopyback = stats.counterHandle(pfx + "anomaly.recall_copyback");
  c_.busyreadServedFromMemory = stats.counterHandle(pfx + "busyread_served_from_memory");
  c_.copybacks = stats.counterHandle(pfx + "copybacks");
  c_.copybackDuringWrite = stats.counterHandle(pfx + "copyback_during_write");
  c_.markedCopybacks = stats.counterHandle(pfx + "marked_copybacks");
  c_.copybackInShared = stats.counterHandle(pfx + "copyback_in_shared");
  c_.anomalyCopybackUncached = stats.counterHandle(pfx + "anomaly.copyback_uncached");
  c_.anomalyWritebackNotOwner = stats.counterHandle(pfx + "anomaly.writeback_not_owner");
  c_.markedWritebacks = stats.counterHandle(pfx + "marked_writebacks");
  c_.writebacks = stats.counterHandle(pfx + "writebacks");
  c_.writebackResolvesBusyread = stats.counterHandle(pfx + "writeback_resolves_busyread");
  c_.writebackDuringWrite = stats.counterHandle(pfx + "writeback_during_write");
  c_.anomalyStaleWriteback = stats.counterHandle(pfx + "anomaly.stale_writeback");
  c_.anomalySpuriousInvalAck = stats.counterHandle(pfx + "anomaly.spurious_inval_ack");
  c_.writesGranted = stats.counterHandle(pfx + "writes_granted");
  lastInjectTo_.resize(cfg_.numNodes, 0);
}

void DirController::sendOrdered(Message m, Cycle delay) {
  Cycle& horizon = lastInjectTo_.at(m.dst.node);
  const Cycle when = std::max(sched_.now() + delay, horizon);
  horizon = when;
  sched_.scheduleAt(when, [this, m = std::move(m)] {
    if (tracer_ != nullptr && m.txn != 0) {
      tracer_->record(m.txn, TxnEvent::HomeInject, txnLegOf(m.type),
                      txnAtMem(node_), sched_.now());
    }
    net_.send(m);
  });
}

Cycle DirController::acquireCtrl() {
  const Cycle start = std::max(sched_.now(), ctrlFree_);
  ctrlFree_ = start + cfg_.dirOccupancyCycles;
  return start - sched_.now();
}

const DirController::Entry* DirController::peek(Addr block) const {
  auto it = dir_.find(block);
  return it == dir_.end() ? nullptr : &it->second;
}

bool DirController::quiescent() const {
  for (const auto& [addr, e] : dir_) {
    if (e.state == DirState::BusyRead || e.state == DirState::BusyWrite) return false;
    if (!e.queue.empty()) return false;
  }
  return true;
}

void DirController::describeInFlight(std::ostream& os) const {
  std::vector<std::pair<Addr, const Entry*>> busy;
  for (const auto& [addr, e] : dir_) {
    if (e.state == DirState::BusyRead || e.state == DirState::BusyWrite || !e.queue.empty()) {
      busy.emplace_back(addr, &e);
    }
  }
  if (busy.empty()) return;
  std::sort(busy.begin(), busy.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  os << "\n  dir " << node_ << ": " << busy.size() << " in-flight transaction(s)";
  for (const auto& [addr, e] : busy) {
    os << "\n    block 0x" << std::hex << addr << std::dec << ' ' << toString(e->state)
       << ", owner " << (e->owner == kInvalidNode ? -1 : static_cast<int>(e->owner))
       << ", pending requester "
       << (e->pendingRequester == kInvalidNode ? -1 : static_cast<int>(e->pendingRequester))
       << ", acks outstanding " << toHex(e->pendingAcks) << ", queued " << e->queue.size();
  }
}

void DirController::onMessage(const Message& m) {
  if (tracer_ != nullptr && m.txn != 0 &&
      (m.type == MsgType::ReadRequest || m.type == MsgType::WriteRequest)) {
    tracer_->record(m.txn, TxnEvent::HomeArrive, TxnLeg::Request, txnAtMem(node_),
                    sched_.now());
  }
  // Controller occupancy, then the slow DRAM directory lookup.
  const Cycle delay = acquireCtrl() + cfg_.dirLookupCycles;
  sched_.scheduleIn(delay, [this, m] { process(m); });
}

void DirController::process(const Message& m) {
  Entry& e = entry(m.addr);
  handle(m, e);
  // Serve queued requests the moment the entry leaves its BUSY state —
  // atomically within this event, so no fresh arrival can slip in between
  // and push an already-queued request back (which would break the FIFO
  // service order and allow starvation of, e.g., a lock holder's release).
  while (e.state != DirState::BusyRead && e.state != DirState::BusyWrite && !e.queue.empty()) {
    Message next = std::move(e.queue.front());
    e.queue.pop_front();
    ++c_.pendingServed;
    handle(next, e);
  }
}

void DirController::handle(const Message& m, Entry& e) {
  ++c_.requests;
  if (tracer_ != nullptr && m.txn != 0 &&
      (m.type == MsgType::ReadRequest || m.type == MsgType::WriteRequest)) {
    // Recorded again when a queued request is re-handled after a BUSY state
    // resolves; both intervals are home-directory time.
    tracer_->record(m.txn, TxnEvent::HomeService, TxnLeg::Request, txnAtMem(node_),
                    sched_.now());
  }
  switch (m.type) {
    case MsgType::ReadRequest: onReadRequest(m, e); break;
    case MsgType::WriteRequest: onWriteRequest(m, e); break;
    case MsgType::CopyBack: onCopyBack(m, e); break;
    case MsgType::WriteBack: onWriteBack(m, e); break;
    case MsgType::InvalAck: onInvalAck(m, e); break;
    case MsgType::Retry:
      // A marked owner-retry whose initiating TRANSIENT entry was already
      // cleared; nothing left to do (paper: home ignores it).
      ++c_.retryDropped;
      break;
    case MsgType::SharerNotify: {
      // Switch-cache extension: a read was served with clean data inside the
      // network; keep the full-map directory exact.
      const NodeId r = m.requester;
      if (e.state == DirState::Shared || e.state == DirState::Uncached) {
        e.state = DirState::Shared;
        e.sharers |= bit(r);
        ++c_.switchCacheSharers;
      } else {
        // The block turned dirty (or is mid-transaction): the served copy is
        // from the old epoch — clean it up with an ack-free invalidation.
        Message inv;
        inv.type = MsgType::Invalidation;
        inv.src = memEp(node_);
        inv.dst = procEp(r);
        inv.addr = m.addr;
        inv.marked = true;  // marked invalidation = no ack expected
        sendOrdered(std::move(inv), 0);
        ++c_.switchCacheStaleServe;
      }
      break;
    }
    default:
      throw std::logic_error("DirController: unexpected message " + m.describe());
  }
}

void DirController::sendReadReply(NodeId to, Addr block, bool viaSwitchDir,
                                  std::uint64_t txn) {
  Message r;
  r.type = MsgType::ReadReply;
  r.src = memEp(node_);
  r.dst = procEp(to);
  r.addr = block;
  r.requester = to;
  r.viaSwitchDir = viaSwitchDir;
  r.txn = txn;
  sendOrdered(std::move(r), cfg_.memAccessCycles);
}

void DirController::sendWriteReply(NodeId to, Addr block, std::uint64_t txn) {
  Message r;
  r.type = MsgType::WriteReply;
  r.src = memEp(node_);
  r.dst = procEp(to);
  r.addr = block;
  r.requester = to;
  r.txn = txn;
  sendOrdered(std::move(r), cfg_.memAccessCycles);
}

void DirController::sendInvalidation(NodeId to, Addr block, bool recall) {
  Message inv;
  inv.type = MsgType::Invalidation;
  inv.src = memEp(node_);
  inv.dst = procEp(to);
  inv.addr = block;
  inv.recall = recall;
  sendOrdered(std::move(inv), 0);
}

void DirController::onReadRequest(const Message& m, Entry& e) {
  const NodeId r = m.requester;
  switch (e.state) {
    case DirState::Uncached:
    case DirState::Shared:
      e.state = DirState::Shared;
      e.sharers |= bit(r);
      ++c_.readsClean;
      sendReadReply(r, m.addr, /*viaSwitchDir=*/false, m.txn);
      break;
    case DirState::Modified:
      if (e.owner == r) {
        // Unreachable with per-path FIFO ordering; tolerate and serve.
        ++c_.anomalyReadFromOwner;
        sendReadReply(r, m.addr, /*viaSwitchDir=*/false, m.txn);
        break;
      }
      e.state = DirState::BusyRead;
      e.pendingRequester = r;
      e.pendingTxn = m.txn;
      ++homeCtoC_;
      ++c_.homeCtoc;
      {
        Message fwd;
        fwd.type = MsgType::CtoCRequest;
        fwd.src = memEp(node_);
        fwd.dst = procEp(e.owner);
        fwd.addr = m.addr;
        fwd.requester = r;
        fwd.txn = m.txn;
        sendOrdered(std::move(fwd), 0);
      }
      break;
    case DirState::BusyRead:
    case DirState::BusyWrite:
      e.queue.push_back(m);
      ++c_.queued;
      break;
  }
}

void DirController::onWriteRequest(const Message& m, Entry& e) {
  const NodeId w = m.requester;
  switch (e.state) {
    case DirState::Uncached:
      e.state = DirState::Modified;
      e.owner = w;
      e.sharers = 0;
      sendWriteReply(w, m.addr, m.txn);
      break;
    case DirState::Shared: {
      const NodeMask others = e.sharers & ~bit(w);
      if (others == 0) {
        e.state = DirState::Modified;
        e.owner = w;
        e.sharers = 0;
        ++c_.upgrades;
        sendWriteReply(w, m.addr, m.txn);
        break;
      }
      e.state = DirState::BusyWrite;
      e.pendingRequester = w;
      e.pendingTxn = m.txn;
      e.pendingAcks = others;
      for (NodeId n = 0; n < cfg_.numNodes; ++n) {
        if (others & bit(n)) sendInvalidation(n, m.addr);
      }
      ++c_.writeInvalidates;
      break;
    }
    case DirState::Modified:
      if (e.owner == w) {
        ++c_.anomalyWriteFromOwner;
        sendWriteReply(w, m.addr, m.txn);
        break;
      }
      // Recall the dirty line, then grant ownership from memory.
      e.state = DirState::BusyWrite;
      e.pendingRequester = w;
      e.pendingTxn = m.txn;
      e.pendingAcks = bit(e.owner);
      sendInvalidation(e.owner, m.addr, /*recall=*/true);
      ++c_.writeRecalls;
      break;
    case DirState::BusyRead:
    case DirState::BusyWrite:
      e.queue.push_back(m);
      ++c_.queued;
      break;
  }
}

void DirController::absorbCarriedSharers(const Message& m, Addr block, Entry& e) {
  // Requesters served inside the network hold S copies the in-progress write
  // must invalidate before ownership is granted.
  for (NodeId n = 0; n < cfg_.numNodes; ++n) {
    if ((m.carriedSharers & bit(n)) == 0) continue;
    if (n == e.pendingRequester) continue;
    if (e.pendingAcks & bit(n)) continue;
    e.pendingAcks |= bit(n);
    sendInvalidation(n, block);
    ++c_.carriedSharerInvalidated;
  }
}

void DirController::onCopyBack(const Message& m, Entry& e) {
  const NodeId from = m.src.node;
  if (m.recall) {
    // The owner surrendered the line in response to a recall Invalidation.
    if (e.state == DirState::BusyWrite && (e.pendingAcks & bit(from)) != 0) {
      // A TRANSIENT switch may have served readers from this copyback's data
      // on the way here (annotating it); they hold S copies that must fall
      // under this write's invalidation set before ownership is granted.
      absorbCarriedSharers(m, m.addr, e);
      e.pendingAcks &= ~bit(from);
      e.owner = kInvalidNode;
      if (e.pendingAcks == 0) completeBusyWrite(m.addr, e);
    } else {
      ++c_.anomalyRecallCopyback;
    }
    return;
  }
  switch (e.state) {
    case DirState::BusyRead: {
      const NodeId r = e.pendingRequester;
      if ((m.carriedSharers & bit(r)) == 0) {
        // The copyback completed a different transfer (a switch-initiated
        // one); serve our requester from the now-clean memory copy.
        sendReadReply(r, m.addr, /*viaSwitchDir=*/false, e.pendingTxn);
        ++c_.busyreadServedFromMemory;
      }
      e.sharers = bit(from) | m.carriedSharers | bit(r);
      e.owner = kInvalidNode;
      e.pendingRequester = kInvalidNode;
      e.pendingTxn = 0;
      e.state = DirState::Shared;
      ++c_.copybacks;
      break;
    }
    case DirState::BusyWrite:
      absorbCarriedSharers(m, m.addr, e);
      ++c_.copybackDuringWrite;
      break;
    case DirState::Modified:
      // Switch-initiated transfer completing with no home involvement: the
      // "marked copyback" path of paper 3.2.
      e.sharers = bit(from) | m.carriedSharers;
      e.owner = kInvalidNode;
      e.state = DirState::Shared;
      ++(m.marked ? c_.markedCopybacks : c_.copybacks);
      break;
    case DirState::Shared:
      e.sharers |= bit(from) | m.carriedSharers;
      ++c_.copybackInShared;
      break;
    case DirState::Uncached:
      ++c_.anomalyCopybackUncached;
      break;
  }
}

void DirController::onWriteBack(const Message& m, Entry& e) {
  const NodeId from = m.src.node;
  switch (e.state) {
    case DirState::Modified:
      if (e.owner != from) {
        ++c_.anomalyWritebackNotOwner;
        break;
      }
      e.owner = kInvalidNode;
      if (m.carriedSharers != 0) {
        // Marked write-back: switch directories served requesters from the
        // victim's data on its way here.
        e.sharers = m.carriedSharers;
        e.state = DirState::Shared;
        ++c_.markedWritebacks;
      } else {
        e.sharers = 0;
        e.state = DirState::Uncached;
        ++c_.writebacks;
      }
      break;
    case DirState::BusyRead: {
      // The owner evicted the line before our forwarded request reached it;
      // its data just arrived, serve the waiting read from memory.
      const NodeId r = e.pendingRequester;
      if ((m.carriedSharers & bit(r)) == 0) {
        sendReadReply(r, m.addr, /*viaSwitchDir=*/false, e.pendingTxn);
      }
      e.sharers = m.carriedSharers | bit(r);
      e.owner = kInvalidNode;
      e.pendingRequester = kInvalidNode;
      e.pendingTxn = 0;
      e.state = DirState::Shared;
      ++c_.writebackResolvesBusyread;
      break;
    }
    case DirState::BusyWrite:
      // Owner evicted instead of answering the recall; its InvalAck arrives
      // separately (the invalidation finds the line gone).
      absorbCarriedSharers(m, m.addr, e);
      ++c_.writebackDuringWrite;
      break;
    case DirState::Shared:
    case DirState::Uncached:
      ++c_.anomalyStaleWriteback;
      break;
  }
}

void DirController::onInvalAck(const Message& m, Entry& e) {
  const NodeId from = m.src.node;
  if (e.state != DirState::BusyWrite || (e.pendingAcks & bit(from)) == 0) {
    ++c_.anomalySpuriousInvalAck;
    return;
  }
  e.pendingAcks &= ~bit(from);
  e.sharers &= ~bit(from);
  if (e.pendingAcks == 0) completeBusyWrite(m.addr, e);
}

void DirController::completeBusyWrite(Addr block, Entry& e) {
  const NodeId w = e.pendingRequester;
  const std::uint64_t txn = e.pendingTxn;
  e.state = DirState::Modified;
  e.owner = w;
  e.sharers = 0;
  e.pendingRequester = kInvalidNode;
  e.pendingTxn = 0;
  e.pendingAcks = 0;
  ++c_.writesGranted;
  sendWriteReply(w, block, txn);
}

}  // namespace dresar
