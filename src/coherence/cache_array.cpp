#include "coherence/cache_array.h"

#include <bit>
#include <stdexcept>

namespace dresar {

namespace {
void checkGeometry(std::uint32_t bytes, std::uint32_t assoc, std::uint32_t lineBytes) {
  if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
    throw std::invalid_argument("cache: lineBytes must be a power of two");
  if (assoc == 0 || bytes == 0 || bytes % (assoc * lineBytes) != 0)
    throw std::invalid_argument("cache: size must be a positive multiple of assoc*line");
}
}  // namespace

const char* toString(CacheState s) {
  switch (s) {
    case CacheState::I: return "I";
    case CacheState::S: return "S";
    case CacheState::M: return "M";
  }
  return "?";
}

CacheArray::CacheArray(std::uint32_t bytes, std::uint32_t associativity, std::uint32_t lineBytes)
    : assoc_(associativity), lineShift_(static_cast<std::uint32_t>(std::countr_zero(lineBytes))) {
  checkGeometry(bytes, associativity, lineBytes);
  numSets_ = bytes / (associativity * lineBytes);
  ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

std::size_t CacheArray::setBase(Addr block) const {
  return static_cast<std::size_t>((block >> lineShift_) % numSets_) * assoc_;
}

CacheLine* CacheArray::find(Addr block) {
  const std::size_t base = setBase(block);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    CacheLine& l = ways_[base + w];
    if (l.valid() && l.tag == block) {
      l.lastUse = ++tick_;
      return &l;
    }
  }
  return nullptr;
}

const CacheLine* CacheArray::peek(Addr block) const {
  const std::size_t base = setBase(block);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    const CacheLine& l = ways_[base + w];
    if (l.valid() && l.tag == block) return &l;
  }
  return nullptr;
}

CacheLine* CacheArray::allocate(Addr block, Victim& victim) {
  victim = Victim{};
  const std::size_t base = setBase(block);
  CacheLine* invalid = nullptr;
  CacheLine* lru = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    CacheLine& l = ways_[base + w];
    if (l.valid() && l.tag == block) {
      l.lastUse = ++tick_;
      return &l;
    }
    if (!l.valid()) {
      if (invalid == nullptr) invalid = &l;
    } else if (lru == nullptr || l.lastUse < lru->lastUse) {
      lru = &l;
    }
  }
  CacheLine* slot = invalid != nullptr ? invalid : lru;
  if (slot->valid()) {
    victim.evicted = true;
    victim.dirty = slot->state == CacheState::M;
    victim.block = slot->tag;
  }
  *slot = CacheLine{};
  slot->tag = block;
  slot->lastUse = ++tick_;
  return slot;
}

std::uint64_t CacheArray::countState(CacheState s) const {
  std::uint64_t n = 0;
  for (const auto& l : ways_) {
    if (l.valid() && l.state == s) ++n;
  }
  return n;
}

void CacheArray::forEachValid(const std::function<void(const CacheLine&)>& fn) const {
  for (const auto& l : ways_) {
    if (l.valid()) fn(l);
  }
}

L1Filter::L1Filter(std::uint32_t bytes, std::uint32_t associativity, std::uint32_t lineBytes)
    : assoc_(associativity), lineShift_(static_cast<std::uint32_t>(std::countr_zero(lineBytes))) {
  checkGeometry(bytes, associativity, lineBytes);
  numSets_ = bytes / (associativity * lineBytes);
  ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

std::size_t L1Filter::setBase(Addr block) const {
  return static_cast<std::size_t>((block >> lineShift_) % numSets_) * assoc_;
}

bool L1Filter::contains(Addr block) const {
  const std::size_t base = setBase(block);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (ways_[base + w].tag == block) return true;
  }
  return false;
}

void L1Filter::insert(Addr block) {
  const std::size_t base = setBase(block);
  Slot* lru = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Slot& s = ways_[base + w];
    if (s.tag == block) {
      s.lastUse = ++tick_;
      return;
    }
    if (lru == nullptr || s.lastUse < lru->lastUse) lru = &s;
  }
  lru->tag = block;
  lru->lastUse = ++tick_;
}

void L1Filter::remove(Addr block) {
  const std::size_t base = setBase(block);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Slot& s = ways_[base + w];
    if (s.tag == block) {
      s = Slot{};
      return;
    }
  }
}

}  // namespace dresar
