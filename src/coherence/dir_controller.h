// Home-node directory controller: full-map three-state directory
// (UNCACHED / SHARED / MODIFIED) with BUSY transients and a per-block pending
// queue, slow DRAM directory lookups, banked memory access, and controller
// occupancy — the costs the switch directories exist to avoid. Includes the
// paper's "minor modification ... for handling marked writeback and copyback
// requests": marked messages carry the pids of requesters served inside the
// network, which the home folds into the sharer vector.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <vector>
#include <string>
#include <unordered_map>

#include "common/config.h"
#include "common/scheduler.h"
#include "common/stats.h"
#include "common/types.h"
#include "interconnect/network.h"

namespace dresar {

enum class DirState : std::uint8_t { Uncached, Shared, Modified, BusyRead, BusyWrite };

const char* toString(DirState s);

class DirController {
 public:
  DirController(NodeId node, const SystemConfig& cfg, Scheduler& sched, INetwork& net,
                StatRegistry& stats);

  DirController(const DirController&) = delete;
  DirController& operator=(const DirController&) = delete;

  void onMessage(const Message& m);

  /// Install the transaction tracer (home arrive/service/inject events).
  void setTracer(TxnTracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] NodeId node() const { return node_; }

  /// Home-node cache-to-cache forwards (the Figure 8 metric).
  [[nodiscard]] std::uint64_t homeCtoCForwards() const { return homeCtoC_; }

  struct Entry {
    DirState state = DirState::Uncached;
    NodeMask sharers = 0;           ///< bit per node (SHARED)
    NodeId owner = kInvalidNode;    ///< valid in MODIFIED / during BUSY
    NodeId pendingRequester = kInvalidNode;
    std::uint64_t pendingTxn = 0;   ///< pendingRequester's traced transaction
    NodeMask pendingAcks = 0;       ///< BUSY_WR: invalidations not yet acked
    std::deque<Message> queue;      ///< requests waiting out a BUSY state
  };

  /// Directory state snapshot for invariant checks; nullptr if never touched.
  [[nodiscard]] const Entry* peek(Addr block) const;
  [[nodiscard]] bool quiescent() const;
  /// Append a human-readable line per in-flight directory transaction (block,
  /// state, owner, pending requester, acks, queue depth) to `os`. Deadlock
  /// diagnostics.
  void describeInFlight(std::ostream& os) const;

 private:
  Cycle acquireCtrl();
  Entry& entry(Addr block) { return dir_[block]; }

  void process(const Message& m);
  void handle(const Message& m, Entry& e);
  void onReadRequest(const Message& m, Entry& e);
  void onWriteRequest(const Message& m, Entry& e);
  void onCopyBack(const Message& m, Entry& e);
  void onWriteBack(const Message& m, Entry& e);
  void onInvalAck(const Message& m, Entry& e);

  /// Inject `m` after `delay`, but never before a previously issued message
  /// to the same destination: the home's outgoing messages to one node are
  /// FIFO (one output port), which the protocol relies on — a CtoCRequest or
  /// recall must not overtake the WriteReply that granted ownership.
  void sendOrdered(Message m, Cycle delay);
  void sendReadReply(NodeId to, Addr block, bool viaSwitchDir = false,
                     std::uint64_t txn = 0);
  void sendWriteReply(NodeId to, Addr block, std::uint64_t txn = 0);
  void sendInvalidation(NodeId to, Addr block, bool recall = false);
  void completeBusyWrite(Addr block, Entry& e);

  /// Fold switch-served sharers carried on marked messages into the vector
  /// and, while a write is pending, invalidate them again.
  void absorbCarriedSharers(const Message& m, Addr block, Entry& e);

  NodeId node_;
  const SystemConfig& cfg_;
  Scheduler& sched_;
  INetwork& net_;
  TxnTracer* tracer_ = nullptr;
  /// Per-home counters ("dir.<n>.*"), resolved once at construction.
  struct Counters {
    CounterHandle pendingServed, requests, retryDropped, switchCacheSharers,
        switchCacheStaleServe, readsClean, anomalyReadFromOwner, homeCtoc, queued, upgrades,
        writeInvalidates, anomalyWriteFromOwner, writeRecalls, carriedSharerInvalidated,
        anomalyRecallCopyback, busyreadServedFromMemory, copybacks, copybackDuringWrite,
        markedCopybacks, copybackInShared, anomalyCopybackUncached, anomalyWritebackNotOwner,
        markedWritebacks, writebacks, writebackResolvesBusyread, writebackDuringWrite,
        anomalyStaleWriteback, anomalySpuriousInvalAck, writesGranted;
  };
  Counters c_;
  std::unordered_map<Addr, Entry> dir_;
  std::vector<Cycle> lastInjectTo_;  ///< per-destination FIFO horizon
  Cycle ctrlFree_ = 0;
  std::uint64_t homeCtoC_ = 0;
};

}  // namespace dresar
